//===- bench_ablation.cpp - Ablations of the design choices ----------------===//
//
// Part of the earthcc project.
//
// Sweeps the design choices DESIGN.md calls out, on two representative
// benchmarks (power = blocking-dominated, health = pipelining/redundancy-
// dominated), 4 nodes:
//
//   1. block threshold 1..6 words (paper picks 3);
//   2. each optimization component disabled in turn (read motion,
//      blocking, redundancy elimination, write blocking);
//   3. optimistic vs pessimistic hoisting of reads out of conditionals.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <iostream>

using namespace earthcc;

namespace {

struct Config {
  std::string Name;
  CommOptions Comm;
  bool InferLocality = false;
};

void runSweep(const char *Title, const std::vector<Config> &Configs,
              const std::vector<std::string> &Benches, unsigned Nodes) {
  std::printf("%s (on %u nodes)\n\n", Title, Nodes);
  TablePrinter T({"configuration", "benchmark", "time (ms)", "total ops",
                  "read", "write", "blkmov", "impr vs simple (%)"});
  for (const std::string &Name : Benches) {
    const Workload *W = findWorkload(Name);
    RunResult S = runWorkload(*W, RunMode::Simple, Nodes);
    if (!S.OK) {
      std::fprintf(stderr, "%s simple failed: %s\n", Name.c_str(),
                   S.Error.c_str());
      continue;
    }
    T.addRow({"simple (no comm-opt)", Name,
              TablePrinter::fmt(S.TimeNs / 1e6, 2),
              std::to_string(S.Counters.total()),
              std::to_string(S.Counters.ReadData),
              std::to_string(S.Counters.WriteData),
              std::to_string(S.Counters.BlkMov), "0.00"});
    for (const Config &C : Configs) {
      PipelineOptions PO = workloadOptions(RunMode::Optimized, C.Comm);
      PO.InferLocality = C.InferLocality;
      Pipeline P(PO);
      RunResult O = P.run(P.compile(W->Source),
                          workloadMachine(RunMode::Optimized, Nodes));
      if (!O.OK) {
        std::fprintf(stderr, "%s/%s failed: %s\n", Name.c_str(),
                     C.Name.c_str(), O.Error.c_str());
        continue;
      }
      if (O.ExitValue.I != S.ExitValue.I)
        std::fprintf(stderr, "%s/%s: CHECKSUM MISMATCH\n", Name.c_str(),
                     C.Name.c_str());
      double Impr = 100.0 * (S.TimeNs - O.TimeNs) / S.TimeNs;
      T.addRow({C.Name, Name, TablePrinter::fmt(O.TimeNs / 1e6, 2),
                std::to_string(O.Counters.total()),
                std::to_string(O.Counters.ReadData),
                std::to_string(O.Counters.WriteData),
                std::to_string(O.Counters.BlkMov),
                TablePrinter::fmt(Impr, 2)});
    }
    T.addRule();
  }
  T.print(std::cout);
  std::printf("\n");
}

} // namespace

int main() {
  const unsigned Nodes = 4;
  const std::vector<std::string> Benches = {"power", "health"};

  // 1. Block threshold sweep.
  {
    std::vector<Config> Configs;
    for (unsigned Th = 1; Th <= 6; ++Th) {
      Config C;
      C.Name = "block threshold = " + std::to_string(Th);
      C.Comm.BlockThresholdWords = Th;
      Configs.push_back(C);
    }
    runSweep("Ablation 1: pipelining-vs-blocking threshold "
             "(paper: 3 words)",
             Configs, Benches, Nodes);
  }

  // 2. Component knock-outs.
  {
    std::vector<Config> Configs;
    Config Full;
    Full.Name = "full optimization";
    Configs.push_back(Full);
    Config NoMotion;
    NoMotion.Name = "no read motion (at-use placement)";
    NoMotion.Comm.EnableReadMotion = false;
    Configs.push_back(NoMotion);
    Config NoBlock;
    NoBlock.Name = "no blocking (pipelined only)";
    NoBlock.Comm.EnableBlocking = false;
    Configs.push_back(NoBlock);
    Config NoRedund;
    NoRedund.Name = "no redundancy elimination";
    NoRedund.Comm.EnableRedundancyElim = false;
    NoRedund.Comm.EnableReadMotion = false;
    NoRedund.Comm.EnableBlocking = false;
    NoRedund.Comm.EnableWriteBlocking = false;
    Configs.push_back(NoRedund);
    Config NoWrite;
    NoWrite.Name = "no write blocking";
    NoWrite.Comm.EnableWriteBlocking = false;
    Configs.push_back(NoWrite);
    Config WithLocality;
    WithLocality.Name = "locality inference + full optimization";
    WithLocality.InferLocality = true;
    Configs.push_back(WithLocality);
    runSweep("Ablation 2: optimization components disabled in turn "
             "(plus locality inference on top)",
             Configs, Benches, Nodes);
  }

  // 3. Conditional-read hoisting policy.
  {
    std::vector<Config> Configs;
    Config Optimistic;
    Optimistic.Name = "optimistic conditional reads (paper)";
    Configs.push_back(Optimistic);
    Config Pessimistic;
    Pessimistic.Name = "pessimistic (no hoist out of branches)";
    Pessimistic.Comm.Placement.OptimisticConditionalReads = false;
    Configs.push_back(Pessimistic);
    runSweep("Ablation 3: hoisting reads out of conditionals", Configs,
             Benches, Nodes);
  }
  return 0;
}
