//===- bench_compiler.cpp - Compiler throughput (google-benchmark) ---------===//
//
// Part of the earthcc project.
//
// Engineering metric (not in the paper): wall-clock throughput of the
// compiler pipeline phases — lexing, parsing, Simplify lowering, the
// analyses (points-to, side effects, possible placement) and the full
// pipeline with communication selection — over the largest benchmark
// source (health).
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"
#include "driver/Pipeline.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Simplify.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace earthcc;

namespace {

const std::string &healthSource() {
  static const std::string Src = findWorkload("health")->Source;
  return Src;
}

void BM_Lex(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    Lexer L(healthSource(), Diags);
    benchmark::DoNotOptimize(L.lexAll());
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    Lexer L(healthSource(), Diags);
    Parser P(L.lexAll(), Diags);
    benchmark::DoNotOptimize(P.parseUnit());
  }
}
BENCHMARK(BM_Parse);

void BM_Simplify(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    benchmark::DoNotOptimize(compileToSimple(healthSource(), Diags));
  }
}
BENCHMARK(BM_Simplify);

void BM_Analyses(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto M = compileToSimple(healthSource(), Diags);
  for (auto _ : State) {
    PointsToAnalysis PT(*M);
    SideEffects SE(*M, PT);
    for (const auto &F : M->functions())
      benchmark::DoNotOptimize(runPlacementAnalysis(*F, SE));
  }
}
BENCHMARK(BM_Analyses);

void BM_FullPipelineNoOpt(benchmark::State &State) {
  Pipeline P(PipelineOptions::simple());
  for (auto _ : State)
    benchmark::DoNotOptimize(P.compile(healthSource()));
}
BENCHMARK(BM_FullPipelineNoOpt);

void BM_FullPipelineOptimized(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  for (auto _ : State)
    benchmark::DoNotOptimize(P.compile(healthSource()));
}
BENCHMARK(BM_FullPipelineOptimized);

/// The compiled health module, shared by the simulation benchmarks below
/// so they measure the interpreter only (compile once, run N times).
const CompileResult &healthModule() {
  static const CompileResult CR =
      Pipeline(PipelineOptions::optimized()).compile(healthSource());
  return CR;
}

// Threaded-C emission as the pipeline's "codegen" stage: consumes the
// module's memoized bytecode (lowered once by healthModule()'s compile), so
// this measures only the backend-view construction and text emission.
void BM_EmitThreadedC(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  for (auto _ : State)
    benchmark::DoNotOptimize(P.emitThreadedC(*healthModule().M));
}
BENCHMARK(BM_EmitThreadedC);

void BM_SimulateHealth1Node(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
}
BENCHMARK(BM_SimulateHealth1Node);

// The headline engine comparison: the same compiled module simulated by
// the AST walker vs the bytecode engine (identical simulated results; the
// equivalence tests assert it). The bytecode module is pre-lowered by the
// pipeline's "lower" stage, so neither engine pays lowering here.
void BM_SimulateHealth4NodesAst(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  MC.Engine = ExecEngine::AST;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
}
BENCHMARK(BM_SimulateHealth4NodesAst);

void BM_SimulateHealth4NodesBytecode(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  MC.Engine = ExecEngine::Bytecode;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
}
BENCHMARK(BM_SimulateHealth4NodesBytecode);

// The pairs below verify the tracing guard *per engine*: with a null sink
// the hot loop must cost the same as before the observability layer (a
// never-taken branch per event site — in particular no "su:" label strings
// may be built when nobody is listening; the labels are interned in
// interp/EngineCommon.h); the counter-sink variants show the enabled-path
// cost for comparison.
void BM_SimulateHealth4NodesNullSink(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
}
BENCHMARK(BM_SimulateHealth4NodesNullSink);

void BM_SimulateHealth4NodesCounterSink(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  for (auto _ : State) {
    CounterTraceSink Sink;
    MC.Trace = &Sink;
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
  }
}
BENCHMARK(BM_SimulateHealth4NodesCounterSink);

void BM_SimulateHealth4NodesAstNullSink(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  MC.Engine = ExecEngine::AST;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
}
BENCHMARK(BM_SimulateHealth4NodesAstNullSink);

void BM_SimulateHealth4NodesAstCounterSink(benchmark::State &State) {
  Pipeline P(PipelineOptions::optimized());
  MachineConfig MC;
  MC.NumNodes = 4;
  MC.Engine = ExecEngine::AST;
  for (auto _ : State) {
    CounterTraceSink Sink;
    MC.Trace = &Sink;
    benchmark::DoNotOptimize(P.run(healthModule(), MC));
  }
}
BENCHMARK(BM_SimulateHealth4NodesAstCounterSink);

} // namespace

BENCHMARK_MAIN();
