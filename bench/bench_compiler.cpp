//===- bench_compiler.cpp - Compiler throughput (google-benchmark) ---------===//
//
// Part of the earthcc project.
//
// Engineering metric (not in the paper): wall-clock throughput of the
// compiler pipeline phases — lexing, parsing, Simplify lowering, the
// analyses (points-to, side effects, possible placement) and the full
// pipeline with communication selection — over the largest benchmark
// source (health).
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"
#include "driver/Driver.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Simplify.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace earthcc;

namespace {

const std::string &healthSource() {
  static const std::string Src = findWorkload("health")->Source;
  return Src;
}

void BM_Lex(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    Lexer L(healthSource(), Diags);
    benchmark::DoNotOptimize(L.lexAll());
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    Lexer L(healthSource(), Diags);
    Parser P(L.lexAll(), Diags);
    benchmark::DoNotOptimize(P.parseUnit());
  }
}
BENCHMARK(BM_Parse);

void BM_Simplify(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    benchmark::DoNotOptimize(compileToSimple(healthSource(), Diags));
  }
}
BENCHMARK(BM_Simplify);

void BM_Analyses(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto M = compileToSimple(healthSource(), Diags);
  for (auto _ : State) {
    PointsToAnalysis PT(*M);
    SideEffects SE(*M, PT);
    for (const auto &F : M->functions())
      benchmark::DoNotOptimize(runPlacementAnalysis(*F, SE));
  }
}
BENCHMARK(BM_Analyses);

void BM_FullPipelineNoOpt(benchmark::State &State) {
  for (auto _ : State) {
    CompileOptions CO;
    CO.Optimize = false;
    benchmark::DoNotOptimize(compileEarthC(healthSource(), CO));
  }
}
BENCHMARK(BM_FullPipelineNoOpt);

void BM_FullPipelineOptimized(benchmark::State &State) {
  for (auto _ : State) {
    CompileOptions CO;
    benchmark::DoNotOptimize(compileEarthC(healthSource(), CO));
  }
}
BENCHMARK(BM_FullPipelineOptimized);

void BM_SimulateHealth1Node(benchmark::State &State) {
  const Workload *W = findWorkload("health");
  for (auto _ : State)
    benchmark::DoNotOptimize(runWorkload(*W, RunMode::Optimized, 1));
}
BENCHMARK(BM_SimulateHealth1Node);

} // namespace

BENCHMARK_MAIN();
