//===- bench_table1.cpp - Reproduces Table I ------------------------------===//
//
// Part of the earthcc project.
//
// Table I of the paper: cost of communication on EARTH-MANNA, sequential
// vs pipelined, for remote reads, remote writes and blkmovs. We measure
// the *simulated* machine end-to-end, by compiling and running small
// EARTH-C microbenchmarks:
//
//  - sequential: each operation's result is consumed immediately (a
//    dependent chain), so every operation pays the full round trip;
//  - pipelined: operations are issued back-to-back and synchronized at
//    the end, so the per-operation cost is the EU issue cost.
//
// The numbers must match the paper's table (the cost model is calibrated
// to it); this harness verifies the simulator actually delivers them.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/ProfileReport.h"
#include "interp/Lower.h"
#include "service/CompileService.h"
#include "support/CommProfiler.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace earthcc;

namespace {

/// Runs a 2-node microbenchmark and returns the per-op time over N ops,
/// subtracting the time of a calibration run with Ops0 operations. The
/// measured (non-calibration) run feeds \p Sink when one is given, so the
/// counter report reflects exactly the operations being timed.
double perOpTime(const std::string &Src, const std::string &SrcBase, int Ops,
                 TraceSink *Sink = nullptr) {
  Pipeline P(PipelineOptions::simple());
  MachineConfig MC;
  MC.NumNodes = 2;
  MC.Trace = Sink;
  RunResult Full = P.compileAndRun(Src, MC);
  MachineConfig BaseMC;
  BaseMC.NumNodes = 2;
  RunResult Base = P.compileAndRun(SrcBase, BaseMC);
  if (!Full.OK || !Base.OK) {
    std::fprintf(stderr, "microbenchmark failed: %s%s\n", Full.Error.c_str(),
                 Base.Error.c_str());
    return -1.0;
  }
  return (Full.TimeNs - Base.TimeNs) / Ops;
}

std::string readProgram(int Reps, bool Pipelined) {
  std::string Body;
  if (Pipelined) {
    // 8 independent reads per iteration, consumed after issue.
    Body = R"(
      t1 = r->a; t2 = r->b; t3 = r->c; t4 = r->d;
      t5 = r->e; t6 = r->f; t7 = r->g; t8 = r->h;
      s = s + t1 + t2 + t3 + t4 + t5 + t6 + t7 + t8;
    )";
  } else {
    // A dependent chain: each read feeds the address of the next.
    Body = R"(
      p = q->self; p = p->self; p = p->self; p = p->self;
      p = p->self; p = p->self; p = p->self; p = p->self;
      q = p;
    )";
  }
  std::string Src = R"(
    struct rec { int a; int b; int c; int d; int e; int f; int g; int h; };
    struct cell { cell *self; int pad; };
    int main() {
      rec *r;
      cell *q; cell *p;
      int t1; int t2; int t3; int t4; int t5; int t6; int t7; int t8;
      int s; int i;
      r = pmalloc(sizeof(rec))@node(1);
      r->a = 1; r->b = 2; r->c = 3; r->d = 4;
      r->e = 5; r->f = 6; r->g = 7; r->h = 8;
      q = pmalloc(sizeof(cell))@node(1);
      q->self = q;
      q->pad = 0;
      s = 0;
      for (i = 0; i < )" + std::to_string(Reps) + R"(; i = i + 1) {
  )" + Body + R"(
      }
      return s % 1000;
    }
  )";
  return Src;
}

std::string writeProgram(int Reps) {
  // 8 independent split-phase writes per iteration (pipelined).
  return R"(
    struct rec { int a; int b; int c; int d; int e; int f; int g; int h; };
    int main() {
      rec *r;
      int i;
      r = pmalloc(sizeof(rec))@node(1);
      for (i = 0; i < )" + std::to_string(Reps) + R"(; i = i + 1) {
        r->a = i; r->b = i; r->c = i; r->d = i;
        r->e = i; r->f = i; r->g = i; r->h = i;
      }
      return 0;
    }
  )";
}

/// Host wall-clock nanoseconds per simulation of \p CR under \p Engine
/// (median-free mean over \p Iters runs after one warmup, which also pays
/// the one-time bytecode lowering so it is not billed to either engine).
double hostSimNs(Pipeline &P, const CompileResult &CR, ExecEngine Engine,
                 int Iters, bool Fuse = true, RunResult *Last = nullptr,
                 BcDispatch Dispatch = defaultDispatch()) {
  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  MC.Engine = Engine;
  MC.Fuse = Fuse;
  MC.Dispatch = Dispatch;
  RunResult Warm = P.run(CR, MC);
  if (!Warm.OK) {
    std::fprintf(stderr, "host-time benchmark failed: %s\n",
                 Warm.Error.c_str());
    return -1.0;
  }
  if (Last)
    *Last = Warm;
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Iters; ++I)
    P.run(CR, MC);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(T1 - T0).count() / Iters;
}

/// Minimum host wall time over \p Iters simulations, with \p Prof attached
/// when non-null. The profiler-overhead comparison uses minimums rather
/// than means: a minimum rejects the scheduler spikes that would otherwise
/// dominate a small relative difference.
double hostSimMinNs(Pipeline &P, const CompileResult &CR, int Iters,
                    CommProfiler *Prof) {
  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  MC.Engine = ExecEngine::Bytecode;
  MC.Profiler = Prof;
  P.run(CR, MC); // warmup
  double Best = -1.0;
  for (int I = 0; I != Iters; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    P.run(CR, MC);
    auto T1 = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(T1 - T0).count();
    if (Best < 0 || Ns < Best)
      Best = Ns;
  }
  return Best;
}

/// Mean host nanoseconds for one from-scratch lowering of \p M at
/// \p Threads workers (fresh BytecodeModule each time — this deliberately
/// bypasses the module's lowering cache).
double lowerNs(const Module &M, unsigned Threads, int Iters) {
  lowerModule(M, Threads); // warmup
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Iters; ++I)
    lowerModule(M, Threads);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(T1 - T0).count() / Iters;
}

/// One measured phase of the service sweep: closed-loop clients, each
/// submitting its next request only after the previous response arrived.
struct ServicePhase {
  double MinNs = 0, MedNs = 0, AvgNs = 0, MaxNs = 0;
  double CompilesPerSec = 0; ///< Compile *executions* retired per second.
  double SimsPerSec = 0;     ///< Responses carrying a sim result per second.
  bool OK = true;
};

/// Drives \p Reqs through \p Svc from \p Clients closed-loop client
/// threads and reports client-observed latency plus throughput.
ServicePhase servicePhase(CompileService &Svc,
                          const std::vector<CompileRequest> &Reqs,
                          const RunRequest &RR, unsigned Clients) {
  ServicePhase Out;
  std::vector<double> Lat(Reqs.size(), 0.0);
  std::atomic<size_t> Next{0};
  std::atomic<bool> AllOK{true};
  ServiceStats Before = Svc.stats();
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C)
    Threads.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < Lat.size();
           I = Next.fetch_add(1)) {
        auto S = std::chrono::steady_clock::now();
        RunResponse R = Svc.submitRun(Reqs[I], RR).get();
        auto E = std::chrono::steady_clock::now();
        Lat[I] = std::chrono::duration<double, std::nano>(E - S).count();
        if (!R.OK)
          AllOK = false;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  double WallSec = std::chrono::duration<double>(T1 - T0).count();
  ServiceStats After = Svc.stats();

  std::vector<double> Sorted = Lat;
  std::sort(Sorted.begin(), Sorted.end());
  Out.MinNs = Sorted.front();
  Out.MaxNs = Sorted.back();
  Out.MedNs = Sorted[Sorted.size() / 2];
  for (double L : Lat)
    Out.AvgNs += L;
  Out.AvgNs /= Lat.size();
  if (WallSec > 0) {
    Out.CompilesPerSec =
        (After.CompileExecutions - Before.CompileExecutions) / WallSec;
    Out.SimsPerSec = Lat.size() / WallSec;
  }
  Out.OK = AllOK;
  return Out;
}

/// Pass wall times (ns, health/optimized) captured on the reference bench
/// host right before SideEffects and the selection redundancy table moved
/// from node-based std::set/std::map to hashed flat sets — the "before"
/// half of the before/after record in BENCH_comm.json.
const char *kPassNsBeforeFlatSets =
    "{\"simplify\": 491206, \"verify\": 57978, \"comm-select\": 18397939, "
    "\"lower\": 156147, \"codegen\": 225375}";

} // namespace

int main(int argc, char **argv) {
  const int Reps = 1000;
  CostModel CM;

  // --json OUT: also aggregate the measured runs through the counter sink
  // and write the compact BENCH_comm.json perf artifact.
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
  }
  CounterTraceSink Counters;
  TraceSink *Sink = JsonPath.empty() ? nullptr : &Counters;

  std::printf("Table I: Cost of communication on simulated EARTH-MANNA\n");
  std::printf("(microbenchmarks on 2 nodes, %d operations each; "
              "paper values: read 7109/1908, write 6458/1749, "
              "blkmov 9700/2602 ns)\n\n",
              Reps);

  // Reads. Sequential: 8 dependent reads per iteration.
  double SeqRead = perOpTime(readProgram(Reps / 8, false),
                             readProgram(0, false), Reps, Sink);
  double PipeRead = perOpTime(readProgram(Reps / 8, true),
                              readProgram(0, true), Reps, Sink);

  // Writes. EARTH writes are fire-and-forget (only fiber settlement waits
  // on them), so "sequential" write latency comes from the calibrated
  // analytic model; the pipelined issue cost is measured.
  double SeqWrite = CM.sequentialWrite();
  double PipeWrite =
      perOpTime(writeProgram(Reps / 8), writeProgram(0), Reps, Sink);

  // Blkmovs: the analytic one-word figures (validated in unit tests; the
  // optimizer benches measure multi-word blkmovs in context).
  double SeqBlk = CM.sequentialBlk(1);
  double PipeBlk = CM.BlkIssue;

  TablePrinter T({"EARTH operation", "Sequential (ns)", "Pipelined (ns)",
                  "paper seq", "paper pipe"});
  T.addRow({"Read word", TablePrinter::fmt(SeqRead, 0),
            TablePrinter::fmt(PipeRead, 0), "7109", "1908"});
  T.addRow({"Write word", TablePrinter::fmt(SeqWrite, 0),
            TablePrinter::fmt(PipeWrite, 0), "6458", "1749"});
  T.addRow({"Blkmov word", TablePrinter::fmt(SeqBlk, 0),
            TablePrinter::fmt(PipeBlk, 0), "9700", "2602"});
  T.print(std::cout);

  // The crossover the paper reports: blkmov wins at >= 3 words. The right
  // comparison is the completion time of the whole group (last word
  // available), i.e. pipelined issue costs plus one residual latency
  // versus a single block transfer.
  std::printf("\nPipelined-vs-blocked crossover "
              "(group completion latency):\n");
  TablePrinter X({"words moved", "K pipelined reads (ns)", "one blkmov (ns)",
                  "winner"});
  int Crossover = 0;
  for (int W = 1; W <= 6; ++W) {
    double Pipe =
        W * CM.ReadIssue + 2 * CM.NetDelay + CM.SUReadService;
    double Blk = CM.sequentialBlk(W);
    if (Blk < Pipe && Crossover == 0)
      Crossover = W;
    X.addRow({std::to_string(W), TablePrinter::fmt(Pipe, 0),
              TablePrinter::fmt(Blk, 0), Pipe < Blk ? "pipelined" : "blkmov"});
  }
  X.print(std::cout);
  std::printf("\n=> blocked transfer wins from %d words on "
              "(paper threshold: 3)\n",
              Crossover);

  // Host-side engine comparison: wall-clock time to simulate the largest
  // Olden workload (health, optimized, 4 nodes) under the AST walker vs
  // the bytecode engine. Simulated results are identical by construction
  // (the engine-equivalence tests assert it); this measures only how fast
  // the host reaches them.
  const int SimIters = 3;
  Pipeline SimP(workloadOptions(RunMode::Optimized));
  CompileResult SimCR = SimP.compile(findWorkload("health")->Source);
  double AstNs = hostSimNs(SimP, SimCR, ExecEngine::AST, SimIters);
  RunResult FusedRun;
  double BcNs =
      hostSimNs(SimP, SimCR, ExecEngine::Bytecode, SimIters, true, &FusedRun);
  double BcPlainNs =
      hostSimNs(SimP, SimCR, ExecEngine::Bytecode, SimIters, false);
  // Dispatch axis: the same fused bytecode run under the portable switch
  // loop. BcNs above used the build default (computed goto where the build
  // carries it), so on a GCC/Clang build the pair isolates the dispatch
  // strategy alone.
  double BcSwitchNs = hostSimNs(SimP, SimCR, ExecEngine::Bytecode, SimIters,
                                true, nullptr, BcDispatch::Switch);
  double DispatchSpeedup =
      (BcSwitchNs > 0 && BcNs > 0) ? BcSwitchNs / BcNs : 0.0;
  double Speedup = (AstNs > 0 && BcNs > 0) ? AstNs / BcNs : 0.0;
  std::printf("\nHost simulation time (health, optimized, 4 nodes, "
              "mean of %d runs):\n"
              "  ast               %10.1f ms\n"
              "  bytecode          %10.1f ms   (%.2fx speedup)\n"
              "  bytecode --fuse=off %8.1f ms\n"
              "  fused dispatches %llu covering %llu steps "
              "(%.1f%% of %llu total)\n",
              SimIters, AstNs / 1e6, BcNs / 1e6, Speedup, BcPlainNs / 1e6,
              (unsigned long long)FusedRun.FusedDispatches,
              (unsigned long long)FusedRun.FusedSteps,
              FusedRun.StepsExecuted
                  ? 100.0 * FusedRun.FusedSteps / FusedRun.StepsExecuted
                  : 0.0,
              (unsigned long long)FusedRun.StepsExecuted);
  std::printf("\nBytecode dispatch strategy (same run, fused stream):\n"
              "  %-17s %10.1f ms\n"
              "  switch loop       %10.1f ms   (default is %.2fx vs switch)\n",
              computedGotoAvailable() ? "computed goto" : "switch (default)",
              BcNs / 1e6, BcSwitchNs / 1e6, DispatchSpeedup);

  // Parallel lowering: host time of the lower stage itself, serial vs all
  // hardware threads (identical output — the determinism test pins it).
  const unsigned LowerPar = ThreadPool::hardwareThreads();
  double LowerSerialNs = lowerNs(*SimCR.M, 1, SimIters);
  double LowerParNs = lowerNs(*SimCR.M, LowerPar, SimIters);
  std::printf("\nBytecode lowering time (health module, mean of %d):\n"
              "  serial          %10.1f us\n"
              "  %2u thread(s)    %10.1f us\n",
              SimIters, LowerSerialNs / 1e3, LowerPar, LowerParNs / 1e3);
  if (LowerPar <= 1)
    std::printf("  (single hardware thread: the second figure is the serial "
                "path plus\n   thread-pool dispatch overhead, not a parallel "
                "measurement)\n");

  // Profiler overhead: the per-site observability must stay out of the hot
  // loop when detached (one predictable branch per comm op) and cheap when
  // attached. Min-of-N wall times over the same run, profiler off vs on.
  const int ProfIters = 5;
  CommProfiler Prof;
  double ProfOffNs = hostSimMinNs(SimP, SimCR, ProfIters, nullptr);
  double ProfOnNs = hostSimMinNs(SimP, SimCR, ProfIters, &Prof);
  double ProfOverheadPct =
      ProfOffNs > 0 ? 100.0 * (ProfOnNs - ProfOffNs) / ProfOffNs : 0.0;
  std::printf("\nCommProfiler overhead (health, optimized, 4 nodes, "
              "min of %d runs):\n"
              "  profiler off    %10.1f ms\n"
              "  profiler on     %10.1f ms   (%+.1f%%)\n"
              "  recorded: %llu remote messages across %u sites\n",
              ProfIters, ProfOffNs / 1e6, ProfOnNs / 1e6, ProfOverheadPct,
              (unsigned long long)Prof.totalMsgs(), Prof.numSites());

  // Per-pass host wall times for the optimized compile of health, plus the
  // Threaded-C "codegen" stage over the memoized bytecode. Emitting here
  // appends codegen to SimP.stages(), so the report covers the whole
  // source-to-Threaded-C path.
  std::string ThreadedC = SimP.emitThreadedC(*SimCR.M);
  std::printf("\nCompiler pass wall times (health, optimized; codegen "
              "emitted %zu bytes of Threaded-C):\n",
              ThreadedC.size());
  for (const StageReport &SR : SimP.stages())
    std::printf("  %-12s %10.1f us\n", SR.Name.c_str(), SR.WallNs / 1e3);

  // Placement/comm-select fan-out: mean host time of the two optimization
  // stages over fresh compiles of health, serial vs all hardware threads.
  // Output is bit-identical at any thread count (the pass-threads
  // determinism suite pins it); this measures only the host speed of the
  // per-function task fan-out.
  auto passStageNs = [&](unsigned Threads, double &PlacementNs,
                         double &SelectNs) {
    PipelineOptions PO = workloadOptions(RunMode::Optimized);
    PO.PassThreads = Threads;
    PlacementNs = SelectNs = 0;
    for (int I = 0; I != SimIters; ++I) {
      Pipeline P(PO);
      CompileResult CR = P.compile(findWorkload("health")->Source);
      if (!CR.OK) {
        std::fprintf(stderr, "pass-threads bench compile failed: %s\n",
                     CR.Messages.c_str());
        return;
      }
      for (const StageReport &SR : P.stages()) {
        if (SR.Name == "placement")
          PlacementNs += SR.WallNs;
        else if (SR.Name == "comm-select")
          SelectNs += SR.WallNs;
      }
    }
    PlacementNs /= SimIters;
    SelectNs /= SimIters;
  };
  const unsigned PassPar = ThreadPool::hardwareThreads();
  double PassSerPlace = 0, PassSerSel = 0, PassParPlace = 0, PassParSel = 0;
  passStageNs(1, PassSerPlace, PassSerSel);
  passStageNs(PassPar, PassParPlace, PassParSel);
  std::printf("\nPlacement + comm-select time (health module, mean of %d):\n"
              "  serial          %10.1f us  (placement %.1f + select %.1f)\n"
              "  %2u thread(s)    %10.1f us  (placement %.1f + select %.1f)\n",
              SimIters, (PassSerPlace + PassSerSel) / 1e3, PassSerPlace / 1e3,
              PassSerSel / 1e3, PassPar, (PassParPlace + PassParSel) / 1e3,
              PassParPlace / 1e3, PassParSel / 1e3);
  if (PassPar <= 1)
    std::printf("  (single hardware thread: the second figure is the serial "
                "path plus\n   thread-pool dispatch overhead, not a parallel "
                "measurement)\n");

  // Service request sweep: the CompileService under closed-loop load at
  // 1/4/8 client threads. The cold phase submits distinct requests (every
  // one a cache miss: a full compile + simulate), then one warmup request
  // installs the warm key, and the warm phase replays that identical
  // request — the content-addressed cache must serve it without executing
  // anything, so warm throughput bounds the dispatch + lookup overhead.
  const int SweepReqs = 16;
  const std::string SvcSrc = findWorkload("power")->Source;
  struct SweepRow {
    unsigned Clients;
    ServicePhase Cold, Warm;
  };
  std::vector<SweepRow> Sweep;
  std::printf("\nCompileService request sweep (power, 4 nodes, %d requests "
              "per phase,\nclosed-loop clients; cold = distinct sources, "
              "warm = one cached request):\n",
              SweepReqs);
  TablePrinter SvcT({"clients", "cold med (ms)", "cold req/s",
                     "warm med (us)", "warm req/s", "warm speedup"});
  for (unsigned Clients : {1u, 4u, 8u}) {
    ServiceConfig SC;
    SC.Workers = Clients;
    // Record into the process-wide registry so the sweep's cache hit/miss
    // counts land in the "metrics" block of BENCH_comm.json.
    SC.Metrics = &MetricsRegistry::global();
    CompileService Svc(SC);
    RunRequest RR;
    RR.Nodes = 4;

    std::vector<CompileRequest> Cold;
    for (int I = 0; I != SweepReqs; ++I)
      Cold.push_back(CompileRequest::optimized(
          SvcSrc + "\n/* cold " + std::to_string(Clients) + "." +
          std::to_string(I) + " */"));
    ServicePhase ColdPhase = servicePhase(Svc, Cold, RR, Clients);

    CompileRequest WarmReq = CompileRequest::optimized(SvcSrc);
    Svc.submitRun(WarmReq, RR).get(); // warmup: installs the warm key
    std::vector<CompileRequest> Warm(SweepReqs, WarmReq);
    ServicePhase WarmPhase = servicePhase(Svc, Warm, RR, Clients);

    if (!ColdPhase.OK || !WarmPhase.OK)
      std::fprintf(stderr, "service sweep: request failed at %u clients\n",
                   Clients);
    double Speedup = ColdPhase.SimsPerSec > 0
                         ? WarmPhase.SimsPerSec / ColdPhase.SimsPerSec
                         : 0.0;
    SvcT.addRow({std::to_string(Clients),
                 TablePrinter::fmt(ColdPhase.MedNs / 1e6, 2),
                 TablePrinter::fmt(ColdPhase.SimsPerSec, 1),
                 TablePrinter::fmt(WarmPhase.MedNs / 1e3, 1),
                 TablePrinter::fmt(WarmPhase.SimsPerSec, 1),
                 TablePrinter::fmt(Speedup, 1) + "x"});
    Sweep.push_back({Clients, ColdPhase, WarmPhase});
  }
  SvcT.print(std::cout);

  // Topology sweep: the paper's placement/selection wins were measured on
  // an ideal constant-latency network. Re-run simple vs optimized under
  // link contention (bus, torus2d) across machine sizes to see where the
  // win grows, shrinks, or inverts. Each workload/mode compiles once; the
  // module is node- and topology-independent, so only the runs vary.
  struct TopoRow {
    std::string Workload;
    const char *Topo;
    unsigned Nodes;
    double SimpleNs, OptNs;
  };
  std::vector<TopoRow> TopoRows;
  {
    std::printf("\nTopology sweep (simulated time, simple vs optimized):\n");
    TablePrinter TT({"workload", "topology", "nodes", "simple (us)",
                     "optimized (us)", "speedup"});
    for (const char *WName : {"health", "power"}) {
      const Workload *W = findWorkload(WName);
      Pipeline SimpleP(workloadOptions(RunMode::Simple));
      Pipeline OptP(workloadOptions(RunMode::Optimized));
      CompileResult SimpleCR = SimpleP.compile(W->Source);
      CompileResult OptCR = OptP.compile(W->Source);
      if (!SimpleCR.OK || !OptCR.OK) {
        std::fprintf(stderr, "topology sweep: compile of %s failed\n", WName);
        continue;
      }
      for (Topology Topo :
           {Topology::Ideal, Topology::Bus, Topology::Torus2D}) {
        for (unsigned Nodes : {4u, 16u, 64u}) {
          MachineConfig SM = workloadMachine(RunMode::Simple, Nodes);
          SM.Topo = Topo;
          MachineConfig OM = workloadMachine(RunMode::Optimized, Nodes);
          OM.Topo = Topo;
          RunResult RS = SimpleP.run(SimpleCR, SM);
          RunResult RO = OptP.run(OptCR, OM);
          if (!RS.OK || !RO.OK) {
            std::fprintf(stderr, "topology sweep: run of %s failed: %s%s\n",
                         WName, RS.Error.c_str(), RO.Error.c_str());
            continue;
          }
          TopoRows.push_back(
              {WName, topologyName(Topo), Nodes, RS.TimeNs, RO.TimeNs});
          TT.addRow({WName, topologyName(Topo), std::to_string(Nodes),
                     TablePrinter::fmt(RS.TimeNs / 1e3, 1),
                     TablePrinter::fmt(RO.TimeNs / 1e3, 1),
                     TablePrinter::fmt(
                         RO.TimeNs > 0 ? RS.TimeNs / RO.TimeNs : 0.0, 2) +
                         "x"});
        }
      }
    }
    TT.print(std::cout);
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "{\n"
                  "  \"bench\": \"table1\",\n"
                  "  \"nodes\": 2,\n"
                  "  \"ops_per_microbench\": %d,\n"
                  "  \"read_seq_ns\": %.1f, \"read_pipe_ns\": %.1f,\n"
                  "  \"write_seq_ns\": %.1f, \"write_pipe_ns\": %.1f,\n"
                  "  \"blkmov_seq_ns\": %.1f, \"blkmov_pipe_ns\": %.1f,\n"
                  "  \"blocking_crossover_words\": %d,\n",
                  Reps, SeqRead, PipeRead, SeqWrite, PipeWrite, SeqBlk,
                  PipeBlk, Crossover);
    Out << Buf;
    Out << "  \"paper\": {\"read_seq_ns\": 7109, \"read_pipe_ns\": 1908, "
           "\"write_seq_ns\": 6458, \"write_pipe_ns\": 1749, "
           "\"blkmov_seq_ns\": 9700, \"blkmov_pipe_ns\": 2602, "
           "\"blocking_crossover_words\": 3},\n";
    std::snprintf(Buf, sizeof(Buf),
                  "  \"host_sim_ns\": {\"workload\": \"health\", "
                  "\"mode\": \"optimized\", \"nodes\": 4, "
                  "\"ast\": %.0f, \"bytecode\": %.0f, "
                  "\"bytecode_unfused\": %.0f, \"bytecode_switch\": %.0f, "
                  "\"speedup\": %.2f},\n",
                  AstNs, BcNs, BcPlainNs, BcSwitchNs, Speedup);
    Out << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"dispatch\": {\"computed_goto\": %s, "
                  "\"default_vs_switch_speedup\": %.2f},\n",
                  computedGotoAvailable() ? "true" : "false",
                  DispatchSpeedup);
    Out << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"fused\": {\"dispatches\": %llu, \"steps\": %llu, "
                  "\"total_steps\": %llu},\n",
                  (unsigned long long)FusedRun.FusedDispatches,
                  (unsigned long long)FusedRun.FusedSteps,
                  (unsigned long long)FusedRun.StepsExecuted);
    Out << Buf;
    // parallel_exercised is the honesty bit: on a single-hardware-thread
    // host the "parallel" figure is serial work plus pool dispatch
    // overhead, and downstream consumers must not read it as a speedup.
    std::snprintf(Buf, sizeof(Buf),
                  "  \"lower_ns\": {\"serial\": %.0f, \"parallel\": %.0f, "
                  "\"parallel_threads\": %u, \"hardware_threads\": %u, "
                  "\"parallel_exercised\": %s},\n",
                  LowerSerialNs, LowerParNs, LowerPar,
                  ThreadPool::hardwareThreads(),
                  LowerPar > 1 ? "true" : "false");
    Out << Buf;
    // The <= 2% profiler-off budget is verified on quiet hardware via the
    // committed artifact (off is the same code path host_sim_ns measures);
    // CI only shape-checks this block, as wall ratios are noisy there.
    std::snprintf(Buf, sizeof(Buf),
                  "  \"profiler\": {\"off_ns\": %.0f, \"on_ns\": %.0f, "
                  "\"overhead_pct\": %.2f},\n",
                  ProfOffNs, ProfOnNs, ProfOverheadPct);
    Out << Buf;
    Out << "  \"comm_profile\": "
        << profileReportJson(*SimCR.M, Prof, &SimCR.Remarks) << ",\n";
    Out << "  \"pass_ns\": {";
    for (size_t I = 0; I != SimP.stages().size(); ++I) {
      const StageReport &SR = SimP.stages()[I];
      std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %.0f", I ? ", " : "",
                    SR.Name.c_str(), SR.WallNs);
      Out << Buf;
    }
    Out << "},\n";
    // Pass wall times measured on this host immediately before the
    // analyses' set representations moved to hashed flat sets (SideEffects
    // read/write sets, selection redundancy table); kept so the artifact
    // records the before/after of that change. Same workload (health),
    // same stages, same machine class.
    Out << "  \"pass_ns_before_flatsets\": " << kPassNsBeforeFlatSets
        << ",\n";
    // Placement + comm-select stage times at 1 worker vs all hardware
    // threads (same honesty bit convention as lower_ns: on a single-thread
    // host the parallel figure is serial work plus pool dispatch overhead).
    std::snprintf(Buf, sizeof(Buf),
                  "  \"pass_ns_serial\": {\"placement\": %.0f, "
                  "\"comm-select\": %.0f},\n",
                  PassSerPlace, PassSerSel);
    Out << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"pass_ns_parallel\": {\"placement\": %.0f, "
                  "\"comm-select\": %.0f, \"threads\": %u, "
                  "\"hardware_threads\": %u, \"parallel_exercised\": %s},\n",
                  PassParPlace, PassParSel, PassPar,
                  ThreadPool::hardwareThreads(),
                  PassPar > 1 ? "true" : "false");
    Out << Buf;
    // The service sweep: per client count, client-observed latency and
    // throughput for cold (every request a distinct compile+simulate) and
    // warm (one cached request replayed) phases. sims_per_sec counts
    // responses delivering a simulation result; compiles_per_sec counts
    // compile *executions* retired, so a fully warm phase reads 0 there by
    // construction.
    Out << "  \"service\": {\"workload\": \"power\", \"nodes\": 4, "
        << "\"requests_per_phase\": " << SweepReqs << ", \"sweep\": [";
    for (size_t I = 0; I != Sweep.size(); ++I) {
      const SweepRow &Row = Sweep[I];
      auto Phase = [&](const char *Name, const ServicePhase &Ph) {
        std::snprintf(Buf, sizeof(Buf),
                      "\"%s\": {\"min_ns\": %.0f, \"med_ns\": %.0f, "
                      "\"avg_ns\": %.0f, \"max_ns\": %.0f, "
                      "\"compiles_per_sec\": %.1f, \"sims_per_sec\": %.1f}",
                      Name, Ph.MinNs, Ph.MedNs, Ph.AvgNs, Ph.MaxNs,
                      Ph.CompilesPerSec, Ph.SimsPerSec);
        Out << Buf;
      };
      Out << (I ? ", " : "") << "{\"clients\": " << Row.Clients << ", ";
      Phase("cold", Row.Cold);
      Out << ", ";
      Phase("warm", Row.Warm);
      std::snprintf(Buf, sizeof(Buf), ", \"warm_speedup\": %.1f}",
                    Row.Cold.SimsPerSec > 0
                        ? Row.Warm.SimsPerSec / Row.Cold.SimsPerSec
                        : 0.0);
      Out << Buf;
    }
    Out << "]},\n";
    // The topology sweep: simulated end-to-end time for the simple vs
    // optimized program versions under contention. speedup is the paper's
    // optimization win at that (topology, nodes) point; comparing a row
    // against its ideal sibling shows whether contention grows, shrinks,
    // or inverts the win.
    Out << "  \"topology\": {\"workloads\": [\"health\", \"power\"], "
        << "\"topologies\": [\"ideal\", \"bus\", \"torus2d\"], "
        << "\"nodes\": [4, 16, 64], \"sweep\": [";
    for (size_t I = 0; I != TopoRows.size(); ++I) {
      const TopoRow &Row = TopoRows[I];
      std::snprintf(Buf, sizeof(Buf),
                    "%s{\"workload\": \"%s\", \"topology\": \"%s\", "
                    "\"nodes\": %u, \"simple_ns\": %.0f, "
                    "\"optimized_ns\": %.0f, \"speedup\": %.4f}",
                    I ? ", " : "", Row.Workload.c_str(), Row.Topo, Row.Nodes,
                    Row.SimpleNs, Row.OptNs,
                    Row.OptNs > 0 ? Row.SimpleNs / Row.OptNs : 0.0);
      Out << Buf;
    }
    Out << "]},\n";
    // Host-side operational metrics for this bench process: service cache
    // hit/miss counters from the request sweep and per-stage pipeline
    // wall-ns histograms. CI shape-checks this block (hit counts and stage
    // coverage); the latency numbers themselves are host-dependent.
    Out << "  \"metrics\": " << MetricsRegistry::global().snapshotJson()
        << ",\n";
    Out << "  \"counters\": " << Counters.stats().json() << "\n}\n";
    std::printf("\nwrote counter report to %s\n", JsonPath.c_str());
  }
  return 0;
}
