//===- bench_fig10.cpp - Reproduces Figure 10 (and Table II) --------------===//
//
// Part of the earthcc project.
//
// Figure 10 of the paper: dynamic communication counts of the five Olden
// benchmarks, simple vs optimized, normalized to the simple version = 100,
// broken down into read-data, write-data and blkmov operations. Table II
// (benchmark descriptions and problem sizes) is printed alongside.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <iostream>

using namespace earthcc;

int main() {
  const unsigned Nodes = 4;

  std::printf("Table II: Benchmark programs\n\n");
  TablePrinter T2({"Benchmark", "Description", "Paper size", "Our size",
                   "Dominant optimization"});
  for (const Workload &W : oldenWorkloads())
    T2.addRow({W.Name, W.Description, W.PaperSize, W.OurSize,
               W.Optimization});
  T2.print(std::cout);

  std::printf("\nFigure 10: dynamic communication counts on %u nodes\n"
              "(normalized: simple version = 100; counts are EARTH runtime "
              "operations)\n\n",
              Nodes);

  TablePrinter T({"Benchmark", "version", "read-data", "write-data",
                  "blkmov", "total", "normalized"});
  bool AllOK = true;
  for (const Workload &W : oldenWorkloads()) {
    // Compile once per version, run through the Pipeline driver.
    Pipeline SimpleP(workloadOptions(RunMode::Simple));
    Pipeline OptP(workloadOptions(RunMode::Optimized));
    RunResult S = SimpleP.run(SimpleP.compile(W.Source),
                              workloadMachine(RunMode::Simple, Nodes));
    RunResult O = OptP.run(OptP.compile(W.Source),
                           workloadMachine(RunMode::Optimized, Nodes));
    if (!S.OK || !O.OK) {
      std::fprintf(stderr, "%s failed: %s%s\n", W.Name.c_str(),
                   S.Error.c_str(), O.Error.c_str());
      AllOK = false;
      continue;
    }
    if (S.ExitValue.I != O.ExitValue.I) {
      std::fprintf(stderr,
                   "%s: MISCOMPILED - simple and optimized checksums "
                   "differ (%lld vs %lld)\n",
                   W.Name.c_str(), static_cast<long long>(S.ExitValue.I),
                   static_cast<long long>(O.ExitValue.I));
      AllOK = false;
    }
    double Norm = 100.0 * O.Counters.total() /
                  static_cast<double>(S.Counters.total());
    T.addRow({W.Name, "simple", std::to_string(S.Counters.ReadData),
              std::to_string(S.Counters.WriteData),
              std::to_string(S.Counters.BlkMov),
              std::to_string(S.Counters.total()), "100.0"});
    T.addRow({"", "optimized", std::to_string(O.Counters.ReadData),
              std::to_string(O.Counters.WriteData),
              std::to_string(O.Counters.BlkMov),
              std::to_string(O.Counters.total()),
              TablePrinter::fmt(Norm, 1)});
    T.addRule();
  }
  T.print(std::cout);
  std::printf("\nExpected shape (paper): total communication drops for every "
              "benchmark;\nread-data and write-data fall while blkmov rises "
              "(scalar operations\nare combined into block transfers).\n");
  return AllOK ? 0 : 1;
}
