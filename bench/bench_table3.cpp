//===- bench_table3.cpp - Reproduces Table III ------------------------------===//
//
// Part of the earthcc project.
//
// Table III of the paper: for each benchmark, the sequential-C time, the
// simple (unoptimized parallel) and optimized times on 1, 2, 4, 8 and 16
// processors, the corresponding speedups over sequential, and the
// percentage improvement due to communication optimization.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <iostream>

using namespace earthcc;

int main() {
  const unsigned NodeCounts[] = {1, 2, 4, 8, 16};

  std::printf("Table III: performance improvement results\n"
              "(simulated EARTH-MANNA; times in simulated milliseconds)\n\n");

  TablePrinter T({"Benchmark", "procs", "Sequential C (ms)", "Simple (ms)",
                  "Optimized (ms)", "Simple speedup", "Optimized speedup",
                  "Optimized vs Simple (%impr)"});

  bool AllOK = true;
  for (const Workload &W : oldenWorkloads()) {
    // Compile each version once; the module is machine-size independent,
    // so the node-count sweep below only re-runs the simulator.
    Pipeline SimpleP(workloadOptions(RunMode::Simple));
    Pipeline OptP(workloadOptions(RunMode::Optimized));
    CompileResult SimpleCR = SimpleP.compile(W.Source);
    CompileResult OptCR = OptP.compile(W.Source);
    RunResult Seq =
        SimpleP.run(SimpleCR, workloadMachine(RunMode::Sequential, 1));
    if (!Seq.OK) {
      std::fprintf(stderr, "%s sequential failed: %s\n", W.Name.c_str(),
                   Seq.Error.c_str());
      AllOK = false;
      continue;
    }
    bool First = true;
    for (unsigned N : NodeCounts) {
      RunResult S = SimpleP.run(SimpleCR, workloadMachine(RunMode::Simple, N));
      RunResult O = OptP.run(OptCR, workloadMachine(RunMode::Optimized, N));
      if (!S.OK || !O.OK) {
        std::fprintf(stderr, "%s @%u failed: %s%s\n", W.Name.c_str(), N,
                     S.Error.c_str(), O.Error.c_str());
        AllOK = false;
        continue;
      }
      if (S.ExitValue.I != Seq.ExitValue.I ||
          O.ExitValue.I != Seq.ExitValue.I) {
        std::fprintf(stderr, "%s @%u: checksum mismatch vs sequential\n",
                     W.Name.c_str(), N);
        AllOK = false;
      }
      double Impr = 100.0 * (S.TimeNs - O.TimeNs) / S.TimeNs;
      T.addRow({First ? W.Name : "",
                std::to_string(N) + (N == 1 ? " proc" : " procs"),
                First ? TablePrinter::fmt(Seq.TimeNs / 1e6, 2) : "",
                TablePrinter::fmt(S.TimeNs / 1e6, 2),
                TablePrinter::fmt(O.TimeNs / 1e6, 2),
                TablePrinter::fmt(Seq.TimeNs / S.TimeNs, 2),
                TablePrinter::fmt(Seq.TimeNs / O.TimeNs, 2),
                TablePrinter::fmt(Impr, 2)});
      First = false;
    }
    T.addRule();
  }
  T.print(std::cout);
  std::printf(
      "\nExpected shape (paper): communication optimization improves every\n"
      "benchmark, and the improvement generally grows with the processor\n"
      "count (paper band: ~2%% to ~16%%; perimeter/tsp/voronoi high,\n"
      "health/power low at small machine sizes).\n");
  return AllOK ? 0 : 1;
}
