# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_listsearch "/root/repo/build/examples/listsearch")
set_tests_properties(example_listsearch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_treesum "/root/repo/build/examples/treesum")
set_tests_properties(example_treesum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthcc_count "/root/repo/build/examples/earthcc" "--nodes" "4" "/root/repo/examples/programs/count.ec")
set_tests_properties(example_earthcc_count PROPERTIES  PASS_REGULAR_EXPRESSION "10" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
