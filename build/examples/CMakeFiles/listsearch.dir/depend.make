# Empty dependencies file for listsearch.
# This may be replaced when dependencies are built.
