
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/listsearch.cpp" "examples/CMakeFiles/listsearch.dir/listsearch.cpp.o" "gcc" "examples/CMakeFiles/listsearch.dir/listsearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/earthcc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/earthcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/earthcc_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/earthcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/earthcc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/simple/CMakeFiles/earthcc_simple.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/earthcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
