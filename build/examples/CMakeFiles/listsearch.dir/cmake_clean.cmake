file(REMOVE_RECURSE
  "CMakeFiles/listsearch.dir/listsearch.cpp.o"
  "CMakeFiles/listsearch.dir/listsearch.cpp.o.d"
  "listsearch"
  "listsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
