# Empty dependencies file for treesum.
# This may be replaced when dependencies are built.
