file(REMOVE_RECURSE
  "CMakeFiles/treesum.dir/treesum.cpp.o"
  "CMakeFiles/treesum.dir/treesum.cpp.o.d"
  "treesum"
  "treesum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
