file(REMOVE_RECURSE
  "CMakeFiles/earthcc.dir/earthcc_main.cpp.o"
  "CMakeFiles/earthcc.dir/earthcc_main.cpp.o.d"
  "earthcc"
  "earthcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
