# Empty compiler generated dependencies file for earthcc.
# This may be replaced when dependencies are built.
