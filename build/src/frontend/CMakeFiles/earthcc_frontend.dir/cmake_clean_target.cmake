file(REMOVE_RECURSE
  "libearthcc_frontend.a"
)
