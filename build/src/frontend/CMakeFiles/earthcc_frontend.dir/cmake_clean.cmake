file(REMOVE_RECURSE
  "CMakeFiles/earthcc_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/earthcc_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/earthcc_frontend.dir/Parser.cpp.o"
  "CMakeFiles/earthcc_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/earthcc_frontend.dir/Simplify.cpp.o"
  "CMakeFiles/earthcc_frontend.dir/Simplify.cpp.o.d"
  "libearthcc_frontend.a"
  "libearthcc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
