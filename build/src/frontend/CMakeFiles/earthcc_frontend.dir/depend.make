# Empty dependencies file for earthcc_frontend.
# This may be replaced when dependencies are built.
