file(REMOVE_RECURSE
  "libearthcc_support.a"
)
