# Empty compiler generated dependencies file for earthcc_support.
# This may be replaced when dependencies are built.
