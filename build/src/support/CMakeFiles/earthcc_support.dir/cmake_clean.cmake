file(REMOVE_RECURSE
  "CMakeFiles/earthcc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/earthcc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/earthcc_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/earthcc_support.dir/TablePrinter.cpp.o.d"
  "libearthcc_support.a"
  "libearthcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
