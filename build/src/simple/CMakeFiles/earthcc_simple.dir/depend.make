# Empty dependencies file for earthcc_simple.
# This may be replaced when dependencies are built.
