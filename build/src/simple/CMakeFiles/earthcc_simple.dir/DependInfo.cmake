
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simple/Function.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/Function.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/Function.cpp.o.d"
  "/root/repo/src/simple/IRBuilder.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/IRBuilder.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/simple/Printer.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/Printer.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/Printer.cpp.o.d"
  "/root/repo/src/simple/Stmt.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/Stmt.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/Stmt.cpp.o.d"
  "/root/repo/src/simple/Type.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/Type.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/Type.cpp.o.d"
  "/root/repo/src/simple/Verifier.cpp" "src/simple/CMakeFiles/earthcc_simple.dir/Verifier.cpp.o" "gcc" "src/simple/CMakeFiles/earthcc_simple.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/earthcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
