file(REMOVE_RECURSE
  "libearthcc_simple.a"
)
