file(REMOVE_RECURSE
  "CMakeFiles/earthcc_simple.dir/Function.cpp.o"
  "CMakeFiles/earthcc_simple.dir/Function.cpp.o.d"
  "CMakeFiles/earthcc_simple.dir/IRBuilder.cpp.o"
  "CMakeFiles/earthcc_simple.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/earthcc_simple.dir/Printer.cpp.o"
  "CMakeFiles/earthcc_simple.dir/Printer.cpp.o.d"
  "CMakeFiles/earthcc_simple.dir/Stmt.cpp.o"
  "CMakeFiles/earthcc_simple.dir/Stmt.cpp.o.d"
  "CMakeFiles/earthcc_simple.dir/Type.cpp.o"
  "CMakeFiles/earthcc_simple.dir/Type.cpp.o.d"
  "CMakeFiles/earthcc_simple.dir/Verifier.cpp.o"
  "CMakeFiles/earthcc_simple.dir/Verifier.cpp.o.d"
  "libearthcc_simple.a"
  "libearthcc_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
