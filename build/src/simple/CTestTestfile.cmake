# CMake generated Testfile for 
# Source directory: /root/repo/src/simple
# Build directory: /root/repo/build/src/simple
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
