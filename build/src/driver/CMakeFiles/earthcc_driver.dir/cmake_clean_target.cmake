file(REMOVE_RECURSE
  "libearthcc_driver.a"
)
