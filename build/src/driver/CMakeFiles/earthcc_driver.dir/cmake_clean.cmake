file(REMOVE_RECURSE
  "CMakeFiles/earthcc_driver.dir/Driver.cpp.o"
  "CMakeFiles/earthcc_driver.dir/Driver.cpp.o.d"
  "libearthcc_driver.a"
  "libearthcc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
