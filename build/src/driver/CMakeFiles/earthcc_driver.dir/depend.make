# Empty dependencies file for earthcc_driver.
# This may be replaced when dependencies are built.
