# Empty compiler generated dependencies file for earthcc_interp.
# This may be replaced when dependencies are built.
