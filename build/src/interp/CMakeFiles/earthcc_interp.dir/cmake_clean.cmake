file(REMOVE_RECURSE
  "CMakeFiles/earthcc_interp.dir/Interp.cpp.o"
  "CMakeFiles/earthcc_interp.dir/Interp.cpp.o.d"
  "libearthcc_interp.a"
  "libearthcc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
