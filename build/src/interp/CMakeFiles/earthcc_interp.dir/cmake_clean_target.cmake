file(REMOVE_RECURSE
  "libearthcc_interp.a"
)
