# Empty dependencies file for earthcc_transform.
# This may be replaced when dependencies are built.
