file(REMOVE_RECURSE
  "libearthcc_transform.a"
)
