file(REMOVE_RECURSE
  "CMakeFiles/earthcc_transform.dir/CommSelection.cpp.o"
  "CMakeFiles/earthcc_transform.dir/CommSelection.cpp.o.d"
  "libearthcc_transform.a"
  "libearthcc_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
