# Empty dependencies file for earthcc_analysis.
# This may be replaced when dependencies are built.
