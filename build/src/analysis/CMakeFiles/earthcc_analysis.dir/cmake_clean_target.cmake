file(REMOVE_RECURSE
  "libearthcc_analysis.a"
)
