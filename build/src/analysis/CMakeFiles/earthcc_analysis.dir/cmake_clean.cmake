file(REMOVE_RECURSE
  "CMakeFiles/earthcc_analysis.dir/Locality.cpp.o"
  "CMakeFiles/earthcc_analysis.dir/Locality.cpp.o.d"
  "CMakeFiles/earthcc_analysis.dir/Placement.cpp.o"
  "CMakeFiles/earthcc_analysis.dir/Placement.cpp.o.d"
  "CMakeFiles/earthcc_analysis.dir/PointsTo.cpp.o"
  "CMakeFiles/earthcc_analysis.dir/PointsTo.cpp.o.d"
  "CMakeFiles/earthcc_analysis.dir/SideEffects.cpp.o"
  "CMakeFiles/earthcc_analysis.dir/SideEffects.cpp.o.d"
  "libearthcc_analysis.a"
  "libearthcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
