file(REMOVE_RECURSE
  "libearthcc_codegen.a"
)
