# Empty dependencies file for earthcc_codegen.
# This may be replaced when dependencies are built.
