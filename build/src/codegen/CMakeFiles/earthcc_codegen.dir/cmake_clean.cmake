file(REMOVE_RECURSE
  "CMakeFiles/earthcc_codegen.dir/ThreadedC.cpp.o"
  "CMakeFiles/earthcc_codegen.dir/ThreadedC.cpp.o.d"
  "libearthcc_codegen.a"
  "libearthcc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
