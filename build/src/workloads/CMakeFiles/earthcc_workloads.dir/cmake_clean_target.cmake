file(REMOVE_RECURSE
  "libearthcc_workloads.a"
)
