file(REMOVE_RECURSE
  "CMakeFiles/earthcc_workloads.dir/Health.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Health.cpp.o.d"
  "CMakeFiles/earthcc_workloads.dir/Perimeter.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Perimeter.cpp.o.d"
  "CMakeFiles/earthcc_workloads.dir/Power.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Power.cpp.o.d"
  "CMakeFiles/earthcc_workloads.dir/Tsp.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Tsp.cpp.o.d"
  "CMakeFiles/earthcc_workloads.dir/Voronoi.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Voronoi.cpp.o.d"
  "CMakeFiles/earthcc_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/earthcc_workloads.dir/Workloads.cpp.o.d"
  "libearthcc_workloads.a"
  "libearthcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthcc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
