# Empty dependencies file for earthcc_workloads.
# This may be replaced when dependencies are built.
