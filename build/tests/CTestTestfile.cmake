# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(frontend_test "/root/repo/build/tests/frontend_test")
set_tests_properties(frontend_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(placement_test "/root/repo/build/tests/placement_test")
set_tests_properties(placement_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(selection_test "/root/repo/build/tests/selection_test")
set_tests_properties(selection_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_test "/root/repo/build/tests/interp_test")
set_tests_properties(interp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pointsto_test "/root/repo/build/tests/pointsto_test")
set_tests_properties(pointsto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(locality_test "/root/repo/build/tests/locality_test")
set_tests_properties(locality_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codegen_test "/root/repo/build/tests/codegen_test")
set_tests_properties(codegen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;earthcc_add_test;/root/repo/tests/CMakeLists.txt;0;")
