//===- earthcc_main.cpp - The earthcc command-line driver ------------------===//
//
// Part of the earthcc project.
//
// Compiles an EARTH-C source file and runs it on the simulated EARTH-MANNA
// machine:
//
//   earthcc [options] program.ec
//   earthcc --serve               # JSON request server on stdin/stdout
//
// Every knob that shapes the compile or the simulated run comes from the
// declarative request-option table (driver/Request.h): each table entry is
// one `--name value` flag here, one `"name": value` field in a --serve
// request, and (where defined) one environment variable — all applied
// through the same setter, so the surfaces cannot drift. Run `earthcc
// --help` for the generated list.
//
// Flags owned by the CLI itself (output selection, not request content):
//
//   --serve             line-oriented JSON protocol on stdin/stdout; every
//                       request is served by the in-process CompileService
//                       (content-addressed artifact cache, single-flight
//                       dedup, worker pool)
//   --workers N         service worker threads for --serve (0 = all cores)
//   --cache-mb N        service artifact-cache budget for --serve, in MiB
//   --dump-ir           print the SIMPLE program before execution
//   --dump-after-pass   print the SIMPLE program after every pipeline stage
//   --emit-threaded     print the generated Threaded-C program
//   --stats             print optimizer statistics and dynamic counters
//   --trace FILE        write a Chrome trace (chrome://tracing, Perfetto)
//   --profile[=json]    per-site communication profile: a table joining each
//                       comm site's optimizer remarks with its dynamic
//                       message counts / words / latency percentiles
//   --profile-diff A B  load two --profile=json files and print per-site
//                       deltas joined by (function, line, col, op)
//   --metrics[=json|prom]  dump the process metrics registry (cache and
//                       stage counters, latency histograms) at exit
//   --remarks           print the optimizer's structured remarks
//   --workload NAME     run an embedded Olden workload (power, perimeter,
//                       tsp, health, voronoi) instead of a source file
//
// Sample programs live in examples/programs/.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/ProfileData.h"
#include "driver/ProfileReport.h"
#include "service/Serve.h"
#include "simple/Printer.h"
#include "support/CommProfiler.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace earthcc;

static void usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s [options] program.ec\n", Argv0);
  std::fprintf(stderr, "       %s [options] --workload NAME\n", Argv0);
  std::fprintf(stderr, "       %s [options] --serve\n\n", Argv0);
  std::fprintf(stderr, "request options (CLI flag = --serve JSON field):\n");
  for (const RequestOption &O : requestOptions()) {
    std::string Flag = std::string("--") + O.Name;
    if (O.Value)
      Flag += std::string(" ") + O.Value;
    std::fprintf(stderr, "  %-22s %s%s%s%s\n", Flag.c_str(), O.Help,
                 O.Env ? " [env " : "", O.Env ? O.Env : "", O.Env ? "]" : "");
  }
  std::fprintf(stderr,
               "\ndriver options:\n"
               "  --serve                serve JSON requests on stdin/stdout\n"
               "  --workers N            --serve worker threads (0 = cores)\n"
               "  --cache-mb N           --serve artifact cache budget (MiB)\n"
               "  --workload NAME        embedded Olden benchmark\n"
               "  --dump-ir              print SIMPLE before execution\n"
               "  --dump-after-pass      print SIMPLE after each stage\n"
               "  --emit-threaded        print the generated Threaded-C\n"
               "  --stats                optimizer + dynamic statistics\n"
               "  --trace FILE           write a Chrome trace\n"
               "  --profile[=json]       per-site communication profile\n"
               "  --profile-diff A B     diff two --profile=json files per\n"
               "                         site and exit\n"
               "  --metrics[=json|prom]  host-side metrics snapshot at exit\n"
               "                         (bare flag prints both forms)\n"
               "  --remarks              print optimizer remarks\n");
}

static const RequestOption *findOption(const std::string &Name) {
  for (const RequestOption &O : requestOptions())
    if (Name == O.Name)
      return &O;
  return nullptr;
}

/// Prints the process metrics registry on stdout in the requested form(s).
/// Purely observational output: it runs after all results have been
/// produced, so it cannot perturb them.
static void emitMetrics(const std::string &Mode) {
  MetricsRegistry &Reg = MetricsRegistry::global();
  if (Mode == "json" || Mode == "both")
    std::printf("%s\n", Reg.snapshotJson().c_str());
  if (Mode == "prom" || Mode == "both")
    std::printf("%s", Reg.prometheusText().c_str());
}

/// `earthcc --profile-diff A.json B.json`: load both persisted profiles and
/// print the per-site delta table.
static int runProfileDiff(const std::string &PathA, const std::string &PathB) {
  auto ReadAll = [](const std::string &Path, std::string &Out) {
    std::ifstream In(Path);
    if (!In)
      return false;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out = Buf.str();
    return true;
  };
  std::string TextA, TextB, Err;
  ProfileData A, B;
  for (auto &[Path, Text, Data] :
       {std::tie(PathA, TextA, A), std::tie(PathB, TextB, B)}) {
    if (!ReadAll(Path, Text)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    if (!loadProfileJson(Text, Data, Err)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
  }
  std::printf("%s", renderProfileDiff(A, B, PathA, PathB).c_str());
  return 0;
}

int main(int argc, char **argv) {
  CompileRequest CReq;
  RunRequest RReq;
  std::string Err;
  if (!applyRequestEnv(CReq, RReq, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }

  bool Serve = false;
  unsigned Workers = 0;
  size_t CacheMB = 256;
  bool DumpIR = false, DumpAfterPass = false, EmitThreaded = false;
  bool Stats = false, Profile = false, ProfileJson = false;
  bool PrintRemarks = false;
  std::string TracePath, Path, WorkloadName;
  std::string MetricsMode;           // "", "json", "prom" or "both"
  std::string DiffPathA, DiffPathB;  // --profile-diff operands

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (Arg.size() < 2 || Arg[0] != '-' || Arg[1] != '-') {
      if (!Arg.empty() && Arg[0] == '-') {
        usage(argv[0]);
        return 2;
      }
      Path = Arg;
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    if (size_t Eq = Name.find('='); Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    auto NeedValue = [&]() {
      if (HasValue)
        return true;
      if (I + 1 < argc) {
        Value = argv[++I];
        return true;
      }
      std::fprintf(stderr, "error: --%s requires a value\n", Name.c_str());
      return false;
    };

    // Driver-local flags (output selection; not request content).
    if (Name == "serve") {
      Serve = true;
    } else if (Name == "workers") {
      if (!NeedValue())
        return 2;
      Workers = static_cast<unsigned>(std::atoi(Value.c_str()));
    } else if (Name == "cache-mb") {
      if (!NeedValue())
        return 2;
      CacheMB = static_cast<size_t>(std::atoll(Value.c_str()));
    } else if (Name == "dump-ir") {
      DumpIR = true;
    } else if (Name == "dump-after-pass") {
      DumpAfterPass = true;
    } else if (Name == "emit-threaded") {
      EmitThreaded = true;
    } else if (Name == "stats") {
      Stats = true;
    } else if (Name == "profile") {
      Profile = true;
      ProfileJson = (Value == "json");
    } else if (Name == "metrics") {
      MetricsMode = HasValue ? Value : "both";
      if (MetricsMode != "json" && MetricsMode != "prom" &&
          MetricsMode != "both") {
        std::fprintf(stderr,
                     "error: --metrics takes 'json' or 'prom' (bare flag "
                     "prints both)\n");
        return 2;
      }
    } else if (Name == "profile-diff") {
      // Consumes two operands: the baseline and the comparison profile.
      if (!NeedValue())
        return 2;
      DiffPathA = Value;
      if (I + 1 >= argc) {
        std::fprintf(stderr,
                     "error: --profile-diff needs two profile files\n");
        return 2;
      }
      DiffPathB = argv[++I];
    } else if (Name == "remarks") {
      PrintRemarks = true;
    } else if (Name == "trace") {
      if (!NeedValue())
        return 2;
      TracePath = Value;
    } else if (Name == "workload") {
      if (!NeedValue())
        return 2;
      WorkloadName = Value;
    } else if (const RequestOption *Opt = findOption(Name)) {
      // A request knob: valued options consume the next argument; boolean
      // knobs apply "on" when bare.
      if (Opt->Value && !NeedValue())
        return 2;
      if (!applyRequestOption(CReq, RReq, Name, Value, Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '--%s'\n", Name.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!DiffPathA.empty())
    return runProfileDiff(DiffPathA, DiffPathB);

  if (Serve) {
    if (!Path.empty() || !WorkloadName.empty()) {
      std::fprintf(stderr, "error: --serve takes no program argument\n");
      return 2;
    }
    ServeOptions SO;
    SO.Service.Workers = Workers;
    SO.Service.CacheBudgetBytes = CacheMB << 20;
    SO.BaseCompile = CReq; // process-wide defaults under each request
    SO.BaseRun = RReq;
    runServeLoop(std::cin, std::cout, SO);
    if (!MetricsMode.empty())
      emitMetrics(MetricsMode);
    return 0;
  }

  if ((Path.empty() == WorkloadName.empty()) || RReq.Nodes == 0) {
    usage(argv[0]);
    return 2;
  }

  if (!WorkloadName.empty()) {
    const Workload *W = findWorkload(WorkloadName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s' (",
                   WorkloadName.c_str());
      const auto &All = oldenWorkloads();
      for (size_t I = 0; I != All.size(); ++I)
        std::fprintf(stderr, "%s%s", I ? ", " : "", All[I].Name.c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
    CReq.Source = W->Source;
    Path = "workload:" + WorkloadName;
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    CReq.Source = Buf.str();
  }

  Pipeline P;
  ChromeTraceSink TraceSink;
  if (!TracePath.empty())
    P.setTraceSink(&TraceSink); // attached before compile: pass events too
  IRDumpObserver Dumper(std::cout);
  if (DumpAfterPass)
    P.addObserver(&Dumper);

  CompileResult CR = P.compile(CReq);
  if (!CR.OK) {
    std::fprintf(stderr, "%s", CR.Messages.c_str());
    return 1;
  }

  if (DumpIR)
    std::printf("%s\n", printModule(*CR.M).c_str());
  if (EmitThreaded)
    std::printf("%s", P.emitThreadedC(*CR.M).c_str());
  if (PrintRemarks)
    std::printf("%s", CR.Remarks.str().c_str());

  CommProfiler Prof;
  if (Profile)
    RReq.Profiler = &Prof;
  RunResult R = P.run(CR, RReq);
  for (const std::string &Line : R.Output)
    std::printf("%s\n", Line.c_str());
  if (!R.OK) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }

  if (Profile) {
    if (ProfileJson)
      std::printf("%s\n",
                  profileReportJson(*CR.M, Prof, &CR.Remarks).c_str());
    else
      std::printf("%s",
                  renderProfileReport(*CR.M, Prof, &CR.Remarks).c_str());
  }

  if (!TracePath.empty()) {
    std::ofstream TraceOut(TracePath);
    if (!TraceOut) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      return 1;
    }
    TraceSink.write(TraceOut);
    std::fprintf(stderr, "[trace: %zu events -> %s]\n",
                 TraceSink.events().size(), TracePath.c_str());
  }

  unsigned EffNodes = RReq.Sequential ? 1 : RReq.Nodes;
  std::fprintf(stderr, "[%s: %.3f simulated ms on %u node%s]\n", Path.c_str(),
               R.TimeNs / 1e6, EffNodes, EffNodes == 1 ? "" : "s");
  if (Stats) {
    std::fprintf(stderr,
                 "[ops: read=%llu write=%llu blkmov=%llu atomic=%llu "
                 "local-fallback=%llu words-moved=%llu spawns=%llu]\n",
                 (unsigned long long)R.Counters.ReadData,
                 (unsigned long long)R.Counters.WriteData,
                 (unsigned long long)R.Counters.BlkMov,
                 (unsigned long long)R.Counters.Atomic,
                 (unsigned long long)R.Counters.LocalFallbacks,
                 (unsigned long long)R.Counters.WordsMoved,
                 (unsigned long long)R.Counters.Spawns);
    for (const StageReport &SR : P.stages())
      std::fprintf(stderr, "[stage %-12s %10.1f us]\n", SR.Name.c_str(),
                   SR.WallNs / 1e3);
    std::fprintf(stderr, "%s", CR.Stats.str().c_str());
  }
  if (!MetricsMode.empty())
    emitMetrics(MetricsMode);
  return static_cast<int>(R.ExitValue.I);
}
