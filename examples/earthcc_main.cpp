//===- earthcc_main.cpp - The earthcc command-line driver ------------------===//
//
// Part of the earthcc project.
//
// Compiles an EARTH-C source file and runs it on the simulated EARTH-MANNA
// machine:
//
//   earthcc [options] program.ec
//
//   --nodes N           machine size (default 4)
//   --engine E          execution engine: bytecode (default) or ast
//   --fuse on|off       superinstruction fusion in the bytecode engine
//                       (default on; simulated results are identical
//                       either way — this is a host-speed knob)
//   --lower-threads N   worker threads for bytecode lowering (default 1;
//                       0 = all hardware threads; output is identical)
//   --no-opt            disable the communication optimization
//   --seq               sequential-C baseline (1 node, no EARTH operations)
//   --dump-ir           print the SIMPLE program before execution
//   --dump-after-pass   print the SIMPLE program after every pipeline stage
//   --stats             print optimizer statistics and dynamic counters
//   --trace FILE        write a Chrome trace (chrome://tracing, Perfetto)
//   --profile[=json]    per-site communication profile: a table joining each
//                       comm site's optimizer remarks with its dynamic
//                       message counts / words / latency percentiles
//                       (=json emits the same join as one JSON object)
//   --remarks           print the optimizer's structured remarks
//   --workload NAME     run an embedded Olden workload (power, perimeter,
//                       tsp, health, voronoi) instead of a source file
//   --entry NAME        entry function (default main)
//   --threshold W       blocking threshold in words (default 3)
//
// Sample programs live in examples/programs/.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"
#include "driver/Pipeline.h"
#include "driver/ProfileReport.h"
#include "simple/Printer.h"
#include "support/CommProfiler.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace earthcc;

static void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--engine ast|bytecode] "
               "[--fuse on|off] [--lower-threads N] [--no-opt] "
               "[--seq] [--locality] [--dump-ir] "
               "[--dump-after-pass] [--emit-threaded] [--stats] "
               "[--trace FILE] [--profile[=json]] [--remarks] "
               "[--workload NAME] [--entry NAME] [--threshold W] "
               "[program.ec]\n",
               Argv0);
}

int main(int argc, char **argv) {
  unsigned Nodes = 4;
  bool Optimize = true;
  bool Locality = false;
  bool Sequential = false;
  bool DumpIR = false;
  bool DumpAfterPass = false;
  bool EmitThreaded = false;
  bool Stats = false;
  std::string Entry = "main";
  std::string Path;
  std::string WorkloadName;
  bool Profile = false;
  bool ProfileJson = false;
  bool PrintRemarks = false;
  std::string TracePath;
  unsigned Threshold = 3;
  ExecEngine Engine = ExecEngine::Bytecode;
  bool Fuse = defaultFuseEnabled();
  unsigned LowerThreads = 1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // The new knobs accept --flag=value as well as --flag value.
    std::string Inline;
    if (Arg.rfind("--fuse=", 0) == 0 || Arg.rfind("--lower-threads=", 0) == 0) {
      size_t Eq = Arg.find('=');
      Inline = Arg.substr(Eq + 1);
      Arg = Arg.substr(0, Eq);
    }
    auto Value = [&](const char *&Out) {
      if (!Inline.empty()) {
        Out = Inline.c_str();
        return true;
      }
      if (I + 1 < argc) {
        Out = argv[++I];
        return true;
      }
      return false;
    };
    const char *V = nullptr;
    if (Arg == "--fuse" && Value(V)) {
      std::string F = V;
      if (F == "on") {
        Fuse = true;
      } else if (F == "off") {
        Fuse = false;
      } else {
        std::fprintf(stderr, "error: --fuse expects on|off, got '%s'\n",
                     F.c_str());
        return 2;
      }
    } else if (Arg == "--lower-threads" && Value(V)) {
      LowerThreads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--nodes" && I + 1 < argc) {
      Nodes = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "--engine" && I + 1 < argc) {
      std::string E = argv[++I];
      if (E == "ast") {
        Engine = ExecEngine::AST;
      } else if (E == "bytecode") {
        Engine = ExecEngine::Bytecode;
      } else {
        std::fprintf(stderr, "error: unknown engine '%s' (ast|bytecode)\n",
                     E.c_str());
        return 2;
      }
    } else if (Arg == "--no-opt") {
      Optimize = false;
    } else if (Arg == "--locality") {
      Locality = true;
    } else if (Arg == "--seq") {
      Sequential = true;
    } else if (Arg == "--dump-ir") {
      DumpIR = true;
    } else if (Arg == "--dump-after-pass") {
      DumpAfterPass = true;
    } else if (Arg == "--emit-threaded") {
      EmitThreaded = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--profile=json") {
      Profile = ProfileJson = true;
    } else if (Arg == "--remarks") {
      PrintRemarks = true;
    } else if (Arg == "--workload" && I + 1 < argc) {
      WorkloadName = argv[++I];
    } else if (Arg == "--trace" && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (Arg == "--entry" && I + 1 < argc) {
      Entry = argv[++I];
    } else if (Arg == "--threshold" && I + 1 < argc) {
      Threshold = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      Path = Arg;
    }
  }
  if ((Path.empty() == WorkloadName.empty()) || Nodes == 0) {
    usage(argv[0]);
    return 2;
  }

  std::string Source;
  if (!WorkloadName.empty()) {
    const Workload *W = findWorkload(WorkloadName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s' (",
                   WorkloadName.c_str());
      const auto &All = oldenWorkloads();
      for (size_t I = 0; I != All.size(); ++I)
        std::fprintf(stderr, "%s%s", I ? ", " : "", All[I].Name.c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
    Source = W->Source;
    Path = "workload:" + WorkloadName;
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  PipelineOptions PO;
  PO.Optimize = Optimize && !Sequential;
  PO.InferLocality = Locality && !Sequential;
  PO.BlockThresholdWords = Threshold;
  PO.LowerThreads = LowerThreads;

  Pipeline P(PO);
  ChromeTraceSink TraceSink;
  if (!TracePath.empty())
    P.setTraceSink(&TraceSink); // attached before compile: pass events too
  IRDumpObserver Dumper(std::cout);
  if (DumpAfterPass)
    P.addObserver(&Dumper);

  CompileResult CR = P.compile(Source);
  if (!CR.OK) {
    std::fprintf(stderr, "%s", CR.Messages.c_str());
    return 1;
  }

  if (DumpIR)
    std::printf("%s\n", printModule(*CR.M).c_str());
  if (EmitThreaded)
    std::printf("%s", P.emitThreadedC(*CR.M).c_str());
  if (PrintRemarks)
    std::printf("%s", CR.Remarks.str().c_str());

  MachineConfig MC;
  MC.NumNodes = Sequential ? 1 : Nodes;
  MC.SequentialMode = Sequential;
  MC.Engine = Engine;
  MC.Fuse = Fuse;
  CommProfiler Prof;
  if (Profile)
    MC.Profiler = &Prof;
  RunResult R = P.run(CR, MC, Entry);
  for (const std::string &Line : R.Output)
    std::printf("%s\n", Line.c_str());
  if (!R.OK) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }

  if (Profile) {
    if (ProfileJson)
      std::printf("%s\n",
                  profileReportJson(*CR.M, Prof, &CR.Remarks).c_str());
    else
      std::printf("%s",
                  renderProfileReport(*CR.M, Prof, &CR.Remarks).c_str());
  }

  if (!TracePath.empty()) {
    std::ofstream TraceOut(TracePath);
    if (!TraceOut) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      return 1;
    }
    TraceSink.write(TraceOut);
    std::fprintf(stderr, "[trace: %zu events -> %s]\n",
                 TraceSink.events().size(), TracePath.c_str());
  }

  std::fprintf(stderr, "[%s: %.3f simulated ms on %u node%s]\n",
               Path.c_str(), R.TimeNs / 1e6, MC.NumNodes,
               MC.NumNodes == 1 ? "" : "s");
  if (Stats) {
    std::fprintf(stderr,
                 "[ops: read=%llu write=%llu blkmov=%llu atomic=%llu "
                 "local-fallback=%llu words-moved=%llu spawns=%llu]\n",
                 (unsigned long long)R.Counters.ReadData,
                 (unsigned long long)R.Counters.WriteData,
                 (unsigned long long)R.Counters.BlkMov,
                 (unsigned long long)R.Counters.Atomic,
                 (unsigned long long)R.Counters.LocalFallbacks,
                 (unsigned long long)R.Counters.WordsMoved,
                 (unsigned long long)R.Counters.Spawns);
    for (const StageReport &SR : P.stages())
      std::fprintf(stderr, "[stage %-12s %10.1f us]\n", SR.Name.c_str(),
                   SR.WallNs / 1e3);
    std::fprintf(stderr, "%s", CR.Stats.str().c_str());
  }
  return static_cast<int>(R.ExitValue.I);
}
