//===- quickstart.cpp - earthcc in five minutes ----------------------------===//
//
// Part of the earthcc project.
//
// Compiles the paper's running example (Figure 3, `distance`), shows the
// SIMPLE code before and after communication optimization, and runs both
// versions on the simulated EARTH-MANNA machine.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "simple/Printer.h"

#include <cstdio>

using namespace earthcc;

int main() {
  // An EARTH-C program: a Point structure lives somewhere in the machine's
  // global address space, so every access through `p` may be remote.
  const char *Source = R"(
    struct Point { double x; double y; };

    double distance(Point *p) {
      double dist_p;
      dist_p = sqrt(p->x * p->x + p->y * p->y);
      return dist_p;
    }

    int main() {
      Point *p;
      double d;
      p = pmalloc(sizeof(Point))@node(1); // Allocate on node 1...
      p->x = 3.0;
      p->y = 4.0;
      d = distance(p);                    // ...access it from node 0.
      print(d);
      if (fabs(d - 5.0) < 0.000001) { return 0; }
      return 1;
    }
  )";

  // 1. Compile without the communication optimization ("simple").
  Pipeline SimpleP(PipelineOptions::simple());
  CompileResult SimpleCR = SimpleP.compile(Source);
  if (!SimpleCR.OK) {
    std::fprintf(stderr, "compile error:\n%s\n", SimpleCR.Messages.c_str());
    return 1;
  }

  // 2. Compile with the optimization (the paper's framework).
  Pipeline OptP(PipelineOptions::optimized());
  CompileResult OptCR = OptP.compile(Source);
  if (!OptCR.OK) {
    std::fprintf(stderr, "compile error:\n%s\n", OptCR.Messages.c_str());
    return 1;
  }

  std::printf("=== SIMPLE form (unoptimized): four remote reads {r} ===\n%s\n",
              printFunction(*SimpleCR.M->findFunction("distance")).c_str());
  std::printf("=== after communication selection: two pipelined reads, "
              "reused ===\n%s\n",
              printFunction(*OptCR.M->findFunction("distance")).c_str());

  // 3. Run both on a 2-node simulated EARTH-MANNA machine.
  MachineConfig MC;
  MC.NumNodes = 2;
  RunResult SimpleRun = SimpleP.run(*SimpleCR.M, MC);
  RunResult OptRun = OptP.run(*OptCR.M, MC);
  if (!SimpleRun.OK || !OptRun.OK) {
    std::fprintf(stderr, "runtime error: %s%s\n", SimpleRun.Error.c_str(),
                 OptRun.Error.c_str());
    return 1;
  }

  std::printf("=== execution on 2 simulated nodes ===\n");
  std::printf("simple   : %8.0f ns, %llu remote ops (%llu reads)\n",
              SimpleRun.TimeNs,
              static_cast<unsigned long long>(SimpleRun.Counters.total()),
              static_cast<unsigned long long>(SimpleRun.Counters.ReadData));
  std::printf("optimized: %8.0f ns, %llu remote ops (%llu reads)\n",
              OptRun.TimeNs,
              static_cast<unsigned long long>(OptRun.Counters.total()),
              static_cast<unsigned long long>(OptRun.Counters.ReadData));
  std::printf("both computed distance = %s (exit codes %lld / %lld)\n",
              SimpleRun.Output.empty() ? "?" : SimpleRun.Output[0].c_str(),
              static_cast<long long>(SimpleRun.ExitValue.I),
              static_cast<long long>(OptRun.ExitValue.I));
  return SimpleRun.ExitValue.I == 0 && OptRun.ExitValue.I == 0 ? 0 : 1;
}
