//===- treesum.cpp - A distributed tree application, scaled up -------------===//
//
// Part of the earthcc project.
//
// A domain-specific scenario of the kind the paper's introduction
// motivates: a large binary tree distributed over the machine, traversed
// by parallel recursion with placed calls. The example sweeps machine
// sizes and reports the speedups and the effect of the communication
// optimization — a miniature version of the Table III experiment on a
// fresh application (not one of the five Olden benchmarks).
//
// Build & run:  ./build/examples/treesum
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <iostream>

using namespace earthcc;

namespace {

const char *Program = R"(
  struct Node {
    double value;
    double weight;
    int depth;
    Node *left;
    Node *right;
  };

  int spreadnode(int where, int k, int depth) {
    if (depth >= 7) {
      return (where * 2 + k + 1) % num_nodes();
    }
    return where;
  }

  Node *build(int depth, int seed, int where) {
    Node *n;
    int s; int w0; int w1;
    if (depth == 0) { return NULL; }
    s = (seed * 1103515245 + 12345) % 2147483648;
    if (s < 0) { s = -s; }
    n = pmalloc(sizeof(Node))@node(where);
    n->value = (s % 512) * 0.125;
    n->weight = ((s / 512) % 256) * 0.25;
    n->depth = depth;
    w0 = spreadnode(where, 0, depth);
    w1 = spreadnode(where, 1, depth);
    if (depth >= 6) {
      {^
        n->left = build(depth - 1, s + 1, w0)@node(w0);
        n->right = build(depth - 1, s + 2, w1)@node(w1);
      ^}
    } else {
      n->left = build(depth - 1, s + 1, w0)@node(w0);
      n->right = build(depth - 1, s + 2, w1)@node(w1);
    }
    return n;
  }

  // Weighted sum with a local reduction per node: reads three fields of
  // every tree node (value, weight, depth), a blocking-friendly pattern.
  double wsum(Node *n, int depth) {
    double a; double b; double v; double w;
    int d;
    Node *l; Node *r;
    if (n == NULL) { return 0.0; }
    v = n->value;
    w = n->weight;
    d = n->depth;
    l = n->left;
    r = n->right;
    if (depth > 0 && l != NULL && r != NULL) {
      {^
        a = wsum(l, depth - 1)@OWNER_OF(l);
        b = wsum(r, depth - 1)@OWNER_OF(r);
      ^}
    } else {
      a = wsum(l, 0);
      b = wsum(r, 0);
    }
    return v * w + d + a + b;
  }

  int main() {
    Node *root;
    double total;
    root = build(9, 42, 0);
    total = wsum(root, 4);
    return total * 0.0625;
  }
)";

} // namespace

int main() {
  std::printf("treesum: weighted sum over a distributed binary tree "
              "(511 nodes)\n\n");

  // Compile each version once; the module is machine-size independent, so
  // the node sweep below only re-runs the simulator.
  Pipeline SimpleP(PipelineOptions::simple());
  Pipeline OptP(PipelineOptions::optimized());
  CompileResult SimpleCR = SimpleP.compile(Program);
  CompileResult OptCR = OptP.compile(Program);
  if (!SimpleCR.OK || !OptCR.OK) {
    std::fprintf(stderr, "compile error:\n%s%s\n", SimpleCR.Messages.c_str(),
                 OptCR.Messages.c_str());
    return 1;
  }

  MachineConfig SeqMC;
  SeqMC.SequentialMode = true;
  RunResult Seq = SimpleP.run(SimpleCR, SeqMC);
  if (!Seq.OK) {
    std::fprintf(stderr, "error: %s\n", Seq.Error.c_str());
    return 1;
  }

  TablePrinter T({"nodes", "simple (ms)", "optimized (ms)", "simple ops",
                  "optimized ops", "speedup (opt)", "impr (%)"});
  for (unsigned N : {1u, 2u, 4u, 8u, 16u}) {
    MachineConfig MC;
    MC.NumNodes = N;
    RunResult S = SimpleP.run(SimpleCR, MC);
    RunResult O = OptP.run(OptCR, MC);
    if (!S.OK || !O.OK) {
      std::fprintf(stderr, "error: %s%s\n", S.Error.c_str(),
                   O.Error.c_str());
      return 1;
    }
    if (S.ExitValue.I != Seq.ExitValue.I || O.ExitValue.I != Seq.ExitValue.I) {
      std::fprintf(stderr, "checksum mismatch at %u nodes\n", N);
      return 1;
    }
    T.addRow({std::to_string(N), TablePrinter::fmt(S.TimeNs / 1e6, 2),
              TablePrinter::fmt(O.TimeNs / 1e6, 2),
              std::to_string(S.Counters.total()),
              std::to_string(O.Counters.total()),
              TablePrinter::fmt(Seq.TimeNs / O.TimeNs, 2),
              TablePrinter::fmt(100.0 * (S.TimeNs - O.TimeNs) / S.TimeNs,
                                1)});
  }
  T.print(std::cout);
  std::printf("\nchecksum %lld consistent across sequential and all "
              "parallel configurations\n",
              static_cast<long long>(Seq.ExitValue.I));
  return 0;
}
