//===- listsearch.cpp - The paper's Figures 7 and 8, live ------------------===//
//
// Part of the earthcc project.
//
// Walks through the paper's worked example end to end: the list-searching
// program of Figure 7 is compiled; the possible-placement analysis' sets
// of RemoteRead tuples are printed at the program points the paper shows;
// then communication selection transforms the function into the Figure
// 8(b) form (pipelined reads of t before the loop, one blkmov of p per
// iteration, pipelined reads of close after the loop); finally both
// versions run on the simulator over a distributed list.
//
// Build & run:  ./build/examples/listsearch
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"
#include "driver/Pipeline.h"
#include "simple/Printer.h"

#include <cstdio>

using namespace earthcc;

namespace {

const char *Program = R"(
  struct Point { double x; double y; Point *next; };

  double f(double ax, double ay, double bx, double by) {
    return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
  }

  // Figure 7: find the last list point within epsilon of t; then compute
  // coordinate differences.
  double closest(Point *head, Point *t, double epsilon) {
    Point *p;
    Point *close;
    double ax; double ay; double bx; double by; double dist;
    double cx; double tx; double diffx; double cy; double ty; double diffy;
    p = head;
    while (p != NULL) {
      ax = p->x;
      ay = p->y;
      bx = t->x;
      by = t->y;
      dist = f(ax, ay, bx, by);
      if (dist < epsilon) { close = p; }
      p = p->next;
    }
    cx = close->x;
    tx = t->x;
    diffx = cx - tx;
    cy = close->y;
    ty = t->y;
    diffy = cy - ty;
    return diffx + diffy;
  }

  Point *build(int n) {
    Point *head; Point *pt; int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
      pt = pmalloc(sizeof(Point))@node(i % num_nodes());
      pt->x = i * 0.5;
      pt->y = i * 0.25;
      pt->next = head;
      head = pt;
    }
    return head;
  }

  int main() {
    Point *head; Point *t;
    double d;
    head = build(64);
    t = pmalloc(sizeof(Point))@node(1);
    t->x = 10.0;
    t->y = 5.0;
    t->next = NULL;
    d = closest(head, t, 30.0);
    return d * 16.0;
  }
)";

void printPlacementSets(Module &M) {
  Function *F = M.findFunction("closest");
  PointsToAnalysis PT(M);
  SideEffects SE(M, PT);
  PlacementResult PR = runPlacementAnalysis(*F, SE);

  std::printf("=== possible-placement analysis: RemoteReads sets "
              "(paper Figure 7) ===\n");
  forEachStmt(F->body(), [&](const Stmt &S) {
    const auto &Set = PR.readsBefore(&S);
    if (Set.empty() || !S.isBasic())
      return;
    std::string Line = printStmt(S, PrintOptions{});
    if (!Line.empty() && Line.back() == '\n')
      Line.pop_back();
    std::printf("%-28s  {", Line.c_str());
    for (size_t I = 0; I != Set.size(); ++I)
      std::printf("%s%s", I ? ", " : " ", Set[I].str().c_str());
    std::printf(" }\n");
  });
  std::printf("\n");
}

} // namespace

int main() {
  Pipeline SimpleP(PipelineOptions::simple());
  Pipeline OptP(PipelineOptions::optimized());
  CompileResult SimpleCR = SimpleP.compile(Program);
  CompileResult OptCR = OptP.compile(Program);
  if (!SimpleCR.OK || !OptCR.OK) {
    std::fprintf(stderr, "compile error:\n%s%s\n", SimpleCR.Messages.c_str(),
                 OptCR.Messages.c_str());
    return 1;
  }

  printPlacementSets(*SimpleCR.M);

  std::printf("=== after communication selection (paper Figure 8(b)) ===\n%s\n",
              printFunction(*OptCR.M->findFunction("closest")).c_str());

  MachineConfig MC;
  MC.NumNodes = 4;
  RunResult S = SimpleP.run(*SimpleCR.M, MC);
  RunResult O = OptP.run(*OptCR.M, MC);
  if (!S.OK || !O.OK) {
    std::fprintf(stderr, "runtime error: %s%s\n", S.Error.c_str(),
                 O.Error.c_str());
    return 1;
  }
  std::printf("=== execution on 4 simulated nodes ===\n");
  std::printf("simple   : %9.0f ns, reads=%llu writes=%llu blkmov=%llu\n",
              S.TimeNs, (unsigned long long)S.Counters.ReadData,
              (unsigned long long)S.Counters.WriteData,
              (unsigned long long)S.Counters.BlkMov);
  std::printf("optimized: %9.0f ns, reads=%llu writes=%llu blkmov=%llu\n",
              O.TimeNs, (unsigned long long)O.Counters.ReadData,
              (unsigned long long)O.Counters.WriteData,
              (unsigned long long)O.Counters.BlkMov);
  std::printf("checksums: %lld / %lld (%s)\n",
              (long long)S.ExitValue.I, (long long)O.ExitValue.I,
              S.ExitValue.I == O.ExitValue.I ? "match" : "MISMATCH");
  return S.ExitValue.I == O.ExitValue.I ? 0 : 1;
}
