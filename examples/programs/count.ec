// The paper's Figure 1(a): count occurrences of a node value in a list,
// in parallel, with a shared accumulator.
//
//   ./build/examples/earthcc --nodes 4 --stats examples/programs/count.ec

struct node { int value; node *next; };

int equal_node(node local *p, node *q) {
  int qv;
  qv = q->value;
  if (p->value == qv) { return 1; }
  return 0;
}

int count(node *head, node *x) {
  shared int cnt;
  node *p;
  int r;
  writeto(&cnt, 0);
  forall (p = head; p != NULL; p = p->next) {
    int eq;
    eq = equal_node(p, x)@OWNER_OF(p);
    if (eq == 1) { addto(&cnt, 1); }
  }
  r = valueof(&cnt);
  return r;
}

node *build(int n) {
  node *head; node *p; int i;
  head = NULL;
  for (i = 0; i < n; i = i + 1) {
    p = pmalloc(sizeof(node))@node(i % num_nodes());
    p->value = i % 7;
    p->next = head;
    head = p;
  }
  return head;
}

int main() {
  node *head; node *x;
  int c;
  head = build(70);
  x = pmalloc(sizeof(node))@node(0);
  x->value = 3;
  x->next = NULL;
  c = count(head, x);
  print(c);
  return c; // 10 of the 70 nodes carry value 3.
}
