// The paper's Figure 4: scale both coordinates of remote points.
// With --threshold 2 the optimizer turns the function body into one
// blkmov in and one blkmov out (Figure 4(d)).
//
//   ./build/examples/earthcc --nodes 2 --dump-ir --threshold 2 \
//       examples/programs/scale.ec

struct Point { double x; double y; };

double scale(double v, double k) { return v * k; }

void scale_point(Point *p, double k) {
  p->x = scale(p->x, k);
  p->y = scale(p->y, k);
}

int main() {
  Point *p;
  double x2;
  p = pmalloc(sizeof(Point))@node(1);
  p->x = 1.5;
  p->y = 2.5;
  scale_point(p, 4.0);
  x2 = p->x;
  print(x2);
  print(p->y);
  return x2; // 6
}
