//===- earthserve_client.cpp - Load generator for earthcc --serve ----------===//
//
// Part of the earthcc project.
//
// Spawns `earthcc --serve` as a child process and drives its line-oriented
// JSON protocol: a stream of pipelined run requests (ids 1..N), responses
// matched by id as they arrive (the server answers out of order), then a
// clean shutdown. Reports per-request latency percentiles and the server's
// cache verdicts — a minimal client for eyeballing service behaviour; the
// systematic sweep lives in bench_table1's `service` block.
//
//   earthserve_client [--server "path/to/earthcc --serve ..."]
//                     [--requests N] [--distinct K] [--workload NAME]
//                     [--nodes N] [--topology NAME] [--distribution NAME]
//                     [--profile] [--metrics-every N]
//
// `--distinct K` rotates the traffic over K distinct cache keys (the source
// is salted with a block comment), so K=1 measures a pure warm-cache hit
// stream and K=N a pure cold-miss stream.
//
// `--metrics-every N` interleaves a `{"op":"metrics"}` poll after every N
// collected responses and prints one summary line per poll (server-side
// cache verdicts and queue depth) — the live view of the same registry the
// final `stats` numbers come from.
//
// Per-op latencies are recorded into a client-side Metrics histogram
// (support/Metrics.h) as well as the exact sorted list, so the reported
// p50/p95/p99 exercise the very bucketing the server uses — a drift between
// the two forms is a client-visible sanity check on the server histograms.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace earthcc;

namespace {

struct ServerProcess {
  pid_t Pid = -1;
  FILE *In = nullptr;  ///< Server's stdin (we write requests here).
  FILE *Out = nullptr; ///< Server's stdout (we read responses here).
};

/// fork/exec \p Argv with both standard streams piped.
bool spawnServer(const std::vector<std::string> &Argv, ServerProcess &S) {
  int ToChild[2], FromChild[2];
  if (pipe(ToChild) != 0 || pipe(FromChild) != 0) {
    std::perror("pipe");
    return false;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("fork");
    return false;
  }
  if (Pid == 0) {
    dup2(ToChild[0], STDIN_FILENO);
    dup2(FromChild[1], STDOUT_FILENO);
    close(ToChild[0]);
    close(ToChild[1]);
    close(FromChild[0]);
    close(FromChild[1]);
    std::vector<char *> Args;
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    execvp(Args[0], Args.data());
    std::perror("execvp");
    _exit(127);
  }
  close(ToChild[0]);
  close(FromChild[1]);
  S.Pid = Pid;
  S.In = fdopen(ToChild[1], "w");
  S.Out = fdopen(FromChild[0], "r");
  return S.In && S.Out;
}

bool readLine(FILE *F, std::string &Line) {
  Line.clear();
  int C;
  while ((C = std::fgetc(F)) != EOF) {
    if (C == '\n')
      return true;
    Line.push_back(static_cast<char>(C));
  }
  return !Line.empty();
}

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

/// Sums the "svc.requests" counter rows of a metrics snapshot whose labels
/// match \p Op and \p Outcome.
uint64_t sumRequests(const json::Value &Snapshot, const std::string &Op,
                     const std::string &Outcome) {
  const json::Value *Counters = Snapshot.find("counters");
  if (!Counters || !Counters->isArray())
    return 0;
  uint64_t Sum = 0;
  for (const json::Value &Row : Counters->items()) {
    if (Row.getString("name", "") != "svc.requests")
      continue;
    const json::Value *Labels = Row.find("labels");
    if (!Labels || Labels->getString("op", "") != Op ||
        Labels->getString("outcome", "") != Outcome)
      continue;
    Sum += static_cast<uint64_t>(Row.getNumber("value", 0));
  }
  return Sum;
}

int64_t gaugeValue(const json::Value &Snapshot, const std::string &Name) {
  const json::Value *Gauges = Snapshot.find("gauges");
  if (!Gauges || !Gauges->isArray())
    return 0;
  for (const json::Value &Row : Gauges->items())
    if (Row.getString("name", "") == Name)
      return static_cast<int64_t>(Row.getNumber("value", 0));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string ServerCmd = "./examples/earthcc --serve";
  std::string WorkloadName = "power";
  unsigned Requests = 32;
  unsigned Distinct = 4;
  unsigned Nodes = 4;
  std::string TopologyName;     // empty = server default (ideal)
  std::string DistributionName; // empty = server default (cyclic)
  bool Profile = false;
  unsigned MetricsEvery = 0; // 0 = no metrics polling

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--server") {
      if (const char *V = Next())
        ServerCmd = V;
    } else if (Arg == "--workload") {
      if (const char *V = Next())
        WorkloadName = V;
    } else if (Arg == "--requests") {
      if (const char *V = Next())
        Requests = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--distinct") {
      if (const char *V = Next())
        Distinct = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--nodes") {
      if (const char *V = Next())
        Nodes = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--topology") {
      if (const char *V = Next())
        TopologyName = V;
    } else if (Arg == "--distribution") {
      if (const char *V = Next())
        DistributionName = V;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--metrics-every") {
      if (const char *V = Next())
        MetricsEvery = static_cast<unsigned>(std::atoi(V));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--server CMD] [--workload NAME] "
                   "[--requests N] [--distinct K] [--nodes N] "
                   "[--topology ideal|bus|mesh2d|torus2d|fattree] "
                   "[--distribution cyclic|block] [--profile] "
                   "[--metrics-every N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Requests == 0 || Distinct == 0)
    Distinct = Requests = std::max(1u, Requests);

  const Workload *W = findWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 2;
  }
  std::string Base = W->smallSource();

  // Split the server command on spaces (no quoting needed for our use).
  std::vector<std::string> ServerArgv;
  {
    std::string Tok;
    for (char C : ServerCmd + " ") {
      if (C == ' ') {
        if (!Tok.empty())
          ServerArgv.push_back(Tok);
        Tok.clear();
      } else {
        Tok.push_back(C);
      }
    }
  }

  ServerProcess S;
  if (!spawnServer(ServerArgv, S))
    return 1;

  // Pipeline all requests, then collect all responses (the server works
  // them concurrently and may answer out of order).
  std::map<long, double> SendMs;
  double T0 = nowMs();
  for (unsigned I = 1; I <= Requests; ++I) {
    // Rotate over `Distinct` cache keys: the salt comment changes the
    // source bytes (hence the content hash) without changing the program.
    std::string Source =
        "/* variant " + std::to_string(I % Distinct) + " */\n" + Base;
    json::Value Req = json::Value::object();
    Req.members().emplace_back("id",
                               json::Value::number(static_cast<double>(I)));
    Req.members().emplace_back("op", json::Value::string("run"));
    Req.members().emplace_back("source", json::Value::string(Source));
    Req.members().emplace_back("nodes",
                               json::Value::number(static_cast<double>(Nodes)));
    // Topology/distribution ride the same option table as the CLI; unlike
    // engine/fuse they are key material, so two topologies never collide in
    // the server's cache.
    if (!TopologyName.empty())
      Req.members().emplace_back("topology",
                                 json::Value::string(TopologyName));
    if (!DistributionName.empty())
      Req.members().emplace_back("distribution",
                                 json::Value::string(DistributionName));
    if (Profile)
      Req.members().emplace_back("profile", json::Value::boolean(true));
    SendMs[I] = nowMs();
    std::fprintf(S.In, "%s\n", Req.str().c_str());
  }
  std::fflush(S.In);

  unsigned OK = 0, Failed = 0, CacheHits = 0, CompileHits = 0;
  std::vector<double> LatencyMs;
  // The client-side per-op latency histogram: same fixed-bucket layout the
  // server's svc.request_ns uses, so the p50/p95/p99 printed below are
  // directly comparable with a server-side metrics snapshot.
  MetricsRegistry ClientReg;
  Histogram RunNs = ClientReg.histogram("client.op_ns", {{"op", "run"}});
  unsigned MetricsPolls = 0;
  auto printMetricsPoll = [&](const json::Value &Resp) {
    ++MetricsPolls;
    if (const json::Value *Snap = Resp.find("metrics"))
      std::printf("[metrics poll %u] run: hits %llu  waits %llu  "
                  "misses %llu  queue depth %lld\n",
                  MetricsPolls,
                  (unsigned long long)sumRequests(*Snap, "run", "hit"),
                  (unsigned long long)sumRequests(*Snap, "run", "wait"),
                  (unsigned long long)sumRequests(*Snap, "run", "miss"),
                  (long long)gaugeValue(*Snap, "svc.queue_depth"));
  };
  std::string Line;
  unsigned Got = 0;
  while (Got < Requests && readLine(S.Out, Line)) {
    json::Value Resp;
    std::string Err;
    if (!json::parse(Line, Resp, Err)) {
      std::fprintf(stderr, "bad response: %s (%s)\n", Line.c_str(),
                   Err.c_str());
      ++Failed;
      ++Got;
      continue;
    }
    if (Resp.getString("op", "") == "metrics") {
      // A poll answer, not one of our run responses: print the live server
      // view and keep collecting.
      printMetricsPoll(Resp);
      continue;
    }
    ++Got;
    long Id = static_cast<long>(Resp.getNumber("id", -1));
    auto Sent = SendMs.find(Id);
    if (Sent != SendMs.end()) {
      double Ms = nowMs() - Sent->second;
      LatencyMs.push_back(Ms);
      RunNs.observe(Ms <= 0 ? 0 : static_cast<uint64_t>(Ms * 1e6));
    }
    if (Resp.getBool("ok", false))
      ++OK;
    else
      ++Failed;
    CacheHits += Resp.getBool("cache_hit", false);
    CompileHits += Resp.getBool("compile_cache_hit", false);
    if (MetricsEvery && Got % MetricsEvery == 0 && Got < Requests) {
      std::fprintf(S.In, "{\"id\":%u,\"op\":\"metrics\"}\n",
                   1000000 + MetricsPolls + 1);
      std::fflush(S.In);
    }
  }
  double WallMs = nowMs() - T0;

  // Clean shutdown: the server drains, answers once, and exits. Poll
  // answers the server wrote after our last run response are still in the
  // pipe — read everything to EOF so fast runs still show their polls.
  std::fprintf(S.In, "{\"op\":\"shutdown\"}\n");
  std::fflush(S.In);
  while (readLine(S.Out, Line)) {
    json::Value Resp;
    std::string Err;
    if (json::parse(Line, Resp, Err) && Resp.getString("op", "") == "metrics")
      printMetricsPoll(Resp);
  }
  std::fclose(S.In);
  std::fclose(S.Out);
  int Status = 0;
  waitpid(S.Pid, &Status, 0);

  std::sort(LatencyMs.begin(), LatencyMs.end());
  auto Pct = [&](double P) {
    if (LatencyMs.empty())
      return 0.0;
    size_t Idx = static_cast<size_t>(P * (LatencyMs.size() - 1));
    return LatencyMs[Idx];
  };
  std::printf("requests %u  ok %u  failed %u\n", Requests, OK, Failed);
  std::printf("cache: run-hits %u  compile-hits %u  (distinct keys %u)\n",
              CacheHits, CompileHits, std::min(Distinct, Requests));
  std::printf("wall %.1f ms  throughput %.1f req/s\n", WallMs,
              WallMs > 0 ? Requests * 1000.0 / WallMs : 0.0);
  std::printf("latency ms: p50 %.2f  p90 %.2f  max %.2f\n", Pct(0.5),
              Pct(0.9), LatencyMs.empty() ? 0.0 : LatencyMs.back());
  // Histogram-derived per-op percentiles (bucket lower bounds, ns -> ms):
  // the same estimator the server's svc.request_ns histograms use.
  std::printf("latency ms (hist, op=run): p50 %.2f  p95 %.2f  p99 %.2f  "
              "(%llu samples)\n",
              RunNs.percentile(50) / 1e6, RunNs.percentile(95) / 1e6,
              RunNs.percentile(99) / 1e6, (unsigned long long)RunNs.count());
  return Failed == 0 && WIFEXITED(Status) && WEXITSTATUS(Status) == 0 ? 0 : 1;
}
