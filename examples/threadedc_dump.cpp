//===- threadedc_dump.cpp - Golden Threaded-C emitter / checker ------------===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Emits the Threaded-C program for every Olden workload in both program
// versions (simple / optimized) and either prints, writes, or checks the
// results against the checked-in goldens under tests/golden/threadedc/.
//
//   threadedc_dump                 print everything to stdout
//   threadedc_dump --write DIR     (re)generate DIR/<name>_{simple,opt}.tc
//   threadedc_dump --check DIR     diff fresh output against DIR; exit 1 on
//                                  any drift, naming the stale files
//
// CI runs the --check form so that any change to the lowering layer or the
// emitter that alters the emitted Threaded-C shows up as a reviewed golden
// update, never as silent drift.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace earthcc;

namespace {

struct Emitted {
  std::string File; ///< e.g. "bisort_opt.tc"
  std::string Text;
};

/// Compiles every workload in both program versions and emits each module's
/// Threaded-C. Returns false (with a message on stderr) if any compile fails.
bool emitAll(std::vector<Emitted> &Out) {
  struct ModeName {
    RunMode Mode;
    const char *Suffix;
  };
  const ModeName Modes[] = {{RunMode::Simple, "simple"},
                            {RunMode::Optimized, "opt"}};
  for (const Workload &W : oldenWorkloads()) {
    for (const ModeName &MN : Modes) {
      CompileResult CR = compileWorkload(W, MN.Mode);
      if (!CR.OK) {
        std::fprintf(stderr, "threadedc_dump: %s (%s) failed to compile:\n%s",
                     W.Name.c_str(), MN.Suffix, CR.Messages.c_str());
        return false;
      }
      Emitted E;
      E.File = W.Name + "_" + MN.Suffix + ".tc";
      E.Text = emitThreadedC(*CR.M);
      Out.push_back(std::move(E));
    }
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Text) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Text = SS.str();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Mode = "print", Dir;
  if (argc == 3 && (std::string(argv[1]) == "--write" ||
                    std::string(argv[1]) == "--check")) {
    Mode = argv[1] + 2; // strip "--"
    Dir = argv[2];
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--write DIR | --check DIR]\n", argv[0]);
    return 2;
  }

  std::vector<Emitted> All;
  if (!emitAll(All))
    return 1;

  if (Mode == "print") {
    for (const Emitted &E : All)
      std::printf("// ==== %s ====\n%s\n", E.File.c_str(), E.Text.c_str());
    return 0;
  }

  if (Mode == "write") {
    for (const Emitted &E : All) {
      std::string Path = Dir + "/" + E.File;
      std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
      if (!OS) {
        std::fprintf(stderr, "threadedc_dump: cannot write %s\n",
                     Path.c_str());
        return 1;
      }
      OS << E.Text;
    }
    std::printf("wrote %zu Threaded-C goldens to %s\n", All.size(),
                Dir.c_str());
    return 0;
  }

  // --check: fresh emission must match every checked-in golden exactly.
  int Stale = 0;
  for (const Emitted &E : All) {
    std::string Path = Dir + "/" + E.File, Golden;
    if (!readFile(Path, Golden)) {
      std::fprintf(stderr, "MISSING  %s (regenerate with --write)\n",
                   Path.c_str());
      ++Stale;
    } else if (Golden != E.Text) {
      std::fprintf(stderr, "DRIFT    %s (%zu golden bytes vs %zu emitted)\n",
                   Path.c_str(), Golden.size(), E.Text.size());
      ++Stale;
    }
  }
  if (Stale) {
    std::fprintf(stderr,
                 "threadedc_dump: %d stale golden(s); run "
                 "`threadedc_dump --write tests/golden/threadedc` and review "
                 "the diff\n",
                 Stale);
    return 1;
  }
  std::printf("all %zu Threaded-C goldens up to date\n", All.size());
  return 0;
}
