//===- trace_test.cpp - Golden-file tests for the runtime trace ------------===//
//
// Part of the earthcc project.
//
// Runs a tiny EARTH-C program on the 2-node simulated machine with a
// ChromeTraceSink attached and compares the full serialized trace against
// a checked-in golden file. The interpreter's events are timestamped in
// *simulated* nanoseconds, so the trace is bit-for-bit deterministic; the
// sink is attached only after compilation so no wall-clock pass events
// leak in. Any change to the simulator's cost model, scheduling order or
// instrumentation shows up here as a readable JSON diff.
//
// Regenerate after an intentional change with:
//   EARTHCC_REGEN_GOLDEN=1 ./build/tests/trace_test
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace earthcc;

#ifndef EARTHCC_GOLDEN_DIR
#error "EARTHCC_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

// Small enough that the golden file stays reviewable, but exercises every
// traced event class: remote reads and writes (node 0 <-> node 1), a local
// fallback, fiber spawn/sync, and EU/SU activity on both nodes.
const char *TinyProgram = R"(
  struct Pair { int a; int b; };
  int main() {
    Pair *p;
    int x; int y;
    p = pmalloc(sizeof(Pair))@node(1);
    p->a = 3;
    p->b = 4;
    x = p->a;
    y = p->b;
    return x + y;
  }
)";

std::string goldenPath() {
  return std::string(EARTHCC_GOLDEN_DIR) + "/trace_tiny.json";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

TEST(TraceGoldenTest, TinyProgramTwoNodes) {
  Pipeline P(PipelineOptions::simple());
  CompileResult CR = P.compile(TinyProgram);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  // Attach the sink only now: pass events use the host wall clock and
  // would make the golden file nondeterministic.
  ChromeTraceSink Sink;
  P.setTraceSink(&Sink);
  MachineConfig MC;
  MC.NumNodes = 2;
  RunResult R = P.run(*CR.M, MC);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.ExitValue.I, 7);

  std::string Trace = Sink.json();
  if (std::getenv("EARTHCC_REGEN_GOLDEN")) {
    std::ofstream Out(goldenPath());
    ASSERT_TRUE(Out) << "cannot write " << goldenPath();
    Out << Trace;
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::string Golden = readFile(goldenPath());
  ASSERT_FALSE(Golden.empty())
      << "missing golden file " << goldenPath()
      << " (regenerate with EARTHCC_REGEN_GOLDEN=1)";
  EXPECT_EQ(Trace, Golden)
      << "simulator trace diverged from golden; if the cost model or "
         "instrumentation changed intentionally, regenerate with "
         "EARTHCC_REGEN_GOLDEN=1";
}

TEST(TraceGoldenTest, TraceContainsExpectedEventClasses) {
  Pipeline P(PipelineOptions::simple());
  CompileResult CR = P.compile(TinyProgram);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  ChromeTraceSink Sink;
  P.setTraceSink(&Sink);
  MachineConfig MC;
  MC.NumNodes = 2;
  ASSERT_TRUE(P.run(*CR.M, MC).OK);

  unsigned Reads = 0, Writes = 0, EuSlices = 0, SuServices = 0, Meta = 0;
  bool SawNode1 = false;
  for (const TraceEvent &E : Sink.events()) {
    if (E.Name == "read-data" && E.Ph == 'X')
      ++Reads;
    if (E.Name == "write-data" && E.Ph == 'X')
      ++Writes;
    if (E.Name == "eu-run")
      ++EuSlices;
    if (E.Tid == TraceTidSU && E.Ph == 'X')
      ++SuServices;
    if (E.Ph == 'M')
      ++Meta;
    if (E.Pid == 1)
      SawNode1 = true;
  }
  // Two remote reads (p->a, p->b) and two remote writes from node 0.
  EXPECT_EQ(Reads, 2u);
  EXPECT_EQ(Writes, 2u);
  EXPECT_GT(EuSlices, 0u);
  EXPECT_GT(SuServices, 0u);
  EXPECT_GT(Meta, 0u);   // process/thread name metadata
  EXPECT_TRUE(SawNode1); // remote node shows SU activity
}
