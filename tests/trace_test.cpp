//===- trace_test.cpp - Golden-file tests for the runtime trace ------------===//
//
// Part of the earthcc project.
//
// Runs a tiny EARTH-C program on the 2-node simulated machine with a
// ChromeTraceSink attached and compares the full serialized trace against
// a checked-in golden file. The interpreter's events are timestamped in
// *simulated* nanoseconds, so the trace is bit-for-bit deterministic; the
// sink is attached only after compilation so no wall-clock pass events
// leak in. Any change to the simulator's cost model, scheduling order or
// instrumentation shows up here as a readable JSON diff.
//
// Regenerate after an intentional change with:
//   EARTHCC_REGEN_GOLDEN=1 ./build/tests/trace_test
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace earthcc;

#ifndef EARTHCC_GOLDEN_DIR
#error "EARTHCC_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

// Small enough that the golden file stays reviewable, but exercises every
// traced event class: remote reads and writes (node 0 <-> node 1), a local
// fallback, fiber spawn/sync, and EU/SU activity on both nodes.
const char *TinyProgram = R"(
  struct Pair { int a; int b; };
  int main() {
    Pair *p;
    int x; int y;
    p = pmalloc(sizeof(Pair))@node(1);
    p->a = 3;
    p->b = 4;
    x = p->a;
    y = p->b;
    return x + y;
  }
)";

std::string goldenPath() {
  return std::string(EARTHCC_GOLDEN_DIR) + "/trace_tiny.json";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

TEST(TraceGoldenTest, TinyProgramTwoNodes) {
  Pipeline P(PipelineOptions::simple());
  CompileResult CR = P.compile(TinyProgram);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  // Attach the sink only now: pass events use the host wall clock and
  // would make the golden file nondeterministic.
  ChromeTraceSink Sink;
  P.setTraceSink(&Sink);
  MachineConfig MC;
  MC.NumNodes = 2;
  RunResult R = P.run(*CR.M, MC);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.ExitValue.I, 7);

  std::string Trace = Sink.json();
  if (std::getenv("EARTHCC_REGEN_GOLDEN")) {
    std::ofstream Out(goldenPath());
    ASSERT_TRUE(Out) << "cannot write " << goldenPath();
    Out << Trace;
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::string Golden = readFile(goldenPath());
  ASSERT_FALSE(Golden.empty())
      << "missing golden file " << goldenPath()
      << " (regenerate with EARTHCC_REGEN_GOLDEN=1)";
  EXPECT_EQ(Trace, Golden)
      << "simulator trace diverged from golden; if the cost model or "
         "instrumentation changed intentionally, regenerate with "
         "EARTHCC_REGEN_GOLDEN=1";
}

TEST(TraceGoldenTest, TraceContainsExpectedEventClasses) {
  Pipeline P(PipelineOptions::simple());
  CompileResult CR = P.compile(TinyProgram);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  ChromeTraceSink Sink;
  P.setTraceSink(&Sink);
  MachineConfig MC;
  MC.NumNodes = 2;
  ASSERT_TRUE(P.run(*CR.M, MC).OK);

  unsigned Reads = 0, Writes = 0, EuSlices = 0, SuServices = 0, Meta = 0;
  bool SawNode1 = false;
  for (const TraceEvent &E : Sink.events()) {
    if (E.Name == "read-data" && E.Ph == 'X')
      ++Reads;
    if (E.Name == "write-data" && E.Ph == 'X')
      ++Writes;
    if (E.Name == "eu-run")
      ++EuSlices;
    if (E.Tid == TraceTidSU && E.Ph == 'X')
      ++SuServices;
    if (E.Ph == 'M')
      ++Meta;
    if (E.Pid == 1)
      SawNode1 = true;
  }
  // Two remote reads (p->a, p->b) and two remote writes from node 0.
  EXPECT_EQ(Reads, 2u);
  EXPECT_EQ(Writes, 2u);
  EXPECT_GT(EuSlices, 0u);
  EXPECT_GT(SuServices, 0u);
  EXPECT_GT(Meta, 0u);   // process/thread name metadata
  EXPECT_TRUE(SawNode1); // remote node shows SU activity
}

//===----------------------------------------------------------------------===//
// Sink edge cases: hand-built events, no simulator involved. These pin the
// serialization corners the goldens never reach.
//===----------------------------------------------------------------------===//

TEST(TraceSinkEdgeTest, ZeroDurationCompleteEvent) {
  ChromeTraceSink Chrome;
  CounterTraceSink Counts;
  TraceEvent E;
  E.Name = "instant-span";
  E.Cat = "comm";
  E.Ph = 'X';
  E.TsNs = 1234.0;
  E.DurNs = 0.0;
  Chrome.event(E);
  Counts.event(E);
  // The Chrome form keeps its dur field (0.000 us), so the event stays a
  // valid complete event instead of degrading to an instant.
  EXPECT_NE(Chrome.json().find("\"dur\":0.000"), std::string::npos)
      << Chrome.json();
  // The counter form counts the occurrence and records a present-but-zero
  // duration total.
  EXPECT_EQ(Counts.stats().get("trace.count.instant-span"), 1u);
  EXPECT_EQ(Counts.stats().get("trace.ns.instant-span"), 0u);
  EXPECT_EQ(Counts.stats().all().count("trace.ns.instant-span"), 1u);
}

TEST(TraceSinkEdgeTest, MoreThanFourArgsSerializeInOrder) {
  ChromeTraceSink Chrome;
  TraceEvent E;
  E.Name = "big";
  E.Cat = "comm";
  E.Ph = 'i';
  for (int I = 0; I != 6; ++I)
    E.Args.emplace_back("k" + std::to_string(I),
                        static_cast<uint64_t>(I * 10));
  Chrome.event(E);
  std::string J = Chrome.json();
  EXPECT_NE(J.find("\"args\":{\"k0\":0,\"k1\":10,\"k2\":20,\"k3\":30,"
                   "\"k4\":40,\"k5\":50}"),
            std::string::npos)
      << J;
}

TEST(TraceSinkEdgeTest, JsonEscapingOfNamesAndArgs) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("a\tb\rc"), "a\\tb\\rc");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");

  ChromeTraceSink Chrome;
  TraceEvent E;
  E.Name = "quote\"back\\slash\nnewline";
  E.Cat = "comm";
  E.Ph = 'i';
  E.Args.emplace_back("msg", "say \"hi\"\\\n");
  Chrome.event(E);
  std::string J = Chrome.json();
  EXPECT_NE(J.find("\"name\":\"quote\\\"back\\\\slash\\nnewline\""),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"msg\":\"say \\\"hi\\\"\\\\\\n\""), std::string::npos)
      << J;
  // No raw control characters may survive inside the serialized document:
  // every byte below 0x20 other than the record-separating newlines must
  // have been escaped.
  for (size_t I = 0; I != J.size(); ++I)
    if (static_cast<unsigned char>(J[I]) < 0x20)
      EXPECT_EQ(J[I], '\n') << "unescaped control byte at offset " << I;
}
