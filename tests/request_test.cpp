//===- request_test.cpp - Request values, cache keys, option table ---------===//
//
// Part of the earthcc project.
//
// The request API's core contract: keyBytes() covers exactly the fields
// that can change the produced artifact — result-determining knobs perturb
// the key, host-only and instrumentation knobs do not — and the declarative
// option table applies the same semantics from every surface (CLI flag,
// --serve JSON field, environment variable).
//
//===----------------------------------------------------------------------===//

#include "driver/Request.h"
#include "support/CommProfiler.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace earthcc;

namespace {

const char *Src = "int main() { return 1; }";

} // namespace

TEST(CompileRequestKeyTest, EqualRequestsEqualKeys) {
  CompileRequest A = CompileRequest::optimized(Src);
  CompileRequest B = CompileRequest::optimized(Src);
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
  EXPECT_EQ(A.key(), B.key());
  EXPECT_EQ(A.keyHex().size(), 16u);
}

TEST(CompileRequestKeyTest, ResultDeterminingFieldsPerturbKey) {
  CompileRequest Base = CompileRequest::optimized(Src);

  CompileRequest DifferentSource = Base;
  DifferentSource.Source = "int main() { return 2; }";
  EXPECT_NE(Base.keyBytes(), DifferentSource.keyBytes());

  CompileRequest NoOpt = Base;
  NoOpt.Optimize = false;
  EXPECT_NE(Base.keyBytes(), NoOpt.keyBytes());

  CompileRequest Locality = Base;
  Locality.InferLocality = true;
  EXPECT_NE(Base.keyBytes(), Locality.keyBytes());

  CompileRequest Threshold = Base;
  Threshold.Comm.BlockThresholdWords = 7;
  EXPECT_NE(Base.keyBytes(), Threshold.keyBytes());

  CompileRequest Knockout = Base;
  Knockout.Comm.EnableReadMotion = false;
  EXPECT_NE(Base.keyBytes(), Knockout.keyBytes());
}

TEST(CompileRequestKeyTest, HostOnlyKnobsDoNotPerturbKey) {
  CompileRequest A = CompileRequest::optimized(Src);
  CompileRequest B = A;
  B.LowerThreads = 8; // bit-identical output at any setting
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
  B.PassThreads = 8; // same contract as LowerThreads
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
}

TEST(CompileRequestKeyTest, SourceIsLengthPrefixed) {
  // Concatenation attacks must not collide: source bytes are length-
  // prefixed in the serialization, so a source that *contains* another
  // request's record bytes still hashes differently.
  CompileRequest A = CompileRequest::simple("ab");
  CompileRequest B = CompileRequest::simple("a");
  EXPECT_NE(A.keyBytes(), B.keyBytes());
  EXPECT_NE(A.keyBytes().find("2:ab"), std::string::npos);
}

TEST(RunRequestKeyTest, ResultDeterminingFieldsPerturbKey) {
  RunRequest Base;

  RunRequest Nodes = Base;
  Nodes.Nodes = 8;
  EXPECT_NE(Base.keyBytes(), Nodes.keyBytes());

  RunRequest Engine = Base;
  Engine.Engine = ExecEngine::AST;
  EXPECT_NE(Base.keyBytes(), Engine.keyBytes());

  RunRequest Fuse = Base;
  Fuse.Fuse = !Base.Fuse;
  EXPECT_NE(Base.keyBytes(), Fuse.keyBytes());

  RunRequest Seq = Base;
  Seq.Sequential = true;
  EXPECT_NE(Base.keyBytes(), Seq.keyBytes());

  RunRequest Entry = Base;
  Entry.Entry = "other";
  EXPECT_NE(Base.keyBytes(), Entry.keyBytes());

  RunRequest Args = Base;
  Args.Args.push_back(RtValue::makeInt(3));
  EXPECT_NE(Base.keyBytes(), Args.keyBytes());

  RunRequest Costs = Base;
  Costs.Costs.NetDelay *= 2;
  EXPECT_NE(Base.keyBytes(), Costs.keyBytes());

  RunRequest Fuel = Base;
  Fuel.MaxSteps = 123;
  EXPECT_NE(Base.keyBytes(), Fuel.keyBytes());
}

TEST(RunRequestKeyTest, NetworkModelFieldsPerturbKey) {
  // Topology, distribution and the network parameters change *simulated*
  // results (contention reorders completion times; the distribution moves
  // data between owners) — unlike engine/fuse/dispatch, every one of them
  // must split the cache.
  RunRequest Base;

  RunRequest Topo = Base;
  Topo.Topo = Topology::Torus2D;
  EXPECT_NE(Base.keyBytes(), Topo.keyBytes());

  RunRequest Dist = Base;
  Dist.Dist = Distribution::Block;
  EXPECT_NE(Base.keyBytes(), Dist.keyBytes());

  RunRequest Hop = Base;
  Hop.NetHopNs *= 2;
  EXPECT_NE(Base.keyBytes(), Hop.keyBytes());

  RunRequest LinkWord = Base;
  LinkWord.NetLinkWordNs *= 2;
  EXPECT_NE(Base.keyBytes(), LinkWord.keyBytes());

  RunRequest Block = Base;
  Block.DistBlockSize = 17;
  EXPECT_NE(Base.keyBytes(), Block.keyBytes());

  // And machine() forwards all of them.
  MachineConfig MC = Topo.machine();
  EXPECT_EQ(MC.Topo, Topology::Torus2D);
  EXPECT_EQ(Dist.machine().Dist, Distribution::Block);
  EXPECT_EQ(Block.machine().DistBlockSize, 17u);
}

TEST(RunRequestKeyTest, InstrumentationDoesNotPerturbKey) {
  RunRequest A;
  RunRequest B = A;
  // Attaching observers must never change which cached artifact a request
  // maps to — they observe the run, they don't define it.
  ChromeTraceSink Sink;
  B.Sink = &Sink;
  CommProfiler Prof;
  B.Profiler = &Prof;
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
}

TEST(RunRequestKeyTest, DispatchDoesNotPerturbKey) {
  // Dispatch selects the bytecode inner loop, which is bit-identical by
  // contract (the engine equivalence sweep pins it) — a request served on
  // a portable-switch build and a computed-goto build must map to the
  // same cached artifact, the same contract as LowerThreads/PassThreads.
  RunRequest A;
  RunRequest B = A;
  B.Dispatch = A.Dispatch == BcDispatch::ComputedGoto
                   ? BcDispatch::Switch
                   : BcDispatch::ComputedGoto;
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
  EXPECT_EQ(A.key(), B.key());
  // But the effective machine still honors the request's choice.
  EXPECT_EQ(B.machine().Dispatch, B.Dispatch);
}

TEST(RunRequestKeyTest, MetricsExpositionIsKeyNeutral) {
  // Metrics are host-side observability, same contract as engine / fuse /
  // dispatch / trace sinks: no metrics or exposition option may be request
  // content. First, the option table must not publish one — --metrics,
  // --profile-diff and the serve "metrics" op are driver-surface flags.
  for (const RequestOption &O : requestOptions())
    EXPECT_EQ(std::string(O.Name).find("metric"), std::string::npos)
        << O.Name;

  // Second, key bytes must not embed any metrics state: recording into the
  // process registry (what --metrics and the serve op expose) between two
  // serializations must leave both keys byte-identical.
  CompileRequest C = CompileRequest::optimized(Src);
  RunRequest R;
  const std::string CK = C.keyBytes(), RK = R.keyBytes();
  EXPECT_EQ(CK.find("metric"), std::string::npos);
  EXPECT_EQ(RK.find("metric"), std::string::npos);
  MetricsRegistry::global().counter("test.request_key_probe").inc();
  MetricsRegistry::global()
      .histogram("test.request_key_probe_ns")
      .observe(123);
  EXPECT_EQ(C.keyBytes(), CK);
  EXPECT_EQ(R.keyBytes(), RK);
}

TEST(RunRequestKeyTest, SequentialNormalizesNodeCount) {
  // Sequential mode forces one node, and the key uses the *effective*
  // machine: a 4-node and an 8-node sequential request are one artifact.
  RunRequest A, B;
  A.Sequential = B.Sequential = true;
  A.Nodes = 4;
  B.Nodes = 8;
  EXPECT_EQ(A.keyBytes(), B.keyBytes());
  EXPECT_EQ(A.machine().NumNodes, 1u);
}

TEST(RunRequestTest, DefaultsMirrorMachineConfig) {
  RunRequest R;
  MachineConfig MC;
  EXPECT_EQ(R.Engine, MC.Engine);
  EXPECT_EQ(R.Fuse, MC.Fuse);
  EXPECT_EQ(R.MaxSteps, MC.MaxSteps);
  EXPECT_EQ(R.EUQuantum, MC.EUQuantum);
  EXPECT_EQ(R.machine().Costs.NetDelay, MC.Costs.NetDelay);
}

//===----------------------------------------------------------------------===//
// The declarative option table.
//===----------------------------------------------------------------------===//

TEST(OptionTableTest, AppliesEveryPublishedKnob) {
  CompileRequest C;
  RunRequest R;
  std::string Err;
  EXPECT_TRUE(applyRequestOption(C, R, "nodes", "8", Err)) << Err;
  EXPECT_EQ(R.Nodes, 8u);
  EXPECT_TRUE(applyRequestOption(C, R, "engine", "ast", Err)) << Err;
  EXPECT_EQ(R.Engine, ExecEngine::AST);
  EXPECT_TRUE(applyRequestOption(C, R, "fuse", "off", Err)) << Err;
  EXPECT_FALSE(R.Fuse);
  EXPECT_TRUE(applyRequestOption(C, R, "no-opt", "", Err)) << Err;
  EXPECT_FALSE(C.Optimize);
  EXPECT_TRUE(applyRequestOption(C, R, "locality", "on", Err)) << Err;
  EXPECT_TRUE(C.InferLocality);
  EXPECT_TRUE(applyRequestOption(C, R, "threshold", "5", Err)) << Err;
  EXPECT_EQ(C.Comm.BlockThresholdWords, 5u);
  EXPECT_TRUE(applyRequestOption(C, R, "entry", "start", Err)) << Err;
  EXPECT_EQ(R.Entry, "start");
  EXPECT_TRUE(applyRequestOption(C, R, "lower-threads", "4", Err)) << Err;
  EXPECT_EQ(C.LowerThreads, 4u);
  EXPECT_TRUE(applyRequestOption(C, R, "max-steps", "1000", Err)) << Err;
  EXPECT_EQ(R.MaxSteps, 1000u);
  EXPECT_TRUE(applyRequestOption(C, R, "quantum", "16", Err)) << Err;
  EXPECT_EQ(R.EUQuantum, 16u);
  EXPECT_TRUE(applyRequestOption(C, R, "seq", "on", Err)) << Err;
  EXPECT_TRUE(R.Sequential);
  EXPECT_TRUE(applyRequestOption(C, R, "dispatch", "switch", Err)) << Err;
  EXPECT_EQ(R.Dispatch, BcDispatch::Switch);
  EXPECT_TRUE(applyRequestOption(C, R, "dispatch", "goto", Err)) << Err;
  EXPECT_EQ(R.Dispatch, BcDispatch::ComputedGoto);
  EXPECT_TRUE(applyRequestOption(C, R, "topology", "torus2d", Err)) << Err;
  EXPECT_EQ(R.Topo, Topology::Torus2D);
  EXPECT_TRUE(applyRequestOption(C, R, "distribution", "block", Err)) << Err;
  EXPECT_EQ(R.Dist, Distribution::Block);
  EXPECT_TRUE(applyRequestOption(C, R, "net-hop-ns", "900", Err)) << Err;
  EXPECT_EQ(R.NetHopNs, 900.0);
  EXPECT_TRUE(applyRequestOption(C, R, "net-link-word-ns", "320.5", Err))
      << Err;
  EXPECT_EQ(R.NetLinkWordNs, 320.5);
  EXPECT_TRUE(applyRequestOption(C, R, "dist-block", "16", Err)) << Err;
  EXPECT_EQ(R.DistBlockSize, 16u);
}

TEST(OptionTableTest, RejectsMalformedInput) {
  CompileRequest C;
  RunRequest R;
  std::string Err;
  EXPECT_FALSE(applyRequestOption(C, R, "no-such-option", "1", Err));
  EXPECT_NE(Err.find("no-such-option"), std::string::npos);
  EXPECT_FALSE(applyRequestOption(C, R, "engine", "quantum", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "nodes", "0", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "nodes", "abc", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "fuse", "maybe", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "dispatch", "jump", Err));
  // Oversized machines get a diagnostic naming the ceiling, not an
  // allocation storm.
  EXPECT_FALSE(applyRequestOption(C, R, "nodes",
                                  std::to_string(MaxSimNodes + 1), Err));
  EXPECT_NE(Err.find(std::to_string(MaxSimNodes)), std::string::npos);
  // Unknown topology/distribution values list the valid choices.
  EXPECT_FALSE(applyRequestOption(C, R, "topology", "hypercube", Err));
  EXPECT_NE(Err.find("hypercube"), std::string::npos);
  EXPECT_NE(Err.find(topologyChoices()), std::string::npos);
  EXPECT_FALSE(applyRequestOption(C, R, "distribution", "random", Err));
  EXPECT_NE(Err.find(distributionChoices()), std::string::npos);
  EXPECT_FALSE(applyRequestOption(C, R, "net-hop-ns", "-3", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "net-link-word-ns", "fast", Err));
  EXPECT_FALSE(applyRequestOption(C, R, "dist-block", "0", Err));
}

TEST(OptionTableTest, EnvironmentGoesThroughTheSameTable) {
  // EARTHCC_FUSE is declared on the `fuse` entry: applyRequestEnv must
  // read it and apply the same setter the CLI and the JSON protocol use.
  ASSERT_EQ(setenv("EARTHCC_FUSE", "off", 1), 0);
  CompileRequest C;
  RunRequest R;
  R.Fuse = true;
  std::string Err;
  EXPECT_TRUE(applyRequestEnv(C, R, Err)) << Err;
  EXPECT_FALSE(R.Fuse);
  ASSERT_EQ(unsetenv("EARTHCC_FUSE"), 0);
}

TEST(OptionTableTest, TableEntriesAreWellFormed) {
  for (const RequestOption &O : requestOptions()) {
    EXPECT_NE(O.Name, nullptr);
    EXPECT_NE(O.Help, nullptr);
    EXPECT_NE(O.Apply, nullptr);
    // Names are flag-shaped: lowercase/dash only, no leading dashes.
    for (const char *P = O.Name; *P; ++P)
      EXPECT_TRUE((*P >= 'a' && *P <= 'z') || *P == '-') << O.Name;
    EXPECT_NE(O.Name[0], '-');
  }
}
