//===- interp_test.cpp - Simulator/interpreter tests ------------------------===//
//
// Part of the earthcc project.
//
// Semantics, timing behaviour, determinism, and error paths of the EARTH
// simulator, plus end-to-end checks that optimized programs compute the
// same results with fewer remote operations and less simulated time.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

MachineConfig machine(unsigned Nodes) {
  MachineConfig MC;
  MC.NumNodes = Nodes;
  return MC;
}

RunResult runSrc(const std::string &Src, unsigned Nodes = 1,
                 bool Optimize = false,
                 const std::vector<RtValue> &Args = {}) {
  Pipeline P(Optimize ? PipelineOptions::optimized()
                      : PipelineOptions::simple());
  RunResult R = P.compileAndRun(Src, machine(Nodes), "main", Args);
  EXPECT_TRUE(R.OK) << R.Error;
  return R;
}

//===----------------------------------------------------------------------===//
// Core semantics.
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, ArithmeticAndReturn) {
  RunResult R = runSrc("int main() { return 6 * 7; }");
  EXPECT_EQ(R.ExitValue.I, 42);
}

TEST(SemanticsTest, LoopsAndConditionals) {
  RunResult R = runSrc(R"(
    int main() {
      int i; int s;
      s = 0;
      for (i = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) { s = s + i; }
      }
      return s;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 30);
}

TEST(SemanticsTest, DoWhileRunsAtLeastOnce) {
  RunResult R = runSrc(R"(
    int main() {
      int i;
      i = 100;
      do { i = i + 1; } while (i < 0);
      return i;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 101);
}

TEST(SemanticsTest, SwitchSelectsCase) {
  RunResult R = runSrc(R"(
    int classify(int q) {
      int r;
      switch (q) {
      case 0: r = 10; break;
      case 1: r = 20; break;
      default: r = 30; break;
      }
      return r;
    }
    int main() {
      return classify(0) + classify(1) + classify(7);
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 60);
}

TEST(SemanticsTest, RecursionFibonacci) {
  RunResult R = runSrc(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }
  )");
  EXPECT_EQ(R.ExitValue.I, 144);
}

TEST(SemanticsTest, DoubleMath) {
  RunResult R = runSrc(R"(
    int main() {
      double x; double y;
      x = 3.0;
      y = sqrt(x * x + 4.0 * 4.0);
      if (fabs(y - 5.0) < 0.000001) { return 1; }
      return 0;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 1);
}

TEST(SemanticsTest, HeapListTraversal) {
  RunResult R = runSrc(R"(
    struct node { int v; node *next; };
    node *build(int n) {
      node *head; node *p;
      int i;
      head = NULL;
      for (i = n; i >= 1; i = i - 1) {
        p = pmalloc(sizeof(node));
        p->v = i;
        p->next = head;
        head = p;
      }
      return head;
    }
    int main() {
      node *p;
      int s;
      s = 0;
      p = build(10);
      while (p != NULL) {
        s = s + p->v;
        p = p->next;
      }
      return s;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 55);
  EXPECT_GT(R.Counters.ReadData, 0u);
}

TEST(SemanticsTest, PrintOutput) {
  RunResult R = runSrc(R"(
    int main() {
      print(1);
      print(2 + 3);
      return 0;
    }
  )");
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], "1");
  EXPECT_EQ(R.Output[1], "5");
}

TEST(SemanticsTest, NestedStructAccess) {
  RunResult R = runSrc(R"(
    struct D { double P; double Q; };
    struct branch { double R; D d; };
    int main() {
      branch *b;
      double v;
      b = pmalloc(sizeof(branch));
      b->R = 1.5;
      b->d.P = 2.5;
      b->d.Q = 4.0;
      v = b->R + b->d.P + b->d.Q;
      if (fabs(v - 8.0) < 0.000001) { return 1; }
      return 0;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 1);
}

TEST(SemanticsTest, AddressOfField) {
  RunResult R = runSrc(R"(
    struct cell { int v; };
    struct box { int pad; cell c; };
    int bump(cell *p) {
      p->v = p->v + 1;
      return p->v;
    }
    int main() {
      box *b;
      cell *inner;
      b = pmalloc(sizeof(box));
      b->c.v = 41;
      inner = &(b->c);
      return bump(inner);
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 42);
}

//===----------------------------------------------------------------------===//
// Parallel constructs and distribution.
//===----------------------------------------------------------------------===//

TEST(ParallelTest, ForallSharedCounter) {
  RunResult R = runSrc(R"(
    struct node { int v; node *next; };
    node *build(int n) {
      node *head; node *p; int i;
      head = NULL;
      for (i = 1; i <= n; i = i + 1) {
        p = pmalloc(sizeof(node));
        p->v = i;
        p->next = head;
        head = p;
      }
      return head;
    }
    int main() {
      shared int total;
      node *head; node *p;
      int r;
      head = build(20);
      writeto(&total, 0);
      forall (p = head; p != NULL; p = p->next) {
        addto(&total, p->v);
      }
      r = valueof(&total);
      return r;
    }
  )",
                       4);
  EXPECT_EQ(R.ExitValue.I, 210);
  EXPECT_GT(R.Counters.Atomic, 0u);
}

TEST(ParallelTest, ParallelSequenceJoin) {
  RunResult R = runSrc(R"(
    int work(int n) {
      int i; int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    }
    int main() {
      int a; int b;
      {^
        a = work(100);
        b = work(50);
      ^}
      return a + b;
    }
  )");
  EXPECT_EQ(R.ExitValue.I, 4950 + 1225);
}

TEST(ParallelTest, PlacedCallsRunOnTargetNode) {
  RunResult R = runSrc(R"(
    int whereami() { return my_node(); }
    int main() {
      int a; int b; int c;
      a = whereami()@node(2);
      b = whereami()@HOME;
      c = whereami();
      return a * 100 + b * 10 + c;
    }
  )",
                       4);
  EXPECT_EQ(R.ExitValue.I, 200);
}

TEST(ParallelTest, OwnerOfTargetsDataHome) {
  RunResult R = runSrc(R"(
    struct node { int v; };
    int probe(node *p) { return my_node(); }
    int main() {
      node *p;
      p = pmalloc(sizeof(node))@node(3);
      return probe(p)@OWNER_OF(p);
    }
  )",
                       4);
  EXPECT_EQ(R.ExitValue.I, 3);
}

TEST(ParallelTest, DataDistributionAcrossNodes) {
  RunResult R = runSrc(R"(
    struct node { int v; };
    int main() {
      node *p;
      int i; int n;
      n = num_nodes();
      for (i = 0; i < 8; i = i + 1) {
        p = pmalloc(sizeof(node))@node(i % n);
        p->v = i;
      }
      return n;
    }
  )",
                       4);
  EXPECT_EQ(R.ExitValue.I, 4);
  ASSERT_EQ(R.WordsPerNode.size(), 4u);
  for (unsigned N = 0; N != 4; ++N)
    EXPECT_GE(R.WordsPerNode[N], 2u) << "node " << N;
}

TEST(ParallelTest, ParallelSpeedsUpIndependentWork) {
  const char *Src = R"(
    struct node { int v; };
    int work(node *p, int n) {
      int i; int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        p->v = i;
        s = s + p->v;
      }
      return s;
    }
    int main() {
      node *a; node *b; node *c; node *d;
      int r1; int r2; int r3; int r4;
      a = pmalloc(sizeof(node))@node(0);
      b = pmalloc(sizeof(node))@node(1);
      c = pmalloc(sizeof(node))@node(2);
      d = pmalloc(sizeof(node))@node(3);
      {^
        r1 = work(a, 200)@OWNER_OF(a);
        r2 = work(b, 200)@OWNER_OF(b);
        r3 = work(c, 200)@OWNER_OF(c);
        r4 = work(d, 200)@OWNER_OF(d);
      ^}
      return r1 + r2 + r3 + r4;
    }
  )";
  RunResult R1 = runSrc(Src, 1);
  RunResult R4 = runSrc(Src, 4);
  EXPECT_EQ(R1.ExitValue.I, R4.ExitValue.I);
  // Four independent node-local loops: 4 nodes must be much faster.
  EXPECT_LT(R4.TimeNs, R1.TimeNs / 2.0);
}

//===----------------------------------------------------------------------===//
// Timing model.
//===----------------------------------------------------------------------===//

TEST(TimingTest, TableOneSequentialRead) {
  CostModel CM;
  EXPECT_DOUBLE_EQ(CM.sequentialRead(), 7109.0);
  EXPECT_DOUBLE_EQ(CM.sequentialWrite(), 6458.0);
  EXPECT_DOUBLE_EQ(CM.sequentialBlk(1), 9700.0);
}

TEST(TimingTest, DependentReadsPaySequentialLatency) {
  // A pointer chase: each read's result feeds the next -> ~7109 ns/hop.
  const char *Src = R"(
    struct node { int v; node *next; };
    node *build(int n) {
      node *head; node *p; int i;
      head = NULL;
      for (i = 0; i < n; i = i + 1) {
        p = pmalloc(sizeof(node))@node(1);
        p->v = i;
        p->next = head;
        head = p;
      }
      return head;
    }
    int walk(node *head) {
      node *p;
      int c;
      c = 0;
      p = head;
      while (p != NULL) {
        p = p->next;
        c = c + 1;
      }
      return c;
    }
    int main() {
      node *head;
      head = build(100);
      return walk(head);
    }
  )";
  RunResult R = runSrc(Src, 2);
  EXPECT_EQ(R.ExitValue.I, 100);
  // The walk alone contains 100 dependent remote reads from node 0 to
  // node 1; the total must therefore exceed 100 * 7109 ns.
  EXPECT_GT(R.TimeNs, 100 * 7109.0);
}

TEST(TimingTest, IndependentReadsPipeline) {
  // Reads of distinct fields with uses afterwards: issue cost dominates.
  const char *SrcPipelined = R"(
    struct rec { int a; int b; int c; int d; int e; int f; int g; int h; };
    int main() {
      rec *r;
      int t1; int t2; int t3; int t4; int t5; int t6; int t7; int t8;
      r = pmalloc(sizeof(rec))@node(1);
      r->a = 1; r->b = 2; r->c = 3; r->d = 4;
      r->e = 5; r->f = 6; r->g = 7; r->h = 8;
      t1 = r->a; t2 = r->b; t3 = r->c; t4 = r->d;
      t5 = r->e; t6 = r->f; t7 = r->g; t8 = r->h;
      return t1 + t2 + t3 + t4 + t5 + t6 + t7 + t8;
    }
  )";
  RunResult R = runSrc(SrcPipelined, 2);
  EXPECT_EQ(R.ExitValue.I, 36);
  // 8 writes + 8 reads, all split-phase and overlapping: total should be
  // far below 16 sequential round trips.
  EXPECT_LT(R.TimeNs, 16 * 7109.0);
}

TEST(TimingTest, DeterministicAcrossRuns) {
  const char *Src = R"(
    struct node { int v; node *next; };
    int main() {
      node *p; node *head; int i; int s;
      head = NULL;
      for (i = 0; i < 50; i = i + 1) {
        p = pmalloc(sizeof(node))@node(i % num_nodes());
        p->v = i;
        p->next = head;
        head = p;
      }
      s = 0;
      p = head;
      while (p != NULL) { s = s + p->v; p = p->next; }
      return s;
    }
  )";
  RunResult A = runSrc(Src, 4);
  RunResult B = runSrc(Src, 4);
  EXPECT_EQ(A.ExitValue.I, B.ExitValue.I);
  EXPECT_DOUBLE_EQ(A.TimeNs, B.TimeNs);
  EXPECT_EQ(A.Counters.total(), B.Counters.total());
}

TEST(TimingTest, SequentialModeHasNoEarthOps) {
  MachineConfig MC = machine(1);
  MC.SequentialMode = true;
  Pipeline P(PipelineOptions::simple());
  RunResult R = P.compileAndRun(R"(
    struct node { int v; node *next; };
    int main() {
      node *p;
      p = pmalloc(sizeof(node));
      p->v = 9;
      return p->v;
    }
  )",
                                MC);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.ExitValue.I, 9);
  EXPECT_EQ(R.Counters.total(), 0u);
}

//===----------------------------------------------------------------------===//
// Optimization end-to-end: same answers, fewer ops, less time.
//===----------------------------------------------------------------------===//

const char *EndToEndSrc = R"(
  struct Point { double x; double y; Point *next; };

  Point *build(int n) {
    Point *head; Point *p; int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
      p = pmalloc(sizeof(Point))@node(i % num_nodes());
      p->x = i * 1.0;
      p->y = i * 2.0;
      p->next = head;
      head = p;
    }
    return head;
  }

  int main() {
    Point *head; Point *p;
    double sx; double sy;
    head = build(64);
    sx = 0.0;
    sy = 0.0;
    p = head;
    while (p != NULL) {
      sx = sx + p->x;
      sy = sy + p->y;
      p = p->next;
    }
    if (fabs(sx - 2016.0) < 0.0001 && fabs(sy - 4032.0) < 0.0001) {
      return 1;
    }
    return 0;
  }
)";

TEST(EndToEndTest, OptimizationPreservesSemantics) {
  RunResult Simple = runSrc(EndToEndSrc, 4, /*Optimize=*/false);
  RunResult Opt = runSrc(EndToEndSrc, 4, /*Optimize=*/true);
  EXPECT_EQ(Simple.ExitValue.I, 1);
  EXPECT_EQ(Opt.ExitValue.I, 1);
}

TEST(EndToEndTest, OptimizationReducesOpsAndTime) {
  RunResult Simple = runSrc(EndToEndSrc, 4, /*Optimize=*/false);
  RunResult Opt = runSrc(EndToEndSrc, 4, /*Optimize=*/true);
  // The traversal loop reads x, y, next per node: blocking turns 3 reads
  // into 1 blkmov.
  EXPECT_LT(Opt.Counters.ReadData, Simple.Counters.ReadData);
  EXPECT_GT(Opt.Counters.BlkMov, Simple.Counters.BlkMov);
  EXPECT_LT(Opt.Counters.total(), Simple.Counters.total());
  EXPECT_LT(Opt.TimeNs, Simple.TimeNs);
}

TEST(EndToEndTest, ResultsIdenticalAcrossNodeCounts) {
  for (unsigned Nodes : {1u, 2u, 4u, 8u}) {
    RunResult R = runSrc(EndToEndSrc, Nodes, /*Optimize=*/true);
    EXPECT_EQ(R.ExitValue.I, 1) << Nodes << " nodes";
  }
}

//===----------------------------------------------------------------------===//
// Error paths.
//===----------------------------------------------------------------------===//

TEST(ErrorTest, NullDereference) {
  Pipeline P(PipelineOptions::simple());
  RunResult R = P.compileAndRun(R"(
    struct node { int v; };
    int main() {
      node *p;
      p = NULL;
      return p->v;
    }
  )",
                                machine(1));
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("null pointer read"), std::string::npos) << R.Error;
}

TEST(ErrorTest, DivisionByZero) {
  RunResult R =
      Pipeline().compileAndRun("int main() { int z; z = 0; return 7 / z; }",
                               machine(1));
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(ErrorTest, UndefinedVariableRead) {
  Pipeline P(PipelineOptions::simple());
  RunResult R = P.compileAndRun("int main() { int x; return x + 1; }",
                                machine(1));
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("undefined variable"), std::string::npos);
}

TEST(ErrorTest, LocalityViolationCaught) {
  // A `local`-qualified pointer actually pointing to remote memory is a
  // programmer error EARTH-C cannot check; the simulator can.
  Pipeline P(PipelineOptions::simple());
  RunResult R = P.compileAndRun(R"(
    struct node { int v; };
    int get(node local *p) { return p->v; }
    int main() {
      node *p;
      p = pmalloc(sizeof(node))@node(1);
      p->v = 5;
      return get(p);
    }
  )",
                                machine(2));
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("'local' access to remote address"),
            std::string::npos)
      << R.Error;
}

TEST(ErrorTest, InfiniteLoopHitsFuel) {
  MachineConfig MC = machine(1);
  MC.MaxSteps = 10000;
  RunResult R = Pipeline().compileAndRun(
      "int main() { int i; i = 0; while (i < 1) { i = i * 1; } return 0; }",
      MC);
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(ErrorTest, MissingEntryFunction) {
  RunResult R =
      Pipeline().compileAndRun("int notmain() { return 0; }", machine(1));
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("not found"), std::string::npos);
}

} // namespace
