//===- placement_test.cpp - Possible-placement analysis tests --------------===//
//
// Part of the earthcc project.
//
// The centerpiece is a statement-by-statement check of the paper's Figure 7
// example: the RemoteReads sets our analysis computes must match the sets
// printed in the paper.
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"
#include "analysis/PointsTo.h"
#include "analysis/SideEffects.h"
#include "frontend/Simplify.h"
#include "simple/Printer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace earthcc;

namespace {

struct Compiled {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<SideEffects> SE;
  PlacementResult PR;
};

Compiled analyze(const std::string &Src, const std::string &FuncName,
                 PlacementOptions Opts = {}) {
  DiagnosticsEngine Diags;
  Compiled C;
  C.M = compileToSimple(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  C.F = C.M->findFunction(FuncName);
  EXPECT_NE(C.F, nullptr);
  C.PT = std::make_unique<PointsToAnalysis>(*C.M);
  C.SE = std::make_unique<SideEffects>(*C.M, *C.PT);
  C.PR = runPlacementAnalysis(*C.F, *C.SE, Opts);
  return C;
}

/// Finds the first basic statement whose printed form contains \p Needle.
const Stmt *findStmt(const Function &F, const std::string &Needle) {
  const Stmt *Found = nullptr;
  forEachStmt(F.body(), [&](const Stmt &S) {
    if (Found || !S.isBasic())
      return;
    std::string Text = printStmt(S, PrintOptions{/*ShowLabels=*/false});
    if (Text.find(Needle) != std::string::npos)
      Found = &S;
  });
  return Found;
}

/// Renders an RCE set as "base->field:freq" terms, sorted, for compact
/// assertions that ignore statement labels.
std::string summarize(const std::vector<RCE> &Set) {
  std::vector<std::string> Terms;
  for (const RCE &T : Set) {
    std::ostringstream OS;
    OS << T.Base->name() << "->" << T.FieldName << ":" << T.Freq;
    Terms.push_back(OS.str());
  }
  std::sort(Terms.begin(), Terms.end());
  std::string Out;
  for (const std::string &S : Terms)
    Out += (Out.empty() ? "" : " ") + S;
  return Out;
}

//===----------------------------------------------------------------------===//
// Figure 7: backward propagation of RemoteReads.
//===----------------------------------------------------------------------===//

const char *Figure7Program = R"(
  struct Point { double x; double y; Point *next; };

  double f(double ax, double ay, double bx, double by) {
    return ax - bx + ay - by;
  }

  double closest(Point *head, Point *t, double epsilon) {
    Point *p;
    Point *close;
    double ax; double ay; double bx; double by; double dist;
    double cx; double tx; double diffx; double cy; double ty; double diffy;
    p = head;
    while (p != NULL) {
      ax = p->x;
      ay = p->y;
      bx = t->x;
      by = t->y;
      dist = f(ax, ay, bx, by);
      if (dist < epsilon) { close = p; }
      p = p->next;
    }
    cx = close->x;
    tx = t->x;
    diffx = cx - tx;
    cy = close->y;
    ty = t->y;
    diffy = cy - ty;
    return diffx + diffy;
  }
)";

TEST(Figure7Test, SetBeforeLoopMatchesPaper) {
  Compiled C = analyze(Figure7Program, "closest");
  // Paper, before S1/S2: { (t->x, 11, S11:S4), (t->y, 11, S12:S7) }.
  const Stmt *S1 = findStmt(*C.F, "p = head");
  ASSERT_NE(S1, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(S1)), "t->x:11 t->y:11");

  const Stmt *Loop = nullptr;
  forEachStmt(C.F->body(), [&](const Stmt &S) {
    if (!Loop && S.kind() == StmtKind::While)
      Loop = &S;
  });
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(Loop)), "t->x:11 t->y:11");
}

TEST(Figure7Test, DlistsCoverLoopAndAfterLoopUses) {
  Compiled C = analyze(Figure7Program, "closest");
  const Stmt *S1 = findStmt(*C.F, "p = head");
  ASSERT_NE(S1, nullptr);
  const auto &Set = C.PR.readsBefore(S1);
  ASSERT_EQ(Set.size(), 2u);
  // Each tuple must cover exactly two statements: the in-loop read and the
  // after-loop read (paper: S11:S4 and S12:S7).
  for (const RCE &T : Set) {
    EXPECT_EQ(T.DList.size(), 2u) << T.str();
    const Stmt *InLoop =
        findStmt(*C.F, T.FieldName == "x" ? "bx = t->x" : "by = t->y");
    const Stmt *AfterLoop =
        findStmt(*C.F, T.FieldName == "x" ? "tx = t->x" : "ty = t->y");
    ASSERT_NE(InLoop, nullptr);
    ASSERT_NE(AfterLoop, nullptr);
    EXPECT_TRUE(std::count(T.DList.begin(), T.DList.end(), InLoop->label()));
    EXPECT_TRUE(
        std::count(T.DList.begin(), T.DList.end(), AfterLoop->label()));
  }
}

TEST(Figure7Test, SetAtLoopBodyTopMatchesPaper) {
  Compiled C = analyze(Figure7Program, "closest");
  // Paper, before S9 (= ax = p->x):
  //   { (p->next,1,S15), (p->y,1,S10), (p->x,1,S9), (t->y,1,S12),
  //     (t->x,1,S11) }.
  const Stmt *S9 = findStmt(*C.F, "ax = p->x");
  ASSERT_NE(S9, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(S9)),
            "p->next:1 p->x:1 p->y:1 t->x:1 t->y:1");
}

TEST(Figure7Test, SetAfterLoopMatchesPaper) {
  Compiled C = analyze(Figure7Program, "closest");
  // Paper, before S3 (= cx = close->x):
  //   { (t->y,1,S7), (close->y,1,S6), (t->x,1,S4), (close->x,1,S3) }.
  const Stmt *S3 = findStmt(*C.F, "cx = close->x");
  ASSERT_NE(S3, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(S3)),
            "close->x:1 close->y:1 t->x:1 t->y:1");
}

TEST(Figure7Test, PTupleKilledByPointerUpdate) {
  Compiled C = analyze(Figure7Program, "closest");
  // Before S15 (p = p->next), only (p->next,1,S15) remains — everything
  // else in the body is above it; and the tuple must not survive into the
  // set before the loop (p is written inside).
  const Stmt *S15 = findStmt(*C.F, "p = p->next");
  ASSERT_NE(S15, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(S15)), "p->next:1");
}

TEST(Figure7Test, CloseTuplesDoNotCrossLoop) {
  Compiled C = analyze(Figure7Program, "closest");
  const Stmt *S1 = findStmt(*C.F, "p = head");
  for (const RCE &T : C.PR.readsBefore(S1))
    EXPECT_NE(T.Base->name(), "close")
        << "close is written in the loop; its reads must not hoist above it";
}

//===----------------------------------------------------------------------===//
// Frequency adjustment rules.
//===----------------------------------------------------------------------===//

TEST(FrequencyTest, ConditionalHalvesFrequency) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int c) {
      double v;
      v = 0.0;
      if (c > 0) {
        v = p->x;
      }
      return v;
    }
  )",
                       "f");
  const Stmt *VInit = findStmt(*C.F, "v = 0");
  ASSERT_NE(VInit, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(VInit)), "p->x:0.5");
}

TEST(FrequencyTest, BothBranchesSumToOne) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int c) {
      double v;
      v = 0.0;
      if (c > 0) {
        v = p->x;
      } else {
        v = p->x;
      }
      return v;
    }
  )",
                       "f");
  const Stmt *VInit = findStmt(*C.F, "v = 0");
  EXPECT_EQ(summarize(C.PR.readsBefore(VInit)), "p->x:1");
}

TEST(FrequencyTest, SwitchDividesByAlternatives) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int c) {
      double v;
      v = 0.0;
      switch (c) {
      case 0: v = p->x; break;
      case 1: v = 1.0; break;
      case 2: v = 2.0; break;
      default: v = 3.0; break;
      }
      return v;
    }
  )",
                       "f");
  const Stmt *VInit = findStmt(*C.F, "v = 0");
  // 4 alternatives (3 cases + default): freq 1/4.
  EXPECT_EQ(summarize(C.PR.readsBefore(VInit)), "p->x:0.25");
}

TEST(FrequencyTest, LoopMultipliesByTen) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int n) {
      double s;
      int i;
      s = 0.0;
      i = 0;
      while (i < n) {
        s = s + p->x;
        i = i + 1;
      }
      return s;
    }
  )",
                       "f");
  const Stmt *SInit = findStmt(*C.F, "s = 0");
  ASSERT_NE(SInit, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(SInit)), "p->x:10");
}

TEST(FrequencyTest, NestedLoopMultipliesTwice) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int n) {
      double s;
      int i; int j;
      s = 0.0;
      i = 0;
      while (i < n) {
        j = 0;
        while (j < n) {
          s = s + p->x;
          j = j + 1;
        }
        i = i + 1;
      }
      return s;
    }
  )",
                       "f");
  const Stmt *SInit = findStmt(*C.F, "s = 0");
  EXPECT_EQ(summarize(C.PR.readsBefore(SInit)), "p->x:100");
}

//===----------------------------------------------------------------------===//
// Kill rules: aliases and calls.
//===----------------------------------------------------------------------===//

TEST(KillRuleTest, AliasWriteKillsReadTuple) {
  // q aliases p (q = p), so the write q->x = 0 kills hoisting of p->x.
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      Point *q;
      double v;
      q = p;
      q->x = 0.0;
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Store = findStmt(*C.F, "q->x");
  ASSERT_NE(Store, nullptr);
  // Before the store, the read of p->x must NOT be placeable.
  EXPECT_EQ(summarize(C.PR.readsBefore(Store)), "");
}

TEST(KillRuleTest, DirectWriteDoesNotKillReadTuple) {
  // Paper: a direct write via p->f does not kill (p->f) read tuples —
  // blocked communication absorbs both into the local struct.
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      double v;
      p->x = 1.0;
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Store = findStmt(*C.F, "p->x{r} = ");
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(Store)), "p->x:1");
}

TEST(KillRuleTest, UnrelatedFieldWriteDoesNotKill) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, Point *q) {
      double v;
      q->y = 0.0;
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Store = findStmt(*C.F, "q->y");
  ASSERT_NE(Store, nullptr);
  // Different field offsets never alias, even though p/q might.
  EXPECT_EQ(summarize(C.PR.readsBefore(Store)), "p->x:1");
}

TEST(KillRuleTest, CallWritingHeapKillsReadTuple) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    void clobber(Point *r) { r->x = 0.0; }
    double f(Point *p) {
      double v;
      clobber(p);
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Call = findStmt(*C.F, "clobber(p)");
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(Call)), "");
}

TEST(KillRuleTest, PureCallDoesNotKill) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    int pure(int a) { return a + 1; }
    double f(Point *p, int c) {
      double v;
      int r;
      r = pure(c);
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Call = findStmt(*C.F, "pure(c)");
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(Call)), "p->x:1");
}

TEST(KillRuleTest, RecursiveCalleeSummariesConverge) {
  Compiled C = analyze(R"(
    struct node { int v; node *next; };
    void zap(node *n) {
      if (n != NULL) {
        n->v = 0;
        zap(n);
      }
    }
    int f(node *p) {
      int v;
      zap(p);
      v = p->v;
      return v;
    }
  )",
                       "f");
  const Stmt *Call = findStmt(*C.F, "zap(p)");
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(summarize(C.PR.readsBefore(Call)), "");
}

//===----------------------------------------------------------------------===//
// RemoteWrites: forward propagation.
//===----------------------------------------------------------------------===//

TEST(WritesTest, WritesSinkToFunctionEnd) {
  // scale_point (paper Figure 4): both stores can sink to the end.
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double scale(double v, double k) { return v * k; }
    void scale_point(Point *p, double k) {
      double t1; double t2; double t3; double t4;
      t1 = p->x;
      t2 = scale(t1, k);
      p->x = t2;
      t3 = p->y;
      t4 = scale(t3, k);
      p->y = t4;
    }
  )",
                       "scale_point");
  const Stmt *Last = findStmt(*C.F, "p->y{r} = t4");
  ASSERT_NE(Last, nullptr);
  // After the last statement both writes are placeable.
  EXPECT_EQ(summarize(C.PR.writesAfter(Last)), "p->x:1 p->y:1");
}

TEST(WritesTest, DirectReadDoesNotBlockSinking) {
  // Per the paper's rule, only *aliased* reads kill write tuples; a direct
  // read via p is rewritten onto the local copy by the transformation.
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      double v;
      p->x = 1.0;
      v = p->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Read = findStmt(*C.F, "v = p->x");
  ASSERT_NE(Read, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(Read)), "p->x:1");
}

TEST(WritesTest, AliasedReadBlocksSinking) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      Point *q;
      double v;
      q = p;
      p->x = 1.0;
      v = q->x;
      return v;
    }
  )",
                       "f");
  const Stmt *Read = findStmt(*C.F, "v = q->x");
  ASSERT_NE(Read, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(Read)), "");
}

TEST(WritesTest, WriteOnlyInOneBranchStaysInside) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    void f(Point *p, int c) {
      if (c > 0) {
        p->x = 1.0;
      }
    }
  )",
                       "f");
  const Stmt *If = nullptr;
  forEachStmt(C.F->body(), [&](const Stmt &S) {
    if (!If && S.kind() == StmtKind::If)
      If = &S;
  });
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(If)), "");
}

TEST(WritesTest, WriteInBothBranchesSinksBelowIf) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    void f(Point *p, int c) {
      double z;
      if (c > 0) {
        p->x = 1.0;
      } else {
        p->x = 2.0;
      }
      z = 0.0;
    }
  )",
                       "f");
  const Stmt *If = nullptr;
  forEachStmt(C.F->body(), [&](const Stmt &S) {
    if (!If && S.kind() == StmtKind::If)
      If = &S;
  });
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(If)), "p->x:1");
}

TEST(WritesTest, WritesNeverLeaveLoops) {
  Compiled C = analyze(R"(
    struct node { int v; node *next; };
    void f(node *p, int n) {
      int i;
      i = 0;
      while (i < n) {
        p->v = i;
        i = i + 1;
      }
    }
  )",
                       "f");
  const Stmt *Loop = nullptr;
  forEachStmt(C.F->body(), [&](const Stmt &S) {
    if (!Loop && S.kind() == StmtKind::While)
      Loop = &S;
  });
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(Loop)), "");
}

TEST(WritesTest, ReturnBlocksSinking) {
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    int f(Point *p, int c) {
      p->x = 1.0;
      if (c > 0) {
        return 1;
      }
      return 0;
    }
  )",
                       "f");
  // The write may not sink below the conditional return.
  const Stmt *If = nullptr;
  forEachStmt(C.F->body(), [&](const Stmt &S) {
    if (!If && S.kind() == StmtKind::If)
      If = &S;
  });
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(summarize(C.PR.writesAfter(If)), "");
}

//===----------------------------------------------------------------------===//
// Options.
//===----------------------------------------------------------------------===//

TEST(OptionsTest, PessimisticConditionalReads) {
  PlacementOptions Opts;
  Opts.OptimisticConditionalReads = false;
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int c) {
      double v;
      v = 0.0;
      if (c > 0) {
        v = p->x;
      }
      return v;
    }
  )",
                       "f", Opts);
  const Stmt *VInit = findStmt(*C.F, "v = 0");
  EXPECT_EQ(summarize(C.PR.readsBefore(VInit)), "");
}

TEST(OptionsTest, LoopFactorConfigurable) {
  PlacementOptions Opts;
  Opts.LoopFrequencyFactor = 100.0;
  Compiled C = analyze(R"(
    struct Point { double x; double y; };
    double f(Point *p, int n) {
      double s;
      int i;
      s = 0.0;
      i = 0;
      while (i < n) {
        s = s + p->x;
        i = i + 1;
      }
      return s;
    }
  )",
                       "f", Opts);
  const Stmt *SInit = findStmt(*C.F, "s = 0");
  EXPECT_EQ(summarize(C.PR.readsBefore(SInit)), "p->x:100");
}

} // namespace
