//===- ir_test.cpp - Unit tests for the SIMPLE IR --------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Function.h"
#include "simple/IRBuilder.h"
#include "simple/Printer.h"
#include "simple/Verifier.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

/// Builds `struct Point { double x; double y; };` in \p M.
StructType *makePointStruct(Module &M) {
  StructType *S = M.types().createStruct("Point");
  S->addField("x", M.types().doubleTy());
  S->addField("y", M.types().doubleTy());
  S->finalize();
  return S;
}

TEST(TypeTest, ScalarSizes) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.intTy()->sizeInWords(), 1u);
  EXPECT_EQ(Ctx.doubleTy()->sizeInWords(), 1u);
  EXPECT_EQ(Ctx.voidTy()->sizeInWords(), 0u);
  EXPECT_EQ(Ctx.pointerTo(Ctx.intTy())->sizeInWords(), 1u);
}

TEST(TypeTest, PointerInterning) {
  TypeContext Ctx;
  const Type *P1 = Ctx.pointerTo(Ctx.intTy());
  const Type *P2 = Ctx.pointerTo(Ctx.intTy());
  const Type *PL = Ctx.pointerTo(Ctx.intTy(), /*LocalQual=*/true);
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, PL);
  EXPECT_TRUE(PL->isLocalPointer());
  EXPECT_FALSE(P1->isLocalPointer());
}

TEST(TypeTest, StructLayout) {
  Module M;
  StructType *S = M.types().createStruct("node");
  S->addField("value", M.types().intTy());
  S->addField("next",
              M.types().pointerTo(M.types().structTy(S)));
  S->finalize();
  EXPECT_EQ(S->sizeInWords(), 2u);
  EXPECT_EQ(S->findField("value")->OffsetWords, 0u);
  EXPECT_EQ(S->findField("next")->OffsetWords, 1u);
  EXPECT_EQ(S->findField("missing"), nullptr);
}

TEST(TypeTest, NestedStructLayout) {
  Module M;
  StructType *Inner = M.types().createStruct("D");
  Inner->addField("P", M.types().doubleTy());
  Inner->addField("Q", M.types().doubleTy());
  Inner->finalize();
  StructType *Outer = M.types().createStruct("branch");
  Outer->addField("R", M.types().doubleTy());
  Outer->addField("D", M.types().structTy(Inner));
  Outer->addField("alpha", M.types().doubleTy());
  Outer->finalize();
  EXPECT_EQ(Outer->sizeInWords(), 4u);
  EXPECT_EQ(Outer->findField("D")->OffsetWords, 1u);
  EXPECT_EQ(Outer->findField("alpha")->OffsetWords, 3u);
  EXPECT_EQ(Outer->fieldAtOffset(2)->Name, "D");
}

TEST(TypeTest, DuplicateStructRejected) {
  Module M;
  EXPECT_NE(M.types().createStruct("S"), nullptr);
  EXPECT_EQ(M.types().createStruct("S"), nullptr);
}

TEST(TypeTest, Printing) {
  Module M;
  StructType *S = makePointStruct(M);
  EXPECT_EQ(M.types().intTy()->str(), "int");
  EXPECT_EQ(M.types().structTy(S)->str(), "struct Point");
  EXPECT_EQ(M.types().pointerTo(M.types().structTy(S))->str(),
            "struct Point *");
  EXPECT_EQ(M.types().pointerTo(M.types().structTy(S), true)->str(),
            "struct Point local *");
}

TEST(FunctionTest, TempNaming) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *T1 = F->addTemp(M.types().intTy());
  Var *C1 = F->addTemp(M.types().intTy(), VarKind::CommTemp);
  Var *B1 = F->addTemp(M.types().intTy(), VarKind::BlockTemp);
  Var *T2 = F->addTemp(M.types().intTy());
  EXPECT_EQ(T1->name(), "temp1");
  EXPECT_EQ(T2->name(), "temp2");
  EXPECT_EQ(C1->name(), "comm1");
  EXPECT_EQ(B1->name(), "bcomm1");
}

TEST(FunctionTest, RelabelAndFind) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("distance", M.types().doubleTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *X = F->addLocal("x", M.types().doubleTy());

  IRBuilder B(M, *F);
  B.assign(X, B.load(P, "x"));
  B.ret(Operand::var(X));
  int N = F->relabel();
  EXPECT_EQ(N, 3); // Seq + 2 basic statements.
  Stmt *S2 = F->findStmt(2);
  ASSERT_NE(S2, nullptr);
  EXPECT_EQ(S2->kind(), StmtKind::Assign);
}

TEST(IRBuilderTest, RemoteVsLocalLoads) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *Q = F->addParam("q",
                       M.types().pointerTo(M.types().structTy(S), true));
  Var *X = F->addLocal("x", M.types().doubleTy());

  IRBuilder B(M, *F);
  AssignStmt *A1 = B.assign(X, B.load(P, "x"));
  AssignStmt *A2 = B.assign(X, B.load(Q, "x"));
  EXPECT_TRUE(A1->isRemoteRead());
  EXPECT_FALSE(A2->isRemoteRead());
}

TEST(PrinterTest, MarksRemoteAccesses) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *X = F->addLocal("x", M.types().doubleTy());

  IRBuilder B(M, *F);
  B.assign(X, B.load(P, "x"));
  B.store(P, "y", Operand::var(X));
  B.finish();

  std::string Out = printFunction(*F);
  EXPECT_NE(Out.find("x = p->x{r};"), std::string::npos);
  EXPECT_NE(Out.find("p->y{r} = x;"), std::string::npos);
}

TEST(CloneTest, DeepCopiesControlFlow) {
  Module M;
  Function *F = M.createFunction("f", M.types().intTy());
  Var *X = F->addParam("x", M.types().intTy());
  IRBuilder B(M, *F);
  IfStmt *If = B.beginIf(B.cmp(BinaryOp::Lt, Operand::var(X),
                               Operand::intConst(10)));
  B.ret(Operand::intConst(1));
  B.elsePart(If);
  B.ret(Operand::intConst(0));
  B.endIf();
  B.finish();

  StmtPtr Copy = cloneStmt(F->body());
  std::string A = printStmt(F->body());
  std::string Bp = printStmt(*Copy);
  EXPECT_EQ(A, Bp);
  // Mutating the copy must not affect the original.
  auto &CopySeq = castStmt<SeqStmt>(*Copy);
  CopySeq.Stmts.clear();
  EXPECT_FALSE(F->body().empty());
}

TEST(VerifierTest, AcceptsWellFormed) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *X = F->addLocal("x", M.types().doubleTy());
  IRBuilder B(M, *F);
  B.assign(X, B.load(P, "x"));
  B.store(P, "y", Operand::var(X));
  B.ret();
  B.finish();
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << (Errors.empty() ? "" : Errors[0]);
}

TEST(VerifierTest, RejectsDoubleIndirection) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *Q = F->addParam("q", M.types().pointerTo(M.types().structTy(S)));

  // q->y = p->x: two indirections in one basic statement.
  auto Load = std::make_unique<LoadRV>(P, 0, "x", M.types().doubleTy(),
                                       Locality::Remote);
  auto Bad = std::make_unique<AssignStmt>(
      LValue::makeStore(Q, 1, "y", Locality::Remote), std::move(Load));
  F->body().push(std::move(Bad));
  F->relabel();

  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("more than one indirection"), std::string::npos);
}

TEST(VerifierTest, RejectsForeignVariable) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  Function *G = M.createFunction("g", M.types().voidTy());
  Var *X = G->addLocal("x", M.types().intTy());
  IRBuilder B(M, *F);
  B.assign(X, Operand::intConst(1));
  B.finish();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(M, *F, Errors));
}

TEST(VerifierTest, RejectsSharedOutsideAtomic) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *S = F->addLocal("count", M.types().intTy(), VarKind::Shared);
  IRBuilder B(M, *F);
  B.assign(S, Operand::intConst(0)); // Must use writeto instead.
  B.finish();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(M, *F, Errors));
}

TEST(VerifierTest, AcceptsAtomicOnShared) {
  Module M;
  Function *F = M.createFunction("f", M.types().intTy());
  Var *S = F->addLocal("count", M.types().intTy(), VarKind::Shared);
  Var *R = F->addLocal("r", M.types().intTy());
  F->body().push(std::make_unique<AtomicStmt>(AtomicOp::WriteTo, S,
                                              Operand::intConst(0), nullptr));
  F->body().push(
      std::make_unique<AtomicStmt>(AtomicOp::ValueOf, S, Operand(), R));
  F->body().push(std::make_unique<ReturnStmt>(Operand::var(R)));
  F->relabel();
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(M, *F, Errors)) << (Errors.empty() ? ""
                                                                : Errors[0]);
}

TEST(VerifierTest, RejectsBadBlkMov) {
  Module M;
  StructType *S = makePointStruct(M);
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *P = F->addParam("p", M.types().pointerTo(M.types().structTy(S)));
  Var *B = F->addTemp(M.types().structTy(S), VarKind::BlockTemp);
  // Words larger than the struct.
  F->body().push(std::make_unique<BlkMovStmt>(BlkMovDir::ReadToLocal, P, B,
                                              /*Words=*/5));
  F->relabel();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(M, *F, Errors));
}

TEST(StmtTest, ForEachStmtVisitsNested) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  Var *X = F->addLocal("x", M.types().intTy());
  IRBuilder B(M, *F);
  B.beginWhile(B.cmp(BinaryOp::Lt, Operand::var(X), Operand::intConst(5)));
  B.assign(X, B.binary(BinaryOp::Add, Operand::var(X), Operand::intConst(1)));
  B.endWhile();
  B.finish();

  int Count = 0;
  forEachStmt(F->body(), [&](const Stmt &) { ++Count; });
  EXPECT_EQ(Count, 4); // outer Seq, While, body Seq, Assign.
}

} // namespace
