//===- service_test.cpp - CompileService cache and concurrency tests -------===//
//
// Part of the earthcc project.
//
// The service's contracts, each pinned under concurrency where it matters:
//
//  - Cache identity: requests differing in a result-determining option
//    (engine, fuse, node count, optimization) are distinct artifacts;
//    requests differing only in instrumentation (trace sink) share one.
//  - Single-flight: N concurrent identical requests execute the pipeline
//    exactly once — the others join the in-flight computation.
//  - Eviction: completed artifacts respect the byte budget LRU-wise; the
//    most recent entry survives, evicted keys recompute on next use.
//  - Determinism: a cached response is bit-identical to a fresh one —
//    simulated time, counters, and the serialized comm profile.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "service/Serve.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

using namespace earthcc;

namespace {

const char *Program = R"(
  struct Point { double x; double y; Point *next; };
  Point *build(int n) {
    Point *head; Point *p; int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
      p = pmalloc(sizeof(Point))@node(i % num_nodes());
      p->x = i * 1.0;
      p->y = i * 2.0;
      p->next = head;
      head = p;
    }
    return head;
  }
  int main() {
    Point *head; Point *p;
    double sx;
    head = build(24);
    sx = 0.0;
    p = head;
    while (p != NULL) {
      sx = sx + p->x + p->y;
      p = p->next;
    }
    return sx;
  }
)";

ServiceConfig workers(unsigned N) {
  ServiceConfig C;
  C.Workers = N;
  return C;
}

} // namespace

TEST(ServiceCompileTest, HitOnIdenticalMissOnDifferentOptions) {
  CompileService S(workers(2));

  CompileRequest Opt = CompileRequest::optimized(Program);
  CompileResponse First = S.submitCompile(Opt).get();
  ASSERT_TRUE(First.OK) << First.Messages;
  EXPECT_FALSE(First.CacheHit);
  ASSERT_NE(First.Artifact, nullptr);
  EXPECT_NE(First.Artifact->M, nullptr);
  EXPECT_FALSE(First.Artifact->ThreadedC.empty());

  CompileResponse Again = S.submitCompile(Opt).get();
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(Again.Artifact.get(), First.Artifact.get()); // shared, not copied
  EXPECT_EQ(Again.Key, First.Key);

  // A key-changing option is a different artifact.
  CompileResponse Simple =
      S.submitCompile(CompileRequest::simple(Program)).get();
  ASSERT_TRUE(Simple.OK);
  EXPECT_FALSE(Simple.CacheHit);
  EXPECT_NE(Simple.Key, First.Key);

  // A host-only knob is the same artifact.
  CompileRequest MoreThreads = Opt;
  MoreThreads.LowerThreads = 4;
  MoreThreads.PassThreads = 4;
  EXPECT_TRUE(S.submitCompile(MoreThreads).get().CacheHit);

  ServiceStats St = S.stats();
  EXPECT_EQ(St.CompileRequests, 4u);
  EXPECT_EQ(St.CompileExecutions, 2u);
  EXPECT_EQ(St.CompileHits + St.CompileWaits, 2u);
}

TEST(ServiceRunTest, KeyedOptionsMissInstrumentationHits) {
  CompileService S(workers(2));
  CompileRequest CReq = CompileRequest::optimized(Program);

  RunRequest Base;
  Base.Nodes = 4;
  RunResponse R1 = S.submitRun(CReq, Base).get();
  ASSERT_TRUE(R1.OK) << R1.Error;
  EXPECT_FALSE(R1.CacheHit);

  // Identical request: served from cache, same artifact object.
  RunResponse R2 = S.submitRun(CReq, Base).get();
  EXPECT_TRUE(R2.CacheHit);
  EXPECT_TRUE(R2.CompileCacheHit);
  EXPECT_EQ(R2.Sim.get(), R1.Sim.get());

  // Engine, fuse and node count are keyed: each is a distinct simulated
  // artifact (conservative identity), even though results are equal.
  RunRequest Ast = Base;
  Ast.Engine = ExecEngine::AST;
  RunResponse RAst = S.submitRun(CReq, Ast).get();
  EXPECT_FALSE(RAst.CacheHit);
  EXPECT_TRUE(RAst.CompileCacheHit); // same compiled module underneath
  EXPECT_EQ(RAst.Sim->TimeNs, R1.Sim->TimeNs);
  EXPECT_EQ(RAst.Sim->Counters.total(), R1.Sim->Counters.total());

  RunRequest NoFuse = Base;
  NoFuse.Fuse = !Base.Fuse;
  EXPECT_FALSE(S.submitRun(CReq, NoFuse).get().CacheHit);

  RunRequest EightNodes = Base;
  EightNodes.Nodes = 8;
  EXPECT_FALSE(S.submitRun(CReq, EightNodes).get().CacheHit);

  // Attaching a trace sink is NOT keyed: the request still hits, and the
  // cached (untraced) result is returned unchanged.
  ChromeTraceSink Sink;
  RunRequest Traced = Base;
  Traced.Sink = &Sink;
  RunResponse RTraced = S.submitRun(CReq, Traced).get();
  EXPECT_TRUE(RTraced.CacheHit);
  EXPECT_EQ(RTraced.Sim.get(), R1.Sim.get());

  ServiceStats St = S.stats();
  EXPECT_EQ(St.RunExecutions, 4u); // base, ast, nofuse, 8 nodes
  EXPECT_EQ(St.CompileExecutions, 1u);
}

TEST(ServiceDedupTest, ConcurrentIdenticalRequestsCompileOnce) {
  // 8 identical requests race on an 8-worker pool: single-flight must
  // collapse them to exactly one pipeline execution regardless of how the
  // workers interleave — the others either join the in-flight future
  // (waits) or see the published artifact (hits).
  CompileService S(workers(8));
  CompileRequest CReq = CompileRequest::optimized(Program);
  RunRequest RReq;
  RReq.Nodes = 4;

  std::vector<std::future<RunResponse>> Futures;
  for (int I = 0; I != 8; ++I)
    Futures.push_back(S.submitRun(CReq, RReq));

  const SimArtifact *Shared = nullptr;
  for (auto &F : Futures) {
    RunResponse R = F.get();
    ASSERT_TRUE(R.OK) << R.Error;
    if (!Shared)
      Shared = R.Sim.get();
    EXPECT_EQ(R.Sim.get(), Shared); // one artifact object for all
  }

  ServiceStats St = S.stats();
  EXPECT_EQ(St.RunRequests, 8u);
  EXPECT_EQ(St.RunExecutions, 1u);
  EXPECT_EQ(St.RunHits + St.RunWaits, 7u);
  EXPECT_EQ(St.CompileRequests, 8u);
  EXPECT_EQ(St.CompileExecutions, 1u);
}

TEST(ServiceEvictionTest, ByteBudgetEvictsLRUAndRecomputes) {
  ServiceConfig Cfg = workers(2);
  Cfg.CacheBudgetBytes = 1; // every publish overflows: only MRU survives
  CompileService S(Cfg);

  CompileRequest A = CompileRequest::simple("int main() { return 1; }");
  CompileRequest B = CompileRequest::simple("int main() { return 2; }");

  std::shared_ptr<const CompiledArtifact> HeldA =
      S.submitCompile(A).get().Artifact;
  ASSERT_TRUE(HeldA && HeldA->OK);
  EXPECT_EQ(S.stats().CacheEntries, 1u); // A survives: MRU is protected

  ASSERT_TRUE(S.submitCompile(B).get().OK); // publishing B evicts A
  ServiceStats St = S.stats();
  EXPECT_GE(St.Evictions, 1u);
  EXPECT_EQ(St.CacheEntries, 1u);

  // The held shared_ptr outlives eviction; the map entry is gone, so A
  // recomputes on next use (a miss, not a hit).
  EXPECT_NE(HeldA->M->findFunction("main"), nullptr);
  CompileResponse AAgain = S.submitCompile(A).get();
  EXPECT_FALSE(AAgain.CacheHit);
  EXPECT_EQ(S.stats().CompileExecutions, 3u);

  // Distinct artifact objects: the recompute did not resurrect the pointer.
  EXPECT_NE(AAgain.Artifact.get(), HeldA.get());
}

TEST(ServiceDeterminismTest, CachedResponseBitIdenticalToFresh) {
  // The same request against two independent services: one cold compute
  // each; then a cached replay from the first. All three must agree bit
  // for bit — simulated time, counters, step count, and the serialized
  // per-site comm profile.
  CompileRequest CReq = CompileRequest::optimized(Program);
  RunRequest RReq;
  RReq.Nodes = 4;

  CompileService S1(workers(2));
  RunResponse Fresh1 = S1.submitRun(CReq, RReq).get();
  ASSERT_TRUE(Fresh1.OK) << Fresh1.Error;
  RunResponse Cached = S1.submitRun(CReq, RReq).get();
  EXPECT_TRUE(Cached.CacheHit);

  CompileService S2(workers(1));
  RunResponse Fresh2 = S2.submitRun(CReq, RReq).get();
  ASSERT_TRUE(Fresh2.OK) << Fresh2.Error;

  for (const RunResponse *R : {&Cached, &Fresh2}) {
    EXPECT_EQ(R->Sim->TimeNs, Fresh1.Sim->TimeNs);
    EXPECT_EQ(R->Sim->ExitValue.I, Fresh1.Sim->ExitValue.I);
    EXPECT_EQ(R->Sim->StepsExecuted, Fresh1.Sim->StepsExecuted);
    EXPECT_EQ(R->Sim->Counters.total(), Fresh1.Sim->Counters.total());
    EXPECT_EQ(R->Sim->Counters.WordsMoved, Fresh1.Sim->Counters.WordsMoved);
    EXPECT_EQ(R->Sim->Output, Fresh1.Sim->Output);
    EXPECT_EQ(R->Sim->WordsPerNode, Fresh1.Sim->WordsPerNode);
    // The profile is serialized once, on the fresh run, from a
    // service-owned profiler: byte equality here is the "cached responses
    // are indistinguishable" guarantee.
    EXPECT_EQ(R->Sim->ProfileJson, Fresh1.Sim->ProfileJson);
  }
  EXPECT_FALSE(Fresh1.Sim->ProfileJson.empty());
}

TEST(ServiceFailureTest, CompileErrorsAreCachedDeterministically) {
  CompileService S(workers(2));
  CompileRequest Bad = CompileRequest::optimized("int main() { return x; }");

  CompileResponse First = S.submitCompile(Bad).get();
  EXPECT_FALSE(First.OK);
  EXPECT_FALSE(First.Messages.empty());

  // Failures are artifacts too: same key, cached diagnostics, no recompile.
  CompileResponse Again = S.submitCompile(Bad).get();
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(Again.Messages, First.Messages);
  EXPECT_EQ(S.stats().CompileExecutions, 1u);

  // A run request against a failing compile fails cleanly with the
  // compiler's diagnostics, and is itself cached.
  RunRequest RReq;
  RunResponse R = S.submitRun(Bad, RReq).get();
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(R.Error, First.Messages);
  EXPECT_TRUE(S.submitRun(Bad, RReq).get().CacheHit);
}

TEST(ServiceTraceTest, ServiceSinkSeesOneSpanPerRequest) {
  ChromeTraceSink Sink;
  ServiceConfig Cfg = workers(2);
  Cfg.Trace = &Sink;
  CompileService S(Cfg);

  CompileRequest CReq = CompileRequest::optimized(Program);
  RunRequest RReq;
  ASSERT_TRUE(S.submitRun(CReq, RReq).get().OK);
  ASSERT_TRUE(S.submitRun(CReq, RReq).get().OK);

  unsigned Spans = 0, Hits = 0;
  for (const TraceEvent &E : Sink.events()) {
    if (E.Name != "svc:run")
      continue;
    ++Spans;
    for (const TraceEvent::Arg &A : E.Args)
      if (A.Key == "hit" && A.Val == "1")
        ++Hits;
  }
  EXPECT_EQ(Spans, 2u);
  EXPECT_EQ(Hits, 1u); // second request was the cache hit
}

TEST(ServiceMetricsTest, RegistryCountersBackTheStatsView) {
  // Each service without an explicit ServiceConfig::Metrics owns a private
  // registry, so counts here are exact regardless of other tests.
  CompileService S(workers(2));
  CompileRequest Opt = CompileRequest::optimized(Program);
  ASSERT_TRUE(S.submitCompile(Opt).get().OK);
  EXPECT_TRUE(S.submitCompile(Opt).get().CacheHit);

  MetricsRegistry &Reg = S.metrics();
  EXPECT_EQ(Reg.counter("svc.requests", {{"op", "compile"},
                                         {"outcome", "miss"}})
                .value(),
            1u);
  EXPECT_EQ(Reg.counter("svc.requests", {{"op", "compile"},
                                         {"outcome", "hit"}})
                    .value() +
                Reg.counter("svc.requests", {{"op", "compile"},
                                             {"outcome", "wait"}})
                    .value(),
            1u);
  // Both requests observed a latency sample, split by outcome.
  EXPECT_EQ(Reg.histogram("svc.request_ns", {{"op", "compile"},
                                             {"outcome", "miss"}})
                .count(),
            1u);
  EXPECT_EQ(Reg.histogram("svc.request_ns", {{"op", "compile"},
                                             {"outcome", "hit"}})
                .count(),
            1u);

  // stats() is a point-in-time view over these same counters and gauges.
  ServiceStats St = S.stats();
  EXPECT_EQ(St.CompileRequests, 2u);
  EXPECT_EQ(St.CompileExecutions, 1u);
  EXPECT_EQ(static_cast<int64_t>(St.CacheEntries),
            Reg.gauge("svc.cache_entries").value());
  EXPECT_EQ(static_cast<int64_t>(St.CacheBytes),
            Reg.gauge("svc.cache_bytes").value());

  // A second service's private registry is untouched by the first.
  CompileService Fresh(workers(1));
  EXPECT_EQ(Fresh.metrics()
                .counter("svc.requests",
                         {{"op", "compile"}, {"outcome", "miss"}})
                .value(),
            0u);
}

TEST(ServeMetricsTest, MetricsOpAnswersWithRegistrySnapshot) {
  // The "metrics" op over the serve protocol returns the wired registry's
  // snapshot; after shutdown drains, the registry holds the final counts:
  // one pipeline execution and one cache hit (or in-flight join) for the
  // two identical runs.
  MetricsRegistry Reg;
  ServeOptions Opts;
  Opts.Service.Workers = 2;
  Opts.Service.Metrics = &Reg;

  std::istringstream In(
      "{\"id\":1,\"op\":\"run\",\"workload\":\"power\",\"nodes\":2}\n"
      "{\"id\":2,\"op\":\"run\",\"workload\":\"power\",\"nodes\":2}\n"
      "{\"id\":3,\"op\":\"metrics\"}\n"
      "{\"id\":4,\"op\":\"shutdown\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(runServeLoop(In, Out, Opts), 4u);

  const std::string Text = Out.str();
  EXPECT_NE(Text.find("\"op\":\"metrics\""), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"svc.requests\""), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"svc.request_ns\""), std::string::npos) << Text;

  uint64_t Miss =
      Reg.counter("svc.requests", {{"op", "run"}, {"outcome", "miss"}})
          .value();
  uint64_t Joined =
      Reg.counter("svc.requests", {{"op", "run"}, {"outcome", "hit"}})
          .value() +
      Reg.counter("svc.requests", {{"op", "run"}, {"outcome", "wait"}})
          .value();
  EXPECT_EQ(Miss, 1u);
  EXPECT_EQ(Joined, 1u);
}

TEST(ServeMetricsTest, GlobalRegistryCarriesStageHistogramsAcrossSessions) {
  // Without an explicit registry the serve loop records into the
  // process-wide one — the same registry Pipeline stages and engines use.
  // A first session executes a run; a second session's "metrics" op then
  // reports those per-stage wall-ns histograms and engine dispatch totals
  // alongside its own (empty) cache counters.
  ServeOptions Opts;
  Opts.Service.Workers = 1;
  {
    std::istringstream In(
        "{\"id\":1,\"op\":\"run\",\"workload\":\"power\",\"nodes\":2}\n"
        "{\"id\":2,\"op\":\"shutdown\"}\n");
    std::ostringstream Out;
    runServeLoop(In, Out, Opts);
    ASSERT_NE(Out.str().find("\"ok\":true"), std::string::npos) << Out.str();
  }
  std::istringstream In(
      "{\"id\":1,\"op\":\"metrics\"}\n{\"id\":2,\"op\":\"shutdown\"}\n");
  std::ostringstream Out;
  runServeLoop(In, Out, Opts);
  EXPECT_NE(Out.str().find("\"pipeline.stage_ns\""), std::string::npos);
  EXPECT_NE(Out.str().find("\"engine.runs\""), std::string::npos);
}

TEST(ServiceShutdownTest, DestructionDrainsPendingRequests) {
  // Futures obtained before destruction must complete: the pool drains its
  // queue (workers finish everything submitted) before members die.
  std::vector<std::future<RunResponse>> Futures;
  {
    CompileService S(workers(2));
    CompileRequest CReq = CompileRequest::optimized(Program);
    for (unsigned N : {2u, 4u, 8u}) {
      RunRequest RReq;
      RReq.Nodes = N;
      Futures.push_back(S.submitRun(CReq, RReq));
    }
  } // destructor joins here
  for (auto &F : Futures) {
    RunResponse R = F.get();
    EXPECT_TRUE(R.OK) << R.Error;
  }
}
