//===- frontend_test.cpp - Lexer/Parser/Simplify tests ---------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Simplify.h"
#include "simple/Printer.h"
#include "simple/Verifier.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

std::vector<Token> lex(const std::string &Src, DiagnosticsEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::unique_ptr<Module> compileOK(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto M = compileToSimple(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  return M;
}

//===----------------------------------------------------------------------===//
// Lexer.
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  DiagnosticsEngine Diags;
  auto Toks = lex("int x = p->next;", Diags);
  ASSERT_EQ(Toks.size(), 8u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "x");
  EXPECT_EQ(Toks[2].Kind, TokKind::Eq);
  EXPECT_EQ(Toks[3].Kind, TokKind::Identifier);
  EXPECT_EQ(Toks[4].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[5].Kind, TokKind::Identifier);
  EXPECT_EQ(Toks[6].Kind, TokKind::Semi);
  EXPECT_EQ(Toks[7].Kind, TokKind::Eof);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, ParallelSequenceBrackets) {
  DiagnosticsEngine Diags;
  auto Toks = lex("{^ x ^} { }", Diags);
  EXPECT_EQ(Toks[0].Kind, TokKind::LBraceCaret);
  EXPECT_EQ(Toks[2].Kind, TokKind::CaretRBrace);
  EXPECT_EQ(Toks[3].Kind, TokKind::LBrace);
  EXPECT_EQ(Toks[4].Kind, TokKind::RBrace);
}

TEST(LexerTest, NumbersAndComments) {
  DiagnosticsEngine Diags;
  auto Toks = lex("// line comment\n42 3.5 1e3 /* block\n */ 7", Diags);
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Kind, TokKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, 42);
  EXPECT_EQ(Toks[1].Kind, TokKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(Toks[1].DoubleValue, 3.5);
  EXPECT_EQ(Toks[2].Kind, TokKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(Toks[2].DoubleValue, 1000.0);
  EXPECT_EQ(Toks[3].IntValue, 7);
}

TEST(LexerTest, OperatorsAndLocations) {
  DiagnosticsEngine Diags;
  auto Toks = lex("<= >= == != && || @", Diags);
  EXPECT_EQ(Toks[0].Kind, TokKind::LessEq);
  EXPECT_EQ(Toks[1].Kind, TokKind::GreaterEq);
  EXPECT_EQ(Toks[2].Kind, TokKind::EqEq);
  EXPECT_EQ(Toks[3].Kind, TokKind::NotEq);
  EXPECT_EQ(Toks[4].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Toks[5].Kind, TokKind::PipePipe);
  EXPECT_EQ(Toks[6].Kind, TokKind::At);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Col, 4u);
}

TEST(LexerTest, ReportsBadCharacters) {
  DiagnosticsEngine Diags;
  lex("int $x;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnterminatedComment) {
  DiagnosticsEngine Diags;
  lex("/* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

// strtoll saturates out-of-range literals to LLONG_MAX without setting an
// error token, so the lexer must check errno itself — otherwise the
// program runs with a silently wrong constant.
TEST(LexerTest, IntLiteralOutOfRangeIsAnError) {
  DiagnosticsEngine Diags;
  lex("x = 99999999999999999999;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("out of range"), std::string::npos)
      << Diags.str();
  EXPECT_NE(Diags.str().find("99999999999999999999"), std::string::npos)
      << Diags.str();
}

TEST(LexerTest, IntLiteralBoundary) {
  // INT64_MAX itself lexes fine...
  DiagnosticsEngine Diags;
  auto Toks = lex("9223372036854775807", Diags);
  ASSERT_EQ(Toks.size(), 2u); // literal + EOF
  EXPECT_EQ(Toks[0].Kind, TokKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, INT64_MAX);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();

  // ...but one past it is the first out-of-range value.
  DiagnosticsEngine Overflow;
  lex("9223372036854775808", Overflow);
  EXPECT_TRUE(Overflow.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser.
//===----------------------------------------------------------------------===//

TEST(ParserTest, StructAndFunction) {
  DiagnosticsEngine Diags;
  Parser P(lex("struct node { int value; struct node *next; };\n"
               "int count(struct node *head) { return 0; }",
               Diags),
           Diags);
  auto Unit = P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Unit.Structs.size(), 1u);
  EXPECT_EQ(Unit.Structs[0].Fields.size(), 2u);
  ASSERT_EQ(Unit.Functions.size(), 1u);
  EXPECT_EQ(Unit.Functions[0].Params.size(), 1u);
}

TEST(ParserTest, BareStructNameAsType) {
  DiagnosticsEngine Diags;
  Parser P(lex("struct node { int v; };\n"
               "int f(node *p) { node *q; q = p; return q->v; }",
               Diags),
           Diags);
  P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
}

TEST(ParserTest, LocalQualifierPlacement) {
  DiagnosticsEngine Diags;
  Parser P(lex("struct node { int v; };\n"
               "int f(node local *p, node *local q) { return 0; }",
               Diags),
           Diags);
  auto Unit = P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Unit.Functions[0].Params.size(), 2u);
  EXPECT_TRUE(Unit.Functions[0].Params[0].Type.LocalQual);
  EXPECT_TRUE(Unit.Functions[0].Params[1].Type.LocalQual);
}

TEST(ParserTest, CallPlacementAnnotations) {
  DiagnosticsEngine Diags;
  Parser P(lex("struct node { int v; };\n"
               "int g(node *p) { return 0; }\n"
               "void f(node *p) {\n"
               "  int a, b, c;\n"
               "  a = g(p)@OWNER_OF(p);\n"
               "  b = g(p)@node(3);\n"
               "  c = g(p)@HOME;\n"
               "}",
               Diags),
           Diags);
  auto Unit = P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
}

TEST(ParserTest, ForallAndParallelBlocks) {
  DiagnosticsEngine Diags;
  Parser P(lex("struct node { int v; struct node *next; };\n"
               "void f(node *head) {\n"
               "  node *p;\n"
               "  forall (p = head; p != NULL; p = p->next) {\n"
               "    int x; x = p->v;\n"
               "  }\n"
               "  {^ f(head); f(head); ^}\n"
               "}",
               Diags),
           Diags);
  auto Unit = P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
}

TEST(ParserTest, SwitchWithBreaks) {
  DiagnosticsEngine Diags;
  Parser P(lex("int f(int q) {\n"
               "  int r;\n"
               "  switch (q) {\n"
               "  case 0: r = 1; break;\n"
               "  case 1: r = 2; break;\n"
               "  default: r = 3; break;\n"
               "  }\n"
               "  return r;\n"
               "}",
               Diags),
           Diags);
  P.parseUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
}

TEST(ParserTest, RecoversFromErrors) {
  DiagnosticsEngine Diags;
  Parser P(lex("int f() { return 0 }\nint g() { return 1; }", Diags), Diags);
  auto Unit = P.parseUnit();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Unit.Functions.size(), 2u); // Both functions still parsed.
}

//===----------------------------------------------------------------------===//
// Simplify: lowering into SIMPLE three-address form.
//===----------------------------------------------------------------------===//

/// The paper's Figure 3(a): every indirect reference must become its own
/// basic statement with at most one remote read.
TEST(SimplifyTest, DistanceBecomesThreeAddress) {
  auto M = compileOK(R"(
    struct Point { double x; double y; };
    double distance(Point *p) {
      double dist_p;
      dist_p = sqrt((p->x * p->x) + (p->y * p->y));
      return dist_p;
    }
  )");
  Function *F = M->findFunction("distance");
  ASSERT_NE(F, nullptr);

  int RemoteReads = 0;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (A->isRemoteRead())
        ++RemoteReads;
  });
  // Four loads of p->x / p->y, exactly as the paper's Figure 3(b).
  EXPECT_EQ(RemoteReads, 4);
}

TEST(SimplifyTest, LocalQualifierSuppressesRemote) {
  auto M = compileOK(R"(
    struct Point { double x; double y; };
    double get(Point local *p) {
      double v;
      v = p->x;
      return v;
    }
  )");
  Function *F = M->findFunction("get");
  int RemoteReads = 0, LocalReads = 0;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S)) {
      if (const auto *L = dynCast<LoadRV>(A->R.get())) {
        if (L->isRemote())
          ++RemoteReads;
        else
          ++LocalReads;
      }
    }
  });
  EXPECT_EQ(RemoteReads, 0);
  EXPECT_EQ(LocalReads, 1);
}

TEST(SimplifyTest, NestedStructOffsets) {
  auto M = compileOK(R"(
    struct D { double P; double Q; };
    struct branch { double R; D d; double alpha; };
    double f(branch *br) {
      double v;
      v = br->d.Q;
      return v;
    }
  )");
  Function *F = M->findFunction("f");
  const LoadRV *Load = nullptr;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (const auto *L = dynCast<LoadRV>(A->R.get()))
        Load = L;
  });
  ASSERT_NE(Load, nullptr);
  EXPECT_EQ(Load->OffsetWords, 2u); // R at 0, d.P at 1, d.Q at 2.
  EXPECT_EQ(Load->FieldName, "d.Q");
}

TEST(SimplifyTest, ChainedArrowsSplit) {
  auto M = compileOK(R"(
    struct node { int v; struct node *next; };
    int f(node *p) {
      int x;
      x = p->next->next->v;
      return x;
    }
  )");
  Function *F = M->findFunction("f");
  int Loads = 0;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (dynCast<LoadRV>(A->R.get()))
        ++Loads;
  });
  EXPECT_EQ(Loads, 3); // next, next, v — one indirection per statement.
}

TEST(SimplifyTest, ShortCircuitAnd) {
  auto M = compileOK(R"(
    struct node { int v; struct node *next; };
    int f(node *p) {
      int r;
      r = 0;
      if (p != NULL && p->v > 3) {
        r = 1;
      }
      return r;
    }
  )");
  // The load p->v must be guarded by the null check: it must appear inside
  // an IfStmt, not before it.
  Function *F = M->findFunction("f");
  bool LoadInsideIf = false;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *If = dynCastStmt<IfStmt>(&S)) {
      forEachStmt(*If->Then, [&](const Stmt &Inner) {
        if (const auto *A = dynCastStmt<AssignStmt>(&Inner))
          if (dynCast<LoadRV>(A->R.get()))
            LoadInsideIf = true;
      });
    }
  });
  EXPECT_TRUE(LoadInsideIf);
}

TEST(SimplifyTest, WhileWithComplexCondition) {
  auto M = compileOK(R"(
    struct node { int v; struct node *next; };
    int sum(node *p) {
      int s;
      s = 0;
      while (p != NULL) {
        s = s + p->v;
        p = p->next;
      }
      return s;
    }
  )");
  Function *F = M->findFunction("sum");
  // The loop condition `p != NULL` is simple: it must remain a While cond.
  const WhileStmt *W = nullptr;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *WS = dynCastStmt<WhileStmt>(&S))
      W = WS;
  });
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->Cond->kind(), RValueKind::Binary);
}

TEST(SimplifyTest, SharedCounterViaAtomics) {
  auto M = compileOK(R"(
    struct node { int value; struct node *next; };
    int count(node *head, node *x) {
      shared int cnt;
      node *p;
      int v;
      writeto(&cnt, 0);
      forall (p = head; p != NULL; p = p->next) {
        if (p->value == 7) {
          addto(&cnt, 1);
        }
      }
      v = valueof(&cnt);
      return v;
    }
  )");
  Function *F = M->findFunction("count");
  int Atomics = 0;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (S.kind() == StmtKind::Atomic)
      ++Atomics;
  });
  EXPECT_EQ(Atomics, 3);
}

TEST(SimplifyTest, PMallocTakesTargetType) {
  auto M = compileOK(R"(
    struct node { int v; struct node *next; };
    node *make(int where) {
      node *p;
      p = pmalloc(sizeof(node))@node(where);
      p->v = 0;
      p->next = NULL;
      return p;
    }
  )");
  Function *F = M->findFunction("make");
  const CallStmt *Call = nullptr;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *C = dynCastStmt<CallStmt>(&S))
      Call = C;
  });
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->Intrin, Intrinsic::PMalloc);
  ASSERT_NE(Call->Result, nullptr);
  EXPECT_TRUE(Call->Result->type()->isPointer());
  EXPECT_EQ(Call->Placement, CallPlacement::AtNode);
  ASSERT_EQ(Call->Args.size(), 1u);
  ASSERT_TRUE(Call->Args[0].isConst());
  EXPECT_EQ(Call->Args[0].getConst().I, 2);
}

TEST(SimplifyTest, ParallelSequenceLowersToParSeq) {
  auto M = compileOK(R"(
    struct node { int v; struct node *next; };
    int work(node *p) { return 1; }
    int f(node *head, node *x) {
      int c1, c2;
      {^
        c1 = work(head)@OWNER_OF(x);
        c2 = f(head, x);
      ^}
      return c1 + c2;
    }
  )");
  Function *F = M->findFunction("f");
  const SeqStmt *Par = nullptr;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *Seq = dynCastStmt<SeqStmt>(&S))
      if (Seq->Parallel)
        Par = Seq;
  });
  ASSERT_NE(Par, nullptr);
  EXPECT_EQ(Par->size(), 2u);
}

TEST(SimplifyTest, ForLoopLowersToWhile) {
  auto M = compileOK(R"(
    int f(int n) {
      int i, s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        s = s + i;
      }
      return s;
    }
  )");
  Function *F = M->findFunction("f");
  bool HasWhile = false;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (S.kind() == StmtKind::While)
      HasWhile = true;
  });
  EXPECT_TRUE(HasWhile);
}

TEST(SimplifyTest, IntDoublePromotion) {
  auto M = compileOK(R"(
    double f(int a, double b) {
      double r;
      r = a + b;
      return r;
    }
  )");
  Function *F = M->findFunction("f");
  bool HasConversion = false;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (const auto *U = dynCast<UnaryRV>(A->R.get()))
        if (U->Op == UnaryOp::IntToDouble)
          HasConversion = true;
  });
  EXPECT_TRUE(HasConversion);
}

TEST(SimplifyTest, ConstantFoldingAtInt64Boundaries) {
  // Compile-time folds must match the engines' defined semantics: unary
  // minus wraps (interp::wrapSub) and double->int saturates with NaN -> 0
  // (interp::doubleToIntSat). The bare `-I` / `static_cast<int64_t>(D)`
  // folds were UB on exactly these boundary literals — under UBSan this
  // test trapped before the folds were routed through the helpers.
  auto M = compileOK(R"(
    int main() {
      int hi; int lo; int edge;
      hi = 1e300;
      lo = -1e300;
      edge = -9223372036854775807;
      return hi + lo + edge;
    }
  )");
  std::string IR = printModule(*M);
  // 1e300 saturates to INT64_MAX; -1e300 (folded through the double Neg
  // first) saturates to INT64_MIN.
  EXPECT_NE(IR.find("= 9223372036854775807"), std::string::npos) << IR;
  EXPECT_NE(IR.find("= -9223372036854775808"), std::string::npos) << IR;
  EXPECT_NE(IR.find("= -9223372036854775807"), std::string::npos) << IR;
}

//===----------------------------------------------------------------------===//
// Semantic errors.
//===----------------------------------------------------------------------===//

TEST(SemaErrorTest, UndeclaredIdentifier) {
  DiagnosticsEngine Diags;
  compileToSimple("int f() { return missing; }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SemaErrorTest, UnknownField) {
  DiagnosticsEngine Diags;
  compileToSimple("struct node { int v; };\n"
                  "int f(node *p) { return p->w; }",
                  Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SemaErrorTest, SharedNeedsAtomics) {
  DiagnosticsEngine Diags;
  compileToSimple("int f() { shared int s; s = 3; return 0; }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SemaErrorTest, WrongArgCount) {
  DiagnosticsEngine Diags;
  compileToSimple("int g(int a, int b) { return a; }\n"
                  "int f() { return g(1); }",
                  Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SemaErrorTest, PointerArithmeticRejected) {
  DiagnosticsEngine Diags;
  compileToSimple("struct node { int v; };\n"
                  "int f(node *p, node *q) { return p < q; }",
                  Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SemaErrorTest, StructSelfContainmentRejected) {
  DiagnosticsEngine Diags;
  compileToSimple("struct node { node inner; };", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
