//===- profile_data_test.cpp - Profile persistence and diff tests ----------===//
//
// Part of the earthcc project.
//
// The persisted comm-profile contracts (driver/ProfileData.h):
//
//  - Versioning: --profile=json documents carry a schema version; the
//    loader accepts the current one (and version-less pre-versioning
//    documents), and refuses anything newer with a clear message.
//  - Round trip: save(load(S)) is byte-stable — loading a canonically
//    saved document and saving it again reproduces the same bytes, so
//    profiles can be archived and re-read without drift.
//  - Diff: renderProfileDiff joins two profiles by (function, line, col,
//    op) and reports per-site deltas. The opt-on vs opt-off diff for the
//    power workload is pinned as a golden file: the deltas are exactly the
//    savings the optimizer's remarks promise.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/ProfileData.h"
#include "driver/ProfileReport.h"
#include "support/CommProfiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace earthcc;

#ifndef EARTHCC_GOLDEN_DIR
#error "EARTHCC_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string goldenPath() {
  return std::string(EARTHCC_GOLDEN_DIR) + "/profile_diff_power.txt";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Compiles and runs the power workload at \p Mode on \p Nodes nodes and
/// returns the --profile=json document. Empty string (plus a recorded
/// failure) if anything goes wrong.
std::string profileFor(RunMode Mode, unsigned Nodes) {
  const Workload *W = findWorkload("power");
  if (!W) {
    ADD_FAILURE() << "power workload missing";
    return {};
  }
  Pipeline P(workloadOptions(Mode));
  CompileResult CR = P.compile(W->smallSource());
  if (!CR.OK) {
    ADD_FAILURE() << CR.Messages;
    return {};
  }
  CommProfiler Prof;
  MachineConfig MC = workloadMachine(Mode, Nodes);
  MC.Profiler = &Prof;
  RunResult R = P.run(*CR.M, MC);
  if (!R.OK) {
    ADD_FAILURE() << R.Error;
    return {};
  }
  return profileReportJson(*CR.M, Prof, &CR.Remarks);
}

} // namespace

TEST(ProfileDataTest, VersionGatesUnknownSchemas) {
  ProfileData D;
  std::string Err;

  // The emitter's current version loads.
  EXPECT_TRUE(loadProfileJson(
      "{\"version\":1,\"sites\":[],\"total_msgs\":0,\"traffic_words\":[]}",
      D, Err))
      << Err;
  EXPECT_EQ(D.Version, 1u);

  // A version-less document (pre-versioning emitter) is accepted as v1.
  EXPECT_TRUE(loadProfileJson(
      "{\"sites\":[],\"total_msgs\":0,\"traffic_words\":[]}", D, Err))
      << Err;
  EXPECT_EQ(D.Version, 1u);

  // A newer schema is refused, with the version named in the message.
  EXPECT_FALSE(loadProfileJson(
      "{\"version\":99,\"sites\":[],\"total_msgs\":0,\"traffic_words\":[]}",
      D, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;

  // Malformed input is an error, not a crash.
  EXPECT_FALSE(loadProfileJson("{\"sites\": [", D, Err));
  EXPECT_FALSE(loadProfileJson("42", D, Err));
}

TEST(ProfileDataTest, EmitterOutputLoadsWithAllFields) {
  std::string Json = profileFor(RunMode::Optimized, 4);
  ASSERT_FALSE(Json.empty());
  EXPECT_NE(Json.find("\"version\": 1"), std::string::npos);

  ProfileData D;
  std::string Err;
  ASSERT_TRUE(loadProfileJson(Json, D, Err)) << Err;
  EXPECT_EQ(D.Version, 1u);
  ASSERT_FALSE(D.Sites.empty());
  EXPECT_GT(D.TotalMsgs, 0u);
  ASSERT_EQ(D.TrafficWords.size(), 4u); // one row per node
  for (const auto &Row : D.TrafficWords)
    EXPECT_EQ(Row.size(), 4u);
  for (const ProfileSiteRow &S : D.Sites) {
    EXPECT_FALSE(S.Function.empty());
    EXPECT_FALSE(S.Op.empty());
  }
}

TEST(ProfileDataTest, SaveLoadIsByteStable) {
  std::string Json = profileFor(RunMode::Optimized, 4);
  ASSERT_FALSE(Json.empty());

  ProfileData D1;
  std::string Err;
  ASSERT_TRUE(loadProfileJson(Json, D1, Err)) << Err;
  std::string S1 = saveProfileJson(D1);

  ProfileData D2;
  ASSERT_TRUE(loadProfileJson(S1, D2, Err)) << Err;
  std::string S2 = saveProfileJson(D2);

  // Canonical form is a fixed point: once through save, bytes are stable.
  EXPECT_EQ(S1, S2);

  // And nothing was lost on the way through.
  ASSERT_EQ(D2.Sites.size(), D1.Sites.size());
  EXPECT_EQ(D2.TotalMsgs, D1.TotalMsgs);
  for (size_t I = 0; I != D1.Sites.size(); ++I) {
    EXPECT_EQ(D2.Sites[I].Msgs, D1.Sites[I].Msgs) << I;
    EXPECT_EQ(D2.Sites[I].Words, D1.Sites[I].Words) << I;
    EXPECT_EQ(D2.Sites[I].Remarks, D1.Sites[I].Remarks) << I;
  }
}

TEST(ProfileDataTest, DiffGoldenPowerOptOnVsOff) {
  // The same workload with and without the communication optimizer: the
  // per-site deltas in the diff are the savings the remarks promise
  // (hoisted reads vanish, blocked moves trade msgs for words).
  std::string NoOptJson = profileFor(RunMode::Simple, 4);
  std::string OptJson = profileFor(RunMode::Optimized, 4);
  ASSERT_FALSE(NoOptJson.empty());
  ASSERT_FALSE(OptJson.empty());

  ProfileData NoOpt, Opt;
  std::string Err;
  ASSERT_TRUE(loadProfileJson(NoOptJson, NoOpt, Err)) << Err;
  ASSERT_TRUE(loadProfileJson(OptJson, Opt, Err)) << Err;

  std::string Diff = renderProfileDiff(NoOpt, Opt, "no-opt", "opt");

  // Equal inputs must produce an all-zero-delta diff regardless of golden.
  std::string SelfDiff = renderProfileDiff(Opt, Opt, "opt", "opt");
  EXPECT_EQ(SelfDiff, renderProfileDiff(Opt, Opt, "opt", "opt"));

  if (std::getenv("EARTHCC_REGEN_GOLDEN")) {
    std::ofstream Out(goldenPath());
    ASSERT_TRUE(Out) << "cannot write " << goldenPath();
    Out << Diff;
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::string Golden = readFile(goldenPath());
  ASSERT_FALSE(Golden.empty())
      << "missing golden file " << goldenPath()
      << " (regenerate with EARTHCC_REGEN_GOLDEN=1)";
  EXPECT_EQ(Diff, Golden)
      << "profile diff diverged from golden; if the optimizer or the diff "
         "format changed intentionally, regenerate with "
         "EARTHCC_REGEN_GOLDEN=1";
}
