//===- workloads_test.cpp - The Olden benchmark suite, end to end ----------===//
//
// Part of the earthcc project.
//
// Parameterized integration tests over all five Olden benchmarks: the
// sequential, simple and optimized versions must compute identical
// checksums at every machine size; the optimization must never increase
// the number of remote operations; runs must be deterministic.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string> {
protected:
  const Workload &workload() const {
    const Workload *W = findWorkload(GetParam());
    EXPECT_NE(W, nullptr);
    return *W;
  }
};

TEST_P(WorkloadTest, SequentialBaselineRuns) {
  RunResult R = runWorkload(workload(), RunMode::Sequential, 1);
  ASSERT_TRUE(R.OK) << R.Error;
  // The sequential baseline performs no EARTH operations at all.
  EXPECT_EQ(R.Counters.total(), 0u);
  EXPECT_EQ(R.Counters.Atomic, 0u);
}

TEST_P(WorkloadTest, ChecksumsAgreeAcrossAllConfigurations) {
  RunResult Seq = runWorkload(workload(), RunMode::Sequential, 1);
  ASSERT_TRUE(Seq.OK) << Seq.Error;
  for (unsigned Nodes : {1u, 2u, 4u, 8u}) {
    RunResult S = runWorkload(workload(), RunMode::Simple, Nodes);
    RunResult O = runWorkload(workload(), RunMode::Optimized, Nodes);
    ASSERT_TRUE(S.OK) << Nodes << " nodes: " << S.Error;
    ASSERT_TRUE(O.OK) << Nodes << " nodes: " << O.Error;
    EXPECT_EQ(S.ExitValue.I, Seq.ExitValue.I) << Nodes << " nodes (simple)";
    EXPECT_EQ(O.ExitValue.I, Seq.ExitValue.I)
        << Nodes << " nodes (optimized)";
  }
}

TEST_P(WorkloadTest, OptimizationNeverAddsCommunication) {
  RunResult S = runWorkload(workload(), RunMode::Simple, 4);
  RunResult O = runWorkload(workload(), RunMode::Optimized, 4);
  ASSERT_TRUE(S.OK && O.OK) << S.Error << O.Error;
  EXPECT_LT(O.Counters.total(), S.Counters.total())
      << "optimization must reduce total remote operations";
  EXPECT_LE(O.Counters.ReadData, S.Counters.ReadData);
  EXPECT_LE(O.Counters.WriteData, S.Counters.WriteData);
  EXPECT_GT(O.Counters.BlkMov, S.Counters.BlkMov)
      << "blocking should introduce blkmovs";
}

TEST_P(WorkloadTest, DeterministicTimingAndCounts) {
  RunResult A = runWorkload(workload(), RunMode::Optimized, 4);
  RunResult B = runWorkload(workload(), RunMode::Optimized, 4);
  ASSERT_TRUE(A.OK && B.OK);
  EXPECT_EQ(A.ExitValue.I, B.ExitValue.I);
  EXPECT_DOUBLE_EQ(A.TimeNs, B.TimeNs);
  EXPECT_EQ(A.Counters.total(), B.Counters.total());
  EXPECT_EQ(A.StepsExecuted, B.StepsExecuted);
}

TEST_P(WorkloadTest, DataIsDistributedAcrossNodes) {
  RunResult R = runWorkload(workload(), RunMode::Simple, 4);
  ASSERT_TRUE(R.OK) << R.Error;
  ASSERT_EQ(R.WordsPerNode.size(), 4u);
  for (unsigned N = 0; N != 4; ++N)
    EXPECT_GT(R.WordsPerNode[N], 1u)
        << "node " << N << " received no data";
}

TEST_P(WorkloadTest, BlockThresholdSweepKeepsSemantics) {
  RunResult Seq = runWorkload(workload(), RunMode::Sequential, 1);
  ASSERT_TRUE(Seq.OK);
  for (unsigned Threshold : {1u, 2u, 4u, 8u}) {
    CommOptions Comm;
    Comm.BlockThresholdWords = Threshold;
    RunResult O = runWorkload(workload(), RunMode::Optimized, 4, Comm);
    ASSERT_TRUE(O.OK) << "threshold " << Threshold << ": " << O.Error;
    EXPECT_EQ(O.ExitValue.I, Seq.ExitValue.I) << "threshold " << Threshold;
  }
}

TEST_P(WorkloadTest, ComponentKnockoutsKeepSemantics) {
  RunResult Seq = runWorkload(workload(), RunMode::Sequential, 1);
  ASSERT_TRUE(Seq.OK);
  for (int Knockout = 0; Knockout != 4; ++Knockout) {
    CommOptions Comm;
    switch (Knockout) {
    case 0: Comm.EnableReadMotion = false; break;
    case 1: Comm.EnableBlocking = false; break;
    case 2: Comm.EnableWriteBlocking = false; break;
    case 3: Comm.Placement.OptimisticConditionalReads = false; break;
    }
    RunResult O = runWorkload(workload(), RunMode::Optimized, 4, Comm);
    ASSERT_TRUE(O.OK) << "knockout " << Knockout << ": " << O.Error;
    EXPECT_EQ(O.ExitValue.I, Seq.ExitValue.I) << "knockout " << Knockout;
  }
}

INSTANTIATE_TEST_SUITE_P(Olden, WorkloadTest,
                         ::testing::Values("power", "perimeter", "tsp",
                                           "health", "voronoi"),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadRegistryTest, FiveBenchmarksRegistered) {
  EXPECT_EQ(oldenWorkloads().size(), 5u);
  EXPECT_NE(findWorkload("power"), nullptr);
  EXPECT_EQ(findWorkload("missing"), nullptr);
}

TEST(WorkloadRegistryTest, MetadataIsFilledIn) {
  for (const Workload &W : oldenWorkloads()) {
    EXPECT_FALSE(W.Description.empty()) << W.Name;
    EXPECT_FALSE(W.PaperSize.empty()) << W.Name;
    EXPECT_FALSE(W.OurSize.empty()) << W.Name;
    EXPECT_FALSE(W.Source.empty()) << W.Name;
  }
}

} // namespace
