//===- network_test.cpp - NetworkModel topologies and conservation --------===//
//
// Part of the earthcc project.
//
// The pluggable interconnect layer (earth/NetworkModel.h): parsing and
// diagnostics, the distribution mapping, the ideal model's equivalence to
// the historical constant-latency arithmetic, and — for every routed
// topology — traffic conservation: the words each link carried must equal
// the pair matrix of injected transfers pushed through route(), and the
// profiler's network view must agree with its per-site totals.
//
//===----------------------------------------------------------------------===//

#include "earth/NetworkModel.h"
#include "support/CommProfiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace earthcc;

namespace {

CostModel testCosts() { return CostModel(); }

} // namespace

TEST(NetworkParseTest, NamesRoundTrip) {
  for (Topology T : {Topology::Ideal, Topology::Bus, Topology::Mesh2D,
                     Topology::Torus2D, Topology::FatTree}) {
    Topology Out = Topology::Ideal;
    EXPECT_TRUE(parseTopology(topologyName(T), Out)) << topologyName(T);
    EXPECT_EQ(Out, T);
    // Every name is listed in the choices string the diagnostics print.
    EXPECT_NE(std::string(topologyChoices()).find(topologyName(T)),
              std::string::npos);
  }
  for (Distribution D : {Distribution::Cyclic, Distribution::Block}) {
    Distribution Out = Distribution::Cyclic;
    EXPECT_TRUE(parseDistribution(distributionName(D), Out));
    EXPECT_EQ(Out, D);
    EXPECT_NE(std::string(distributionChoices()).find(distributionName(D)),
              std::string::npos);
  }
  Topology T = Topology::Ideal;
  EXPECT_FALSE(parseTopology("hypercube", T));
  EXPECT_FALSE(parseTopology("", T));
  Distribution D = Distribution::Cyclic;
  EXPECT_FALSE(parseDistribution("random", D));
}

TEST(PlaceIndexTest, CyclicAndBlock) {
  // Cyclic is the historical `index % nodes` mapping.
  for (uint64_t I = 0; I != 20; ++I)
    EXPECT_EQ(placeIndex(I, 4, Distribution::Cyclic, 8), I % 4);
  // Block maps runs of BlockSize consecutive indices to one node.
  EXPECT_EQ(placeIndex(0, 4, Distribution::Block, 8), 0u);
  EXPECT_EQ(placeIndex(7, 4, Distribution::Block, 8), 0u);
  EXPECT_EQ(placeIndex(8, 4, Distribution::Block, 8), 1u);
  EXPECT_EQ(placeIndex(31, 4, Distribution::Block, 8), 3u);
  EXPECT_EQ(placeIndex(32, 4, Distribution::Block, 8), 0u); // wraps
  // A zero block size must not divide by zero (clamped to 1).
  EXPECT_EQ(placeIndex(5, 4, Distribution::Block, 0), 1u);
}

TEST(IdealNetworkTest, MatchesHistoricalArithmetic) {
  CostModel C = testCosts();
  auto Net = createNetworkModel(Topology::Ideal, 4, C, 450.0, 160.0);
  EXPECT_EQ(Net->topology(), Topology::Ideal);
  EXPECT_EQ(Net->numNodes(), 4u);
  // Constant latency, load- and size-independent.
  EXPECT_DOUBLE_EQ(Net->transferDone(0, 1, 0, 1000.0), 1000.0 + C.NetDelay);
  EXPECT_DOUBLE_EQ(Net->transferDone(3, 2, 999, 1000.0), 1000.0 + C.NetDelay);
  // No links, no pair matrix: the profiler's json stays in the v1 shape.
  EXPECT_TRUE(Net->linkStats().empty());
  EXPECT_EQ(Net->transferWords(), nullptr);
  EXPECT_TRUE(Net->route(0, 1).empty());
  // transaction() reproduces the engines' historical inline formula.
  NetTransaction Tx = Net->transaction(2000.0, 0, 1, C.SUReadService, 0.0,
                                       /*FwdWords=*/0, /*BackWords=*/1);
  double Arrival = 2000.0 + C.NetDelay;
  EXPECT_DOUBLE_EQ(Tx.SuStart, Arrival); // idle SU starts at arrival
  EXPECT_DOUBLE_EQ(Tx.SuEnd, Arrival + C.SUReadService);
  EXPECT_DOUBLE_EQ(Tx.DoneAt, Tx.SuEnd + C.NetDelay);
  // The SU FIFO serializes: a second transaction arriving earlier than the
  // first one's service end queues behind it.
  NetTransaction Tx2 = Net->transaction(2000.0, 2, 1, C.SUReadService, 0.0,
                                        0, 1);
  EXPECT_DOUBLE_EQ(Tx2.SuStart, Tx.SuEnd);
}

TEST(RoutedNetworkTest, BusSerializesTransfers) {
  CostModel C = testCosts();
  auto Net = createNetworkModel(Topology::Bus, 4, C, 450.0, 100.0);
  // First transfer: departs immediately, holds the bus NetDelay + 2 words.
  double D1 = Net->transferDone(0, 1, 2, 1000.0);
  EXPECT_DOUBLE_EQ(D1, 1000.0 + C.NetDelay + 200.0);
  // Second transfer issued during the first one's occupancy queues.
  double D2 = Net->transferDone(2, 3, 2, 1000.0);
  EXPECT_DOUBLE_EQ(D2, D1 + C.NetDelay + 200.0);
  // Local delivery never touches the bus.
  EXPECT_DOUBLE_EQ(Net->transferDone(1, 1, 50, 5000.0), 5000.0);
  std::vector<NetLinkStats> Links = Net->linkStats();
  ASSERT_EQ(Links.size(), 1u);
  EXPECT_EQ(Links[0].Name, "bus");
  EXPECT_EQ(Links[0].Msgs, 2u);
  EXPECT_EQ(Links[0].Words, 4u);
  EXPECT_EQ(Links[0].MaxQueueDepth, 2u);
}

TEST(RoutedNetworkTest, GridRoutesAreMinimal) {
  CostModel C = testCosts();
  // 2x2 mesh: opposite corners are 2 hops apart.
  auto Mesh = createNetworkModel(Topology::Mesh2D, 4, C, 450.0, 160.0);
  EXPECT_EQ(Mesh->route(0, 3).size(), 2u);
  EXPECT_EQ(Mesh->route(0, 1).size(), 1u);
  EXPECT_TRUE(Mesh->route(2, 2).empty());
  // 4x4 mesh: 0 -> 15 is a 6-hop manhattan walk; the torus wraps it in 2.
  auto Mesh16 = createNetworkModel(Topology::Mesh2D, 16, C, 450.0, 160.0);
  EXPECT_EQ(Mesh16->route(0, 15).size(), 6u);
  auto Torus16 = createNetworkModel(Topology::Torus2D, 16, C, 450.0, 160.0);
  EXPECT_EQ(Torus16->route(0, 15).size(), 2u);
  EXPECT_EQ(Torus16->route(0, 3).size(), 1u); // wraparound beats 3 forward
}

TEST(RoutedNetworkTest, FatTreeRoutesClimbToLca) {
  CostModel C = testCosts();
  auto Net = createNetworkModel(Topology::FatTree, 16, C, 450.0, 160.0);
  // Siblings under one level-1 switch: one up, one down.
  EXPECT_EQ(Net->route(0, 3).size(), 2u);
  // Different level-1 switches: climb to the root and back.
  EXPECT_EQ(Net->route(0, 15).size(), 4u);
}

// The core conservation property: for every routed topology and machine
// size (including non-square and non-power-of-4 node counts), the per-link
// word totals must equal the injected pair matrix pushed through route().
TEST(RoutedNetworkTest, TrafficConservation) {
  CostModel C = testCosts();
  for (Topology Topo : {Topology::Bus, Topology::Mesh2D, Topology::Torus2D,
                        Topology::FatTree}) {
    for (unsigned N : {2u, 4u, 7u, 16u}) {
      auto Net = createNetworkModel(Topo, N, C, 450.0, 160.0);
      std::vector<uint64_t> ExpectWords(size_t(N) * N, 0);
      std::vector<uint64_t> ExpectMsgs(size_t(N) * N, 0);
      // Deterministic pseudo-random transfer pattern (LCG).
      uint64_t Seed = 12345;
      double T = 0.0;
      for (int I = 0; I != 500; ++I) {
        Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
        unsigned From = (Seed >> 33) % N;
        unsigned To = (Seed >> 13) % N;
        uint64_t Words = (Seed >> 50) % 9;
        T += 100.0;
        double Done = Net->transferDone(From, To, Words, T);
        EXPECT_GE(Done, T);
        if (From != To) {
          ExpectWords[size_t(From) * N + To] += Words;
          ExpectMsgs[size_t(From) * N + To] += 1;
        }
      }
      std::string What = std::string(topologyName(Topo)) + "/" +
                         std::to_string(N) + "n";
      // Injected pair matrix == what the model recorded.
      const std::vector<uint64_t> *PW = Net->transferWords();
      ASSERT_NE(PW, nullptr) << What;
      EXPECT_EQ(*PW, ExpectWords) << What;
      // Push the pair matrix through route() and compare per link: every
      // word injected for (From, To) crosses exactly the links of its
      // route, and nothing else.
      std::vector<NetLinkStats> Links = Net->linkStats();
      std::vector<uint64_t> LinkWords(Links.size(), 0);
      std::vector<uint64_t> LinkMsgs(Links.size(), 0);
      for (unsigned From = 0; From != N; ++From)
        for (unsigned To = 0; To != N; ++To)
          for (unsigned L : Net->route(From, To)) {
            ASSERT_LT(L, Links.size()) << What;
            LinkWords[L] += ExpectWords[size_t(From) * N + To];
            LinkMsgs[L] += ExpectMsgs[size_t(From) * N + To];
          }
      for (size_t L = 0; L != Links.size(); ++L) {
        EXPECT_EQ(Links[L].Words, LinkWords[L])
            << What << " link " << Links[L].Name;
        EXPECT_EQ(Links[L].Msgs, LinkMsgs[L])
            << What << " link " << Links[L].Name;
      }
    }
  }
}

// End-to-end conservation through a real workload: the profiler's network
// pair matrix must total exactly the remote words its per-site rows and its
// traffic matrix record, and the per-link totals must re-derive from the
// pair matrix over a fresh identical model's routes.
TEST(NetworkIntegrationTest, ProfilerConservation) {
  const Workload *W = findWorkload("power");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->smallSource());
  ASSERT_TRUE(CR.OK) << CR.Messages;

  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  MC.Topo = Topology::Torus2D;
  CommProfiler Prof;
  MC.Profiler = &Prof;
  RunResult R = P.run(*CR.M, MC);
  ASSERT_TRUE(R.OK) << R.Error;

  EXPECT_EQ(Prof.netTopology(), "torus2d");
  EXPECT_FALSE(Prof.netLinks().empty());
  EXPECT_DOUBLE_EQ(Prof.netEndTimeNs(), R.TimeNs);
  ASSERT_EQ(Prof.netPairWords().size(), size_t(16));

  // Total words injected into the network == total remote words across the
  // profiler's traffic matrix == total remote words across its site rows.
  // (recordLocal never reaches the network, and both sides count a read's
  // payload once.)
  uint64_t NetTotal = std::accumulate(Prof.netPairWords().begin(),
                                      Prof.netPairWords().end(), uint64_t(0));
  uint64_t TrafficTotal = 0;
  for (unsigned F = 0; F != 4; ++F)
    for (unsigned T = 0; T != 4; ++T)
      TrafficTotal += Prof.trafficWords(F, T);
  uint64_t SiteTotal = 0;
  for (unsigned S = 0; S != Prof.numSites(); ++S)
    SiteTotal += Prof.site(S).Words;
  EXPECT_GT(NetTotal, 0u);
  EXPECT_EQ(NetTotal, TrafficTotal);
  EXPECT_EQ(NetTotal, SiteTotal);

  // Per-link words re-derive from the pair matrix over a fresh identical
  // model (route() is a pure function of the topology).
  auto Fresh = createNetworkModel(Topology::Torus2D, 4, MC.Costs, MC.NetHopNs,
                                  MC.NetLinkWordNs);
  std::vector<uint64_t> LinkWords(Prof.netLinks().size(), 0);
  for (unsigned F = 0; F != 4; ++F)
    for (unsigned T = 0; T != 4; ++T)
      for (unsigned L : Fresh->route(F, T)) {
        ASSERT_LT(L, LinkWords.size());
        LinkWords[L] += Prof.netPairWords()[size_t(F) * 4 + T];
      }
  for (size_t L = 0; L != Prof.netLinks().size(); ++L)
    EXPECT_EQ(Prof.netLinks()[L].Words, LinkWords[L])
        << "link " << Prof.netLinks()[L].Name;

  // The json carries the network block on a routed topology...
  EXPECT_NE(Prof.json().find("\"network\""), std::string::npos);

  // ...and stays in the historical shape at ideal (same run, same profiler
  // instance reused — beginRun clears the network view).
  MachineConfig Ideal = workloadMachine(RunMode::Optimized, 4);
  Ideal.Profiler = &Prof;
  RunResult RI = P.run(*CR.M, Ideal);
  ASSERT_TRUE(RI.OK) << RI.Error;
  EXPECT_TRUE(Prof.netLinks().empty());
  EXPECT_EQ(Prof.json().find("\"network\""), std::string::npos);

  // Contention is real: the same program takes strictly longer on the bus
  // than on the ideal network.
  MachineConfig Bus = workloadMachine(RunMode::Optimized, 4);
  Bus.Topo = Topology::Bus;
  RunResult RB = P.run(*CR.M, Bus);
  ASSERT_TRUE(RB.OK) << RB.Error;
  EXPECT_GT(RB.TimeNs, RI.TimeNs);
}

// Distribution is honored end to end: block vs cyclic placement changes
// where data lands, and both run to the same checksum.
TEST(NetworkIntegrationTest, DistributionChangesPlacement) {
  const Workload *W = findWorkload("power");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->smallSource());
  ASSERT_TRUE(CR.OK) << CR.Messages;

  MachineConfig Cyc = workloadMachine(RunMode::Optimized, 4);
  MachineConfig Blk = workloadMachine(RunMode::Optimized, 4);
  Blk.Dist = Distribution::Block;
  Blk.DistBlockSize = 2;
  RunResult RC = P.run(*CR.M, Cyc);
  RunResult RB = P.run(*CR.M, Blk);
  ASSERT_TRUE(RC.OK) << RC.Error;
  ASSERT_TRUE(RB.OK) << RB.Error;
  // Same program, same answer — placement must never change semantics.
  EXPECT_EQ(RC.ExitValue.I, RB.ExitValue.I);
  // But the words land on different nodes.
  EXPECT_NE(RC.WordsPerNode, RB.WordsPerNode);
}
