//===- locality_test.cpp - Locality inference tests -------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Locality.h"
#include "driver/Pipeline.h"
#include "frontend/Simplify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

std::unique_ptr<Module> compile(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto M = compileToSimple(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

int countRemoteAccesses(const Function &F) {
  int N = 0;
  forEachStmt(F.body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S)) {
      if (A->isRemoteRead())
        ++N;
      if (A->isRemoteWrite())
        ++N;
    }
  });
  return N;
}

TEST(LocalityTest, OwnerPlacedParamBecomesLocal) {
  auto M = compile(R"(
    struct node { int v; node *next; };
    int get(node *p) { return p->v; }
    int main() {
      node *x;
      x = pmalloc(sizeof(node))@node(1 % num_nodes());
      x->v = 7;
      return get(x)@OWNER_OF(x);
    }
  )");
  Statistics Stats;
  unsigned N = inferLocality(*M, Stats);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Stats.get("locality.params_marked"), 1u);
  EXPECT_EQ(countRemoteAccesses(*M->findFunction("get")), 0);
}

TEST(LocalityTest, MixedCallSitesStayRemote) {
  auto M = compile(R"(
    struct node { int v; node *next; };
    int get(node *p) { return p->v; }
    int main() {
      node *x;
      int a; int b;
      x = pmalloc(sizeof(node))@node(1 % num_nodes());
      x->v = 7;
      a = get(x)@OWNER_OF(x);
      b = get(x); // Unplaced call: p may be remote here.
      return a + b;
    }
  )");
  Statistics Stats;
  EXPECT_EQ(inferLocality(*M, Stats), 0u);
  EXPECT_EQ(countRemoteAccesses(*M->findFunction("get")), 1);
}

TEST(LocalityTest, OwnerOfDifferentArgDoesNotCount) {
  auto M = compile(R"(
    struct node { int v; node *next; };
    int get(node *p, node *q) { return p->v; }
    int main() {
      node *x; node *y;
      x = pmalloc(sizeof(node))@node(0);
      y = pmalloc(sizeof(node))@node(1 % num_nodes());
      x->v = 1;
      y->v = 2;
      return get(x, y)@OWNER_OF(y); // q's owner, not p's.
    }
  )");
  Statistics Stats;
  EXPECT_EQ(inferLocality(*M, Stats), 0u);
}

TEST(LocalityTest, ReassignedParamStaysRemote) {
  // p = p->next breaks the contract: after the reassignment p may point
  // anywhere, so no access through p may be localized.
  auto M = compile(R"(
    struct node { int v; node *next; };
    int sum2(node *p) {
      int s;
      s = p->v;
      p = p->next;
      s = s + p->v;
      return s;
    }
    int main() {
      node *x; node *y;
      x = pmalloc(sizeof(node))@node(0);
      y = pmalloc(sizeof(node))@node(1 % num_nodes());
      x->v = 1;
      x->next = y;
      y->v = 2;
      y->next = NULL;
      return sum2(x)@OWNER_OF(x);
    }
  )");
  Statistics Stats;
  EXPECT_EQ(inferLocality(*M, Stats), 0u);
}

TEST(LocalityTest, EntryFunctionNeverLocalized) {
  auto M = compile(R"(
    struct node { int v; node *next; };
    int main() {
      node *x;
      x = pmalloc(sizeof(node))@node(0);
      x->v = 3;
      return x->v;
    }
  )");
  Statistics Stats;
  EXPECT_EQ(inferLocality(*M, Stats), 0u);
}

TEST(LocalityTest, RecursiveOwnerPlacedCallsQualify) {
  auto M = compile(R"(
    struct node { int v; node *left; node *right; };
    int treesum(node *t) {
      int a; int b;
      node *l; node *r;
      if (t == NULL) { return 0; }
      l = t->left;
      r = t->right;
      a = 0;
      b = 0;
      if (l != NULL) { a = treesum(l)@OWNER_OF(l); }
      if (r != NULL) { b = treesum(r)@OWNER_OF(r); }
      return t->v + a + b;
    }
    int main() {
      node *root;
      root = pmalloc(sizeof(node))@node(0);
      root->v = 5;
      root->left = NULL;
      root->right = NULL;
      return treesum(root)@OWNER_OF(root);
    }
  )");
  Statistics Stats;
  EXPECT_GT(inferLocality(*M, Stats), 0u);
  // t->left / t->right / t->v all become local.
  EXPECT_EQ(countRemoteAccesses(*M->findFunction("treesum")), 0);
}

//===----------------------------------------------------------------------===//
// End-to-end: the runtime validates every inferred `local` access.
//===----------------------------------------------------------------------===//

class LocalityWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LocalityWorkloadTest, InferenceIsSoundOnBenchmarks) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  RunResult Seq = runWorkload(*W, RunMode::Sequential, 1);
  ASSERT_TRUE(Seq.OK) << Seq.Error;

  for (bool Optimize : {false, true}) {
    PipelineOptions PO;
    PO.Optimize = Optimize;
    PO.InferLocality = true;
    MachineConfig MC;
    MC.NumNodes = 4;
    RunResult R = Pipeline(PO).compileAndRun(W->Source, MC);
    // The simulator traps any Local access that reaches a remote address,
    // so success here certifies the inference on this benchmark.
    ASSERT_TRUE(R.OK) << W->Name << " (optimize=" << Optimize
                      << "): " << R.Error;
    EXPECT_EQ(R.ExitValue.I, Seq.ExitValue.I) << W->Name;
  }
}

// Only benchmarks whose worker functions are owner-placed at *every* call
// site can benefit; health/perimeter call their roots unplaced from main,
// so the analysis rightly leaves them alone (checked below).
TEST(LocalityRemovalTest, PowerLosesPseudoRemoteOps) {
  const Workload *W = findWorkload("power");
  PipelineOptions Plain = PipelineOptions::simple();
  PipelineOptions WithLocality = Plain;
  WithLocality.InferLocality = true;
  MachineConfig MC;
  MC.NumNodes = 4;
  RunResult A = Pipeline(Plain).compileAndRun(W->Source, MC);
  RunResult B = Pipeline(WithLocality).compileAndRun(W->Source, MC);
  ASSERT_TRUE(A.OK && B.OK) << A.Error << B.Error;
  EXPECT_LT(B.Counters.total(), A.Counters.total())
      << "locality inference should remove pseudo-remote operations";
}

TEST(LocalityRemovalTest, UnplacedRootsAreLeftAlone) {
  // health's sim_village is owner-placed recursively, but main invokes the
  // root unplaced, so the contract fails and nothing may be localized.
  const Workload *W = findWorkload("health");
  DiagnosticsEngine Diags;
  auto M = compileToSimple(W->Source, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  Statistics Stats;
  EXPECT_EQ(inferLocality(*M, Stats), 0u);
}

INSTANTIATE_TEST_SUITE_P(Olden, LocalityWorkloadTest,
                         ::testing::Values("power", "health", "perimeter"),
                         [](const auto &Info) { return Info.param; });

} // namespace
