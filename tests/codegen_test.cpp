//===- codegen_test.cpp - Threaded-C emission tests -------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"
#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

std::unique_ptr<Module> compileOpt(const std::string &Src,
                                   bool Optimize = true) {
  CompileOptions CO;
  CO.Optimize = Optimize;
  CompileResult CR = compileEarthC(Src, CO);
  EXPECT_TRUE(CR.OK) << CR.Messages;
  return std::move(CR.M);
}

const char *DistanceSrc = R"(
  struct Point { double x; double y; };
  double distance(Point *p) {
    double d;
    d = sqrt(p->x * p->x + p->y * p->y);
    return d;
  }
)";

TEST(ThreadedCTest, SplitPhaseReadsGetSlots) {
  auto M = compileOpt(DistanceSrc);
  ThreadedCInfo Info;
  std::string Out = emitThreadedC(*M->findFunction("distance"), &Info);
  // The two pipelined reads each get a GET_SYNC_L with their own slot.
  EXPECT_NE(Out.find("GET_SYNC_L(p + 0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("GET_SYNC_L(p + 1"), std::string::npos) << Out;
  EXPECT_EQ(Info.SyncSlots, 2u);
}

TEST(ThreadedCTest, FiberSplitsAtUse) {
  auto M = compileOpt(DistanceSrc);
  ThreadedCInfo Info;
  std::string Out = emitThreadedC(*M->findFunction("distance"), &Info);
  // Issuing the reads and consuming them happens in different threads:
  // the multiply that uses comm1 must live in THREAD_1.
  EXPECT_GE(Info.Threads, 2u) << Out;
  EXPECT_NE(Out.find("THREAD_1:"), std::string::npos) << Out;
  // The sync point names the slots it waits on.
  EXPECT_NE(Out.find("resumes when"), std::string::npos) << Out;
}

TEST(ThreadedCTest, UnoptimizedNeedsMoreThreads) {
  // Without read motion, every load is consumed immediately: each of the
  // four loads forces its own fiber boundary.
  auto Simple = compileOpt(DistanceSrc, /*Optimize=*/false);
  auto Opt = compileOpt(DistanceSrc, /*Optimize=*/true);
  ThreadedCInfo SimpleInfo, OptInfo;
  emitThreadedC(*Simple->findFunction("distance"), &SimpleInfo);
  emitThreadedC(*Opt->findFunction("distance"), &OptInfo);
  // Redundancy elimination halves the split-phase traffic (4 -> 2 slots);
  // the adjacent-load pairs already overlapped, so the fiber count ties.
  EXPECT_GT(SimpleInfo.SyncSlots, OptInfo.SyncSlots);
  EXPECT_GE(SimpleInfo.Threads, OptInfo.Threads);
}

TEST(ThreadedCTest, BlkmovAndWriteback) {
  auto M = compileOpt(R"(
    struct T { double a; double b; double c; };
    double f(T *p) {
      double v1; double v2; double v3;
      v1 = p->a;
      v2 = p->b;
      v3 = p->c;
      p->a = v1 + 1.0;
      p->b = v2 + 1.0;
      p->c = v3 + 1.0;
      return v1 + v2 + v3;
    }
  )");
  std::string Out = emitThreadedC(*M->findFunction("f"));
  EXPECT_NE(Out.find("BLKMOV_SYNC(p, &bcomm1, 24, SLOT("), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BLKMOV_SYNC(&bcomm1, p, 24, WSYNC)"),
            std::string::npos)
      << Out;
}

TEST(ThreadedCTest, RemoteWritesAreFireAndForget) {
  auto M = compileOpt(R"(
    struct Point { double x; double y; };
    void set(Point *p, double v) {
      p->x = v;
    }
  )");
  std::string Out = emitThreadedC(*M->findFunction("set"));
  EXPECT_NE(Out.find("DATA_SYNC_L(v, p + 0, WSYNC)"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, ParallelSequenceSpawnsTokens) {
  auto M = compileOpt(R"(
    int work(int n) { return n * 2; }
    int main() {
      int a; int b;
      {^
        a = work(1);
        b = work(2);
      ^}
      return a + b;
    }
  )");
  std::string Out = emitThreadedC(*M->findFunction("main"));
  EXPECT_NE(Out.find("TOKEN(branch, SLOT("), std::string::npos) << Out;
  EXPECT_NE(Out.find("SYNC_JOIN(SLOT("), std::string::npos) << Out;
}

TEST(ThreadedCTest, PlacedCallsBecomeInvokes) {
  auto M = compileOpt(R"(
    struct node { int v; };
    int probe(node *p) { return p->v; }
    int main() {
      node *x;
      x = pmalloc(sizeof(node))@node(0);
      x->v = 1;
      return probe(x)@OWNER_OF(x);
    }
  )");
  std::string Out = emitThreadedC(*M->findFunction("main"));
  EXPECT_NE(Out.find("INVOKE(OWNER_OF(x), probe(x), &"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, ForallEmitsIterationTokens) {
  auto M = compileOpt(R"(
    struct node { int v; node *next; };
    int main() {
      shared int s;
      node *p; node *head;
      int r;
      head = pmalloc(sizeof(node))@node(0);
      head->v = 1;
      head->next = NULL;
      writeto(&s, 0);
      forall (p = head; p != NULL; p = p->next) {
        addto(&s, 1);
      }
      r = valueof(&s);
      return r;
    }
  )");
  std::string Out = emitThreadedC(*M->findFunction("main"));
  EXPECT_NE(Out.find("TOKEN(iteration, SLOT("), std::string::npos) << Out;
  EXPECT_NE(Out.find("ADDTO_SYNC(&s, 1, WSYNC)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("VALUEOF_SYNC(&s, &"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, WholeModuleEmission) {
  auto M = compileOpt(DistanceSrc);
  std::string Out = emitThreadedC(*M);
  EXPECT_NE(Out.find("THREADED distance("), std::string::npos);
  EXPECT_NE(Out.find("END_THREADED()"), std::string::npos);
}

} // namespace
