//===- codegen_test.cpp - Threaded-C emission tests -------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"
#include "driver/Pipeline.h"
#include "simple/Printer.h"
#include "workloads/Workloads.h"

#include <fstream>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

using namespace earthcc;

//===----------------------------------------------------------------------===//
// Frozen tree-walking reference emitter.
//
// This is the pre-refactor Threaded-C emitter, kept verbatim as the
// differential oracle: the production emitter consumes the flat bytecode
// stream, and this copy re-derives the same program from the statement tree.
// Their outputs (and thread/sync-slot counts) must match bit-for-bit on
// every workload — that equivalence is what licenses the bytecode as the
// single source of truth for slot numbering. Do not modernize this copy;
// behavior changes belong in src/codegen and must show up here as a diff.
//===----------------------------------------------------------------------===//

namespace treeref {

class Emitter {
public:
  explicit Emitter(const Function &F) : F(F) {}

  std::string run(ThreadedCInfo *Info) {
    OS << "THREADED " << F.name() << "(";
    for (size_t I = 0; I != F.params().size(); ++I) {
      const Var *P = F.params()[I];
      OS << (I ? ", " : "") << P->type()->str() << " " << P->name();
    }
    OS << ") {\n";
    for (const auto &V : F.vars())
      if (V->kind() != VarKind::Param)
        OS << "  " << V->type()->str() << " " << V->name() << ";\n";
    OS << "  SLOT SYNC_SLOTS[];\n";
    OS << "\n  THREAD_0:\n";
    emitSeq(F.body(), 2);
    OS << "  END_THREADED();\n}\n";
    if (Info) {
      Info->Threads = ThreadCount + 1;
      Info->SyncSlots = SlotCount;
    }
    return OS.str();
  }

private:
  void indent(unsigned N) { OS << std::string(N, ' '); }

  unsigned newSlot() { return SlotCount++; }

  void splitThread(unsigned Ind, const std::vector<const Var *> &SyncedVars) {
    ++ThreadCount;
    indent(Ind);
    OS << "END_THREAD(); // fiber boundary\n";
    indent(Ind - 2 < 2 ? 2 : Ind - 2);
    OS << "THREAD_" << ThreadCount << ": // resumes when";
    for (const Var *V : SyncedVars)
      OS << " SLOT(" << Pending[V] << ")->" << V->name();
    OS << " arrive\n";
    for (const Var *V : SyncedVars)
      Pending.erase(V);
  }

  std::vector<const Var *> pendingUses(const Stmt &S) {
    std::vector<const Var *> Used;
    auto use = [&](const Operand &O) {
      if (O.isVar() && Pending.count(O.getVar()))
        Used.push_back(O.getVar());
    };
    auto useVar = [&](const Var *V) {
      if (V && Pending.count(V))
        Used.push_back(V);
    };
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      switch (A.R->kind()) {
      case RValueKind::Opnd:
        use(static_cast<const OpndRV &>(*A.R).Val);
        break;
      case RValueKind::Unary:
        use(static_cast<const UnaryRV &>(*A.R).Val);
        break;
      case RValueKind::Binary: {
        const auto &B = static_cast<const BinaryRV &>(*A.R);
        use(B.A);
        use(B.B);
        break;
      }
      case RValueKind::Load:
        useVar(static_cast<const LoadRV &>(*A.R).Base);
        break;
      case RValueKind::FieldRead:
        useVar(static_cast<const FieldReadRV &>(*A.R).StructVar);
        break;
      case RValueKind::AddrOfField:
        useVar(static_cast<const AddrOfFieldRV &>(*A.R).Base);
        break;
      }
      if (A.L.Kind == LValueKind::Store)
        useVar(A.L.V);
      if (A.L.Kind == LValueKind::FieldWrite)
        useVar(A.L.V);
      return Used;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      for (const Operand &O : C.Args)
        use(O);
      use(C.PlacementArg);
      return Used;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      if (R.Val)
        use(*R.Val);
      return Used;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      useVar(B.Ptr);
      if (B.Dir == BlkMovDir::WriteFromLocal)
        useVar(B.LocalStruct);
      return Used;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      use(A.Val);
      return Used;
    }
    case StmtKind::If:
      collectCondUses(*castStmt<IfStmt>(S).Cond, Used);
      return Used;
    case StmtKind::While:
      collectCondUses(*castStmt<WhileStmt>(S).Cond, Used);
      return Used;
    case StmtKind::Switch:
      use(castStmt<SwitchStmt>(S).Val);
      return Used;
    case StmtKind::Forall:
      collectCondUses(*castStmt<ForallStmt>(S).Cond, Used);
      return Used;
    case StmtKind::Seq:
      return Used;
    }
    return Used;
  }

  void collectCondUses(const RValue &R, std::vector<const Var *> &Used) {
    auto use = [&](const Operand &O) {
      if (O.isVar() && Pending.count(O.getVar()))
        Used.push_back(O.getVar());
    };
    switch (R.kind()) {
    case RValueKind::Opnd:
      use(static_cast<const OpndRV &>(R).Val);
      return;
    case RValueKind::Unary:
      use(static_cast<const UnaryRV &>(R).Val);
      return;
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      use(B.A);
      use(B.B);
      return;
    }
    default:
      return;
    }
  }

  void emitSeq(const SeqStmt &Seq, unsigned Ind) {
    if (Seq.Parallel) {
      indent(Ind);
      OS << "// parallel sequence: " << Seq.size()
         << " tokens + join slot\n";
      unsigned Join = newSlot();
      for (const auto &Branch : Seq.Stmts) {
        indent(Ind);
        OS << "TOKEN(branch, SLOT(" << Join << ")) {\n";
        emitSeq(castStmt<SeqStmt>(*Branch), Ind + 2);
        indent(Ind);
        OS << "}\n";
      }
      indent(Ind);
      OS << "SYNC_JOIN(SLOT(" << Join << "), " << Seq.size() << ");\n";
      splitThread(Ind, {});
      return;
    }
    for (const auto &Child : Seq.Stmts)
      emitStmt(*Child, Ind);
  }

  void emitStmt(const Stmt &S, unsigned Ind) {
    std::vector<const Var *> Synced = pendingUses(S);
    if (!Synced.empty())
      splitThread(Ind, Synced);

    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      if (A.isRemoteRead()) {
        const auto &L = static_cast<const LoadRV &>(*A.R);
        unsigned Slot = newSlot();
        indent(Ind);
        OS << "GET_SYNC_L(" << L.Base->name() << " + " << L.OffsetWords
           << ", &" << A.L.V->name() << ", SLOT(" << Slot << ")); // "
           << L.Base->name() << "->"
           << (L.FieldName.empty() ? "*" : L.FieldName) << "\n";
        Pending[A.L.V] = Slot;
        return;
      }
      if (A.isRemoteWrite()) {
        indent(Ind);
        OS << "DATA_SYNC_L(" << printRValue(*A.R) << ", " << A.L.V->name()
           << " + " << A.L.OffsetWords << ", WSYNC); // " << A.L.V->name()
           << "->" << A.L.FieldName << "\n";
        return;
      }
      indent(Ind);
      OS << printLValue(A.L) << " = " << printRValue(*A.R) << ";\n";
      return;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      unsigned Slot = newSlot();
      indent(Ind);
      if (B.Dir == BlkMovDir::ReadToLocal) {
        OS << "BLKMOV_SYNC(" << B.Ptr->name() << ", &"
           << B.LocalStruct->name() << ", " << B.Words * 8 << ", SLOT("
           << Slot << "));\n";
        Pending[B.LocalStruct] = Slot;
      } else {
        OS << "BLKMOV_SYNC(&" << B.LocalStruct->name() << ", "
           << B.Ptr->name() << ", " << B.Words * 8 << ", WSYNC);\n";
      }
      return;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      indent(Ind);
      if (C.Placement != CallPlacement::Default) {
        unsigned Slot = newSlot();
        OS << "INVOKE(";
        switch (C.Placement) {
        case CallPlacement::OwnerOf:
          OS << "OWNER_OF(" << C.PlacementArg.str() << ")";
          break;
        case CallPlacement::AtNode:
          OS << "NODE(" << C.PlacementArg.str() << ")";
          break;
        default:
          OS << "HOME";
          break;
        }
        OS << ", " << C.CalleeName << "(";
        for (size_t I = 0; I != C.Args.size(); ++I)
          OS << (I ? ", " : "") << C.Args[I].str();
        OS << ")";
        if (C.Result) {
          OS << ", &" << C.Result->name() << ", SLOT(" << Slot << ")";
          Pending[C.Result] = Slot;
        }
        OS << ");\n";
        return;
      }
      if (C.Result)
        OS << C.Result->name() << " = ";
      OS << C.CalleeName << "(";
      for (size_t I = 0; I != C.Args.size(); ++I)
        OS << (I ? ", " : "") << C.Args[I].str();
      OS << ");\n";
      return;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      indent(Ind);
      OS << "RETURN(";
      if (R.Val)
        OS << R.Val->str();
      OS << "); // settles WSYNC before signalling the caller\n";
      return;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      indent(Ind);
      switch (A.Op) {
      case AtomicOp::WriteTo:
        OS << "WRITETO_SYNC(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ", WSYNC);\n";
        return;
      case AtomicOp::AddTo:
        OS << "ADDTO_SYNC(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ", WSYNC);\n";
        return;
      case AtomicOp::ValueOf: {
        unsigned Slot = newSlot();
        OS << "VALUEOF_SYNC(&" << A.SharedVar->name() << ", &"
           << A.Result->name() << ", SLOT(" << Slot << "));\n";
        Pending[A.Result] = Slot;
        return;
      }
      }
      return;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      indent(Ind);
      OS << "if (" << printRValue(*If.Cond) << ") {\n";
      emitSeq(*If.Then, Ind + 2);
      if (!If.Else->empty()) {
        indent(Ind);
        OS << "} else {\n";
        emitSeq(*If.Else, Ind + 2);
      }
      indent(Ind);
      OS << "}\n";
      return;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      indent(Ind);
      OS << "switch (" << Sw.Val.str() << ") {\n";
      for (const auto &C : Sw.Cases) {
        indent(Ind);
        OS << "case " << C.Value << ":\n";
        emitSeq(*C.Body, Ind + 2);
        indent(Ind + 2);
        OS << "break;\n";
      }
      indent(Ind);
      OS << "default:\n";
      emitSeq(*Sw.Default, Ind + 2);
      indent(Ind);
      OS << "}\n";
      return;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      indent(Ind);
      if (W.IsDoWhile) {
        OS << "do {\n";
        emitSeq(*W.Body, Ind + 2);
        indent(Ind);
        OS << "} while (" << printRValue(*W.Cond) << ");\n";
      } else {
        OS << "while (" << printRValue(*W.Cond) << ") {\n";
        emitSeq(*W.Body, Ind + 2);
        indent(Ind);
        OS << "}\n";
      }
      return;
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(S);
      unsigned Join = newSlot();
      indent(Ind);
      OS << "// forall driver: spawns one token per iteration\n";
      emitSeq(*Fa.Init, Ind);
      indent(Ind);
      OS << "while (" << printRValue(*Fa.Cond) << ") {\n";
      indent(Ind + 2);
      OS << "TOKEN(iteration, SLOT(" << Join << ")) {\n";
      emitSeq(*Fa.Body, Ind + 4);
      indent(Ind + 2);
      OS << "}\n";
      emitSeq(*Fa.Step, Ind + 2);
      indent(Ind);
      OS << "}\n";
      indent(Ind);
      OS << "SYNC_JOIN(SLOT(" << Join << "), ALL_ITERATIONS);\n";
      splitThread(Ind, {});
      return;
    }
    case StmtKind::Seq:
      emitSeq(castStmt<SeqStmt>(S), Ind);
      return;
    }
  }

  const Function &F;
  std::ostringstream OS;
  std::map<const Var *, unsigned> Pending;
  unsigned SlotCount = 0;
  unsigned ThreadCount = 0;
};

std::string emit(const Function &F, ThreadedCInfo *Info = nullptr) {
  return Emitter(F).run(Info);
}

} // namespace treeref

namespace {

std::unique_ptr<Module> compileOpt(const std::string &Src,
                                   bool Optimize = true) {
  Pipeline P(Optimize ? PipelineOptions::optimized()
                      : PipelineOptions::simple());
  CompileResult CR = P.compile(Src);
  EXPECT_TRUE(CR.OK) << CR.Messages;
  return std::move(CR.M);
}

const char *DistanceSrc = R"(
  struct Point { double x; double y; };
  double distance(Point *p) {
    double d;
    d = sqrt(p->x * p->x + p->y * p->y);
    return d;
  }
)";

TEST(ThreadedCTest, SplitPhaseReadsGetSlots) {
  auto M = compileOpt(DistanceSrc);
  ThreadedCInfo Info;
  std::string Out = emitThreadedC(*M, *M->findFunction("distance"), &Info);
  // The two pipelined reads each get a GET_SYNC_L with their own slot.
  EXPECT_NE(Out.find("GET_SYNC_L(p + 0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("GET_SYNC_L(p + 1"), std::string::npos) << Out;
  EXPECT_EQ(Info.SyncSlots, 2u);
}

TEST(ThreadedCTest, FiberSplitsAtUse) {
  auto M = compileOpt(DistanceSrc);
  ThreadedCInfo Info;
  std::string Out = emitThreadedC(*M, *M->findFunction("distance"), &Info);
  // Issuing the reads and consuming them happens in different threads:
  // the multiply that uses comm1 must live in THREAD_1.
  EXPECT_GE(Info.Threads, 2u) << Out;
  EXPECT_NE(Out.find("THREAD_1:"), std::string::npos) << Out;
  // The sync point names the slots it waits on.
  EXPECT_NE(Out.find("resumes when"), std::string::npos) << Out;
}

TEST(ThreadedCTest, UnoptimizedNeedsMoreThreads) {
  // Without read motion, every load is consumed immediately: each of the
  // four loads forces its own fiber boundary.
  auto Simple = compileOpt(DistanceSrc, /*Optimize=*/false);
  auto Opt = compileOpt(DistanceSrc, /*Optimize=*/true);
  ThreadedCInfo SimpleInfo, OptInfo;
  emitThreadedC(*Simple, *Simple->findFunction("distance"), &SimpleInfo);
  emitThreadedC(*Opt, *Opt->findFunction("distance"), &OptInfo);
  // Redundancy elimination halves the split-phase traffic (4 -> 2 slots);
  // the adjacent-load pairs already overlapped, so the fiber count ties.
  EXPECT_GT(SimpleInfo.SyncSlots, OptInfo.SyncSlots);
  EXPECT_GE(SimpleInfo.Threads, OptInfo.Threads);
}

TEST(ThreadedCTest, BlkmovAndWriteback) {
  auto M = compileOpt(R"(
    struct T { double a; double b; double c; };
    double f(T *p) {
      double v1; double v2; double v3;
      v1 = p->a;
      v2 = p->b;
      v3 = p->c;
      p->a = v1 + 1.0;
      p->b = v2 + 1.0;
      p->c = v3 + 1.0;
      return v1 + v2 + v3;
    }
  )");
  std::string Out = emitThreadedC(*M, *M->findFunction("f"));
  EXPECT_NE(Out.find("BLKMOV_SYNC(p, &bcomm1, 24, SLOT("), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BLKMOV_SYNC(&bcomm1, p, 24, WSYNC)"),
            std::string::npos)
      << Out;
}

TEST(ThreadedCTest, RemoteWritesAreFireAndForget) {
  auto M = compileOpt(R"(
    struct Point { double x; double y; };
    void set(Point *p, double v) {
      p->x = v;
    }
  )");
  std::string Out = emitThreadedC(*M, *M->findFunction("set"));
  EXPECT_NE(Out.find("DATA_SYNC_L(v, p + 0, WSYNC)"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, ParallelSequenceSpawnsTokens) {
  auto M = compileOpt(R"(
    int work(int n) { return n * 2; }
    int main() {
      int a; int b;
      {^
        a = work(1);
        b = work(2);
      ^}
      return a + b;
    }
  )");
  std::string Out = emitThreadedC(*M, *M->findFunction("main"));
  EXPECT_NE(Out.find("TOKEN(branch, SLOT("), std::string::npos) << Out;
  EXPECT_NE(Out.find("SYNC_JOIN(SLOT("), std::string::npos) << Out;
}

TEST(ThreadedCTest, PlacedCallsBecomeInvokes) {
  auto M = compileOpt(R"(
    struct node { int v; };
    int probe(node *p) { return p->v; }
    int main() {
      node *x;
      x = pmalloc(sizeof(node))@node(0);
      x->v = 1;
      return probe(x)@OWNER_OF(x);
    }
  )");
  std::string Out = emitThreadedC(*M, *M->findFunction("main"));
  EXPECT_NE(Out.find("INVOKE(OWNER_OF(x), probe(x), &"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, ForallEmitsIterationTokens) {
  auto M = compileOpt(R"(
    struct node { int v; node *next; };
    int main() {
      shared int s;
      node *p; node *head;
      int r;
      head = pmalloc(sizeof(node))@node(0);
      head->v = 1;
      head->next = NULL;
      writeto(&s, 0);
      forall (p = head; p != NULL; p = p->next) {
        addto(&s, 1);
      }
      r = valueof(&s);
      return r;
    }
  )");
  std::string Out = emitThreadedC(*M, *M->findFunction("main"));
  EXPECT_NE(Out.find("TOKEN(iteration, SLOT("), std::string::npos) << Out;
  EXPECT_NE(Out.find("ADDTO_SYNC(&s, 1, WSYNC)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("VALUEOF_SYNC(&s, &"), std::string::npos)
      << Out;
}

TEST(ThreadedCTest, WholeModuleEmission) {
  auto M = compileOpt(DistanceSrc);
  std::string Out = emitThreadedC(*M);
  EXPECT_NE(Out.find("THREADED distance("), std::string::npos);
  EXPECT_NE(Out.find("END_THREADED()"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Differential and invariance suites: the bytecode-driven emitter against
// the frozen tree-walking reference, the checked-in goldens, and the
// lower-threads / fuse configuration axes.
//===----------------------------------------------------------------------===//

/// Every workload x {Simple, Optimized}: per-function text and
/// thread/sync-slot counts must match the tree reference bit-for-bit.
TEST(ThreadedCDifferentialTest, MatchesTreeEmitterOnAllWorkloads) {
  for (const Workload &W : oldenWorkloads()) {
    for (RunMode Mode : {RunMode::Simple, RunMode::Optimized}) {
      CompileResult CR = compileWorkload(W, Mode);
      ASSERT_TRUE(CR.OK) << W.Name << ": " << CR.Messages;
      const Module &M = *CR.M;
      for (const auto &F : M.functions()) {
        ThreadedCInfo TreeInfo, BcInfo;
        std::string Tree = treeref::emit(*F, &TreeInfo);
        std::string Bc = emitThreadedC(M, *F, &BcInfo);
        EXPECT_EQ(Tree, Bc)
            << W.Name << " " << F->name()
            << (Mode == RunMode::Optimized ? " (optimized)" : " (simple)");
        EXPECT_EQ(TreeInfo.Threads, BcInfo.Threads)
            << W.Name << " " << F->name();
        EXPECT_EQ(TreeInfo.SyncSlots, BcInfo.SyncSlots)
            << W.Name << " " << F->name();
      }
    }
  }
}

/// The emitter reads only the plain (unfused) stream, so clearing FusedCode
/// must not change one byte of output, and neither may the lowering thread
/// count (whose output is bit-identical by construction). Together with the
/// golden test below this pins the acceptance matrix:
/// --lower-threads {1,4} x --fuse {on,off}.
TEST(ThreadedCDifferentialTest, InvariantAcrossLowerThreadsAndFuse) {
  for (const Workload &W : oldenWorkloads()) {
    CompileResult CR = compileWorkload(W, RunMode::Optimized);
    ASSERT_TRUE(CR.OK) << W.Name << ": " << CR.Messages;
    auto BM1 = lowerModule(*CR.M, /*Threads=*/1);
    auto BM4 = lowerModule(*CR.M, /*Threads=*/4);
    EXPECT_EQ(emitThreadedC(*BM1), emitThreadedC(*BM4)) << W.Name;
    for (const auto &BF : BM1->Funcs) {
      BytecodeFunction Unfused = *BF; // Same plain stream, no fused stream.
      Unfused.FusedCode.clear();
      ThreadedCInfo Fused, Plain;
      EXPECT_EQ(emitThreadedC(*BM1, *BF, &Fused),
                emitThreadedC(*BM1, Unfused, &Plain))
          << W.Name << " " << BF->Fn->name();
      EXPECT_EQ(Fused.Threads, Plain.Threads);
      EXPECT_EQ(Fused.SyncSlots, Plain.SyncSlots);
    }
  }
}

std::string readGolden(const std::string &Name) {
  std::string Path = std::string(EARTHCC_GOLDEN_DIR) + "/threadedc/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with threadedc_dump)";
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Freshly emitted Threaded-C for every workload matches the checked-in
/// goldens (both modes). CI re-runs the same comparison via threadedc_dump.
TEST(ThreadedCDifferentialTest, MatchesCheckedInGoldens) {
  for (const Workload &W : oldenWorkloads()) {
    for (RunMode Mode : {RunMode::Simple, RunMode::Optimized}) {
      CompileResult CR = compileWorkload(W, Mode);
      ASSERT_TRUE(CR.OK) << W.Name << ": " << CR.Messages;
      const char *Suffix =
          Mode == RunMode::Optimized ? "_opt.tc" : "_simple.tc";
      EXPECT_EQ(readGolden(W.Name + Suffix), emitThreadedC(*CR.M))
          << W.Name << Suffix;
    }
  }
}

} // namespace
