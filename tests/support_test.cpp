//===- support_test.cpp - Unit tests for the support library --------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace earthcc;

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocTest, Format) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticsEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "just a warning");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 5), "boom");
  Diags.note(SourceLoc(2, 6), "note");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 3u);
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticsEngine Diags;
  Diags.error(SourceLoc(7, 3), "unexpected token");
  EXPECT_EQ(Diags.all()[0].str(), "7:3: error: unexpected token");
}

TEST(StatisticsTest, AccumulatesAndRenders) {
  Statistics Stats;
  Stats.add("comm.reads", 2);
  Stats.add("comm.reads");
  Stats.add("comm.writes", 5);
  EXPECT_EQ(Stats.get("comm.reads"), 3u);
  EXPECT_EQ(Stats.get("comm.writes"), 5u);
  EXPECT_EQ(Stats.get("missing"), 0u);
  EXPECT_EQ(Stats.str(), "comm.reads = 3\ncomm.writes = 5\n");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter T({"a", "b", "c"});
  T.addRow({"1"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 1), "2.0");
}
