//===- support_test.cpp - Unit tests for the support library --------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/CommProfiler.h"
#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace earthcc;

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocTest, Format) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticsEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "just a warning");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 5), "boom");
  Diags.note(SourceLoc(2, 6), "note");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 3u);
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticsEngine Diags;
  Diags.error(SourceLoc(7, 3), "unexpected token");
  EXPECT_EQ(Diags.all()[0].str(), "7:3: error: unexpected token");
}

TEST(StatisticsTest, AccumulatesAndRenders) {
  Statistics Stats;
  Stats.add("comm.reads", 2);
  Stats.add("comm.reads");
  Stats.add("comm.writes", 5);
  EXPECT_EQ(Stats.get("comm.reads"), 3u);
  EXPECT_EQ(Stats.get("comm.writes"), 5u);
  EXPECT_EQ(Stats.get("missing"), 0u);
  EXPECT_EQ(Stats.str(), "comm.reads = 3\ncomm.writes = 5\n");
}

TEST(StatisticsTest, MergeAccumulates) {
  Statistics A;
  A.add("comm.reads", 3);
  A.add("comm.writes", 1);
  Statistics B;
  B.add("comm.reads", 2);
  B.add("comm.blkmov", 7);
  A.merge(B);
  EXPECT_EQ(A.get("comm.reads"), 5u);
  EXPECT_EQ(A.get("comm.writes"), 1u);
  EXPECT_EQ(A.get("comm.blkmov"), 7u);
  // The source is unchanged.
  EXPECT_EQ(B.get("comm.reads"), 2u);
  EXPECT_EQ(B.get("comm.writes"), 0u);
}

TEST(StatisticsTest, MergeWithEmpty) {
  Statistics A;
  A.add("x", 4);
  Statistics Empty;
  A.merge(Empty);
  EXPECT_EQ(A.get("x"), 4u);
  Empty.merge(A);
  EXPECT_EQ(Empty.get("x"), 4u);
  EXPECT_FALSE(Empty.empty());
}

TEST(StatisticsTest, JsonSerialization) {
  Statistics Stats;
  EXPECT_EQ(Stats.json(), "{}");
  Stats.add("b.second", 2);
  Stats.add("a.first", 1);
  // Keys come out sorted (map order), values unquoted.
  EXPECT_EQ(Stats.json(), "{\"a.first\": 1, \"b.second\": 2}");
}

TEST(TraceTest, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string("ctrl\x01", 5)), "ctrl\\u0001");
}

TEST(TraceTest, CounterSinkAggregates) {
  CounterTraceSink Sink;
  TraceEvent Read;
  Read.Name = "read-data";
  Read.Ph = 'X';
  Read.DurNs = 1500.0;
  Sink.event(Read);
  Read.DurNs = 500.0;
  Sink.event(Read);
  TraceEvent Sync;
  Sync.Name = "sync-signal";
  Sync.Ph = 'i';
  Sink.event(Sync);
  // Metadata and counter-track events do not pollute the aggregate.
  TraceEvent Meta;
  Meta.Name = "process_name";
  Meta.Ph = 'M';
  Sink.event(Meta);
  TraceEvent Clock;
  Clock.Name = "eu-clock";
  Clock.Ph = 'C';
  Sink.event(Clock);

  const Statistics &S = Sink.stats();
  EXPECT_EQ(S.get("trace.count.read-data"), 2u);
  EXPECT_EQ(S.get("trace.ns.read-data"), 2000u);
  EXPECT_EQ(S.get("trace.count.sync-signal"), 1u);
  EXPECT_EQ(S.get("trace.ns.sync-signal"), 0u);
  EXPECT_EQ(S.get("trace.count.process_name"), 0u);
  EXPECT_EQ(S.get("trace.count.eu-clock"), 0u);
}

TEST(TraceTest, ChromeSinkSerializesEvents) {
  ChromeTraceSink Sink;
  TraceEvent E;
  E.Name = "read-data";
  E.Cat = "comm";
  E.Ph = 'X';
  E.TsNs = 1500.0;
  E.DurNs = 250.0;
  E.Pid = 1;
  E.Tid = TraceTidComm;
  E.Args.push_back({"to", 2u});
  E.Args.push_back({"addr", "n1+0x10"});
  Sink.event(E);

  std::string J = Sink.json();
  // Timestamps are microseconds in Chrome's format: 1500 ns = 1.5 us.
  EXPECT_NE(J.find("\"name\":\"read-data\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(J.find("\"dur\":0.250"), std::string::npos);
  EXPECT_NE(J.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(J.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(J.find("\"to\":2"), std::string::npos);
  EXPECT_NE(J.find("\"addr\":\"n1+0x10\""), std::string::npos);
  EXPECT_EQ(J.front(), '[');
  EXPECT_EQ(Sink.events().size(), 1u);
}

TEST(TraceTest, ChromeSinkInstantHasNoDur) {
  ChromeTraceSink Sink;
  TraceEvent E;
  E.Name = "sync-signal";
  E.Ph = 'i';
  E.TsNs = 100.0;
  Sink.event(E);
  std::string J = Sink.json();
  EXPECT_EQ(J.find("\"dur\""), std::string::npos);
  // Instants carry thread scope so Chrome draws them as ticks.
  EXPECT_NE(J.find("\"s\":\"t\""), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter T({"a", "b", "c"});
  T.addRow({"1"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 1), "2.0");
}

//===----------------------------------------------------------------------===//
// CommProfiler: histogram bucketing, percentile semantics, accumulation.
//===----------------------------------------------------------------------===//

TEST(CommProfilerTest, BucketBoundsRoundTrip) {
  // Below 16 ns every latency has its own exact bucket.
  for (uint64_t Ns = 0; Ns != 16; ++Ns) {
    unsigned B = SiteProfile::bucketOf(Ns);
    EXPECT_EQ(SiteProfile::bucketLowNs(B), Ns) << Ns;
  }
  // Above: the bucket's lower bound never exceeds the value, and the next
  // bucket's lower bound is strictly greater (monotone partition).
  for (uint64_t Ns : {16ull, 17ull, 100ull, 1000ull, 65535ull, 65536ull,
                      1000000ull, (1ull << 40), ~0ull}) {
    unsigned B = SiteProfile::bucketOf(Ns);
    ASSERT_LT(B, SiteProfile::NumBuckets) << Ns;
    EXPECT_LE(SiteProfile::bucketLowNs(B), Ns) << Ns;
    if (B + 1 < SiteProfile::NumBuckets)
      EXPECT_GT(SiteProfile::bucketLowNs(B + 1), SiteProfile::bucketLowNs(B))
          << Ns;
  }
  // ~6% worst-case resolution: 16 sub-buckets per octave.
  unsigned B1 = SiteProfile::bucketOf(1024);
  unsigned B2 = SiteProfile::bucketOf(1024 + 1024 / 16);
  EXPECT_NE(B1, B2);
}

TEST(CommProfilerTest, PercentileIsBucketLowerBound) {
  SiteProfile S;
  // Four exact (<16 ns) latencies: 2, 4, 6, 8.
  for (uint64_t Ns : {2ull, 4ull, 6ull, 8ull}) {
    ++S.Msgs; // mirror the engines, which bump Msgs alongside each sample
    S.recordLatency(Ns);
  }
  EXPECT_EQ(S.LatMinNs, 2u);
  EXPECT_EQ(S.LatMaxNs, 8u);
  EXPECT_EQ(S.latencyPercentileNs(25), 2u);  // 1st of 4
  EXPECT_EQ(S.latencyPercentileNs(50), 4u);  // 2nd of 4
  EXPECT_EQ(S.latencyPercentileNs(75), 6u);  // 3rd of 4
  EXPECT_EQ(S.latencyPercentileNs(100), 8u); // 4th of 4
  // P just above a rank boundary advances to the next element.
  EXPECT_EQ(S.latencyPercentileNs(51), 6u);
}

TEST(CommProfilerTest, RecordAccumulatesSitesAndTraffic) {
  CommProfiler Prof;
  Prof.beginRun(/*NumSites=*/3, /*NumNodes=*/2);
  Prof.record(0, CommOpKind::Read, /*From=*/0, /*To=*/1, /*Words=*/1,
              /*IssueStartNs=*/100.0, /*DoneNs=*/150.0);
  Prof.record(0, CommOpKind::Read, 0, 1, 1, 200.0, 280.0);
  Prof.record(2, CommOpKind::BlkMov, 1, 0, 8, 300.0, 400.0);
  Prof.recordLocal(1, CommOpKind::Write, 0, 1);

  EXPECT_EQ(Prof.site(0).Msgs, 2u);
  EXPECT_EQ(Prof.site(0).Words, 2u);
  EXPECT_EQ(Prof.site(0).LatMinNs, 50u);
  EXPECT_EQ(Prof.site(0).LatMaxNs, 80u);
  EXPECT_DOUBLE_EQ(Prof.site(0).latencyMeanNs(), 65.0);
  EXPECT_EQ(Prof.site(1).Msgs, 0u);
  EXPECT_EQ(Prof.site(1).LocalHits, 1u);
  EXPECT_EQ(Prof.site(2).Words, 8u);
  EXPECT_EQ(Prof.siteOp(2), CommOpKind::BlkMov);
  EXPECT_EQ(Prof.totalMsgs(), 3u);
  EXPECT_EQ(Prof.trafficMsgs(0, 1), 2u);
  EXPECT_EQ(Prof.trafficWords(0, 1), 2u);
  EXPECT_EQ(Prof.trafficWords(1, 0), 8u);
  EXPECT_EQ(Prof.trafficWords(0, 0), 0u);
}

TEST(CommProfilerTest, JsonIsPureFunctionOfRecordedData) {
  CommProfiler A, B;
  for (CommProfiler *P : {&A, &B}) {
    P->beginRun(2, 2);
    P->record(0, CommOpKind::Read, 0, 1, 1, 10.0, 42.0);
    P->recordLocal(1, CommOpKind::Atomic, 1, 0);
  }
  EXPECT_EQ(A.json(), B.json());
  EXPECT_NE(A.json().find("\"sites\""), std::string::npos);
  // beginRun resets: a fresh run must not inherit prior counts.
  A.beginRun(2, 2);
  EXPECT_EQ(A.totalMsgs(), 0u);
  EXPECT_EQ(A.site(0).Msgs, 0u);
}

TEST(CommProfilerTest, PercentileAtPowerOfTwoBucketBoundaries) {
  SiteProfile S;
  // Powers of two start an octave, so each is exactly a bucket lower bound:
  // the percentile that selects a 2^k latency must come back as 2^k itself,
  // not the bound of the preceding sub-bucket.
  const uint64_t Lats[] = {16, 32, 1024, 1ull << 20};
  for (uint64_t Ns : Lats) {
    ASSERT_EQ(SiteProfile::bucketLowNs(SiteProfile::bucketOf(Ns)), Ns);
    ++S.Msgs; // mirror the engines, which bump Msgs alongside each sample
    S.recordLatency(Ns);
  }
  EXPECT_EQ(S.latencyPercentileNs(25), 16u);
  EXPECT_EQ(S.latencyPercentileNs(50), 32u);
  EXPECT_EQ(S.latencyPercentileNs(75), 1024u);
  EXPECT_EQ(S.latencyPercentileNs(100), 1ull << 20);
  // Fractional percentiles round their rank up, never down to rank 0.
  EXPECT_EQ(S.latencyPercentileNs(0), 16u);
  EXPECT_EQ(S.latencyPercentileNs(25.1), 32u);
}

TEST(CommProfilerTest, PercentileSingleMessageHistogram) {
  SiteProfile S;
  ++S.Msgs;
  S.recordLatency(777);
  // With one sample every percentile selects it (rank clamps to
  // [1, LatCount]), and the answer is its bucket's lower bound.
  const uint64_t Bound = SiteProfile::bucketLowNs(SiteProfile::bucketOf(777));
  EXPECT_LE(Bound, 777u);
  for (double P : {0.0, 0.1, 50.0, 99.9, 100.0})
    EXPECT_EQ(S.latencyPercentileNs(P), Bound) << P;
  EXPECT_EQ(S.LatMinNs, 777u);
  EXPECT_EQ(S.LatMaxNs, 777u);
}

TEST(CommProfilerTest, EmptySiteReadsAllZeroes) {
  // A site that never fired must render without dividing by zero or
  // walking off the histogram: every statistic reads 0.
  SiteProfile S;
  EXPECT_EQ(S.LatCount, 0u);
  EXPECT_DOUBLE_EQ(S.latencyMeanNs(), 0.0);
  for (double P : {0.0, 50.0, 100.0})
    EXPECT_EQ(S.latencyPercentileNs(P), 0u) << P;
  EXPECT_EQ(S.LatMinNs, 0u);
  EXPECT_EQ(S.LatMaxNs, 0u);
}

TEST(CommProfilerTest, RecordLatencyStandsAloneWithoutMsgs) {
  // recordLatency tracks its own sample count (LatCount), so min/max and
  // percentiles are correct even for callers that never touch Msgs — in
  // particular min must not stick at 0 because Msgs stayed 0.
  SiteProfile S;
  S.recordLatency(9);
  S.recordLatency(5);
  EXPECT_EQ(S.Msgs, 0u);
  EXPECT_EQ(S.LatCount, 2u);
  EXPECT_EQ(S.LatMinNs, 5u);
  EXPECT_EQ(S.LatMaxNs, 9u);
  EXPECT_EQ(S.latencyPercentileNs(50), 5u);
  EXPECT_EQ(S.latencyPercentileNs(100), 9u);
}

//===----------------------------------------------------------------------===//
// ThreadPool: parallelFor index coverage and failure semantics.
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForRunsEachIndexExactlyOnce) {
  ThreadPool Pool(4);
  // Each index is claimed by exactly one worker, so the per-index writes
  // cannot race.
  std::vector<int> Hits(1000, 0);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    ASSERT_EQ(Hits[I], 1) << I;
}

TEST(ThreadPoolTest, ParallelForThrowSkipsTrailingIndicesOnOneThread) {
  ThreadPool Pool(1);
  std::vector<size_t> Ran;
  bool Threw = false;
  try {
    Pool.parallelFor(8, [&](size_t I) {
      Ran.push_back(I);
      if (I == 2)
        throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error &E) {
    Threw = true;
    EXPECT_STREQ(E.what(), "boom");
  }
  EXPECT_TRUE(Threw);
  // The failing index is the last body to run: indices 3..7 are never
  // claimed once the failure flag is up.
  EXPECT_EQ(Ran, (std::vector<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, ParallelForStopsClaimingAfterFailure) {
  ThreadPool Pool(2);
  std::atomic<size_t> Executed{0};
  bool Threw = false;
  try {
    Pool.parallelFor(1000, [&](size_t I) {
      if (I == 0)
        throw std::runtime_error("boom");
      ++Executed;
      // Slow the healthy lane's claim rate so the failure flag is up well
      // before it could sweep the index space.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  } catch (const std::runtime_error &) {
    Threw = true;
  }
  EXPECT_TRUE(Threw);
  // Without the shared failure flag the healthy lane grinds through all
  // ~999 remaining indices; with it, only the bodies already in flight
  // (plus a tiny claim-race window) complete. The bound is deliberately
  // loose — it separates "stopped promptly" from "ran everything".
  EXPECT_LT(Executed.load(), 500u);
}
