//===- pipeline_test.cpp - Unit tests for the Pipeline driver API ----------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Pipeline.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace earthcc;

namespace {

const char *Program = R"(
  struct Point { double x; double y; };
  double distance(Point *p) {
    double d;
    d = sqrt(p->x * p->x + p->y * p->y);
    return d;
  }
  int main() {
    Point *p;
    double d;
    p = pmalloc(sizeof(Point))@node(1);
    p->x = 3.0;
    p->y = 4.0;
    d = distance(p);
    return d;
  }
)";

MachineConfig machine(unsigned Nodes) {
  MachineConfig MC;
  MC.NumNodes = Nodes;
  return MC;
}

std::vector<std::string> stageNames(const Pipeline &P) {
  std::vector<std::string> Names;
  for (const StageReport &S : P.stages())
    Names.push_back(S.Name);
  return Names;
}

/// Records the callback sequence as compact strings.
struct RecordingObserver : PipelineObserver {
  std::vector<std::string> Log;
  void stageStarted(const std::string &Name, const Module *M) override {
    Log.push_back("start:" + Name + (M ? "" : ":nomod"));
  }
  void stageFinished(const StageReport &Report, const Module *M) override {
    Log.push_back("finish:" + Report.Name + (M ? "" : ":nomod"));
  }
  void runFinished(const RunResult &Result, const MachineConfig &MC) override {
    Log.push_back("run:" + std::to_string(MC.NumNodes) +
                  (Result.OK ? ":ok" : ":fail"));
  }
};

} // namespace

TEST(PipelineOptionsTest, Presets) {
  PipelineOptions Simple = PipelineOptions::simple();
  EXPECT_FALSE(Simple.Optimize);
  EXPECT_FALSE(Simple.InferLocality);

  PipelineOptions Opt = PipelineOptions::optimized();
  EXPECT_TRUE(Opt.Optimize);
  EXPECT_TRUE(Opt.EnableReadMotion);
  EXPECT_TRUE(Opt.EnableBlocking);
  EXPECT_EQ(Opt.BlockThresholdWords, 3u);
}

TEST(PipelineOptionsTest, ConvertsFromCompileRequest) {
  CompileRequest Req;
  Req.Optimize = false;
  Req.InferLocality = true;
  Req.Comm.BlockThresholdWords = 5;
  Req.Comm.EnableWriteBlocking = false;
  Req.LowerThreads = 3;

  PipelineOptions PO(Req);
  EXPECT_FALSE(PO.Optimize);
  EXPECT_TRUE(PO.InferLocality);
  EXPECT_EQ(PO.BlockThresholdWords, 5u);
  EXPECT_FALSE(PO.EnableWriteBlocking);
  EXPECT_EQ(PO.LowerThreads, 3u);
  // The CommOptions view is the object itself, knobs flattened.
  EXPECT_EQ(PO.comm().BlockThresholdWords, 5u);
}

TEST(PipelineTest, CompileOnceRunMany) {
  Pipeline P(PipelineOptions::optimized());
  CompileResult CR = P.compile(Program);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  // The module is machine-size independent: one compile serves any sweep,
  // and re-running is deterministic.
  RunResult R2 = P.run(*CR.M, machine(2));
  RunResult R4 = P.run(*CR.M, machine(4));
  RunResult R2Again = P.run(*CR.M, machine(2));
  ASSERT_TRUE(R2.OK && R4.OK && R2Again.OK);
  EXPECT_EQ(R2.ExitValue.I, 5);
  EXPECT_EQ(R4.ExitValue.I, 5);
  EXPECT_EQ(R2.TimeNs, R2Again.TimeNs);
  EXPECT_EQ(R2.Counters.total(), R2Again.Counters.total());

  // And it matches the one-shot path exactly.
  RunResult OneShot =
      Pipeline(PipelineOptions::optimized()).compileAndRun(Program, machine(2));
  ASSERT_TRUE(OneShot.OK);
  EXPECT_EQ(R2.TimeNs, OneShot.TimeNs);
  EXPECT_EQ(R2.Counters.total(), OneShot.Counters.total());
}

TEST(PipelineTest, StageReports) {
  Pipeline P(PipelineOptions::optimized());
  CompileResult CR = P.compile(Program);
  ASSERT_TRUE(CR.OK);
  EXPECT_EQ(stageNames(P),
            (std::vector<std::string>{"simplify", "verify", "placement",
                                      "comm-select", "lower"}));
  for (const StageReport &S : P.stages())
    EXPECT_GT(S.WallNs, 0.0) << S.Name;

  // Stage-local counters are merged into the compile result's totals.
  const Statistics &Simplify = P.stages()[0].Counters;
  EXPECT_GT(Simplify.get("simplify.functions"), 0u);
  EXPECT_EQ(CR.Stats.get("simplify.functions"),
            Simplify.get("simplify.functions"));
  EXPECT_GT(CR.Stats.get("placement.read_tuples"), 0u);
  EXPECT_GT(CR.Stats.get("lower.instructions"), 0u);

  // The simple preset skips communication selection; locality is opt-in.
  Pipeline SimpleP(PipelineOptions::simple());
  ASSERT_TRUE(SimpleP.compile(Program).OK);
  EXPECT_EQ(stageNames(SimpleP),
            (std::vector<std::string>{"simplify", "verify", "lower"}));

  PipelineOptions WithLocality;
  WithLocality.InferLocality = true;
  Pipeline LocalityP(WithLocality);
  ASSERT_TRUE(LocalityP.compile(Program).OK);
  EXPECT_EQ(stageNames(LocalityP),
            (std::vector<std::string>{"simplify", "verify", "locality",
                                      "placement", "comm-select", "lower"}));
}

TEST(PipelineTest, ObserverCallbackOrder) {
  Pipeline P(PipelineOptions::optimized());
  RecordingObserver Obs;
  P.addObserver(&Obs);
  ASSERT_TRUE(P.compile(Program).OK);
  EXPECT_EQ(Obs.Log,
            (std::vector<std::string>{
                "start:simplify:nomod", "finish:simplify", "start:verify",
                "finish:verify", "start:placement", "finish:placement",
                "start:comm-select", "finish:comm-select", "start:lower",
                "finish:lower"}));

  Obs.Log.clear();
  CompileResult CR = P.compile(Program);
  RunResult R = P.run(*CR.M, machine(4));
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(Obs.Log.back(), "run:4:ok");
}

TEST(PipelineTest, CompileFailurePropagatesThroughRun) {
  Pipeline P;
  CompileResult CR = P.compile("int main() { return undeclared_var; }");
  EXPECT_FALSE(CR.OK);
  RunResult R = P.run(CR, machine(2));
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(R.Error, CR.Messages);
}

TEST(PipelineTest, TraceCoversCompileAndRun) {
  ChromeTraceSink Sink;
  Pipeline P(PipelineOptions::optimized());
  P.setTraceSink(&Sink);
  CompileResult CR = P.compile(Program);
  ASSERT_TRUE(CR.OK);
  RunResult R = P.run(*CR.M, machine(2));
  ASSERT_TRUE(R.OK);

  bool SawPass = false, SawPlacement = false, SawComm = false,
       SawRunSummary = false;
  for (const TraceEvent &E : Sink.events()) {
    if (E.Tid == TraceTidPass && E.Name == "comm-select" && E.Ph == 'X')
      SawPass = true;
    if (E.Tid == TraceTidPass && E.Name == "placement" && E.Ph == 'X')
      SawPlacement = true;
    if (E.Name == "read-data" || E.Name == "blkmov")
      SawComm = true;
    if (E.Name == "run:main")
      SawRunSummary = true;
  }
  EXPECT_TRUE(SawPass);
  EXPECT_TRUE(SawPlacement);
  EXPECT_TRUE(SawComm);
  EXPECT_TRUE(SawRunSummary);

  // Structurally valid JSON array: balanced brackets/braces, parses as one
  // object per event (full validation lives in the golden test).
  std::string J = Sink.json();
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
  EXPECT_EQ(J.front(), '[');
  EXPECT_EQ(J[J.size() - 2], ']'); // trailing newline after the array
}

TEST(PipelineTest, NullSinkRunIsIdenticalToTracedRun) {
  Pipeline P(PipelineOptions::optimized());
  CompileResult CR = P.compile(Program);
  ASSERT_TRUE(CR.OK);

  RunResult Plain = P.run(*CR.M, machine(2));

  CounterTraceSink Sink;
  P.setTraceSink(&Sink);
  RunResult Traced = P.run(*CR.M, machine(2));
  P.setTraceSink(nullptr);

  // Tracing observes the simulation without perturbing it.
  ASSERT_TRUE(Plain.OK && Traced.OK);
  EXPECT_EQ(Plain.TimeNs, Traced.TimeNs);
  EXPECT_EQ(Plain.ExitValue.I, Traced.ExitValue.I);
  EXPECT_EQ(Plain.Counters.total(), Traced.Counters.total());
  EXPECT_EQ(Plain.Counters.WordsMoved, Traced.Counters.WordsMoved);
  EXPECT_EQ(Sink.stats().get("trace.count.read-data"),
            Traced.Counters.ReadData);
  EXPECT_EQ(Sink.stats().get("trace.count.write-data"),
            Traced.Counters.WriteData);
}

TEST(PipelineTest, RequestDrivenCompileAndRun) {
  // The request API is the canonical path: the request pair fully
  // determines the artifact and the simulated result.
  CompileRequest CReq = CompileRequest::optimized(Program);
  Pipeline P;
  CompileResult CR = P.compile(CReq);
  ASSERT_TRUE(CR.OK) << CR.Messages;

  RunRequest RReq;
  RReq.Nodes = 2;
  RunResult R = P.run(CR, RReq);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.ExitValue.I, 5);

  // Identical to the hand-wired MachineConfig path.
  RunResult ViaConfig =
      Pipeline(PipelineOptions::optimized()).compileAndRun(Program, machine(2));
  ASSERT_TRUE(ViaConfig.OK);
  EXPECT_EQ(R.TimeNs, ViaConfig.TimeNs);
  EXPECT_EQ(R.Counters.total(), ViaConfig.Counters.total());

  // And to the deprecated Driver.h shim, which forwards here.
  RunResult ViaShim = compileAndRun(Program, machine(2),
                                    PipelineOptions::optimized());
  ASSERT_TRUE(ViaShim.OK);
  EXPECT_EQ(R.TimeNs, ViaShim.TimeNs);
}
