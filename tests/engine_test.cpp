//===- engine_test.cpp - AST vs bytecode engine equivalence ---------------===//
//
// Part of the earthcc project.
//
// The bytecode engine must be an observationally perfect stand-in for the
// AST walker: for every workload, input size and machine size, both engines
// must produce the same simulated time, exit value, operation counters,
// step count, program output and byte-identical Chrome traces. These tests
// sweep all five Olden benchmarks at two input sizes and 1/2/4 nodes.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"
#include "interp/Lower.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

/// Replaces the first occurrence of \p From in \p S with \p To; fails the
/// test if the needle is missing (a workload source changed under us).
std::string replaceOnce(std::string S, const std::string &From,
                        const std::string &To) {
  size_t Pos = S.find(From);
  EXPECT_NE(Pos, std::string::npos) << "missing literal: " << From;
  if (Pos != std::string::npos)
    S.replace(Pos, From.size(), To);
  return S;
}

/// A reduced-size variant of \p W's source: each benchmark's build call is
/// rewritten to a smaller tree / fewer simulated steps so the equivalence
/// sweep covers two distinct input sizes per program.
std::string smallSource(const Workload &W) {
  if (W.Name == "power")
    return replaceOnce(W.Source, "build(16, 4, 4, 4)", "build(8, 2, 2, 2)");
  if (W.Name == "health")
    return replaceOnce(replaceOnce(W.Source, "build(3, NULL, 0, 0)",
                                   "build(2, NULL, 0, 0)"),
                       "t < 24", "t < 8");
  if (W.Name == "perimeter")
    return replaceOnce(W.Source, "maketree(6, 128, 128, 256, NULL, 0, 0)",
                       "maketree(4, 128, 128, 256, NULL, 0, 0)");
  if (W.Name == "tsp")
    return replaceOnce(W.Source, "build_tree(10, 0.0, 256.0, 7, 0)",
                       "build_tree(7, 0.0, 256.0, 7, 0)");
  if (W.Name == "voronoi")
    return replaceOnce(W.Source, "build_tree(10, 0.0, 512.0, 13, 0)",
                       "build_tree(7, 0.0, 512.0, 13, 0)");
  ADD_FAILURE() << "unknown workload " << W.Name;
  return W.Source;
}

/// Runs \p M under \p Engine with a fresh trace sink and returns the result
/// plus the serialized trace.
std::pair<RunResult, std::string> runWith(Pipeline &P, const Module &M,
                                          MachineConfig MC,
                                          ExecEngine Engine) {
  ChromeTraceSink Sink;
  MC.Engine = Engine;
  MC.Trace = &Sink;
  RunResult R = P.run(M, MC);
  return {std::move(R), Sink.json()};
}

/// Asserts the two engines' results are indistinguishable.
void expectIdentical(const std::pair<RunResult, std::string> &Ast,
                     const std::pair<RunResult, std::string> &Bc,
                     const std::string &What) {
  const RunResult &A = Ast.first;
  const RunResult &B = Bc.first;
  ASSERT_EQ(A.OK, B.OK) << What << ": " << A.Error << " / " << B.Error;
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_DOUBLE_EQ(A.TimeNs, B.TimeNs) << What;
  EXPECT_EQ(A.ExitValue.K, B.ExitValue.K) << What;
  EXPECT_EQ(A.ExitValue.I, B.ExitValue.I) << What;
  EXPECT_DOUBLE_EQ(A.ExitValue.D, B.ExitValue.D) << What;
  EXPECT_EQ(A.StepsExecuted, B.StepsExecuted) << What;
  EXPECT_EQ(A.Output, B.Output) << What;
  EXPECT_EQ(A.Counters.ReadData, B.Counters.ReadData) << What;
  EXPECT_EQ(A.Counters.WriteData, B.Counters.WriteData) << What;
  EXPECT_EQ(A.Counters.BlkMov, B.Counters.BlkMov) << What;
  EXPECT_EQ(A.Counters.Atomic, B.Counters.Atomic) << What;
  EXPECT_EQ(A.Counters.WordsMoved, B.Counters.WordsMoved) << What;
  EXPECT_EQ(A.Counters.LocalFallbacks, B.Counters.LocalFallbacks) << What;
  EXPECT_EQ(A.Counters.Spawns, B.Counters.Spawns) << What;
  EXPECT_EQ(A.Counters.CtxSwitches, B.Counters.CtxSwitches) << What;
  EXPECT_EQ(A.WordsPerNode, B.WordsPerNode) << What;
  EXPECT_EQ(Ast.second, Bc.second) << What << ": traces diverge";
}

class EngineEquivalenceTest : public ::testing::TestWithParam<std::string> {
protected:
  const Workload &workload() const {
    const Workload *W = findWorkload(GetParam());
    EXPECT_NE(W, nullptr);
    return *W;
  }

  /// Compiles \p Source once per mode and sweeps 1/2/4 nodes, comparing
  /// the engines at every configuration.
  void sweep(const std::string &Source, const std::string &SizeTag) {
    for (RunMode Mode : {RunMode::Simple, RunMode::Optimized}) {
      Pipeline P(workloadOptions(Mode));
      CompileResult CR = P.compile(Source);
      ASSERT_TRUE(CR.OK) << CR.Messages;
      for (unsigned Nodes : {1u, 2u, 4u}) {
        MachineConfig MC = workloadMachine(Mode, Nodes);
        std::string What = GetParam() + "/" + SizeTag +
                           (Mode == RunMode::Simple ? "/simple/" : "/opt/") +
                           std::to_string(Nodes) + "n";
        auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
        auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
        expectIdentical(Ast, Bc, What);
      }
    }
  }
};

TEST_P(EngineEquivalenceTest, FullSize) { sweep(workload().Source, "full"); }

TEST_P(EngineEquivalenceTest, SmallSize) {
  sweep(smallSource(workload()), "small");
}

// The sequential baseline exercises the no-EARTH code path (local accesses
// only, no spawn costs) — equivalence must hold there too.
TEST_P(EngineEquivalenceTest, SequentialBaseline) {
  Pipeline P(workloadOptions(RunMode::Sequential));
  CompileResult CR = P.compile(workload().Source);
  ASSERT_TRUE(CR.OK) << CR.Messages;
  MachineConfig MC = workloadMachine(RunMode::Sequential, 1);
  auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
  auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
  expectIdentical(Ast, Bc, GetParam() + "/sequential");
}

// Preemption-boundary stress: quantum values that force slice expiry at
// different step phases must not break equivalence (the quantum counts
// interpreter steps, so this pins the one-instruction-per-step invariant).
TEST_P(EngineEquivalenceTest, QuantumSweep) {
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(smallSource(workload()));
  ASSERT_TRUE(CR.OK) << CR.Messages;
  for (unsigned Quantum : {1u, 3u, 17u, 0u}) {
    MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
    MC.EUQuantum = Quantum;
    std::string What =
        GetParam() + "/quantum=" + std::to_string(Quantum);
    auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
    auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
    expectIdentical(Ast, Bc, What);
  }
}

INSTANTIATE_TEST_SUITE_P(Olden, EngineEquivalenceTest,
                         ::testing::Values("power", "perimeter", "tsp",
                                           "health", "voronoi"),
                         [](const auto &Info) { return Info.param; });

// Lowering is cached on the Module: repeated bytecode runs must reuse one
// BytecodeModule instance rather than re-lowering per run.
TEST(EngineCacheTest, LoweringIsCachedAcrossRuns) {
  const Workload *W = findWorkload("power");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->Source);
  ASSERT_TRUE(CR.OK) << CR.Messages;
  const BytecodeModule &First = getOrLowerBytecode(*CR.M);
  RunResult R = P.run(*CR.M, workloadMachine(RunMode::Optimized, 2));
  ASSERT_TRUE(R.OK) << R.Error;
  const BytecodeModule &Second = getOrLowerBytecode(*CR.M);
  EXPECT_EQ(&First, &Second) << "lowering must be memoized on the Module";
  EXPECT_EQ(First.M, CR.M.get());
}

// Runtime errors must be reported with identical text through both engines.
TEST(EngineErrorTest, IdenticalDiagnostics) {
  Pipeline P(workloadOptions(RunMode::Simple));
  CompileResult CR = P.compile("int main() { int x; x = 1; return x; }");
  ASSERT_TRUE(CR.OK) << CR.Messages;
  for (const char *Entry : {"missing", "main"}) {
    MachineConfig MC = workloadMachine(RunMode::Simple, 1);
    ChromeTraceSink SA, SB;
    MC.Engine = ExecEngine::AST;
    MC.Trace = &SA;
    RunResult A = P.run(*CR.M, MC, Entry);
    MC.Engine = ExecEngine::Bytecode;
    MC.Trace = &SB;
    RunResult B = P.run(*CR.M, MC, Entry);
    EXPECT_EQ(A.OK, B.OK) << Entry;
    EXPECT_EQ(A.Error, B.Error) << Entry;
    EXPECT_EQ(SA.json(), SB.json()) << Entry;
  }
}

} // namespace
