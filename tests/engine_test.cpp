//===- engine_test.cpp - AST vs bytecode engine equivalence ---------------===//
//
// Part of the earthcc project.
//
// The bytecode engine must be an observationally perfect stand-in for the
// AST walker: for every workload, input size and machine size, both engines
// must produce the same simulated time, exit value, operation counters,
// step count, program output and byte-identical Chrome traces. These tests
// sweep all five Olden benchmarks at two input sizes and 1/2/4 nodes.
//
//===----------------------------------------------------------------------===//

#include "driver/ProfileReport.h"
#include "interp/Bytecode.h"
#include "interp/Lower.h"
#include "simple/Printer.h"
#include "support/CommProfiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

/// One engine run's observable artifacts: the result, the serialized trace,
/// and the serialized per-site communication profile.
struct EngineRun {
  RunResult R;
  std::string Trace;
  std::string Profile;
};

/// Runs \p M under \p Engine with a fresh trace sink and profiler attached.
/// \p Fuse selects the bytecode engine's superinstruction stream and
/// \p Dispatch its inner loop (both ignored by the AST engine; on a build
/// without computed goto, ComputedGoto degrades to the switch loop).
EngineRun runWith(Pipeline &P, const Module &M, MachineConfig MC,
                  ExecEngine Engine, bool Fuse = true,
                  BcDispatch Dispatch = defaultDispatch()) {
  ChromeTraceSink Sink;
  CommProfiler Prof;
  MC.Engine = Engine;
  MC.Fuse = Fuse;
  MC.Dispatch = Dispatch;
  MC.Trace = &Sink;
  MC.Profiler = &Prof;
  RunResult R = P.run(M, MC);
  return {std::move(R), Sink.json(), Prof.json()};
}

/// Asserts the two engines' results are indistinguishable.
void expectIdentical(const EngineRun &Ast, const EngineRun &Bc,
                     const std::string &What) {
  const RunResult &A = Ast.R;
  const RunResult &B = Bc.R;
  ASSERT_EQ(A.OK, B.OK) << What << ": " << A.Error << " / " << B.Error;
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_DOUBLE_EQ(A.TimeNs, B.TimeNs) << What;
  EXPECT_EQ(A.ExitValue.K, B.ExitValue.K) << What;
  EXPECT_EQ(A.ExitValue.I, B.ExitValue.I) << What;
  EXPECT_DOUBLE_EQ(A.ExitValue.D, B.ExitValue.D) << What;
  EXPECT_EQ(A.StepsExecuted, B.StepsExecuted) << What;
  EXPECT_EQ(A.Output, B.Output) << What;
  EXPECT_EQ(A.Counters.ReadData, B.Counters.ReadData) << What;
  EXPECT_EQ(A.Counters.WriteData, B.Counters.WriteData) << What;
  EXPECT_EQ(A.Counters.BlkMov, B.Counters.BlkMov) << What;
  EXPECT_EQ(A.Counters.Atomic, B.Counters.Atomic) << What;
  EXPECT_EQ(A.Counters.WordsMoved, B.Counters.WordsMoved) << What;
  EXPECT_EQ(A.Counters.LocalFallbacks, B.Counters.LocalFallbacks) << What;
  EXPECT_EQ(A.Counters.Spawns, B.Counters.Spawns) << What;
  EXPECT_EQ(A.Counters.CtxSwitches, B.Counters.CtxSwitches) << What;
  EXPECT_EQ(A.WordsPerNode, B.WordsPerNode) << What;
  EXPECT_EQ(Ast.Trace, Bc.Trace) << What << ": traces diverge";
  EXPECT_EQ(Ast.Profile, Bc.Profile) << What << ": comm profiles diverge";
}

class EngineEquivalenceTest : public ::testing::TestWithParam<std::string> {
protected:
  const Workload &workload() const {
    const Workload *W = findWorkload(GetParam());
    EXPECT_NE(W, nullptr);
    return *W;
  }

  /// Compiles \p Source once per mode and sweeps 1/2/4 nodes, comparing
  /// the AST engine against the bytecode engine with fusion on AND off and
  /// under both dispatch loops at every configuration. Fused dispatch
  /// counts are host metrics, so they are deliberately outside
  /// expectIdentical — but the sweep does assert the fused stream actually
  /// fused something (on) and that the unfused stream never dispatches a
  /// superinstruction (off).
  void sweep(const std::string &Source, const std::string &SizeTag) {
    uint64_t FusedDispatches = 0;
    for (RunMode Mode : {RunMode::Simple, RunMode::Optimized}) {
      Pipeline P(workloadOptions(Mode));
      CompileResult CR = P.compile(Source);
      ASSERT_TRUE(CR.OK) << CR.Messages;
      for (unsigned Nodes : {1u, 2u, 4u}) {
        MachineConfig MC = workloadMachine(Mode, Nodes);
        std::string What = GetParam() + "/" + SizeTag +
                           (Mode == RunMode::Simple ? "/simple/" : "/opt/") +
                           std::to_string(Nodes) + "n";
        auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
        auto BcFused = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
        auto BcPlain =
            runWith(P, *CR.M, MC, ExecEngine::Bytecode, /*Fuse=*/false);
        // Dispatch axis: the default above is computed goto where the build
        // carries it; the explicit switch-loop runs pin both loops to the
        // same bits (they collapse to the same loop on a portable build).
        auto BcSwFused = runWith(P, *CR.M, MC, ExecEngine::Bytecode,
                                 /*Fuse=*/true, BcDispatch::Switch);
        auto BcSwPlain = runWith(P, *CR.M, MC, ExecEngine::Bytecode,
                                 /*Fuse=*/false, BcDispatch::Switch);
        expectIdentical(Ast, BcFused, What + "/fuse=on");
        expectIdentical(Ast, BcPlain, What + "/fuse=off");
        expectIdentical(Ast, BcSwFused, What + "/fuse=on/dispatch=switch");
        expectIdentical(Ast, BcSwPlain, What + "/fuse=off/dispatch=switch");
        EXPECT_EQ(Ast.R.FusedDispatches, 0u) << What;
        EXPECT_EQ(BcPlain.R.FusedDispatches, 0u) << What;
        EXPECT_GE(BcFused.R.FusedSteps, 2 * BcFused.R.FusedDispatches)
            << What << ": a fused dispatch covers at least two steps";
        EXPECT_EQ(BcFused.R.FusedDispatches, BcSwFused.R.FusedDispatches)
            << What << ": fused dispatch counts diverge across loops";
        EXPECT_EQ(BcFused.R.FusedSteps, BcSwFused.R.FusedSteps) << What;
        FusedDispatches += BcFused.R.FusedDispatches;
      }
    }
    EXPECT_GT(FusedDispatches, 0u)
        << GetParam() << "/" << SizeTag
        << ": fusion never fired across the whole sweep";
  }
};

TEST_P(EngineEquivalenceTest, FullSize) { sweep(workload().Source, "full"); }

TEST_P(EngineEquivalenceTest, SmallSize) {
  sweep(workload().smallSource(), "small");
}

// The sequential baseline exercises the no-EARTH code path (local accesses
// only, no spawn costs) — equivalence must hold there too.
TEST_P(EngineEquivalenceTest, SequentialBaseline) {
  Pipeline P(workloadOptions(RunMode::Sequential));
  CompileResult CR = P.compile(workload().Source);
  ASSERT_TRUE(CR.OK) << CR.Messages;
  MachineConfig MC = workloadMachine(RunMode::Sequential, 1);
  auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
  auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
  expectIdentical(Ast, Bc, GetParam() + "/sequential");
}

// Preemption-boundary stress: quantum values that force slice expiry at
// different step phases must not break equivalence (the quantum counts
// interpreter steps, so this pins the one-instruction-per-step invariant).
TEST_P(EngineEquivalenceTest, QuantumSweep) {
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(workload().smallSource());
  ASSERT_TRUE(CR.OK) << CR.Messages;
  for (unsigned Quantum : {1u, 2u, 3u, 17u, 0u}) {
    MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
    MC.EUQuantum = Quantum;
    std::string What =
        GetParam() + "/quantum=" + std::to_string(Quantum);
    auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
    auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
    auto BcPlain = runWith(P, *CR.M, MC, ExecEngine::Bytecode, /*Fuse=*/false);
    auto BcSw = runWith(P, *CR.M, MC, ExecEngine::Bytecode, /*Fuse=*/true,
                        BcDispatch::Switch);
    expectIdentical(Ast, Bc, What + "/fuse=on");
    expectIdentical(Ast, BcPlain, What + "/fuse=off");
    expectIdentical(Ast, BcSw, What + "/dispatch=switch");
    // A one-step quantum leaves no budget for a multi-step dispatch: every
    // superinstruction must fall back to single-stepping.
    if (Quantum == 1) {
      EXPECT_EQ(Bc.R.FusedDispatches, 0u) << What;
    }
  }
}

// Topology axis: at every fixed (topology, distribution) the engine, fuse
// and dispatch knobs must still be bit-identical — the network model mutates
// link state in event order, so this pins that both engines issue network
// transactions in the same order even under contention.
TEST_P(EngineEquivalenceTest, TopologyAxis) {
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(workload().smallSource());
  ASSERT_TRUE(CR.OK) << CR.Messages;
  for (Topology Topo : {Topology::Bus, Topology::Mesh2D, Topology::Torus2D,
                        Topology::FatTree}) {
    for (Distribution Dist : {Distribution::Cyclic, Distribution::Block}) {
      MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
      MC.Topo = Topo;
      MC.Dist = Dist;
      std::string What = GetParam() + "/topology=" +
                         topologyName(Topo) + "/dist=" +
                         distributionName(Dist);
      auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
      auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode);
      auto BcPlain =
          runWith(P, *CR.M, MC, ExecEngine::Bytecode, /*Fuse=*/false);
      auto BcSw = runWith(P, *CR.M, MC, ExecEngine::Bytecode, /*Fuse=*/true,
                          BcDispatch::Switch);
      expectIdentical(Ast, Bc, What + "/fuse=on");
      expectIdentical(Ast, BcPlain, What + "/fuse=off");
      expectIdentical(Ast, BcSw, What + "/dispatch=switch");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Olden, EngineEquivalenceTest,
                         ::testing::Values("power", "perimeter", "tsp",
                                           "health", "voronoi"),
                         [](const auto &Info) { return Info.param; });

// Lowering is cached on the Module: repeated bytecode runs must reuse one
// BytecodeModule instance rather than re-lowering per run.
TEST(EngineCacheTest, LoweringIsCachedAcrossRuns) {
  const Workload *W = findWorkload("power");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->Source);
  ASSERT_TRUE(CR.OK) << CR.Messages;
  const BytecodeModule &First = getOrLowerBytecode(*CR.M);
  RunResult R = P.run(*CR.M, workloadMachine(RunMode::Optimized, 2));
  ASSERT_TRUE(R.OK) << R.Error;
  const BytecodeModule &Second = getOrLowerBytecode(*CR.M);
  EXPECT_EQ(&First, &Second) << "lowering must be memoized on the Module";
  EXPECT_EQ(First.M, CR.M.get());
}

/// Field-wise BcOperand equality (BcInsn holds pointers and padding, so
/// memcmp over the raw bytes would be both unsafe and too strict).
void expectSameOperand(const BcOperand &A, const BcOperand &B,
                       const std::string &What) {
  EXPECT_EQ(A.Kind, B.Kind) << What;
  EXPECT_EQ(A.Slot, B.Slot) << What;
  EXPECT_EQ(A.V, B.V) << What;
  EXPECT_EQ(A.Const.K, B.Const.K) << What;
  EXPECT_EQ(A.Const.I, B.Const.I) << What;
  EXPECT_DOUBLE_EQ(A.Const.D, B.Const.D) << What;
  EXPECT_EQ(A.Const.P, B.Const.P) << What;
}

/// Field-wise BcInsn equality between two lowerings of the SAME Module:
/// Src/V point into the shared IR and compare directly; Callee points into
/// each lowering's own BytecodeModule, so its identity is the source
/// Function it lowers.
void expectSameInsn(const BcInsn &A, const BcInsn &B, const std::string &What) {
  EXPECT_EQ(A.Op, B.Op) << What;
  EXPECT_EQ(A.RK, B.RK) << What;
  EXPECT_EQ(A.LK, B.LK) << What;
  EXPECT_EQ(A.Sub, B.Sub) << What;
  EXPECT_EQ(A.Loc, B.Loc) << What;
  EXPECT_EQ(A.Place, B.Place) << What;
  EXPECT_EQ(A.A, B.A) << What;
  EXPECT_EQ(A.B, B.B) << What;
  EXPECT_EQ(A.Off, B.Off) << What;
  EXPECT_EQ(A.Words, B.Words) << What;
  EXPECT_EQ(A.Dst, B.Dst) << What;
  EXPECT_EQ(A.Site, B.Site) << What;
  expectSameOperand(A.X, B.X, What + "/X");
  expectSameOperand(A.Y, B.Y, What + "/Y");
  EXPECT_EQ(A.Callee ? A.Callee->Fn : nullptr, B.Callee ? B.Callee->Fn : nullptr)
      << What;
  EXPECT_EQ(A.Src, B.Src) << What;
}

void expectSameStream(const std::vector<BcInsn> &A, const std::vector<BcInsn> &B,
                      const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I != A.size(); ++I)
    expectSameInsn(A[I], B[I], What + "[" + std::to_string(I) + "]");
}

// Parallel per-function lowering must be a pure host-speed knob: every
// thread count yields bit-identical bytecode (both streams, all pools, all
// inline caches) for the same module.
TEST(LowerThreadsTest, ParallelLoweringIsDeterministic) {
  const Workload *W = findWorkload("health");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->Source);
  ASSERT_TRUE(CR.OK) << CR.Messages;
  std::shared_ptr<const BytecodeModule> Serial = lowerModule(*CR.M, 1);
  for (unsigned Threads : {4u, 0u}) {
    std::shared_ptr<const BytecodeModule> Par = lowerModule(*CR.M, Threads);
    std::string Tag = "threads=" + std::to_string(Threads);
    ASSERT_EQ(Serial->Funcs.size(), Par->Funcs.size()) << Tag;
    EXPECT_EQ(Serial->SharedGlobals, Par->SharedGlobals) << Tag;
    EXPECT_EQ(Serial->NumSites, Par->NumSites) << Tag;
    for (size_t F = 0; F != Serial->Funcs.size(); ++F) {
      const BytecodeFunction &A = *Serial->Funcs[F];
      const BytecodeFunction &B = *Par->Funcs[F];
      std::string What = Tag + "/" + A.Fn->name();
      EXPECT_EQ(A.Fn, B.Fn) << What;
      EXPECT_EQ(A.FrameWords, B.FrameWords) << What;
      EXPECT_EQ(A.ParamSlots, B.ParamSlots) << What;
      EXPECT_EQ(A.ParamWordOffs, B.ParamWordOffs) << What;
      EXPECT_EQ(A.SharedCellOffs, B.SharedCellOffs) << What;
      EXPECT_EQ(A.CasePool, B.CasePool) << What;
      EXPECT_EQ(A.BranchPool, B.BranchPool) << What;
      EXPECT_EQ(A.JumpTables, B.JumpTables) << What;
      EXPECT_EQ(A.JumpPool, B.JumpPool) << What;
      EXPECT_EQ(A.SortedCasePool, B.SortedCasePool) << What;
      ASSERT_EQ(A.Slots.size(), B.Slots.size()) << What;
      for (size_t S = 0; S != A.Slots.size(); ++S) {
        EXPECT_EQ(A.Slots[S].WordOff, B.Slots[S].WordOff) << What;
        EXPECT_EQ(A.Slots[S].Words, B.Slots[S].Words) << What;
        EXPECT_EQ(A.Slots[S].SharedCell, B.Slots[S].SharedCell) << What;
        EXPECT_EQ(A.Slots[S].V, B.Slots[S].V) << What;
      }
      ASSERT_EQ(A.ArgPool.size(), B.ArgPool.size()) << What;
      for (size_t I = 0; I != A.ArgPool.size(); ++I)
        expectSameOperand(A.ArgPool[I], B.ArgPool[I], What + "/argpool");
      expectSameStream(A.Code, B.Code, What + "/code");
      expectSameStream(A.FusedCode, B.FusedCode, What + "/fused");
    }
  }
}

// End to end through the Pipeline option: a parallel-lowered compile must
// run to exactly the same simulated result and trace as a serial one.
TEST(LowerThreadsTest, PipelineRunsIdenticalAtAnyThreadCount) {
  const Workload *W = findWorkload("power");
  ASSERT_NE(W, nullptr);
  PipelineOptions SerialOpts = workloadOptions(RunMode::Optimized);
  SerialOpts.LowerThreads = 1;
  PipelineOptions ParOpts = workloadOptions(RunMode::Optimized);
  ParOpts.LowerThreads = 4;
  Pipeline PS(SerialOpts), PP(ParOpts);
  CompileResult CS = PS.compile(W->Source);
  CompileResult CP = PP.compile(W->Source);
  ASSERT_TRUE(CS.OK) << CS.Messages;
  ASSERT_TRUE(CP.OK) << CP.Messages;
  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  auto A = runWith(PS, *CS.M, MC, ExecEngine::Bytecode);
  auto B = runWith(PP, *CP.M, MC, ExecEngine::Bytecode);
  expectIdentical(A, B, "lower-threads 1 vs 4");
  EXPECT_EQ(A.R.FusedDispatches, B.R.FusedDispatches);
  EXPECT_EQ(A.R.FusedSteps, B.R.FusedSteps);
}

// The pass-threads contract, pinned the same way the lower-threads one is:
// the placement/comm-select fan-out is a pure host-speed knob. Every thread
// count must produce a bit-identical compiled artifact — printed module,
// remark stream, emitted Threaded-C and the serialized comm profile of a
// run — for every workload in both program versions.
TEST(PassThreadsTest, CompileIsBitIdenticalAtAnyThreadCount) {
  for (const Workload &W : oldenWorkloads()) {
    for (RunMode Mode : {RunMode::Simple, RunMode::Optimized}) {
      std::string Printed, Remarks, ThreadedC, Profile;
      for (unsigned Threads : {1u, 4u, 0u}) {
        PipelineOptions PO = workloadOptions(Mode);
        PO.PassThreads = Threads;
        Pipeline P(PO);
        CompileResult CR = P.compile(W.smallSource());
        ASSERT_TRUE(CR.OK) << W.Name << ": " << CR.Messages;
        EngineRun Run =
            runWith(P, *CR.M, workloadMachine(Mode, 4), ExecEngine::Bytecode);
        ASSERT_TRUE(Run.R.OK) << W.Name << ": " << Run.R.Error;
        std::string What = W.Name +
                           (Mode == RunMode::Simple ? "/simple" : "/opt") +
                           "/pass-threads=" + std::to_string(Threads);
        if (Threads == 1) { // Serial run defines the reference artifact.
          Printed = printModule(*CR.M);
          Remarks = CR.Remarks.str();
          ThreadedC = P.emitThreadedC(*CR.M);
          Profile = Run.Profile;
        } else {
          EXPECT_EQ(Printed, printModule(*CR.M)) << What;
          EXPECT_EQ(Remarks, CR.Remarks.str()) << What;
          EXPECT_EQ(ThreadedC, P.emitThreadedC(*CR.M)) << What;
          EXPECT_EQ(Profile, Run.Profile) << What;
        }
      }
    }
  }
}

// The profiler contract: the per-site communication profile is a pure
// function of (module, machine configuration), not of the execution
// strategy. Engine choice, superinstruction fusion and the lowering thread
// count must all yield byte-identical serialized profiles.
TEST(CommProfileTest, BitIdenticalAcrossEngineFuseAndLowerThreads) {
  const Workload *W = findWorkload("health");
  ASSERT_NE(W, nullptr);
  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  std::string Baseline;
  for (unsigned Threads : {1u, 4u}) {
    PipelineOptions PO = workloadOptions(RunMode::Optimized);
    PO.LowerThreads = Threads;
    Pipeline P(PO);
    CompileResult CR = P.compile(W->smallSource());
    ASSERT_TRUE(CR.OK) << CR.Messages;
    // The optimizer must have explained itself: remarks from both passes.
    EXPECT_TRUE(CR.Remarks.hasPass("placement")) << "threads=" << Threads;
    EXPECT_TRUE(CR.Remarks.hasPass("comm-select")) << "threads=" << Threads;
    for (ExecEngine Engine : {ExecEngine::AST, ExecEngine::Bytecode}) {
      for (bool Fuse : {true, false}) {
        if (Engine == ExecEngine::AST && !Fuse)
          continue; // fusion is a bytecode-only knob
        std::string What = "threads=" + std::to_string(Threads) +
                           (Engine == ExecEngine::AST ? "/ast" : "/bc") +
                           (Fuse ? "/fuse=on" : "/fuse=off");
        EngineRun Run = runWith(P, *CR.M, MC, Engine, Fuse);
        ASSERT_TRUE(Run.R.OK) << What << ": " << Run.R.Error;
        EXPECT_NE(Run.Profile.find("\"sites\""), std::string::npos) << What;
        if (Baseline.empty())
          Baseline = Run.Profile;
        else
          EXPECT_EQ(Baseline, Run.Profile) << What << ": profile diverges";
      }
    }
  }
  EXPECT_FALSE(Baseline.empty());
}

// The rendered report joins static remarks with dynamic per-site numbers:
// at least one remark category from each pass must land next to an active
// site's counts.
TEST(CommProfileTest, ReportJoinsRemarksFromBothPasses) {
  const Workload *W = findWorkload("health");
  ASSERT_NE(W, nullptr);
  Pipeline P(workloadOptions(RunMode::Optimized));
  CompileResult CR = P.compile(W->smallSource());
  ASSERT_TRUE(CR.OK) << CR.Messages;
  CommProfiler Prof;
  MachineConfig MC = workloadMachine(RunMode::Optimized, 4);
  MC.Profiler = &Prof;
  RunResult R = P.run(*CR.M, MC);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_GT(Prof.totalMsgs(), 0u);
  std::string Report = renderProfileReport(*CR.M, Prof, &CR.Remarks);
  EXPECT_NE(Report.find("placement.hoist-loop"), std::string::npos) << Report;
  EXPECT_NE(Report.find("comm-select."), std::string::npos) << Report;
  std::string Json = profileReportJson(*CR.M, Prof, &CR.Remarks);
  EXPECT_NE(Json.find("\"total_msgs\""), std::string::npos);
  EXPECT_NE(Json.find("\"remarks\""), std::string::npos);
}

// Runtime errors must be reported with identical text through both engines.
TEST(EngineErrorTest, IdenticalDiagnostics) {
  Pipeline P(workloadOptions(RunMode::Simple));
  CompileResult CR = P.compile("int main() { int x; x = 1; return x; }");
  ASSERT_TRUE(CR.OK) << CR.Messages;
  for (const char *Entry : {"missing", "main"}) {
    MachineConfig MC = workloadMachine(RunMode::Simple, 1);
    ChromeTraceSink SA, SB;
    MC.Engine = ExecEngine::AST;
    MC.Trace = &SA;
    RunResult A = P.run(*CR.M, MC, Entry);
    MC.Engine = ExecEngine::Bytecode;
    MC.Trace = &SB;
    RunResult B = P.run(*CR.M, MC, Entry);
    EXPECT_EQ(A.OK, B.OK) << Entry;
    EXPECT_EQ(A.Error, B.Error) << Entry;
    EXPECT_EQ(SA.json(), SB.json()) << Entry;
  }
}


//===----------------------------------------------------------------------===//
// Switch dispatch: lowering-mode selection and edge semantics. The observable
// contract is the AST walker's first-match scan over the source-ordered
// cases; these tests pin it across dense jump tables, sorted fallback and
// the linear path, under both dispatch loops and both streams.
//===----------------------------------------------------------------------===//

/// The BcSwitchMode annotation of the single Switch instruction in \p Fn,
/// asserting the fused stream carries the same annotation.
BcSwitchMode switchModeOf(const Module &M, const std::string &Fn) {
  const BytecodeModule &BM = getOrLowerBytecode(M);
  for (const auto &BF : BM.Funcs) {
    if (BF->Fn->name() != Fn)
      continue;
    for (size_t I = 0; I != BF->Code.size(); ++I) {
      if (BF->Code[I].Op != BcOp::Switch)
        continue;
      if (!BF->FusedCode.empty()) {
        EXPECT_EQ(BF->FusedCode[I].Op, BcOp::Switch) << Fn;
        EXPECT_EQ(BF->FusedCode[I].Sub, BF->Code[I].Sub)
            << Fn << ": fused stream lost the dispatch annotation";
      }
      return static_cast<BcSwitchMode>(BF->Code[I].Sub);
    }
  }
  ADD_FAILURE() << "no Switch instruction lowered in " << Fn;
  return BcSwitchMode::Linear;
}

/// Compiles (unoptimized) and runs \p Src under the AST walker and the
/// bytecode engine at {fuse on/off} x {goto/switch}, asserting all five
/// runs are indistinguishable; returns the compile for lowering checks
/// plus the agreed exit value via \p Exit.
CompileResult runSwitchProgram(const std::string &Src, const std::string &What,
                               int64_t &Exit) {
  Pipeline P(PipelineOptions::simple());
  CompileResult CR = P.compile(Src);
  EXPECT_TRUE(CR.OK) << What << ": " << CR.Messages;
  if (!CR.OK)
    return CR;
  MachineConfig MC;
  MC.NumNodes = 2;
  auto Ast = runWith(P, *CR.M, MC, ExecEngine::AST);
  EXPECT_TRUE(Ast.R.OK) << What << ": " << Ast.R.Error;
  for (bool Fuse : {true, false})
    for (BcDispatch D : {BcDispatch::ComputedGoto, BcDispatch::Switch}) {
      auto Bc = runWith(P, *CR.M, MC, ExecEngine::Bytecode, Fuse, D);
      expectIdentical(Ast, Bc,
                      What + "/fuse=" + (Fuse ? "on" : "off") + "/dispatch=" +
                          (D == BcDispatch::ComputedGoto ? "goto" : "switch"));
    }
  Exit = Ast.R.ExitValue.I;
  return CR;
}

TEST(SwitchDispatchTest, DenseContiguousRangeUsesJumpTable) {
  int64_t Exit = 0;
  CompileResult CR = runSwitchProgram(R"(
    int pick(int q) {
      int r;
      switch (q) {
      case 0: r = 1; break;
      case 1: r = 2; break;
      case 2: r = 4; break;
      case 3: r = 8; break;
      case 4: r = 16; break;
      case 5: r = 32; break;
      case 6: r = 64; break;
      case 7: r = 128; break;
      default: r = 1000; break;
      }
      return r;
    }
    int main() {
      return pick(0) + pick(3) + pick(7) + pick(8) + pick(0 - 5);
    }
  )",
                                      "dense", Exit);
  ASSERT_TRUE(CR.OK);
  // In range hits the table; above the range and below it (negative) fall
  // to the default via the unsigned bounds check.
  EXPECT_EQ(Exit, 1 + 8 + 128 + 1000 + 1000);
  EXPECT_EQ(switchModeOf(*CR.M, "pick"), BcSwitchMode::Dense);
  const BytecodeModule &BM = getOrLowerBytecode(*CR.M);
  ASSERT_EQ(BM.Funcs.size() >= 1, true);
  bool Found = false;
  for (const auto &BF : BM.Funcs) {
    if (BF->Fn->name() != "pick")
      continue;
    Found = true;
    ASSERT_EQ(BF->JumpTables.size(), 1u);
    EXPECT_EQ(BF->JumpTables[0].Lo, 0);
    EXPECT_EQ(BF->JumpTables[0].Size, 8u);
    EXPECT_EQ(BF->JumpPool.size(), 8u);
    for (int32_t T : BF->JumpPool)
      EXPECT_GE(T, 0) << "contiguous range has no default holes";
    EXPECT_TRUE(BF->SortedCasePool.empty());
  }
  EXPECT_TRUE(Found);
}

TEST(SwitchDispatchTest, DenseRangeWithHolesDefaultsOnMiss) {
  int64_t Exit = 0;
  CompileResult CR = runSwitchProgram(R"(
    int pick(int q) {
      int r;
      r = 0;
      switch (q) {
      case 0: r = 3; break;
      case 2: r = 5; break;
      case 4: r = 7; break;
      case 6: r = 11; break;
      default: r = 900; break;
      }
      return r;
    }
    int main() {
      return pick(0) + pick(2) + pick(6) + pick(1) + pick(5);
    }
  )",
                                      "dense-holes", Exit);
  ASSERT_TRUE(CR.OK);
  // Span 7 over 4 unique values still qualifies as dense; the odd values
  // are -1 holes in the jump pool and must take the default.
  EXPECT_EQ(Exit, 3 + 5 + 11 + 900 + 900);
  EXPECT_EQ(switchModeOf(*CR.M, "pick"), BcSwitchMode::Dense);
}

TEST(SwitchDispatchTest, SparseRangeFallsBackToSortedSearch) {
  int64_t Exit = 0;
  CompileResult CR = runSwitchProgram(R"(
    int pick(int q) {
      int r;
      switch (q) {
      case 10000: r = 30; break;
      case 1: r = 10; break;
      case 100: r = 20; break;
      default: r = 500; break;
      }
      return r;
    }
    int main() {
      return pick(1) + pick(100) + pick(10000) + pick(99) + pick(101);
    }
  )",
                                      "sparse", Exit);
  ASSERT_TRUE(CR.OK);
  // Span 10000 blows the dense budget: binary search over the sorted pool,
  // near-misses on both sides of a case value take the default.
  EXPECT_EQ(Exit, 10 + 20 + 30 + 500 + 500);
  EXPECT_EQ(switchModeOf(*CR.M, "pick"), BcSwitchMode::Sorted);
  const BytecodeModule &BM = getOrLowerBytecode(*CR.M);
  for (const auto &BF : BM.Funcs) {
    if (BF->Fn->name() != "pick")
      continue;
    ASSERT_EQ(BF->SortedCasePool.size(), 3u);
    EXPECT_EQ(BF->SortedCasePool[0].first, 1);
    EXPECT_EQ(BF->SortedCasePool[1].first, 100);
    EXPECT_EQ(BF->SortedCasePool[2].first, 10000);
    EXPECT_TRUE(BF->JumpTables.empty());
  }
}

TEST(SwitchDispatchTest, DuplicateCaseValueFirstWins) {
  // The frontend does not reject duplicate case values, so the engines'
  // shared contract applies: the first case in source order wins, in every
  // dispatch mode (lowering deduplicates keeping the first target).
  for (const char *Extra : {"case 2: r = 30; break;",       // dense shape
                            "case 9999: r = 30; break;"}) { // sorted shape
    int64_t Exit = 0;
    std::string Src = std::string(R"(
      int pick(int q) {
        int r;
        r = 0;
        switch (q) {
        case 1: r = 10; break;
        case 1: r = 20; break;
        )") + Extra + R"(
        }
        return r;
      }
      int main() { return pick(1); }
    )";
    runSwitchProgram(Src, std::string("duplicate/") + Extra, Exit);
    EXPECT_EQ(Exit, 10) << Extra << ": first case in source order must win";
  }
}

TEST(SwitchDispatchTest, DefaultOnlyAndMissingDefault) {
  // Words == 0 stays on the (empty) linear scan; a missing default is an
  // empty default body, so a miss leaves the variable untouched.
  int64_t Exit = 0;
  CompileResult CR = runSwitchProgram(R"(
    int defonly(int q) {
      int r;
      switch (q) {
      default: r = 5; break;
      }
      return r;
    }
    int nodefault(int q) {
      int r;
      r = 77;
      switch (q) {
      case 1: r = 40; break;
      }
      return r;
    }
    int main() {
      return defonly(123) + nodefault(1) + nodefault(2);
    }
  )",
                                      "default-only", Exit);
  ASSERT_TRUE(CR.OK);
  EXPECT_EQ(Exit, 5 + 40 + 77);
  EXPECT_EQ(switchModeOf(*CR.M, "defonly"), BcSwitchMode::Linear);
  // A single case cannot be dense (the table needs two distinct values).
  EXPECT_EQ(switchModeOf(*CR.M, "nodefault"), BcSwitchMode::Sorted);
}


} // namespace
