//===- json_test.cpp - Unit tests for the minimal JSON layer ---------------===//
//
// Part of the earthcc project.
//
// The support/Json parser and writer back the --serve protocol; these tests
// pin the grammar (strict RFC 8259 subset), the escape handling both ways,
// and the compact writer's integer formatting (protocol ids must round-trip
// textually).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

json::Value parseOK(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, Err)) << Text << ": " << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Text, V, Err)) << Text;
  return Err;
}

} // namespace

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parseOK("null").isNull());
  EXPECT_TRUE(parseOK("true").asBool());
  EXPECT_FALSE(parseOK("false").asBool());
  EXPECT_DOUBLE_EQ(parseOK("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseOK("-3.5e2").asNumber(), -350.0);
  EXPECT_EQ(parseOK("\"hi\"").asString(), "hi");
  EXPECT_DOUBLE_EQ(parseOK("  7  ").asNumber(), 7.0); // surrounding space ok
}

TEST(JsonParseTest, Containers) {
  json::Value A = parseOK("[1, \"two\", [3], {}]");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.items().size(), 4u);
  EXPECT_DOUBLE_EQ(A.items()[0].asNumber(), 1.0);
  EXPECT_EQ(A.items()[1].asString(), "two");
  EXPECT_TRUE(A.items()[2].isArray());
  EXPECT_TRUE(A.items()[3].isObject());

  json::Value O = parseOK("{\"a\": 1, \"b\": {\"c\": true}}");
  ASSERT_TRUE(O.isObject());
  EXPECT_DOUBLE_EQ(O.getNumber("a", 0), 1.0);
  ASSERT_NE(O.find("b"), nullptr);
  EXPECT_TRUE(O.find("b")->getBool("c", false));
  EXPECT_EQ(O.find("missing"), nullptr);
  EXPECT_EQ(O.getString("missing", "dflt"), "dflt");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parseOK(R"("a\"b\\c\/d\n\t")").asString(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parseOK(R"("\u0041\u00e9")").asString(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 as \ud83d\ude00 -> 4-byte UTF-8.
  EXPECT_EQ(parseOK(R"("\ud83d\ude00")").asString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, SurrogatePairBoundaries) {
  // Lowest and highest astral code points: U+10000 and U+10FFFF.
  EXPECT_EQ(parseOK(R"("\ud800\udc00")").asString(), "\xf0\x90\x80\x80");
  EXPECT_EQ(parseOK(R"("\udbff\udfff")").asString(), "\xf4\x8f\xbf\xbf");
  // Uppercase hex digits are equally valid in both halves.
  EXPECT_EQ(parseOK(R"("\uD83D\uDE00")").asString(), "\xf0\x9f\x98\x80");
  // A decoded pair keeps its neighbors intact.
  EXPECT_EQ(parseOK(R"("a\ud83d\ude00b")").asString(),
            "a\xf0\x9f\x98\x80"
            "b");
}

TEST(JsonParseTest, SurrogateErrors) {
  // High surrogate followed by a regular character, by the end of string,
  // or by a \u escape outside DC00-DFFF -- all must be rejected, as must a
  // low surrogate with no preceding high half.
  EXPECT_NE(parseErr(R"("\ud83dx")"), "");
  EXPECT_NE(parseErr(R"("\ud83d\n")"), "");
  EXPECT_NE(parseErr(R"("\ud83dA")"), "");
  EXPECT_NE(parseErr(R"("\ud83d\ud83d")"), ""); // high followed by high
  EXPECT_NE(parseErr(R"("\udc00")"), "");       // lone low surrogate
  EXPECT_NE(parseErr(R"("\ude00\ud83d")"), ""); // pair in the wrong order
  EXPECT_NE(parseErr(R"("\ud83d\ude0")"), "");  // truncated low half
}

TEST(JsonParseTest, Errors) {
  EXPECT_NE(parseErr(""), "");
  EXPECT_NE(parseErr("{"), "");
  EXPECT_NE(parseErr("[1,]"), "");
  EXPECT_NE(parseErr("{\"a\" 1}"), "");
  EXPECT_NE(parseErr("01"), "");           // leading zero
  EXPECT_NE(parseErr("1 2"), "");          // trailing garbage
  EXPECT_NE(parseErr("\"unterminated"), "");
  EXPECT_NE(parseErr("\"\\ud83d\""), ""); // lone high surrogate
  EXPECT_NE(parseErr("nul"), "");
}

TEST(JsonWriteTest, CompactAndRoundTrip) {
  json::Value O = json::Value::object();
  O.members().emplace_back("id", json::Value::number(17));
  O.members().emplace_back("ok", json::Value::boolean(true));
  O.members().emplace_back("msg", json::Value::string("a\"b\nc"));
  json::Value Arr = json::Value::array();
  Arr.items().push_back(json::Value::number(1.5));
  Arr.items().push_back(json::Value::null());
  O.members().emplace_back("xs", Arr);

  // Exact integers print without a fraction so ids round-trip textually.
  std::string S = O.str();
  EXPECT_NE(S.find("\"id\":17"), std::string::npos) << S;
  EXPECT_NE(S.find("\\n"), std::string::npos) << S;

  json::Value Back = parseOK(S);
  EXPECT_DOUBLE_EQ(Back.getNumber("id", 0), 17.0);
  EXPECT_EQ(Back.getString("msg", ""), "a\"b\nc");
  EXPECT_EQ(Back.find("xs")->items().size(), 2u);
  EXPECT_EQ(Back.str(), S); // writer is a fixed point through the parser
}

TEST(JsonWriteTest, QuoteEscapesControls) {
  EXPECT_EQ(json::quote("x"), "\"x\"");
  EXPECT_EQ(json::escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json::escape("tab\there"), "tab\\there");
}
