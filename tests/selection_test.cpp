//===- selection_test.cpp - Communication selection tests ------------------===//
//
// Part of the earthcc project.
//
// Exercises the paper's worked examples: Figure 3 (distance), Figure 4
// (scale_point), and Figure 8 (communication selection over the Figure 7
// list-walking program).
//
//===----------------------------------------------------------------------===//

#include "simple/Printer.h"
#include "simple/Verifier.h"
#include "frontend/Simplify.h"
#include "transform/CommSelection.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

struct Optimized {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  Statistics Stats;
};

Optimized optimize(const std::string &Src, const std::string &FuncName,
                   CommOptions Opts = {}) {
  DiagnosticsEngine Diags;
  Optimized O;
  O.M = compileToSimple(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<std::string> Errors;
  EXPECT_TRUE(optimizeModuleCommunication(*O.M, Opts, O.Stats, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  O.F = O.M->findFunction(FuncName);
  EXPECT_NE(O.F, nullptr);
  return O;
}

struct OpCounts {
  int RemoteReads = 0;
  int RemoteWrites = 0;
  int BlkMovReads = 0;
  int BlkMovWrites = 0;
  int total() const {
    return RemoteReads + RemoteWrites + BlkMovReads + BlkMovWrites;
  }
};

/// Static counts of remote operations in a function body.
OpCounts countOps(const Function &F) {
  OpCounts C;
  forEachStmt(F.body(), [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S)) {
      if (A->isRemoteRead())
        ++C.RemoteReads;
      if (A->isRemoteWrite())
        ++C.RemoteWrites;
    } else if (const auto *B = dynCastStmt<BlkMovStmt>(&S)) {
      if (B->Dir == BlkMovDir::ReadToLocal)
        ++C.BlkMovReads;
      else
        ++C.BlkMovWrites;
    }
  });
  return C;
}

//===----------------------------------------------------------------------===//
// Figure 3: distance().
//===----------------------------------------------------------------------===//

const char *DistanceProgram = R"(
  struct Point { double x; double y; };
  double distance(Point *p) {
    double dist_p;
    dist_p = sqrt(p->x * p->x + p->y * p->y);
    return dist_p;
  }
)";

TEST(Figure3Test, RedundantReadsCollapseToTwo) {
  // Paper Figure 3(c): four remote reads become two pipelined reads
  // (2 fields < the 3-word blocking threshold).
  Optimized O = optimize(DistanceProgram, "distance");
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.RemoteReads, 2);
  EXPECT_EQ(C.BlkMovReads, 0);
  EXPECT_EQ(C.total(), 2);
  EXPECT_EQ(O.Stats.get("select.pipelined_reads"), 2u);
  EXPECT_GE(O.Stats.get("select.rewritten_reads"), 4u);
}

TEST(Figure3Test, LowerThresholdSelectsBlocking) {
  // Paper Figure 3(d): with blocking allowed at 2 words, the whole Point
  // moves with one blkmov.
  CommOptions Opts;
  Opts.BlockThresholdWords = 2;
  Optimized O = optimize(DistanceProgram, "distance", Opts);
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.BlkMovReads, 1);
  EXPECT_EQ(C.RemoteReads, 0);
  EXPECT_EQ(C.total(), 1);
}

TEST(Figure3Test, ReadsMoveToFunctionTop) {
  Optimized O = optimize(DistanceProgram, "distance");
  // The first two basic statements must be the comm reads.
  const auto &Body = O.F->body().Stmts;
  ASSERT_GE(Body.size(), 2u);
  const auto *A0 = dynCastStmt<AssignStmt>(Body[0].get());
  const auto *A1 = dynCastStmt<AssignStmt>(Body[1].get());
  ASSERT_NE(A0, nullptr);
  ASSERT_NE(A1, nullptr);
  EXPECT_TRUE(A0->isRemoteRead());
  EXPECT_TRUE(A1->isRemoteRead());
  EXPECT_EQ(A0->L.V->kind(), VarKind::CommTemp);
  EXPECT_EQ(A1->L.V->kind(), VarKind::CommTemp);
}

//===----------------------------------------------------------------------===//
// Figure 4: scale_point().
//===----------------------------------------------------------------------===//

const char *ScalePointProgram = R"(
  struct Point { double x; double y; };
  double scale(double v, double k) { return v * k; }
  void scale_point(Point *p, double k) {
    p->x = scale(p->x, k);
    p->y = scale(p->y, k);
  }
)";

TEST(Figure4Test, ReadsHoistWritesStayAtThreshold3) {
  // With the default threshold the two writes cannot block (2 < 3), so
  // they stay put; the two reads pipeline at the top (Figure 4(c)).
  Optimized O = optimize(ScalePointProgram, "scale_point");
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.RemoteReads, 2);
  EXPECT_EQ(C.RemoteWrites, 2);
  EXPECT_EQ(C.BlkMovReads, 0);
  EXPECT_EQ(C.BlkMovWrites, 0);
}

TEST(Figure4Test, LowerThresholdBlocksReadsAndWrites) {
  // Figure 4(d): blkmov in, compute locally, blkmov out.
  CommOptions Opts;
  Opts.BlockThresholdWords = 2;
  Optimized O = optimize(ScalePointProgram, "scale_point", Opts);
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.BlkMovReads, 1);
  EXPECT_EQ(C.BlkMovWrites, 1);
  EXPECT_EQ(C.RemoteReads, 0);
  EXPECT_EQ(C.RemoteWrites, 0);
  EXPECT_EQ(C.total(), 2);
  // The write-back must be the last statement.
  const auto *Last = O.F->body().Stmts.back().get();
  const auto *B = dynCastStmt<BlkMovStmt>(Last);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Dir, BlkMovDir::WriteFromLocal);
}

//===----------------------------------------------------------------------===//
// Figure 8: selection over the Figure 7 program.
//===----------------------------------------------------------------------===//

const char *Figure8Program = R"(
  struct Point { double x; double y; Point *next; };
  double f(double ax, double ay, double bx, double by) {
    return ax - bx + ay - by;
  }
  double closest(Point *head, Point *t, double epsilon) {
    Point *p;
    Point *close;
    double ax; double ay; double bx; double by; double dist;
    double cx; double tx; double diffx; double cy; double ty; double diffy;
    p = head;
    while (p != NULL) {
      ax = p->x;
      ay = p->y;
      bx = t->x;
      by = t->y;
      dist = f(ax, ay, bx, by);
      if (dist < epsilon) { close = p; }
      p = p->next;
    }
    cx = close->x;
    tx = t->x;
    diffx = cx - tx;
    cy = close->y;
    ty = t->y;
    diffy = cy - ty;
    return diffx + diffy;
  }
)";

TEST(Figure8Test, MatchesPaperSelection) {
  Optimized O = optimize(Figure8Program, "closest");
  OpCounts C = countOps(*O.F);
  // Paper Figure 8(b): two pipelined reads of t before the loop, one
  // blkmov of p per loop iteration, two pipelined reads of close after
  // the loop. Statically: 4 scalar remote reads + 1 blkmov.
  EXPECT_EQ(C.RemoteReads, 4);
  EXPECT_EQ(C.BlkMovReads, 1);
  EXPECT_EQ(C.RemoteWrites, 0);
  EXPECT_EQ(C.BlkMovWrites, 0);

  // The blkmov must be the first statement of the loop body.
  const WhileStmt *Loop = nullptr;
  forEachStmt(O.F->body(), [&](const Stmt &S) {
    if (!Loop)
      if (const auto *W = dynCastStmt<WhileStmt>(&S))
        Loop = W;
  });
  ASSERT_NE(Loop, nullptr);
  ASSERT_FALSE(Loop->Body->empty());
  const auto *B = dynCastStmt<BlkMovStmt>(Loop->Body->Stmts.front().get());
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Dir, BlkMovDir::ReadToLocal);
  EXPECT_EQ(B->Words, 3u);

  // Inside the loop, the reads of t must be rewritten to comm temps: no
  // remote reads may remain in the body.
  int BodyRemote = 0;
  forEachStmt(*Loop->Body, [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (A->isRemoteRead())
        ++BodyRemote;
  });
  EXPECT_EQ(BodyRemote, 0);

  // The two t-reads must come before the loop (first two statements).
  const auto &Body = O.F->body().Stmts;
  const auto *A0 = dynCastStmt<AssignStmt>(Body[0].get());
  const auto *A1 = dynCastStmt<AssignStmt>(Body[1].get());
  ASSERT_NE(A0, nullptr);
  ASSERT_NE(A1, nullptr);
  EXPECT_TRUE(A0->isRemoteRead());
  EXPECT_TRUE(A1->isRemoteRead());
}

TEST(Figure8Test, TReadsReusedAfterLoop) {
  Optimized O = optimize(Figure8Program, "closest");
  // After the loop, tx/ty must be plain copies from the comm temps, not
  // fresh remote reads: exactly two new remote reads (close->x, close->y)
  // appear after the loop.
  std::string Printed = printFunction(*O.F);
  // tx = comm...; ty = comm...
  EXPECT_NE(Printed.find("tx = comm"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("ty = comm"), std::string::npos) << Printed;
  // p = bcomm1.next replaces the remote pointer chase.
  EXPECT_NE(Printed.find("p = bcomm1.next"), std::string::npos) << Printed;
}

//===----------------------------------------------------------------------===//
// Coherence and safety.
//===----------------------------------------------------------------------===//

TEST(CoherenceTest, StoreRefreshesPipelinedTemp) {
  // v1 = p->x; p->x = 2.0; v2 = p->x — the second read may reuse the temp
  // only if the store refreshed it.
  Optimized O = optimize(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      double v1; double v2;
      v1 = p->x;
      p->x = 2.0;
      v2 = p->x;
      return v1 + v2;
    }
  )",
                         "f");
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.RemoteReads, 1);  // One hoisted read; second rewritten.
  EXPECT_EQ(C.RemoteWrites, 1); // Store remains (no blocking at 2 fields).
  EXPECT_GE(O.Stats.get("select.coherence_updates"), 1u);
}

TEST(CoherenceTest, BlockedGroupAbsorbsReadsAndWrites) {
  // Three fields: read-blocked; the store rewrites into the block and a
  // blocked write-back lands at the end.
  Optimized O = optimize(R"(
    struct T { double a; double b; double c; };
    double f(T *p) {
      double v1; double v2; double v3;
      v1 = p->a;
      v2 = p->b;
      v3 = p->c;
      p->a = v1 + 1.0;
      p->b = v2 + 1.0;
      p->c = v3 + 1.0;
      return v1 + v2 + v3;
    }
  )",
                         "f");
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.BlkMovReads, 1);
  EXPECT_EQ(C.BlkMovWrites, 1);
  EXPECT_EQ(C.RemoteReads, 0);
  EXPECT_EQ(C.RemoteWrites, 0);
  EXPECT_EQ(C.total(), 2); // 6 remote ops became 2.
}

TEST(SafetyTest, NoHoistWithoutGuaranteedDeref) {
  // The read of p->x happens only when c is true; hoisting it above the
  // condition would introduce a potential null dereference. Frequency is
  // 0.5 at the top and the deref check also fails there, so the read must
  // stay inside the branch.
  Optimized O = optimize(R"(
    struct Point { double x; double y; };
    double f(Point *p, int c) {
      double v;
      v = 0.0;
      if (c > 0) {
        v = p->x;
      }
      return v;
    }
  )",
                         "f");
  const IfStmt *If = nullptr;
  forEachStmt(O.F->body(), [&](const Stmt &S) {
    if (!If)
      If = dynCastStmt<IfStmt>(&S);
  });
  ASSERT_NE(If, nullptr);
  int ReadsInThen = 0;
  forEachStmt(*If->Then, [&](const Stmt &S) {
    if (const auto *A = dynCastStmt<AssignStmt>(&S))
      if (A->isRemoteRead())
        ++ReadsInThen;
  });
  EXPECT_EQ(ReadsInThen, 1);
  // Nothing before the if may be a remote read.
  const auto *First = dynCastStmt<AssignStmt>(O.F->body().Stmts[0].get());
  ASSERT_NE(First, nullptr);
  EXPECT_FALSE(First->isRemoteRead());
}

TEST(SafetyTest, WriteStaysWhenOnlyOneBranchWrites) {
  Optimized O = optimize(R"(
    struct T { double a; double b; double c; };
    void f(T *p, int c) {
      double z;
      if (c > 0) {
        p->a = 1.0;
        p->b = 2.0;
        p->c = 3.0;
      }
      z = 0.0;
    }
  )",
                         "f");
  // The three writes are inside the branch; a blocked group may form
  // *inside* the then-branch, but no write-back may appear after the if
  // (the else path must not write).
  const auto &Body = O.F->body().Stmts;
  for (const auto &S : Body)
    if (const auto *B = dynCastStmt<BlkMovStmt>(S.get()))
      EXPECT_NE(B->Dir, BlkMovDir::WriteFromLocal)
          << "write-back escaped the conditional";
}

TEST(SafetyTest, AliasWritePreventsReuse) {
  Optimized O = optimize(R"(
    struct Point { double x; double y; };
    double f(Point *p) {
      Point *q;
      double v1; double v2;
      q = p;
      v1 = p->x;
      q->x = 9.0;
      v2 = p->x;
      return v1 + v2;
    }
  )",
                         "f");
  OpCounts C = countOps(*O.F);
  // The aliased store q->x kills the cached copy: both reads stay remote.
  EXPECT_EQ(C.RemoteReads, 2);
}

//===----------------------------------------------------------------------===//
// Option toggles (ablations).
//===----------------------------------------------------------------------===//

TEST(OptionsTest, AllOffLeavesProgramUntouched) {
  CommOptions Opts;
  Opts.EnableReadMotion = false;
  Opts.EnableBlocking = false;
  Opts.EnableRedundancyElim = false;
  Opts.EnableWriteBlocking = false;

  DiagnosticsEngine Diags;
  auto M1 = compileToSimple(DistanceProgram, Diags);
  auto M2 = compileToSimple(DistanceProgram, Diags);
  Statistics Stats;
  std::vector<std::string> Errors;
  ASSERT_TRUE(optimizeModuleCommunication(*M2, Opts, Stats, Errors));
  EXPECT_EQ(printModule(*M1), printModule(*M2));
}

TEST(OptionsTest, RedundancyElimWithoutMotion) {
  CommOptions Opts;
  Opts.EnableReadMotion = false;
  Opts.EnableBlocking = false;
  Opts.EnableWriteBlocking = false;
  Optimized O = optimize(DistanceProgram, "distance", Opts);
  OpCounts C = countOps(*O.F);
  // temp copies of p->x / p->y are reused in place: 2 remote reads remain.
  EXPECT_EQ(C.RemoteReads, 2);
}

TEST(OptionsTest, BlockingDisabledFallsBackToPipelining) {
  CommOptions Opts;
  Opts.EnableBlocking = false;
  Optimized O = optimize(Figure8Program, "closest", Opts);
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.BlkMovReads, 0);
  // p->x, p->y, p->next pipelined in the loop + t and close reads outside.
  EXPECT_EQ(C.RemoteReads, 7);
}

TEST(OptionsTest, OverfetchGuardPipelines) {
  // 3 fields used out of a 16-word struct: with MaxBlockOverfetch=4 the
  // block would move 16 > 4*3 words... 16 <= 12 fails, so pipelined.
  CommOptions Opts;
  Opts.MaxBlockOverfetch = 4;
  Optimized O = optimize(R"(
    struct Big {
      double f0; double f1; double f2; double f3;
      double f4; double f5; double f6; double f7;
      double f8; double f9; double f10; double f11;
      double f12; double f13; double f14; double f15;
      double f16;
    };
    double f(Big *p) {
      double a; double b; double c;
      a = p->f0;
      b = p->f1;
      c = p->f2;
      return a + b + c;
    }
  )",
                         "f", Opts);
  OpCounts C = countOps(*O.F);
  EXPECT_EQ(C.BlkMovReads, 0);
  EXPECT_EQ(C.RemoteReads, 3);
}

TEST(VerifyTest, TransformedModulesAlwaysVerify) {
  for (const char *Src : {DistanceProgram, ScalePointProgram,
                          Figure8Program}) {
    for (unsigned Threshold : {1u, 2u, 3u, 4u}) {
      CommOptions Opts;
      Opts.BlockThresholdWords = Threshold;
      DiagnosticsEngine Diags;
      auto M = compileToSimple(Src, Diags);
      ASSERT_FALSE(Diags.hasErrors());
      Statistics Stats;
      std::vector<std::string> Errors;
      EXPECT_TRUE(optimizeModuleCommunication(*M, Opts, Stats, Errors))
          << "threshold " << Threshold << ": "
          << (Errors.empty() ? "" : Errors[0]);
    }
  }
}

} // namespace
