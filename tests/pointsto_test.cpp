//===- pointsto_test.cpp - Points-to and side-effect analysis tests --------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"
#include "analysis/SideEffects.h"
#include "frontend/Simplify.h"

#include <gtest/gtest.h>

using namespace earthcc;

namespace {

struct Analyzed {
  std::unique_ptr<Module> M;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<SideEffects> SE;
};

Analyzed analyze(const std::string &Src) {
  DiagnosticsEngine Diags;
  Analyzed A;
  A.M = compileToSimple(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  A.PT = std::make_unique<PointsToAnalysis>(*A.M);
  A.SE = std::make_unique<SideEffects>(*A.M, *A.PT);
  return A;
}

const Var *var(const Analyzed &A, const std::string &Fn,
               const std::string &Name) {
  Function *F = A.M->findFunction(Fn);
  EXPECT_NE(F, nullptr);
  Var *V = F->findVar(Name);
  EXPECT_NE(V, nullptr) << Name;
  return V;
}

TEST(PointsToTest, ParametersGetAnchors) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int f(node *p, node *q) { return 0; }
  )");
  const Var *P = var(A, "f", "p");
  const Var *Q = var(A, "f", "q");
  EXPECT_EQ(A.PT->pointsTo(P).size(), 1u);
  EXPECT_EQ(A.PT->pointsTo(Q).size(), 1u);
  // Distinct parameters do not alias (Figure 7 relies on this for p / t).
  EXPECT_FALSE(A.PT->mayAlias(P, 0, Q, 0));
  // The same parameter aliases itself at equal offsets only.
  EXPECT_TRUE(A.PT->mayAlias(P, 0, P, 0));
  EXPECT_FALSE(A.PT->mayAlias(P, 0, P, 1));
}

TEST(PointsToTest, CopiesAlias) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int f(node *p) {
      node *q;
      q = p;
      return q->v;
    }
  )");
  EXPECT_TRUE(A.PT->mayAlias(var(A, "f", "p"), 0, var(A, "f", "q"), 0));
}

TEST(PointsToTest, RegionCollapsesRecursiveStructures) {
  // q = p->next: q points into p's region -> same-offset accesses alias.
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int f(node *p) {
      node *q;
      q = p->next;
      return q->v;
    }
  )");
  EXPECT_TRUE(A.PT->mayAlias(var(A, "f", "p"), 0, var(A, "f", "q"), 0));
}

TEST(PointsToTest, TypeSegregatedRegionsDoNotAlias) {
  // Lists hanging off a village are a different region than the village
  // itself: cell->forward must not alias village fields (the connection-
  // analysis precision the health benchmark needs).
  Analyzed A = analyze(R"(
    struct patient { int t; };
    struct list { patient *pat; list *forward; };
    struct village { list *waiting; int label; };
    int f(village *v) {
      list *c;
      c = v->waiting;
      c->forward = NULL;
      return v->label;
    }
  )");
  const Var *V = var(A, "f", "v");
  const Var *C = var(A, "f", "c");
  EXPECT_FALSE(A.PT->mayAlias(V, 1, C, 1));
  // But two list cells alias each other.
  EXPECT_TRUE(A.PT->mayAlias(C, 1, C, 1));
}

TEST(PointsToTest, AllocationSitesAreDistinct) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int f() {
      node *a; node *b;
      a = pmalloc(sizeof(node));
      b = pmalloc(sizeof(node));
      a->v = 1;
      b->v = 2;
      return a->v + b->v;
    }
  )");
  EXPECT_FALSE(A.PT->mayAlias(var(A, "f", "a"), 0, var(A, "f", "b"), 0));
}

TEST(PointsToTest, CallBindingFlowsPointsTo) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int helper(node *h) { return h->v; }
    int f() {
      node *a;
      a = pmalloc(sizeof(node));
      a->v = 3;
      return helper(a);
    }
  )");
  // helper's parameter includes f's allocation site (plus its own anchor).
  const Var *H = var(A, "helper", "h");
  const Var *Av = var(A, "f", "a");
  EXPECT_TRUE(A.PT->mayAlias(H, 0, Av, 0));
}

TEST(PointsToTest, ReturnValueFlows) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    node *make() {
      node *a;
      a = pmalloc(sizeof(node));
      return a;
    }
    int f() {
      node *x;
      x = make();
      x->v = 1;
      return x->v;
    }
  )");
  EXPECT_TRUE(
      A.PT->mayAlias(var(A, "f", "x"), 0, var(A, "make", "a"), 0));
}

TEST(PointsToTest, AddrOfFieldTracksOffsets) {
  Analyzed A = analyze(R"(
    struct cell { int v; };
    struct box { int pad; cell c; };
    int f(box *b) {
      cell *inner;
      int x;
      inner = &(b->c);
      inner->v = 1;
      x = b->pad;
      return x;
    }
  )");
  const Var *B = var(A, "f", "b");
  const Var *Inner = var(A, "f", "inner");
  // inner->v is b's word 1; b->pad is word 0.
  EXPECT_TRUE(A.PT->mayAlias(B, 1, Inner, 0));
  EXPECT_FALSE(A.PT->mayAlias(B, 0, Inner, 0));
}

//===----------------------------------------------------------------------===//
// Side effects.
//===----------------------------------------------------------------------===//


TEST(SideEffectsTest, FunctionSummariesAreInterprocedural) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    void deep(node *n) { n->v = 0; }
    void mid(node *m) { deep(m); }
    int f(node *p) { mid(p); return 1; }
  )");
  const Function *Mid = A.M->findFunction("mid");
  // mid writes (transitively) what deep writes.
  EXPECT_FALSE(A.SE->functionWrites(Mid).empty());
}

TEST(SideEffectsTest, VarWrittenSeesCallResults) {
  Analyzed A = analyze(R"(
    int g() { return 1; }
    int f() {
      int x;
      x = g();
      return x;
    }
  )");
  Function *F = A.M->findFunction("f");
  const Var *X = F->findVar("x");
  bool Found = false;
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (S.kind() == StmtKind::Call)
      Found = A.SE->varWritten(X, S);
  });
  EXPECT_TRUE(Found);
}

TEST(SideEffectsTest, DirectReadsDetected) {
  Analyzed A = analyze(R"(
    struct node { int v; node *next; };
    int f(node *p, node *q) {
      int x;
      x = p->v;
      return x;
    }
  )");
  Function *F = A.M->findFunction("f");
  const Var *P = F->findVar("p");
  const Var *Q = F->findVar("q");
  EXPECT_TRUE(A.SE->directlyReads(P, F->body()));
  EXPECT_FALSE(A.SE->directlyReads(Q, F->body()));
}

TEST(SideEffectsTest, ContainsReturn) {
  Analyzed A = analyze(R"(
    int f(int c) {
      if (c > 0) { return 1; }
      return 0;
    }
  )");
  Function *F = A.M->findFunction("f");
  EXPECT_TRUE(A.SE->containsReturn(F->body()));
  forEachStmt(F->body(), [&](const Stmt &S) {
    if (S.kind() == StmtKind::If)
      EXPECT_TRUE(A.SE->containsReturn(S));
  });
}

} // namespace
