//===- metrics_test.cpp - Metrics registry unit tests ----------------------===//
//
// Part of the earthcc project.
//
// The registry's contracts:
//
//  - Identity: (name, sorted labels) names one instrument; requesting it
//    again — even with labels in a different order — returns a handle to
//    the same storage.
//  - Sharded writes merge: counters and histograms updated from many
//    threads read back the exact total.
//  - Histogram bucketing: bucketOf/bucketLowNs are consistent inverses
//    with bounded (~25%) relative bucket width, and percentile answers are
//    exact functions of the recorded multiset.
//  - Exposition: snapshot() is valid JSON in sorted instrument order;
//    prometheusText() emits sanitized names with cumulative buckets.
//  - Null-safety: default-constructed handles drop updates and read 0.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace earthcc;

TEST(MetricsIdentityTest, SameNameAndLabelsIsOneInstrument) {
  MetricsRegistry Reg;
  Counter A = Reg.counter("req", {{"op", "run"}, {"outcome", "hit"}});
  // Label order must not matter: registration sorts by key.
  Counter B = Reg.counter("req", {{"outcome", "hit"}, {"op", "run"}});
  A.inc(3);
  B.inc(2);
  EXPECT_EQ(A.value(), 5u);
  EXPECT_EQ(B.value(), 5u);

  // Any differing label value (or the bare name) is a distinct instrument.
  Counter C = Reg.counter("req", {{"op", "run"}, {"outcome", "miss"}});
  Counter D = Reg.counter("req");
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(D.value(), 0u);

  // Same identity rule for gauges and histograms.
  Reg.gauge("depth", {{"k", "v"}}).set(7);
  EXPECT_EQ(Reg.gauge("depth", {{"k", "v"}}).value(), 7);
  Reg.histogram("lat").observe(10);
  EXPECT_EQ(Reg.histogram("lat").count(), 1u);
}

TEST(MetricsIdentityTest, NullHandlesDropUpdates) {
  Counter C;
  Gauge G;
  Histogram H;
  C.inc(42);
  G.set(42);
  H.observe(42);
  EXPECT_FALSE(static_cast<bool>(C));
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
}

TEST(MetricsShardTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("hits");
  Histogram H = Reg.histogram("ns");

  constexpr unsigned Threads = 8, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        C.inc();
        H.observe(T + 1); // distinct per-thread sample values
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  // Sum / min / max merge across shards exactly: samples were 1..Threads,
  // PerThread each.
  EXPECT_EQ(H.sum(), uint64_t(PerThread) * Threads * (Threads + 1) / 2);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), uint64_t(Threads));
}

TEST(MetricsHistogramTest, BucketBoundsAreConsistent) {
  // Values below 4 are exact buckets.
  for (uint64_t V = 0; V != 4; ++V) {
    EXPECT_EQ(Histogram::bucketOf(V), V);
    EXPECT_EQ(Histogram::bucketLowNs(static_cast<unsigned>(V)), V);
  }

  // bucketLowNs(bucketOf(V)) <= V < bucketLowNs(bucketOf(V) + 1), with
  // bounded relative width, across the whole range.
  for (uint64_t V : {4ull, 5ull, 7ull, 8ull, 100ull, 1000ull, 4095ull,
                     4096ull, 123456789ull, (1ull << 40) + 17,
                     (1ull << 62) + (1ull << 61)}) {
    unsigned B = Histogram::bucketOf(V);
    ASSERT_LT(B, Histogram::NumBuckets);
    uint64_t Low = Histogram::bucketLowNs(B);
    EXPECT_LE(Low, V) << V;
    if (B + 1 < Histogram::NumBuckets) {
      uint64_t Next = Histogram::bucketLowNs(B + 1);
      EXPECT_GT(Next, V) << V;
      // 4 linear sub-buckets per octave: width is a quarter of the
      // octave base, so worst-case relative error is bounded.
      EXPECT_LE(Next - Low, Low / 2 + 1) << V;
    }
  }

  // Bucket lows are strictly increasing (no aliasing between octaves).
  for (unsigned B = 1; B != Histogram::NumBuckets; ++B)
    EXPECT_GT(Histogram::bucketLowNs(B), Histogram::bucketLowNs(B - 1)) << B;

  // Exact powers of two start a fresh sub-bucket.
  for (unsigned E = 2; E != 63; ++E) {
    uint64_t P = 1ull << E;
    EXPECT_EQ(Histogram::bucketLowNs(Histogram::bucketOf(P)), P);
  }
}

TEST(MetricsHistogramTest, PercentilesOnEmptySingleAndMany) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("lat");

  // Empty: everything reads 0.
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  EXPECT_EQ(H.percentile(99), 0u);

  // A single sample is every percentile of itself (bucket lower bound).
  H.observe(1000);
  uint64_t Lone = Histogram::bucketLowNs(Histogram::bucketOf(1000));
  EXPECT_EQ(H.percentile(1), Lone);
  EXPECT_EQ(H.percentile(50), Lone);
  EXPECT_EQ(H.percentile(100), Lone);
  EXPECT_EQ(H.min(), 1000u);
  EXPECT_EQ(H.max(), 1000u);

  // 100 well-separated samples: rank selection must land in the right
  // bucket (values are powers of two, so bucket lows are the values).
  Histogram M = Reg.histogram("many");
  for (uint64_t I = 1; I <= 100; ++I)
    M.observe(1ull << (I % 20 + 2)); // 2^2 .. 2^21, 5 samples each
  EXPECT_EQ(M.count(), 100u);
  EXPECT_EQ(M.percentile(100), M.max());
  EXPECT_LE(M.percentile(50), M.percentile(95));
  EXPECT_LE(M.percentile(95), M.percentile(99));
}

TEST(MetricsExpositionTest, SnapshotIsSortedValidJson) {
  MetricsRegistry Reg;
  // Registered out of order; snapshot must render sorted by (name, labels).
  Reg.counter("zeta").inc(9);
  Reg.counter("alpha", {{"k", "2"}}).inc(2);
  Reg.counter("alpha", {{"k", "1"}}).inc(1);
  Reg.gauge("depth").set(-3);
  Reg.histogram("ns").observe(5);

  std::string Text = Reg.snapshotJson();
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, V, Err)) << Err << "\n" << Text;
  ASSERT_TRUE(V.isObject());

  const json::Value *Counters = V.find("counters");
  ASSERT_TRUE(Counters && Counters->isArray());
  ASSERT_EQ(Counters->items().size(), 3u);
  EXPECT_EQ(Counters->items()[0].getString("name", ""), "alpha");
  EXPECT_EQ(Counters->items()[0].find("labels")->getString("k", ""), "1");
  EXPECT_EQ(Counters->items()[1].find("labels")->getString("k", ""), "2");
  EXPECT_EQ(Counters->items()[2].getString("name", ""), "zeta");
  EXPECT_EQ(Counters->items()[2].getNumber("value", -1), 9);

  const json::Value *Gauges = V.find("gauges");
  ASSERT_TRUE(Gauges && Gauges->isArray());
  EXPECT_EQ(Gauges->items()[0].getNumber("value", 0), -3);

  const json::Value *Hists = V.find("histograms");
  ASSERT_TRUE(Hists && Hists->isArray());
  ASSERT_EQ(Hists->items().size(), 1u);
  const json::Value &H = Hists->items()[0];
  EXPECT_EQ(H.getNumber("count", 0), 1);
  EXPECT_EQ(H.getNumber("sum", 0), 5);
  EXPECT_EQ(H.getNumber("min", 0), 5);
  EXPECT_EQ(H.getNumber("max", 0), 5);
  const json::Value *Buckets = H.find("buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  ASSERT_EQ(Buckets->items().size(), 1u); // only non-empty buckets
  EXPECT_EQ(Buckets->items()[0].items()[1].asNumber(), 1);
}

TEST(MetricsExpositionTest, PrometheusTextSanitizesAndCumulates) {
  MetricsRegistry Reg;
  Reg.counter("svc.requests", {{"op", "run"}}).inc(4);
  Histogram H = Reg.histogram("stage-ns");
  H.observe(2);
  H.observe(100);

  std::string Text = Reg.prometheusText("earthcc");
  // '.' and '-' sanitize to '_'; counters get a _total suffix.
  EXPECT_NE(Text.find("earthcc_svc_requests_total{op=\"run\"} 4"),
            std::string::npos)
      << Text;
  // Histograms: cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(Text.find("earthcc_stage_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("earthcc_stage_ns_sum 102"), std::string::npos);
  EXPECT_NE(Text.find("earthcc_stage_ns_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("c");
  Gauge G = Reg.gauge("g");
  Histogram H = Reg.histogram("h");
  C.inc(5);
  G.set(5);
  H.observe(5);

  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);

  // Handles stay live and usable after reset.
  C.inc();
  EXPECT_EQ(C.value(), 1u);
  // And the instruments are still listed in the snapshot.
  std::string Text = Reg.snapshotJson();
  EXPECT_NE(Text.find("\"name\":\"g\""), std::string::npos) << Text;
}
