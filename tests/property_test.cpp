//===- property_test.cpp - Randomized differential testing -----------------===//
//
// Part of the earthcc project.
//
// A seeded random generator produces structured EARTH-C programs over a
// linked structure (loops, conditionals, remote reads/writes through
// aliasing pointers, calls). Each program is run (a) sequentially,
// (b) parallel-unoptimized, (c) parallel-optimized at several blocking
// thresholds; all runs must agree on the checksum, and optimization must
// never increase remote-operation counts. This is the adversarial
// counterpart of the hand-written selection tests: it hunts for unsound
// tuple propagation, stale local copies, and broken write sinking.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace earthcc;

namespace {

/// Deterministic linear-congruential generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint32_t next(uint32_t Bound) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((State >> 33) % Bound);
  }

private:
  uint64_t State;
};

/// Emits a random structured function body over two struct pointers that
/// may or may not alias, plus integer scalars.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "struct rec { int a; int b; int c; int d; rec *link; };\n\n";
    OS << "int mix(int x, int y) { return x * 3 + y; }\n\n";
    OS << "void clobber(rec *r) { r->c = r->c + 100; }\n\n";
    OS << "int work(rec *p, rec *q, int n) {\n";
    OS << "  int acc; int i; int j; int k; int t;\n";
    OS << "  acc = 0;\n";
    Depth = 1;
    int NumStmts = 6 + static_cast<int>(R.next(8));
    for (int I = 0; I != NumStmts; ++I)
      emitStmt();
    OS << "  return acc;\n";
    OS << "}\n\n";

    OS << "int main() {\n";
    OS << "  rec *x; rec *y; rec *z;\n";
    OS << "  int r1; int r2;\n";
    OS << "  x = pmalloc(sizeof(rec))@node(1 % num_nodes());\n";
    OS << "  y = pmalloc(sizeof(rec))@node(2 % num_nodes());\n";
    OS << "  x->a = 1; x->b = 2; x->c = 3; x->d = 4; x->link = y;\n";
    OS << "  y->a = 5; y->b = 6; y->c = 7; y->d = 8; y->link = x;\n";
    // Sometimes pass aliasing pointers.
    if (R.next(2))
      OS << "  z = x;\n";
    else
      OS << "  z = y;\n";
    OS << "  r1 = work(x, z, 5);\n";
    OS << "  r2 = work(y, x, 3);\n";
    OS << "  return r1 * 31 + r2 + x->a + y->c + x->d + y->b;\n";
    OS << "}\n";
    return OS.str();
  }

private:
  void indent() {
    for (int I = 0; I != Depth; ++I)
      OS << "  ";
  }

  std::string ptr() { return R.next(2) ? "p" : "q"; }
  std::string field() {
    static const char *Fields[] = {"a", "b", "c", "d"};
    return Fields[R.next(4)];
  }

  void emitStmt() {
    // Nesting is bounded to keep programs terminating and readable.
    switch (R.next(Depth >= 3 ? 6 : 8)) {
    case 0: // Remote read into scalar.
      indent();
      OS << "t = " << ptr() << "->" << field() << ";\n";
      indent();
      OS << "acc = acc + t;\n";
      return;
    case 1: // Remote write.
      indent();
      OS << ptr() << "->" << field() << " = acc % 1000 + "
         << R.next(50) << ";\n";
      return;
    case 2: // Read-modify-write of one field.
      indent();
      OS << ptr() << "->" << field() << " = " << ptr() << "->" << field()
         << " + " << (1 + R.next(9)) << ";\n";
      return;
    case 3: // Pure call.
      indent();
      OS << "acc = mix(acc, " << R.next(100) << ");\n";
      return;
    case 4: // Heap-writing call (kills tuples interprocedurally).
      indent();
      OS << "clobber(" << ptr() << ");\n";
      return;
    case 5: // Accumulate several fields (blocking candidates).
      indent();
      OS << "acc = acc + " << ptr() << "->a + " << ptr() << "->b + "
         << ptr() << "->c;\n";
      return;
    case 6: { // Conditional.
      indent();
      OS << "if (acc % " << (2 + R.next(3)) << " == " << R.next(2)
         << ") {\n";
      ++Depth;
      int N = 1 + static_cast<int>(R.next(3));
      for (int I = 0; I != N; ++I)
        emitStmt();
      --Depth;
      indent();
      OS << "} else {\n";
      ++Depth;
      emitStmt();
      --Depth;
      indent();
      OS << "}\n";
      return;
    }
    default: { // Bounded loop; each nesting level gets its own counter.
      static const char *Counters[] = {"i", "j", "k"};
      if (LoopDepth >= 3) {
        indent();
        OS << "acc = acc + " << R.next(10) << ";\n";
        return;
      }
      const char *C = Counters[LoopDepth];
      indent();
      OS << "for (" << C << " = 0; " << C << " < " << (2 + R.next(4))
         << "; " << C << " = " << C << " + 1) {\n";
      ++Depth;
      ++LoopDepth;
      int N = 1 + static_cast<int>(R.next(3));
      for (int I = 0; I != N; ++I)
        emitStmt();
      --LoopDepth;
      --Depth;
      indent();
      OS << "}\n";
      return;
    }
    }
  }

  Rng R;
  std::ostringstream OS;
  int Depth = 1;
  int LoopDepth = 0;
};

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, OptimizationPreservesSemantics) {
  ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);

  // Reference: sequential execution of the unoptimized compile.
  Pipeline P;
  CompileResult SimpleCR = P.compile(CompileRequest::simple(Src));
  ASSERT_TRUE(SimpleCR.OK) << SimpleCR.Messages;
  RunRequest SeqRR;
  SeqRR.Sequential = true;
  RunResult Seq = P.run(SimpleCR, SeqRR);
  ASSERT_TRUE(Seq.OK) << Seq.Error;

  for (unsigned Nodes : {1u, 3u}) {
    RunRequest RR;
    RR.Nodes = Nodes;
    RunResult Simple = P.run(SimpleCR, RR);
    ASSERT_TRUE(Simple.OK) << Simple.Error;
    EXPECT_EQ(Simple.ExitValue.I, Seq.ExitValue.I) << Nodes << " nodes";

    for (unsigned Threshold : {1u, 2u, 3u, 5u}) {
      CompileRequest CReq = CompileRequest::optimized(Src);
      CReq.Comm.BlockThresholdWords = Threshold;
      RunResult Opt = P.run(P.compile(CReq), RR);
      ASSERT_TRUE(Opt.OK)
          << "nodes " << Nodes << " threshold " << Threshold << ": "
          << Opt.Error;
      EXPECT_EQ(Opt.ExitValue.I, Seq.ExitValue.I)
          << "nodes " << Nodes << " threshold " << Threshold;
      EXPECT_LE(Opt.Counters.total(), Simple.Counters.total())
          << "optimization increased communication (threshold " << Threshold
          << ")";
    }
  }
}

TEST_P(RandomProgramTest, KnockoutsPreserveSemantics) {
  ProgramGenerator Gen(static_cast<uint64_t>(GetParam()) + 7777);
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);

  Pipeline P;
  RunRequest SeqRR;
  SeqRR.Sequential = true;
  RunResult Seq = P.run(P.compile(CompileRequest::simple(Src)), SeqRR);
  ASSERT_TRUE(Seq.OK) << Seq.Error;

  RunRequest RR;
  RR.Nodes = 3;
  for (int Knockout = 0; Knockout != 5; ++Knockout) {
    CompileRequest CReq = CompileRequest::optimized(Src);
    switch (Knockout) {
    case 0: CReq.Comm.EnableReadMotion = false; break;
    case 1: CReq.Comm.EnableBlocking = false; break;
    case 2: CReq.Comm.EnableWriteBlocking = false; break;
    case 3: CReq.Comm.Placement.OptimisticConditionalReads = false; break;
    case 4:
      CReq.Comm.EnableReadMotion = false;
      CReq.Comm.EnableBlocking = false;
      break;
    }
    RunResult Opt = P.run(P.compile(CReq), RR);
    ASSERT_TRUE(Opt.OK) << "knockout " << Knockout << ": " << Opt.Error;
    EXPECT_EQ(Opt.ExitValue.I, Seq.ExitValue.I) << "knockout " << Knockout;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(1, 41));

} // namespace
