//===- ProfileData.cpp - Persisted comm-profile load/save/diff ------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/ProfileData.h"

#include "driver/ProfileReport.h"
#include "support/Json.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

using namespace earthcc;

//===----------------------------------------------------------------------===//
// Load
//===----------------------------------------------------------------------===//

namespace {

uint64_t asU64(const json::Value &Obj, std::string_view Key) {
  double D = Obj.getNumber(Key, 0.0);
  return D <= 0 ? 0 : static_cast<uint64_t>(D);
}

bool loadSite(const json::Value &S, ProfileSiteRow &Row, std::string &Err) {
  if (!S.isObject()) {
    Err = "profile: site row is not an object";
    return false;
  }
  if (!S.find("function") || !S.find("op")) {
    Err = "profile: site row missing function/op";
    return false;
  }
  Row.Site = static_cast<int64_t>(S.getNumber("site", -1));
  Row.Function = S.getString("function", "");
  Row.Line = static_cast<unsigned>(S.getNumber("line", 0));
  Row.Col = static_cast<unsigned>(S.getNumber("col", 0));
  Row.Op = S.getString("op", "");
  Row.Access = S.getString("access", "");
  Row.Msgs = asU64(S, "msgs");
  Row.Words = asU64(S, "words");
  Row.Local = asU64(S, "local");
  Row.LatMeanNs = S.getNumber("lat_mean_ns", 0.0);
  Row.LatP50Ns = asU64(S, "lat_p50_ns");
  Row.LatP90Ns = asU64(S, "lat_p90_ns");
  Row.LatMinNs = asU64(S, "lat_min_ns");
  Row.LatMaxNs = asU64(S, "lat_max_ns");
  if (const json::Value *R = S.find("remarks"); R && R->isArray())
    for (const json::Value &Item : R->items())
      if (Item.isString())
        Row.Remarks.push_back(Item.asString());
  return true;
}

} // namespace

bool earthcc::loadProfileJson(std::string_view Text, ProfileData &Out,
                              std::string &Err) {
  json::Value Root;
  if (!json::parse(Text, Root, Err))
    return false;
  if (!Root.isObject()) {
    Err = "profile: top-level value is not an object";
    return false;
  }
  Out = ProfileData();
  // Documents written before the schema was versioned carry no "version"
  // field; they are the version-1 layout.
  double V = Root.getNumber("version", 1.0);
  if (V != static_cast<double>(ProfileJsonVersion)) {
    std::ostringstream OS;
    OS << "profile: unsupported schema version " << V << " (expected "
       << ProfileJsonVersion << ")";
    Err = OS.str();
    return false;
  }
  Out.Version = ProfileJsonVersion;

  const json::Value *Sites = Root.find("sites");
  if (!Sites || !Sites->isArray()) {
    Err = "profile: missing \"sites\" array";
    return false;
  }
  for (const json::Value &S : Sites->items()) {
    ProfileSiteRow Row;
    if (!loadSite(S, Row, Err))
      return false;
    Out.Sites.push_back(std::move(Row));
  }

  Out.TotalMsgs = asU64(Root, "total_msgs");
  if (const json::Value *TW = Root.find("traffic_words");
      TW && TW->isArray()) {
    for (const json::Value &RowV : TW->items()) {
      std::vector<uint64_t> Row;
      if (RowV.isArray())
        for (const json::Value &Cell : RowV.items())
          Row.push_back(Cell.asNumber() <= 0
                            ? 0
                            : static_cast<uint64_t>(Cell.asNumber()));
      Out.TrafficWords.push_back(std::move(Row));
    }
  }

  if (const json::Value *Net = Root.find("network"); Net && Net->isObject()) {
    Out.HasNetwork = true;
    Out.NetTopology = Net->getString("topology", "");
    Out.NetEndNs = Net->getNumber("end_ns", 0.0);
    if (const json::Value *Links = Net->find("links");
        Links && Links->isArray()) {
      for (const json::Value &L : Links->items()) {
        ProfileLinkRow Row;
        Row.Name = L.getString("name", "");
        Row.Msgs = asU64(L, "msgs");
        Row.Words = asU64(L, "words");
        Row.BusyNs = L.getNumber("busy_ns", 0.0);
        Row.Utilization = L.getNumber("utilization", 0.0);
        Row.MaxQueueDepth = static_cast<unsigned>(
            L.getNumber("max_queue_depth", 0.0));
        Out.Links.push_back(std::move(Row));
      }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Save
//===----------------------------------------------------------------------===//

namespace {

json::Value num(double D) { return json::Value::number(D); }
json::Value num(uint64_t U) {
  return json::Value::number(static_cast<double>(U));
}

} // namespace

std::string earthcc::saveProfileJson(const ProfileData &P) {
  json::Value Root = json::Value::object();
  Root.members().emplace_back("version", num(uint64_t(ProfileJsonVersion)));

  json::Value Sites = json::Value::array();
  for (const ProfileSiteRow &S : P.Sites) {
    json::Value Row = json::Value::object();
    Row.members().emplace_back("site",
                               num(static_cast<double>(S.Site)));
    Row.members().emplace_back("function", json::Value::string(S.Function));
    Row.members().emplace_back("line", num(uint64_t(S.Line)));
    Row.members().emplace_back("col", num(uint64_t(S.Col)));
    Row.members().emplace_back("op", json::Value::string(S.Op));
    Row.members().emplace_back("access", json::Value::string(S.Access));
    Row.members().emplace_back("msgs", num(S.Msgs));
    Row.members().emplace_back("words", num(S.Words));
    Row.members().emplace_back("local", num(S.Local));
    Row.members().emplace_back("lat_mean_ns", num(S.LatMeanNs));
    Row.members().emplace_back("lat_p50_ns", num(S.LatP50Ns));
    Row.members().emplace_back("lat_p90_ns", num(S.LatP90Ns));
    Row.members().emplace_back("lat_min_ns", num(S.LatMinNs));
    Row.members().emplace_back("lat_max_ns", num(S.LatMaxNs));
    json::Value Remarks = json::Value::array();
    for (const std::string &R : S.Remarks)
      Remarks.items().push_back(json::Value::string(R));
    Row.members().emplace_back("remarks", std::move(Remarks));
    Sites.items().push_back(std::move(Row));
  }
  Root.members().emplace_back("sites", std::move(Sites));
  Root.members().emplace_back("total_msgs", num(P.TotalMsgs));

  json::Value TW = json::Value::array();
  for (const std::vector<uint64_t> &RowW : P.TrafficWords) {
    json::Value Row = json::Value::array();
    for (uint64_t W : RowW)
      Row.items().push_back(num(W));
    TW.items().push_back(std::move(Row));
  }
  Root.members().emplace_back("traffic_words", std::move(TW));

  if (P.HasNetwork) {
    json::Value Net = json::Value::object();
    Net.members().emplace_back("topology", json::Value::string(P.NetTopology));
    Net.members().emplace_back("end_ns", num(P.NetEndNs));
    json::Value Links = json::Value::array();
    for (const ProfileLinkRow &L : P.Links) {
      json::Value Row = json::Value::object();
      Row.members().emplace_back("name", json::Value::string(L.Name));
      Row.members().emplace_back("msgs", num(L.Msgs));
      Row.members().emplace_back("words", num(L.Words));
      Row.members().emplace_back("busy_ns", num(L.BusyNs));
      Row.members().emplace_back("utilization", num(L.Utilization));
      Row.members().emplace_back("max_queue_depth",
                                 num(uint64_t(L.MaxQueueDepth)));
      Links.items().push_back(std::move(Row));
    }
    Net.members().emplace_back("links", std::move(Links));
    Root.members().emplace_back("network", std::move(Net));
  }
  return Root.str();
}

//===----------------------------------------------------------------------===//
// Diff
//===----------------------------------------------------------------------===//

namespace {

/// The diff join key. Site ids are not comparable across optimization
/// levels; (function, location, op) is — it is the identity the remark join
/// already uses.
using DiffKey = std::tuple<std::string, unsigned, unsigned, std::string>;

/// Per-key aggregate of one side's rows (multiple sites can share a source
/// location, e.g. a blkmov split from a read at the same statement).
struct SideAgg {
  uint64_t Msgs = 0;
  uint64_t Words = 0;
  uint64_t Local = 0;
  double LatWeighted = 0.0; ///< sum(mean_i * msgs_i); mean = /Msgs.
  uint64_t P50 = 0;         ///< From the row with the most msgs.
  uint64_t P50Msgs = 0;
  std::vector<std::string> Remarks;

  void add(const ProfileSiteRow &S) {
    Msgs += S.Msgs;
    Words += S.Words;
    Local += S.Local;
    LatWeighted += S.LatMeanNs * static_cast<double>(S.Msgs);
    if (S.Msgs > P50Msgs) {
      P50 = S.LatP50Ns;
      P50Msgs = S.Msgs;
    }
    for (const std::string &R : S.Remarks)
      if (std::find(Remarks.begin(), Remarks.end(), R) == Remarks.end())
        Remarks.push_back(R);
  }
  double meanNs() const {
    return Msgs ? LatWeighted / static_cast<double>(Msgs) : 0.0;
  }
};

std::string signedDelta(uint64_t A, uint64_t B) {
  int64_t D = static_cast<int64_t>(B) - static_cast<int64_t>(A);
  return D > 0 ? "+" + std::to_string(D) : std::to_string(D);
}

std::string joinList(const std::vector<std::string> &L) {
  std::string Out;
  for (const std::string &S : L) {
    if (!Out.empty())
      Out += ", ";
    Out += S;
  }
  return Out.empty() ? "-" : Out;
}

std::string remarksCell(const SideAgg *A, const SideAgg *B) {
  std::string RA = A ? joinList(A->Remarks) : "-";
  std::string RB = B ? joinList(B->Remarks) : "-";
  if (RA == RB)
    return RA;
  return "A: " + RA + " | B: " + RB;
}

uint64_t totalWords(const ProfileData &P) {
  uint64_t W = 0;
  for (const ProfileSiteRow &S : P.Sites)
    W += S.Words;
  return W;
}

} // namespace

std::string earthcc::renderProfileDiff(const ProfileData &A,
                                       const ProfileData &B,
                                       const std::string &NameA,
                                       const std::string &NameB) {
  std::map<DiffKey, SideAgg> SideA, SideB;
  for (const ProfileSiteRow &S : A.Sites)
    SideA[{S.Function, S.Line, S.Col, S.Op}].add(S);
  for (const ProfileSiteRow &S : B.Sites)
    SideB[{S.Function, S.Line, S.Col, S.Op}].add(S);

  std::ostringstream OS;
  OS << "profile diff: A = " << NameA << ", B = " << NameB << "\n";

  TablePrinter T({"site", "op", "msgs A", "msgs B", "dmsgs", "words A",
                  "words B", "dwords", "local A", "local B", "p50 A", "p50 B",
                  "mean A", "mean B", "remarks"});
  // Merge-walk the union of keys; both maps share the ordering of DiffKey.
  auto ItA = SideA.begin(), ItB = SideB.begin();
  while (ItA != SideA.end() || ItB != SideB.end()) {
    const DiffKey *Key;
    const SideAgg *VA = nullptr, *VB = nullptr;
    if (ItB == SideB.end() ||
        (ItA != SideA.end() && ItA->first < ItB->first)) {
      Key = &ItA->first;
      VA = &ItA->second;
      ++ItA;
    } else if (ItA == SideA.end() || ItB->first < ItA->first) {
      Key = &ItB->first;
      VB = &ItB->second;
      ++ItB;
    } else {
      Key = &ItA->first;
      VA = &ItA->second;
      VB = &ItB->second;
      ++ItA;
      ++ItB;
    }
    static const SideAgg Zero;
    const SideAgg &ZA = VA ? *VA : Zero;
    const SideAgg &ZB = VB ? *VB : Zero;
    T.addRow({std::get<0>(*Key) + ":" + std::to_string(std::get<1>(*Key)) +
                  ":" + std::to_string(std::get<2>(*Key)),
              std::get<3>(*Key), std::to_string(ZA.Msgs),
              std::to_string(ZB.Msgs), signedDelta(ZA.Msgs, ZB.Msgs),
              std::to_string(ZA.Words), std::to_string(ZB.Words),
              signedDelta(ZA.Words, ZB.Words), std::to_string(ZA.Local),
              std::to_string(ZB.Local), std::to_string(ZA.P50),
              std::to_string(ZB.P50), TablePrinter::fmt(ZA.meanNs(), 0),
              TablePrinter::fmt(ZB.meanNs(), 0), remarksCell(VA, VB)});
  }
  T.print(OS);

  uint64_t WordsA = totalWords(A), WordsB = totalWords(B);
  OS << "total msgs: " << A.TotalMsgs << " -> " << B.TotalMsgs << " ("
     << signedDelta(A.TotalMsgs, B.TotalMsgs) << "); total words: " << WordsA
     << " -> " << WordsB << " (" << signedDelta(WordsA, WordsB) << ")\n";

  // Per-link occupancy deltas, present when either side ran a non-ideal
  // topology (the ideal network has no links).
  if (A.HasNetwork || B.HasNetwork) {
    OS << "\nnetwork links (A: "
       << (A.HasNetwork ? A.NetTopology : std::string("ideal")) << ", B: "
       << (B.HasNetwork ? B.NetTopology : std::string("ideal")) << "):\n";
    std::map<std::string, std::pair<const ProfileLinkRow *,
                                    const ProfileLinkRow *>>
        Links;
    for (const ProfileLinkRow &L : A.Links)
      Links[L.Name].first = &L;
    for (const ProfileLinkRow &L : B.Links)
      Links[L.Name].second = &L;
    TablePrinter TL({"link", "words A", "words B", "busy A", "busy B",
                     "dbusy", "util A", "util B"});
    for (const auto &KV : Links) {
      static const ProfileLinkRow NoLink;
      const ProfileLinkRow &LA = KV.second.first ? *KV.second.first : NoLink;
      const ProfileLinkRow &LB =
          KV.second.second ? *KV.second.second : NoLink;
      TL.addRow({KV.first, std::to_string(LA.Words), std::to_string(LB.Words),
                 TablePrinter::fmt(LA.BusyNs, 0),
                 TablePrinter::fmt(LB.BusyNs, 0),
                 TablePrinter::fmt(LB.BusyNs - LA.BusyNs, 0),
                 TablePrinter::fmt(LA.Utilization, 3),
                 TablePrinter::fmt(LB.Utilization, 3)});
    }
    TL.print(OS);
  }
  return OS.str();
}
