//===- Driver.h - Deprecated end-to-end compilation shim --------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DEPRECATED. The PR-1-era free-function driver surface is retired: every
/// in-repo caller now goes through the Pipeline object (driver/Pipeline.h)
/// or the request API (driver/Request.h), and `compileEarthC` plus the
/// `CompileOptions` struct are gone. One shim remains for out-of-tree
/// callers:
///
///   compileAndRun(Source, MC) — compile + run in one step.
///
/// It forwards to Pipeline::compileAndRun unchanged. New code should write:
///
///   Pipeline P(PipelineOptions::optimized());
///   RunResult R = P.compileAndRun(Source, MC);
///
/// or, preferably, build a CompileRequest/RunRequest pair and use
/// P.compile(Req) / P.run(CR, RReq) — that form is hashable and is what
/// the CompileService caches by. This header will be removed once no
/// known caller includes it.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_DRIVER_H
#define EARTHCC_DRIVER_DRIVER_H

#include "driver/Pipeline.h"

#include <string>
#include <vector>

namespace earthcc {

/// DEPRECATED: compiles and runs in one step via a throwaway Pipeline. On
/// compile failure the RunResult carries the diagnostics in its Error
/// field. Prefer Pipeline::compileAndRun (or the request API) — this shim
/// exists only so pre-Pipeline out-of-tree code keeps compiling.
RunResult compileAndRun(const std::string &Source, const MachineConfig &MC,
                        const PipelineOptions &Opts = {},
                        const std::string &Entry = "main",
                        const std::vector<RtValue> &Args = {});

} // namespace earthcc

#endif // EARTHCC_DRIVER_DRIVER_H
