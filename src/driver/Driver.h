//===- Driver.h - End-to-end EARTH-C compilation ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The legacy driver surface: EARTH-C source -> lex/parse -> Simplify
/// (SIMPLE three-address form) -> [communication optimization] -> verified
/// Module, plus a convenience wrapper that also executes the result on the
/// simulated EARTH-MANNA machine. The two standard configurations mirror
/// the paper's "simple" (unoptimized) and "optimized" program versions.
///
/// New code should use the Pipeline object in driver/Pipeline.h — the
/// functions here are thin wrappers kept so existing call sites compile,
/// and CompileOptions converts implicitly to the merged PipelineOptions.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_DRIVER_H
#define EARTHCC_DRIVER_DRIVER_H

#include "interp/Interp.h"
#include "simple/Function.h"
#include "support/Remark.h"
#include "support/Statistics.h"
#include "transform/CommSelection.h"

#include <memory>
#include <string>

namespace earthcc {

/// Pipeline configuration.
struct CompileOptions {
  bool Optimize = true; ///< Run the communication optimization (Phase II).
  /// Run locality inference first (downgrades pseudo-remote accesses whose
  /// functions are always invoked at the data's owner). Off by default to
  /// match the paper's "simple vs optimized" experiment, where locality
  /// handling is orthogonal prior work.
  bool InferLocality = false;
  CommOptions Comm;     ///< Policy for the optimization when enabled.
};

/// Outcome of a compilation.
struct CompileResult {
  bool OK = false;
  std::unique_ptr<Module> M;
  Statistics Stats;     ///< Pass counters (select.* keys).
  std::string Messages; ///< Diagnostics / verifier errors when !OK.
  /// Structured optimization remarks from the placement analysis and the
  /// communication-selection transform, in emission order (a stage product
  /// of the "comm-select" stage; empty when optimization is off).
  RemarkStream Remarks;
};

/// Compiles EARTH-C source text into a verified SIMPLE module.
CompileResult compileEarthC(const std::string &Source,
                            const CompileOptions &Opts = {});

/// Compiles and runs in one step. On compile failure the RunResult carries
/// the diagnostics in its Error field.
RunResult compileAndRun(const std::string &Source, const MachineConfig &MC,
                        const CompileOptions &Opts = {},
                        const std::string &Entry = "main",
                        const std::vector<RtValue> &Args = {});

} // namespace earthcc

#endif // EARTHCC_DRIVER_DRIVER_H
