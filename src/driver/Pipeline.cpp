//===- Pipeline.cpp - The earthcc driver API -------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/Locality.h"
#include "codegen/ThreadedC.h"
#include "frontend/Simplify.h"
#include "interp/Bytecode.h"
#include "interp/Lower.h"
#include "simple/Printer.h"
#include "simple/Verifier.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

using namespace earthcc;

PipelineObserver::~PipelineObserver() = default;
void PipelineObserver::stageStarted(const std::string &, const Module *) {}
void PipelineObserver::stageFinished(const StageReport &, const Module *) {}
void PipelineObserver::runFinished(const RunResult &, const MachineConfig &) {}

void IRDumpObserver::stageFinished(const StageReport &Report,
                                   const Module *M) {
  OS << ";; ==== IR after " << Report.Name << " ====\n";
  if (M)
    OS << printModule(*M);
  OS << "\n";
}

/// Runs one named, timed, observed stage. \p GetM resolves the current
/// module for observer callbacks — a callable, not a pointer, because the
/// first compile stage creates the module inside its body (stageStarted
/// sees null, stageFinished sees the fresh module). \p Body receives the
/// stage-local Statistics and returns false on failure; counters are merged
/// into \p MergeInto when non-null. This is the shared core behind the
/// compile() stages (which accumulate into a CompileResult) and
/// post-compile stages like codegen (which operate on a const Module).
template <typename ModuleGetter, typename BodyFn>
bool Pipeline::runStageOn(const char *Name, ModuleGetter &&GetM,
                          Statistics *MergeInto, BodyFn &&Body) {
  for (PipelineObserver *O : Observers)
    O->stageStarted(Name, GetM());

  StageReport Rep;
  Rep.Name = Name;
  auto T0 = std::chrono::steady_clock::now();
  if (WallBase == std::chrono::steady_clock::time_point{})
    WallBase = T0;
  bool OK = Body(Rep.Counters);
  auto T1 = std::chrono::steady_clock::now();
  Rep.WallNs = std::chrono::duration<double, std::nano>(T1 - T0).count();
  if (MergeInto)
    MergeInto->merge(Rep.Counters);

  // Host-side observability only: the same wall time the trace span gets
  // also lands in the process metrics registry, so per-stage timing is
  // queryable live (serve "metrics" op, --metrics) instead of only via
  // --trace. Nothing here feeds back into compilation.
  MetricsRegistry::global()
      .histogram("pipeline.stage_ns", {{"stage", Name}})
      .observe(Rep.WallNs <= 0 ? 0 : static_cast<uint64_t>(Rep.WallNs));

  if (Sink) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = "pass";
    E.Ph = 'X';
    E.TsNs = std::chrono::duration<double, std::nano>(T0 - WallBase).count();
    E.DurNs = Rep.WallNs;
    E.Pid = 0;
    E.Tid = TraceTidPass;
    for (const auto &[Key, Value] : Rep.Counters.all())
      E.Args.emplace_back(Key, Value);
    if (!OK)
      E.Args.emplace_back("failed", 1);
    Sink->event(E);
  }

  Stages.push_back(std::move(Rep));
  for (PipelineObserver *O : Observers)
    O->stageFinished(Stages.back(), GetM());
  return OK;
}

/// Runs one named, timed, observed stage. \p Body receives the stage-local
/// Statistics and returns false on failure (with R.Messages set).
template <typename BodyFn>
bool Pipeline::runStage(const char *Name, CompileResult &R, BodyFn &&Body) {
  return runStageOn(
      Name, [&R]() -> const Module * { return R.M.get(); }, &R.Stats,
      std::forward<BodyFn>(Body));
}

CompileResult Pipeline::compile(const std::string &Source) {
  Stages.clear();
  CompileResult R;
  DiagnosticsEngine Diags;

  bool OK = runStage("simplify", R, [&](Statistics &S) {
    R.M = compileToSimple(Source, Diags);
    if (Diags.hasErrors()) {
      R.Messages = Diags.str();
      return false;
    }
    S.add("simplify.functions", R.M->functions().size());
    return true;
  });
  if (!OK)
    return R;

  OK = runStage("verify", R, [&](Statistics &) {
    std::vector<std::string> Errors;
    if (verifyModule(*R.M, Errors))
      return true;
    R.Messages = "internal error: Simplify produced invalid SIMPLE:\n";
    for (const std::string &E : Errors)
      R.Messages += "  " + E + "\n";
    return false;
  });
  if (!OK)
    return R;

  if (Opts.InferLocality) {
    if (!runStage("locality", R, [&](Statistics &S) {
          inferLocality(*R.M, S);
          return true;
        }))
      return R;
  }

  if (Opts.Optimize) {
    // The communication optimization runs as two named stages so the
    // analysis cost is attributable separately from the rewrite: placement
    // snapshots the module (points-to, side effects, per-function
    // possible-placement sets), comm-select performs the per-function
    // rewrites against that snapshot. Both fan out one function per task
    // over Opts.PassThreads with bit-identical output at any setting.
    std::unique_ptr<CommAnalysis> CA;
    OK = runStage("placement", R, [&](Statistics &S) {
      CA = std::make_unique<CommAnalysis>(*R.M, Opts.comm(), S,
                                          /*EmitRemarks=*/true,
                                          Opts.PassThreads);
      return true;
    });
    if (!OK)
      return R;

    OK = runStage("comm-select", R, [&](Statistics &S) {
      std::vector<std::string> Errors;
      if (selectModuleCommunication(*R.M, *CA, Opts, S, Errors, &R.Remarks,
                                    Opts.PassThreads)) {
        S.add("select.remarks", R.Remarks.size());
        return true;
      }
      R.Messages =
          "internal error: communication selection broke the module:\n";
      for (const std::string &E : Errors)
        R.Messages += "  " + E + "\n";
      return false;
    });
    if (!OK)
      return R;
  }

  // Pre-lower to the register bytecode (the default execution engine).
  // getOrLowerBytecode memoizes the result on the Module, so this stage
  // pays the lowering cost exactly once and every subsequent run() — at any
  // machine size — dispatches straight over the cached opcode streams.
  OK = runStage("lower", R, [&](Statistics &S) {
    const BytecodeModule &BM = getOrLowerBytecode(*R.M, Opts.LowerThreads);
    size_t Insns = 0;
    for (const auto &BF : BM.Funcs)
      Insns += BF->Code.size();
    S.add("lower.functions", BM.Funcs.size());
    S.add("lower.instructions", Insns);
    S.add("lower.threads", Opts.LowerThreads ? Opts.LowerThreads
                                             : ThreadPool::hardwareThreads());
    return true;
  });
  if (!OK)
    return R;

  R.OK = true;
  return R;
}

std::string Pipeline::emitThreadedC(const Module &M) {
  std::string Out;
  runStageOn(
      "codegen", [&M]() -> const Module * { return &M; }, nullptr,
      [&](Statistics &S) {
        // The emitter reads the memoized lower product — the same cached
        // bytecode the simulator executes — so a compile()d module pays no
        // second lowering here and slot numbering cannot diverge between
        // the emitted program and the engines.
        const BytecodeModule &BM = getOrLowerBytecode(M, Opts.LowerThreads);
        uint64_t Threads = 0, SyncSlots = 0;
        for (const auto &BF : BM.Funcs) {
          ThreadedCInfo Info;
          Out += ::earthcc::emitThreadedC(BM, *BF, &Info) + "\n";
          Threads += Info.Threads;
          SyncSlots += Info.SyncSlots;
        }
        S.add("codegen.functions", BM.Funcs.size());
        S.add("codegen.threads", Threads);
        S.add("codegen.sync-slots", SyncSlots);
        S.add("codegen.bytes", Out.size());
        return true;
      });
  return Out;
}

/// Emits the 'M' metadata events that name each simulated node's tracks in
/// the trace viewer.
static void emitMachineMetadata(TraceSink &Sink, const MachineConfig &MC) {
  auto Meta = [&](const char *What, uint32_t Pid, uint32_t Tid,
                  std::string Name) {
    TraceEvent E;
    E.Name = What;
    E.Cat = "meta";
    E.Ph = 'M';
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args.emplace_back("name", std::move(Name));
    Sink.event(E);
  };
  for (unsigned N = 0; N != std::max(1u, MC.NumNodes); ++N) {
    Meta("process_name", N, TraceTidEU, "node " + std::to_string(N));
    Meta("thread_name", N, TraceTidEU, "EU");
    Meta("thread_name", N, TraceTidSU, "SU");
    Meta("thread_name", N, TraceTidComm, "in-flight comm");
  }
  Meta("thread_name", 0, TraceTidPass, "driver/passes");
}

RunResult Pipeline::run(const Module &M, const MachineConfig &MC,
                        const std::string &Entry,
                        const std::vector<RtValue> &Args) {
  MachineConfig Cfg = MC;
  if (!Cfg.Trace)
    Cfg.Trace = Sink;
  if (Cfg.Trace)
    emitMachineMetadata(*Cfg.Trace, Cfg);

  RunResult R = runProgram(M, Cfg, Entry, Args);

  if (Cfg.Trace) {
    // One summary span over the whole run, in simulated time.
    TraceEvent E;
    E.Name = "run:" + Entry;
    E.Cat = "run";
    E.Ph = 'X';
    E.TsNs = 0.0;
    E.DurNs = R.TimeNs;
    E.Pid = 0;
    E.Tid = TraceTidPass;
    E.Args.emplace_back("nodes", Cfg.NumNodes);
    E.Args.emplace_back("steps", R.StepsExecuted);
    E.Args.emplace_back("remote-ops", R.Counters.total());
    E.Args.emplace_back("words-moved", R.Counters.WordsMoved);
    Cfg.Trace->event(E);
  }

  for (PipelineObserver *O : Observers)
    O->runFinished(R, Cfg);
  return R;
}

CompileResult Pipeline::compile(const CompileRequest &Req) {
  Opts = PipelineOptions(Req);
  return compile(Req.Source);
}

RunResult Pipeline::run(const Module &M, const RunRequest &Req) {
  return run(M, Req.machine(), Req.Entry, Req.Args);
}

RunResult Pipeline::run(const CompileResult &CR, const RunRequest &Req) {
  if (!CR.OK) {
    RunResult R;
    R.Error = CR.Messages;
    return R;
  }
  return run(*CR.M, Req);
}

RunResult Pipeline::run(const CompileResult &CR, const MachineConfig &MC,
                        const std::string &Entry,
                        const std::vector<RtValue> &Args) {
  if (!CR.OK) {
    RunResult R;
    R.Error = CR.Messages;
    return R;
  }
  return run(*CR.M, MC, Entry, Args);
}

RunResult Pipeline::compileAndRun(const std::string &Source,
                                  const MachineConfig &MC,
                                  const std::string &Entry,
                                  const std::vector<RtValue> &Args) {
  return run(compile(Source), MC, Entry, Args);
}
