//===- Driver.cpp - Deprecated end-to-end compilation shim -----------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

using namespace earthcc;

RunResult earthcc::compileAndRun(const std::string &Source,
                                 const MachineConfig &MC,
                                 const PipelineOptions &Opts,
                                 const std::string &Entry,
                                 const std::vector<RtValue> &Args) {
  Pipeline P(Opts);
  return P.compileAndRun(Source, MC, Entry, Args);
}
