//===- Driver.cpp - Legacy wrappers over the Pipeline API ------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "driver/Pipeline.h"

using namespace earthcc;

CompileResult earthcc::compileEarthC(const std::string &Source,
                                     const CompileOptions &Opts) {
  Pipeline P{PipelineOptions(Opts)};
  return P.compile(Source);
}

RunResult earthcc::compileAndRun(const std::string &Source,
                                 const MachineConfig &MC,
                                 const CompileOptions &Opts,
                                 const std::string &Entry,
                                 const std::vector<RtValue> &Args) {
  Pipeline P{PipelineOptions(Opts)};
  return P.compileAndRun(Source, MC, Entry, Args);
}
