//===- Driver.cpp ---------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "analysis/Locality.h"
#include "frontend/Simplify.h"
#include "simple/Verifier.h"

using namespace earthcc;

CompileResult earthcc::compileEarthC(const std::string &Source,
                                     const CompileOptions &Opts) {
  CompileResult R;
  DiagnosticsEngine Diags;
  R.M = compileToSimple(Source, Diags);
  if (Diags.hasErrors()) {
    R.Messages = Diags.str();
    return R;
  }

  std::vector<std::string> Errors;
  if (!verifyModule(*R.M, Errors)) {
    R.Messages = "internal error: Simplify produced invalid SIMPLE:\n";
    for (const std::string &E : Errors)
      R.Messages += "  " + E + "\n";
    return R;
  }

  if (Opts.InferLocality)
    inferLocality(*R.M, R.Stats);

  if (Opts.Optimize) {
    if (!optimizeModuleCommunication(*R.M, Opts.Comm, R.Stats, Errors)) {
      R.Messages =
          "internal error: communication selection broke the module:\n";
      for (const std::string &E : Errors)
        R.Messages += "  " + E + "\n";
      return R;
    }
  }

  R.OK = true;
  return R;
}

RunResult earthcc::compileAndRun(const std::string &Source,
                                 const MachineConfig &MC,
                                 const CompileOptions &Opts,
                                 const std::string &Entry,
                                 const std::vector<RtValue> &Args) {
  CompileResult CR = compileEarthC(Source, Opts);
  if (!CR.OK) {
    RunResult R;
    R.Error = CR.Messages;
    return R;
  }
  return runProgram(*CR.M, MC, Entry, Args);
}
