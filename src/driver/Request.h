//===- Request.h - Immutable compile/run request values ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The redesigned request surface of the driver. Historically the knobs
/// accreted across three places — PipelineOptions (inheriting the flat
/// CommOptions), MachineConfig, and ad-hoc environment overrides like
/// EARTHCC_FUSE — and every entry point (CLI, benches, tests, observers)
/// wired them by hand. This file collapses that surface into two plain
/// value types:
///
///  - CompileRequest: everything that determines the compiled artifact
///    (source text + phase toggles + communication-selection policy).
///  - RunRequest: everything that determines one simulated execution of a
///    compiled artifact (entry, args, machine shape, engine, cost model).
///
/// Both are hashable content: keyBytes() is a canonical, versioned
/// serialization of exactly the fields that can change the result, and
/// key() is its 64-bit FNV-1a hash. These are the *same bytes* the
/// CompileService hashes for its content-addressed artifact cache, so "two
/// requests collide in the cache" and "two requests are semantically
/// identical" are one property by construction. Host-only knobs
/// (CompileRequest::LowerThreads — bit-identical output at any setting) and
/// per-request instrumentation (RunRequest::Sink / Profiler — observe
/// without perturbing) are deliberately excluded from the key bytes.
///
/// The declarative option table (requestOptions()) maps every externally
/// settable knob — CLI flag, `--serve` JSON field, environment variable —
/// onto these requests through one shared setter per knob, so the
/// command-line driver and the service protocol cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_REQUEST_H
#define EARTHCC_DRIVER_REQUEST_H

#include "earth/Runtime.h"
#include "transform/CommSelection.h"

#include <string>
#include <string_view>
#include <vector>

namespace earthcc {

/// Everything that determines a compiled artifact. Treat as an immutable
/// value once built: fill the fields (directly or through the option
/// table), then pass by const reference; Pipeline and CompileService never
/// mutate a request.
struct CompileRequest {
  std::string Source;        ///< EARTH-C source text.
  bool Optimize = true;      ///< Run communication selection (Phase II).
  bool InferLocality = false; ///< Run locality inference first.
  CommOptions Comm;          ///< Communication-selection policy.
  /// Worker threads for bytecode lowering. Host wall-clock knob only —
  /// lowering output is bit-identical at every setting — and therefore
  /// excluded from keyBytes().
  unsigned LowerThreads = 1;
  /// Worker threads for the per-function placement/selection passes. Same
  /// contract as LowerThreads: output is bit-identical at every setting
  /// (module, remarks, comm profiles), so it is excluded from keyBytes().
  unsigned PassThreads = 1;

  /// The paper's "simple" program version: no communication optimization.
  static CompileRequest simple(std::string Source);
  /// The paper's "optimized" version: full communication selection.
  static CompileRequest optimized(std::string Source);

  /// Canonical, versioned serialization of every result-determining field.
  /// Equal bytes <=> semantically identical compile. This is the cache key
  /// the CompileService content-addresses artifacts by.
  std::string keyBytes() const;
  uint64_t key() const;      ///< FNV-1a 64 of keyBytes().
  std::string keyHex() const; ///< key() as 16 lowercase hex digits.
};

/// Everything that determines one simulated execution of a compiled
/// module. Defaults mirror MachineConfig (engine, fuse — including the
/// EARTHCC_FUSE environment default — fuel, quantum, cost model), with
/// Nodes defaulting to the CLI's historical 4.
struct RunRequest {
  std::string Entry = "main";
  std::vector<RtValue> Args;  ///< Entry function arguments.
  unsigned Nodes = 4;         ///< Simulated machine size.
  bool Sequential = false;    ///< Sequential-C baseline (forces 1 node).
  ExecEngine Engine;          ///< Execution engine (default: bytecode).
  bool Fuse;                  ///< Superinstruction fusion (host knob, but
                              ///< keyed: see keyBytes()).
  /// Bytecode inner-loop dispatch (computed goto vs portable switch).
  /// Host wall-clock knob with bit-identical results — same contract as
  /// LowerThreads/PassThreads — so it is excluded from keyBytes(): the
  /// dispatch loop must never change which cached result a request maps
  /// to, and a request served on a portable build and a computed-goto
  /// build hits the same cache line.
  BcDispatch Dispatch;
  bool AllowNullReads;
  uint64_t MaxSteps;
  unsigned EUQuantum;
  CostModel Costs;
  /// Interconnect topology and the network-model parameters (see
  /// earth/NetworkModel.h). Unlike Engine/Fuse/Dispatch these CHANGE
  /// simulated results — contention reorders completion times — so all of
  /// them are key material in keyBytes().
  Topology Topo;
  double NetHopNs;
  double NetLinkWordNs;
  /// Logical-index -> node mapping for `@node` placement. Changes which
  /// node owns each datum, hence simulated results; keyed.
  Distribution Dist;
  unsigned DistBlockSize;

  /// Per-request instrumentation. Observes the run without perturbing it,
  /// so both are excluded from keyBytes(): attaching a sink or profiler
  /// must never change which cached result a request maps to.
  TraceSink *Sink = nullptr;
  CommProfiler *Profiler = nullptr;

  RunRequest();

  /// This request as the interpreter's MachineConfig (Sink/Profiler are
  /// forwarded; Sequential forces one node).
  MachineConfig machine() const;

  /// Canonical serialization of the result-determining fields. Engine and
  /// Fuse are keyed *conservatively*: simulated results are bit-identical
  /// across both (the equivalence suite pins it), but the service treats
  /// "how was this computed" as part of the artifact's identity rather
  /// than relying on that theorem at cache-lookup time.
  std::string keyBytes() const;
  uint64_t key() const;
  std::string keyHex() const;
};

/// FNV-1a 64-bit over \p Bytes — the content hash behind request keys.
uint64_t hashKeyBytes(std::string_view Bytes);
std::string keyBytesToHex(uint64_t Key);

//===----------------------------------------------------------------------===//
// Declarative option table
//===----------------------------------------------------------------------===//

/// One externally settable knob: the CLI spells it `--name[=value]`, a
/// `--serve` JSON request spells it `"name": value`, and (when Env is set)
/// the environment spells it `ENV=value`. All three go through the same
/// Apply function, so the surfaces cannot drift.
struct RequestOption {
  const char *Name;  ///< Flag / JSON field name (no leading dashes).
  /// Help text for the value ("N", "on|off", "ast|bytecode"); nullptr for
  /// boolean knobs, which need no value on the CLI (implied "on") but
  /// still accept on|off / true|false everywhere.
  const char *Value;
  const char *Env;   ///< Environment override variable, or nullptr.
  const char *Help;
  /// Applies value \p V to the request pair. Returns false with \p Err set
  /// on a malformed value. An empty \p V means "flag present without a
  /// value" (booleans read it as "on").
  bool (*Apply)(CompileRequest &C, RunRequest &R, const std::string &V,
                std::string &Err);
};

/// The full table, in help order.
const std::vector<RequestOption> &requestOptions();

/// Applies one option by name. Returns false with \p Err set when the name
/// is unknown or the value malformed.
bool applyRequestOption(CompileRequest &C, RunRequest &R,
                        std::string_view Name, const std::string &Value,
                        std::string &Err);

/// Applies every environment override in the table (options whose Env
/// variable is set in the process environment). Returns false with \p Err
/// set on the first malformed value.
bool applyRequestEnv(CompileRequest &C, RunRequest &R, std::string &Err);

/// Parses "on"/"true"/"1"/"" as true and "off"/"false"/"0" as false.
bool parseOnOff(const std::string &V, bool &Out);

} // namespace earthcc

#endif // EARTHCC_DRIVER_REQUEST_H
