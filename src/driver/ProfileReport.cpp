//===- ProfileReport.cpp - Joined per-site profile report ------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/ProfileReport.h"

#include "simple/CommSites.h"
#include "support/CommProfiler.h"
#include "support/Remark.h"
#include "support/TablePrinter.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace earthcc;

namespace {

/// The join key: remarks carry (function name, location); sites carry the
/// same pair. Tuple ordering keeps the index deterministic.
using JoinKey = std::tuple<std::string, unsigned, unsigned>;

JoinKey keyOf(const std::string &Fn, SourceLoc Loc) {
  return {Fn, Loc.Line, Loc.Col};
}

/// Remark categories ("pass.category", deduplicated, emission order) per
/// (function, location).
std::map<JoinKey, std::vector<std::string>>
indexRemarks(const RemarkStream *Remarks) {
  std::map<JoinKey, std::vector<std::string>> Index;
  if (!Remarks)
    return Index;
  for (const Remark &R : Remarks->all()) {
    std::vector<std::string> &Cats = Index[keyOf(R.Function, R.Loc)];
    std::string Tag = R.Pass + "." + R.Category;
    if (std::find(Cats.begin(), Cats.end(), Tag) == Cats.end())
      Cats.push_back(std::move(Tag));
  }
  return Index;
}

std::string joinCategories(const std::vector<std::string> &Cats) {
  std::string Out;
  for (const std::string &C : Cats) {
    if (!Out.empty())
      Out += ", ";
    Out += C;
  }
  return Out;
}

bool siteActive(const SiteProfile &P) { return P.Msgs + P.LocalHits != 0; }

} // namespace

std::string earthcc::renderProfileReport(const Module &M,
                                         const CommProfiler &Prof,
                                         const RemarkStream *Remarks) {
  CommSiteTable Table = buildCommSiteTable(M);
  auto RemarkIndex = indexRemarks(Remarks);

  std::ostringstream OS;
  TablePrinter T({"site", "location", "op", "access", "msgs", "words",
                  "local", "mean ns", "p50 ns", "p90 ns", "max ns",
                  "remarks"});
  size_t Quiet = 0;
  for (const CommSite &S : Table.sites()) {
    if (static_cast<unsigned>(S.Id) >= Prof.numSites())
      continue; // Module mutated since the profiled run; skip the tail.
    const SiteProfile &P = Prof.site(static_cast<unsigned>(S.Id));
    if (!siteActive(P)) {
      ++Quiet;
      continue;
    }
    std::string Cats;
    if (auto It = RemarkIndex.find(keyOf(S.Fn->name(), S.Loc));
        It != RemarkIndex.end())
      Cats = joinCategories(It->second);
    T.addRow({std::to_string(S.Id), S.Fn->name() + ":" + S.Loc.str(),
              commSiteKindName(S.Kind), S.Desc, std::to_string(P.Msgs),
              std::to_string(P.Words), std::to_string(P.LocalHits),
              TablePrinter::fmt(P.latencyMeanNs(), 0),
              std::to_string(P.latencyPercentileNs(50.0)),
              std::to_string(P.latencyPercentileNs(90.0)),
              std::to_string(P.LatMaxNs), Cats});
  }
  T.print(OS);
  OS << "total: " << Prof.totalMsgs() << " remote messages across "
     << (Table.size() - Quiet) << " active sites (" << Quiet
     << " sites quiet)\n";

  if (Prof.numNodes() > 1) {
    OS << "\ntraffic matrix (words, row = from node, col = to node):\n";
    TablePrinter TM([&] {
      std::vector<std::string> H{"from\\to"};
      for (unsigned N = 0; N != Prof.numNodes(); ++N)
        H.push_back(std::to_string(N));
      return H;
    }());
    for (unsigned From = 0; From != Prof.numNodes(); ++From) {
      std::vector<std::string> Row{std::to_string(From)};
      for (unsigned To = 0; To != Prof.numNodes(); ++To)
        Row.push_back(std::to_string(Prof.trafficWords(From, To)));
      TM.addRow(std::move(Row));
    }
    TM.print(OS);
  }

  // Per-link occupancy exists only on non-ideal topologies (the ideal
  // network has no links to contend for).
  if (!Prof.netLinks().empty()) {
    const double EndNs = Prof.netEndTimeNs();
    OS << "\nnetwork links (topology " << Prof.netTopology() << "):\n";
    TablePrinter TL({"link", "msgs", "words", "busy ns", "util", "max queue"});
    for (const NetLinkStats &L : Prof.netLinks())
      TL.addRow({L.Name, std::to_string(L.Msgs), std::to_string(L.Words),
                 TablePrinter::fmt(L.BusyNs, 0),
                 TablePrinter::fmt(EndNs > 0.0 ? L.BusyNs / EndNs : 0.0, 3),
                 std::to_string(L.MaxQueueDepth)});
    TL.print(OS);
  }
  return OS.str();
}

std::string earthcc::profileReportJson(const Module &M,
                                       const CommProfiler &Prof,
                                       const RemarkStream *Remarks) {
  CommSiteTable Table = buildCommSiteTable(M);
  auto RemarkIndex = indexRemarks(Remarks);

  std::ostringstream OS;
  OS << "{\"version\": " << ProfileJsonVersion << ", \"sites\": [";
  bool First = true;
  for (const CommSite &S : Table.sites()) {
    if (static_cast<unsigned>(S.Id) >= Prof.numSites())
      continue;
    const SiteProfile &P = Prof.site(static_cast<unsigned>(S.Id));
    if (!siteActive(P))
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "{\"site\": " << S.Id << ", \"function\": \""
       << jsonEscape(S.Fn->name()) << "\", \"line\": " << S.Loc.Line
       << ", \"col\": " << S.Loc.Col << ", \"op\": \""
       << commSiteKindName(S.Kind) << "\", \"access\": \""
       << jsonEscape(S.Desc) << "\", \"msgs\": " << P.Msgs
       << ", \"words\": " << P.Words << ", \"local\": " << P.LocalHits
       << ", \"lat_mean_ns\": " << P.latencyMeanNs()
       << ", \"lat_p50_ns\": " << P.latencyPercentileNs(50.0)
       << ", \"lat_p90_ns\": " << P.latencyPercentileNs(90.0)
       << ", \"lat_min_ns\": " << P.LatMinNs
       << ", \"lat_max_ns\": " << P.LatMaxNs << ", \"remarks\": [";
    if (auto It = RemarkIndex.find(keyOf(S.Fn->name(), S.Loc));
        It != RemarkIndex.end()) {
      for (size_t I = 0; I != It->second.size(); ++I)
        OS << (I ? ", " : "") << "\"" << jsonEscape(It->second[I]) << "\"";
    }
    OS << "]}";
  }
  OS << "], \"total_msgs\": " << Prof.totalMsgs() << ", \"traffic_words\": [";
  for (unsigned From = 0; From != Prof.numNodes(); ++From) {
    OS << (From ? ", [" : "[");
    for (unsigned To = 0; To != Prof.numNodes(); ++To)
      OS << (To ? ", " : "") << Prof.trafficWords(From, To);
    OS << "]";
  }
  OS << "]";
  // Per-link utilization and queue depth, present only when the run used a
  // topology with real links (ideal stays byte-identical to the v1 schema).
  if (!Prof.netLinks().empty()) {
    const double EndNs = Prof.netEndTimeNs();
    OS << ", \"network\": {\"topology\": \"" << jsonEscape(Prof.netTopology())
       << "\", \"end_ns\": " << EndNs << ", \"links\": [";
    bool FirstLink = true;
    for (const NetLinkStats &L : Prof.netLinks()) {
      OS << (FirstLink ? "" : ", ") << "{\"name\": \"" << jsonEscape(L.Name)
         << "\", \"msgs\": " << L.Msgs << ", \"words\": " << L.Words
         << ", \"busy_ns\": " << L.BusyNs << ", \"utilization\": "
         << (EndNs > 0.0 ? L.BusyNs / EndNs : 0.0)
         << ", \"max_queue_depth\": " << L.MaxQueueDepth << "}";
      FirstLink = false;
    }
    OS << "]}";
  }
  OS << "}";
  return OS.str();
}
