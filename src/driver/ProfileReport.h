//===- ProfileReport.h - Joined per-site profile report ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-site communication report: one row per comm site of the module,
/// joining the *static* story (what the optimizer did there, from the
/// RemarkStream, keyed by (function, source location)) with the *dynamic*
/// story (message counts, words moved, latency percentiles, from the
/// CommProfiler keyed by site id). This is the "site tsp.c:41 read p->sz:
/// hoisted, pipelined, 2000 msgs, p50 latency 141 ns" view that
/// `earthcc --profile --remarks` prints.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_PROFILEREPORT_H
#define EARTHCC_DRIVER_PROFILEREPORT_H

#include <string>

namespace earthcc {

class Module;
class CommProfiler;
class RemarkStream;

/// Renders the joined per-site report as an aligned text table (active
/// sites only, in site-id order) followed by the per-node traffic matrix.
/// \p Remarks may be null (the remark column is omitted from the join, not
/// the table). The site table is rebuilt from \p M, so the ids match the
/// ones the engines recorded into \p Prof as long as the module has not
/// been mutated since the profiled run.
std::string renderProfileReport(const Module &M, const CommProfiler &Prof,
                                const RemarkStream *Remarks);

/// Schema version stamped into profileReportJson output. Bump on any
/// incompatible change to the field set; driver/ProfileData.h loads this
/// format back and refuses versions it does not understand.
constexpr unsigned ProfileJsonVersion = 1;

/// The same join as one JSON object: {"version": 1, "sites": [...],
/// "total_msgs": N, "traffic_words": [[...]]}. Each site row carries the
/// static identity (function, line, col, op, access), the dynamic numbers,
/// and the set of remark categories attached to its location. Site ids are
/// assigned by simple/CommSites.h as a pure function of the module, so they
/// are stable across runs of the same compiled module; across *different*
/// optimization levels rows must be joined by (function, line, col, op) —
/// see driver/ProfileData.h.
std::string profileReportJson(const Module &M, const CommProfiler &Prof,
                              const RemarkStream *Remarks);

} // namespace earthcc

#endif // EARTHCC_DRIVER_PROFILEREPORT_H
