//===- Request.cpp - Immutable compile/run request values ------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "driver/Request.h"

#include <cstdio>
#include <cstdlib>

using namespace earthcc;

//===----------------------------------------------------------------------===//
// Canonical key serialization
//===----------------------------------------------------------------------===//

namespace {

/// Builds the canonical key bytes: `name=value;` records with doubles at
/// full precision and strings length-prefixed (so no value can forge a
/// field boundary). Field order is fixed by the emitting code and the
/// leading version tag changes whenever the schema does — two keys compare
/// equal iff they were produced by the same schema from identical fields.
class KeyWriter {
public:
  explicit KeyWriter(const char *Tag) { Bytes += std::string(Tag) + ";"; }

  void boolean(const char *Name, bool V) {
    Bytes += std::string(Name) + "=" + (V ? "1" : "0") + ";";
  }
  void integer(const char *Name, uint64_t V) {
    Bytes += std::string(Name) + "=" + std::to_string(V) + ";";
  }
  void real(const char *Name, double V) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Bytes += std::string(Name) + "=" + Buf + ";";
  }
  void text(const char *Name, const std::string &V) {
    Bytes += std::string(Name) + "=" + std::to_string(V.size()) + ":" + V +
             ";";
  }

  std::string take() { return std::move(Bytes); }

private:
  std::string Bytes;
};

} // namespace

uint64_t earthcc::hashKeyBytes(std::string_view Bytes) {
  // FNV-1a, 64-bit.
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string earthcc::keyBytesToHex(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}

CompileRequest CompileRequest::simple(std::string Source) {
  CompileRequest R;
  R.Source = std::move(Source);
  R.Optimize = false;
  return R;
}

CompileRequest CompileRequest::optimized(std::string Source) {
  CompileRequest R;
  R.Source = std::move(Source);
  return R;
}

std::string CompileRequest::keyBytes() const {
  KeyWriter W("earthcc-compile-v1");
  W.boolean("optimize", Optimize);
  W.boolean("locality", InferLocality);
  W.boolean("read-motion", Comm.EnableReadMotion);
  W.boolean("blocking", Comm.EnableBlocking);
  W.boolean("redundancy-elim", Comm.EnableRedundancyElim);
  W.boolean("write-blocking", Comm.EnableWriteBlocking);
  W.boolean("speculative-reads", Comm.SpeculativeReads);
  W.integer("block-threshold", Comm.BlockThresholdWords);
  W.integer("max-overfetch", Comm.MaxBlockOverfetch);
  W.real("loop-freq", Comm.Placement.LoopFrequencyFactor);
  W.boolean("optimistic-cond", Comm.Placement.OptimisticConditionalReads);
  // LowerThreads and PassThreads are intentionally absent: lowering and the
  // placement/selection passes produce bit-identical output at every thread
  // count, so neither can change the artifact.
  W.text("source", Source);
  return W.take();
}

uint64_t CompileRequest::key() const { return hashKeyBytes(keyBytes()); }
std::string CompileRequest::keyHex() const { return keyBytesToHex(key()); }

RunRequest::RunRequest() {
  // Mirror MachineConfig's defaults field by field (including the
  // EARTHCC_FUSE-derived fuse default), so the two surfaces cannot drift.
  MachineConfig MC;
  Engine = MC.Engine;
  Fuse = MC.Fuse;
  Dispatch = MC.Dispatch;
  AllowNullReads = MC.AllowNullReads;
  MaxSteps = MC.MaxSteps;
  EUQuantum = MC.EUQuantum;
  Costs = MC.Costs;
  Topo = MC.Topo;
  NetHopNs = MC.NetHopNs;
  NetLinkWordNs = MC.NetLinkWordNs;
  Dist = MC.Dist;
  DistBlockSize = MC.DistBlockSize;
}

MachineConfig RunRequest::machine() const {
  MachineConfig MC;
  MC.NumNodes = Sequential ? 1 : Nodes;
  MC.Costs = Costs;
  MC.Engine = Engine;
  MC.Fuse = Fuse;
  MC.Dispatch = Dispatch;
  MC.SequentialMode = Sequential;
  MC.AllowNullReads = AllowNullReads;
  MC.MaxSteps = MaxSteps;
  MC.EUQuantum = EUQuantum;
  MC.Topo = Topo;
  MC.NetHopNs = NetHopNs;
  MC.NetLinkWordNs = NetLinkWordNs;
  MC.Dist = Dist;
  MC.DistBlockSize = DistBlockSize;
  MC.Trace = Sink;
  MC.Profiler = Profiler;
  return MC;
}

std::string RunRequest::keyBytes() const {
  KeyWriter W("earthcc-run-v2"); // v2: topology/distribution/net params
  W.text("entry", Entry);
  W.integer("args", Args.size());
  for (const RtValue &A : Args) {
    switch (A.K) {
    case RtValue::Kind::Undef:
      W.text("arg", "undef");
      break;
    case RtValue::Kind::Int:
      W.integer("arg-int", static_cast<uint64_t>(A.I));
      break;
    case RtValue::Kind::Dbl:
      W.real("arg-dbl", A.D);
      break;
    case RtValue::Kind::Ptr:
      W.text("arg-ptr", A.P.str());
      break;
    }
  }
  W.integer("nodes", Sequential ? 1 : Nodes);
  W.boolean("sequential", Sequential);
  // Topology and distribution are keyed because — unlike engine, fuse, and
  // dispatch — they change the *simulated* results: contention reorders
  // completion times and the distribution moves data between owners. The
  // network parameters ride along for the same reason (they only matter on
  // non-ideal topologies, but keying them unconditionally keeps the schema
  // a pure function of the fields).
  W.text("topology", topologyName(Topo));
  W.text("distribution", distributionName(Dist));
  W.real("net-hop", NetHopNs);
  W.real("net-link-word", NetLinkWordNs);
  W.integer("dist-block", DistBlockSize);
  W.integer("engine", static_cast<uint64_t>(Engine));
  W.boolean("fuse", Fuse);
  // Dispatch is intentionally absent: unlike Engine/Fuse (keyed
  // conservatively as part of the artifact's identity), the dispatch loop
  // is a pure host-speed knob on the same bytecode stream — keying it would
  // split the cache between portable and computed-goto builds of the same
  // service fleet.
  W.boolean("null-reads", AllowNullReads);
  W.integer("max-steps", MaxSteps);
  W.integer("quantum", EUQuantum);
  W.real("read-issue", Costs.ReadIssue);
  W.real("write-issue", Costs.WriteIssue);
  W.real("blk-issue", Costs.BlkIssue);
  W.real("net-delay", Costs.NetDelay);
  W.real("su-read", Costs.SUReadService);
  W.real("su-write", Costs.SUWriteService);
  W.real("su-blk", Costs.SUBlkService);
  W.real("su-atomic", Costs.SUAtomicService);
  W.real("per-word", Costs.PerWord);
  W.real("local-fallback", Costs.LocalFallback);
  W.real("local-blk-word", Costs.LocalBlkPerWord);
  W.real("stmt", Costs.StmtCost);
  W.real("copy", Costs.CopyCost);
  W.real("local-access", Costs.LocalAccess);
  W.real("call", Costs.CallCost);
  W.real("return", Costs.ReturnCost);
  W.real("spawn", Costs.SpawnCost);
  W.real("ctx-switch", Costs.CtxSwitch);
  // Sink and Profiler are intentionally absent: instrumentation observes a
  // run without changing its result, so it must not change the cache key.
  return W.take();
}

uint64_t RunRequest::key() const { return hashKeyBytes(keyBytes()); }
std::string RunRequest::keyHex() const { return keyBytesToHex(key()); }

//===----------------------------------------------------------------------===//
// Declarative option table
//===----------------------------------------------------------------------===//

bool earthcc::parseOnOff(const std::string &V, bool &Out) {
  if (V.empty() || V == "on" || V == "true" || V == "1") {
    Out = true;
    return true;
  }
  if (V == "off" || V == "false" || V == "0") {
    Out = false;
    return true;
  }
  return false;
}

namespace {

bool parseUnsignedValue(const std::string &V, unsigned &Out,
                        std::string &Err, const char *What) {
  char *End = nullptr;
  unsigned long N = std::strtoul(V.c_str(), &End, 10);
  if (V.empty() || *End != '\0' || N > 0xFFFFFFFFul) {
    Err = std::string(What) + " expects a non-negative integer, got '" + V +
          "'";
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

bool parseRealValue(const std::string &V, double &Out, std::string &Err,
                    const char *What) {
  char *End = nullptr;
  double D = std::strtod(V.c_str(), &End);
  if (V.empty() || *End != '\0' || !(D >= 0.0)) {
    Err = std::string(What) + " expects a non-negative number, got '" + V +
          "'";
    return false;
  }
  Out = D;
  return true;
}

bool badOnOff(const char *What, const std::string &V, std::string &Err) {
  Err = std::string(What) + " expects on|off, got '" + V + "'";
  return false;
}

} // namespace

const std::vector<RequestOption> &earthcc::requestOptions() {
  static const std::vector<RequestOption> Table = {
      {"nodes", "N", nullptr, "simulated machine size (default 4)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (!parseUnsignedValue(V, R.Nodes, Err, "nodes"))
           return false;
         if (R.Nodes == 0) {
           Err = "nodes must be >= 1";
           return false;
         }
         if (R.Nodes > MaxSimNodes) {
           Err = "nodes must be <= " + std::to_string(MaxSimNodes) +
                 " (got " + V + ")";
           return false;
         }
         return true;
       }},
      {"topology", "ideal|bus|mesh2d|torus2d|fattree", "EARTHCC_TOPOLOGY",
       "interconnect topology (default ideal, the paper's constant-latency "
       "network; others model link contention and CHANGE simulated results)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (parseTopology(V, R.Topo))
           return true;
         Err = "unknown topology '" + V + "' (valid: " +
               std::string(topologyChoices()) + ")";
         return false;
       }},
      {"distribution", "cyclic|block", nullptr,
       "logical-index -> node mapping for @node placement (default cyclic, "
       "the historical index % nodes)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (parseDistribution(V, R.Dist))
           return true;
         Err = "unknown distribution '" + V + "' (valid: " +
               std::string(distributionChoices()) + ")";
         return false;
       }},
      {"net-hop-ns", "NS", nullptr,
       "per-hop link latency of routed topologies in simulated ns "
       "(default 450)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         return parseRealValue(V, R.NetHopNs, Err, "net-hop-ns");
       }},
      {"net-link-word-ns", "NS", nullptr,
       "per-word link occupancy (bandwidth term) of non-ideal links in "
       "simulated ns (default 160)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         return parseRealValue(V, R.NetLinkWordNs, Err, "net-link-word-ns");
       }},
      {"dist-block", "N", nullptr,
       "indices per block for --distribution=block (default 8)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (!parseUnsignedValue(V, R.DistBlockSize, Err, "dist-block"))
           return false;
         if (R.DistBlockSize == 0) {
           Err = "dist-block must be >= 1";
           return false;
         }
         return true;
       }},
      {"engine", "ast|bytecode", nullptr,
       "execution engine (identical simulated results; host speed only)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (V == "ast") {
           R.Engine = ExecEngine::AST;
           return true;
         }
         if (V == "bytecode") {
           R.Engine = ExecEngine::Bytecode;
           return true;
         }
         Err = "unknown engine '" + V + "' (ast|bytecode)";
         return false;
       }},
      {"fuse", "on|off", "EARTHCC_FUSE",
       "superinstruction fusion in the bytecode engine (default on)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         return parseOnOff(V, R.Fuse) ? true : badOnOff("fuse", V, Err);
       }},
      {"dispatch", "goto|switch", "EARTHCC_DISPATCH",
       "bytecode inner-loop dispatch (default goto where the build has "
       "computed goto; identical simulated results)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (V == "goto") {
           R.Dispatch = BcDispatch::ComputedGoto;
           return true;
         }
         if (V == "switch") {
           R.Dispatch = BcDispatch::Switch;
           return true;
         }
         Err = "unknown dispatch '" + V + "' (goto|switch)";
         return false;
       }},
      {"lower-threads", "N", nullptr,
       "bytecode-lowering worker threads (0 = all hardware; output is "
       "identical)",
       [](CompileRequest &C, RunRequest &, const std::string &V,
          std::string &Err) {
         return parseUnsignedValue(V, C.LowerThreads, Err, "lower-threads");
       }},
      {"pass-threads", "N", "EARTHCC_PASS_THREADS",
       "placement/comm-select worker threads, one function per task (0 = "
       "all hardware; output is identical)",
       [](CompileRequest &C, RunRequest &, const std::string &V,
          std::string &Err) {
         return parseUnsignedValue(V, C.PassThreads, Err, "pass-threads");
       }},
      {"no-opt", nullptr, nullptr, "disable the communication optimization",
       [](CompileRequest &C, RunRequest &, const std::string &V,
          std::string &Err) {
         bool On;
         if (!parseOnOff(V, On))
           return badOnOff("no-opt", V, Err);
         C.Optimize = !On;
         return true;
       }},
      {"locality", nullptr, nullptr,
       "run locality inference before optimization",
       [](CompileRequest &C, RunRequest &, const std::string &V,
          std::string &Err) {
         return parseOnOff(V, C.InferLocality)
                    ? true
                    : badOnOff("locality", V, Err);
       }},
      {"seq", nullptr, nullptr,
       "sequential-C baseline (1 node, no EARTH operations, no "
       "optimization)",
       [](CompileRequest &C, RunRequest &R, const std::string &V,
          std::string &Err) {
         bool On;
         if (!parseOnOff(V, On))
           return badOnOff("seq", V, Err);
         R.Sequential = On;
         if (On) {
           C.Optimize = false;
           C.InferLocality = false;
         }
         return true;
       }},
      {"threshold", "W", nullptr,
       "blocking threshold in words (default 3, the paper's crossover)",
       [](CompileRequest &C, RunRequest &, const std::string &V,
          std::string &Err) {
         return parseUnsignedValue(V, C.Comm.BlockThresholdWords, Err,
                                   "threshold");
       }},
      {"entry", "NAME", nullptr, "entry function (default main)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         if (V.empty()) {
           Err = "entry expects a function name";
           return false;
         }
         R.Entry = V;
         return true;
       }},
      {"quantum", "N", nullptr,
       "EU scheduling quantum in interpreter steps (0 disables preemption)",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         return parseUnsignedValue(V, R.EUQuantum, Err, "quantum");
       }},
      {"max-steps", "N", nullptr, "interpreter fuel",
       [](CompileRequest &, RunRequest &R, const std::string &V,
          std::string &Err) {
         char *End = nullptr;
         unsigned long long N = std::strtoull(V.c_str(), &End, 10);
         if (V.empty() || *End != '\0') {
           Err = "max-steps expects a non-negative integer, got '" + V + "'";
           return false;
         }
         R.MaxSteps = N;
         return true;
       }},
  };
  return Table;
}

bool earthcc::applyRequestOption(CompileRequest &C, RunRequest &R,
                                 std::string_view Name,
                                 const std::string &Value, std::string &Err) {
  for (const RequestOption &O : requestOptions())
    if (Name == O.Name)
      return O.Apply(C, R, Value, Err);
  Err = "unknown option '" + std::string(Name) + "'";
  return false;
}

bool earthcc::applyRequestEnv(CompileRequest &C, RunRequest &R,
                              std::string &Err) {
  for (const RequestOption &O : requestOptions()) {
    if (!O.Env)
      continue;
    const char *V = std::getenv(O.Env);
    if (!V)
      continue;
    std::string EnvErr;
    if (!O.Apply(C, R, V, EnvErr)) {
      Err = std::string(O.Env) + ": " + EnvErr;
      return false;
    }
  }
  return true;
}
