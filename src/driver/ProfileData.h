//===- ProfileData.h - Persisted comm-profile load/save/diff ----*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persisted form of the joined per-site communication report. `earthcc
/// --profile=json` (driver/ProfileReport.h) emits a versioned JSON document;
/// this file loads it back into a structured ProfileData, re-serializes it
/// canonically, and diffs two documents site by site — the audit instrument
/// the ROADMAP's profile-guided placement item needs before any profile can
/// be fed back into compilation.
///
/// Round-trip contract: saveProfileJson() is a pure function of the loaded
/// data with one canonical number encoding (the json::Value writer), so
/// save(load(S)) is byte-stable once a document has passed through it. The
/// original --profile=json bytes may differ only in number formatting
/// (stream precision vs %.17g); the *values* are preserved exactly.
///
/// Diff join key: site ids are stable for one compiled module but different
/// optimization levels produce different site sets (hoisting and blocking
/// rewrite the comm statements), so rows are joined by (function, line,
/// col, op) — the same identity the remark join uses — and per-key
/// aggregates are diffed.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_PROFILEDATA_H
#define EARTHCC_DRIVER_PROFILEDATA_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace earthcc {

/// One persisted site row (mirrors the profileReportJson site object).
struct ProfileSiteRow {
  int64_t Site = 0;
  std::string Function;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Op;
  std::string Access;
  uint64_t Msgs = 0;
  uint64_t Words = 0;
  uint64_t Local = 0;
  double LatMeanNs = 0.0;
  uint64_t LatP50Ns = 0;
  uint64_t LatP90Ns = 0;
  uint64_t LatMinNs = 0;
  uint64_t LatMaxNs = 0;
  std::vector<std::string> Remarks;
};

/// One persisted network-link row (present only for non-ideal topologies).
struct ProfileLinkRow {
  std::string Name;
  uint64_t Msgs = 0;
  uint64_t Words = 0;
  double BusyNs = 0.0;
  double Utilization = 0.0;
  unsigned MaxQueueDepth = 0;
};

/// A loaded --profile=json document.
struct ProfileData {
  unsigned Version = 1;
  std::vector<ProfileSiteRow> Sites;
  uint64_t TotalMsgs = 0;
  std::vector<std::vector<uint64_t>> TrafficWords;
  bool HasNetwork = false;
  std::string NetTopology;
  double NetEndNs = 0.0;
  std::vector<ProfileLinkRow> Links;
};

/// Parses \p Text (a --profile=json document). Returns false with \p Err
/// set on malformed JSON, a missing required field, or an unsupported
/// schema version. A document without a "version" field is accepted as
/// version 1 (pre-versioning emitters).
bool loadProfileJson(std::string_view Text, ProfileData &Out,
                     std::string &Err);

/// Serializes \p P in the profileReportJson field order with the canonical
/// json::Value number encoding. save(load(S)) is byte-stable.
std::string saveProfileJson(const ProfileData &P);

/// Renders an aligned per-site delta table between two profiles: msgs,
/// words, local hits and latency (p50/mean) per (function, line, col, op),
/// joined with the remark categories of both sides, followed by totals and
/// — when either side ran on a non-ideal topology — per-link busy-ns
/// deltas. Rows are sorted by the join key, so equal inputs give equal
/// output.
std::string renderProfileDiff(const ProfileData &A, const ProfileData &B,
                              const std::string &NameA = "A",
                              const std::string &NameB = "B");

} // namespace earthcc

#endif // EARTHCC_DRIVER_PROFILEDATA_H
