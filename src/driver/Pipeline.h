//===- Pipeline.h - The earthcc driver API ----------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver as an object: a Pipeline owns one configuration, compiles
/// EARTH-C source through named stages (simplify -> verify -> [locality] ->
/// [comm-select]) and runs compiled modules on simulated machines. It
/// replaces the three ad-hoc plumbing paths (free driver functions, the
/// bench harnesses' hand-rolled option wiring, earthcc_main) with one API:
///
///   Pipeline P(PipelineOptions::optimized());
///   CompileResult CR = P.compile(Source);       // once
///   RunResult R4 = P.run(*CR.M, machine(4));    // run N times, no recompile
///   RunResult R8 = P.run(*CR.M, machine(8));
///
/// Observability hangs off the same object:
///
///  - setTraceSink() attaches a TraceSink; compile stages emit wall-clock
///    pass-duration events (with per-stage counters as args), and every run
///    forwards the sink into the interpreter, which emits the per-node
///    split-phase/blkmov/sync event stream in simulated time.
///
///  - addObserver() registers a PipelineObserver for structured callbacks:
///    per-stage reports (wall time + stage-local Statistics) and per-run
///    results. IRDumpObserver is the canonical example — it prints the
///    SIMPLE module after every stage ("dump IR after pass").
///
/// The preferred way to describe work is the request API in
/// driver/Request.h: an immutable, hashable CompileRequest/RunRequest pair
/// with a canonical serialization (the CompileService's cache key).
/// compile() and run() accept requests directly; the PipelineOptions /
/// MachineConfig overloads remain for callers that wire knobs by hand.
/// The last legacy free function (compileAndRun) lives in Driver.h as a
/// documented deprecated shim.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_DRIVER_PIPELINE_H
#define EARTHCC_DRIVER_PIPELINE_H

#include "driver/Request.h"
#include "interp/Interp.h"
#include "simple/Function.h"
#include "support/Remark.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <chrono>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace earthcc {

/// The merged pipeline configuration: every communication-selection knob
/// (inherited flat from CommOptions, e.g. Opts.BlockThresholdWords) plus
/// the phase toggles. The presets mirror the paper's two program versions;
/// a CompileRequest converts directly, so request-driven and hand-wired
/// callers share one configuration type.
struct PipelineOptions : CommOptions {
  bool Optimize = true; ///< Run the communication optimization (Phase II).
  /// Run locality inference first (downgrades pseudo-remote accesses whose
  /// functions are always invoked at the data's owner). Off by default to
  /// match the paper's "simple vs optimized" experiment, where locality
  /// handling is orthogonal prior work.
  bool InferLocality = false;
  /// Worker threads for the per-function bytecode lowering stage: 1 lowers
  /// serially on the caller's thread, 0 uses the host's hardware
  /// concurrency, N uses N workers. Output is bit-identical at every
  /// setting (see lowerModule); this is purely a host wall-clock knob.
  unsigned LowerThreads = 1;
  /// Worker threads for the placement and comm-select stages, fanned out
  /// one function per task (same convention as LowerThreads: 1 = serial,
  /// 0 = all hardware). Output — module, remarks, comm profiles — is
  /// bit-identical at every setting (see CommAnalysis /
  /// selectModuleCommunication); purely a host wall-clock knob.
  unsigned PassThreads = 1;

  PipelineOptions() = default;
  /// The compile-side knobs of \p Req as a pipeline configuration (the
  /// request's Source is not carried — pass it to compile()).
  PipelineOptions(const CompileRequest &Req)
      : CommOptions(Req.Comm), Optimize(Req.Optimize),
        InferLocality(Req.InferLocality), LowerThreads(Req.LowerThreads),
        PassThreads(Req.PassThreads) {}

  /// The paper's "simple" program version: no communication optimization.
  static PipelineOptions simple() {
    PipelineOptions O;
    O.Optimize = false;
    return O;
  }
  /// The paper's "optimized" version: full communication selection.
  static PipelineOptions optimized() { return PipelineOptions(); }

  /// This options object viewed as the communication-selection policy.
  const CommOptions &comm() const { return *this; }
};

/// Outcome of a compilation.
struct CompileResult {
  bool OK = false;
  std::unique_ptr<Module> M;
  Statistics Stats;     ///< Pass counters (select.* keys).
  std::string Messages; ///< Diagnostics / verifier errors when !OK.
  /// Structured optimization remarks from the placement analysis and the
  /// communication-selection transform, in emission order (a stage product
  /// of the "comm-select" stage; empty when optimization is off).
  RemarkStream Remarks;
};

/// What one pipeline stage did: its name, host wall time, and the counters
/// it incremented (stage-local; Pipeline merges them into the compilation
/// total).
struct StageReport {
  std::string Name;
  double WallNs = 0.0;
  Statistics Counters;
};

/// Callbacks around pipeline activity. All hooks default to no-ops;
/// observers are non-owning and must outlive the Pipeline's use of them.
class PipelineObserver {
public:
  virtual ~PipelineObserver();
  /// \p M is the module so far (null for the first stage, which creates it).
  virtual void stageStarted(const std::string &Name, const Module *M);
  virtual void stageFinished(const StageReport &Report, const Module *M);
  virtual void runFinished(const RunResult &Result, const MachineConfig &MC);
};

/// Prints the SIMPLE module after each stage — the classic
/// -print-after-all debugging hook.
class IRDumpObserver : public PipelineObserver {
public:
  explicit IRDumpObserver(std::ostream &OS) : OS(OS) {}
  void stageFinished(const StageReport &Report, const Module *M) override;

private:
  std::ostream &OS;
};

/// The driver object. Cheap to construct; holds no compilation state other
/// than the reports of the most recent compile().
class Pipeline {
public:
  Pipeline() = default;
  explicit Pipeline(const PipelineOptions &Opts) : Opts(Opts) {}

  PipelineOptions &options() { return Opts; }
  const PipelineOptions &options() const { return Opts; }

  /// Registers \p O (non-owning) for stage/run callbacks.
  Pipeline &addObserver(PipelineObserver *O) {
    Observers.push_back(O);
    return *this;
  }

  /// Attaches \p S (non-owning, may be null to detach): compile stages emit
  /// pass-duration events, and runs forward the sink to the interpreter
  /// unless the MachineConfig already carries one.
  Pipeline &setTraceSink(TraceSink *S) {
    Sink = S;
    return *this;
  }
  TraceSink *traceSink() const { return Sink; }

  /// Compiles EARTH-C source into a verified (and, per options, optimized)
  /// module. Stage reports are retained and queryable via stages().
  CompileResult compile(const std::string &Source);

  /// Compiles \p Req. The request *is* the configuration: this pipeline's
  /// options are replaced by the request's compile-side knobs first, so the
  /// produced artifact is a pure function of the request value — the
  /// property the CompileService's content-addressed cache relies on.
  CompileResult compile(const CompileRequest &Req);

  /// Runs a previously compiled module on \p MC — compile once, run at any
  /// number of machine configurations without touching source text again.
  RunResult run(const Module &M, const MachineConfig &MC,
                const std::string &Entry = "main",
                const std::vector<RtValue> &Args = {});

  /// Runs \p M as described by \p Req (machine shape, engine, entry, args;
  /// Req.Sink / Req.Profiler are forwarded as the run's instrumentation).
  RunResult run(const Module &M, const RunRequest &Req);

  /// Convenience: request-driven run of a CompileResult.
  RunResult run(const CompileResult &CR, const RunRequest &Req);

  /// Convenience: run a CompileResult, turning a compile failure into a
  /// failed RunResult carrying the diagnostics.
  RunResult run(const CompileResult &CR, const MachineConfig &MC,
                const std::string &Entry = "main",
                const std::vector<RtValue> &Args = {});

  /// compile() + run() in one step.
  RunResult compileAndRun(const std::string &Source, const MachineConfig &MC,
                          const std::string &Entry = "main",
                          const std::vector<RtValue> &Args = {});

  /// Emits Threaded-C for \p M as a named, timed, observed "codegen" stage.
  /// The emitter consumes the memoized "lower" stage product
  /// (getOrLowerBytecode): after compile() the bytecode is already cached on
  /// the module, so codegen re-reads the exact streams the simulator
  /// executes — slot numbering in the emitted program and in the engines
  /// cannot diverge. The stage is appended to stages() (and traced like any
  /// compile stage), so `--stats`/`--trace` cover codegen too.
  std::string emitThreadedC(const Module &M);

  /// Reports for the most recent compile(), in execution order.
  const std::vector<StageReport> &stages() const { return Stages; }

private:
  template <typename ModuleGetter, typename BodyFn>
  bool runStageOn(const char *Name, ModuleGetter &&GetM,
                  Statistics *MergeInto, BodyFn &&Body);
  template <typename BodyFn>
  bool runStage(const char *Name, CompileResult &R, BodyFn &&Body);

  PipelineOptions Opts;
  TraceSink *Sink = nullptr;
  std::vector<PipelineObserver *> Observers;
  std::vector<StageReport> Stages;
  /// Zero point for pass-event timestamps; set by the first traced stage so
  /// successive compiles through one Pipeline share a monotonic timeline.
  std::chrono::steady_clock::time_point WallBase{};
};

} // namespace earthcc

#endif // EARTHCC_DRIVER_PIPELINE_H
