//===- CompileService.cpp - Persistent compile+simulate server -------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "driver/ProfileReport.h"
#include "support/CommProfiler.h"

#include <exception>
#include <utility>

using namespace earthcc;

namespace {

/// Approximate resident footprint of a compiled artifact. The module's AST
/// and memoized bytecode are not directly measurable, so they are estimated
/// from the source size (SIMPLE stays within a small constant factor of the
/// surface program); the text products are exact.
size_t approxBytes(const CompiledArtifact &A, const CompileRequest &Req) {
  size_t B = sizeof(CompiledArtifact) + 512;
  B += A.Messages.size() + A.ThreadedC.size();
  if (A.M)
    B += Req.Source.size() * 8;
  return B;
}

size_t approxBytes(const SimArtifact &A) {
  size_t B = sizeof(SimArtifact) + 256;
  B += A.Error.size() + A.ProfileJson.size();
  for (const std::string &Line : A.Output)
    B += Line.size() + sizeof(std::string);
  B += A.WordsPerNode.size() * sizeof(size_t);
  return B;
}

/// The content address of one (compile, run) request pair: both canonical
/// serializations joined with a separator neither can contain unescaped at
/// record position (keyBytes records are `name=value;` with a version tag
/// first, so a 0x1F byte never starts a record).
std::string combinedKeyBytes(const std::string &CKey, const std::string &RKey) {
  std::string K;
  K.reserve(CKey.size() + 1 + RKey.size());
  K += CKey;
  K += '\x1f';
  K += RKey;
  return K;
}

} // namespace

CompileService::CompileService(ServiceConfig Config)
    : Cfg(Config),
      OwnedReg(Config.Metrics ? nullptr : new MetricsRegistry()),
      Reg(Config.Metrics ? Config.Metrics : OwnedReg.get()),
      Epoch(std::chrono::steady_clock::now()), Pool(Config.Workers) {
  // Registry-backed counters replacing the old ServiceStats fields. The
  // request total is derived (hit + wait + miss), never double-counted.
  CompileHits =
      Reg->counter("svc.requests", {{"op", "compile"}, {"outcome", "hit"}});
  CompileWaits =
      Reg->counter("svc.requests", {{"op", "compile"}, {"outcome", "wait"}});
  CompileExecs =
      Reg->counter("svc.requests", {{"op", "compile"}, {"outcome", "miss"}});
  RunHits = Reg->counter("svc.requests", {{"op", "run"}, {"outcome", "hit"}});
  RunWaits =
      Reg->counter("svc.requests", {{"op", "run"}, {"outcome", "wait"}});
  RunExecs =
      Reg->counter("svc.requests", {{"op", "run"}, {"outcome", "miss"}});
  EvictionCount = Reg->counter("svc.evictions");
  CacheBytesGauge = Reg->gauge("svc.cache_bytes");
  CacheEntriesGauge = Reg->gauge("svc.cache_entries");
  QueueDepthGauge = Reg->gauge("svc.queue_depth");
  CompileReqNs[0] = Reg->histogram(
      "svc.request_ns", {{"op", "compile"}, {"outcome", "miss"}});
  CompileReqNs[1] = Reg->histogram("svc.request_ns",
                                   {{"op", "compile"}, {"outcome", "hit"}});
  RunReqNs[0] =
      Reg->histogram("svc.request_ns", {{"op", "run"}, {"outcome", "miss"}});
  RunReqNs[1] =
      Reg->histogram("svc.request_ns", {{"op", "run"}, {"outcome", "hit"}});
}

CompileService::~CompileService() {
  // ThreadPool's destructor (it is the last member, destroyed first) lets
  // the workers drain the queue before joining, so every pending future and
  // callback completes while the caches are still alive.
}

double CompileService::nowNs() const {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

//===----------------------------------------------------------------------===//
// Submission
//===----------------------------------------------------------------------===//

// Queue depth counts submitted-but-unfinished requests (queued + running):
// +1 at submission, -1 when the handler's completion has been delivered.

std::future<CompileResponse> CompileService::submitCompile(CompileRequest Req) {
  auto Prom = std::make_shared<std::promise<CompileResponse>>();
  std::future<CompileResponse> Fut = Prom->get_future();
  QueueDepthGauge.add(1);
  Pool.run([this, Req = std::move(Req), Prom]() mutable {
    Prom->set_value(handleCompile(Req));
    QueueDepthGauge.add(-1);
  });
  return Fut;
}

void CompileService::submitCompile(CompileRequest Req,
                                   std::function<void(CompileResponse)> Done) {
  QueueDepthGauge.add(1);
  Pool.run([this, Req = std::move(Req), Done = std::move(Done)]() mutable {
    Done(handleCompile(Req));
    QueueDepthGauge.add(-1);
  });
}

std::future<RunResponse> CompileService::submitRun(CompileRequest CReq,
                                                   RunRequest RReq) {
  auto Prom = std::make_shared<std::promise<RunResponse>>();
  std::future<RunResponse> Fut = Prom->get_future();
  QueueDepthGauge.add(1);
  Pool.run(
      [this, CReq = std::move(CReq), RReq = std::move(RReq), Prom]() mutable {
        Prom->set_value(handleRun(CReq, RReq));
        QueueDepthGauge.add(-1);
      });
  return Fut;
}

void CompileService::submitRun(CompileRequest CReq, RunRequest RReq,
                               std::function<void(RunResponse)> Done) {
  QueueDepthGauge.add(1);
  Pool.run([this, CReq = std::move(CReq), RReq = std::move(RReq),
            Done = std::move(Done)]() mutable {
    Done(handleRun(CReq, RReq));
    QueueDepthGauge.add(-1);
  });
}

//===----------------------------------------------------------------------===//
// Request handlers (run on pool workers)
//===----------------------------------------------------------------------===//

CompileResponse CompileService::handleCompile(const CompileRequest &Req) {
  double Start = nowNs();
  CompileResponse Resp;
  Resp.Key = Req.keyHex();
  bool Hit = false;
  std::shared_ptr<const CompiledArtifact> Art = getOrCompile(Req, Hit);
  Resp.OK = Art->OK;
  Resp.Messages = Art->Messages;
  Resp.CacheHit = Hit;
  Resp.Artifact = std::move(Art);
  Resp.WallNs = nowNs() - Start;
  CompileReqNs[Hit].observe(
      Resp.WallNs <= 0 ? 0 : static_cast<uint64_t>(Resp.WallNs));
  traceRequest("compile", Resp.Key, Hit, Start, Resp.WallNs);
  return Resp;
}

RunResponse CompileService::handleRun(const CompileRequest &CReq,
                                      const RunRequest &RReq) {
  double Start = nowNs();
  RunResponse Resp;
  bool Hit = false, CompileHit = false;
  std::shared_ptr<const CompiledArtifact> Art;
  std::shared_ptr<const SimArtifact> Sim =
      getOrRun(CReq, RReq, Hit, CompileHit, Art);
  Resp.OK = Sim->OK;
  Resp.Error = Sim->Error;
  Resp.Key = Sim->KeyHex;
  Resp.CompileKey = Art ? Art->KeyHex : CReq.keyHex();
  Resp.CacheHit = Hit;
  Resp.CompileCacheHit = CompileHit;
  Resp.Sim = std::move(Sim);
  Resp.Artifact = std::move(Art);
  Resp.WallNs = nowNs() - Start;
  RunReqNs[Hit].observe(Resp.WallNs <= 0 ? 0
                                         : static_cast<uint64_t>(Resp.WallNs));
  traceRequest("run", Resp.Key, Hit, Start, Resp.WallNs);
  return Resp;
}

//===----------------------------------------------------------------------===//
// Single-flight content-addressed lookup
//===----------------------------------------------------------------------===//
//
// The locking protocol, shared by both artifact classes:
//
//   1. Under the mutex, look up the request's canonical key bytes. A hit on
//      a Done slot is a cache hit; a hit on a pending slot makes us a
//      waiter on its shared future; a miss installs a new pending slot
//      whose future we own.
//   2. Outside the mutex, waiters block on the future. The owner computes
//      the artifact (the expensive part — parsing, passes, lowering,
//      codegen, or a full simulation), fulfills the promise, then
//      re-enters the mutex to publish: mark the slot Done, account its
//      bytes, and run LRU eviction.
//
// Owners always compute inline in their own already-running pool task — a
// slot can only exist because some task installed it while executing — so
// a waiter's future is fulfilled no matter how small the pool is: the
// dependency chain (run waiter -> run owner -> compile owner) only ever
// points at tasks that are currently on a worker, never at queued work.

std::shared_ptr<const CompiledArtifact>
CompileService::getOrCompile(const CompileRequest &Req, bool &Hit) {
  using ArtPtr = std::shared_ptr<const CompiledArtifact>;
  const std::string KeyBytes = Req.keyBytes();
  std::promise<ArtPtr> Promise;
  std::shared_future<ArtPtr> Fut;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Compiles.find(KeyBytes);
    if (It != Compiles.end()) {
      It->second.LastUse = ++Clock;
      // A completed artifact and an in-flight join both count as "served
      // without executing" to the caller; the counters split them.
      Hit = true;
      (It->second.Done ? CompileHits : CompileWaits).inc();
      Fut = It->second.Fut;
    } else {
      Owner = true;
      Hit = false;
      CompileExecs.inc();
      Slot<CompiledArtifact> S;
      S.Fut = Promise.get_future().share();
      S.LastUse = ++Clock;
      Fut = S.Fut;
      Compiles.emplace(KeyBytes, std::move(S));
    }
  }
  if (!Owner)
    return Fut.get();

  auto Art = std::make_shared<CompiledArtifact>();
  Art->KeyHex = Req.keyHex();
  try {
    Pipeline P;
    CompileResult CR = P.compile(Req);
    Art->OK = CR.OK;
    Art->Messages = std::move(CR.Messages);
    Art->Stats = std::move(CR.Stats);
    Art->Remarks = std::move(CR.Remarks);
    if (CR.OK && Cfg.EmitThreadedC)
      Art->ThreadedC = P.emitThreadedC(*CR.M);
    Art->Stages = P.stages();
    Art->M = std::move(CR.M);
  } catch (const std::exception &E) {
    Art->OK = false;
    Art->M = nullptr;
    Art->Messages = std::string("internal error: ") + E.what();
  }
  Art->Bytes = approxBytes(*Art, Req);
  Promise.set_value(Art);
  publish(Compiles, KeyBytes, Art->Bytes);
  return Art;
}

std::shared_ptr<const SimArtifact>
CompileService::getOrRun(const CompileRequest &CReq, const RunRequest &RReq,
                         bool &Hit, bool &CompileHit,
                         std::shared_ptr<const CompiledArtifact> &Art) {
  using SimPtr = std::shared_ptr<const SimArtifact>;

  // The compiled artifact first: usually a hit, and the response wants it
  // regardless of whether the simulated result is cached.
  Art = getOrCompile(CReq, CompileHit);

  const std::string KeyBytes =
      combinedKeyBytes(CReq.keyBytes(), RReq.keyBytes());
  std::promise<SimPtr> Promise;
  std::shared_future<SimPtr> Fut;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Runs.find(KeyBytes);
    if (It != Runs.end()) {
      It->second.LastUse = ++Clock;
      Hit = true; // completed or in-flight: served without executing
      (It->second.Done ? RunHits : RunWaits).inc();
      Fut = It->second.Fut;
    } else {
      Owner = true;
      Hit = false;
      RunExecs.inc();
      Slot<SimArtifact> S;
      S.Fut = Promise.get_future().share();
      S.LastUse = ++Clock;
      Fut = S.Fut;
      Runs.emplace(KeyBytes, std::move(S));
    }
  }
  if (!Owner)
    return Fut.get();

  auto Sim = std::make_shared<SimArtifact>();
  Sim->KeyHex = keyBytesToHex(hashKeyBytes(KeyBytes));
  try {
    if (!Art->OK || !Art->M) {
      Sim->OK = false;
      Sim->Error = Art->Messages.empty() ? "compilation failed"
                                         : Art->Messages;
    } else {
      MachineConfig MC = RReq.machine();
      // The service owns profiling so the per-site report can be cached
      // with the result; a caller-supplied profiler would go stale on
      // every cache hit, so it is overridden here. The caller's trace
      // sink (MC.Trace, from the request) still sees the fresh run.
      CommProfiler Prof;
      MC.Profiler = &Prof;
      RunResult R = runProgram(*Art->M, MC, RReq.Entry, RReq.Args);
      Sim->OK = R.OK;
      Sim->Error = std::move(R.Error);
      Sim->TimeNs = R.TimeNs;
      Sim->ExitValue = R.ExitValue;
      Sim->Counters = R.Counters;
      Sim->StepsExecuted = R.StepsExecuted;
      Sim->Output = std::move(R.Output);
      Sim->WordsPerNode = std::move(R.WordsPerNode);
      if (R.OK)
        Sim->ProfileJson = profileReportJson(*Art->M, Prof, &Art->Remarks);
    }
  } catch (const std::exception &E) {
    Sim->OK = false;
    Sim->Error = std::string("internal error: ") + E.what();
  }
  Sim->Bytes = approxBytes(*Sim);
  Promise.set_value(Sim);
  publish(Runs, KeyBytes, Sim->Bytes);
  return Sim;
}

//===----------------------------------------------------------------------===//
// Cache accounting and eviction
//===----------------------------------------------------------------------===//

template <typename T>
void CompileService::publish(std::unordered_map<std::string, Slot<T>> &Map,
                             const std::string &KeyBytes, size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(KeyBytes);
  if (It == Map.end())
    return; // Evicted while computing (tiny budget): holders keep the ptr.
  It->second.Done = true;
  It->second.Bytes = Bytes;
  It->second.LastUse = ++Clock;
  CacheBytes += Bytes;
  CacheEntriesGauge.add(1);
  evictLocked(KeyBytes);
  CacheBytesGauge.set(static_cast<int64_t>(CacheBytes));
}

void CompileService::evictLocked(const std::string &Protect) {
  // Evict the least-recently-used *completed* artifact until the budget
  // holds. Pending slots are never evicted (their owner is mid-compute),
  // and neither is the just-published/most-recent entry, so one hot
  // request stays cached under any budget. Erasing a slot drops the map's
  // reference only — requests already holding the shared_ptr are safe.
  for (;;) {
    if (CacheBytes <= Cfg.CacheBudgetBytes)
      return;
    uint64_t Oldest = UINT64_MAX;
    bool InCompiles = false;
    const std::string *Victim = nullptr;
    for (auto &KV : Compiles)
      if (KV.second.Done && KV.first != Protect &&
          KV.second.LastUse < Oldest) {
        Oldest = KV.second.LastUse;
        Victim = &KV.first;
        InCompiles = true;
      }
    for (auto &KV : Runs)
      if (KV.second.Done && KV.first != Protect &&
          KV.second.LastUse < Oldest) {
        Oldest = KV.second.LastUse;
        Victim = &KV.first;
        InCompiles = false;
      }
    if (!Victim)
      return; // Nothing evictable left.
    if (InCompiles) {
      CacheBytes -= Compiles.find(*Victim)->second.Bytes;
      Compiles.erase(*Victim);
    } else {
      CacheBytes -= Runs.find(*Victim)->second.Bytes;
      Runs.erase(*Victim);
    }
    EvictionCount.inc();
    CacheEntriesGauge.add(-1);
  }
}

ServiceStats CompileService::stats() const {
  // A view over the registry instruments. The mutex still serializes
  // against publish/evict so CacheBytes and the entry scan are coherent;
  // the counters themselves are monotonic and lock-free.
  std::lock_guard<std::mutex> Lock(Mu);
  ServiceStats S;
  S.CompileHits = CompileHits.value();
  S.CompileWaits = CompileWaits.value();
  S.CompileExecutions = CompileExecs.value();
  S.CompileRequests = S.CompileHits + S.CompileWaits + S.CompileExecutions;
  S.RunHits = RunHits.value();
  S.RunWaits = RunWaits.value();
  S.RunExecutions = RunExecs.value();
  S.RunRequests = S.RunHits + S.RunWaits + S.RunExecutions;
  S.Evictions = EvictionCount.value();
  S.CacheBytes = CacheBytes;
  size_t Entries = 0;
  for (const auto &KV : Compiles)
    Entries += KV.second.Done;
  for (const auto &KV : Runs)
    Entries += KV.second.Done;
  S.CacheEntries = Entries;
  return S;
}

void CompileService::traceRequest(const char *What, const std::string &KeyHex,
                                  bool Hit, double StartNs, double WallNs) {
  if (!Cfg.Trace)
    return;
  TraceEvent E;
  E.Name = std::string("svc:") + What;
  E.Cat = "service";
  E.Ph = 'X';
  E.TsNs = StartNs;
  E.DurNs = WallNs;
  E.Pid = 0;
  E.Tid = TraceTidPass;
  E.Args.emplace_back("key", KeyHex);
  E.Args.emplace_back("hit", unsigned(Hit));
  std::lock_guard<std::mutex> Lock(Mu);
  Cfg.Trace->event(E);
}
