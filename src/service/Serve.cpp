//===- Serve.cpp - Line-oriented JSON protocol over CompileService ---------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "service/Serve.h"

#include "support/Json.h"
#include "workloads/Workloads.h"

#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

using namespace earthcc;

namespace {

/// Field names handled by the loop itself rather than the option table.
bool isProtocolField(std::string_view Name) {
  return Name == "id" || Name == "op" || Name == "source" ||
         Name == "workload" || Name == "size" || Name == "args" ||
         Name == "profile" || Name == "threaded_c";
}

/// A JSON scalar as the option table's textual value form: strings pass
/// through, numbers print in decimal, booleans map to on/off (the table's
/// boolean spelling). Containers are rejected.
bool scalarToOptionValue(const json::Value &V, std::string &Out,
                         std::string &Err) {
  switch (V.kind()) {
  case json::Value::Kind::String:
    Out = V.asString();
    return true;
  case json::Value::Kind::Number: {
    Out = json::Value::number(V.asNumber()).str();
    return true;
  }
  case json::Value::Kind::Bool:
    Out = V.asBool() ? "on" : "off";
    return true;
  default:
    Err = "option value must be a string, number or boolean";
    return false;
  }
}

/// Builds the request pair for one protocol object: base requests (CLI +
/// environment defaults) with the object's option fields applied through
/// the shared table.
bool buildRequests(const json::Value &Obj, const ServeOptions &Opts,
                   CompileRequest &C, RunRequest &R, std::string &Err) {
  C = Opts.BaseCompile;
  R = Opts.BaseRun;

  // Source: inline text or a named workload.
  const json::Value *Source = Obj.find("source");
  const json::Value *WorkloadName = Obj.find("workload");
  if (Source && WorkloadName) {
    Err = "request has both \"source\" and \"workload\"";
    return false;
  }
  if (Source) {
    if (!Source->isString()) {
      Err = "\"source\" must be a string";
      return false;
    }
    C.Source = Source->asString();
  } else if (WorkloadName) {
    if (!WorkloadName->isString()) {
      Err = "\"workload\" must be a string";
      return false;
    }
    const Workload *W = findWorkload(WorkloadName->asString());
    if (!W) {
      Err = "unknown workload \"" + WorkloadName->asString() + "\"";
      return false;
    }
    std::string Size = Obj.getString("size", "small");
    if (Size == "small")
      C.Source = W->smallSource();
    else if (Size == "full")
      C.Source = W->Source;
    else {
      Err = "\"size\" must be \"small\" or \"full\"";
      return false;
    }
  }

  // Option fields through the shared declarative table.
  for (const json::Member &M : Obj.members()) {
    if (isProtocolField(M.first))
      continue;
    std::string Value;
    if (!scalarToOptionValue(M.second, Value, Err)) {
      Err = "field \"" + M.first + "\": " + Err;
      return false;
    }
    if (!applyRequestOption(C, R, M.first, Value, Err))
      return false;
  }

  // Entry arguments: an array of numbers (integers become Int values).
  if (const json::Value *Args = Obj.find("args")) {
    if (!Args->isArray()) {
      Err = "\"args\" must be an array of numbers";
      return false;
    }
    R.Args.clear();
    for (const json::Value &A : Args->items()) {
      if (!A.isNumber()) {
        Err = "\"args\" must be an array of numbers";
        return false;
      }
      double D = A.asNumber();
      if (D == static_cast<double>(static_cast<int64_t>(D)))
        R.Args.push_back(RtValue::makeInt(static_cast<int64_t>(D)));
      else
        R.Args.push_back(RtValue::makeDbl(D));
    }
  }
  return true;
}

json::Value rtValueToJson(const RtValue &V) {
  switch (V.K) {
  case RtValue::Kind::Int:
    return json::Value::number(static_cast<double>(V.I));
  case RtValue::Kind::Dbl:
    return json::Value::number(V.D);
  case RtValue::Kind::Ptr:
    return json::Value::string("<ptr>");
  case RtValue::Kind::Undef:
    break;
  }
  return json::Value::null();
}

json::Value countersToJson(const OpCounters &C) {
  json::Value O = json::Value::object();
  auto Put = [&O](const char *K, uint64_t V) {
    O.members().emplace_back(K, json::Value::number(static_cast<double>(V)));
  };
  Put("read_data", C.ReadData);
  Put("write_data", C.WriteData);
  Put("blkmov", C.BlkMov);
  Put("atomic", C.Atomic);
  Put("words_moved", C.WordsMoved);
  Put("local_fallbacks", C.LocalFallbacks);
  Put("spawns", C.Spawns);
  Put("ctx_switches", C.CtxSwitches);
  return O;
}

json::Value statsToJson(const ServiceStats &S) {
  json::Value O = json::Value::object();
  auto Put = [&O](const char *K, uint64_t V) {
    O.members().emplace_back(K, json::Value::number(static_cast<double>(V)));
  };
  Put("compile_requests", S.CompileRequests);
  Put("compile_executions", S.CompileExecutions);
  Put("compile_hits", S.CompileHits);
  Put("compile_waits", S.CompileWaits);
  Put("run_requests", S.RunRequests);
  Put("run_executions", S.RunExecutions);
  Put("run_hits", S.RunHits);
  Put("run_waits", S.RunWaits);
  Put("evictions", S.Evictions);
  Put("cache_bytes", S.CacheBytes);
  Put("cache_entries", S.CacheEntries);
  return O;
}

/// Serializes responses and writes them one per line. Requests complete on
/// arbitrary pool workers, so the stream and the in-flight count live
/// behind one mutex; shutdown waits for the count to reach zero.
class ResponseWriter {
public:
  explicit ResponseWriter(std::ostream &Out) : Out(Out) {}

  void write(const json::Value &Resp) {
    std::lock_guard<std::mutex> Lock(Mu);
    Out << Resp.str() << '\n';
    Out.flush();
  }

  void beginRequest() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++InFlight;
  }

  void endRequest(const json::Value &Resp) {
    std::lock_guard<std::mutex> Lock(Mu);
    Out << Resp.str() << '\n';
    Out.flush();
    if (--InFlight == 0)
      Drained.notify_all();
  }

  void waitDrained() {
    std::unique_lock<std::mutex> Lock(Mu);
    Drained.wait(Lock, [this] { return InFlight == 0; });
  }

private:
  std::ostream &Out;
  std::mutex Mu;
  std::condition_variable Drained;
  size_t InFlight = 0;
};

json::Value makeError(const json::Value &Id, const std::string &Err) {
  json::Value Resp = json::Value::object();
  Resp.members().emplace_back("id", Id);
  Resp.members().emplace_back("ok", json::Value::boolean(false));
  Resp.members().emplace_back("error", json::Value::string(Err));
  return Resp;
}

} // namespace

size_t earthcc::runServeLoop(std::istream &In, std::ostream &Out,
                             const ServeOptions &Opts) {
  // Unless the caller wired a specific registry, the serve loop records
  // into the process-wide one — the same registry the pipeline stages and
  // engines already use — so the "metrics" op exposes cache counters and
  // per-stage latency histograms from one coherent snapshot.
  ServiceConfig SC = Opts.Service;
  if (!SC.Metrics)
    SC.Metrics = &MetricsRegistry::global();
  CompileService Service(SC);
  ResponseWriter Writer(Out);
  size_t Handled = 0;
  std::string Line;

  while (std::getline(In, Line)) {
    if (Line.empty() ||
        Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;

    json::Value Obj;
    std::string Err;
    if (!json::parse(Line, Obj, Err)) {
      Writer.write(makeError(json::Value::null(), "parse error: " + Err));
      continue;
    }
    if (!Obj.isObject()) {
      Writer.write(makeError(json::Value::null(), "request must be an object"));
      continue;
    }
    json::Value Id = Obj.find("id") ? *Obj.find("id") : json::Value::null();
    std::string Op = Obj.getString("op", "run");
    ++Handled;

    if (Op == "ping") {
      json::Value Resp = json::Value::object();
      Resp.members().emplace_back("id", Id);
      Resp.members().emplace_back("ok", json::Value::boolean(true));
      Resp.members().emplace_back("op", json::Value::string("ping"));
      Writer.write(Resp);
      continue;
    }
    if (Op == "stats") {
      json::Value Resp = json::Value::object();
      Resp.members().emplace_back("id", Id);
      Resp.members().emplace_back("ok", json::Value::boolean(true));
      Resp.members().emplace_back("op", json::Value::string("stats"));
      Resp.members().emplace_back("stats", statsToJson(Service.stats()));
      Resp.members().emplace_back(
          "workers",
          json::Value::number(static_cast<double>(Service.numWorkers())));
      Writer.write(Resp);
      continue;
    }
    if (Op == "metrics") {
      // Live registry snapshot: service cache counters, per-stage pipeline
      // wall-ns histograms, engine dispatch totals. Handled inline like
      // "stats" — reads are lock-free against in-flight requests.
      json::Value Resp = json::Value::object();
      Resp.members().emplace_back("id", Id);
      Resp.members().emplace_back("ok", json::Value::boolean(true));
      Resp.members().emplace_back("op", json::Value::string("metrics"));
      Resp.members().emplace_back("metrics", Service.metrics().snapshot());
      Writer.write(Resp);
      continue;
    }
    if (Op == "shutdown") {
      Writer.waitDrained();
      json::Value Resp = json::Value::object();
      Resp.members().emplace_back("id", Id);
      Resp.members().emplace_back("ok", json::Value::boolean(true));
      Resp.members().emplace_back("op", json::Value::string("shutdown"));
      Resp.members().emplace_back("stats", statsToJson(Service.stats()));
      Writer.write(Resp);
      break;
    }
    if (Op != "run" && Op != "compile") {
      Writer.write(makeError(Id, "unknown op \"" + Op + "\""));
      continue;
    }

    CompileRequest CReq;
    RunRequest RReq;
    if (!buildRequests(Obj, Opts, CReq, RReq, Err)) {
      Writer.write(makeError(Id, Err));
      continue;
    }
    if (CReq.Source.empty()) {
      Writer.write(makeError(Id, "request needs \"source\" or \"workload\""));
      continue;
    }
    bool WantProfile = Obj.getBool("profile", false);
    bool WantThreadedC = Obj.getBool("threaded_c", false);
    if (Opts.Echo)
      fprintf(stderr, "earthcc --serve: %s key=%s\n", Op.c_str(),
              CReq.keyHex().c_str());

    Writer.beginRequest();
    if (Op == "compile") {
      Service.submitCompile(
          std::move(CReq), [&Writer, Id, WantThreadedC](CompileResponse R) {
            json::Value Resp = json::Value::object();
            Resp.members().emplace_back("id", Id);
            Resp.members().emplace_back("ok", json::Value::boolean(R.OK));
            Resp.members().emplace_back("op", json::Value::string("compile"));
            Resp.members().emplace_back("key", json::Value::string(R.Key));
            Resp.members().emplace_back("cache_hit",
                                        json::Value::boolean(R.CacheHit));
            Resp.members().emplace_back("wall_ns",
                                        json::Value::number(R.WallNs));
            if (!R.OK)
              Resp.members().emplace_back("messages",
                                          json::Value::string(R.Messages));
            if (R.OK && WantThreadedC && R.Artifact)
              Resp.members().emplace_back(
                  "threaded_c", json::Value::string(R.Artifact->ThreadedC));
            Writer.endRequest(Resp);
          });
    } else {
      Service.submitRun(
          std::move(CReq), std::move(RReq),
          [&Writer, Id, WantProfile, WantThreadedC](RunResponse R) {
            json::Value Resp = json::Value::object();
            Resp.members().emplace_back("id", Id);
            Resp.members().emplace_back("ok", json::Value::boolean(R.OK));
            Resp.members().emplace_back("op", json::Value::string("run"));
            Resp.members().emplace_back("key", json::Value::string(R.Key));
            Resp.members().emplace_back(
                "compile_key", json::Value::string(R.CompileKey));
            Resp.members().emplace_back("cache_hit",
                                        json::Value::boolean(R.CacheHit));
            Resp.members().emplace_back(
                "compile_cache_hit",
                json::Value::boolean(R.CompileCacheHit));
            Resp.members().emplace_back("wall_ns",
                                        json::Value::number(R.WallNs));
            if (!R.OK) {
              Resp.members().emplace_back("error",
                                          json::Value::string(R.Error));
              Writer.endRequest(Resp);
              return;
            }
            const SimArtifact &S = *R.Sim;
            Resp.members().emplace_back("time_ns",
                                        json::Value::number(S.TimeNs));
            Resp.members().emplace_back("exit", rtValueToJson(S.ExitValue));
            Resp.members().emplace_back(
                "steps",
                json::Value::number(static_cast<double>(S.StepsExecuted)));
            Resp.members().emplace_back("counters",
                                        countersToJson(S.Counters));
            json::Value OutLines = json::Value::array();
            for (const std::string &L : S.Output)
              OutLines.items().push_back(json::Value::string(L));
            Resp.members().emplace_back("output", OutLines);
            if (WantProfile && !S.ProfileJson.empty()) {
              json::Value Profile;
              std::string PErr;
              if (json::parse(S.ProfileJson, Profile, PErr))
                Resp.members().emplace_back("comm_profile", Profile);
            }
            if (WantThreadedC && R.Artifact)
              Resp.members().emplace_back(
                  "threaded_c", json::Value::string(R.Artifact->ThreadedC));
            Writer.endRequest(Resp);
          });
    }
  }

  // EOF without shutdown: drain before the service (and its pool) die so
  // every accepted request still gets its response line.
  Writer.waitDrained();
  return Handled;
}
