//===- Serve.h - Line-oriented JSON protocol over CompileService -*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `earthcc --serve`: the CompileService spoken over stdin/stdout, one JSON
/// object per line in each direction. Requests:
///
///   {"id": 1, "op": "run", "source": "...", "nodes": 8, "args": [4]}
///   {"id": 2, "op": "run", "workload": "tsp", "size": "small"}
///   {"id": 3, "op": "compile", "source": "...", "no-opt": true}
///   {"id": 4, "op": "stats"}
///   {"id": 5, "op": "ping"}
///   {"op": "shutdown"}
///
/// Every option field ("nodes", "engine", "fuse", "seq", "threshold", ...)
/// is resolved through the same declarative table (requestOptions()) the
/// command line uses — the two surfaces accept the same knobs by
/// construction. Extras understood only here: "id" (echoed verbatim),
/// "source"/"workload"+"size", "args" (entry arguments, numbers), "profile"
/// (include the per-site comm report), "threaded_c" (include generated
/// code).
///
/// Responses carry "id", "ok", the artifact keys and cache verdicts
/// ("cache_hit", "compile_cache_hit"), and the simulated result. Requests
/// are handled concurrently on the service's pool, so responses may arrive
/// out of order — clients must match by id. "shutdown" drains all in-flight
/// requests, answers last, and ends the loop.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SERVICE_SERVE_H
#define EARTHCC_SERVICE_SERVE_H

#include "service/CompileService.h"

#include <iosfwd>

namespace earthcc {

struct ServeOptions {
  ServiceConfig Service;
  /// Template requests carrying the process-wide defaults (CLI flags and
  /// environment already applied); each protocol request starts from a
  /// copy and applies its own fields on top.
  CompileRequest BaseCompile;
  RunRequest BaseRun;
  bool Echo = false; ///< Log one summary line per request to stderr.
};

/// Runs the serve loop: reads request lines from \p In until EOF or a
/// "shutdown" op, writes response lines to \p Out (flushed per line).
/// Returns the number of requests handled (excluding malformed lines,
/// which still get an error response).
size_t runServeLoop(std::istream &In, std::ostream &Out,
                    const ServeOptions &Opts);

} // namespace earthcc

#endif // EARTHCC_SERVICE_SERVE_H
