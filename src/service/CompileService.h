//===- CompileService.h - Persistent compile+simulate server ----*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The earthcc driver as a long-lived service. The Pipeline already does
/// compile-once/run-many with stage memoization *within* one caller; this
/// productionizes it *across* callers:
///
///  - Every artifact a request can produce — the verified SIMPLE module
///    with its memoized bytecode, the emitted Threaded-C text, remarks,
///    and the simulated result with its per-site comm profile — is keyed
///    by the content hash of its request value (CompileRequest::keyBytes,
///    RunRequest::keyBytes; see driver/Request.h). Identical requests from
///    any number of concurrent clients share one cached artifact.
///
///  - Lookups are *single-flight*: the first request for a key computes
///    while every concurrent duplicate waits on the same shared future, so
///    N identical requests trigger exactly one compile (the hard guarantee
///    the dedup tests pin: executions == 1 regardless of interleaving).
///
///  - Completed artifacts live in an LRU cache under a byte budget;
///    in-flight entries and the most recently used artifact are never
///    evicted, so a hot request stays warm at any budget.
///
///  - Work is scheduled on a support/ThreadPool.h worker pool. submit()
///    returns a std::future immediately; the callback overloads invoke a
///    completion on the worker instead (the `--serve` loop uses those to
///    stream responses out of order). Per-request instrumentation rides
///    the request itself: RunRequest::Sink is forwarded into a fresh
///    execution, and a service-level TraceSink (ServiceConfig::Trace)
///    receives one span per request with its cache outcome.
///
/// Determinism makes the cache sound: the simulator's results are a pure
/// function of (module, machine config) — identical across engines, node
/// schedules and host threads, which the engine-equivalence suite pins —
/// so replaying a cached response is observationally identical to
/// recomputing it, including the serialized comm profile byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SERVICE_COMPILESERVICE_H
#define EARTHCC_SERVICE_COMPILESERVICE_H

#include "driver/Pipeline.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace earthcc {

/// Configuration of one service instance.
struct ServiceConfig {
  /// Worker threads handling requests (0 = all hardware threads).
  unsigned Workers = 0;
  /// Byte budget for completed artifacts (approximate footprints). The
  /// most recently used artifact survives even when it alone exceeds the
  /// budget.
  size_t CacheBudgetBytes = size_t(256) << 20;
  /// Emit Threaded-C text into every compiled artifact. On by default —
  /// codegen is cheap next to the passes and makes the artifact complete;
  /// switch off for compile-throughput benchmarking of the passes alone.
  bool EmitThreadedC = true;
  /// Service-level tracing: one 'X' span per handled request (name
  /// svc:compile / svc:run, args: key, hit). Non-owning; events are
  /// emitted under the service lock, so any sink is safe without its own
  /// synchronization. Not forwarded into pipelines — per-request run
  /// tracing goes through RunRequest::Sink.
  TraceSink *Trace = nullptr;
  /// Metrics registry the service records into (request counters split by
  /// op and outcome, eviction counts, cache gauges, queue depth, and
  /// per-request latency histograms). Non-owning; null makes the service
  /// create a private registry, so unit tests that pin exact counts never
  /// see another instance's traffic. The `--serve` loop wires the process
  /// registry here so the "metrics" op sees service activity.
  MetricsRegistry *Metrics = nullptr;
};

/// Monotonic counters describing service activity. "Executions" are actual
/// computations (cache misses), "Hits" are completed-artifact lookups, and
/// "Waits" are single-flight joins onto a computation another request
/// started — Hits + Waits + Executions == Requests per class.
///
/// This struct is a point-in-time *view*: the backing store is the
/// service's metrics registry (`svc.requests{op,outcome}` etc.), so the
/// same numbers are visible through stats(), the serve "stats" op, and any
/// metrics exposition without double bookkeeping.
struct ServiceStats {
  uint64_t CompileRequests = 0;
  uint64_t CompileExecutions = 0;
  uint64_t CompileHits = 0;
  uint64_t CompileWaits = 0;
  uint64_t RunRequests = 0;
  uint64_t RunExecutions = 0;
  uint64_t RunHits = 0;
  uint64_t RunWaits = 0;
  uint64_t Evictions = 0;
  size_t CacheBytes = 0;   ///< Current completed-artifact footprint.
  size_t CacheEntries = 0; ///< Completed artifacts resident.
};

/// An immutable compiled artifact: everything the compile side of the
/// pipeline can produce for one CompileRequest. Shared by reference among
/// every request that hits its key; never mutated after publication.
struct CompiledArtifact {
  bool OK = false;
  std::string Messages;              ///< Diagnostics when !OK.
  std::shared_ptr<const Module> M;   ///< Verified module (bytecode memoized).
  Statistics Stats;                  ///< Pass counters of the compile.
  RemarkStream Remarks;              ///< Optimizer remarks (profile join).
  std::string ThreadedC;             ///< Emitted text ("" if disabled/!OK).
  std::vector<StageReport> Stages;   ///< Per-stage wall times + counters.
  std::string KeyHex;                ///< Content address (compile key).
  size_t Bytes = 0;                  ///< Approximate footprint.
};

/// An immutable simulated-run artifact for one (CompileRequest, RunRequest)
/// pair: the full deterministic result plus the serialized per-site comm
/// profile (recorded by a service-owned profiler on the fresh execution).
struct SimArtifact {
  bool OK = false;
  std::string Error;
  double TimeNs = 0.0;
  RtValue ExitValue;
  OpCounters Counters;
  uint64_t StepsExecuted = 0;
  std::vector<std::string> Output;
  std::vector<size_t> WordsPerNode;
  std::string ProfileJson; ///< profileReportJson over the run's profiler.
  std::string KeyHex;      ///< Content address (compile key ^ run key).
  size_t Bytes = 0;
};

/// Response to a compile request.
struct CompileResponse {
  bool OK = false;
  std::string Messages;
  std::string Key;      ///< Compile key, 16 hex digits.
  bool CacheHit = false; ///< Served without executing a compile here.
  double WallNs = 0.0;  ///< Handler wall time (includes any dedup wait).
  std::shared_ptr<const CompiledArtifact> Artifact;
};

/// Response to a compile+run request.
struct RunResponse {
  bool OK = false;
  std::string Error;
  std::string Key;        ///< Combined run key, 16 hex digits.
  std::string CompileKey; ///< The underlying artifact's key.
  bool CacheHit = false;  ///< Simulated result served from cache.
  bool CompileCacheHit = false;
  double WallNs = 0.0;
  std::shared_ptr<const SimArtifact> Sim;
  std::shared_ptr<const CompiledArtifact> Artifact;
};

/// The long-lived compile+simulate server. Thread-safe; cheap to query.
/// Destruction drains every submitted request (futures and callbacks all
/// complete) before returning.
class CompileService {
public:
  explicit CompileService(ServiceConfig Config = {});
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  const ServiceConfig &config() const { return Cfg; }
  unsigned numWorkers() const { return Pool.numThreads(); }

  /// Compiles \p Req (or finds it in the cache). The future becomes ready
  /// when the artifact is available; identical concurrent requests share
  /// one compilation.
  std::future<CompileResponse> submitCompile(CompileRequest Req);
  /// Callback form: \p Done runs on a worker thread when the response is
  /// ready. Must not throw.
  void submitCompile(CompileRequest Req,
                     std::function<void(CompileResponse)> Done);

  /// Compiles (cached) and simulates (cached) in one request.
  std::future<RunResponse> submitRun(CompileRequest CReq, RunRequest RReq);
  void submitRun(CompileRequest CReq, RunRequest RReq,
                 std::function<void(RunResponse)> Done);

  ServiceStats stats() const;

  /// The registry this instance records into (ServiceConfig::Metrics, or
  /// the service-private one when none was wired).
  MetricsRegistry &metrics() { return *Reg; }

private:
  template <typename T> struct Slot {
    std::shared_future<std::shared_ptr<const T>> Fut;
    bool Done = false;    ///< Artifact published (evictable).
    uint64_t LastUse = 0; ///< LRU clock tick of the latest lookup.
    size_t Bytes = 0;
  };

  CompileResponse handleCompile(const CompileRequest &Req);
  RunResponse handleRun(const CompileRequest &CReq, const RunRequest &RReq);

  std::shared_ptr<const CompiledArtifact>
  getOrCompile(const CompileRequest &Req, bool &Hit);
  std::shared_ptr<const SimArtifact>
  getOrRun(const CompileRequest &CReq, const RunRequest &RReq, bool &Hit,
           bool &CompileHit, std::shared_ptr<const CompiledArtifact> &Art);

  /// Marks \p KeyBytes done with \p Bytes footprint and runs LRU eviction.
  template <typename T>
  void publish(std::unordered_map<std::string, Slot<T>> &Map,
               const std::string &KeyBytes, size_t Bytes);
  void evictLocked(const std::string &Protect);
  void traceRequest(const char *What, const std::string &KeyHex, bool Hit,
                    double StartNs, double WallNs);
  double nowNs() const;

  ServiceConfig Cfg;
  /// Private registry when ServiceConfig::Metrics is null; kept ahead of
  /// the handles below, which point into it.
  std::unique_ptr<MetricsRegistry> OwnedReg;
  MetricsRegistry *Reg = nullptr;
  /// Registry-backed instrument handles (the former ad-hoc ServiceStats
  /// fields). Index [0] = miss (execution), [1] = hit for the latency
  /// histograms; single-flight waits land in the hit bucket, which is what
  /// the response's CacheHit bit reports too.
  Counter CompileHits, CompileWaits, CompileExecs;
  Counter RunHits, RunWaits, RunExecs;
  Counter EvictionCount;
  Gauge CacheBytesGauge, CacheEntriesGauge, QueueDepthGauge;
  Histogram CompileReqNs[2], RunReqNs[2];

  mutable std::mutex Mu;
  std::unordered_map<std::string, Slot<CompiledArtifact>> Compiles;
  std::unordered_map<std::string, Slot<SimArtifact>> Runs;
  uint64_t Clock = 0;
  size_t CacheBytes = 0;
  std::chrono::steady_clock::time_point Epoch;
  /// Declared last: destroyed (joined, queue drained) before the caches
  /// and stats above, so in-flight handlers never touch dead members.
  ThreadPool Pool;
};

} // namespace earthcc

#endif // EARTHCC_SERVICE_COMPILESERVICE_H
