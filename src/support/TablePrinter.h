//===- TablePrinter.h - Aligned text tables for bench output ----*- C++ -*-===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny helper that renders rows of strings as an aligned, ruled text
/// table. The benchmark harnesses use it to print the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_TABLEPRINTER_H
#define EARTHCC_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace earthcc {

/// Accumulates rows of cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends one data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal rule between the rows added before and after.
  void addRule();

  /// Renders the table to \p OS.
  void print(std::ostream &OS) const;

  /// Renders the table to a string (handy in tests).
  std::string str() const;

  /// Formats a double with \p Precision digits after the decimal point.
  static std::string fmt(double Value, int Precision = 2);

private:
  struct Row {
    bool IsRule = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_TABLEPRINTER_H
