//===- Json.cpp - Minimal JSON value, parser and writer --------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace earthcc;
using namespace earthcc::json;

Value Value::boolean(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

Value Value::number(double D) {
  Value V;
  V.K = Kind::Number;
  V.Num = D;
  return V;
}

Value Value::string(std::string S) {
  Value V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.K = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.K = Kind::Object;
  return V;
}

const Value *Value::find(std::string_view Key) const {
  for (const Member &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

bool Value::getBool(std::string_view Key, bool Default) const {
  const Value *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

double Value::getNumber(std::string_view Key, double Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Value::getString(std::string_view Key,
                             const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

std::string json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string json::quote(std::string_view S) {
  return "\"" + escape(S) + "\"";
}

std::string Value::str() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Number: {
    // Exact integers (the common case: ids, counts, ns) print without a
    // fraction so they round-trip textually through the protocol.
    if (std::isfinite(Num) && Num == std::floor(Num) &&
        std::fabs(Num) < 9.007199254740992e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.0f", Num);
      return Buf;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
    return Buf;
  }
  case Kind::String:
    return quote(Str);
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I != Items.size(); ++I)
      Out += (I ? "," : "") + Items[I].str();
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t I = 0; I != Members.size(); ++I)
      Out += (I ? "," : "") + quote(Members[I].first) + ":" +
             Members[I].second.str();
    return Out + "}";
  }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a string_view. Offsets in errors are byte
/// positions into the original text.
class Parser {
public:
  Parser(std::string_view Text, std::string &Err) : Text(Text), Err(Err) {}

  bool run(Value &Out) {
    skipWs();
    if (!value(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64; // protocol objects are shallow

  bool fail(const std::string &Msg) {
    Err = "offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool value(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return fail("invalid literal");
      Out = Value::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("invalid literal");
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("invalid literal");
      Out = Value::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!string(S))
        return false;
      Out = Value::string(std::move(S));
      return true;
    }
    case '[': {
      ++Pos;
      Out = Value::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        Value Item;
        skipWs();
        if (!value(Item, Depth + 1))
          return false;
        Out.items().push_back(std::move(Item));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '{': {
      ++Pos;
      Out = Value::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != '"')
          return fail("expected string key in object");
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':' after object key");
        ++Pos;
        skipWs();
        Value Item;
        if (!value(Item, Depth + 1))
          return false;
        Out.members().emplace_back(std::move(Key), std::move(Item));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!hex4(Code))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            unsigned Low = 0;
            if (!hex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("invalid low surrogate");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else {
            return fail("unpaired high surrogate");
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool number(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    size_t IntStart = Pos;
    if (!Digits())
      return fail("expected value");
    if (Text[IntStart] == '0' && Pos - IntStart > 1)
      return fail("leading zeros are not permitted");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!Digits())
        return fail("digits required after decimal point");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!Digits())
        return fail("digits required in exponent");
    }
    std::string Num(Text.substr(Start, Pos - Start));
    Out = Value::number(std::strtod(Num.c_str(), nullptr));
    return true;
  }

  std::string_view Text;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string &Err) {
  return Parser(Text, Err).run(Out);
}
