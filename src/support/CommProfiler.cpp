//===- CommProfiler.cpp - Per-site communication profiles -----------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/CommProfiler.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace earthcc {

const char *commOpKindName(CommOpKind K) {
  switch (K) {
  case CommOpKind::Read:
    return "read";
  case CommOpKind::Write:
    return "write";
  case CommOpKind::BlkMov:
    return "blkmov";
  case CommOpKind::Atomic:
    return "atomic";
  }
  return "?";
}

unsigned SiteProfile::bucketOf(uint64_t Ns) {
  if (Ns < 16)
    return static_cast<unsigned>(Ns);
  unsigned E = 63 - static_cast<unsigned>(std::countl_zero(Ns)); // >= 4
  unsigned Sub = static_cast<unsigned>((Ns >> (E - 4)) & 0xF);
  unsigned B = 16 * (E - 3) + Sub;
  return std::min(B, NumBuckets - 1);
}

uint64_t SiteProfile::bucketLowNs(unsigned B) {
  if (B < 16)
    return B;
  unsigned E = B / 16 + 3;
  unsigned Sub = B % 16;
  return (uint64_t(1) << E) | (uint64_t(Sub) << (E - 4));
}

void SiteProfile::recordLatency(uint64_t Ns) {
  if (LatHist.empty())
    LatHist.assign(NumBuckets, 0);
  ++LatHist[bucketOf(Ns)];
  // First-sample detection must come from the sample count itself, not from
  // Msgs: the engines bump Msgs before sampling, but nothing else does, and
  // min would otherwise stick at 0 for any standalone user.
  ++LatCount;
  LatMinNs = LatCount == 1 ? Ns : std::min(LatMinNs, Ns);
  LatMaxNs = std::max(LatMaxNs, Ns);
}

uint64_t SiteProfile::latencyPercentileNs(double P) const {
  if (!LatCount || LatHist.empty())
    return 0;
  // Rank of the percentile element, 1-based: ceil(P/100 * LatCount). Ranking
  // over the recorded samples (not Msgs) keeps the walk in bounds even when
  // the two counts diverge — an empty or single-sample site must render
  // without any divide-by-zero or off-the-end fallback.
  double Exact = P * static_cast<double>(LatCount) / 100.0;
  uint64_t Rank = static_cast<uint64_t>(Exact);
  if (static_cast<double>(Rank) < Exact)
    ++Rank;
  Rank = std::max<uint64_t>(1, std::min(Rank, LatCount));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += LatHist[B];
    if (Seen >= Rank)
      return bucketLowNs(B);
  }
  return LatMaxNs;
}

void CommProfiler::beginRun(unsigned Sites_, unsigned Nodes) {
  NumSites = Sites_;
  NumNodes = Nodes;
  Sites.assign(NumSites, SiteProfile());
  SiteOps.assign(NumSites, CommOpKind::Read);
  TrafficMsgs.assign(size_t(NumNodes) * NumNodes, 0);
  TrafficWords.assign(size_t(NumNodes) * NumNodes, 0);
  NetTopology.clear();
  NetLinks.clear();
  NetPairWords.clear();
  NetEndTimeNs = 0.0;
}

void CommProfiler::setNetwork(std::string TopologyName,
                              std::vector<NetLinkStats> Links,
                              std::vector<uint64_t> PairWords,
                              double EndTimeNs) {
  NetTopology = std::move(TopologyName);
  NetLinks = std::move(Links);
  NetPairWords = std::move(PairWords);
  NetEndTimeNs = EndTimeNs;
}

void CommProfiler::record(int32_t Site, CommOpKind Op, unsigned From,
                          unsigned To, uint64_t Words, double IssueStartNs,
                          double DoneNs) {
  if (Site < 0 || static_cast<unsigned>(Site) >= NumSites)
    return;
  SiteProfile &P = Sites[Site];
  SiteOps[Site] = Op;
  ++P.Msgs;
  P.Words += Words;
  double Lat = DoneNs - IssueStartNs;
  P.LatSumNs += Lat;
  P.recordLatency(Lat <= 0 ? 0 : static_cast<uint64_t>(Lat));
  if (From < NumNodes && To < NumNodes) {
    ++TrafficMsgs[From * NumNodes + To];
    TrafficWords[From * NumNodes + To] += Words;
  }
}

void CommProfiler::recordLocal(int32_t Site, CommOpKind Op, unsigned Node,
                               uint64_t Words) {
  (void)Node;
  (void)Words;
  if (Site < 0 || static_cast<unsigned>(Site) >= NumSites)
    return;
  SiteOps[Site] = Op;
  ++Sites[Site].LocalHits;
}

uint64_t CommProfiler::totalMsgs() const {
  uint64_t N = 0;
  for (const SiteProfile &P : Sites)
    N += P.Msgs;
  return N;
}

std::string CommProfiler::json() const {
  std::string Out = "{\"sites\": [";
  char Buf[256];
  bool First = true;
  for (unsigned I = 0; I != NumSites; ++I) {
    const SiteProfile &P = Sites[I];
    if (!P.Msgs && !P.LocalHits)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"site\": %u, \"op\": \"%s\", \"msgs\": %llu, "
                  "\"words\": %llu, \"local\": %llu, \"lat_mean_ns\": %.17g, "
                  "\"lat_min_ns\": %llu, \"lat_p50_ns\": %llu, "
                  "\"lat_p90_ns\": %llu, \"lat_max_ns\": %llu}",
                  First ? "" : ", ", I, commOpKindName(SiteOps[I]),
                  (unsigned long long)P.Msgs, (unsigned long long)P.Words,
                  (unsigned long long)P.LocalHits, P.latencyMeanNs(),
                  (unsigned long long)P.LatMinNs,
                  (unsigned long long)P.latencyPercentileNs(50),
                  (unsigned long long)P.latencyPercentileNs(90),
                  (unsigned long long)P.LatMaxNs);
    Out += Buf;
    First = false;
  }
  Out += "], \"traffic_words\": [";
  for (unsigned F = 0; F != NumNodes; ++F) {
    Out += F ? ", [" : "[";
    for (unsigned T = 0; T != NumNodes; ++T) {
      std::snprintf(Buf, sizeof(Buf), "%s%llu", T ? ", " : "",
                    (unsigned long long)trafficWords(F, T));
      Out += Buf;
    }
    Out += "]";
  }
  Out += "]";
  // The network block exists only when a routed topology reported links;
  // the ideal network keeps the encoding byte-identical to its
  // pre-NetworkModel form (the equivalence sweep pins that).
  if (!NetLinks.empty()) {
    Out += ", \"network\": {\"topology\": \"" + NetTopology +
           "\", \"end_ns\": ";
    std::snprintf(Buf, sizeof(Buf), "%.17g", NetEndTimeNs);
    Out += Buf;
    Out += ", \"links\": [";
    for (size_t I = 0; I != NetLinks.size(); ++I) {
      const NetLinkStats &L = NetLinks[I];
      double Util = NetEndTimeNs > 0 ? L.BusyNs / NetEndTimeNs : 0.0;
      std::snprintf(Buf, sizeof(Buf),
                    "%s{\"name\": \"%s\", \"msgs\": %llu, \"words\": %llu, "
                    "\"busy_ns\": %.17g, \"utilization\": %.17g, "
                    "\"max_queue_depth\": %u}",
                    I ? ", " : "", L.Name.c_str(), (unsigned long long)L.Msgs,
                    (unsigned long long)L.Words, L.BusyNs, Util,
                    L.MaxQueueDepth);
      Out += Buf;
    }
    Out += "], \"pair_words\": [";
    for (unsigned F = 0; F != NumNodes; ++F) {
      Out += F ? ", [" : "[";
      for (unsigned T = 0; T != NumNodes; ++T) {
        uint64_t W = NetPairWords.size() == size_t(NumNodes) * NumNodes
                         ? NetPairWords[F * NumNodes + T]
                         : 0;
        std::snprintf(Buf, sizeof(Buf), "%s%llu", T ? ", " : "",
                      (unsigned long long)W);
        Out += Buf;
      }
      Out += "]";
    }
    Out += "]}";
  }
  Out += "}";
  return Out;
}

} // namespace earthcc
