//===- Metrics.cpp - Process-wide metrics registry ------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace earthcc;

namespace earthcc {
namespace metrics_detail {

unsigned shardIndex() {
  // Hash once per thread; the cached value keeps the hot path to a
  // thread_local read.
  static thread_local unsigned Idx =
      static_cast<unsigned>(std::hash<std::thread::id>{}(
          std::this_thread::get_id())) %
      NumShards;
  return Idx;
}

struct CounterImpl {
  CounterShard Shards[NumShards];

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const CounterShard &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }
  void reset() {
    for (CounterShard &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }
};

struct GaugeImpl {
  std::atomic<int64_t> V{0};
};

/// One shard of a histogram: bucket counts plus count/sum/min/max, all
/// relaxed atomics. Min/max use CAS loops; samples land on one shard so
/// cross-shard writers rarely collide.
struct HistogramShard {
  alignas(64) std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
  std::atomic<uint64_t> Buckets[Histogram::NumBuckets] = {};
};

struct HistogramImpl {
  std::unique_ptr<HistogramShard[]> Shards =
      std::make_unique<HistogramShard[]>(NumShards);

  void observe(uint64_t V) {
    HistogramShard &S = Shards[shardIndex()];
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = S.Min.load(std::memory_order_relaxed);
    while (V < Cur &&
           !S.Min.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
    Cur = S.Max.load(std::memory_order_relaxed);
    while (V > Cur &&
           !S.Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
    S.Buckets[Histogram::bucketOf(V)].fetch_add(1,
                                                std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (unsigned I = 0; I != NumShards; ++I)
      N += Shards[I].Count.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t sum() const {
    uint64_t N = 0;
    for (unsigned I = 0; I != NumShards; ++I)
      N += Shards[I].Sum.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t min() const {
    uint64_t M = UINT64_MAX;
    for (unsigned I = 0; I != NumShards; ++I)
      M = std::min(M, Shards[I].Min.load(std::memory_order_relaxed));
    return M == UINT64_MAX ? 0 : M;
  }
  uint64_t max() const {
    uint64_t M = 0;
    for (unsigned I = 0; I != NumShards; ++I)
      M = std::max(M, Shards[I].Max.load(std::memory_order_relaxed));
    return M;
  }
  uint64_t bucket(unsigned B) const {
    uint64_t N = 0;
    for (unsigned I = 0; I != NumShards; ++I)
      N += Shards[I].Buckets[B].load(std::memory_order_relaxed);
    return N;
  }
  void reset() {
    for (unsigned I = 0; I != NumShards; ++I) {
      HistogramShard &S = Shards[I];
      S.Count.store(0, std::memory_order_relaxed);
      S.Sum.store(0, std::memory_order_relaxed);
      S.Min.store(UINT64_MAX, std::memory_order_relaxed);
      S.Max.store(0, std::memory_order_relaxed);
      for (auto &B : S.Buckets)
        B.store(0, std::memory_order_relaxed);
    }
  }
};

} // namespace metrics_detail
} // namespace earthcc

using namespace earthcc::metrics_detail;

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

void Counter::inc(uint64_t Delta) const {
  if (I)
    I->Shards[shardIndex()].V.fetch_add(Delta, std::memory_order_relaxed);
}

uint64_t Counter::value() const { return I ? I->value() : 0; }

void Gauge::set(int64_t V) const {
  if (I)
    I->V.store(V, std::memory_order_relaxed);
}

void Gauge::add(int64_t Delta) const {
  if (I)
    I->V.fetch_add(Delta, std::memory_order_relaxed);
}

int64_t Gauge::value() const {
  return I ? I->V.load(std::memory_order_relaxed) : 0;
}

unsigned Histogram::bucketOf(uint64_t V) {
  if (V < 4)
    return static_cast<unsigned>(V);
  unsigned E = 63 - static_cast<unsigned>(std::countl_zero(V)); // >= 2
  unsigned Sub = static_cast<unsigned>((V >> (E - 2)) & 0x3);
  unsigned B = 4 * (E - 1) + Sub;
  return std::min(B, NumBuckets - 1);
}

uint64_t Histogram::bucketLowNs(unsigned B) {
  if (B < 4)
    return B;
  unsigned E = B / 4 + 1;
  unsigned Sub = B % 4;
  return (uint64_t(1) << E) | (uint64_t(Sub) << (E - 2));
}

void Histogram::observe(uint64_t V) const {
  if (I)
    I->observe(V);
}

uint64_t Histogram::count() const { return I ? I->count() : 0; }
uint64_t Histogram::sum() const { return I ? I->sum() : 0; }
uint64_t Histogram::min() const { return I ? I->min() : 0; }
uint64_t Histogram::max() const { return I ? I->max() : 0; }

uint64_t Histogram::percentile(double P) const {
  if (!I)
    return 0;
  uint64_t N = I->count();
  if (!N)
    return 0;
  double Exact = P * static_cast<double>(N) / 100.0;
  uint64_t Rank = static_cast<uint64_t>(Exact);
  if (static_cast<double>(Rank) < Exact)
    ++Rank;
  Rank = std::max<uint64_t>(1, std::min(Rank, N));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += I->bucket(B);
    if (Seen >= Rank)
      return bucketLowNs(B);
  }
  return I->max();
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// Canonical identity string: name + sorted "k=v" labels, '\x1f'-joined
/// (the separator can't appear in metric names we mint, and labels are
/// sorted so permutations collide).
std::string identityKey(const std::string &Name, const MetricLabels &Labels) {
  std::string Key = Name;
  for (const MetricLabel &L : Labels) {
    Key += '\x1f';
    Key += L.first;
    Key += '=';
    Key += L.second;
  }
  return Key;
}

std::string sanitizePromName(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (C == '.' || C == '-')
      C = '_';
  return Out;
}

std::string promLabelSet(const MetricLabels &Labels,
                         const std::string &Extra = {}) {
  if (Labels.empty() && Extra.empty())
    return "";
  std::string Out = "{";
  bool First = true;
  for (const MetricLabel &L : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += L.first + "=\"" + json::escape(L.second) + "\"";
  }
  if (!Extra.empty()) {
    if (!First)
      Out += ",";
    Out += Extra;
  }
  Out += "}";
  return Out;
}

json::Value labelsValue(const MetricLabels &Labels) {
  json::Value Obj = json::Value::object();
  for (const MetricLabel &L : Labels)
    Obj.members().emplace_back(L.first, json::Value::string(L.second));
  return Obj;
}

} // namespace

struct MetricsRegistry::Impl {
  template <typename T> struct Row {
    std::string Name;
    MetricLabels Labels;
    std::unique_ptr<T> Inst = std::make_unique<T>();
  };

  mutable std::mutex Mu;
  // map keyed by identity string; iteration order (sorted keys) is the
  // deterministic exposition order.
  std::map<std::string, Row<CounterImpl>> Counters;
  std::map<std::string, Row<GaugeImpl>> Gauges;
  std::map<std::string, Row<HistogramImpl>> Histograms;

  template <typename T>
  T *get(std::map<std::string, Row<T>> &Table, std::string Name,
         MetricLabels Labels) {
    std::sort(Labels.begin(), Labels.end());
    std::string Key = identityKey(Name, Labels);
    std::lock_guard<std::mutex> Lock(Mu);
    Row<T> &R = Table[Key];
    if (R.Name.empty()) {
      R.Name = std::move(Name);
      R.Labels = std::move(Labels);
    }
    return R.Inst.get();
  }
};

MetricsRegistry::MetricsRegistry() : M(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete M; }

Counter MetricsRegistry::counter(std::string Name, MetricLabels Labels) {
  return Counter(M->get(M->Counters, std::move(Name), std::move(Labels)));
}

Gauge MetricsRegistry::gauge(std::string Name, MetricLabels Labels) {
  return Gauge(M->get(M->Gauges, std::move(Name), std::move(Labels)));
}

Histogram MetricsRegistry::histogram(std::string Name, MetricLabels Labels) {
  return Histogram(M->get(M->Histograms, std::move(Name), std::move(Labels)));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M->Mu);
  for (auto &KV : M->Counters)
    KV.second.Inst->reset();
  for (auto &KV : M->Gauges)
    KV.second.Inst->V.store(0, std::memory_order_relaxed);
  for (auto &KV : M->Histograms)
    KV.second.Inst->reset();
}

json::Value MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M->Mu);
  json::Value Root = json::Value::object();

  json::Value Counters = json::Value::array();
  for (const auto &KV : M->Counters) {
    json::Value Row = json::Value::object();
    Row.members().emplace_back("name", json::Value::string(KV.second.Name));
    Row.members().emplace_back("labels", labelsValue(KV.second.Labels));
    Row.members().emplace_back(
        "value",
        json::Value::number(static_cast<double>(KV.second.Inst->value())));
    Counters.items().push_back(std::move(Row));
  }
  Root.members().emplace_back("counters", std::move(Counters));

  json::Value Gauges = json::Value::array();
  for (const auto &KV : M->Gauges) {
    json::Value Row = json::Value::object();
    Row.members().emplace_back("name", json::Value::string(KV.second.Name));
    Row.members().emplace_back("labels", labelsValue(KV.second.Labels));
    Row.members().emplace_back(
        "value", json::Value::number(static_cast<double>(
                     KV.second.Inst->V.load(std::memory_order_relaxed))));
    Gauges.items().push_back(std::move(Row));
  }
  Root.members().emplace_back("gauges", std::move(Gauges));

  json::Value Histograms = json::Value::array();
  for (const auto &KV : M->Histograms) {
    const HistogramImpl &H = *KV.second.Inst;
    Histogram View(KV.second.Inst.get());
    json::Value Row = json::Value::object();
    Row.members().emplace_back("name", json::Value::string(KV.second.Name));
    Row.members().emplace_back("labels", labelsValue(KV.second.Labels));
    Row.members().emplace_back(
        "count", json::Value::number(static_cast<double>(H.count())));
    Row.members().emplace_back(
        "sum", json::Value::number(static_cast<double>(H.sum())));
    Row.members().emplace_back(
        "min", json::Value::number(static_cast<double>(H.min())));
    Row.members().emplace_back(
        "max", json::Value::number(static_cast<double>(H.max())));
    Row.members().emplace_back(
        "p50", json::Value::number(static_cast<double>(View.percentile(50))));
    Row.members().emplace_back(
        "p95", json::Value::number(static_cast<double>(View.percentile(95))));
    Row.members().emplace_back(
        "p99", json::Value::number(static_cast<double>(View.percentile(99))));
    json::Value Buckets = json::Value::array();
    for (unsigned B = 0; B != Histogram::NumBuckets; ++B) {
      uint64_t N = H.bucket(B);
      if (!N)
        continue;
      json::Value Pair = json::Value::array();
      Pair.items().push_back(json::Value::number(
          static_cast<double>(Histogram::bucketLowNs(B))));
      Pair.items().push_back(json::Value::number(static_cast<double>(N)));
      Buckets.items().push_back(std::move(Pair));
    }
    Row.members().emplace_back("buckets", std::move(Buckets));
    Histograms.items().push_back(std::move(Row));
  }
  Root.members().emplace_back("histograms", std::move(Histograms));
  return Root;
}

std::string MetricsRegistry::snapshotJson() const { return snapshot().str(); }

std::string
MetricsRegistry::prometheusText(const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(M->Mu);
  std::string Out;
  auto fullName = [&](const std::string &Name) {
    return Prefix + "_" + sanitizePromName(Name);
  };
  // One # TYPE line per metric name; the maps are sorted by identity key,
  // which groups same-name instruments together.
  std::string LastType;
  for (const auto &KV : M->Counters) {
    std::string N = fullName(KV.second.Name) + "_total";
    if (N != LastType) {
      Out += "# TYPE " + N + " counter\n";
      LastType = N;
    }
    Out += N + promLabelSet(KV.second.Labels) + " " +
           std::to_string(KV.second.Inst->value()) + "\n";
  }
  for (const auto &KV : M->Gauges) {
    std::string N = fullName(KV.second.Name);
    if (N != LastType) {
      Out += "# TYPE " + N + " gauge\n";
      LastType = N;
    }
    Out += N + promLabelSet(KV.second.Labels) + " " +
           std::to_string(KV.second.Inst->V.load(std::memory_order_relaxed)) +
           "\n";
  }
  for (const auto &KV : M->Histograms) {
    const HistogramImpl &H = *KV.second.Inst;
    std::string N = fullName(KV.second.Name);
    if (N != LastType) {
      Out += "# TYPE " + N + " histogram\n";
      LastType = N;
    }
    // Cumulative buckets over the non-empty slots; `le` is the inclusive
    // upper edge of each slot.
    uint64_t Cum = 0;
    for (unsigned B = 0; B != Histogram::NumBuckets; ++B) {
      uint64_t C = H.bucket(B);
      if (!C)
        continue;
      Cum += C;
      uint64_t Upper = B + 1 == Histogram::NumBuckets
                           ? UINT64_MAX
                           : Histogram::bucketLowNs(B + 1) - 1;
      Out += N + "_bucket" +
             promLabelSet(KV.second.Labels,
                          "le=\"" + std::to_string(Upper) + "\"") +
             " " + std::to_string(Cum) + "\n";
    }
    Out += N + "_bucket" + promLabelSet(KV.second.Labels, "le=\"+Inf\"") +
           " " + std::to_string(Cum) + "\n";
    Out += N + "_sum" + promLabelSet(KV.second.Labels) + " " +
           std::to_string(H.sum()) + "\n";
    Out += N + "_count" + promLabelSet(KV.second.Labels) + " " +
           std::to_string(H.count()) + "\n";
  }
  return Out;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *G = new MetricsRegistry();
  return *G;
}
