//===- Trace.h - Structured event tracing -----------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's event model. Producers (the interpreter, the
/// Pipeline driver) emit TraceEvents into a TraceSink; sinks decide what to
/// keep:
///
///  - ChromeTraceSink records everything and serializes the Chrome
///    trace-event JSON array format, loadable in chrome://tracing and
///    Perfetto. Events use the machine's *simulated* clock for runtime
///    events (pid = node, tid = functional unit) and the host wall clock
///    for compiler-pass events, so a single file shows both the compile
///    and the execution.
///
///  - CounterTraceSink aggregates per-event-name counts and total durations
///    into a Statistics object — the compact counter form the BENCH_*.json
///    perf artifacts use.
///
/// A null sink pointer means tracing is off; every producer guards its
/// emission with a branch on the pointer, so the disabled path costs one
/// predictable-not-taken test and the interpreter's hot loop is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_TRACE_H
#define EARTHCC_SUPPORT_TRACE_H

#include "support/Statistics.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace earthcc {

/// Well-known thread ids within one traced process (= simulated node).
/// Chrome renders each (pid, tid) pair as its own horizontal track.
enum TraceTid : uint32_t {
  TraceTidEU = 0,    ///< Execution unit: fiber slices, context switches.
  TraceTidSU = 1,    ///< Synchronization unit: remote-request service.
  TraceTidComm = 2,  ///< In-flight split-phase transactions (issue..complete).
  TraceTidPass = 50, ///< Compiler passes (wall clock; pid 0 only).
};

/// One structured trace event, modeled on the Chrome trace-event format.
struct TraceEvent {
  /// One key/value argument. Numeric values render unquoted in JSON.
  struct Arg {
    std::string Key;
    std::string Val;
    bool Quoted = false;

    Arg(std::string K, uint64_t V)
        : Key(std::move(K)), Val(std::to_string(V)) {}
    Arg(std::string K, int64_t V)
        : Key(std::move(K)), Val(std::to_string(V)) {}
    Arg(std::string K, int V) : Key(std::move(K)), Val(std::to_string(V)) {}
    Arg(std::string K, unsigned V)
        : Key(std::move(K)), Val(std::to_string(V)) {}
    Arg(std::string K, std::string V)
        : Key(std::move(K)), Val(std::move(V)), Quoted(true) {}
    Arg(std::string K, const char *V)
        : Key(std::move(K)), Val(V), Quoted(true) {}
  };

  std::string Name;     ///< Event name ("read-data", "blkmov", pass name...).
  const char *Cat = ""; ///< Category ("comm", "su", "eu", "sync", "pass").
  char Ph = 'X';        ///< 'X' complete, 'i' instant, 'C' counter, 'M' meta.
  double TsNs = 0.0;    ///< Start timestamp in nanoseconds.
  double DurNs = 0.0;   ///< Duration in nanoseconds ('X' events only).
  uint32_t Pid = 0;     ///< Simulated node (compiler events use pid 0).
  uint32_t Tid = TraceTidEU; ///< Track within the node; see TraceTid.
  std::vector<Arg> Args;
};

/// Receiver of trace events. Implementations must tolerate events arriving
/// out of timestamp order (split-phase completions are known at issue time,
/// so a transaction's full span is emitted when it is issued).
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void event(const TraceEvent &E) = 0;
};

/// Records every event and serializes Chrome trace-event JSON.
class ChromeTraceSink : public TraceSink {
public:
  void event(const TraceEvent &E) override { Events.push_back(E); }

  const std::vector<TraceEvent> &events() const { return Events; }

  /// Serializes the JSON array form: `[ {...}, {...} ]`. Timestamps are
  /// converted to microseconds (the Chrome unit) with nanosecond precision.
  void write(std::ostream &OS) const;
  std::string json() const;

private:
  std::vector<TraceEvent> Events;
};

/// Aggregates events into Statistics counters:
///   trace.count.<name> — number of events with that name;
///   trace.ns.<name>    — total duration of 'X' events, in integer ns.
class CounterTraceSink : public TraceSink {
public:
  void event(const TraceEvent &E) override;

  const Statistics &stats() const { return Counters; }
  Statistics &stats() { return Counters; }

private:
  Statistics Counters;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
std::string jsonEscape(const std::string &S);

} // namespace earthcc

#endif // EARTHCC_SUPPORT_TRACE_H
