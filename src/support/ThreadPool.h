//===- ThreadPool.h - Minimal fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for host-side compiler parallelism (the
/// per-function bytecode lowering is the first user). Tasks are plain
/// std::function<void()>; wait() blocks until every submitted task has
/// finished and rethrows the first task exception, so callers get the same
/// failure behavior as the serial loop they replaced.
///
/// Determinism contract: the pool orders nothing. Users that need
/// deterministic output (all of them, in this compiler) must write results
/// into pre-allocated, task-owned slots — e.g. parallelFor(N) hands each
/// index to exactly one task, and the caller indexes results by it — so the
/// output is a pure function of the input regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_THREADPOOL_H
#define EARTHCC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace earthcc {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 means hardwareThreads()).
  explicit ThreadPool(unsigned Threads) {
    if (Threads == 0)
      Threads = hardwareThreads();
    Workers.reserve(Threads);
    for (unsigned I = 0; I != Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stopping = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// The host's concurrency (never 0).
  static unsigned hardwareThreads() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Enqueues \p Task. May be called while tasks run (tasks may not submit).
  void run(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Queue.push_back(std::move(Task));
      ++Outstanding;
    }
    WorkAvailable.notify_one();
  }

  /// Blocks until every task submitted so far has completed, then rethrows
  /// the first exception a task raised (if any).
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    AllDone.wait(Lock, [this] { return Outstanding == 0; });
    if (FirstError) {
      std::exception_ptr E = FirstError;
      FirstError = nullptr;
      std::rethrow_exception(E);
    }
  }

  /// Runs Body(0) .. Body(Count-1) across the pool and waits. Each index is
  /// claimed by exactly one worker; results keyed by index are therefore
  /// deterministic no matter how the workers interleave. Once any body
  /// throws, no lane claims another index (indices already claimed still
  /// finish), so a failing run stops promptly instead of grinding through
  /// the remaining indices; wait() rethrows the first exception as usual.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body) {
    std::atomic<size_t> Next{0};
    std::atomic<bool> Failed{false};
    size_t Lanes = std::min<size_t>(Count, numThreads());
    for (size_t L = 0; L != Lanes; ++L)
      run([&Next, &Failed, Count, &Body] {
        for (size_t I = Next.fetch_add(1);
             I < Count && !Failed.load(std::memory_order_relaxed);
             I = Next.fetch_add(1)) {
          try {
            Body(I);
          } catch (...) {
            Failed.store(true, std::memory_order_relaxed);
            throw; // wait() reports it as FirstError.
          }
        }
      });
    wait();
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(M);
        WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      std::exception_ptr Err;
      try {
        Task();
      } catch (...) {
        Err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> Lock(M);
        if (Err && !FirstError)
          FirstError = Err;
        if (--Outstanding == 0)
          AllDone.notify_all();
      }
    }
  }

  std::mutex M;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t Outstanding = 0;
  bool Stopping = false;
  std::exception_ptr FirstError;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_THREADPOOL_H
