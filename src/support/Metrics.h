//===- Metrics.h - Process-wide metrics registry ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small operational-metrics layer: a registry of labeled counters, gauges
/// and fixed-bucket histograms, cheap enough to leave on everywhere. This is
/// *host-side* observability only — nothing recorded here may feed back into
/// compilation or simulation, so simulated results and comm profiles stay
/// bit-identical whether or not anyone is watching (the same contract as
/// TraceSink and the Statistics counters).
///
/// Design points:
///  - Instruments are identified by (name, label set). Requesting the same
///    identity twice returns a handle to the same instrument, so call sites
///    never coordinate registration.
///  - Handles are trivially copyable pointers and null-safe: a
///    default-constructed handle ignores updates, which lets subsystems keep
///    unconditional `Counter.inc()` calls with no registry wired up.
///  - Counter and histogram updates are thread-sharded: each shard is a
///    cache-line-isolated slot picked by hashed thread id, written with
///    relaxed atomics, and summed only at read time. Writers never contend
///    on a shared line unless two threads hash to the same shard.
///  - Histograms use a fixed log-linear bucketing (4 sub-buckets per power
///    of two, ~25% worst-case resolution), so memory is bounded and
///    percentile queries are exact functions of the recorded multiset.
///  - Exposition is pull-only: snapshotJson() for the `--serve` "metrics" op
///    and bench embedding, prometheusText() for scrape-style tooling. Both
///    render instruments in sorted (name, labels) order so output is
///    deterministic for a given set of recorded values.
///
/// The process-global registry (MetricsRegistry::global()) is what the
/// driver, pipeline, engines and serve loop record into; tests construct
/// private registries so unit expectations never see cross-test pollution.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_METRICS_H
#define EARTHCC_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace earthcc {

namespace json {
class Value;
} // namespace json

/// One metric label, e.g. {"stage", "lower"}. Labels are sorted by key at
/// registration so {"a","1"},{"b","2"} and {"b","2"},{"a","1"} are the same
/// instrument.
using MetricLabel = std::pair<std::string, std::string>;
using MetricLabels = std::vector<MetricLabel>;

namespace metrics_detail {

/// Shard count for write-sharded instruments. A modest power of two: enough
/// that the service worker pool rarely collides, small enough that reading
/// (sum over shards) stays trivial.
constexpr unsigned NumShards = 8;

/// Index of the calling thread's shard (hashed thread id, cached per
/// thread).
unsigned shardIndex();

struct alignas(64) CounterShard {
  std::atomic<uint64_t> V{0};
};

struct CounterImpl;
struct GaugeImpl;
struct HistogramImpl;

} // namespace metrics_detail

/// Monotonic counter handle. Null-safe: a default-constructed handle drops
/// updates and reads 0.
class Counter {
public:
  Counter() = default;
  void inc(uint64_t Delta = 1) const;
  uint64_t value() const;
  explicit operator bool() const { return I != nullptr; }

private:
  friend class MetricsRegistry;
  explicit Counter(metrics_detail::CounterImpl *Impl) : I(Impl) {}
  metrics_detail::CounterImpl *I = nullptr;
};

/// Last-value gauge handle (single atomic; gauges are not hot-path).
class Gauge {
public:
  Gauge() = default;
  void set(int64_t V) const;
  void add(int64_t Delta) const;
  int64_t value() const;
  explicit operator bool() const { return I != nullptr; }

private:
  friend class MetricsRegistry;
  explicit Gauge(metrics_detail::GaugeImpl *Impl) : I(Impl) {}
  metrics_detail::GaugeImpl *I = nullptr;
};

/// Fixed-bucket histogram handle for non-negative integer samples
/// (typically nanoseconds).
class Histogram {
public:
  /// 4 exact buckets below 4, then 4 linear sub-buckets per octave up to
  /// 2^63: index = 4 * (log2 - 1) + top-2-mantissa-bits.
  static constexpr unsigned NumBuckets = 4 + 4 * 62;

  static unsigned bucketOf(uint64_t V);
  /// Inclusive lower bound of bucket \p B.
  static uint64_t bucketLowNs(unsigned B);

  Histogram() = default;
  void observe(uint64_t V) const;
  uint64_t count() const;
  uint64_t sum() const;
  uint64_t min() const; ///< 0 when empty.
  uint64_t max() const; ///< 0 when empty.
  /// Lower bound of the bucket holding the ceil(P% * count)-th smallest
  /// sample (0 < P <= 100); 0 when empty.
  uint64_t percentile(double P) const;
  explicit operator bool() const { return I != nullptr; }

private:
  friend class MetricsRegistry;
  explicit Histogram(metrics_detail::HistogramImpl *Impl) : I(Impl) {}
  metrics_detail::HistogramImpl *I = nullptr;
};

/// Registry of instruments. Registration and snapshotting take a mutex;
/// updates through handles are lock-free. Instruments live as long as the
/// registry, so handles must not outlive it (the global registry never
/// dies).
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter counter(std::string Name, MetricLabels Labels = {});
  Gauge gauge(std::string Name, MetricLabels Labels = {});
  Histogram histogram(std::string Name, MetricLabels Labels = {});

  /// Zeroes every registered instrument (instruments stay registered).
  /// Test-only convenience; racing updates may survive the wipe.
  void reset();

  /// Snapshot as a json::Value object:
  /// {"counters": [{"name", "labels", "value"}...],
  ///  "gauges":   [{"name", "labels", "value"}...],
  ///  "histograms": [{"name", "labels", "count", "sum", "min", "max",
  ///                  "p50", "p95", "p99", "buckets": [[low, n]...]}...]}
  /// Zero-valued counters and empty histograms are included (they document
  /// which instruments exist); bucket lists carry only non-empty buckets.
  json::Value snapshot() const;

  /// snapshot() rendered as a JSON string.
  std::string snapshotJson() const;

  /// Prometheus text exposition (counters as `<prefix>_<name>_total`,
  /// histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`;
  /// '.' and '-' in metric names become '_').
  std::string prometheusText(const std::string &Prefix = "earthcc") const;

  /// The process-wide registry.
  static MetricsRegistry &global();

private:
  struct Impl;
  Impl *M;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_METRICS_H
