//===- CommProfiler.h - Per-site communication profiles ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-site dynamic communication profiles, accumulated in *simulated* time
/// by both execution engines. A "site" is one comm-capable SIMPLE statement
/// (remote read, remote write, blkmov, atomic); site ids are assigned by
/// simple/CommSites.h as a pure function of the module, so profiles recorded
/// by the AST walker and the bytecode engine are bit-identical row for row.
///
/// Like TraceSink, a null CommProfiler pointer on MachineConfig means
/// profiling is off; every engine hook is guarded by one branch on the
/// pointer, so the disabled path adds no work to the hot loop.
///
/// Latencies are kept in a deterministic fixed-bucket histogram (16 linear
/// sub-buckets per power of two, ~6% worst-case resolution), so percentile
/// queries are exact functions of the recorded multiset — no sampling, no
/// host-dependent state — and memory per site stays bounded no matter how
/// many messages a run issues.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_COMMPROFILER_H
#define EARTHCC_SUPPORT_COMMPROFILER_H

#include <cstdint>
#include <string>
#include <vector>

namespace earthcc {

/// The dynamic operation classes the profiler distinguishes. These mirror
/// the OpCounters fields, specialized to split-phase communication.
enum class CommOpKind : uint8_t { Read, Write, BlkMov, Atomic };

const char *commOpKindName(CommOpKind K);

/// End-of-run occupancy statistics for one directed network link, reported
/// by the NetworkModel (earth/NetworkModel.h). Defined here so the profiler
/// (support layer) can carry them without depending on the earth layer.
struct NetLinkStats {
  std::string Name;       ///< Stable link id, e.g. "n3->n4" or "up1.2".
  uint64_t Msgs = 0;      ///< Transfers that traversed this link.
  uint64_t Words = 0;     ///< Payload words carried.
  double BusyNs = 0.0;    ///< Total simulated occupancy (latency + transfer).
  unsigned MaxQueueDepth = 0; ///< Peak FIFO depth (queued + in flight).
};

/// Accumulated dynamic behavior of one site.
struct SiteProfile {
  /// 16 exact buckets below 16 ns, then 16 linear sub-buckets per octave up
  /// to 2^63: index = 16 * (log2 - 3) + top-4-mantissa-bits.
  static constexpr unsigned NumBuckets = 16 + 16 * 60;

  uint64_t Msgs = 0;       ///< Remote transactions issued from this site.
  uint64_t Words = 0;      ///< Words moved by those transactions.
  uint64_t LocalHits = 0;  ///< Local fallbacks (no remote traffic).
  double LatSumNs = 0.0;   ///< Sum of issue-start -> complete latencies.
  uint64_t LatCount = 0;   ///< Latency samples recorded (== Msgs for the
                           ///< engines, which sample once per message; kept
                           ///< separate so standalone histogram users — and
                           ///< the diff tool's edge cases — never depend on
                           ///< the caller mutating Msgs first).
  uint64_t LatMinNs = 0;   ///< Minimum latency (integer ns; 0 when empty).
  uint64_t LatMaxNs = 0;   ///< Maximum latency (integer ns).
  std::vector<uint64_t> LatHist; ///< Lazily sized to NumBuckets on first use.

  /// Bucket index for a latency of \p Ns nanoseconds.
  static unsigned bucketOf(uint64_t Ns);
  /// Inclusive lower bound of bucket \p B, in nanoseconds.
  static uint64_t bucketLowNs(unsigned B);

  void recordLatency(uint64_t Ns);

  /// Latency at percentile \p P (0 < P <= 100): the lower bound of the
  /// histogram bucket holding the ceil(P% * LatCount)-th smallest latency.
  /// Returns 0 when no samples were recorded; a single sample is every
  /// percentile of itself.
  uint64_t latencyPercentileNs(double P) const;
  double latencyMeanNs() const { return LatCount ? LatSumNs / LatCount : 0.0; }
};

/// Per-site profile table plus a per-node-pair traffic matrix. Reset by
/// beginRun(); engines call record()/recordLocal() from the same points
/// where they bump OpCounters, with the same operands, so every derived
/// number is engine-invariant by construction.
class CommProfiler {
public:
  /// Clears all state and sizes the tables. Engines call this at run start,
  /// so one profiler instance observes exactly one run at a time.
  void beginRun(unsigned NumSites, unsigned NumNodes);

  /// Records one remote split-phase transaction: issued from node \p From
  /// against node \p To, moving \p Words words, issue started at
  /// \p IssueStartNs and completed at \p DoneNs (simulated clock).
  void record(int32_t Site, CommOpKind Op, unsigned From, unsigned To,
              uint64_t Words, double IssueStartNs, double DoneNs);

  /// Records a comm-capable operation that resolved locally (no message).
  void recordLocal(int32_t Site, CommOpKind Op, unsigned Node,
                   uint64_t Words);

  unsigned numSites() const { return NumSites; }
  unsigned numNodes() const { return NumNodes; }
  const SiteProfile &site(unsigned Id) const { return Sites[Id]; }
  CommOpKind siteOp(unsigned Id) const { return SiteOps[Id]; }

  uint64_t trafficMsgs(unsigned From, unsigned To) const {
    return TrafficMsgs[From * NumNodes + To];
  }
  uint64_t trafficWords(unsigned From, unsigned To) const {
    return TrafficWords[From * NumNodes + To];
  }

  uint64_t totalMsgs() const;

  /// Attaches the network layer's end-of-run view: topology name, per-link
  /// occupancy stats, the NumNodes x NumNodes matrix of words the model
  /// actually injected (row = source), and the run's end time (for
  /// utilization). Engines call this once after a successful run. The ideal
  /// network reports no links, which leaves json() byte-identical to the
  /// pre-NetworkModel encoding — the engine-equivalence sweep relies on it.
  void setNetwork(std::string TopologyName, std::vector<NetLinkStats> Links,
                  std::vector<uint64_t> PairWords, double EndTimeNs);

  const std::string &netTopology() const { return NetTopology; }
  const std::vector<NetLinkStats> &netLinks() const { return NetLinks; }
  const std::vector<uint64_t> &netPairWords() const { return NetPairWords; }
  double netEndTimeNs() const { return NetEndTimeNs; }

  /// Serializes every recorded number (per-site rows, traffic matrix, and
  /// the network block when a routed topology reported links) as JSON. The
  /// encoding is a pure function of the recorded data, so equal strings
  /// <=> equal profiles; the equivalence tests compare this form.
  std::string json() const;

private:
  unsigned NumSites = 0;
  unsigned NumNodes = 0;
  std::vector<SiteProfile> Sites;
  std::vector<CommOpKind> SiteOps;
  std::vector<uint64_t> TrafficMsgs;  ///< NumNodes x NumNodes, row = from.
  std::vector<uint64_t> TrafficWords; ///< Same shape, in words.
  std::string NetTopology;
  std::vector<NetLinkStats> NetLinks;
  std::vector<uint64_t> NetPairWords; ///< Same shape as TrafficWords.
  double NetEndTimeNs = 0.0;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_COMMPROFILER_H
