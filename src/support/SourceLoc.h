//===- SourceLoc.h - Source positions for diagnostics ----------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines SourceLoc, a lightweight (line, column) position used by the
/// EARTH-C frontend and the diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_SOURCELOC_H
#define EARTHCC_SUPPORT_SOURCELOC_H

#include <string>

namespace earthcc {

/// A position in an EARTH-C source buffer. Line and column are 1-based;
/// a default-constructed SourceLoc is "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  /// Renders the location as "line:col", or "<unknown>" if invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_SOURCELOC_H
