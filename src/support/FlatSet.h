//===- FlatSet.h - Hash-indexed flat set and map ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hashed flat-set pattern used across the analyses (first grown ad hoc
/// as Placement's RCESet): contiguous element storage — cheap to scan, copy
/// and snapshot — plus an unordered index for O(1) membership, instead of a
/// node-per-element std::set/std::map.
///
/// Iteration order is insertion order. That is deterministic whenever the
/// insertion sequence is (statement walks, function order), which notably
/// makes pointer-keyed sets *more* reproducible than std::set<const T *>,
/// whose order follows allocation addresses. When an output needs a
/// canonical order, sort at that boundary.
///
/// Inserting an element that is already present never moves storage;
/// inserting a genuinely new element may reallocate, so do not insert new
/// elements while iterating.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_FLATSET_H
#define EARTHCC_SUPPORT_FLATSET_H

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace earthcc {

template <typename T, typename Hash = std::hash<T>> class FlatSet {
public:
  /// Returns true if \p V was newly inserted.
  bool insert(const T &V) {
    auto [It, Inserted] = Index.try_emplace(V, Items.size());
    if (Inserted)
      Items.push_back(V);
    return Inserted;
  }
  template <typename Iter> void insert(Iter First, Iter Last) {
    for (; First != Last; ++First)
      insert(*First);
  }

  bool contains(const T &V) const { return Index.count(V) != 0; }
  size_t count(const T &V) const { return Index.count(V); }
  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  typename std::vector<T>::const_iterator begin() const {
    return Items.begin();
  }
  typename std::vector<T>::const_iterator end() const { return Items.end(); }

private:
  std::vector<T> Items;
  std::unordered_map<T, size_t, Hash> Index;
};

/// Flat map with tombstone erasure: erase marks the slot dead and drops the
/// index entry; storage is compacted when eraseIf() leaves the vector more
/// than half dead. Point erases between eraseIf() calls just leave a
/// tombstone, so values found via find()/operator[] stay pinned until the
/// next eraseIf().
template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
public:
  V &operator[](const K &Key) {
    auto [It, Inserted] = Index.try_emplace(Key, Items.size());
    if (Inserted)
      Items.push_back(Entry{Key, V{}, false});
    return Items[It->second].Value;
  }

  V *find(const K &Key) {
    auto It = Index.find(Key);
    return It == Index.end() ? nullptr : &Items[It->second].Value;
  }
  const V *find(const K &Key) const {
    auto It = Index.find(Key);
    return It == Index.end() ? nullptr : &Items[It->second].Value;
  }
  bool contains(const K &Key) const { return Index.count(Key) != 0; }
  size_t count(const K &Key) const { return Index.count(Key); }

  bool erase(const K &Key) {
    auto It = Index.find(Key);
    if (It == Index.end())
      return false;
    Items[It->second].Dead = true;
    Index.erase(It);
    return true;
  }

  /// Erases every entry for which \p P(key, value) is true, then compacts
  /// if tombstones dominate the storage.
  template <typename Pred> void eraseIf(Pred P) {
    for (Entry &E : Items)
      if (!E.Dead && P(E.Key, E.Value)) {
        E.Dead = true;
        Index.erase(E.Key);
      }
    if (Index.size() * 2 < Items.size())
      compact();
  }

  /// Visits live entries in insertion order.
  template <typename Fn> void forEach(Fn F) const {
    for (const Entry &E : Items)
      if (!E.Dead)
        F(E.Key, E.Value);
  }

  size_t size() const { return Index.size(); }
  bool empty() const { return Index.empty(); }

private:
  struct Entry {
    K Key;
    V Value;
    bool Dead = false;
  };

  void compact() {
    std::vector<Entry> Live;
    Live.reserve(Index.size());
    for (Entry &E : Items)
      if (!E.Dead)
        Live.push_back(std::move(E));
    Items = std::move(Live);
    for (size_t I = 0; I != Items.size(); ++I)
      Index[Items[I].Key] = I;
  }

  std::vector<Entry> Items;
  std::unordered_map<K, size_t, Hash> Index;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_FLATSET_H
