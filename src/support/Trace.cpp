//===- Trace.cpp - Structured event tracing --------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace earthcc;

TraceSink::~TraceSink() = default;

std::string earthcc::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\r': Out += "\\r"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Renders a timestamp/duration in microseconds with fixed 3-decimal
/// precision, so nanosecond-granular simulated times round-trip exactly and
/// the output is deterministic across platforms.
static std::string formatUs(double Ns) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Ns / 1000.0);
  return Buf;
}

void ChromeTraceSink::write(std::ostream &OS) const {
  OS << "[\n";
  for (size_t I = 0; I != Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    OS << "{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
       << jsonEscape(E.Cat) << "\",\"ph\":\"" << E.Ph
       << "\",\"ts\":" << formatUs(E.TsNs);
    if (E.Ph == 'X')
      OS << ",\"dur\":" << formatUs(E.DurNs);
    OS << ",\"pid\":" << E.Pid << ",\"tid\":" << E.Tid;
    if (E.Ph == 'i')
      OS << ",\"s\":\"t\""; // Instant events scoped to their thread.
    if (!E.Args.empty()) {
      OS << ",\"args\":{";
      for (size_t J = 0; J != E.Args.size(); ++J) {
        const TraceEvent::Arg &A = E.Args[J];
        OS << (J ? "," : "") << "\"" << jsonEscape(A.Key) << "\":";
        if (A.Quoted)
          OS << "\"" << jsonEscape(A.Val) << "\"";
        else
          OS << A.Val;
      }
      OS << "}";
    }
    OS << "}" << (I + 1 == Events.size() ? "" : ",") << "\n";
  }
  OS << "]\n";
}

std::string ChromeTraceSink::json() const {
  std::ostringstream OS;
  write(OS);
  return OS.str();
}

void CounterTraceSink::event(const TraceEvent &E) {
  if (E.Ph == 'M' || E.Ph == 'C')
    return; // Metadata and counter samples are not countable operations.
  Counters.add("trace.count." + E.Name);
  if (E.Ph == 'X')
    Counters.add("trace.ns." + E.Name,
                 static_cast<uint64_t>(std::llround(E.DurNs)));
}
