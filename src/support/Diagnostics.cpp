//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace earthcc;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": " << kindName(Kind) << ": " << Message;
  return OS.str();
}

std::string DiagnosticsEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << "\n";
  return OS.str();
}
