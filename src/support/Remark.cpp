//===- Remark.cpp - Structured optimization remarks -----------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

#include "support/Trace.h" // jsonEscape

namespace earthcc {

std::string Remark::str() const {
  std::string Out = Function + ":" + Loc.str() + ": [" + Pass + "." +
                    Category + "] " + Message;
  return Out;
}

bool RemarkStream::hasPass(const std::string &Pass,
                           const std::string &Category) const {
  for (const Remark &R : Remarks)
    if (R.Pass == Pass && (Category.empty() || R.Category == Category))
      return true;
  return false;
}

std::string RemarkStream::str() const {
  std::string Out;
  for (const Remark &R : Remarks)
    Out += "remark: " + R.str() + "\n";
  return Out;
}

std::string RemarkStream::json() const {
  std::string Out = "[";
  bool First = true;
  for (const Remark &R : Remarks) {
    Out += First ? "" : ", ";
    First = false;
    Out += "{\"pass\": \"" + jsonEscape(R.Pass) + "\", \"category\": \"" +
           jsonEscape(R.Category) + "\", \"function\": \"" +
           jsonEscape(R.Function) + "\", \"loc\": \"" + R.Loc.str() +
           "\", \"message\": \"" + jsonEscape(R.Message) + "\", \"args\": {";
    bool FirstArg = true;
    for (const auto &[K, V] : R.Args) {
      Out += FirstArg ? "" : ", ";
      FirstArg = false;
      Out += "\"" + jsonEscape(K) + "\": \"" + jsonEscape(V) + "\"";
    }
    Out += "}}";
  }
  return Out + "]";
}

} // namespace earthcc
