//===- Remark.h - Structured optimization remarks ---------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured optimization remarks, in the spirit of LLVM's -Rpass /
/// optimization-record machinery but owned per-compilation. Placement and
/// CommSelection emit one Remark per transformation decision — tuple hoisted
/// out of a loop, reads merged into a blkmov, redundant read eliminated,
/// RemoteFill inserted — carrying the source location of the access and the
/// cost-model numbers that justified the decision. The Pipeline exposes the
/// stream as a compile product, and the profile report joins remarks with
/// the dynamic per-site profiles by (function, location).
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_REMARK_H
#define EARTHCC_SUPPORT_REMARK_H

#include "support/SourceLoc.h"

#include <string>
#include <utility>
#include <vector>

namespace earthcc {

/// One transformation decision, tied to the source location of the access
/// it concerns. Args carry the decision's numbers (frequencies, word
/// counts, thresholds) in a machine-readable form; Message renders them
/// for humans.
struct Remark {
  std::string Pass;     ///< Emitting pass: "placement" or "comm-select".
  std::string Category; ///< Decision kind: "hoist", "block", "pipeline", ...
  std::string Function; ///< Enclosing SIMPLE function.
  SourceLoc Loc;        ///< Location of the source-level access.
  std::string Message;  ///< Human-readable sentence with the numbers.
  std::vector<std::pair<std::string, std::string>> Args; ///< Key -> value.

  /// Renders "fn:line:col: [pass.category] message".
  std::string str() const;
};

/// An append-only stream of remarks in emission order (which is
/// deterministic: passes walk functions and statements in program order).
class RemarkStream {
public:
  void emit(Remark R) { Remarks.push_back(std::move(R)); }

  const std::vector<Remark> &all() const { return Remarks; }
  bool empty() const { return Remarks.empty(); }
  size_t size() const { return Remarks.size(); }

  /// True if any remark came from \p Pass (optionally narrowed to
  /// \p Category).
  bool hasPass(const std::string &Pass, const std::string &Category = "") const;

  /// One remark per line, in emission order.
  std::string str() const;

  /// JSON array of remark objects (Args rendered as a nested object;
  /// values are emitted as JSON strings).
  std::string json() const;

private:
  std::vector<Remark> Remarks;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_REMARK_H
