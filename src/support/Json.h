//===- Json.h - Minimal JSON value, parser and writer -----------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON layer for the service protocol: `earthcc --serve` reads one
/// request object per line and answers one response object per line, and
/// the load client parses those responses back. The project already *emits*
/// JSON in several places by hand (trace sinks, profile reports); this adds
/// the missing direction — parsing — plus an escaping writer, with no
/// third-party dependency.
///
/// The value model is deliberately tiny: null, bool, double, string, array,
/// object (insertion-ordered key list, first occurrence wins on lookup).
/// Numbers are doubles — request ids and option values all fit exactly in
/// the 53-bit integer range, which is far beyond anything the protocol
/// carries per field.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_JSON_H
#define EARTHCC_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace earthcc {
namespace json {

class Value;

/// Object members in insertion order (duplicate keys are preserved on
/// parse; lookup returns the first).
using Member = std::pair<std::string, Value>;

/// One JSON value.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value number(double D);
  static Value string(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &items() const { return Items; }
  const std::vector<Member> &members() const { return Members; }

  std::vector<Value> &items() { return Items; }
  std::vector<Member> &members() { return Members; }

  /// First member named \p Key, or null if absent (only meaningful on
  /// objects; returns null for every other kind).
  const Value *find(std::string_view Key) const;

  /// Convenience typed lookups with defaults, for protocol fields.
  bool getBool(std::string_view Key, bool Default) const;
  double getNumber(std::string_view Key, double Default) const;
  std::string getString(std::string_view Key,
                        const std::string &Default) const;

  /// Serializes compactly (no whitespace). Strings are escaped per RFC
  /// 8259; doubles that hold exact integers print without a fraction so
  /// ids round-trip textually.
  std::string str() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Items;
  std::vector<Member> Members;
};

/// Escapes \p S for inclusion in a JSON string literal (no surrounding
/// quotes). Control characters below 0x20 become \u00XX.
std::string escape(std::string_view S);

/// Renders \p S as a quoted, escaped JSON string literal.
std::string quote(std::string_view S);

/// Parses \p Text as one JSON value. Returns false with \p Err set (byte
/// offset + message) on malformed input or trailing garbage.
bool parse(std::string_view Text, Value &Out, std::string &Err);

} // namespace json
} // namespace earthcc

#endif // EARTHCC_SUPPORT_JSON_H
