//===- Diagnostics.h - Error reporting for the compiler ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never prints directly or throws;
/// it records errors here and callers decide how to surface them.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_DIAGNOSTICS_H
#define EARTHCC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace earthcc {

/// Severity of a recorded diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One recorded diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders the diagnostic in "line:col: error: message" style.
  std::string str() const;
};

/// Collects diagnostics produced while compiling one translation unit.
///
/// The engine is append-only; passes query hasErrors() to decide whether it
/// is safe to continue.
class DiagnosticsEngine {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Error, Loc, Message});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Warning, Loc, Message});
  }
  void note(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Note, Loc, Message});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line. Convenient for tests and tools.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_DIAGNOSTICS_H
