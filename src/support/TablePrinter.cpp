//===- TablePrinter.cpp ---------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

using namespace earthcc;

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(Header.size());
  Rows.push_back({/*IsRule=*/false, std::move(Cells)});
}

void TablePrinter::addRule() { Rows.push_back({/*IsRule=*/true, {}}); }

std::string TablePrinter::fmt(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const Row &R : Rows)
    for (size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto printRule = [&] {
    for (size_t W : Widths)
      OS << '+' << std::string(W + 2, '-');
    OS << "+\n";
  };
  auto printCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << "| " << Cell << std::string(Widths[I] - Cell.size() + 1, ' ');
    }
    OS << "|\n";
  };

  printRule();
  printCells(Header);
  printRule();
  for (const Row &R : Rows) {
    if (R.IsRule)
      printRule();
    else
      printCells(R.Cells);
  }
  printRule();
}

std::string TablePrinter::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
