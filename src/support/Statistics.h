//===- Statistics.h - Named counters for compiler passes --------*- C++ -*-===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, in the spirit of LLVM's Statistic class but
/// owned per-compilation rather than global, so parallel compilations and
/// tests never interfere.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SUPPORT_STATISTICS_H
#define EARTHCC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace earthcc {

/// Named counters incremented by passes; keys are "pass.counter" strings.
///
/// The map is ordered so that rendering is deterministic.
class Statistics {
public:
  void add(const std::string &Key, uint64_t Delta = 1) {
    Counters[Key] += Delta;
  }
  uint64_t get(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }
  const std::map<std::string, uint64_t> &all() const { return Counters; }
  bool empty() const { return Counters.empty(); }

  /// Accumulates every counter of \p Other into this registry. Used to fold
  /// per-stage counters into a compilation total and to combine the counter
  /// sinks of independent runs into one report.
  void merge(const Statistics &Other) {
    for (const auto &[Key, Value] : Other.Counters)
      Counters[Key] += Value;
  }

  /// Renders "key = value" lines sorted by key.
  std::string str() const {
    std::string Out;
    for (const auto &[Key, Value] : Counters)
      Out += Key + " = " + std::to_string(Value) + "\n";
    return Out;
  }

  /// Serializes as a flat JSON object, keys sorted: {"a.b": 1, ...}.
  /// Keys only ever contain [A-Za-z0-9._-], so no escaping is needed.
  std::string json() const {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Key, Value] : Counters) {
      Out += First ? "" : ", ";
      Out += "\"" + Key + "\": " + std::to_string(Value);
      First = false;
    }
    return Out + "}";
  }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace earthcc

#endif // EARTHCC_SUPPORT_STATISTICS_H
