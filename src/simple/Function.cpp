//===- Function.cpp -------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Function.h"

using namespace earthcc;

Var *Function::addParam(const std::string &ParamName, const Type *Ty) {
  Vars.push_back(std::make_unique<Var>(ParamName, Ty, VarKind::Param,
                                       NextVarId++));
  Params.push_back(Vars.back().get());
  return Vars.back().get();
}

Var *Function::addLocal(const std::string &LocalName, const Type *Ty,
                        VarKind Kind) {
  assert((Kind == VarKind::Local || Kind == VarKind::Shared) &&
         "addLocal only makes Local or Shared variables");
  Vars.push_back(std::make_unique<Var>(LocalName, Ty, Kind, NextVarId++));
  return Vars.back().get();
}

Var *Function::addTemp(const Type *Ty, VarKind Kind) {
  auto nextName = [this, Kind] {
    switch (Kind) {
    case VarKind::CommTemp:
      return "comm" + std::to_string(NextCommNum++);
    case VarKind::BlockTemp:
      return "bcomm" + std::to_string(NextBlockNum++);
    default:
      assert(Kind == VarKind::Temp && "unexpected temp kind");
      return "temp" + std::to_string(NextTempNum++);
    }
  };
  // Skip numbers that collide with programmer-declared names (EARTH-C
  // sources are free to declare their own comm1 / temp3).
  std::string TempName = nextName();
  while (findVar(TempName))
    TempName = nextName();
  Vars.push_back(std::make_unique<Var>(TempName, Ty, Kind, NextVarId++));
  return Vars.back().get();
}

Var *Function::findVar(const std::string &VarName) const {
  for (const auto &V : Vars)
    if (V->name() == VarName)
      return V.get();
  return nullptr;
}

int Function::relabel() {
  int Next = 1;
  forEachStmt(*Body, [&Next](Stmt &S) { S.setLabel(Next++); });
  return Next - 1;
}

Stmt *Function::findStmt(int L) {
  Stmt *Found = nullptr;
  forEachStmt(*Body, [&](Stmt &S) {
    if (S.label() == L && !Found)
      Found = &S;
  });
  return Found;
}

Function *Module::createFunction(const std::string &Name, const Type *RetTy) {
  if (findFunction(Name))
    return nullptr;
  Funcs.push_back(std::make_unique<Function>(Name, RetTy));
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

Var *Module::addGlobal(const std::string &Name, const Type *Ty, VarKind Kind) {
  assert((Kind == VarKind::Global || Kind == VarKind::Shared) &&
         "module variables must be global or shared");
  Globals.push_back(std::make_unique<Var>(Name, Ty, Kind, NextGlobalId++));
  return Globals.back().get();
}

Var *Module::findGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->name() == Name)
      return G.get();
  return nullptr;
}
