//===- Type.h - Types for the SIMPLE IR -------------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for EARTH-C and the SIMPLE IR: void, int, double, struct types, and
/// pointers (optionally carrying the EARTH-C `local` qualifier, which asserts
/// the pointee lives in the executing node's local memory).
///
/// Layout is word-based, matching how the paper's cost model counts data:
/// every scalar and pointer occupies exactly one machine word; a struct
/// occupies the sum of its field sizes, with nested structs laid out inline.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_TYPE_H
#define EARTHCC_SIMPLE_TYPE_H

#include <cassert>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace earthcc {

class Type;

/// A named aggregate of fields, laid out inline at word granularity.
class StructType {
public:
  struct Field {
    std::string Name;
    const Type *Ty;
    unsigned OffsetWords; ///< Word offset of the field within the struct.
  };

  explicit StructType(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  const std::vector<Field> &fields() const { return Fields; }
  unsigned sizeInWords() const { return SizeWords; }
  bool isComplete() const { return Complete; }

  /// Appends a field; only valid before finalize().
  void addField(const std::string &FieldName, const Type *Ty);

  /// Computes offsets and the total size. Fields are frozen afterwards.
  void finalize();

  /// Finds a direct field by name, or nullptr.
  const Field *findField(const std::string &FieldName) const;

  /// Returns the field whose inline storage contains word \p OffsetWords
  /// (descending into nested structs is the caller's job), or nullptr.
  const Field *fieldAtOffset(unsigned OffsetWords) const;

private:
  std::string Name;
  std::vector<Field> Fields;
  unsigned SizeWords = 0;
  bool Complete = false;
};

/// Kinds of SIMPLE types.
enum class TypeKind { Void, Int, Double, Pointer, Struct };

/// An immutable, interned type. Obtain instances from TypeContext; pointer
/// equality is type equality.
class Type {
public:
  TypeKind kind() const { return Kind; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isScalar() const { return isInt() || isDouble() || isPointer(); }

  /// For pointers: the pointed-to type.
  const Type *pointee() const {
    assert(isPointer() && "not a pointer type");
    return Pointee;
  }

  /// For pointers: true if declared with the EARTH-C `local` qualifier.
  bool isLocalPointer() const { return isPointer() && LocalQual; }

  /// For struct types: the struct definition.
  const StructType *structType() const {
    assert(isStruct() && "not a struct type");
    return Struct;
  }

  /// Size of a value of this type, in machine words.
  unsigned sizeInWords() const {
    if (isStruct())
      return Struct->sizeInWords();
    return isVoid() ? 0 : 1;
  }

  /// Renders the type in EARTH-C syntax, e.g. "struct node local *".
  std::string str() const;

private:
  friend class TypeContext;
  Type(TypeKind Kind, const Type *Pointee, bool LocalQual,
       const StructType *Struct)
      : Kind(Kind), Pointee(Pointee), LocalQual(LocalQual), Struct(Struct) {}

  TypeKind Kind;
  const Type *Pointee = nullptr;
  bool LocalQual = false;
  const StructType *Struct = nullptr;
};

/// Owns and interns all types for one Module.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *voidTy() const { return VoidTy; }
  const Type *intTy() const { return IntTy; }
  const Type *doubleTy() const { return DoubleTy; }

  /// Interns the pointer type to \p Pointee, with or without `local`.
  const Type *pointerTo(const Type *Pointee, bool LocalQual = false);

  /// Interns the type of values of struct \p S.
  const Type *structTy(const StructType *S);

  /// Creates a new (initially incomplete) struct type. Names are unique per
  /// context; returns nullptr if \p Name is already taken.
  StructType *createStruct(const std::string &Name);

  /// Finds a struct by name, or nullptr.
  StructType *findStruct(const std::string &Name);
  const StructType *findStruct(const std::string &Name) const;

private:
  std::deque<Type> Types;
  std::deque<StructType> Structs;
  std::map<std::string, StructType *> StructsByName;
  std::map<std::pair<const Type *, bool>, const Type *> PointerTypes;
  std::map<const StructType *, const Type *> StructValueTypes;
  const Type *VoidTy;
  const Type *IntTy;
  const Type *DoubleTy;
};

} // namespace earthcc

#endif // EARTHCC_SIMPLE_TYPE_H
