//===- Printer.cpp --------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Printer.h"

#include <sstream>

using namespace earthcc;

static std::string remoteMark(Locality Loc, const PrintOptions &Opts) {
  if (!Opts.MarkRemote)
    return "";
  return Loc == Locality::Local ? "" : "{r}";
}

std::string earthcc::printRValue(const RValue &R, const PrintOptions &Opts) {
  switch (R.kind()) {
  case RValueKind::Opnd:
    return static_cast<const OpndRV &>(R).Val.str();
  case RValueKind::Unary: {
    const auto &U = static_cast<const UnaryRV &>(R);
    return std::string(unaryOpName(U.Op)) + U.Val.str();
  }
  case RValueKind::Binary: {
    const auto &B = static_cast<const BinaryRV &>(R);
    return B.A.str() + " " + binaryOpName(B.Op) + " " + B.B.str();
  }
  case RValueKind::Load: {
    const auto &L = static_cast<const LoadRV &>(R);
    std::string Acc = L.FieldName.empty()
                          ? "*" + L.Base->name()
                          : L.Base->name() + "->" + L.FieldName;
    return Acc + remoteMark(L.Loc, Opts);
  }
  case RValueKind::FieldRead: {
    const auto &F = static_cast<const FieldReadRV &>(R);
    return F.StructVar->name() + "." + F.FieldName;
  }
  case RValueKind::AddrOfField: {
    const auto &A = static_cast<const AddrOfFieldRV &>(R);
    return "&(" + A.Base->name() + "->" + A.FieldName + ")";
  }
  }
  return "<bad rvalue>";
}

std::string earthcc::printLValue(const LValue &L, const PrintOptions &Opts) {
  switch (L.Kind) {
  case LValueKind::Var:
    return L.V->name();
  case LValueKind::Store: {
    std::string Acc = L.FieldName.empty() ? "*" + L.V->name()
                                          : L.V->name() + "->" + L.FieldName;
    return Acc + remoteMark(L.Loc, Opts);
  }
  case LValueKind::FieldWrite:
    return L.V->name() + "." + L.FieldName;
  }
  return "<bad lvalue>";
}

namespace {

/// Stateful printer walking the statement tree.
class StmtPrinter {
public:
  StmtPrinter(const PrintOptions &Opts) : Opts(Opts) {}

  std::string run(const Stmt &S, unsigned Indent) {
    print(S, Indent);
    return OS.str();
  }

private:
  void indent(unsigned Indent) {
    OS << std::string(Indent * Opts.IndentWidth, ' ');
  }

  void label(const Stmt &S) {
    if (Opts.ShowLabels && S.label() != 0)
      OS << "S" << S.label() << ": ";
  }

  void printSeqBody(const SeqStmt &Seq, unsigned Indent) {
    for (const auto &Child : Seq.Stmts)
      print(*Child, Indent);
  }

  void print(const Stmt &S, unsigned Indent) {
    switch (S.kind()) {
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(S);
      if (Seq.Parallel) {
        indent(Indent);
        OS << "{^\n";
        printSeqBody(Seq, Indent + 1);
        indent(Indent);
        OS << "^}\n";
      } else {
        printSeqBody(Seq, Indent);
      }
      return;
    }
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      indent(Indent);
      label(S);
      OS << printLValue(A.L, Opts) << " = " << printRValue(*A.R, Opts)
         << ";\n";
      return;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      indent(Indent);
      label(S);
      if (C.Result)
        OS << C.Result->name() << " = ";
      OS << C.CalleeName << "(";
      for (size_t I = 0; I != C.Args.size(); ++I)
        OS << (I ? ", " : "") << C.Args[I].str();
      OS << ")";
      switch (C.Placement) {
      case CallPlacement::Default:
        break;
      case CallPlacement::OwnerOf:
        OS << "@OWNER_OF(" << C.PlacementArg.str() << ")";
        break;
      case CallPlacement::AtNode:
        OS << "@node(" << C.PlacementArg.str() << ")";
        break;
      case CallPlacement::Home:
        OS << "@HOME";
        break;
      }
      OS << ";\n";
      return;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      indent(Indent);
      label(S);
      OS << "return";
      if (R.Val)
        OS << " " << R.Val->str();
      OS << ";\n";
      return;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      indent(Indent);
      label(S);
      if (B.Dir == BlkMovDir::ReadToLocal)
        OS << "blkmov(" << B.Ptr->name() << ", &" << B.LocalStruct->name();
      else
        OS << "blkmov(&" << B.LocalStruct->name() << ", " << B.Ptr->name();
      OS << ", " << B.Words << "w);\n";
      return;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      indent(Indent);
      label(S);
      switch (A.Op) {
      case AtomicOp::WriteTo:
        OS << "writeto(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ");\n";
        return;
      case AtomicOp::AddTo:
        OS << "addto(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ");\n";
        return;
      case AtomicOp::ValueOf:
        OS << A.Result->name() << " = valueof(&" << A.SharedVar->name()
           << ");\n";
        return;
      }
      return;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      indent(Indent);
      label(S);
      OS << "if (" << printRValue(*If.Cond, Opts) << ") {\n";
      printSeqBody(*If.Then, Indent + 1);
      if (!If.Else->empty()) {
        indent(Indent);
        OS << "} else {\n";
        printSeqBody(*If.Else, Indent + 1);
      }
      indent(Indent);
      OS << "}\n";
      return;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      indent(Indent);
      label(S);
      OS << "switch (" << Sw.Val.str() << ") {\n";
      for (const auto &C : Sw.Cases) {
        indent(Indent);
        OS << "case " << C.Value << ":\n";
        printSeqBody(*C.Body, Indent + 1);
      }
      if (!Sw.Default->empty()) {
        indent(Indent);
        OS << "default:\n";
        printSeqBody(*Sw.Default, Indent + 1);
      }
      indent(Indent);
      OS << "}\n";
      return;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      indent(Indent);
      label(S);
      if (W.IsDoWhile) {
        OS << "do {\n";
        printSeqBody(*W.Body, Indent + 1);
        indent(Indent);
        OS << "} while (" << printRValue(*W.Cond, Opts) << ");\n";
      } else {
        OS << "while (" << printRValue(*W.Cond, Opts) << ") {\n";
        printSeqBody(*W.Body, Indent + 1);
        indent(Indent);
        OS << "}\n";
      }
      return;
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(S);
      indent(Indent);
      label(S);
      OS << "forall (...; " << printRValue(*Fa.Cond, Opts) << "; ...) {\n";
      indent(Indent + 1);
      OS << "// init:\n";
      printSeqBody(*Fa.Init, Indent + 1);
      indent(Indent + 1);
      OS << "// step:\n";
      printSeqBody(*Fa.Step, Indent + 1);
      indent(Indent + 1);
      OS << "// body:\n";
      printSeqBody(*Fa.Body, Indent + 1);
      indent(Indent);
      OS << "}\n";
      return;
    }
    }
  }

  const PrintOptions &Opts;
  std::ostringstream OS;
};

} // namespace

std::string earthcc::printStmt(const Stmt &S, const PrintOptions &Opts,
                               unsigned Indent) {
  return StmtPrinter(Opts).run(S, Indent);
}

std::string earthcc::printFunction(const Function &F,
                                   const PrintOptions &Opts) {
  std::ostringstream OS;
  OS << F.returnType()->str() << " " << F.name() << "(";
  for (size_t I = 0; I != F.params().size(); ++I) {
    const Var *P = F.params()[I];
    OS << (I ? ", " : "") << P->type()->str() << " " << P->name();
  }
  OS << ") {\n";
  for (const auto &V : F.vars()) {
    if (V->kind() == VarKind::Param)
      continue;
    OS << "  " << V->type()->str() << " " << V->name() << ";";
    if (V->kind() == VarKind::Shared)
      OS << " // shared";
    OS << "\n";
  }
  OS << printStmt(F.body(), Opts, /*Indent=*/1);
  OS << "}\n";
  return OS.str();
}

std::string earthcc::printModule(const Module &M, const PrintOptions &Opts) {
  std::ostringstream OS;
  for (const auto &G : M.globals())
    OS << (G->kind() == VarKind::Shared ? "shared " : "") << G->type()->str()
       << " " << G->name() << ";\n";
  for (const auto &F : M.functions())
    OS << "\n" << printFunction(*F, Opts);
  return OS.str();
}
