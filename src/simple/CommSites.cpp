//===- CommSites.cpp - Stable ids for communication sites -----------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/CommSites.h"

namespace earthcc {

const char *commSiteKindName(CommSiteKind K) {
  switch (K) {
  case CommSiteKind::Read:
    return "read";
  case CommSiteKind::Write:
    return "write";
  case CommSiteKind::BlkMov:
    return "blkmov";
  case CommSiteKind::Atomic:
    return "atomic";
  }
  return "?";
}

void CommSiteTable::add(const Function *Fn, const Stmt *S, CommSiteKind Kind,
                        std::string Desc) {
  int32_t Id = static_cast<int32_t>(Sites.size());
  Sites.push_back({Id, Fn, S, S->loc(), Kind, std::move(Desc)});
  ByStmt.emplace(S, Id);
}

namespace {

std::string accessStr(const Var *Base, const std::string &FieldName) {
  std::string Out = Base ? Base->name() : "?";
  if (!FieldName.empty())
    Out += "->" + FieldName;
  else
    Out = "*" + Out;
  return Out;
}

const char *atomicOpStr(AtomicOp Op) {
  switch (Op) {
  case AtomicOp::WriteTo:
    return "writeto";
  case AtomicOp::AddTo:
    return "addto";
  case AtomicOp::ValueOf:
    return "valueof";
  }
  return "?";
}

} // namespace

CommSiteTable buildCommSiteTable(const Module &M) {
  CommSiteTable T;
  for (const auto &FnPtr : M.functions()) {
    const Function *Fn = FnPtr.get();
    forEachStmt(Fn->body(), [&](const Stmt &S) {
      switch (S.kind()) {
      case StmtKind::Assign: {
        const auto &A = castStmt<AssignStmt>(S);
        // The same predicates the engines use to pick the split-phase
        // path: SIMPLE allows at most one indirection per statement, so a
        // statement is a read site or a write site, never both.
        if (A.isRemoteRead()) {
          const auto *L = dynCast<LoadRV>(A.R.get());
          T.add(Fn, &S, CommSiteKind::Read,
                "read " + accessStr(L->Base, L->FieldName));
        } else if (A.isRemoteWrite()) {
          T.add(Fn, &S, CommSiteKind::Write,
                "write " + accessStr(A.L.V, A.L.FieldName));
        }
        break;
      }
      case StmtKind::BlkMov: {
        const auto &B = castStmt<BlkMovStmt>(S);
        std::string Desc =
            (B.Dir == BlkMovDir::ReadToLocal ? "blkmov read " : "blkmov write ");
        Desc += (B.Ptr ? B.Ptr->name() : "?") + "[" +
                std::to_string(B.Words) + "w]";
        T.add(Fn, &S, CommSiteKind::BlkMov, std::move(Desc));
        break;
      }
      case StmtKind::Atomic: {
        const auto &A = castStmt<AtomicStmt>(S);
        T.add(Fn, &S, CommSiteKind::Atomic,
              std::string("atomic ") + atomicOpStr(A.Op) + " " +
                  (A.SharedVar ? A.SharedVar->name() : "?"));
        break;
      }
      default:
        break;
      }
    });
  }
  return T;
}

} // namespace earthcc
