//===- IRBuilder.cpp ------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/IRBuilder.h"

using namespace earthcc;

const StructType::Field *
IRBuilder::resolveField(const Var *Base, const std::string &Field) const {
  assert(Base->type()->isPointer() && "field access through non-pointer");
  const Type *Pointee = Base->type()->pointee();
  assert(Pointee->isStruct() && "field access into non-struct pointee");
  const StructType::Field *F = Pointee->structType()->findField(Field);
  assert(F && "no such field");
  return F;
}

std::unique_ptr<RValue> IRBuilder::load(const Var *Base,
                                        const std::string &Field) {
  const StructType::Field *Fld = resolveField(Base, Field);
  Locality Loc =
      Base->type()->isLocalPointer() ? Locality::Local : Locality::Remote;
  return std::make_unique<LoadRV>(Base, Fld->OffsetWords, Field, Fld->Ty,
                                  Loc);
}

std::unique_ptr<RValue> IRBuilder::deref(const Var *Base) {
  assert(Base->type()->isPointer() && "deref of non-pointer");
  const Type *Pointee = Base->type()->pointee();
  assert(Pointee->isScalar() && "deref of non-scalar pointee");
  Locality Loc =
      Base->type()->isLocalPointer() ? Locality::Local : Locality::Remote;
  return std::make_unique<LoadRV>(Base, 0, "", Pointee, Loc);
}

std::unique_ptr<RValue> IRBuilder::fieldRead(const Var *StructVar,
                                             const std::string &Field) {
  assert(StructVar->type()->isStruct() && "field read of non-struct");
  const StructType::Field *Fld =
      StructVar->type()->structType()->findField(Field);
  assert(Fld && "no such field");
  return std::make_unique<FieldReadRV>(StructVar, Fld->OffsetWords, Field,
                                       Fld->Ty);
}

AssignStmt *IRBuilder::assign(const Var *Target, std::unique_ptr<RValue> R) {
  auto S = std::make_unique<AssignStmt>(LValue::makeVar(Target), std::move(R));
  return static_cast<AssignStmt *>(insert(std::move(S)));
}

AssignStmt *IRBuilder::store(const Var *Base, const std::string &Field,
                             Operand Val) {
  const StructType::Field *Fld = resolveField(Base, Field);
  Locality Loc =
      Base->type()->isLocalPointer() ? Locality::Local : Locality::Remote;
  auto S = std::make_unique<AssignStmt>(
      LValue::makeStore(Base, Fld->OffsetWords, Field, Loc),
      std::make_unique<OpndRV>(Val));
  return static_cast<AssignStmt *>(insert(std::move(S)));
}

AssignStmt *IRBuilder::fieldWrite(const Var *StructVar,
                                  const std::string &Field, Operand Val) {
  assert(StructVar->type()->isStruct() && "field write of non-struct");
  const StructType::Field *Fld =
      StructVar->type()->structType()->findField(Field);
  assert(Fld && "no such field");
  auto S = std::make_unique<AssignStmt>(
      LValue::makeFieldWrite(StructVar, Fld->OffsetWords, Field),
      std::make_unique<OpndRV>(Val));
  return static_cast<AssignStmt *>(insert(std::move(S)));
}

CallStmt *IRBuilder::call(const Var *Result, const std::string &Callee,
                          std::vector<Operand> Args, CallPlacement Placement,
                          Operand PlacementArg) {
  auto S = std::make_unique<CallStmt>(Result, Callee, std::move(Args));
  S->Placement = Placement;
  S->PlacementArg = PlacementArg;
  return static_cast<CallStmt *>(insert(std::move(S)));
}

ReturnStmt *IRBuilder::ret(std::optional<Operand> Val) {
  return static_cast<ReturnStmt *>(
      insert(std::make_unique<ReturnStmt>(Val)));
}

IfStmt *IRBuilder::beginIf(std::unique_ptr<RValue> Cond) {
  auto S = std::make_unique<IfStmt>(std::move(Cond),
                                    std::make_unique<SeqStmt>(),
                                    std::make_unique<SeqStmt>());
  auto *If = static_cast<IfStmt *>(insert(std::move(S)));
  SeqStack.push_back(If->Then.get());
  return If;
}

void IRBuilder::elsePart(IfStmt *If) {
  assert(SeqStack.back() == If->Then.get() && "mismatched elsePart");
  SeqStack.back() = If->Else.get();
}

void IRBuilder::endIf() {
  assert(SeqStack.size() > 1 && "endIf without beginIf");
  SeqStack.pop_back();
}

WhileStmt *IRBuilder::beginWhile(std::unique_ptr<RValue> Cond,
                                 bool IsDoWhile) {
  auto S = std::make_unique<WhileStmt>(std::move(Cond),
                                       std::make_unique<SeqStmt>(), IsDoWhile);
  auto *While = static_cast<WhileStmt *>(insert(std::move(S)));
  SeqStack.push_back(While->Body.get());
  return While;
}

void IRBuilder::endWhile() {
  assert(SeqStack.size() > 1 && "endWhile without beginWhile");
  SeqStack.pop_back();
}
