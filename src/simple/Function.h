//===- Function.h - SIMPLE functions and modules ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function and Module: ownership roots of the SIMPLE IR. A Function owns
/// its variables and its (structured) body; a Module owns its functions,
/// global variables, and type context.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_FUNCTION_H
#define EARTHCC_SIMPLE_FUNCTION_H

#include "simple/Stmt.h"

#include <memory>
#include <string>
#include <vector>

namespace earthcc {

/// A SIMPLE function: parameters, owned local variables, and a structured
/// body. Every variable referenced by the body is owned here (or is a
/// module-level global/shared variable).
class Function {
public:
  Function(std::string Name, const Type *RetTy)
      : Name(std::move(Name)), RetTy(RetTy),
        Body(std::make_unique<SeqStmt>()) {}

  const std::string &name() const { return Name; }
  const Type *returnType() const { return RetTy; }

  const std::vector<Var *> &params() const { return Params; }
  SeqStmt &body() { return *Body; }
  const SeqStmt &body() const { return *Body; }
  void setBody(std::unique_ptr<SeqStmt> NewBody) { Body = std::move(NewBody); }

  /// Creates a parameter (in declaration order).
  Var *addParam(const std::string &ParamName, const Type *Ty);

  /// Creates a named local variable. \p Kind may be VarKind::Local or
  /// VarKind::Shared (EARTH-C allows function-scope shared variables, as in
  /// the paper's Figure 1(a)).
  Var *addLocal(const std::string &LocalName, const Type *Ty,
                VarKind Kind = VarKind::Local);

  /// Creates a compiler temporary ("tempN" by default).
  Var *addTemp(const Type *Ty, VarKind Kind = VarKind::Temp);

  /// All variables owned by this function, in creation order.
  const std::vector<std::unique_ptr<Var>> &vars() const { return Vars; }

  /// Finds a param/local by name (not temps), or nullptr.
  Var *findVar(const std::string &VarName) const;

  /// Assigns fresh sequential labels (1, 2, ...) to every statement in the
  /// body, pre-order. Returns the number of statements labeled.
  int relabel();

  /// Finds the statement with label \p L, or nullptr.
  Stmt *findStmt(int L);

private:
  std::string Name;
  const Type *RetTy;
  std::vector<Var *> Params;
  std::vector<std::unique_ptr<Var>> Vars;
  std::unique_ptr<SeqStmt> Body;
  unsigned NextVarId = 0;
  unsigned NextTempNum = 1;
  unsigned NextCommNum = 1;
  unsigned NextBlockNum = 1;
};

/// A whole EARTH-C translation unit in SIMPLE form.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

  /// Creates a function; names are unique (returns nullptr on collision).
  Function *createFunction(const std::string &Name, const Type *RetTy);

  Function *findFunction(const std::string &Name) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// Creates a module-level variable (VarKind::Global or VarKind::Shared).
  Var *addGlobal(const std::string &Name, const Type *Ty, VarKind Kind);

  Var *findGlobal(const std::string &Name) const;
  const std::vector<std::unique_ptr<Var>> &globals() const { return Globals; }

  /// Opaque per-module cache slot for execution-engine artifacts (the
  /// lowered bytecode form). Owned by the module so the cache can never
  /// outlive it or alias another module; mutable so lowering can memoize
  /// behind a const reference. Typed void to keep the IR layer independent
  /// of the interpreter. Mutating transform entry points must call
  /// invalidateExecCache() so stale bytecode can never run after the IR
  /// changes.
  std::shared_ptr<void> &execCache() const { return ExecCache; }

  /// Drops any memoized execution-engine artifact. Must be called by every
  /// transform that mutates the IR, so a lowering performed earlier cannot
  /// silently diverge from the code that would execute. This covers every
  /// fusion-side structure too — the superinstruction stream and the
  /// Call/shared-cell inline caches live inside the cached BytecodeModule,
  /// so resetting the slot drops them atomically with the plain code.
  void invalidateExecCache() const { ExecCache.reset(); }

private:
  TypeContext Types;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<Var>> Globals;
  mutable std::shared_ptr<void> ExecCache;
  unsigned NextGlobalId = 1u << 20; ///< Disjoint from function-local ids.
};

} // namespace earthcc

#endif // EARTHCC_SIMPLE_FUNCTION_H
