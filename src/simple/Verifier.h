//===- Verifier.h - Structural checks on SIMPLE IR --------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Verifier checks the invariants every pass must preserve:
///  - every basic statement performs at most one (possibly remote) memory
///    indirection (the SIMPLE property the placement analysis relies on);
///  - loop/if conditions are indirection-free;
///  - every referenced variable is owned by the enclosing function or module;
///  - labels, when present, are unique;
///  - block moves are well-formed (struct pointer + matching local struct);
///  - atomic statements target shared variables, and shared variables are
///    never accessed outside atomic statements.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_VERIFIER_H
#define EARTHCC_SIMPLE_VERIFIER_H

#include "simple/Function.h"

#include <string>
#include <vector>

namespace earthcc {

/// Checks \p F; appends human-readable problem descriptions to \p Errors.
/// Returns true if no problems were found.
bool verifyFunction(const Module &M, const Function &F,
                    std::vector<std::string> &Errors);

/// Checks every function in \p M. Returns true if the module is clean.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

} // namespace earthcc

#endif // EARTHCC_SIMPLE_VERIFIER_H
