//===- IRBuilder.h - Convenience construction of SIMPLE IR ------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder for constructing SIMPLE programs directly from C++ —
/// used by unit tests and by example programs that want to build IR without
/// going through the EARTH-C frontend.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_IRBUILDER_H
#define EARTHCC_SIMPLE_IRBUILDER_H

#include "simple/Function.h"

namespace earthcc {

/// Builds statements into a current insertion sequence.
///
/// Typical use:
/// \code
///   IRBuilder B(M, F);
///   B.assign(X, B.load(P, "x"));
///   auto *If = B.beginIf(B.cmp(BinaryOp::Lt, X, Operand::intConst(3)));
///   ... build then-part ...
///   B.elsePart(If); ... B.endIf();
/// \endcode
class IRBuilder {
public:
  IRBuilder(Module &M, Function &F)
      : M(M), F(F) { SeqStack.push_back(&F.body()); }

  Module &module() { return M; }
  Function &function() { return F; }
  SeqStmt &currentSeq() { return *SeqStack.back(); }

  //===--------------------------------------------------------------------===
  // RValue factories.
  //===--------------------------------------------------------------------===

  std::unique_ptr<RValue> opnd(Operand O) {
    return std::make_unique<OpndRV>(O);
  }
  std::unique_ptr<RValue> use(const Var *V) {
    return std::make_unique<OpndRV>(Operand::var(V));
  }
  std::unique_ptr<RValue> cmp(BinaryOp Op, Operand A, Operand B) {
    return std::make_unique<BinaryRV>(Op, A, B);
  }
  std::unique_ptr<RValue> binary(BinaryOp Op, Operand A, Operand B) {
    return std::make_unique<BinaryRV>(Op, A, B);
  }
  std::unique_ptr<RValue> unary(UnaryOp Op, Operand A) {
    return std::make_unique<UnaryRV>(Op, A);
  }

  /// Builds `Base->Field`, resolving the field by name in the pointee
  /// struct. Locality defaults to Remote unless Base is a `local` pointer.
  std::unique_ptr<RValue> load(const Var *Base, const std::string &Field);

  /// Builds `*Base` for a scalar pointee.
  std::unique_ptr<RValue> deref(const Var *Base);

  std::unique_ptr<RValue> fieldRead(const Var *StructVar,
                                    const std::string &Field);

  //===--------------------------------------------------------------------===
  // Statement insertion.
  //===--------------------------------------------------------------------===

  AssignStmt *assign(const Var *Target, std::unique_ptr<RValue> R);
  AssignStmt *assign(const Var *Target, Operand O) {
    return assign(Target, opnd(O));
  }

  /// Builds `Base->Field = Val`.
  AssignStmt *store(const Var *Base, const std::string &Field, Operand Val);

  /// Builds `StructVar.Field = Val`.
  AssignStmt *fieldWrite(const Var *StructVar, const std::string &Field,
                         Operand Val);

  CallStmt *call(const Var *Result, const std::string &Callee,
                 std::vector<Operand> Args,
                 CallPlacement Placement = CallPlacement::Default,
                 Operand PlacementArg = Operand());

  ReturnStmt *ret(std::optional<Operand> Val = std::nullopt);

  //===--------------------------------------------------------------------===
  // Compound statements: begin/end pairs manage the insertion stack.
  //===--------------------------------------------------------------------===

  IfStmt *beginIf(std::unique_ptr<RValue> Cond);
  void elsePart(IfStmt *If);
  void endIf();

  WhileStmt *beginWhile(std::unique_ptr<RValue> Cond, bool IsDoWhile = false);
  void endWhile();

  /// Finishes construction: assigns labels, returns the function.
  Function &finish() {
    F.relabel();
    return F;
  }

private:
  Stmt *insert(StmtPtr S) {
    Stmt *Raw = S.get();
    SeqStack.back()->push(std::move(S));
    return Raw;
  }

  /// Resolves (offset, name, type) for a field of Base's pointee struct.
  const StructType::Field *resolveField(const Var *Base,
                                        const std::string &Field) const;

  Module &M;
  Function &F;
  std::vector<SeqStmt *> SeqStack;
};

} // namespace earthcc

#endif // EARTHCC_SIMPLE_IRBUILDER_H
