//===- Stmt.cpp -----------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Stmt.h"

using namespace earthcc;

RValue::~RValue() = default;
Stmt::~Stmt() = default;

const char *earthcc::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  case UnaryOp::IntToDouble:
    return "(double)";
  case UnaryOp::DoubleToInt:
    return "(int)";
  }
  return "?";
}

const char *earthcc::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

bool earthcc::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

void earthcc::forEachChildSeq(Stmt &S,
                              const std::function<void(SeqStmt &)> &Fn) {
  switch (S.kind()) {
  case StmtKind::Seq:
    // A sequence's children are statements, not sub-sequences; callers that
    // want recursion use forEachStmt.
    break;
  case StmtKind::If: {
    auto &If = castStmt<IfStmt>(S);
    Fn(*If.Then);
    Fn(*If.Else);
    break;
  }
  case StmtKind::Switch: {
    auto &Sw = castStmt<SwitchStmt>(S);
    for (auto &C : Sw.Cases)
      Fn(*C.Body);
    Fn(*Sw.Default);
    break;
  }
  case StmtKind::While:
    Fn(*castStmt<WhileStmt>(S).Body);
    break;
  case StmtKind::Forall: {
    auto &Fa = castStmt<ForallStmt>(S);
    Fn(*Fa.Init);
    Fn(*Fa.Step);
    Fn(*Fa.Body);
    break;
  }
  case StmtKind::Assign:
  case StmtKind::Call:
  case StmtKind::Return:
  case StmtKind::BlkMov:
  case StmtKind::Atomic:
    break;
  }
}

void earthcc::forEachChildSeq(const Stmt &S,
                              const std::function<void(const SeqStmt &)> &Fn) {
  forEachChildSeq(const_cast<Stmt &>(S),
                  [&Fn](SeqStmt &Seq) { Fn(Seq); });
}

void earthcc::forEachStmt(Stmt &S, const std::function<void(Stmt &)> &Fn) {
  Fn(S);
  if (auto *Seq = dynCastStmt<SeqStmt>(&S)) {
    for (auto &Child : Seq->Stmts)
      forEachStmt(*Child, Fn);
    return;
  }
  forEachChildSeq(S, [&Fn](SeqStmt &Child) { forEachStmt(Child, Fn); });
}

void earthcc::forEachStmt(const Stmt &S,
                          const std::function<void(const Stmt &)> &Fn) {
  forEachStmt(const_cast<Stmt &>(S), [&Fn](Stmt &T) { Fn(T); });
}

static std::unique_ptr<SeqStmt> cloneSeq(const SeqStmt &Seq) {
  auto Out = std::make_unique<SeqStmt>(Seq.Parallel);
  Out->setLabel(Seq.label());
  Out->setLoc(Seq.loc());
  for (const auto &Child : Seq.Stmts)
    Out->push(cloneStmt(*Child));
  return Out;
}

StmtPtr earthcc::cloneStmt(const Stmt &S) {
  StmtPtr Out;
  switch (S.kind()) {
  case StmtKind::Seq:
    Out = cloneSeq(castStmt<SeqStmt>(S));
    break;
  case StmtKind::Assign: {
    const auto &A = castStmt<AssignStmt>(S);
    Out = std::make_unique<AssignStmt>(A.L, A.R->clone());
    break;
  }
  case StmtKind::Call: {
    const auto &C = castStmt<CallStmt>(S);
    auto NewC = std::make_unique<CallStmt>(C.Result, C.CalleeName, C.Args);
    NewC->Callee = C.Callee;
    NewC->Intrin = C.Intrin;
    NewC->Placement = C.Placement;
    NewC->PlacementArg = C.PlacementArg;
    Out = std::move(NewC);
    break;
  }
  case StmtKind::Return: {
    const auto &R = castStmt<ReturnStmt>(S);
    Out = std::make_unique<ReturnStmt>(R.Val);
    break;
  }
  case StmtKind::BlkMov: {
    const auto &B = castStmt<BlkMovStmt>(S);
    Out = std::make_unique<BlkMovStmt>(B.Dir, B.Ptr, B.LocalStruct, B.Words);
    break;
  }
  case StmtKind::Atomic: {
    const auto &A = castStmt<AtomicStmt>(S);
    Out = std::make_unique<AtomicStmt>(A.Op, A.SharedVar, A.Val, A.Result);
    break;
  }
  case StmtKind::If: {
    const auto &If = castStmt<IfStmt>(S);
    Out = std::make_unique<IfStmt>(If.Cond->clone(), cloneSeq(*If.Then),
                                   cloneSeq(*If.Else));
    break;
  }
  case StmtKind::Switch: {
    const auto &Sw = castStmt<SwitchStmt>(S);
    auto NewSw = std::make_unique<SwitchStmt>(Sw.Val);
    for (const auto &C : Sw.Cases)
      NewSw->Cases.push_back({C.Value, cloneSeq(*C.Body)});
    NewSw->Default = cloneSeq(*Sw.Default);
    Out = std::move(NewSw);
    break;
  }
  case StmtKind::While: {
    const auto &W = castStmt<WhileStmt>(S);
    Out = std::make_unique<WhileStmt>(W.Cond->clone(), cloneSeq(*W.Body),
                                      W.IsDoWhile);
    break;
  }
  case StmtKind::Forall: {
    const auto &F = castStmt<ForallStmt>(S);
    Out = std::make_unique<ForallStmt>(cloneSeq(*F.Init), F.Cond->clone(),
                                       cloneSeq(*F.Step), cloneSeq(*F.Body));
    break;
  }
  }
  Out->setLabel(S.label());
  Out->setLoc(S.loc());
  return Out;
}
