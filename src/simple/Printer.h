//===- Printer.h - Textual form of the SIMPLE IR ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pretty-printing of SIMPLE programs. Where the paper
/// underlines remote references, we append a `{r}` marker, e.g.
/// `S3: ax = p->x{r}`.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_PRINTER_H
#define EARTHCC_SIMPLE_PRINTER_H

#include "simple/Function.h"

#include <string>

namespace earthcc {

/// Options controlling SIMPLE pretty-printing.
struct PrintOptions {
  bool ShowLabels = true;       ///< Prefix basic statements with "Sn: ".
  bool MarkRemote = true;       ///< Append {r} to remote loads/stores.
  unsigned IndentWidth = 2;
};

std::string printRValue(const RValue &R, const PrintOptions &Opts = {});
std::string printLValue(const LValue &L, const PrintOptions &Opts = {});
std::string printStmt(const Stmt &S, const PrintOptions &Opts = {},
                      unsigned Indent = 0);
std::string printFunction(const Function &F, const PrintOptions &Opts = {});
std::string printModule(const Module &M, const PrintOptions &Opts = {});

} // namespace earthcc

#endif // EARTHCC_SIMPLE_PRINTER_H
