//===- CommSites.h - Stable ids for communication sites ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns a stable *site id* to every comm-capable statement of a module:
/// assignments whose RHS is a possibly-remote load, assignments whose LHS is
/// a possibly-remote store, block moves, and atomic shared-variable
/// operations — exactly the statements at which the execution engines bump
/// OpCounters. Ids are assigned by a pure function of the module (functions
/// in module order, statements pre-order), so any two independently built
/// tables over the same module agree; that is what makes per-site profiles
/// recorded by the AST walker and the bytecode engine comparable bit for
/// bit. The bytecode lowerer stamps the id into each instruction
/// (BcInsn::Site); the AST walker looks statements up in the table it built
/// at run start.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_COMMSITES_H
#define EARTHCC_SIMPLE_COMMSITES_H

#include "simple/Function.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace earthcc {

/// Which communication operation a site performs. A SIMPLE basic statement
/// contains at most one memory indirection, so the kind is a property of
/// the site, not of individual executions.
enum class CommSiteKind : uint8_t { Read, Write, BlkMov, Atomic };

const char *commSiteKindName(CommSiteKind K);

/// One comm-capable statement.
struct CommSite {
  int32_t Id = -1;
  const Function *Fn = nullptr;
  const Stmt *S = nullptr;
  SourceLoc Loc;
  CommSiteKind Kind = CommSiteKind::Read;
  std::string Desc; ///< Human-readable access, e.g. "read p->sz".
};

/// The module's sites in id order, plus a statement -> id index.
class CommSiteTable {
public:
  const std::vector<CommSite> &sites() const { return Sites; }
  size_t size() const { return Sites.size(); }
  const CommSite &site(size_t Id) const { return Sites[Id]; }

  /// Site id of \p S, or -1 if it is not a comm-capable statement.
  int32_t idOf(const Stmt *S) const {
    auto It = ByStmt.find(S);
    return It == ByStmt.end() ? -1 : It->second;
  }

  void add(const Function *Fn, const Stmt *S, CommSiteKind Kind,
           std::string Desc);

private:
  std::vector<CommSite> Sites;
  std::unordered_map<const Stmt *, int32_t> ByStmt;
};

/// Builds the site table for \p M. Deterministic: depends only on the
/// module's current IR, never on the caller or on prior tables.
CommSiteTable buildCommSiteTable(const Module &M);

} // namespace earthcc

#endif // EARTHCC_SIMPLE_COMMSITES_H
