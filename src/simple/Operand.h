//===- Operand.h - Variables, constants and operands ------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variables and the leaf operands of SIMPLE expressions. SIMPLE is a
/// three-address representation: every expression operand is either a
/// variable or a literal constant.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_OPERAND_H
#define EARTHCC_SIMPLE_OPERAND_H

#include "simple/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace earthcc {

/// Storage classes of SIMPLE variables.
///
/// The memory-model distinctions of EARTH-C map onto these: Param/Local/Temp
/// variables are always node-local (register-allocatable); Shared variables
/// may only be touched through atomic operations; Global variables live on a
/// fixed home node and direct accesses to them are ordinary remote accesses.
enum class VarKind {
  Param,     ///< Function parameter.
  Local,     ///< Programmer-declared local variable.
  Temp,      ///< Compiler temporary introduced by simplification.
  CommTemp,  ///< Scalar landing pad for a pipelined remote read (commN).
  BlockTemp, ///< Local struct copy used by blocked communication (bcommN).
  Shared,    ///< EARTH-C `shared` variable (atomic access only).
  Global     ///< File-scope ordinary variable (remote access).
};

/// A named storage location. Vars are owned by their Function (or by the
/// Module for globals/shared globals); pointer identity is variable identity.
class Var {
public:
  Var(std::string Name, const Type *Ty, VarKind Kind, unsigned Id)
      : Name(std::move(Name)), Ty(Ty), Kind(Kind), Id(Id) {
    assert(Ty && "variable must have a type");
  }

  const std::string &name() const { return Name; }
  const Type *type() const { return Ty; }
  VarKind kind() const { return Kind; }
  unsigned id() const { return Id; }

  bool isShared() const { return Kind == VarKind::Shared; }
  bool isGlobal() const { return Kind == VarKind::Global; }
  bool isCompilerTemp() const {
    return Kind == VarKind::Temp || Kind == VarKind::CommTemp ||
           Kind == VarKind::BlockTemp;
  }

private:
  std::string Name;
  const Type *Ty;
  VarKind Kind;
  unsigned Id;
};

/// A literal constant (int or double).
struct ConstantValue {
  enum class Kind { Int, Double } K = Kind::Int;
  int64_t I = 0;
  double D = 0.0;

  static ConstantValue makeInt(int64_t V) {
    ConstantValue C;
    C.K = Kind::Int;
    C.I = V;
    return C;
  }
  static ConstantValue makeDouble(double V) {
    ConstantValue C;
    C.K = Kind::Double;
    C.D = V;
    return C;
  }

  bool isInt() const { return K == Kind::Int; }
  std::string str() const {
    return isInt() ? std::to_string(I) : std::to_string(D);
  }
};

/// A leaf operand: a variable use or a constant.
class Operand {
public:
  Operand() = default;

  static Operand var(const Var *V) {
    assert(V && "null variable operand");
    Operand O;
    O.V = V;
    return O;
  }
  static Operand intConst(int64_t Value) {
    Operand O;
    O.C = ConstantValue::makeInt(Value);
    return O;
  }
  static Operand doubleConst(double Value) {
    Operand O;
    O.C = ConstantValue::makeDouble(Value);
    return O;
  }

  bool isVar() const { return V != nullptr; }
  bool isConst() const { return V == nullptr; }

  const Var *getVar() const {
    assert(isVar() && "operand is not a variable");
    return V;
  }
  const ConstantValue &getConst() const {
    assert(isConst() && "operand is not a constant");
    return C;
  }

  std::string str() const { return isVar() ? V->name() : C.str(); }

private:
  const Var *V = nullptr;
  ConstantValue C;
};

} // namespace earthcc

#endif // EARTHCC_SIMPLE_OPERAND_H
