//===- Expr.h - SIMPLE right-hand sides and left-hand sides -----*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression forms of the SIMPLE IR. SIMPLE restricts every basic statement
/// to at most one memory indirection, so right-hand sides are flat: a copy,
/// one unary or binary operation over leaf operands, or a single load.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_EXPR_H
#define EARTHCC_SIMPLE_EXPR_H

#include "simple/Operand.h"

#include <memory>

namespace earthcc {

/// Static locality of a memory access, as the compiler sees it.
///
/// The EARTH-C compiler must assume that indirect references are Remote
/// unless locality information (a `local` pointer qualifier, or locality
/// analysis) proves otherwise. Remote accesses compile to split-phase EARTH
/// runtime operations; Local accesses are ordinary loads/stores.
enum class Locality { Unknown, Local, Remote };

/// Unary operators.
enum class UnaryOp { Neg, Not, IntToDouble, DoubleToInt };

/// Binary operators. Comparison operators always produce int 0/1.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And, ///< Logical-and over already-evaluated ints (non-short-circuit).
  Or   ///< Logical-or over already-evaluated ints (non-short-circuit).
};

const char *unaryOpName(UnaryOp Op);
const char *binaryOpName(BinaryOp Op);
bool isComparison(BinaryOp Op);

/// Kinds of SIMPLE right-hand sides.
enum class RValueKind {
  Opnd,       ///< Plain copy of an operand.
  Unary,      ///< op a
  Binary,     ///< a op b
  Load,       ///< p->f (or *p): the only possibly-remote read form.
  FieldRead,  ///< s.f where s is a struct-typed variable (always local).
  AddrOfField ///< &(p->f): pointer arithmetic, no memory access.
};

/// Base class for right-hand sides. Uses LLVM-style kind dispatch.
class RValue {
public:
  virtual ~RValue();
  RValueKind kind() const { return Kind; }

  /// Deep copy.
  virtual std::unique_ptr<RValue> clone() const = 0;

protected:
  explicit RValue(RValueKind Kind) : Kind(Kind) {}

private:
  RValueKind Kind;
};

/// A plain operand copy: `x` or `42`.
class OpndRV : public RValue {
public:
  explicit OpndRV(Operand Val) : RValue(RValueKind::Opnd), Val(Val) {}
  Operand Val;

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<OpndRV>(Val);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::Opnd;
  }
};

/// A unary operation over one operand.
class UnaryRV : public RValue {
public:
  UnaryRV(UnaryOp Op, Operand Val)
      : RValue(RValueKind::Unary), Op(Op), Val(Val) {}
  UnaryOp Op;
  Operand Val;

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<UnaryRV>(Op, Val);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::Unary;
  }
};

/// A binary operation over two operands.
class BinaryRV : public RValue {
public:
  BinaryRV(BinaryOp Op, Operand A, Operand B)
      : RValue(RValueKind::Binary), Op(Op), A(A), B(B) {}
  BinaryOp Op;
  Operand A;
  Operand B;

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<BinaryRV>(Op, A, B);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::Binary;
  }
};

/// A load through a pointer variable: `Base->field` (word OffsetWords into
/// the pointee), or `*Base` with offset 0 for scalar pointees. This is the
/// form the communication optimization targets when Loc is Remote.
class LoadRV : public RValue {
public:
  LoadRV(const Var *Base, unsigned OffsetWords, std::string FieldName,
         const Type *ValueTy, Locality Loc)
      : RValue(RValueKind::Load), Base(Base), OffsetWords(OffsetWords),
        FieldName(std::move(FieldName)), ValueTy(ValueTy), Loc(Loc) {}

  const Var *Base;
  unsigned OffsetWords;
  std::string FieldName; ///< Printable dotted path, e.g. "hosp.free_personnel".
  const Type *ValueTy;   ///< Type of the loaded value (scalar).
  Locality Loc;

  bool isRemote() const { return Loc != Locality::Local; }

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<LoadRV>(Base, OffsetWords, FieldName, ValueTy,
                                    Loc);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::Load;
  }
};

/// A read of a field of a struct-typed *variable* (e.g. a bcommN block
/// temporary): always local and cheap.
class FieldReadRV : public RValue {
public:
  FieldReadRV(const Var *StructVar, unsigned OffsetWords,
              std::string FieldName, const Type *ValueTy)
      : RValue(RValueKind::FieldRead), StructVar(StructVar),
        OffsetWords(OffsetWords), FieldName(std::move(FieldName)),
        ValueTy(ValueTy) {}

  const Var *StructVar;
  unsigned OffsetWords;
  std::string FieldName;
  const Type *ValueTy;

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<FieldReadRV>(StructVar, OffsetWords, FieldName,
                                         ValueTy);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::FieldRead;
  }
};

/// The address of a field: `&(Base->field)`. Pure pointer arithmetic.
class AddrOfFieldRV : public RValue {
public:
  AddrOfFieldRV(const Var *Base, unsigned OffsetWords, std::string FieldName,
                const Type *ResultTy)
      : RValue(RValueKind::AddrOfField), Base(Base), OffsetWords(OffsetWords),
        FieldName(std::move(FieldName)), ResultTy(ResultTy) {}

  const Var *Base;
  unsigned OffsetWords;
  std::string FieldName;
  const Type *ResultTy;

  std::unique_ptr<RValue> clone() const override {
    return std::make_unique<AddrOfFieldRV>(Base, OffsetWords, FieldName,
                                           ResultTy);
  }
  static bool classof(const RValue *R) {
    return R->kind() == RValueKind::AddrOfField;
  }
};

/// LLVM-style dyn_cast helpers, specialized to this small hierarchy.
template <typename T> T *dynCast(RValue *R) {
  return R && T::classof(R) ? static_cast<T *>(R) : nullptr;
}
template <typename T> const T *dynCast(const RValue *R) {
  return R && T::classof(R) ? static_cast<const T *>(R) : nullptr;
}

/// Kinds of SIMPLE left-hand sides.
enum class LValueKind {
  Var,       ///< x = ...
  Store,     ///< p->f = ...: the only possibly-remote write form.
  FieldWrite ///< s.f = ... where s is a struct-typed variable (local).
};

/// A SIMPLE assignment target.
struct LValue {
  LValueKind Kind = LValueKind::Var;
  const Var *V = nullptr;    ///< Target var (Var), base pointer (Store), or
                             ///< struct var (FieldWrite).
  unsigned OffsetWords = 0;  ///< Field offset for Store/FieldWrite.
  std::string FieldName;     ///< Printable field path for Store/FieldWrite.
  Locality Loc = Locality::Unknown; ///< For Store: static locality.

  static LValue makeVar(const Var *V) {
    LValue L;
    L.Kind = LValueKind::Var;
    L.V = V;
    return L;
  }
  static LValue makeStore(const Var *Base, unsigned OffsetWords,
                          std::string FieldName, Locality Loc) {
    LValue L;
    L.Kind = LValueKind::Store;
    L.V = Base;
    L.OffsetWords = OffsetWords;
    L.FieldName = std::move(FieldName);
    L.Loc = Loc;
    return L;
  }
  static LValue makeFieldWrite(const Var *StructVar, unsigned OffsetWords,
                               std::string FieldName) {
    LValue L;
    L.Kind = LValueKind::FieldWrite;
    L.V = StructVar;
    L.OffsetWords = OffsetWords;
    L.FieldName = std::move(FieldName);
    return L;
  }

  bool isRemoteStore() const {
    return Kind == LValueKind::Store && Loc != Locality::Local;
  }
};

} // namespace earthcc

#endif // EARTHCC_SIMPLE_EXPR_H
