//===- Stmt.h - Statements of the SIMPLE IR ---------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compositional statement forms of SIMPLE: basic statements
/// (assignments, calls, returns, block moves, atomic shared-variable
/// operations) and compound statements (sequences — sequential or parallel —
/// conditionals, switches, loops, and forall loops). There is no goto;
/// programs are fully structured, which is what lets possible-placement
/// analysis run in a single structured traversal.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_SIMPLE_STMT_H
#define EARTHCC_SIMPLE_STMT_H

#include "simple/Expr.h"
#include "support/SourceLoc.h"

#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace earthcc {

class Function;

/// Statement kinds.
enum class StmtKind {
  Assign,
  Call,
  Return,
  BlkMov,
  Atomic,
  Seq,
  If,
  Switch,
  While,
  Forall
};

/// Intrinsic operations recognized by Sema and executed by the runtime.
enum class Intrinsic {
  None,
  PMalloc,  ///< pmalloc(words) @ node-placement: allocate on a given node.
  Print,    ///< print(x): deterministic test/debug output.
  MyNode,   ///< my_node(): index of the executing node.
  NumNodes, ///< num_nodes(): number of nodes in the machine.
  IntSqrt,  ///< isqrt(x): integer square root.
  Sqrt,     ///< sqrt(x): double square root.
  Fabs      ///< fabs(x): double absolute value.
};

/// Base class of all SIMPLE statements.
class Stmt {
public:
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }

  /// Basic statements are the unit the paper's analysis labels: they carry a
  /// unique label and contain at most one remote operation.
  bool isBasic() const {
    return Kind == StmtKind::Assign || Kind == StmtKind::Call ||
           Kind == StmtKind::Return || Kind == StmtKind::BlkMov ||
           Kind == StmtKind::Atomic;
  }

  /// Unique label (S1, S2, ...) assigned by Function::relabel(). 0 = none.
  int label() const { return Label; }
  void setLabel(int L) { Label = L; }

  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  StmtKind Kind;
  int Label = 0;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// A (possibly parallel) statement sequence. Parallel sequences are the
/// EARTH-C `{^ ... ^}` construct: the compiler may execute members
/// concurrently because the programmer guarantees non-interference.
class SeqStmt : public Stmt {
public:
  explicit SeqStmt(bool Parallel = false)
      : Stmt(StmtKind::Seq), Parallel(Parallel) {}

  bool Parallel;
  std::vector<StmtPtr> Stmts;

  void push(StmtPtr S) { Stmts.push_back(std::move(S)); }
  bool empty() const { return Stmts.empty(); }
  size_t size() const { return Stmts.size(); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Seq; }
};

/// A SIMPLE assignment: `lhs = rhs` with at most one memory indirection in
/// total (enforced by the Verifier).
class AssignStmt : public Stmt {
public:
  AssignStmt(LValue L, std::unique_ptr<RValue> R)
      : Stmt(StmtKind::Assign), L(std::move(L)), R(std::move(R)) {}

  LValue L;
  std::unique_ptr<RValue> R;

  /// True if this statement performs a remote read (rhs is a remote load).
  bool isRemoteRead() const {
    const auto *Load = dynCast<LoadRV>(R.get());
    return Load && Load->isRemote();
  }
  /// True if this statement performs a remote write (lhs is a remote store).
  bool isRemoteWrite() const { return L.isRemoteStore(); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }
};

/// Placement annotation on an EARTH-C call: where the invocation runs.
enum class CallPlacement {
  Default, ///< Run on the current node.
  OwnerOf, ///< `f(...)@OWNER_OF(p)`: run on the node owning *p.
  AtNode,  ///< `f(...)@node(n)`: run on node n.
  Home     ///< `f(...)@HOME`: run on node 0.
};

/// A call statement, possibly with a result variable and a placement
/// annotation. Intrinsics are resolved by Sema.
class CallStmt : public Stmt {
public:
  CallStmt(const Var *Result, std::string CalleeName, std::vector<Operand> Args)
      : Stmt(StmtKind::Call), Result(Result),
        CalleeName(std::move(CalleeName)), Args(std::move(Args)) {}

  const Var *Result; ///< May be nullptr for void calls.
  std::string CalleeName;
  std::vector<Operand> Args;
  Function *Callee = nullptr; ///< Resolved by Sema (null for intrinsics).
  Intrinsic Intrin = Intrinsic::None;
  CallPlacement Placement = CallPlacement::Default;
  Operand PlacementArg; ///< Pointer (OwnerOf) or node index (AtNode).

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }
};

/// A return statement, optionally carrying a value operand.
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(std::optional<Operand> Val = std::nullopt)
      : Stmt(StmtKind::Return), Val(Val) {}

  std::optional<Operand> Val;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

/// Direction of a block move between remote memory and a local struct.
enum class BlkMovDir {
  ReadToLocal,  ///< blkmov(p, &local, n): fetch *p into a local struct.
  WriteFromLocal ///< blkmov(&local, p, n): write a local struct back to *p.
};

/// A block transfer of `Words` machine words between the memory a pointer
/// variable targets and a local struct temporary. One EARTH blkmov
/// operation, regardless of size.
class BlkMovStmt : public Stmt {
public:
  BlkMovStmt(BlkMovDir Dir, const Var *Ptr, const Var *LocalStruct,
             unsigned Words)
      : Stmt(StmtKind::BlkMov), Dir(Dir), Ptr(Ptr), LocalStruct(LocalStruct),
        Words(Words) {}

  BlkMovDir Dir;
  const Var *Ptr;         ///< Pointer to the (possibly remote) struct.
  const Var *LocalStruct; ///< Struct-typed local variable.
  unsigned Words;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::BlkMov; }
};

/// Atomic operations on shared variables (EARTH-C writeto/addto/valueof).
enum class AtomicOp { WriteTo, AddTo, ValueOf };

/// An atomic access to a `shared` variable. Shared variables live on node 0
/// and every access is a remote atomic transaction.
class AtomicStmt : public Stmt {
public:
  AtomicStmt(AtomicOp Op, const Var *SharedVar, Operand Val, const Var *Result)
      : Stmt(StmtKind::Atomic), Op(Op), SharedVar(SharedVar), Val(Val),
        Result(Result) {}

  AtomicOp Op;
  const Var *SharedVar;
  Operand Val;       ///< Value operand for WriteTo/AddTo.
  const Var *Result; ///< Result variable for ValueOf (else nullptr).

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Atomic; }
};

/// An if statement. The condition is restricted to an operand or a single
/// comparison of operands (no memory access), as produced by Simplify.
class IfStmt : public Stmt {
public:
  IfStmt(std::unique_ptr<RValue> Cond, std::unique_ptr<SeqStmt> Then,
         std::unique_ptr<SeqStmt> Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  std::unique_ptr<RValue> Cond;
  std::unique_ptr<SeqStmt> Then;
  std::unique_ptr<SeqStmt> Else; ///< Never null; may be empty.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

/// A switch over an integer operand with constant cases. There is no
/// fallthrough: each case body is a self-contained sequence (Simplify
/// enforces this when lowering from EARTH-C).
class SwitchStmt : public Stmt {
public:
  struct Case {
    int64_t Value;
    std::unique_ptr<SeqStmt> Body;
  };

  explicit SwitchStmt(Operand Val) : Stmt(StmtKind::Switch), Val(Val) {}

  Operand Val;
  std::vector<Case> Cases;
  std::unique_ptr<SeqStmt> Default; ///< Never null; may be empty.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Switch; }
};

/// A while / do-while loop. `for` loops are lowered to while by Simplify.
class WhileStmt : public Stmt {
public:
  WhileStmt(std::unique_ptr<RValue> Cond, std::unique_ptr<SeqStmt> Body,
            bool IsDoWhile)
      : Stmt(StmtKind::While), Cond(std::move(Cond)), Body(std::move(Body)),
        IsDoWhile(IsDoWhile) {}

  std::unique_ptr<RValue> Cond;
  std::unique_ptr<SeqStmt> Body;
  bool IsDoWhile;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }
};

/// The EARTH-C `forall` loop: the Init/Cond/Step driver runs sequentially,
/// spawning one logical thread per iteration of Body; all iterations may run
/// in parallel and must not interfere except through shared variables.
class ForallStmt : public Stmt {
public:
  ForallStmt(std::unique_ptr<SeqStmt> Init, std::unique_ptr<RValue> Cond,
             std::unique_ptr<SeqStmt> Step, std::unique_ptr<SeqStmt> Body)
      : Stmt(StmtKind::Forall), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  std::unique_ptr<SeqStmt> Init;
  std::unique_ptr<RValue> Cond;
  std::unique_ptr<SeqStmt> Step;
  std::unique_ptr<SeqStmt> Body;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Forall; }
};

/// dyn_cast helpers for statements.
template <typename T> T *dynCastStmt(Stmt *S) {
  return S && T::classof(S) ? static_cast<T *>(S) : nullptr;
}
template <typename T> const T *dynCastStmt(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}
template <typename T> T &castStmt(Stmt &S) {
  assert(T::classof(&S) && "bad statement cast");
  return static_cast<T &>(S);
}
template <typename T> const T &castStmt(const Stmt &S) {
  assert(T::classof(&S) && "bad statement cast");
  return static_cast<const T &>(S);
}

/// Invokes \p Fn on \p S and every statement nested inside it, pre-order.
void forEachStmt(Stmt &S, const std::function<void(Stmt &)> &Fn);
void forEachStmt(const Stmt &S, const std::function<void(const Stmt &)> &Fn);

/// Invokes \p Fn on every directly nested sub-sequence of \p S (not
/// recursively): if/switch alternatives, loop bodies, forall parts.
void forEachChildSeq(Stmt &S, const std::function<void(SeqStmt &)> &Fn);
void forEachChildSeq(const Stmt &S,
                     const std::function<void(const SeqStmt &)> &Fn);

/// Deep-clones a statement tree (variable pointers are shared, not cloned).
StmtPtr cloneStmt(const Stmt &S);

} // namespace earthcc

#endif // EARTHCC_SIMPLE_STMT_H
