//===- Type.cpp -----------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Type.h"

using namespace earthcc;

void StructType::addField(const std::string &FieldName, const Type *Ty) {
  assert(!Complete && "cannot add fields after finalize()");
  assert(Ty && !Ty->isVoid() && "field must have a sized type");
  Fields.push_back({FieldName, Ty, /*OffsetWords=*/0});
}

void StructType::finalize() {
  assert(!Complete && "finalize() called twice");
  unsigned Offset = 0;
  for (Field &F : Fields) {
    F.OffsetWords = Offset;
    Offset += F.Ty->sizeInWords();
  }
  SizeWords = Offset;
  Complete = true;
}

const StructType::Field *
StructType::findField(const std::string &FieldName) const {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const StructType::Field *StructType::fieldAtOffset(unsigned OffsetWords) const {
  for (const Field &F : Fields)
    if (F.OffsetWords <= OffsetWords &&
        OffsetWords < F.OffsetWords + F.Ty->sizeInWords())
      return &F;
  return nullptr;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Double:
    return "double";
  case TypeKind::Struct:
    return "struct " + Struct->name();
  case TypeKind::Pointer:
    return Pointee->str() + (LocalQual ? " local *" : " *");
  }
  return "<bad type>";
}

TypeContext::TypeContext() {
  Types.push_back(Type(TypeKind::Void, nullptr, false, nullptr));
  VoidTy = &Types.back();
  Types.push_back(Type(TypeKind::Int, nullptr, false, nullptr));
  IntTy = &Types.back();
  Types.push_back(Type(TypeKind::Double, nullptr, false, nullptr));
  DoubleTy = &Types.back();
}

const Type *TypeContext::pointerTo(const Type *Pointee, bool LocalQual) {
  assert(Pointee && "pointer must have a pointee");
  auto Key = std::make_pair(Pointee, LocalQual);
  auto It = PointerTypes.find(Key);
  if (It != PointerTypes.end())
    return It->second;
  Types.push_back(Type(TypeKind::Pointer, Pointee, LocalQual, nullptr));
  const Type *T = &Types.back();
  PointerTypes[Key] = T;
  return T;
}

const Type *TypeContext::structTy(const StructType *S) {
  assert(S && "null struct");
  auto It = StructValueTypes.find(S);
  if (It != StructValueTypes.end())
    return It->second;
  Types.push_back(Type(TypeKind::Struct, nullptr, false, S));
  const Type *T = &Types.back();
  StructValueTypes[S] = T;
  return T;
}

StructType *TypeContext::createStruct(const std::string &Name) {
  if (StructsByName.count(Name))
    return nullptr;
  Structs.push_back(StructType(Name));
  StructType *S = &Structs.back();
  StructsByName[Name] = S;
  return S;
}

StructType *TypeContext::findStruct(const std::string &Name) {
  auto It = StructsByName.find(Name);
  return It == StructsByName.end() ? nullptr : It->second;
}

const StructType *TypeContext::findStruct(const std::string &Name) const {
  auto It = StructsByName.find(Name);
  return It == StructsByName.end() ? nullptr : It->second;
}
