//===- Verifier.cpp -------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "simple/Verifier.h"

#include "simple/Printer.h"

#include <set>
#include <sstream>

using namespace earthcc;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F,
                   std::vector<std::string> &Errors)
      : M(M), F(F), Errors(Errors) {}

  bool run() {
    for (const auto &V : F.vars())
      Owned.insert(V.get());
    for (const auto &G : M.globals())
      Owned.insert(G.get());
    size_t Before = Errors.size();
    forEachStmt(F.body(), [this](const Stmt &S) { check(S); });
    checkLabelsUnique();
    return Errors.size() == Before;
  }

private:
  void error(const Stmt &S, const std::string &Message) {
    std::ostringstream OS;
    OS << F.name();
    if (S.label())
      OS << ":S" << S.label();
    OS << ": " << Message;
    Errors.push_back(OS.str());
  }

  void checkLabelsUnique() {
    std::set<int> Seen;
    forEachStmt(F.body(), [&](const Stmt &S) {
      if (S.label() == 0)
        return;
      if (!Seen.insert(S.label()).second)
        error(S, "duplicate statement label");
    });
  }

  void checkVar(const Stmt &S, const Var *V, const char *Role) {
    if (!V) {
      error(S, std::string("null variable as ") + Role);
      return;
    }
    if (!Owned.count(V))
      error(S, "variable '" + V->name() + "' (" + Role +
                   ") is not owned by function or module");
    if (V->isShared() && std::string(Role) != "atomic target")
      error(S, "shared variable '" + V->name() +
                   "' accessed outside an atomic operation");
  }

  void checkOperand(const Stmt &S, const Operand &O, const char *Role) {
    if (O.isVar())
      checkVar(S, O.getVar(), Role);
  }

  /// Counts memory indirections in an rvalue and checks its variables.
  unsigned checkRValue(const Stmt &S, const RValue &R) {
    switch (R.kind()) {
    case RValueKind::Opnd:
      checkOperand(S, static_cast<const OpndRV &>(R).Val, "operand");
      return 0;
    case RValueKind::Unary:
      checkOperand(S, static_cast<const UnaryRV &>(R).Val, "operand");
      return 0;
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      checkOperand(S, B.A, "operand");
      checkOperand(S, B.B, "operand");
      return 0;
    }
    case RValueKind::Load: {
      const auto &L = static_cast<const LoadRV &>(R);
      checkVar(S, L.Base, "load base");
      if (L.Base && !L.Base->type()->isPointer())
        error(S, "load base '" + L.Base->name() + "' is not a pointer");
      if (L.ValueTy && !L.ValueTy->isScalar())
        error(S, "load must produce a scalar value");
      return 1;
    }
    case RValueKind::FieldRead: {
      const auto &FR = static_cast<const FieldReadRV &>(R);
      checkVar(S, FR.StructVar, "field-read base");
      if (FR.StructVar && !FR.StructVar->type()->isStruct())
        error(S, "field read of non-struct variable '" +
                     FR.StructVar->name() + "'");
      return 0;
    }
    case RValueKind::AddrOfField: {
      const auto &A = static_cast<const AddrOfFieldRV &>(R);
      checkVar(S, A.Base, "addr-of base");
      if (A.Base && !A.Base->type()->isPointer())
        error(S, "addr-of-field base '" + A.Base->name() +
                     "' is not a pointer");
      return 0;
    }
    }
    return 0;
  }

  void checkCond(const Stmt &S, const RValue &Cond) {
    switch (Cond.kind()) {
    case RValueKind::Opnd:
    case RValueKind::Unary:
    case RValueKind::Binary:
      checkRValue(S, Cond);
      return;
    default:
      error(S, "condition contains a memory indirection");
    }
  }

  void check(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      unsigned Indirections = checkRValue(S, *A.R);
      switch (A.L.Kind) {
      case LValueKind::Var:
        checkVar(S, A.L.V, "assignment target");
        break;
      case LValueKind::Store:
        checkVar(S, A.L.V, "store base");
        if (A.L.V && !A.L.V->type()->isPointer())
          error(S, "store base '" + A.L.V->name() + "' is not a pointer");
        ++Indirections;
        break;
      case LValueKind::FieldWrite:
        checkVar(S, A.L.V, "field-write base");
        if (A.L.V && !A.L.V->type()->isStruct())
          error(S, "field write of non-struct variable");
        break;
      }
      if (Indirections > 1)
        error(S, "basic statement performs more than one indirection: " +
                     printStmt(S));
      return;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      if (C.Result)
        checkVar(S, C.Result, "call result");
      for (const Operand &Arg : C.Args)
        checkOperand(S, Arg, "call argument");
      if (C.Placement == CallPlacement::OwnerOf ||
          C.Placement == CallPlacement::AtNode)
        checkOperand(S, C.PlacementArg, "placement argument");
      if (!C.Callee && C.Intrin == Intrinsic::None)
        error(S, "unresolved call to '" + C.CalleeName + "'");
      return;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      if (R.Val)
        checkOperand(S, *R.Val, "return value");
      if (R.Val && F.returnType()->isVoid())
        error(S, "void function returns a value");
      if (!R.Val && !F.returnType()->isVoid())
        error(S, "non-void function returns no value");
      return;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      checkVar(S, B.Ptr, "blkmov pointer");
      checkVar(S, B.LocalStruct, "blkmov local struct");
      if (B.Ptr && !B.Ptr->type()->isPointer())
        error(S, "blkmov source/target '" + B.Ptr->name() +
                     "' is not a pointer");
      if (B.LocalStruct && !B.LocalStruct->type()->isStruct())
        error(S, "blkmov local side must be a struct variable");
      if (B.LocalStruct &&
          B.LocalStruct->type()->sizeInWords() < B.Words)
        error(S, "blkmov transfers more words than the local struct holds");
      if (B.Words == 0)
        error(S, "blkmov of zero words");
      return;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      if (!A.SharedVar || !A.SharedVar->isShared())
        error(S, "atomic operation on a non-shared variable");
      else if (!Owned.count(A.SharedVar))
        error(S, "atomic target not owned by function or module");
      if (A.Op == AtomicOp::ValueOf) {
        checkVar(S, A.Result, "atomic result");
      } else {
        checkOperand(S, A.Val, "atomic value");
      }
      return;
    }
    case StmtKind::If:
      checkCond(S, *castStmt<IfStmt>(S).Cond);
      return;
    case StmtKind::Switch:
      checkOperand(S, castStmt<SwitchStmt>(S).Val, "switch operand");
      return;
    case StmtKind::While:
      checkCond(S, *castStmt<WhileStmt>(S).Cond);
      return;
    case StmtKind::Forall:
      checkCond(S, *castStmt<ForallStmt>(S).Cond);
      return;
    case StmtKind::Seq:
      return;
    }
  }

  const Module &M;
  const Function &F;
  std::vector<std::string> &Errors;
  std::set<const Var *> Owned;
};

} // namespace

bool earthcc::verifyFunction(const Module &M, const Function &F,
                             std::vector<std::string> &Errors) {
  return FunctionVerifier(M, F, Errors).run();
}

bool earthcc::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool Clean = true;
  for (const auto &F : M.functions())
    Clean &= verifyFunction(M, *F, Errors);
  return Clean;
}
