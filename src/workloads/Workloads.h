//===- Workloads.h - The Olden benchmarks in EARTH-C ------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark suite (Table II) rewritten in our EARTH-C dialect:
/// power, perimeter, tsp, health and voronoi — all pointer-based programs
/// over dynamically allocated trees and lists, parallelized with parallel
/// sequences / forall and placed calls, and distributed with pmalloc@node.
///
/// Problem sizes are scaled to simulator scale; the per-benchmark notes
/// record the paper's original sizes. Each program's main() returns a
/// deterministic checksum that must be identical for the sequential,
/// simple (unoptimized parallel) and optimized versions at every node
/// count — the harness and tests verify this.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_WORKLOADS_WORKLOADS_H
#define EARTHCC_WORKLOADS_WORKLOADS_H

#include "driver/Pipeline.h"

#include <string>
#include <vector>

namespace earthcc {

/// One structural size parameter of a benchmark: the `${name}` placeholder
/// in the source template plus its full-size and reduced-size values.
struct WorkloadParam {
  std::string Name;  ///< Placeholder name (appears as `${Name}`).
  std::string Full;  ///< Value for the standard (Table II-scaled) size.
  std::string Small; ///< Value for the reduced equivalence-sweep size.
};

/// One benchmark program. Problem sizes are real fields, not literals
/// buried in the source text: the template carries `${param}` placeholders
/// and the two expansions are derived from Params, so resizing can never
/// silently miss (expansion hard-fails on an unmatched placeholder).
struct Workload {
  std::string Name;
  std::string Description;   ///< Table II description.
  std::string PaperSize;     ///< Problem size the paper used.
  std::string OurSize;       ///< Scaled size we run.
  std::string Optimization;  ///< Which comm optimizations dominate (paper).
  std::string SourceTemplate; ///< EARTH-C source with `${param}` holes.
  std::vector<WorkloadParam> Params; ///< Structural size parameters.
  std::string Source;        ///< Template expanded with the Full sizes.

  /// The template expanded with the Small sizes (two distinct input sizes
  /// per program for the engine-equivalence sweep).
  std::string smallSource() const;
};

/// Expands every `${name}` placeholder of \p Template from \p Params
/// (Small selects WorkloadParam::Small over Full). Throws std::runtime_error
/// if a parameter never matches or an unknown `${` placeholder remains —
/// a size change that does not take effect must be loud, not silent.
std::string expandWorkloadSource(const std::string &Template,
                                 const std::vector<WorkloadParam> &Params,
                                 bool Small);

/// The five Olden benchmarks (power, perimeter, tsp, health, voronoi).
const std::vector<Workload> &oldenWorkloads();

/// Finds a workload by name (nullptr if unknown).
const Workload *findWorkload(const std::string &Name);

/// How a benchmark run is configured.
enum class RunMode {
  Sequential, ///< Pure C baseline: 1 node, no EARTH operations at all.
  Simple,     ///< Parallel, no communication optimization.
  Optimized   ///< Parallel, communication optimization enabled.
};

/// The pipeline configuration matching \p Mode (with \p Comm as the
/// communication-selection policy where it applies).
PipelineOptions workloadOptions(RunMode Mode, const CommOptions &Comm = {});

/// The machine configuration matching \p Mode at \p Nodes nodes.
MachineConfig workloadMachine(RunMode Mode, unsigned Nodes);

/// Compiles \p W once under \p Mode. Run the resulting module at any
/// number of machine sizes via Pipeline::run — the module does not depend
/// on the node count, so harnesses must not recompile per configuration.
CompileResult compileWorkload(const Workload &W, RunMode Mode,
                              const CommOptions &Comm = {});

/// Compiles and runs \p W under \p Mode on \p Nodes nodes (one-shot
/// convenience; sweeps should use compileWorkload + Pipeline::run).
RunResult runWorkload(const Workload &W, RunMode Mode, unsigned Nodes,
                      const CommOptions &Comm = {});

} // namespace earthcc

#endif // EARTHCC_WORKLOADS_WORKLOADS_H
