//===- Power.cpp - The Olden "power" benchmark in EARTH-C ------------------===//
//
// Part of the earthcc project.
//
// Power-system optimization over a multi-level tree (root -> feeders ->
// laterals -> branches -> leaves). Each pass walks the tree computing
// power flows bottom-up; node computations read several double fields,
// compute, and write results back — the read-early/write-late + blocking
// pattern the paper's Figure 11(a) shows for this benchmark.
//
// Determinism note: cross-fiber reduction goes through an *integer* shared
// counter (fixed-point, 1/256 units) so the checksum is independent of the
// order in which forall iterations commit.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *earthccPowerSource = R"EARTH(
// ---- Olden power, EARTH-C dialect ---------------------------------------

struct Leaf {
  double pi; double qi;
  double alpha; double beta;
  Leaf *next;
};

struct Branch {
  double r; double x;
  double pin; double qin;
  double alpha; double beta;
  Leaf *leaves;
  Branch *next;
};

struct Lateral {
  double r; double x;
  double pin; double qin;
  Branch *branches;
  Lateral *next;
};

struct Feeder {
  double pin; double qin;
  Lateral *laterals;
  Feeder *next;
};

struct Root {
  double price;
  Feeder *feeders;
};

Leaf *make_leaves(int n, int where) {
  Leaf *head; Leaf *l; int i;
  head = NULL;
  for (i = 0; i < n; i = i + 1) {
    l = pmalloc(sizeof(Leaf))@node(where);
    l->pi = 1.0 + i * 0.125;
    l->qi = 0.5 + i * 0.0625;
    l->alpha = 0.75;
    l->beta = 0.25;
    l->next = head;
    head = l;
  }
  return head;
}

Branch *make_branches(int n, int nleaf, int where) {
  Branch *head; Branch *b; int i;
  head = NULL;
  for (i = 0; i < n; i = i + 1) {
    b = pmalloc(sizeof(Branch))@node(where);
    b->r = 0.001953125;
    b->x = 0.00390625;
    b->pin = 0.0;
    b->qin = 0.0;
    b->alpha = 0.5;
    b->beta = 0.5;
    b->leaves = make_leaves(nleaf, where);
    b->next = head;
    head = b;
  }
  return head;
}

Lateral *make_laterals(int n, int nbranch, int nleaf, int where) {
  Lateral *head; Lateral *la; int i;
  head = NULL;
  for (i = 0; i < n; i = i + 1) {
    la = pmalloc(sizeof(Lateral))@node(where);
    la->r = 0.0009765625;
    la->x = 0.001953125;
    la->pin = 0.0;
    la->qin = 0.0;
    la->branches = make_branches(nbranch, nleaf, where);
    la->next = head;
    head = la;
  }
  return head;
}

// Each feeder subtree is constructed *at* its owner so that the build's
// stores are node-local (the paper's benchmarks use the best data
// distribution the authors found; building in place is part of that).
Feeder *make_feeder(int nlat, int nbranch, int nleaf, int where) {
  Feeder *f;
  f = pmalloc(sizeof(Feeder))@node(where);
  f->pin = 0.0;
  f->qin = 0.0;
  f->laterals = make_laterals(nlat, nbranch, nleaf, where);
  return f;
}

// Builds feeders [lo, hi) as a list, recursively in parallel.
Feeder *build_feeders(int lo, int hi, int nlat, int nbranch, int nleaf) {
  Feeder *a; Feeder *b; Feeder *f;
  int mid; int nn; int where;
  if (lo >= hi) { return NULL; }
  nn = num_nodes();
  if (hi - lo == 1) {
    where = lo % nn;
    f = make_feeder(nlat, nbranch, nleaf, where)@node(where);
    f->next = NULL;
    return f;
  }
  mid = (lo + hi) / 2;
  {^
    a = build_feeders(lo, mid, nlat, nbranch, nleaf);
    b = build_feeders(mid, hi, nlat, nbranch, nleaf);
  ^}
  f = a;
  while (f->next != NULL) { f = f->next; }
  f->next = b;
  return a;
}

Root *build(int nfeeder, int nlat, int nbranch, int nleaf) {
  Root *root;
  root = pmalloc(sizeof(Root))@node(0);
  root->price = 1.0;
  root->feeders = build_feeders(0, nfeeder, nlat, nbranch, nleaf);
  return root;
}

// One leaf: read demand + coefficients, update demand from the price.
double compute_leaf(Leaf *l, double price) {
  double p; double q; double a; double b; double np; double nq;
  p = l->pi;
  q = l->qi;
  a = l->alpha;
  b = l->beta;
  np = a * p + b * q - 0.015625 * price;
  nq = q * 0.984375;
  if (np < 0.0) { np = 0.0; }
  l->pi = np;
  l->qi = nq;
  return np + nq;
}

// One branch: reads r/x/alpha/beta early, accumulates over its leaves,
// writes pin/qin/alpha/beta back late (Figure 11(a) shape).
double compute_branch(Branch *br, double price) {
  double r; double x; double a; double b;
  double total; double t;
  Leaf *l;
  r = br->r;
  x = br->x;
  a = br->alpha;
  b = br->beta;
  total = 0.0;
  l = br->leaves;
  while (l != NULL) {
    t = compute_leaf(l, price);
    total = total + t;
    l = l->next;
  }
  br->pin = total + r * total * total;
  br->qin = total * 0.5 + x * total * total;
  br->alpha = a * 0.984375;
  br->beta = b * 0.984375;
  return total + r * total * total;
}

double compute_lateral(Lateral *la, double price) {
  double r; double x;
  double total; double t;
  Branch *b;
  r = la->r;
  x = la->x;
  total = 0.0;
  b = la->branches;
  while (b != NULL) {
    t = compute_branch(b, price);
    total = total + t;
    b = b->next;
  }
  la->pin = total + r * total * total;
  la->qin = total * 0.5 + x * total * total;
  return total + r * total * total;
}

double compute_feeder(Feeder *f, double price) {
  double total; double t;
  Lateral *la;
  total = 0.0;
  la = f->laterals;
  while (la != NULL) {
    t = compute_lateral(la, price);
    total = total + t;
    la = la->next;
  }
  f->pin = total;
  f->qin = total * 0.5;
  return total;
}

int main() {
  Root *root;
  Feeder *f;
  shared int sum;
  double price; double t;
  int iter; int si; int check;
  root = build(${feeders}, ${lateral}, ${branch}, ${leaf});
  price = 1.0;
  for (iter = 0; iter < 4; iter = iter + 1) {
    writeto(&sum, 0);
    forall (f = root->feeders; f != NULL; f = f->next) {
      double ft; int ti;
      ft = compute_feeder(f, price)@OWNER_OF(f);
      ti = ft * 256.0;
      addto(&sum, ti);
    }
    si = valueof(&sum);
    // Price feedback in exact powers of two: deterministic at any node
    // count and iteration order.
    price = price + (262144 - si) * 0.0000152587890625;
    if (price < 0.0) { price = 0.0; }
  }
  check = price * 4096.0;
  return check + si % 100000;
}
)EARTH";
