//===- Perimeter.cpp - The Olden "perimeter" benchmark in EARTH-C ----------===//
//
// Part of the earthcc project.
//
// Perimeter of a quad-tree encoded raster image (a disc). The tree is
// built top-down with the top two levels spread across nodes; the
// perimeter phase uses the classic gtequal_adj_neighbor / sum_adjacent
// structure — the paper's Figure 11(b) shows exactly the blkmov the
// optimizer produces for sum_adjacent's switch over child pointers.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *earthccPerimeterSource = R"EARTH(
// ---- Olden perimeter, EARTH-C dialect ------------------------------------

struct Quad {
  int color;      // 0 = white, 1 = black, 2 = grey
  int childtype;  // quadrant within parent: 0 nw, 1 ne, 2 sw, 3 se
  Quad *nw;
  Quad *ne;
  Quad *sw;
  Quad *se;
  Quad *parent;
};

// Top levels of the tree are spread round-robin over the machine.
int childwhere(int where, int k, int level) {
  if (level >= 5) {
    return (where * 4 + k + 1) % num_nodes();
  }
  return where;
}

// The image: a disc of radius 90 centered at (128, 128) on a 256x256 grid.
int image_black(int cx, int cy) {
  int dx; int dy;
  dx = cx - 128;
  dy = cy - 128;
  if (dx * dx + dy * dy <= 8100) { return 1; }
  return 0;
}

Quad *maketree(int level, int cx, int cy, int sz, Quad *parent, int ct,
               int where) {
  Quad *q;
  int h;
  int w0; int w1; int w2; int w3;
  q = pmalloc(sizeof(Quad))@node(where);
  q->childtype = ct;
  q->parent = parent;
  if (level == 0) {
    q->nw = NULL;
    q->ne = NULL;
    q->sw = NULL;
    q->se = NULL;
    q->color = image_black(cx, cy);
    return q;
  }
  h = sz / 4;
  q->color = 2;
  // Each subtree is constructed at its owner node, so the build's stores
  // stay node-local; the spread levels build their subtrees in parallel.
  w0 = childwhere(where, 0, level);
  w1 = childwhere(where, 1, level);
  w2 = childwhere(where, 2, level);
  w3 = childwhere(where, 3, level);
  if (level >= 4) {
    {^
      q->nw = maketree(level - 1, cx - h, cy + h, sz / 2, q, 0, w0)@node(w0);
      q->ne = maketree(level - 1, cx + h, cy + h, sz / 2, q, 1, w1)@node(w1);
      q->sw = maketree(level - 1, cx - h, cy - h, sz / 2, q, 2, w2)@node(w2);
      q->se = maketree(level - 1, cx + h, cy - h, sz / 2, q, 3, w3)@node(w3);
    ^}
  } else {
    q->nw = maketree(level - 1, cx - h, cy + h, sz / 2, q, 0, w0)@node(w0);
    q->ne = maketree(level - 1, cx + h, cy + h, sz / 2, q, 1, w1)@node(w1);
    q->sw = maketree(level - 1, cx - h, cy - h, sz / 2, q, 2, w2)@node(w2);
    q->se = maketree(level - 1, cx + h, cy - h, sz / 2, q, 3, w3)@node(w3);
  }
  return q;
}

// Directions: 0 = north, 1 = east, 2 = south, 3 = west.

// Is quadrant ct on the boundary of its parent in direction d?
int adjacent(int d, int ct) {
  int r;
  r = 0;
  switch (d) {
  case 0: if (ct == 0) { r = 1; } if (ct == 1) { r = 1; } break;
  case 1: if (ct == 1) { r = 1; } if (ct == 3) { r = 1; } break;
  case 2: if (ct == 2) { r = 1; } if (ct == 3) { r = 1; } break;
  default: if (ct == 0) { r = 1; } if (ct == 2) { r = 1; } break;
  }
  return r;
}

// Mirror quadrant ct across the boundary in direction d.
int reflect(int d, int ct) {
  int r;
  if (d == 0 || d == 2) {
    // Vertical mirror: nw<->sw, ne<->se.
    r = 0;
    switch (ct) {
    case 0: r = 2; break;
    case 1: r = 3; break;
    case 2: r = 0; break;
    default: r = 1; break;
    }
    return r;
  }
  // Horizontal mirror: nw<->ne, sw<->se.
  r = 0;
  switch (ct) {
  case 0: r = 1; break;
  case 1: r = 0; break;
  case 2: r = 3; break;
  default: r = 2; break;
  }
  return r;
}

Quad *child_quad(Quad *q, int ct) {
  Quad *r;
  r = NULL;
  switch (ct) {
  case 0: r = q->nw; break;
  case 1: r = q->ne; break;
  case 2: r = q->sw; break;
  default: r = q->se; break;
  }
  return r;
}

// The neighbor of q in direction d whose size is >= q's size.
Quad *gtequal_adj_neighbor(Quad *q, int d) {
  Quad *p;
  Quad *a;
  int ct;
  p = q->parent;
  ct = q->childtype;
  if (p != NULL && adjacent(d, ct) == 1) {
    a = gtequal_adj_neighbor(p, d);
  } else {
    a = p;
  }
  if (a != NULL && a->color == 2) {
    return child_quad(a, reflect(d, ct));
  }
  return a;
}

// Perimeter contribution of the side of (possibly grey) quad q facing us;
// q1/q2 are the two child quadrants along that side.
int sum_adjacent(Quad *q, int q1, int q2, int sz) {
  int s1; int s2; int c;
  c = q->color;
  if (c == 2) {
    s1 = sum_adjacent(child_quad(q, q1), q1, q2, sz / 2);
    s2 = sum_adjacent(child_quad(q, q2), q1, q2, sz / 2);
    return s1 + s2;
  }
  if (c == 0) { return sz; }
  return 0;
}

// Border length of black leaf q in direction d (against white or outside).
int edge(Quad *q, int d, int q1, int q2, int sz) {
  Quad *n;
  n = gtequal_adj_neighbor(q, d);
  if (n == NULL) { return sz; }
  if (n->color == 0) { return sz; }
  if (n->color == 2) { return sum_adjacent(n, q1, q2, sz); }
  return 0;
}

int perimeter(Quad *q, int sz, int depth) {
  int retv;
  int p1; int p2; int p3; int p4;
  Quad *cnw; Quad *cne; Quad *csw; Quad *cse;
  if (q->color == 2) {
    cnw = q->nw;
    cne = q->ne;
    csw = q->sw;
    cse = q->se;
    if (depth > 0) {
      {^
        p1 = perimeter(cnw, sz / 2, depth - 1)@OWNER_OF(cnw);
        p2 = perimeter(cne, sz / 2, depth - 1)@OWNER_OF(cne);
        p3 = perimeter(csw, sz / 2, depth - 1)@OWNER_OF(csw);
        p4 = perimeter(cse, sz / 2, depth - 1)@OWNER_OF(cse);
      ^}
    } else {
      p1 = perimeter(cnw, sz / 2, 0);
      p2 = perimeter(cne, sz / 2, 0);
      p3 = perimeter(csw, sz / 2, 0);
      p4 = perimeter(cse, sz / 2, 0);
    }
    return p1 + p2 + p3 + p4;
  }
  if (q->color == 1) {
    retv = 0;
    retv = retv + edge(q, 0, 2, 3, sz); // north: neighbor's south side.
    retv = retv + edge(q, 1, 0, 2, sz); // east: neighbor's west side.
    retv = retv + edge(q, 2, 0, 1, sz); // south: neighbor's north side.
    retv = retv + edge(q, 3, 1, 3, sz); // west: neighbor's east side.
    return retv;
  }
  return 0;
}

int main() {
  Quad *root;
  int per;
  root = maketree(${depth}, 128, 128, 256, NULL, 0, 0);
  per = perimeter(root, 256, 2);
  return per;
}
)EARTH";
