//===- Tsp.cpp - The Olden "tsp" benchmark in EARTH-C ----------------------===//
//
// Part of the earthcc project.
//
// Sub-optimal traveling-salesperson tour: cities live in a balanced binary
// space-partition tree; tsp() conquers subtrees into circular doubly-linked
// subtours in parallel and merges them by cheapest-splice scans. The scan
// loop reads x, y and next of each tour city — three fields of one pointer,
// which the optimizer blocks — while the repeated reads of the spliced
// cycle's representative point exercise redundant-communication
// elimination and pipelining, the effects the paper reports for tsp.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *earthccTspSource = R"EARTH(
// ---- Olden tsp, EARTH-C dialect -------------------------------------------

struct City {
  double x; double y;
  City *left;
  City *right;
  City *next;
  City *prev;
};

int childwhere(int where, int k, int depth) {
  if (depth >= 6) {
    return (where * 2 + k + 1) % num_nodes();
  }
  return where;
}

// Balanced BSP tree over [xlo, xhi); y from a deterministic LCG.
City *build_tree(int depth, double xlo, double xhi, int seed, int where) {
  City *c;
  int s; int w0; int w1;
  double mid;
  if (depth == 0) { return NULL; }
  s = (seed * 1103515245 + 12345) % 2147483648;
  if (s < 0) { s = -s; }
  mid = (xlo + xhi) * 0.5;
  c = pmalloc(sizeof(City))@node(where);
  c->x = mid;
  c->y = (s % 1024) * 0.25;
  c->next = NULL;
  c->prev = NULL;
  // Subtrees are built at their owners (node-local stores), in parallel
  // at the spread levels.
  w0 = childwhere(where, 0, depth);
  w1 = childwhere(where, 1, depth);
  if (depth >= 5) {
    {^
      c->left = build_tree(depth - 1, xlo, mid, s + 1, w0)@node(w0);
      c->right = build_tree(depth - 1, mid, xhi, s + 2, w1)@node(w1);
    ^}
  } else {
    c->left = build_tree(depth - 1, xlo, mid, s + 1, w0)@node(w0);
    c->right = build_tree(depth - 1, mid, xhi, s + 2, w1)@node(w1);
  }
  return c;
}

// Splice cycle b into cycle a after the city of a closest to b's
// representative point. The scan reads u->x, u->y, u->next per city; like
// Olden's close-point heuristic it examines a bounded window of the tour
// (this is a *sub-optimal* tour construction by design).
City *splice(City *a, City *b) {
  City *u; City *best; City *un; City *bp;
  double bd; double d; double dx; double dy;
  double bx; double by;
  int scanned;
  bx = b->x;
  by = b->y;
  best = a;
  bd = 100000000.0;
  u = a;
  scanned = 0;
  do {
    dx = u->x - bx;
    dy = u->y - by;
    d = dx * dx + dy * dy;
    if (d < bd) {
      bd = d;
      best = u;
    }
    u = u->next;
    scanned = scanned + 1;
  } while (u != a && scanned < 32);
  un = best->next;
  bp = b->prev;
  best->next = b;
  b->prev = best;
  bp->next = un;
  un->prev = bp;
  return a;
}

// Conquer the subtree rooted at t into a circular tour.
City *tsp(City *t, int depth) {
  City *a; City *b; City *cyc;
  City *l; City *r;
  if (t == NULL) { return NULL; }
  l = t->left;
  r = t->right;
  if (depth > 0 && l != NULL && r != NULL) {
    {^
      a = tsp(l, depth - 1)@OWNER_OF(l);
      b = tsp(r, depth - 1)@OWNER_OF(r);
    ^}
  } else {
    a = tsp(l, 0);
    b = tsp(r, 0);
  }
  t->next = t;
  t->prev = t;
  cyc = t;
  if (a != NULL) { cyc = splice(a, cyc); }
  if (b != NULL) { cyc = splice(cyc, b); }
  return cyc;
}

// Validates (in parallel, at the owners) that every city was linked into
// the tour: each must have non-null next and prev.
int check_linked(City *t, int depth) {
  int c; int cl; int cr;
  City *l; City *r;
  if (t == NULL) { return 0; }
  c = 0;
  if (t->next != NULL) { c = c + 1; }
  if (t->prev != NULL) { c = c + 1; }
  l = t->left;
  r = t->right;
  if (depth > 0 && l != NULL && r != NULL) {
    {^
      cl = check_linked(l, depth - 1)@OWNER_OF(l);
      cr = check_linked(r, depth - 1)@OWNER_OF(r);
    ^}
  } else {
    cl = check_linked(l, 0);
    cr = check_linked(r, 0);
  }
  return c + cl + cr;
}

int main() {
  City *root; City *cyc; City *p; City *q;
  double len; double dx; double dy;
  int hops; int linked; int check;
  root = build_tree(${depth}, 0.0, 256.0, 7, 0);
  cyc = tsp(root, 5);
  linked = check_linked(root, 5);
  // Sample the tour length over a bounded prefix (the full walk would be
  // a purely serial remote pointer chase irrelevant to the benchmark).
  len = 0.0;
  hops = 0;
  p = cyc;
  do {
    q = p->next;
    dx = p->x - q->x;
    dy = p->y - q->y;
    len = len + sqrt(dx * dx + dy * dy);
    hops = hops + 1;
    p = q;
  } while (p != cyc && hops < 64);
  check = len * 0.0625;
  return linked * 10000 + check % 10000;
}
)EARTH";
