//===- Voronoi.cpp - The Olden "voronoi" benchmark in EARTH-C --------------===//
//
// Part of the earthcc project.
//
// Substitution note (see DESIGN.md): Olden's voronoi builds a Voronoi
// diagram with the Guibas-Stolfi quad-edge divide-and-conquer algorithm.
// We reproduce the *communication-relevant* structure — points stored in a
// distributed binary tree, recursive divide-and-conquer over the two
// subtrees in parallel, and a merge phase that walks the two sub-results
// in an irregular alternating fashion, repeatedly reading point
// coordinates through pointers — using a y-ordered merge with
// closest-adjacent-pair tracking in place of the quad-edge hull walk. The
// dynamic access pattern (alternating remote reads of x/y/link fields of
// two interleaved lists) is what the paper's optimization targets in this
// benchmark (redundancy elimination + blocking).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *earthccVoronoiSource = R"EARTH(
// ---- Olden voronoi (D&C geometric merge), EARTH-C dialect -----------------

struct Pt {
  double x; double y;
  Pt *left;
  Pt *right;
  Pt *hnext;
};

int childwhere(int where, int k, int depth) {
  if (depth >= 6) {
    return (where * 2 + k + 1) % num_nodes();
  }
  return where;
}

Pt *build_tree(int depth, double xlo, double xhi, int seed, int where) {
  Pt *c;
  int s; int w0; int w1;
  double mid;
  if (depth == 0) { return NULL; }
  s = (seed * 1103515245 + 12345) % 2147483648;
  if (s < 0) { s = -s; }
  mid = (xlo + xhi) * 0.5;
  c = pmalloc(sizeof(Pt))@node(where);
  c->x = mid;
  c->y = (s % 4096) * 0.0625;
  c->hnext = NULL;
  // Subtrees are built at their owners (node-local stores), in parallel
  // at the spread levels.
  w0 = childwhere(where, 0, depth);
  w1 = childwhere(where, 1, depth);
  if (depth >= 5) {
    {^
      c->left = build_tree(depth - 1, xlo, mid, s + 1, w0)@node(w0);
      c->right = build_tree(depth - 1, mid, xhi, s + 2, w1)@node(w1);
    ^}
  } else {
    c->left = build_tree(depth - 1, xlo, mid, s + 1, w0)@node(w0);
    c->right = build_tree(depth - 1, mid, xhi, s + 2, w1)@node(w1);
  }
  return c;
}

// Merge two y-sorted chains, walking them alternately. The loop's reads of
// a->y / b->y / tail->hnext are the irregular alternating accesses.
Pt *merge_chains(Pt *a, Pt *b) {
  Pt *head; Pt *tail;
  double ay; double by;
  if (a == NULL) { return b; }
  if (b == NULL) { return a; }
  ay = a->y;
  by = b->y;
  if (ay <= by) {
    head = a;
    a = a->hnext;
  } else {
    head = b;
    b = b->hnext;
  }
  tail = head;
  while (a != NULL && b != NULL) {
    ay = a->y;
    by = b->y;
    if (ay <= by) {
      tail->hnext = a;
      tail = a;
      a = a->hnext;
    } else {
      tail->hnext = b;
      tail = b;
      b = b->hnext;
    }
  }
  if (a != NULL) {
    tail->hnext = a;
  } else {
    tail->hnext = b;
  }
  return head;
}

// The merged walk is thinned to a bounded "hull" before being passed up,
// mirroring how the quad-edge merge only walks the sub-diagrams' hulls
// (whose size is far below the subtree size).
Pt *thin_chain(Pt *m) {
  Pt *p; Pt *q;
  int n;
  p = m;
  n = 1;
  while (p != NULL) {
    q = p->hnext;
    if (n >= 32) {
      p->hnext = NULL;
      return m;
    }
    if (q != NULL && n % 2 == 0) {
      // Drop every other element beyond the head section.
      p->hnext = q->hnext;
    }
    p = p->hnext;
    n = n + 1;
  }
  return m;
}

// Divide and conquer: build the y-ordered "diagram walk" of the subtree.
Pt *voronoi_dc(Pt *t, int depth) {
  Pt *a; Pt *b; Pt *m;
  Pt *l; Pt *r;
  if (t == NULL) { return NULL; }
  l = t->left;
  r = t->right;
  if (depth > 0 && l != NULL && r != NULL) {
    {^
      a = voronoi_dc(l, depth - 1)@OWNER_OF(l);
      b = voronoi_dc(r, depth - 1)@OWNER_OF(r);
    ^}
  } else {
    a = voronoi_dc(l, 0);
    b = voronoi_dc(r, 0);
  }
  t->hnext = NULL;
  m = merge_chains(a, t);
  m = merge_chains(m, b);
  return thin_chain(m);
}

int main() {
  Pt *root; Pt *m; Pt *p; Pt *q;
  double dx; double dy; double d; double mind;
  int count; int check;
  root = build_tree(${depth}, 0.0, 512.0, 13, 0);
  m = voronoi_dc(root, 5);
  // Walk the merged diagram: count points, track the closest adjacent pair.
  count = 0;
  mind = 100000000.0;
  p = m;
  while (p != NULL) {
    q = p->hnext;
    if (q != NULL) {
      dx = p->x - q->x;
      dy = p->y - q->y;
      d = dx * dx + dy * dy;
      if (d < mind) { mind = d; }
    }
    count = count + 1;
    p = q;
  }
  check = sqrt(mind) * 256.0;
  return count * 100000 + check % 100000;
}
)EARTH";
