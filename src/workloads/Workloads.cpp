//===- Workloads.cpp - Benchmark registry and run harness ------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <stdexcept>

using namespace earthcc;

// Benchmark sources (one translation unit each; see the per-file comments).
extern const char *earthccPowerSource;
extern const char *earthccPerimeterSource;
extern const char *earthccTspSource;
extern const char *earthccHealthSource;
extern const char *earthccVoronoiSource;

std::string
earthcc::expandWorkloadSource(const std::string &Template,
                              const std::vector<WorkloadParam> &Params,
                              bool Small) {
  std::string Text = Template;
  for (const WorkloadParam &P : Params) {
    const std::string Needle = "${" + P.Name + "}";
    const std::string &Value = Small ? P.Small : P.Full;
    size_t Hits = 0;
    size_t Pos = 0;
    while ((Pos = Text.find(Needle, Pos)) != std::string::npos) {
      Text.replace(Pos, Needle.size(), Value);
      Pos += Value.size();
      ++Hits;
    }
    if (Hits == 0)
      throw std::runtime_error("workload parameter '" + P.Name +
                               "' matched nothing in the source template");
  }
  if (size_t Pos = Text.find("${"); Pos != std::string::npos)
    throw std::runtime_error("unexpanded workload placeholder: " +
                             Text.substr(Pos, Text.find('}', Pos) + 1 - Pos));
  return Text;
}

std::string Workload::smallSource() const {
  return expandWorkloadSource(SourceTemplate, Params, /*Small=*/true);
}

namespace {

Workload makeWorkload(std::string Name, std::string Description,
                      std::string PaperSize, std::string OurSize,
                      std::string Optimization, const char *Template,
                      std::vector<WorkloadParam> Params) {
  Workload W;
  W.Name = std::move(Name);
  W.Description = std::move(Description);
  W.PaperSize = std::move(PaperSize);
  W.OurSize = std::move(OurSize);
  W.Optimization = std::move(Optimization);
  W.SourceTemplate = Template;
  W.Params = std::move(Params);
  W.Source = expandWorkloadSource(W.SourceTemplate, W.Params, /*Small=*/false);
  return W;
}

} // namespace

const std::vector<Workload> &earthcc::oldenWorkloads() {
  static const std::vector<Workload> Workloads = {
      makeWorkload("power",
                   "Power system optimization over a variable k-nary tree",
                   "10,000 leaves",
                   "512 leaves (8 feeders x 4 x 4 x 4), 4 iterations",
                   "blocking of per-node field reads/writes",
                   earthccPowerSource,
                   {{"feeders", "16", "8"},
                    {"lateral", "4", "2"},
                    {"branch", "4", "2"},
                    {"leaf", "4", "2"}}),
      makeWorkload("perimeter",
                   "Perimeter of a quad-tree encoded raster image",
                   "maximum tree depth 11", "tree depth 6 (up to 4096 leaves)",
                   "blocking (blkmov replaces child-pointer reads)",
                   earthccPerimeterSource, {{"depth", "6", "4"}}),
      makeWorkload("tsp",
                   "Sub-optimal traveling-salesperson tour over a point tree",
                   "32K cities", "2K cities (depth-11 BSP tree)",
                   "redundant communication elimination + pipelining",
                   earthccTspSource, {{"depth", "11", "7"}}),
      makeWorkload("health",
                   "Colombian health-care simulation over a 4-way village tree",
                   "4 levels, 600 iterations",
                   "4 levels (85 villages), 48 iterations",
                   "pipelining + redundancy elimination", earthccHealthSource,
                   {{"levels", "3", "2"}, {"iters", "48", "8"}}),
      makeWorkload("voronoi",
                   "Divide-and-conquer geometric merge over a point tree",
                   "32K points", "1K points (depth-11 point tree)",
                   "redundancy elimination + blocking", earthccVoronoiSource,
                   {{"depth", "11", "7"}}),
  };
  return Workloads;
}

const Workload *earthcc::findWorkload(const std::string &Name) {
  for (const Workload &W : oldenWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

PipelineOptions earthcc::workloadOptions(RunMode Mode,
                                         const CommOptions &Comm) {
  PipelineOptions Opts;
  static_cast<CommOptions &>(Opts) = Comm;
  Opts.Optimize = Mode == RunMode::Optimized;
  return Opts;
}

MachineConfig earthcc::workloadMachine(RunMode Mode, unsigned Nodes) {
  MachineConfig MC;
  MC.NumNodes = Mode == RunMode::Sequential ? 1 : Nodes;
  MC.SequentialMode = Mode == RunMode::Sequential;
  return MC;
}

CompileResult earthcc::compileWorkload(const Workload &W, RunMode Mode,
                                       const CommOptions &Comm) {
  Pipeline P(workloadOptions(Mode, Comm));
  return P.compile(W.Source);
}

RunResult earthcc::runWorkload(const Workload &W, RunMode Mode,
                               unsigned Nodes, const CommOptions &Comm) {
  Pipeline P(workloadOptions(Mode, Comm));
  return P.run(P.compile(W.Source), workloadMachine(Mode, Nodes));
}
