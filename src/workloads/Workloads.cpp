//===- Workloads.cpp - Benchmark registry and run harness ------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace earthcc;

// Benchmark sources (one translation unit each; see the per-file comments).
extern const char *earthccPowerSource;
extern const char *earthccPerimeterSource;
extern const char *earthccTspSource;
extern const char *earthccHealthSource;
extern const char *earthccVoronoiSource;

const std::vector<Workload> &earthcc::oldenWorkloads() {
  static const std::vector<Workload> Workloads = {
      {"power",
       "Power system optimization over a variable k-nary tree",
       "10,000 leaves", "512 leaves (8 feeders x 4 x 4 x 4), 4 iterations",
       "blocking of per-node field reads/writes", earthccPowerSource},
      {"perimeter",
       "Perimeter of a quad-tree encoded raster image",
       "maximum tree depth 11", "tree depth 6 (up to 4096 leaves)",
       "blocking (blkmov replaces child-pointer reads)",
       earthccPerimeterSource},
      {"tsp",
       "Sub-optimal traveling-salesperson tour over a point tree",
       "32K cities", "256 cities",
       "redundant communication elimination + pipelining", earthccTspSource},
      {"health",
       "Colombian health-care simulation over a 4-way village tree",
       "4 levels, 600 iterations", "4 levels (85 villages), 24 iterations",
       "pipelining + redundancy elimination", earthccHealthSource},
      {"voronoi",
       "Divide-and-conquer geometric merge over a point tree",
       "32K points", "512 points",
       "redundancy elimination + blocking", earthccVoronoiSource},
  };
  return Workloads;
}

const Workload *earthcc::findWorkload(const std::string &Name) {
  for (const Workload &W : oldenWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

PipelineOptions earthcc::workloadOptions(RunMode Mode,
                                         const CommOptions &Comm) {
  PipelineOptions Opts;
  static_cast<CommOptions &>(Opts) = Comm;
  Opts.Optimize = Mode == RunMode::Optimized;
  return Opts;
}

MachineConfig earthcc::workloadMachine(RunMode Mode, unsigned Nodes) {
  MachineConfig MC;
  MC.NumNodes = Mode == RunMode::Sequential ? 1 : Nodes;
  MC.SequentialMode = Mode == RunMode::Sequential;
  return MC;
}

CompileResult earthcc::compileWorkload(const Workload &W, RunMode Mode,
                                       const CommOptions &Comm) {
  Pipeline P(workloadOptions(Mode, Comm));
  return P.compile(W.Source);
}

RunResult earthcc::runWorkload(const Workload &W, RunMode Mode,
                               unsigned Nodes, const CommOptions &Comm) {
  Pipeline P(workloadOptions(Mode, Comm));
  return P.run(P.compile(W.Source), workloadMachine(Mode, Nodes));
}
