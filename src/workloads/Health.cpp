//===- Health.cpp - The Olden "health" benchmark in EARTH-C ----------------===//
//
// Part of the earthcc project.
//
// Simulation of the Colombian health-care system over a 4-way tree of
// villages. Each time step simulates all villages (children in parallel,
// placed at the owners of the subtrees): patients progress through
// waiting -> assess -> inside lists, or get passed up to the parent
// village. The list-walking code matches the paper's Figure 11(c)
// (check_patients_inside), which benefits from pipelining and redundant
// communication elimination.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *earthccHealthSource = R"EARTH(
// ---- Olden health, EARTH-C dialect ----------------------------------------

struct Patient {
  int id;
  int time;
  int time_left;
};

struct List {
  Patient *patient;
  List *forward;
};

struct Hosp {
  int free_personnel;
  int treated;
  List *waiting;
  List *assess;
  List *inside;
};

struct Village {
  Village *child0;
  Village *child1;
  Village *child2;
  Village *child3;
  Village *parent;
  int label;
  int seed;
  int level;
  Hosp hosp;
};

int childwhere(int where, int k, int level) {
  if (level >= 2) {
    return (where * 4 + k + 1) % num_nodes();
  }
  return where;
}

Village *build(int level, Village *parent, int label, int where) {
  Village *v;
  int w0; int w1; int w2; int w3;
  v = pmalloc(sizeof(Village))@node(where);
  v->parent = parent;
  v->label = label;
  v->seed = label * 1299721 + 12345;
  v->level = level;
  v->hosp.free_personnel = level * 4 + 2;
  v->hosp.treated = 0;
  v->hosp.waiting = NULL;
  v->hosp.assess = NULL;
  v->hosp.inside = NULL;
  if (level == 0) {
    v->child0 = NULL;
    v->child1 = NULL;
    v->child2 = NULL;
    v->child3 = NULL;
  } else {
    // Each subtree is constructed at its owner node, in parallel.
    w0 = childwhere(where, 0, level);
    w1 = childwhere(where, 1, level);
    w2 = childwhere(where, 2, level);
    w3 = childwhere(where, 3, level);
    {^
      v->child0 = build(level - 1, v, label * 4 + 1, w0)@node(w0);
      v->child1 = build(level - 1, v, label * 4 + 2, w1)@node(w1);
      v->child2 = build(level - 1, v, label * 4 + 3, w2)@node(w2);
      v->child3 = build(level - 1, v, label * 4 + 4, w3)@node(w3);
    ^}
  }
  return v;
}

List *push(List *l, Patient *p) {
  List *c;
  c = pmalloc(sizeof(List))@node(my_node());
  c->patient = p;
  c->forward = l;
  return c;
}

List *concat(List *a, List *b) {
  List *p; List *f;
  if (a == NULL) { return b; }
  p = a;
  f = p->forward;
  while (f != NULL) {
    p = f;
    f = p->forward;
  }
  p->forward = b;
  return a;
}

// Patients being treated: one step closer to done (Figure 11(c)).
void check_inside(Village *village) {
  List *list; List *prev;
  Patient *p;
  int tl; int comm6;
  comm6 = village->hosp.free_personnel;
  list = village->hosp.inside;
  prev = NULL;
  while (list != NULL) {
    p = list->patient;
    tl = p->time_left;
    tl = tl - 1;
    p->time_left = tl;
    if (tl == 0) {
      comm6 = comm6 + 1;
      village->hosp.treated = village->hosp.treated + 1;
      if (prev == NULL) {
        village->hosp.inside = list->forward;
      } else {
        prev->forward = list->forward;
      }
      list = list->forward;
    } else {
      prev = list;
      list = list->forward;
    }
  }
  village->hosp.free_personnel = comm6;
}

// Patients under assessment: move to treatment here or get passed up.
List *check_assess(Village *village) {
  List *list; List *prev; List *up;
  Patient *p;
  int tl; int s;
  up = NULL;
  list = village->hosp.assess;
  prev = NULL;
  while (list != NULL) {
    p = list->patient;
    tl = p->time_left;
    tl = tl - 1;
    p->time_left = tl;
    if (tl == 0) {
      s = village->seed;
      s = (s * 1103515245 + 12345) % 2147483648;
      if (s < 0) { s = -s; }
      village->seed = s;
      if (prev == NULL) {
        village->hosp.assess = list->forward;
      } else {
        prev->forward = list->forward;
      }
      if (s % 10 != 0 || village->level == 3) {
        p->time_left = 6;
        village->hosp.inside = push(village->hosp.inside, p);
      } else {
        village->hosp.free_personnel = village->hosp.free_personnel + 1;
        up = push(up, p);
      }
      list = list->forward;
    } else {
      prev = list;
      list = list->forward;
    }
  }
  return up;
}

// Admit waiting patients while staff is available.
void check_waiting(Village *village) {
  List *list;
  Patient *p;
  int fp;
  fp = village->hosp.free_personnel;
  list = village->hosp.waiting;
  while (list != NULL && fp > 0) {
    p = list->patient;
    fp = fp - 1;
    p->time_left = 3;
    p->time = p->time + 1;
    village->hosp.assess = push(village->hosp.assess, p);
    list = list->forward;
    village->hosp.waiting = list;
  }
  village->hosp.free_personnel = fp;
}

// Leaf villages generate new patients.
void generate(Village *village) {
  int s;
  Patient *p;
  if (village->level != 0) { return; }
  s = village->seed;
  s = (s * 1103515245 + 12345) % 2147483648;
  if (s < 0) { s = -s; }
  village->seed = s;
  if (s % 3 != 0) {
    p = pmalloc(sizeof(Patient))@node(my_node());
    p->id = s % 100000;
    p->time = 0;
    p->time_left = 0;
    village->hosp.waiting = push(village->hosp.waiting, p);
  }
}

// One time step for the subtree rooted at village; returns the list of
// patients this village passes up to its parent.
List *sim_village(Village *village) {
  List *u0; List *u1; List *u2; List *u3;
  List *up;
  Village *c0; Village *c1; Village *c2; Village *c3;
  if (village->level > 0) {
    c0 = village->child0;
    c1 = village->child1;
    c2 = village->child2;
    c3 = village->child3;
    {^
      u0 = sim_village(c0)@OWNER_OF(c0);
      u1 = sim_village(c1)@OWNER_OF(c1);
      u2 = sim_village(c2)@OWNER_OF(c2);
      u3 = sim_village(c3)@OWNER_OF(c3);
    ^}
    village->hosp.waiting =
        concat(u0, concat(u1, concat(u2, concat(u3,
            village->hosp.waiting))));
  }
  check_inside(village);
  up = check_assess(village);
  check_waiting(village);
  generate(village);
  return up;
}

int count_treated(Village *v) {
  int total;
  if (v == NULL) { return 0; }
  total = v->hosp.treated;
  total = total + count_treated(v->child0);
  total = total + count_treated(v->child1);
  total = total + count_treated(v->child2);
  total = total + count_treated(v->child3);
  return total;
}

int count_left(Village *v) {
  List *l;
  int n;
  if (v == NULL) { return 0; }
  n = 0;
  l = v->hosp.waiting;
  while (l != NULL) { n = n + 1; l = l->forward; }
  l = v->hosp.assess;
  while (l != NULL) { n = n + 1; l = l->forward; }
  l = v->hosp.inside;
  while (l != NULL) { n = n + 1; l = l->forward; }
  n = n + count_left(v->child0);
  n = n + count_left(v->child1);
  n = n + count_left(v->child2);
  n = n + count_left(v->child3);
  return n;
}

int main() {
  Village *root;
  List *up;
  int t; int treated; int left;
  root = build(${levels}, NULL, 0, 0);
  for (t = 0; t < ${iters}; t = t + 1) {
    up = sim_village(root);
    // The root treats everything; nothing is passed above it.
  }
  treated = count_treated(root);
  left = count_left(root);
  return treated * 1000 + left;
}
)EARTH";
