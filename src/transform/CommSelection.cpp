//===- CommSelection.cpp - Communication selection transform --------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "transform/CommSelection.h"

#include "analysis/PointsTo.h"
#include "simple/Verifier.h"
#include "support/FlatSet.h"
#include "support/Remark.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <deque>
#include <iterator>

using namespace earthcc;

namespace {

using RCEKey = std::pair<const Var *, unsigned>;

struct RCEKeyHash {
  size_t operator()(const RCEKey &K) const {
    return std::hash<const Var *>()(K.first) * 31 + K.second;
  }
};

/// Tri-state result of the "dereference on all paths" check (the paper's
/// footnote 2: a hoisted read is only safe where some dereference of the
/// pointer is guaranteed to happen anyway).
enum class Deref { Yes, No, Transparent };

class Selector {
public:
  Selector(Module &M, Function &F, const CommOptions &Opts, Statistics &Stats,
           RemarkStream *Remarks, const PointsToAnalysis &PT,
           const SideEffects &SE, const PlacementResult &PR)
      : M(M), F(F), Opts(Opts), Stats(Stats), Remarks(Remarks), PT(PT),
        SE(SE), PR(PR) {}

  void run() {
    if (Opts.EnableWriteBlocking && Opts.EnableBlocking)
      planWritesSeq(F.body());
    processSeq(F.body());
    F.relabel();
  }

private:
  /// Emits one "comm-select" remark at \p Loc (no-op without a stream).
  void remark(const char *Category, SourceLoc Loc, std::string Message,
              std::vector<std::pair<std::string, std::string>> Args = {}) {
    if (!Remarks)
      return;
    Remark R;
    R.Pass = "comm-select";
    R.Category = Category;
    R.Function = F.name();
    R.Loc = Loc;
    R.Message = std::move(Message);
    R.Args = std::move(Args);
    Remarks->emit(std::move(R));
  }

  //===--------------------------------------------------------------------===
  // Write-group planning (latest placement, blocked only).
  //===--------------------------------------------------------------------===

  struct WriteGroup {
    const Var *Base = nullptr;
    unsigned StructWords = 0;
    std::set<unsigned> Offsets;
    std::set<int> CoveredLabels;
    SourceLoc Loc; ///< First covered store's access location.
    const Stmt *FillBeforeElem = nullptr; ///< Element of the sink sequence.
    const Stmt *SinkAfterElem = nullptr;  ///< Element of the sink sequence.
    Var *Block = nullptr;                 ///< Chosen during the rewrite walk.
    bool ElideFill = false; ///< All words stored + no direct reads: no fill.
  };

  /// True if any basic statement inside \p S carries one of \p Labels.
  static bool containsLabel(const Stmt &S, const std::set<int> &Labels) {
    bool Found = false;
    forEachStmt(S, [&](const Stmt &Inner) {
      if (!Found && Labels.count(Inner.label()))
        Found = true;
    });
    return Found;
  }

  void planWritesSeq(SeqStmt &Seq) {
    if (Seq.Parallel) {
      for (auto &Branch : Seq.Stmts)
        planWritesSeq(castStmt<SeqStmt>(*Branch));
      return;
    }
    for (size_t I = Seq.Stmts.size(); I-- > 0;) {
      Stmt &S = *Seq.Stmts[I];
      planWritesAt(Seq, I);
      forEachChildSeq(S, [this](SeqStmt &Child) { planWritesSeq(Child); });
    }
  }

  /// Considers sinking write tuples to "just after Seq.Stmts[I]".
  void planWritesAt(SeqStmt &Seq, size_t I) {
    const Stmt *S = Seq.Stmts[I].get();
    const std::vector<RCE> &Tuples = PR.writesAfter(S);
    if (Tuples.empty())
      return;

    // Group unselected candidate tuples by base pointer (keyed by the
    // variable id so the emission order is deterministic).
    std::map<unsigned, std::pair<const Var *, std::vector<const RCE *>>>
        ByBase;
    for (const RCE &T : Tuples) {
      if (SelectedWriteKeys.count({T.Base, T.Off}))
        continue;
      if (T.Freq < 1.0)
        continue;
      const Type *BaseTy = T.Base->type();
      if (!BaseTy->isPointer() || !BaseTy->pointee()->isStruct())
        continue;
      auto &Slot = ByBase[T.Base->id()];
      Slot.first = T.Base;
      Slot.second.push_back(&T);
    }

    for (auto &[BaseId, Entry] : ByBase) {
      const Var *Base = Entry.first;
      auto &Group = Entry.second;
      unsigned Words = Base->type()->pointee()->sizeInWords();
      if (!Opts.preferBlock(static_cast<unsigned>(Group.size()), Words))
        continue;

      WriteGroup G;
      G.Base = Base;
      G.StructWords = Words;
      G.Loc = Group.front()->Loc;
      for (const RCE *T : Group) {
        G.Offsets.insert(T->Off);
        G.CoveredLabels.insert(T->DList.begin(), T->DList.end());
      }

      // Locate the earliest element of this sequence containing a covered
      // store; the fill goes right before it.
      size_t J = I + 1;
      for (size_t K = 0; K <= I; ++K) {
        if (containsLabel(*Seq.Stmts[K], G.CoveredLabels)) {
          J = K;
          break;
        }
      }
      if (J > I)
        continue; // Covered stores not found here — give up on this group.

      if (!writeRegionSafe(G, Seq, J, I))
        continue;

      if (G.Offsets.size() == Words) {
        // RemoteFill elision: every word is stored on every path, so no
        // fill read is needed — unless a direct read in the region would
        // observe not-yet-written block words.
        G.ElideFill = true;
        for (size_t K = J; K <= I && G.ElideFill; ++K)
          if (SE.directlyReads(Base, *Seq.Stmts[K]))
            G.ElideFill = false;
      }

      G.FillBeforeElem = Seq.Stmts[J].get();
      G.SinkAfterElem = S;
      Groups.push_back(G);
      WriteGroup *GP = &Groups.back();
      for (int L : G.CoveredLabels)
        LabelToGroup[L] = GP;
      FillAt[G.FillBeforeElem].push_back(GP);
      SinkAt[G.SinkAfterElem].push_back(GP);
      for (unsigned Off : G.Offsets)
        SelectedWriteKeys.insert({Base, Off});
      Stats.add("select.write_groups");
      remark("blocked-write", G.Loc,
             "sunk " + std::to_string(G.Offsets.size()) + " stores through " +
                 Base->name() + " into one blkmov write-back of " +
                 std::to_string(Words) + " words (crossover >= " +
                 std::to_string(Opts.BlockThresholdWords) + " words)",
             {{"base", Base->name()},
              {"stores", std::to_string(G.Offsets.size())},
              {"struct_words", std::to_string(Words)},
              {"threshold", std::to_string(Opts.BlockThresholdWords)}});
    }
  }

  /// Checks that between the fill point (before element \p J) and the sink
  /// (after element \p I) nothing invalidates a block write-back: the base
  /// pointer is not reassigned and no *uncovered* word of the struct is
  /// written through an alias (covered words are already protected by the
  /// placement analysis; writing back a stale uncovered word would lose an
  /// aliased update).
  bool writeRegionSafe(const WriteGroup &G, const SeqStmt &Seq, size_t J,
                       size_t I) const {
    for (size_t K = J; K <= I; ++K) {
      const Stmt &E = *Seq.Stmts[K];
      if (SE.varWritten(G.Base, E))
        return false;
      for (unsigned Off = 0; Off != G.StructWords; ++Off) {
        if (G.Offsets.count(Off))
          continue;
        if (SE.accessedViaAlias(G.Base, Off, E, /*Write=*/true))
          return false;
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===
  // Deref-on-all-paths safety check.
  //===--------------------------------------------------------------------===

  Deref derefGuarantee(const Stmt &S, const Var *P) const {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      if (const auto *L = dynCast<LoadRV>(A.R.get()))
        if (L->Base == P)
          return Deref::Yes;
      if (A.L.Kind == LValueKind::Store && A.L.V == P)
        return Deref::Yes;
      if (A.L.Kind == LValueKind::Var && A.L.V == P)
        return Deref::No;
      return Deref::Transparent;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      return C.Result == P ? Deref::No : Deref::Transparent;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      return A.Result == P ? Deref::No : Deref::Transparent;
    }
    case StmtKind::BlkMov:
      return castStmt<BlkMovStmt>(S).Ptr == P ? Deref::Yes
                                              : Deref::Transparent;
    case StmtKind::Return:
      return Deref::No;
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(S);
      if (Seq.Parallel) {
        bool AnyNo = false;
        for (const auto &Branch : Seq.Stmts) {
          Deref D = derefGuarantee(*Branch, P);
          if (D == Deref::Yes)
            return Deref::Yes; // Every branch executes.
          AnyNo |= D == Deref::No;
        }
        return AnyNo ? Deref::No : Deref::Transparent;
      }
      for (const auto &Child : Seq.Stmts) {
        Deref D = derefGuarantee(*Child, P);
        if (D != Deref::Transparent)
          return D;
      }
      return Deref::Transparent;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      Deref T = derefGuarantee(*If.Then, P);
      Deref E = derefGuarantee(*If.Else, P);
      if (T == Deref::No || E == Deref::No)
        return Deref::No;
      if (T == Deref::Yes && E == Deref::Yes)
        return Deref::Yes;
      return Deref::Transparent;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      bool AllYes = true;
      for (const auto &C : Sw.Cases) {
        Deref D = derefGuarantee(*C.Body, P);
        if (D == Deref::No)
          return Deref::No;
        AllYes &= D == Deref::Yes;
      }
      Deref D = derefGuarantee(*Sw.Default, P);
      if (D == Deref::No)
        return Deref::No;
      AllYes &= D == Deref::Yes;
      return AllYes ? Deref::Yes : Deref::Transparent;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      Deref D = derefGuarantee(*W.Body, P);
      if (D == Deref::No)
        return Deref::No;
      if (W.IsDoWhile)
        return D; // The body runs at least once.
      return SE.varWritten(P, S) ? Deref::No : Deref::Transparent;
    }
    case StmtKind::Forall:
      return SE.varWritten(P, S) ? Deref::No : Deref::Transparent;
    }
    return Deref::Transparent;
  }

  /// True if every path starting just before element \p I of \p Elems is
  /// guaranteed to dereference \p P (conservatively: within this sequence).
  bool safeToDeref(const std::vector<Stmt *> &Elems, size_t I,
                   const Var *P) const {
    if (Opts.SpeculativeReads)
      return true;
    for (size_t K = I; K != Elems.size(); ++K) {
      Deref D = derefGuarantee(*Elems[K], P);
      if (D != Deref::Transparent)
        return D == Deref::Yes;
    }
    return false;
  }

  //===--------------------------------------------------------------------===
  // Live read bindings (the paper's hash table of selected operations).
  //===--------------------------------------------------------------------===

  struct ScalarBinding {
    const Var *Temp = nullptr;
    bool TempIsProgramVar = false; ///< Redundancy-elim-only mode reuses the
                                   ///< original target variable as cache.
  };

  /// The paper's hash table of selected operations, as hashed flat maps:
  /// the branch walks snapshot/restore these wholesale (If/Switch/While and
  /// every parallel branch), so cheap contiguous copies matter more than
  /// ordered iteration — nothing iterates them except invalidateAfter.
  FlatMap<RCEKey, ScalarBinding, RCEKeyHash> LiveScalar;
  FlatMap<const Var *, Var *> LiveBlock;
  std::optional<std::pair<RCEKey, ScalarBinding>> PendingBinding;

  /// True if reading (T.Base, T.Off) might observe memory that an active
  /// write group is still holding back in its block copy.
  bool aliasesActiveWriteGroup(const RCE &T) const {
    for (const WriteGroup *G : ActiveGroups) {
      if (G->Base == T.Base)
        continue; // Direct accesses are rewritten onto the block copy.
      for (unsigned Off : G->Offsets)
        if (PT.mayAlias(T.Base, T.Off, G->Base, Off))
          return true;
    }
    return false;
  }

  struct BindingSnapshot {
    FlatMap<RCEKey, ScalarBinding, RCEKeyHash> Scalars;
    FlatMap<const Var *, Var *> Blocks;
  };

  BindingSnapshot snapshot() const { return {LiveScalar, LiveBlock}; }
  void restore(BindingSnapshot Snap) {
    LiveScalar = std::move(Snap.Scalars);
    LiveBlock = std::move(Snap.Blocks);
  }

  /// Drops every binding whose cached value \p S may invalidate.
  void invalidateAfter(const Stmt &S) {
    LiveScalar.eraseIf([&](const RCEKey &Key, const ScalarBinding &B) {
      return SE.varWritten(Key.first, S) ||
             SE.accessedViaAlias(Key.first, Key.second, S, /*Write=*/true) ||
             // Program-variable caches (redundancy-elim-only mode) cannot
             // be refreshed by emitted coherence code, so any direct store
             // inside S — e.g. within a branch whose binding updates were
             // rolled back — kills them too.
             (B.TempIsProgramVar &&
              (SE.varWritten(B.Temp, S) ||
               SE.directlyWrites(Key.first, Key.second, S)));
    });
    LiveBlock.eraseIf([&](const Var *Base, Var *) {
      if (SE.varWritten(Base, S))
        return true;
      unsigned Words = Base->type()->pointee()->sizeInWords();
      for (unsigned Off = 0; Off != Words; ++Off)
        if (SE.accessedViaAlias(Base, Off, S, /*Write=*/true))
          return true;
      return false;
    });
  }

  //===--------------------------------------------------------------------===
  // The rewrite walk.
  //===--------------------------------------------------------------------===

  Var *makeBlockVar(const Var *Base) {
    const Type *StructTy = Base->type()->pointee();
    return F.addTemp(StructTy, VarKind::BlockTemp);
  }

  void emitFill(SeqStmt &Out, WriteGroup *G) {
    ActiveGroups.insert(G);
    if (Var *const *Block = LiveBlock.find(G->Base)) {
      G->Block = *Block; // RemoteFill satisfied by the blocked read.
      Stats.add("select.fill_reused");
      remark("remote-fill", G->Loc,
             "RemoteFill for " + G->Base->name() +
                 " satisfied by an existing blocked read (no extra blkmov)",
             {{"base", G->Base->name()}, {"action", "reused"}});
      return;
    }
    G->Block = makeBlockVar(G->Base);
    if (G->ElideFill) {
      // Every word of the struct is stored on every path and nothing reads
      // the base in the region, so there are no stale words to preserve:
      // no fill read needed (the common fresh-allocation pattern).
      LiveBlock[G->Base] = G->Block;
      Stats.add("select.fill_elided");
      remark("remote-fill", G->Loc,
             "RemoteFill for " + G->Base->name() + " elided: all " +
                 std::to_string(G->StructWords) +
                 " words stored on every path",
             {{"base", G->Base->name()},
              {"action", "elided"},
              {"struct_words", std::to_string(G->StructWords)}});
      return;
    }
    auto Fill = std::make_unique<BlkMovStmt>(BlkMovDir::ReadToLocal, G->Base,
                                             G->Block, G->StructWords);
    Fill->setLoc(G->Loc);
    Out.push(std::move(Fill));
    LiveBlock[G->Base] = G->Block;
    Stats.add("select.fill_blkmovs");
    remark("remote-fill", G->Loc,
           "RemoteFill inserted: blkmov read of " +
               std::to_string(G->StructWords) + " words of " +
               G->Base->name() + " before the first covered store",
           {{"base", G->Base->name()},
            {"action", "inserted"},
            {"struct_words", std::to_string(G->StructWords)}});
  }

  /// Issues the reads placeable before element \p I of the current
  /// sequence, following the earliest-placement policy.
  void placeReadsBefore(SeqStmt &Out, const std::vector<Stmt *> &Elems,
                        size_t I) {
    const std::vector<RCE> &Tuples = PR.readsBefore(Elems[I]);
    if (Tuples.empty())
      return;

    std::map<unsigned, std::pair<const Var *, std::vector<const RCE *>>>
        ByBase;
    for (const RCE &T : Tuples) {
      if (LiveBlock.count(T.Base) || LiveScalar.count({T.Base, T.Off})) {
        Stats.add("select.already_selected");
        continue;
      }
      if (T.Freq < 1.0)
        continue;
      if (!safeToDeref(Elems, I, T.Base))
        continue;
      if (aliasesActiveWriteGroup(T)) {
        // The location's current value may live only in a write group's
        // pending block copy: hoisting the read here would observe stale
        // memory. Leave the read at its original position.
        Stats.add("select.suppressed_by_write_group");
        continue;
      }
      auto &Slot = ByBase[T.Base->id()];
      Slot.first = T.Base;
      Slot.second.push_back(&T);
    }

    for (auto &[BaseId, Entry] : ByBase) {
      const Var *Base = Entry.first;
      auto &Group = Entry.second;
      const Type *Pointee = Base->type()->pointee();
      unsigned Words = Pointee->isStruct() ? Pointee->sizeInWords() : 1;
      bool Block = Pointee->isStruct() &&
                   Opts.preferBlock(static_cast<unsigned>(Group.size()),
                                    Words);
      if (Block) {
        Var *B = makeBlockVar(Base);
        auto Mov = std::make_unique<BlkMovStmt>(BlkMovDir::ReadToLocal, Base,
                                                B, Words);
        Mov->setLoc(Group.front()->Loc);
        Out.push(std::move(Mov));
        LiveBlock[Base] = B;
        Stats.add("select.blocked_reads");
        remark("blocked-read", Group.front()->Loc,
               "merged " + std::to_string(Group.size()) + " reads of " +
                   Base->name() + " into one blkmov of " +
                   std::to_string(Words) + " words (crossover >= " +
                   std::to_string(Opts.BlockThresholdWords) + " words)",
               {{"base", Base->name()},
                {"fields", std::to_string(Group.size())},
                {"struct_words", std::to_string(Words)},
                {"threshold", std::to_string(Opts.BlockThresholdWords)}});
        continue;
      }
      for (const RCE *T : Group) {
        Var *Temp = F.addTemp(T->ValueTy, VarKind::CommTemp);
        auto Rd = std::make_unique<AssignStmt>(
            LValue::makeVar(Temp),
            std::make_unique<LoadRV>(T->Base, T->Off, T->FieldName,
                                     T->ValueTy, Locality::Remote));
        Rd->setLoc(T->Loc);
        Out.push(std::move(Rd));
        LiveScalar[{T->Base, T->Off}] = {Temp, /*TempIsProgramVar=*/false};
        Stats.add("select.pipelined_reads");
        remark("pipelined-read", T->Loc,
               "read " + T->Base->name() + "->" +
                   (T->FieldName.empty() ? "*" : T->FieldName) +
                   " hoisted to its earliest placement as a pipelined "
                   "split-phase read (est. frequency " +
                   std::to_string(static_cast<long long>(T->Freq)) + ")",
               {{"base", T->Base->name()},
                {"field", T->FieldName.empty() ? "*" : T->FieldName},
                {"freq", std::to_string(static_cast<long long>(T->Freq))}});
      }
    }
  }

  /// Rewrites one assignment statement in place; may append coherence
  /// updates to \p Out after pushing the statement.
  void rewriteAssign(SeqStmt &Out, StmtPtr S) {
    auto &A = castStmt<AssignStmt>(*S);

    // Remote reads: substitute a live local copy if one exists.
    if (A.isRemoteRead()) {
      const auto &L = static_cast<const LoadRV &>(*A.R);
      // Captured before any rewrite: reassigning A.R destroys the LoadRV
      // that L refers into.
      const std::string BaseName = L.Base->name();
      const std::string Field = L.FieldName.empty() ? "*" : L.FieldName;
      if (Var *const *Block = LiveBlock.find(L.Base)) {
        A.R = std::make_unique<FieldReadRV>(*Block, L.OffsetWords,
                                            L.FieldName, L.ValueTy);
        Stats.add("select.rewritten_reads");
        remark("redundant", S->loc(),
               "remote read " + BaseName + "->" + Field +
                   " eliminated: reads the live blocked copy instead",
               {{"base", BaseName}, {"field", Field}, {"copy", "block"}});
      } else if (const ScalarBinding *SB =
                     LiveScalar.find({L.Base, L.OffsetWords})) {
        A.R = std::make_unique<OpndRV>(Operand::var(SB->Temp));
        Stats.add("select.rewritten_reads");
        remark("redundant", S->loc(),
               "remote read " + BaseName + "->" + Field +
                   " eliminated: reuses the live pipelined copy",
               {{"base", BaseName}, {"field", Field}, {"copy", "scalar"}});
      } else if (Opts.EnableRedundancyElim && !Opts.EnableReadMotion &&
                 A.L.Kind == LValueKind::Var && A.L.V != L.Base) {
        // Pure redundancy elimination: the loaded-into variable becomes the
        // cached copy until something clobbers it. Registered *after* the
        // invalidation step, or the defining write would kill it at birth.
        // Pointer-chase statements (p = p->next) are excluded: the loaded
        // value belongs to the *old* p.
        PendingBinding = {{L.Base, L.OffsetWords},
                          {A.L.V, /*TempIsProgramVar=*/true}};
      }
      Out.push(std::move(S));
      return;
    }

    // Remote writes.
    if (A.isRemoteWrite()) {
      const Var *Base = A.L.V;
      unsigned Off = A.L.OffsetWords;
      assert(A.R->kind() == RValueKind::Opnd &&
             "SIMPLE stores take operand rhs");
      Operand Val = static_cast<const OpndRV &>(*A.R).Val;

      if (auto It = LabelToGroup.find(S->label());
          It != LabelToGroup.end() && It->second->Block) {
        // Covered by a blocked write group: the store becomes a local
        // update of the block copy; the blkmov at the sink writes it back.
        WriteGroup *G = It->second;
        std::string FieldName = A.L.FieldName;
        SourceLoc StoreLoc = S->loc();
        A.L = LValue::makeFieldWrite(G->Block, Off, FieldName);
        Stats.add("select.rewritten_writes");
        Out.push(std::move(S));
        // A live pipelined copy of this location must track the new value
        // (the read may have been hoisted above this store).
        if (const ScalarBinding *SB = LiveScalar.find({Base, Off});
            SB && !SB->TempIsProgramVar) {
          auto Upd = std::make_unique<AssignStmt>(
              LValue::makeVar(SB->Temp), std::make_unique<OpndRV>(Val));
          Upd->setLoc(StoreLoc);
          Out.push(std::move(Upd));
          Stats.add("select.coherence_updates");
        }
        return;
      }

      // Keep the remote store, but refresh *every* live local copy of the
      // location — both the block copy and any pipelined scalar copy can
      // outlive each other, so both must track the new value.
      std::string FieldName = A.L.FieldName;
      SourceLoc StoreLoc = S->loc();
      Out.push(std::move(S));
      if (Var *const *Block = LiveBlock.find(Base)) {
        auto Upd = std::make_unique<AssignStmt>(
            LValue::makeFieldWrite(*Block, Off, FieldName),
            std::make_unique<OpndRV>(Val));
        Upd->setLoc(StoreLoc);
        Out.push(std::move(Upd));
        Stats.add("select.coherence_updates");
      }
      if (const ScalarBinding *SB = LiveScalar.find({Base, Off})) {
        if (SB->TempIsProgramVar &&
            (!Val.isVar() || Val.getVar() != SB->Temp)) {
          // The cached program variable no longer matches; drop it.
          LiveScalar.erase({Base, Off});
        } else if (!SB->TempIsProgramVar) {
          auto Upd = std::make_unique<AssignStmt>(
              LValue::makeVar(SB->Temp), std::make_unique<OpndRV>(Val));
          Upd->setLoc(StoreLoc);
          Out.push(std::move(Upd));
          Stats.add("select.coherence_updates");
        }
      }
      return;
    }

    Out.push(std::move(S));
  }

  void processSeq(SeqStmt &Seq) {
    if (Seq.Parallel) {
      // Each branch sees the pre-existing bindings; nothing escapes.
      BindingSnapshot Snap = snapshot();
      for (auto &Branch : Seq.Stmts) {
        restore(BindingSnapshot(Snap));
        processSeq(castStmt<SeqStmt>(*Branch));
      }
      restore(std::move(Snap));
      return;
    }

    std::vector<StmtPtr> Old = std::move(Seq.Stmts);
    Seq.Stmts.clear();
    std::vector<Stmt *> Elems;
    Elems.reserve(Old.size());
    for (auto &S : Old)
      Elems.push_back(S.get());

    for (size_t I = 0; I != Old.size(); ++I) {
      StmtPtr S = std::move(Old[I]);
      Stmt *Raw = S.get();

      // RemoteFill obligations whose first covered store lives here.
      if (auto It = FillAt.find(Raw); It != FillAt.end())
        for (WriteGroup *G : It->second)
          emitFill(Seq, G);

      // Earliest placement of remote reads.
      if (Opts.EnableReadMotion)
        placeReadsBefore(Seq, Elems, I);

      switch (Raw->kind()) {
      case StmtKind::Assign:
        rewriteAssign(Seq, std::move(S));
        break;
      case StmtKind::If: {
        auto &If = castStmt<IfStmt>(*Raw);
        BindingSnapshot Snap = snapshot();
        processSeq(*If.Then);
        restore(BindingSnapshot(Snap));
        processSeq(*If.Else);
        restore(std::move(Snap));
        Seq.push(std::move(S));
        break;
      }
      case StmtKind::Switch: {
        auto &Sw = castStmt<SwitchStmt>(*Raw);
        BindingSnapshot Snap = snapshot();
        for (auto &C : Sw.Cases) {
          restore(BindingSnapshot(Snap));
          processSeq(*C.Body);
        }
        restore(BindingSnapshot(Snap));
        processSeq(*Sw.Default);
        restore(std::move(Snap));
        Seq.push(std::move(S));
        break;
      }
      case StmtKind::While: {
        auto &W = castStmt<WhileStmt>(*Raw);
        BindingSnapshot Snap = snapshot();
        // Bindings must be valid on *every* iteration: filter by the
        // loop's own effects before entering the body.
        invalidateAfter(*Raw);
        processSeq(*W.Body);
        restore(std::move(Snap));
        Seq.push(std::move(S));
        break;
      }
      case StmtKind::Forall: {
        auto &Fa = castStmt<ForallStmt>(*Raw);
        BindingSnapshot Snap = snapshot();
        invalidateAfter(*Raw);
        processSeq(*Fa.Init);
        processSeq(*Fa.Step);
        processSeq(*Fa.Body);
        restore(std::move(Snap));
        Seq.push(std::move(S));
        break;
      }
      case StmtKind::Seq:
        processSeq(castStmt<SeqStmt>(*Raw));
        Seq.push(std::move(S));
        break;
      default:
        Seq.push(std::move(S));
        break;
      }

      // Anything this statement may have clobbered invalidates caches.
      invalidateAfter(*Raw);
      if (PendingBinding) {
        LiveScalar[PendingBinding->first] = PendingBinding->second;
        PendingBinding.reset();
      }

      // Blocked write-backs sunk to just after this element.
      if (auto It = SinkAt.find(Raw); It != SinkAt.end()) {
        for (WriteGroup *G : It->second) {
          ActiveGroups.erase(G);
          if (!G->Block)
            continue; // Fill never ran (group degenerated); stores stayed
                      // remote, nothing to write back.
          auto WB = std::make_unique<BlkMovStmt>(BlkMovDir::WriteFromLocal,
                                                 G->Base, G->Block,
                                                 G->StructWords);
          WB->setLoc(G->Loc);
          Seq.push(std::move(WB));
          Stats.add("select.blocked_writes");
        }
      }
    }
  }

  Module &M;
  Function &F;
  const CommOptions &Opts;
  Statistics &Stats;
  RemarkStream *Remarks = nullptr;
  const PointsToAnalysis &PT;
  const SideEffects &SE;
  const PlacementResult &PR;

  std::deque<WriteGroup> Groups;
  std::set<WriteGroup *> ActiveGroups;
  std::map<int, WriteGroup *> LabelToGroup;
  std::map<const Stmt *, std::vector<WriteGroup *>> FillAt;
  std::map<const Stmt *, std::vector<WriteGroup *>> SinkAt;
  FlatSet<RCEKey, RCEKeyHash> SelectedWriteKeys;
};

/// Records the placement tuple-set sizes — the quantity the paper's
/// Figures 5-7 reason about.
static void addPlacementStats(const PlacementResult &PR, Statistics &Stats) {
  for (const auto &[S, Tuples] : PR.BeforeReads)
    Stats.add("placement.read_tuples", Tuples ? Tuples->size() : 0);
  for (const auto &[S, Tuples] : PR.AfterWrites)
    Stats.add("placement.write_tuples", Tuples ? Tuples->size() : 0);
}

/// Runs \p Fn over [0, N) with the LowerThreads fan-out convention: 1 =
/// serial on the caller's thread, 0 = all hardware threads.
template <typename Fn>
static void forEachIndex(size_t N, unsigned Threads, Fn &&Body) {
  if (Threads == 0)
    Threads = ThreadPool::hardwareThreads();
  size_t Lanes = std::min<size_t>(Threads, N);
  if (Lanes <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  ThreadPool Pool(Lanes);
  Pool.parallelFor(N, Body);
}

} // namespace

CommAnalysis::Prepared::Prepared(Module &M) {
  M.invalidateExecCache(); // The IR is about to change; drop stale bytecode.
  for (const auto &F : M.functions())
    F->relabel();
}

CommAnalysis::CommAnalysis(Module &M, const CommOptions &Opts,
                           Statistics &Stats, bool EmitRemarks,
                           unsigned Threads)
    : Prep(M), PT(M), SE(M, PT) {
  const auto &Funcs = M.functions();
  Results.resize(Funcs.size());
  for (size_t I = 0; I != Funcs.size(); ++I)
    Index[Funcs[I].get()] = I;
  // Each worker writes only its own pre-allocated slot; PT/SE are const
  // after construction.
  forEachIndex(Funcs.size(), Threads, [&](size_t I) {
    FuncAnalysis &FA = Results[I];
    FA.PR = runPlacementAnalysis(*Funcs[I], SE, Opts.Placement,
                                 EmitRemarks ? &FA.Remarks : nullptr);
  });
  for (const FuncAnalysis &FA : Results)
    addPlacementStats(FA.PR, Stats);
}

const PlacementResult &CommAnalysis::placement(const Function &F) const {
  auto It = Index.find(&F);
  assert(It != Index.end() && "function not covered by this CommAnalysis");
  return Results[It->second].PR;
}

const RemarkStream &CommAnalysis::placementRemarks(const Function &F) const {
  auto It = Index.find(&F);
  assert(It != Index.end() && "function not covered by this CommAnalysis");
  return Results[It->second].Remarks;
}

bool earthcc::selectModuleCommunication(Module &M, CommAnalysis &CA,
                                        const CommOptions &Opts,
                                        Statistics &Stats,
                                        std::vector<std::string> &Errors,
                                        RemarkStream *Remarks,
                                        unsigned Threads) {
  const auto &Funcs = M.functions();

  // Per-function sinks: each rewrite touches only its own function (its
  // statements, temps and labels), so functions fan out freely; counters,
  // remarks and errors are buffered and merged in function order below,
  // making the observable output independent of the thread count.
  struct FuncOutput {
    Statistics Stats;
    RemarkStream Remarks;
    std::vector<std::string> Errors;
    bool OK = true;
  };
  std::vector<FuncOutput> Outputs(Funcs.size());

  forEachIndex(Funcs.size(), Threads, [&](size_t I) {
    Function &F = *Funcs[I];
    FuncOutput &Out = Outputs[I];
    Selector(M, F, Opts, Out.Stats, Remarks ? &Out.Remarks : nullptr,
             CA.pointsTo(), CA.sideEffects(), CA.placement(F))
        .run();
    Out.OK = verifyFunction(M, F, Out.Errors);
  });

  bool OK = true;
  for (size_t I = 0; I != Funcs.size(); ++I) {
    FuncOutput &Out = Outputs[I];
    if (Remarks) {
      // Splice [placement(f), selection(f)] per function — the same
      // interleaving the serial pipeline historically emitted.
      for (const Remark &R : CA.placementRemarks(*Funcs[I]).all())
        Remarks->emit(R);
      for (const Remark &R : Out.Remarks.all())
        Remarks->emit(R);
    }
    Stats.merge(Out.Stats);
    Errors.insert(Errors.end(), std::make_move_iterator(Out.Errors.begin()),
                  std::make_move_iterator(Out.Errors.end()));
    OK &= Out.OK;
  }
  return OK;
}

bool earthcc::optimizeFunctionCommunication(Module &M, Function &F,
                                            const CommOptions &Opts,
                                            Statistics &Stats,
                                            std::vector<std::string> &Errors,
                                            RemarkStream *Remarks) {
  M.invalidateExecCache(); // The IR is about to change; drop stale bytecode.
  F.relabel();
  PointsToAnalysis PT(M);
  SideEffects SE(M, PT);
  PlacementResult PR = runPlacementAnalysis(F, SE, Opts.Placement, Remarks);
  addPlacementStats(PR, Stats);
  Selector(M, F, Opts, Stats, Remarks, PT, SE, PR).run();
  return verifyFunction(M, F, Errors);
}

bool earthcc::optimizeModuleCommunication(Module &M, const CommOptions &Opts,
                                          Statistics &Stats,
                                          std::vector<std::string> &Errors,
                                          RemarkStream *Remarks) {
  CommAnalysis CA(M, Opts, Stats, /*EmitRemarks=*/Remarks != nullptr);
  return selectModuleCommunication(M, CA, Opts, Stats, Errors, Remarks);
}
