//===- CommSelection.h - Communication selection transform ------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's communication-selection transformation (Section 4.2).
/// Driven by possible-placement analysis, it:
///
///  - places remote reads at their *earliest* safe point (top-down walk with
///    a hash table of already-issued operations, which doubles as redundant
///    communication elimination);
///  - chooses between *pipelined* scalar split-phase reads (commN temps) and
///    *blocked* transfers (one blkmov into a local struct copy, bcommN) —
///    blocked when at least BlockThresholdWords distinct words of one
///    pointer move together (the paper's measured crossover is 3);
///  - sinks remote writes to their *latest* safe point, but only when this
///    enables a blocked write-back; the RemoteFill obligation (every word of
///    the struct must hold a valid value before the block is written) is
///    satisfied either by a previously placed blocked read of the same
///    pointer or by inserting a fill blkmov before the first covered store;
///  - keeps local copies coherent across direct writes (a store p->f = v
///    also refreshes the live commN/bcommN copy), so later covered reads can
///    still use the local copy.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_TRANSFORM_COMMSELECTION_H
#define EARTHCC_TRANSFORM_COMMSELECTION_H

#include "analysis/Placement.h"
#include "support/Statistics.h"

namespace earthcc {

/// Tunable policy for communication selection. Defaults reproduce the
/// paper's configuration; the flags feed the ablation benchmarks.
struct CommOptions {
  bool EnableReadMotion = true;      ///< Hoist reads to earliest placement.
  bool EnableBlocking = true;        ///< Allow blkmov selection.
  bool EnableRedundancyElim = true;  ///< Reuse live comm temps.
  bool EnableWriteBlocking = true;   ///< Sink + block remote writes.
  bool SpeculativeReads = false;     ///< Skip the deref-on-all-paths check.
  unsigned BlockThresholdWords = 3;  ///< Paper: blkmov wins at >= 3 words.
  unsigned MaxBlockOverfetch = 4;    ///< Pipeline if struct > this * fields.
  PlacementOptions Placement;

  /// The cost-model decision between pipelining and blocking a group of
  /// \p Fields accesses to a struct of \p StructWords words.
  bool preferBlock(unsigned Fields, unsigned StructWords) const {
    if (!EnableBlocking || Fields < BlockThresholdWords)
      return false;
    // Large structs with few needed fields: spurious words shift the
    // trade-off back to pipelined scalars (paper, Section 4.2).
    return StructWords <= MaxBlockOverfetch * Fields;
  }
};

/// Runs communication selection on one function. Requires labels to be
/// fresh (call F.relabel() first); relabels and re-verifies afterwards.
/// Returns false (with \p Errors populated) if the transformed function
/// fails verification — a bug, surfaced loudly. When \p Remarks is
/// non-null, the placement analysis and every selection decision (blocked
/// read, pipelined read, redundant read eliminated, RemoteFill
/// inserted/reused/elided, write group sunk) emit a structured Remark with
/// the cost-model numbers behind the decision.
bool optimizeFunctionCommunication(Module &M, Function &F,
                                   const CommOptions &Opts, Statistics &Stats,
                                   std::vector<std::string> &Errors,
                                   RemarkStream *Remarks = nullptr);

/// Runs communication selection on every function of \p M.
bool optimizeModuleCommunication(Module &M, const CommOptions &Opts,
                                 Statistics &Stats,
                                 std::vector<std::string> &Errors,
                                 RemarkStream *Remarks = nullptr);

} // namespace earthcc

#endif // EARTHCC_TRANSFORM_COMMSELECTION_H
