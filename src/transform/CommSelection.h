//===- CommSelection.h - Communication selection transform ------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's communication-selection transformation (Section 4.2).
/// Driven by possible-placement analysis, it:
///
///  - places remote reads at their *earliest* safe point (top-down walk with
///    a hash table of already-issued operations, which doubles as redundant
///    communication elimination);
///  - chooses between *pipelined* scalar split-phase reads (commN temps) and
///    *blocked* transfers (one blkmov into a local struct copy, bcommN) —
///    blocked when at least BlockThresholdWords distinct words of one
///    pointer move together (the paper's measured crossover is 3);
///  - sinks remote writes to their *latest* safe point, but only when this
///    enables a blocked write-back; the RemoteFill obligation (every word of
///    the struct must hold a valid value before the block is written) is
///    satisfied either by a previously placed blocked read of the same
///    pointer or by inserting a fill blkmov before the first covered store;
///  - keeps local copies coherent across direct writes (a store p->f = v
///    also refreshes the live commN/bcommN copy), so later covered reads can
///    still use the local copy.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_TRANSFORM_COMMSELECTION_H
#define EARTHCC_TRANSFORM_COMMSELECTION_H

#include "analysis/Placement.h"
#include "support/Remark.h"
#include "support/Statistics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace earthcc {

/// Tunable policy for communication selection. Defaults reproduce the
/// paper's configuration; the flags feed the ablation benchmarks.
struct CommOptions {
  bool EnableReadMotion = true;      ///< Hoist reads to earliest placement.
  bool EnableBlocking = true;        ///< Allow blkmov selection.
  bool EnableRedundancyElim = true;  ///< Reuse live comm temps.
  bool EnableWriteBlocking = true;   ///< Sink + block remote writes.
  bool SpeculativeReads = false;     ///< Skip the deref-on-all-paths check.
  unsigned BlockThresholdWords = 3;  ///< Paper: blkmov wins at >= 3 words.
  unsigned MaxBlockOverfetch = 4;    ///< Pipeline if struct > this * fields.
  PlacementOptions Placement;

  /// The cost-model decision between pipelining and blocking a group of
  /// \p Fields accesses to a struct of \p StructWords words.
  bool preferBlock(unsigned Fields, unsigned StructWords) const {
    if (!EnableBlocking || Fields < BlockThresholdWords)
      return false;
    // Large structs with few needed fields: spurious words shift the
    // trade-off back to pipelined scalars (paper, Section 4.2).
    return StructWords <= MaxBlockOverfetch * Fields;
  }
};

/// The analysis phase of communication selection, split out so the driver
/// can run (and time) it as its own "placement" pass stage.
///
/// Construction snapshots the module *before* any function is transformed:
/// it drops stale bytecode, relabels every function, builds one module-wide
/// points-to analysis and side-effect summary, and runs possible-placement
/// analysis per function. Because every per-function placement is computed
/// against the same untransformed module, the results are independent of
/// function order and of how many \p Threads computed them — the property
/// the parallel selection phase relies on for bit-identical output.
///
/// Placement remarks are buffered per function (in deterministic program
/// order) and spliced into the output stream by selectModuleCommunication,
/// which keeps the emitted remark stream byte-identical to the historical
/// serial interleaving [placement(f), selection(f)] per function.
class CommAnalysis {
public:
  /// Analyzes \p M. \p Stats receives the placement.* counters. Placement
  /// remarks are generated only when \p EmitRemarks is set. \p Threads
  /// parallelizes the per-function placement analyses (1 = serial on the
  /// caller's thread, 0 = all hardware threads).
  CommAnalysis(Module &M, const CommOptions &Opts, Statistics &Stats,
               bool EmitRemarks = true, unsigned Threads = 1);

  CommAnalysis(const CommAnalysis &) = delete;
  CommAnalysis &operator=(const CommAnalysis &) = delete;

  const PointsToAnalysis &pointsTo() const { return PT; }
  const SideEffects &sideEffects() const { return SE; }
  const PlacementResult &placement(const Function &F) const;
  /// The buffered placement remarks for \p F, in emission order.
  const RemarkStream &placementRemarks(const Function &F) const;

private:
  /// Pre-analysis module preparation, ordered before the analyses below.
  struct Prepared {
    explicit Prepared(Module &M);
  };

  struct FuncAnalysis {
    PlacementResult PR;
    RemarkStream Remarks;
  };

  Prepared Prep;
  PointsToAnalysis PT;
  SideEffects SE;
  std::vector<FuncAnalysis> Results; ///< Parallel to M.functions().
  std::unordered_map<const Function *, size_t> Index;
};

/// The transform phase: runs the selection rewrite over every function of
/// \p M using the snapshots in \p CA, optionally fanning the per-function
/// rewrites out over \p Threads workers (1 = serial, 0 = all hardware).
/// Output — module, counters, remark stream — is bit-identical at every
/// thread count: functions are rewritten independently (each touches only
/// its own statements and temps) and per-function counters/remarks/errors
/// are buffered and merged in function order afterwards. Returns false
/// (with \p Errors populated) if any transformed function fails
/// verification — a bug, surfaced loudly.
bool selectModuleCommunication(Module &M, CommAnalysis &CA,
                               const CommOptions &Opts, Statistics &Stats,
                               std::vector<std::string> &Errors,
                               RemarkStream *Remarks = nullptr,
                               unsigned Threads = 1);

/// Runs communication selection on one function. Requires labels to be
/// fresh (call F.relabel() first); relabels and re-verifies afterwards.
/// Returns false (with \p Errors populated) if the transformed function
/// fails verification — a bug, surfaced loudly. When \p Remarks is
/// non-null, the placement analysis and every selection decision (blocked
/// read, pipelined read, redundant read eliminated, RemoteFill
/// inserted/reused/elided, write group sunk) emit a structured Remark with
/// the cost-model numbers behind the decision.
bool optimizeFunctionCommunication(Module &M, Function &F,
                                   const CommOptions &Opts, Statistics &Stats,
                                   std::vector<std::string> &Errors,
                                   RemarkStream *Remarks = nullptr);

/// Runs communication selection on every function of \p M: one CommAnalysis
/// snapshot followed by selectModuleCommunication, both serial.
bool optimizeModuleCommunication(Module &M, const CommOptions &Opts,
                                 Statistics &Stats,
                                 std::vector<std::string> &Errors,
                                 RemarkStream *Remarks = nullptr);

} // namespace earthcc

#endif // EARTHCC_TRANSFORM_COMMSELECTION_H
