//===- Simplify.h - Lower EARTH-C ASTs to SIMPLE form -----------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The McCAT "Simplify" phase: semantic analysis plus lowering of the parsed
/// EARTH-C program into the SIMPLE IR. The lowering guarantees the SIMPLE
/// invariants the paper relies on:
///   - three-address statements with at most one memory indirection each
///     (so at most one remote read OR one remote write per basic statement);
///   - structured control flow only;
///   - fresh compiler temporaries named temp1, temp2, ... ;
///   - every indirect access is marked Remote unless made through a pointer
///     declared with the `local` qualifier.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_FRONTEND_SIMPLIFY_H
#define EARTHCC_FRONTEND_SIMPLIFY_H

#include "frontend/AST.h"
#include "simple/Function.h"
#include "support/Diagnostics.h"

#include <memory>

namespace earthcc {

/// Lowers \p Unit into a fresh SIMPLE Module. Records problems in \p Diags;
/// returns a (possibly incomplete) module — callers must check
/// Diags.hasErrors() before using it.
std::unique_ptr<Module> lowerToSimple(const ast::TranslationUnit &Unit,
                                      DiagnosticsEngine &Diags);

/// Convenience: lex + parse + lower in one step.
std::unique_ptr<Module> compileToSimple(const std::string &Source,
                                        DiagnosticsEngine &Diags);

} // namespace earthcc

#endif // EARTHCC_FRONTEND_SIMPLIFY_H
