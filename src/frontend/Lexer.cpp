//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>

using namespace earthcc;

const char *earthcc::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::DoubleLiteral:
    return "double literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwLocal:
    return "'local'";
  case TokKind::KwShared:
    return "'shared'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwForall:
    return "'forall'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwCase:
    return "'case'";
  case TokKind::KwDefault:
    return "'default'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwSizeof:
    return "'sizeof'";
  case TokKind::KwNull:
    return "'NULL'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBraceCaret:
    return "'{^'";
  case TokKind::CaretRBrace:
    return "'^}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Eq:
    return "'='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::At:
    return "'@'";
  case TokKind::Colon:
    return "':'";
  }
  return "<bad token>";
}

Lexer::Lexer(std::string Source, DiagnosticsEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsDouble = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsDouble = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // Not an exponent after all.
    }
  }
  std::string Text = Source.substr(Start, Pos - Start);
  Token T;
  T.Loc = Loc;
  if (IsDouble) {
    T.Kind = TokKind::DoubleLiteral;
    T.DoubleValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = TokKind::IntLiteral;
    errno = 0;
    char *End = nullptr;
    T.IntValue = std::strtoll(Text.c_str(), &End, 10);
    // Without this check strtoll silently saturates to LLONG_MAX, turning
    // an out-of-range literal into a wrong-but-running program.
    if (errno == ERANGE || End != Text.c_str() + Text.size())
      Diags.error(Loc, "integer literal '" + Text + "' is out of range");
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  static const std::map<std::string, TokKind> Keywords = {
      {"int", TokKind::KwInt},       {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},     {"struct", TokKind::KwStruct},
      {"local", TokKind::KwLocal},   {"shared", TokKind::KwShared},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},   {"do", TokKind::KwDo},
      {"for", TokKind::KwFor},       {"forall", TokKind::KwForall},
      {"switch", TokKind::KwSwitch}, {"case", TokKind::KwCase},
      {"default", TokKind::KwDefault}, {"break", TokKind::KwBreak},
      {"return", TokKind::KwReturn}, {"sizeof", TokKind::KwSizeof},
      {"NULL", TokKind::KwNull}};

  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);
  Token T;
  T.Loc = Loc;
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokKind::Identifier;
    T.Text = std::move(Text);
  }
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = here();
  char C = peek();

  if (C == '\0')
    return makeToken(TokKind::Eof, Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);

  advance();
  switch (C) {
  case '{':
    return makeToken(match('^') ? TokKind::LBraceCaret : TokKind::LBrace, Loc);
  case '^':
    if (match('}'))
      return makeToken(TokKind::CaretRBrace, Loc);
    Diags.error(Loc, "unexpected '^' (did you mean '^}' ?)");
    return next();
  case '}':
    return makeToken(TokKind::RBrace, Loc);
  case '(':
    return makeToken(TokKind::LParen, Loc);
  case ')':
    return makeToken(TokKind::RParen, Loc);
  case ';':
    return makeToken(TokKind::Semi, Loc);
  case ',':
    return makeToken(TokKind::Comma, Loc);
  case '.':
    return makeToken(TokKind::Dot, Loc);
  case '*':
    return makeToken(TokKind::Star, Loc);
  case '&':
    return makeToken(match('&') ? TokKind::AmpAmp : TokKind::Amp, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokKind::PipePipe, Loc);
    Diags.error(Loc, "bitwise '|' is not supported in EARTH-C");
    return next();
  case '+':
    return makeToken(TokKind::Plus, Loc);
  case '-':
    return makeToken(match('>') ? TokKind::Arrow : TokKind::Minus, Loc);
  case '/':
    return makeToken(TokKind::Slash, Loc);
  case '%':
    return makeToken(TokKind::Percent, Loc);
  case '<':
    return makeToken(match('=') ? TokKind::LessEq : TokKind::Less, Loc);
  case '>':
    return makeToken(match('=') ? TokKind::GreaterEq : TokKind::Greater, Loc);
  case '=':
    return makeToken(match('=') ? TokKind::EqEq : TokKind::Eq, Loc);
  case '!':
    return makeToken(match('=') ? TokKind::NotEq : TokKind::Bang, Loc);
  case '@':
    return makeToken(TokKind::At, Loc);
  case ':':
    return makeToken(TokKind::Colon, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
