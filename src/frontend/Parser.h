//===- Parser.h - Recursive-descent parser for EARTH-C ----------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_FRONTEND_PARSER_H
#define EARTHCC_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <set>
#include <vector>

namespace earthcc {

/// Parses a token stream into an ast::TranslationUnit.
///
/// The parser tracks declared struct tags so that a bare identifier can be
/// used as a type name once its struct is declared (a lightweight stand-in
/// for C typedefs, matching how the Olden sources read).
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticsEngine &Diags);

  /// Parses the whole unit. On errors, diagnostics are recorded and a
  /// best-effort AST is returned; callers must check Diags.hasErrors().
  ast::TranslationUnit parseUnit();

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token consume() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool check(TokKind K) const { return cur().is(K); }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void syncToStmtBoundary();

  // Type parsing.
  bool startsTypeSpec() const;
  ast::TypeSpec parseTypeSpec();

  // Declarations.
  void parseTopLevel(ast::TranslationUnit &Unit);
  ast::StructDecl parseStructDecl();
  void parseFunctionOrGlobal(ast::TranslationUnit &Unit);

  // Statements.
  ast::StmtPtr parseStmt();
  ast::StmtPtr parseBlock(bool Parallel);
  ast::StmtPtr parseIf();
  ast::StmtPtr parseWhile();
  ast::StmtPtr parseDoWhile();
  ast::StmtPtr parseForOrForall(bool Parallel);
  ast::StmtPtr parseSwitch();
  ast::StmtPtr parseReturn();
  ast::StmtPtr parseDeclStmt();
  ast::StmtPtr parseExprOrAssign();
  ast::StmtPtr parseSimpleStmtNoSemi(); ///< For for-loop init/step clauses.

  // Expressions.
  ast::ExprPtr parseExpr();
  ast::ExprPtr parseLOr();
  ast::ExprPtr parseLAnd();
  ast::ExprPtr parseEquality();
  ast::ExprPtr parseRelational();
  ast::ExprPtr parseAdditive();
  ast::ExprPtr parseMultiplicative();
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePostfix();
  ast::ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  std::set<std::string> StructNames;
};

} // namespace earthcc

#endif // EARTHCC_FRONTEND_PARSER_H
