//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace earthcc;
using namespace earthcc::ast;

Parser::Parser(std::vector<Token> Tokens, DiagnosticsEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokKind::Eof) &&
         "token stream must end with Eof");
}

bool Parser::accept(TokKind K) {
  if (!check(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokKindName(K) + " " +
                             Context + ", found " + tokKindName(cur().Kind));
  return false;
}

void Parser::syncToStmtBoundary() {
  while (!check(TokKind::Eof) && !check(TokKind::Semi) &&
         !check(TokKind::RBrace))
    consume();
  accept(TokKind::Semi);
}

//===----------------------------------------------------------------------===//
// Types.
//===----------------------------------------------------------------------===//

bool Parser::startsTypeSpec() const {
  switch (cur().Kind) {
  case TokKind::KwInt:
  case TokKind::KwDouble:
  case TokKind::KwVoid:
  case TokKind::KwStruct:
  case TokKind::KwShared:
    return true;
  case TokKind::Identifier:
    return StructNames.count(cur().Text) != 0;
  default:
    return false;
  }
}

TypeSpec Parser::parseTypeSpec() {
  TypeSpec TS;
  TS.Loc = cur().Loc;
  if (accept(TokKind::KwShared))
    TS.SharedQual = true;

  switch (cur().Kind) {
  case TokKind::KwInt:
    consume();
    TS.BaseKind = TypeSpec::Base::Int;
    break;
  case TokKind::KwDouble:
    consume();
    TS.BaseKind = TypeSpec::Base::Double;
    break;
  case TokKind::KwVoid:
    consume();
    TS.BaseKind = TypeSpec::Base::Void;
    break;
  case TokKind::KwStruct: {
    consume();
    TS.BaseKind = TypeSpec::Base::Struct;
    if (check(TokKind::Identifier))
      TS.StructName = consume().Text;
    else
      Diags.error(cur().Loc, "expected struct name after 'struct'");
    break;
  }
  case TokKind::Identifier:
    TS.BaseKind = TypeSpec::Base::Struct;
    TS.StructName = consume().Text;
    break;
  default:
    Diags.error(cur().Loc, "expected a type");
    break;
  }

  // Qualifier/star soup: `node local *p`, `node *local p`, `node **p`.
  for (;;) {
    if (accept(TokKind::KwLocal)) {
      TS.LocalQual = true;
      continue;
    }
    if (accept(TokKind::Star)) {
      ++TS.PointerDepth;
      continue;
    }
    break;
  }
  return TS;
}

//===----------------------------------------------------------------------===//
// Top-level declarations.
//===----------------------------------------------------------------------===//

TranslationUnit Parser::parseUnit() {
  TranslationUnit Unit;
  while (!check(TokKind::Eof)) {
    size_t Before = Pos;
    parseTopLevel(Unit);
    if (Pos == Before) {
      // Ensure forward progress even on malformed input.
      Diags.error(cur().Loc, "unexpected token at top level: " +
                                 std::string(tokKindName(cur().Kind)));
      consume();
    }
  }
  return Unit;
}

void Parser::parseTopLevel(TranslationUnit &Unit) {
  if (check(TokKind::KwStruct) && peek().is(TokKind::Identifier) &&
      peek(2).is(TokKind::LBrace)) {
    Unit.Structs.push_back(parseStructDecl());
    return;
  }
  if (startsTypeSpec()) {
    parseFunctionOrGlobal(Unit);
    return;
  }
  Diags.error(cur().Loc, "expected a declaration");
  consume();
}

StructDecl Parser::parseStructDecl() {
  StructDecl SD;
  SD.Loc = cur().Loc;
  expect(TokKind::KwStruct, "at struct declaration");
  SD.Name = consume().Text;
  StructNames.insert(SD.Name);
  expect(TokKind::LBrace, "after struct name");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    FieldDecl FD;
    FD.Loc = cur().Loc;
    FD.Type = parseTypeSpec();
    if (check(TokKind::Identifier))
      FD.Name = consume().Text;
    else
      Diags.error(cur().Loc, "expected field name");
    expect(TokKind::Semi, "after struct field");
    SD.Fields.push_back(std::move(FD));
  }
  expect(TokKind::RBrace, "at end of struct");
  expect(TokKind::Semi, "after struct declaration");
  return SD;
}

void Parser::parseFunctionOrGlobal(TranslationUnit &Unit) {
  TypeSpec TS = parseTypeSpec();
  if (!check(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected declarator name");
    syncToStmtBoundary();
    return;
  }
  std::string Name = consume().Text;

  if (check(TokKind::LParen)) {
    // Function definition or prototype.
    FuncDecl FD;
    FD.Loc = TS.Loc;
    FD.ReturnType = TS;
    FD.Name = std::move(Name);
    consume(); // '('
    if (!check(TokKind::RParen)) {
      do {
        if (accept(TokKind::KwVoid))
          break; // `f(void)`
        ParamDecl PD;
        PD.Loc = cur().Loc;
        PD.Type = parseTypeSpec();
        if (check(TokKind::Identifier))
          PD.Name = consume().Text;
        else
          Diags.error(cur().Loc, "expected parameter name");
        FD.Params.push_back(std::move(PD));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after parameter list");
    accept(TokKind::Semi); // Tolerate `int f(...);{...}`-style stray semi.
    if (check(TokKind::LBrace))
      FD.Body = parseBlock(/*Parallel=*/false);
    Unit.Functions.push_back(std::move(FD));
    return;
  }

  // Global variable.
  GlobalDecl GD;
  GD.Decl.Type = TS;
  GD.Decl.Name = std::move(Name);
  GD.Decl.Loc = TS.Loc;
  if (accept(TokKind::Eq))
    GD.Decl.Init = parseExpr();
  expect(TokKind::Semi, "after global declaration");
  Unit.Globals.push_back(std::move(GD));
}

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock(bool Parallel) {
  auto Block = std::make_unique<Stmt>(
      Parallel ? Stmt::Kind::ParBlock : Stmt::Kind::Block, cur().Loc);
  TokKind Open = Parallel ? TokKind::LBraceCaret : TokKind::LBrace;
  TokKind Close = Parallel ? TokKind::CaretRBrace : TokKind::RBrace;
  expect(Open, "at block start");
  while (!check(Close) && !check(TokKind::Eof)) {
    size_t Before = Pos;
    if (StmtPtr S = parseStmt())
      Block->Body.push_back(std::move(S));
    if (Pos == Before)
      consume();
  }
  expect(Close, "at block end");
  return Block;
}

StmtPtr Parser::parseStmt() {
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseBlock(/*Parallel=*/false);
  case TokKind::LBraceCaret:
    return parseBlock(/*Parallel=*/true);
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwDo:
    return parseDoWhile();
  case TokKind::KwFor:
    return parseForOrForall(/*Parallel=*/false);
  case TokKind::KwForall:
    return parseForOrForall(/*Parallel=*/true);
  case TokKind::KwSwitch:
    return parseSwitch();
  case TokKind::KwReturn:
    return parseReturn();
  case TokKind::Semi:
    consume();
    return std::make_unique<Stmt>(Stmt::Kind::Block, cur().Loc);
  default:
    if (startsTypeSpec())
      return parseDeclStmt();
    return parseExprOrAssign();
  }
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::If, cur().Loc);
  consume(); // if
  expect(TokKind::LParen, "after 'if'");
  S->Cond = parseExpr();
  expect(TokKind::RParen, "after if condition");
  S->Then = parseStmt();
  if (accept(TokKind::KwElse))
    S->Else = parseStmt();
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::While, cur().Loc);
  consume(); // while
  expect(TokKind::LParen, "after 'while'");
  S->Cond = parseExpr();
  expect(TokKind::RParen, "after while condition");
  S->LoopBody = parseStmt();
  return S;
}

StmtPtr Parser::parseDoWhile() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::DoWhile, cur().Loc);
  consume(); // do
  S->LoopBody = parseStmt();
  expect(TokKind::KwWhile, "after do-while body");
  expect(TokKind::LParen, "after 'while'");
  S->Cond = parseExpr();
  expect(TokKind::RParen, "after do-while condition");
  expect(TokKind::Semi, "after do-while");
  return S;
}

StmtPtr Parser::parseSimpleStmtNoSemi() {
  if (check(TokKind::Semi) || check(TokKind::RParen))
    return nullptr; // Empty clause.
  ExprPtr Lhs = parseExpr();
  if (accept(TokKind::Eq)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Assign, Lhs->Loc);
    S->Lhs = std::move(Lhs);
    S->Rhs = parseExpr();
    return S;
  }
  auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt, Lhs->Loc);
  S->Rhs = std::move(Lhs);
  return S;
}

StmtPtr Parser::parseForOrForall(bool Parallel) {
  auto S = std::make_unique<Stmt>(
      Parallel ? Stmt::Kind::Forall : Stmt::Kind::For, cur().Loc);
  consume(); // for / forall
  expect(TokKind::LParen, "after loop keyword");
  S->Init = parseSimpleStmtNoSemi();
  expect(TokKind::Semi, "after loop init");
  if (!check(TokKind::Semi))
    S->Cond = parseExpr();
  expect(TokKind::Semi, "after loop condition");
  S->Step = parseSimpleStmtNoSemi();
  expect(TokKind::RParen, "after loop step");
  S->LoopBody = parseStmt();
  return S;
}

StmtPtr Parser::parseSwitch() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::Switch, cur().Loc);
  consume(); // switch
  expect(TokKind::LParen, "after 'switch'");
  S->Cond = parseExpr();
  expect(TokKind::RParen, "after switch operand");
  expect(TokKind::LBrace, "at switch body");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    Stmt::SwitchCase Case;
    if (accept(TokKind::KwCase)) {
      bool Negative = accept(TokKind::Minus);
      if (check(TokKind::IntLiteral)) {
        Case.Value = consume().IntValue;
        if (Negative)
          Case.Value = -Case.Value;
      } else {
        Diags.error(cur().Loc, "expected integer case label");
      }
    } else if (accept(TokKind::KwDefault)) {
      Case.IsDefault = true;
    } else {
      Diags.error(cur().Loc, "expected 'case' or 'default' in switch");
      syncToStmtBoundary();
      continue;
    }
    expect(TokKind::Colon, "after case label");
    while (!check(TokKind::KwCase) && !check(TokKind::KwDefault) &&
           !check(TokKind::RBrace) && !check(TokKind::Eof)) {
      if (accept(TokKind::KwBreak)) {
        expect(TokKind::Semi, "after 'break'");
        break;
      }
      size_t Before = Pos;
      if (StmtPtr Inner = parseStmt())
        Case.Body.push_back(std::move(Inner));
      if (Pos == Before)
        consume();
    }
    S->Cases.push_back(std::move(Case));
  }
  expect(TokKind::RBrace, "at end of switch");
  return S;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::Return, cur().Loc);
  consume(); // return
  if (!check(TokKind::Semi))
    S->Lhs = parseExpr();
  expect(TokKind::Semi, "after return");
  return S;
}

StmtPtr Parser::parseDeclStmt() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::Decl, cur().Loc);
  TypeSpec TS = parseTypeSpec();
  do {
    VarDecl VD;
    VD.Type = TS;
    VD.Loc = cur().Loc;
    // Per-declarator stars: `node *p, *q;`
    while (accept(TokKind::Star))
      ++VD.Type.PointerDepth;
    while (accept(TokKind::KwLocal)) {
      VD.Type.LocalQual = true;
      while (accept(TokKind::Star))
        ++VD.Type.PointerDepth;
    }
    if (check(TokKind::Identifier))
      VD.Name = consume().Text;
    else
      Diags.error(cur().Loc, "expected variable name");
    if (accept(TokKind::Eq))
      VD.Init = parseExpr();
    S->Decls.push_back(std::move(VD));
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "after declaration");
  return S;
}

StmtPtr Parser::parseExprOrAssign() {
  ExprPtr Lhs = parseExpr();
  if (!Lhs) {
    syncToStmtBoundary();
    return nullptr;
  }
  if (accept(TokKind::Eq)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Assign, Lhs->Loc);
    S->Lhs = std::move(Lhs);
    S->Rhs = parseExpr();
    expect(TokKind::Semi, "after assignment");
    return S;
  }
  auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt, Lhs->Loc);
  S->Rhs = std::move(Lhs);
  expect(TokKind::Semi, "after expression statement");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseLOr(); }

ExprPtr Parser::parseLOr() {
  ExprPtr E = parseLAnd();
  while (check(TokKind::PipePipe)) {
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Expr::BinOp::LOr;
    B->Lhs = std::move(E);
    B->Rhs = parseLAnd();
    E = std::move(B);
  }
  return E;
}

ExprPtr Parser::parseLAnd() {
  ExprPtr E = parseEquality();
  while (check(TokKind::AmpAmp)) {
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Expr::BinOp::LAnd;
    B->Lhs = std::move(E);
    B->Rhs = parseEquality();
    E = std::move(B);
  }
  return E;
}

ExprPtr Parser::parseEquality() {
  ExprPtr E = parseRelational();
  while (check(TokKind::EqEq) || check(TokKind::NotEq)) {
    Expr::BinOp Op =
        cur().is(TokKind::EqEq) ? Expr::BinOp::Eq : Expr::BinOp::Ne;
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Op;
    B->Lhs = std::move(E);
    B->Rhs = parseRelational();
    E = std::move(B);
  }
  return E;
}

ExprPtr Parser::parseRelational() {
  ExprPtr E = parseAdditive();
  for (;;) {
    Expr::BinOp Op;
    switch (cur().Kind) {
    case TokKind::Less:
      Op = Expr::BinOp::Lt;
      break;
    case TokKind::LessEq:
      Op = Expr::BinOp::Le;
      break;
    case TokKind::Greater:
      Op = Expr::BinOp::Gt;
      break;
    case TokKind::GreaterEq:
      Op = Expr::BinOp::Ge;
      break;
    default:
      return E;
    }
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Op;
    B->Lhs = std::move(E);
    B->Rhs = parseAdditive();
    E = std::move(B);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr E = parseMultiplicative();
  while (check(TokKind::Plus) || check(TokKind::Minus)) {
    Expr::BinOp Op =
        cur().is(TokKind::Plus) ? Expr::BinOp::Add : Expr::BinOp::Sub;
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Op;
    B->Lhs = std::move(E);
    B->Rhs = parseMultiplicative();
    E = std::move(B);
  }
  return E;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr E = parseUnary();
  for (;;) {
    Expr::BinOp Op;
    switch (cur().Kind) {
    case TokKind::Star:
      Op = Expr::BinOp::Mul;
      break;
    case TokKind::Slash:
      Op = Expr::BinOp::Div;
      break;
    case TokKind::Percent:
      Op = Expr::BinOp::Rem;
      break;
    default:
      return E;
    }
    SourceLoc Loc = consume().Loc;
    auto B = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    B->BOp = Op;
    B->Lhs = std::move(E);
    B->Rhs = parseUnary();
    E = std::move(B);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::Minus)) {
    auto U = std::make_unique<Expr>(Expr::Kind::Unary, Loc);
    U->UOp = Expr::UnOp::Neg;
    U->Lhs = parseUnary();
    return U;
  }
  if (accept(TokKind::Bang)) {
    auto U = std::make_unique<Expr>(Expr::Kind::Unary, Loc);
    U->UOp = Expr::UnOp::Not;
    U->Lhs = parseUnary();
    return U;
  }
  if (accept(TokKind::Star)) {
    auto U = std::make_unique<Expr>(Expr::Kind::Deref, Loc);
    U->Lhs = parseUnary();
    return U;
  }
  if (accept(TokKind::Amp)) {
    auto U = std::make_unique<Expr>(Expr::Kind::AddrOf, Loc);
    U->Lhs = parseUnary();
    return U;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokKind::Arrow) || check(TokKind::Dot)) {
      bool IsArrow = cur().is(TokKind::Arrow);
      SourceLoc Loc = consume().Loc;
      auto M = std::make_unique<Expr>(Expr::Kind::Member, Loc);
      M->IsArrow = IsArrow;
      if (check(TokKind::Identifier))
        M->Name = consume().Text;
      else
        Diags.error(cur().Loc, "expected field name after member operator");
      M->Lhs = std::move(E);
      E = std::move(M);
      continue;
    }
    if (check(TokKind::LParen)) {
      // Calls are only valid on bare identifiers in this dialect.
      if (!E || E->K != Expr::Kind::Ident) {
        Diags.error(cur().Loc, "called object is not a function name");
        consume();
        continue;
      }
      SourceLoc Loc = consume().Loc;
      auto C = std::make_unique<Expr>(Expr::Kind::Call, Loc);
      C->Name = E->Name;
      if (!check(TokKind::RParen)) {
        do {
          C->Args.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      if (accept(TokKind::At)) {
        if (check(TokKind::Identifier) && cur().Text == "OWNER_OF") {
          consume();
          expect(TokKind::LParen, "after OWNER_OF");
          C->Place = Expr::PlaceKind::OwnerOf;
          C->PlaceArg = parseExpr();
          expect(TokKind::RParen, "after OWNER_OF argument");
        } else if (check(TokKind::Identifier) && cur().Text == "node") {
          consume();
          expect(TokKind::LParen, "after @node");
          C->Place = Expr::PlaceKind::AtNode;
          C->PlaceArg = parseExpr();
          expect(TokKind::RParen, "after @node argument");
        } else if (check(TokKind::Identifier) && cur().Text == "HOME") {
          consume();
          C->Place = Expr::PlaceKind::Home;
        } else {
          Diags.error(cur().Loc,
                      "expected OWNER_OF(...), node(...) or HOME after '@'");
        }
      }
      E = std::move(C);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLiteral: {
    auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Loc);
    E->IntValue = consume().IntValue;
    return E;
  }
  case TokKind::DoubleLiteral: {
    auto E = std::make_unique<Expr>(Expr::Kind::DoubleLit, Loc);
    E->DoubleValue = consume().DoubleValue;
    return E;
  }
  case TokKind::KwNull: {
    consume();
    auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Loc);
    E->IntValue = 0;
    return E;
  }
  case TokKind::Identifier: {
    auto E = std::make_unique<Expr>(Expr::Kind::Ident, Loc);
    E->Name = consume().Text;
    return E;
  }
  case TokKind::KwSizeof: {
    consume();
    expect(TokKind::LParen, "after 'sizeof'");
    auto E = std::make_unique<Expr>(Expr::Kind::SizeOf, Loc);
    accept(TokKind::KwStruct);
    if (check(TokKind::Identifier))
      E->Name = consume().Text;
    else
      Diags.error(cur().Loc, "expected struct name in sizeof");
    // Tolerate `sizeof(struct X *)`-style pointer sizes: one word anyway.
    while (accept(TokKind::Star))
      E->Name.clear(); // Pointer size: leave Name empty -> 1 word.
    expect(TokKind::RParen, "after sizeof");
    return E;
  }
  case TokKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokKindName(cur().Kind));
    consume();
    return std::make_unique<Expr>(Expr::Kind::IntLit, Loc);
  }
}
