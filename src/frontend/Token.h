//===- Token.h - Tokens of the EARTH-C dialect ------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the EARTH-C frontend: a C subset plus the EARTH-C
/// extensions (forall, parallel sequences `{^ ... ^}`, `shared` and `local`
/// qualifiers, and `@` call-placement annotations).
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_FRONTEND_TOKEN_H
#define EARTHCC_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace earthcc {

enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  DoubleLiteral,

  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwStruct,
  KwLocal,
  KwShared,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwForall,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwReturn,
  KwSizeof,
  KwNull,

  // Punctuation.
  LBrace,
  RBrace,
  LBraceCaret, ///< `{^` opening a parallel sequence.
  CaretRBrace, ///< `^}` closing a parallel sequence.
  LParen,
  RParen,
  Semi,
  Comma,
  Dot,
  Arrow,
  Star,
  Amp,
  Plus,
  Minus,
  Slash,
  Percent,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  EqEq,
  NotEq,
  Eq,
  AmpAmp,
  PipePipe,
  Bang,
  At,
  Colon
};

/// Returns a printable name for a token kind ("'->'", "identifier", ...).
const char *tokKindName(TokKind Kind);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling.
  int64_t IntValue = 0;
  double DoubleValue = 0.0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace earthcc

#endif // EARTHCC_FRONTEND_TOKEN_H
