//===- AST.h - Abstract syntax of the EARTH-C dialect -----------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parse tree produced by the Parser and consumed by the Simplify
/// lowering. It mirrors source syntax (nested expressions, for loops,
/// parallel blocks) before three-address simplification.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_FRONTEND_AST_H
#define EARTHCC_FRONTEND_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace earthcc {
namespace ast {

//===----------------------------------------------------------------------===//
// Types (syntactic).
//===----------------------------------------------------------------------===//

/// A source-level type: base type + pointer depth + qualifiers.
struct TypeSpec {
  enum class Base { Int, Double, Void, Struct } BaseKind = Base::Int;
  std::string StructName; ///< For Base::Struct.
  unsigned PointerDepth = 0;
  bool LocalQual = false;  ///< `local` pointer qualifier.
  bool SharedQual = false; ///< `shared` storage qualifier.
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node; a closed variant (Kind + per-kind fields) keeps the AST
/// small and easy to pattern-match in the lowering.
struct Expr {
  enum class Kind {
    IntLit,    ///< 42 (also NULL, lowered as 0)
    DoubleLit, ///< 3.14
    Ident,     ///< x
    Unary,     ///< -e, !e
    Binary,    ///< e1 op e2 (arith / compare / && / ||)
    Deref,     ///< *e
    AddrOf,    ///< &e
    Member,    ///< e.f or e->f (IsArrow distinguishes)
    Call,      ///< f(args) with optional @placement
    SizeOf     ///< sizeof(struct X) — size in machine words
  };

  /// Binary operator spellings (comparisons and logicals included).
  enum class BinOp {
    Add, Sub, Mul, Div, Rem,
    Lt, Le, Gt, Ge, Eq, Ne,
    LAnd, LOr
  };
  enum class UnOp { Neg, Not };

  /// Placement annotation on a call.
  enum class PlaceKind { None, OwnerOf, AtNode, Home };

  Kind K;
  SourceLoc Loc;

  // Literals.
  int64_t IntValue = 0;
  double DoubleValue = 0.0;

  // Ident / Member field / Call callee / SizeOf struct name.
  std::string Name;

  // Unary/Binary/Deref/AddrOf/Member operands.
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;
  ExprPtr Lhs; ///< Also the sole operand of unary forms and Member base.
  ExprPtr Rhs;

  // Member.
  bool IsArrow = false;

  // Call.
  std::vector<ExprPtr> Args;
  PlaceKind Place = PlaceKind::None;
  ExprPtr PlaceArg;

  explicit Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A local variable declaration (possibly with an initializer).
struct VarDecl {
  TypeSpec Type;
  std::string Name;
  ExprPtr Init; ///< May be null.
  SourceLoc Loc;
};

struct Stmt {
  enum class Kind {
    Block,    ///< { ... } — sequential
    ParBlock, ///< {^ ... ^} — parallel sequence
    Decl,
    ExprStmt, ///< call-expression used as a statement
    Assign,   ///< lvalue = expr
    If,
    While,
    DoWhile,
    For,
    Forall,
    Switch,
    Return
  };

  Kind K;
  SourceLoc Loc;

  // Block / ParBlock.
  std::vector<StmtPtr> Body;

  // Decl.
  std::vector<VarDecl> Decls;

  // ExprStmt / Assign / Return (value) / condition holders.
  ExprPtr Lhs;  ///< Assign target; If/While/DoWhile/Switch condition; Return value.
  ExprPtr Rhs;  ///< Assign source; ExprStmt expression.

  // If.
  StmtPtr Then;
  StmtPtr Else; ///< May be null.

  // While / DoWhile / For / Forall body.
  StmtPtr LoopBody;

  // For / Forall: init and step are full statements (assignments).
  StmtPtr Init;
  StmtPtr Step;
  ExprPtr Cond;

  // Switch.
  struct SwitchCase {
    int64_t Value = 0;
    bool IsDefault = false;
    std::vector<StmtPtr> Body;
  };
  std::vector<SwitchCase> Cases;

  explicit Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Top-level declarations.
//===----------------------------------------------------------------------===//

struct FieldDecl {
  TypeSpec Type;
  std::string Name;
  SourceLoc Loc;
};

struct StructDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  SourceLoc Loc;
};

struct ParamDecl {
  TypeSpec Type;
  std::string Name;
  SourceLoc Loc;
};

struct FuncDecl {
  TypeSpec ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< Null for a prototype.
  SourceLoc Loc;
};

struct GlobalDecl {
  VarDecl Decl;
};

/// One parsed translation unit.
struct TranslationUnit {
  std::vector<StructDecl> Structs;
  std::vector<FuncDecl> Functions;
  std::vector<GlobalDecl> Globals;
};

} // namespace ast
} // namespace earthcc

#endif // EARTHCC_FRONTEND_AST_H
