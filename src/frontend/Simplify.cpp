//===- Simplify.cpp - Semantic analysis + lowering to SIMPLE --------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Simplify.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
// For the defined-wrap / saturating conversion helpers only (header-inline;
// this adds no link dependency on the interpreter).
#include "interp/EngineCommon.h"

#include <map>

using namespace earthcc;
using namespace earthcc::ast;

namespace {

/// A resolved access path: either a plain variable, a field of a
/// struct-typed variable, or an indirection through a pointer variable.
struct AccessPath {
  enum class Kind { Var, StructField, Indirect } K = Kind::Var;
  const earthcc::Var *Base = nullptr;
  unsigned OffsetWords = 0;
  std::string FieldName;       ///< Dotted path for StructField/Indirect.
  const earthcc::Type *Ty = nullptr; ///< Type of the accessed value.
};

class Lowering {
public:
  Lowering(const TranslationUnit &Unit, DiagnosticsEngine &Diags)
      : Unit(Unit), Diags(Diags), M(std::make_unique<earthcc::Module>()) {}

  std::unique_ptr<earthcc::Module> run() {
    declareStructs();
    declareGlobals();
    declareFunctions();
    if (Diags.hasErrors())
      return std::move(M);
    for (const FuncDecl &FD : Unit.Functions)
      if (FD.Body)
        lowerFunction(FD);
    return std::move(M);
  }

private:
  using Type = earthcc::Type;
  using Var = earthcc::Var;

  //===--------------------------------------------------------------------===
  // Declaration passes.
  //===--------------------------------------------------------------------===

  void declareStructs() {
    // Create all tags first so pointer fields can reference any struct.
    for (const StructDecl &SD : Unit.Structs)
      if (!M->types().createStruct(SD.Name))
        Diags.error(SD.Loc, "redefinition of struct '" + SD.Name + "'");
    for (const StructDecl &SD : Unit.Structs) {
      StructType *S = M->types().findStruct(SD.Name);
      if (!S || S->isComplete())
        continue;
      for (const FieldDecl &FD : SD.Fields) {
        const Type *Ty = resolveType(FD.Type, FD.Loc);
        if (!Ty)
          continue;
        if (Ty->isStruct() && !Ty->structType()->isComplete() &&
            Ty->structType() != S) {
          // Nested struct values require the nested type to be complete.
          Diags.error(FD.Loc, "field of incomplete struct type");
          continue;
        }
        if (Ty->isStruct() && Ty->structType() == S) {
          Diags.error(FD.Loc, "struct cannot contain itself by value");
          continue;
        }
        if (Ty->isVoid()) {
          Diags.error(FD.Loc, "field cannot have void type");
          continue;
        }
        if (S->findField(FD.Name))
          Diags.error(FD.Loc, "duplicate field '" + FD.Name + "'");
        else
          S->addField(FD.Name, Ty);
      }
      S->finalize();
    }
  }

  void declareGlobals() {
    for (const GlobalDecl &GD : Unit.Globals) {
      const Type *Ty = resolveType(GD.Decl.Type, GD.Decl.Loc);
      if (!Ty)
        continue;
      if (M->findGlobal(GD.Decl.Name)) {
        Diags.error(GD.Decl.Loc,
                    "redefinition of global '" + GD.Decl.Name + "'");
        continue;
      }
      VarKind Kind =
          GD.Decl.Type.SharedQual ? VarKind::Shared : VarKind::Global;
      M->addGlobal(GD.Decl.Name, Ty, Kind);
      if (GD.Decl.Init)
        Diags.error(GD.Decl.Loc,
                    "global initializers are not supported; assign in main");
    }
  }

  void declareFunctions() {
    for (const FuncDecl &FD : Unit.Functions) {
      const Type *RetTy = resolveType(FD.ReturnType, FD.Loc);
      if (!RetTy)
        continue;
      if (RetTy->isStruct()) {
        Diags.error(FD.Loc, "functions cannot return structs by value");
        continue;
      }
      earthcc::Function *Existing = M->findFunction(FD.Name);
      if (Existing) {
        if (!FD.Body)
          continue; // Re-prototype: tolerated.
        if (!FunctionHasBody[FD.Name]) {
          FunctionHasBody[FD.Name] = true;
          continue; // Prototype earlier, body now: same Function object.
        }
        Diags.error(FD.Loc, "redefinition of function '" + FD.Name + "'");
        continue;
      }
      earthcc::Function *F = M->createFunction(FD.Name, RetTy);
      FunctionHasBody[FD.Name] = FD.Body != nullptr;
      for (const ParamDecl &PD : FD.Params) {
        const Type *PTy = resolveType(PD.Type, PD.Loc);
        if (!PTy)
          continue;
        if (PTy->isStruct() || PTy->isVoid()) {
          Diags.error(PD.Loc, "parameters must have scalar type");
          continue;
        }
        F->addParam(PD.Name, PTy);
      }
    }
  }

  const Type *resolveType(const TypeSpec &TS, SourceLoc Loc) {
    const Type *Base = nullptr;
    switch (TS.BaseKind) {
    case TypeSpec::Base::Int:
      Base = M->types().intTy();
      break;
    case TypeSpec::Base::Double:
      Base = M->types().doubleTy();
      break;
    case TypeSpec::Base::Void:
      Base = M->types().voidTy();
      break;
    case TypeSpec::Base::Struct: {
      StructType *S = M->types().findStruct(TS.StructName);
      if (!S) {
        Diags.error(Loc, "unknown struct '" + TS.StructName + "'");
        return nullptr;
      }
      Base = M->types().structTy(S);
      break;
    }
    }
    if (TS.PointerDepth == 0) {
      if (TS.LocalQual)
        Diags.error(Loc, "'local' only qualifies pointers");
      return Base;
    }
    const Type *T = Base;
    for (unsigned I = 0; I + 1 < TS.PointerDepth; ++I)
      T = M->types().pointerTo(T, /*LocalQual=*/false);
    // The qualifier attaches to the outermost pointer level.
    return M->types().pointerTo(T, TS.LocalQual);
  }

  //===--------------------------------------------------------------------===
  // Function lowering.
  //===--------------------------------------------------------------------===

  void lowerFunction(const FuncDecl &FD) {
    F = M->findFunction(FD.Name);
    if (!F)
      return;
    Scopes.clear();
    Scopes.emplace_back();
    for (Var *P : F->params())
      Scopes.back()[P->name()] = P;
    SeqStack.clear();
    SeqStack.push_back(&F->body());
    lowerStmtInto(*FD.Body);
    Scopes.pop_back();
    F->relabel();
  }

  SeqStmt &seq() { return *SeqStack.back(); }

  template <typename T, typename... Args> T *emit(Args &&...ArgsV) {
    auto S = std::make_unique<T>(std::forward<Args>(ArgsV)...);
    T *Raw = S.get();
    seq().push(std::move(S));
    return Raw;
  }

  Var *lookup(const std::string &Name, SourceLoc Loc) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    if (Var *G = M->findGlobal(Name))
      return G;
    Diags.error(Loc, "use of undeclared identifier '" + Name + "'");
    return nullptr;
  }

  //===--------------------------------------------------------------------===
  // Type coercion helpers.
  //===--------------------------------------------------------------------===

  bool isNullConst(const Operand &O) {
    return O.isConst() && O.getConst().isInt() && O.getConst().I == 0;
  }

  /// Coerces \p O of type \p From to \p To, inserting a conversion temp if
  /// needed. Reports an error for incompatible types.
  Operand coerce(Operand O, const Type *From, const Type *To, SourceLoc Loc) {
    if (!From || !To || From == To)
      return O;
    if (From->isInt() && To->isDouble()) {
      if (O.isConst())
        return Operand::doubleConst(static_cast<double>(O.getConst().I));
      Var *T = F->addTemp(To);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<UnaryRV>(UnaryOp::IntToDouble, O))
          ->setLoc(Loc);
      return Operand::var(T);
    }
    if (From->isDouble() && To->isInt()) {
      // Fold with the engines' conversion (saturating, NaN -> 0); the bare
      // cast is UB out of range and would let folding diverge from runtime.
      if (O.isConst())
        return Operand::intConst(interp::doubleToIntSat(O.getConst().D));
      Var *T = F->addTemp(To);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<UnaryRV>(UnaryOp::DoubleToInt, O))
          ->setLoc(Loc);
      return Operand::var(T);
    }
    if (To->isPointer() && From->isInt() && isNullConst(O))
      return O; // NULL literal.
    if (To->isPointer() && From->isPointer()) {
      // Pointee must match; `local` may be added or dropped (adding it is
      // the programmer's locality assertion, as in EARTH-C).
      const Type *A = From->pointee();
      const Type *B = To->pointee();
      if (A == B || (A->isStruct() && B->isStruct() &&
                     A->structType() == B->structType()))
        return O;
    }
    if (To->isInt() && From->isPointer())
      return O; // Pointer used in a boolean/integer context.
    Diags.error(Loc, "cannot convert '" + From->str() + "' to '" + To->str() +
                         "'");
    return O;
  }

  //===--------------------------------------------------------------------===
  // Access-path resolution.
  //===--------------------------------------------------------------------===

  Locality localityOf(const Var *Ptr) {
    return Ptr->type()->isLocalPointer() ? Locality::Local : Locality::Remote;
  }

  /// Lowers \p E to a pointer-typed variable (emitting loads as needed).
  Var *lowerToPointerVar(const Expr &E) {
    auto [O, Ty] = lowerExpr(E);
    if (!Ty || !Ty->isPointer()) {
      Diags.error(E.Loc, "expected a pointer expression");
      return nullptr;
    }
    if (O.isVar())
      return const_cast<Var *>(O.getVar());
    Var *T = F->addTemp(Ty);
    emit<AssignStmt>(LValue::makeVar(T), std::make_unique<OpndRV>(O))
        ->setLoc(E.Loc);
    return T;
  }

  /// Resolves an lvalue-ish expression to an access path. Returns nullopt
  /// and reports an error on unsupported shapes.
  std::optional<AccessPath> resolvePath(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Ident: {
      Var *V = lookup(E.Name, E.Loc);
      if (!V)
        return std::nullopt;
      if (V->isShared()) {
        Diags.error(E.Loc, "shared variable '" + V->name() +
                               "' must be accessed with "
                               "writeto/addto/valueof");
        return std::nullopt;
      }
      AccessPath P;
      if (V->type()->isStruct()) {
        P.K = AccessPath::Kind::StructField; // Whole struct: offset 0.
        P.Base = V;
        P.Ty = V->type();
      } else {
        P.K = AccessPath::Kind::Var;
        P.Base = V;
        P.Ty = V->type();
      }
      return P;
    }
    case Expr::Kind::Deref: {
      Var *Ptr = lowerToPointerVar(*E.Lhs);
      if (!Ptr)
        return std::nullopt;
      AccessPath P;
      P.K = AccessPath::Kind::Indirect;
      P.Base = Ptr;
      P.OffsetWords = 0;
      P.Ty = Ptr->type()->pointee();
      return P;
    }
    case Expr::Kind::Member: {
      if (E.IsArrow) {
        Var *Ptr = lowerToPointerVar(*E.Lhs);
        if (!Ptr)
          return std::nullopt;
        const Type *Pointee = Ptr->type()->pointee();
        if (!Pointee->isStruct()) {
          Diags.error(E.Loc, "'->' into non-struct pointee");
          return std::nullopt;
        }
        const StructType::Field *Fld =
            Pointee->structType()->findField(E.Name);
        if (!Fld) {
          Diags.error(E.Loc, "no field '" + E.Name + "' in " +
                                 Pointee->str());
          return std::nullopt;
        }
        AccessPath P;
        P.K = AccessPath::Kind::Indirect;
        P.Base = Ptr;
        P.OffsetWords = Fld->OffsetWords;
        P.FieldName = E.Name;
        P.Ty = Fld->Ty;
        return P;
      }
      // Dot: extend the base path.
      auto BaseP = resolvePath(*E.Lhs);
      if (!BaseP)
        return std::nullopt;
      if (!BaseP->Ty || !BaseP->Ty->isStruct()) {
        Diags.error(E.Loc, "'.' applied to a non-struct value");
        return std::nullopt;
      }
      const StructType::Field *Fld =
          BaseP->Ty->structType()->findField(E.Name);
      if (!Fld) {
        Diags.error(E.Loc, "no field '" + E.Name + "' in " + BaseP->Ty->str());
        return std::nullopt;
      }
      if (BaseP->K == AccessPath::Kind::Var) {
        Diags.error(E.Loc, "'.' applied to a scalar variable");
        return std::nullopt;
      }
      AccessPath P = *BaseP;
      P.OffsetWords += Fld->OffsetWords;
      P.FieldName =
          P.FieldName.empty() ? E.Name : P.FieldName + "." + E.Name;
      P.Ty = Fld->Ty;
      return P;
    }
    default:
      Diags.error(E.Loc, "expression is not addressable");
      return std::nullopt;
    }
  }

  //===--------------------------------------------------------------------===
  // Expression lowering.
  //===--------------------------------------------------------------------===

  /// Lowers an expression to an operand plus its type.
  std::pair<Operand, const Type *> lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return {Operand::intConst(E.IntValue), M->types().intTy()};
    case Expr::Kind::DoubleLit:
      return {Operand::doubleConst(E.DoubleValue), M->types().doubleTy()};
    case Expr::Kind::SizeOf: {
      int64_t Words = 1;
      if (!E.Name.empty()) {
        if (const StructType *S = M->types().findStruct(E.Name))
          Words = S->sizeInWords();
        else
          Diags.error(E.Loc, "sizeof of unknown struct '" + E.Name + "'");
      }
      return {Operand::intConst(Words), M->types().intTy()};
    }
    case Expr::Kind::Ident: {
      Var *V = lookup(E.Name, E.Loc);
      if (!V)
        return {Operand::intConst(0), M->types().intTy()};
      if (V->type()->isStruct()) {
        Diags.error(E.Loc, "struct variable used as a scalar value");
        return {Operand::intConst(0), M->types().intTy()};
      }
      if (V->isShared()) {
        Diags.error(E.Loc, "shared variable '" + V->name() +
                               "' must be accessed with "
                               "writeto/addto/valueof");
        return {Operand::intConst(0), M->types().intTy()};
      }
      if (V->isGlobal()) {
        // Ordinary globals live on node 0; direct use is a remote access.
        // We model them through the shared/global runtime path: load into a
        // temp via a global-access intrinsic-free mechanism is not part of
        // this dialect, so we reject reads of non-shared globals for now.
        Diags.error(E.Loc,
                    "ordinary global variables are not supported; use "
                    "shared variables or pass pointers");
        return {Operand::intConst(0), M->types().intTy()};
      }
      return {Operand::var(V), V->type()};
    }
    case Expr::Kind::Unary: {
      auto [O, Ty] = lowerExpr(*E.Lhs);
      if (E.UOp == Expr::UnOp::Neg) {
        // wrapSub(0, I): negation wraps like the engines' Neg step does
        // (plain -I is UB at INT64_MIN, reachable via -(-9223372036854775808).
        if (O.isConst())
          return {O.getConst().isInt()
                      ? Operand::intConst(interp::wrapSub(0, O.getConst().I))
                      : Operand::doubleConst(-O.getConst().D),
                  Ty};
        Var *T = F->addTemp(Ty);
        emit<AssignStmt>(LValue::makeVar(T),
                         std::make_unique<UnaryRV>(UnaryOp::Neg, O))
            ->setLoc(E.Loc);
        return {Operand::var(T), Ty};
      }
      // Logical not.
      Var *T = F->addTemp(M->types().intTy());
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<UnaryRV>(UnaryOp::Not, O))
          ->setLoc(E.Loc);
      return {Operand::var(T), M->types().intTy()};
    }
    case Expr::Kind::Binary:
      return lowerBinary(E);
    case Expr::Kind::Deref:
    case Expr::Kind::Member: {
      auto P = resolvePath(E);
      if (!P)
        return {Operand::intConst(0), M->types().intTy()};
      return loadPath(*P, E.Loc);
    }
    case Expr::Kind::AddrOf: {
      // Only &(p->f) and &(*p).f shapes produce values; &shared is handled
      // at intrinsic call sites.
      auto P = resolvePath(*E.Lhs);
      if (!P)
        return {Operand::intConst(0), M->types().intTy()};
      if (P->K != AccessPath::Kind::Indirect) {
        Diags.error(E.Loc, "'&' is only supported on p->field expressions "
                           "(or on shared variables in atomic intrinsics)");
        return {Operand::intConst(0), M->types().intTy()};
      }
      const Type *ResTy = M->types().pointerTo(P->Ty);
      Var *T = F->addTemp(ResTy);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<AddrOfFieldRV>(
                           P->Base, P->OffsetWords, P->FieldName, ResTy))
          ->setLoc(E.Loc);
      return {Operand::var(T), ResTy};
    }
    case Expr::Kind::Call:
      return lowerCall(E, /*ResultHint=*/nullptr);
    }
    return {Operand::intConst(0), M->types().intTy()};
  }

  /// Emits the load for a resolved access path; returns value operand.
  std::pair<Operand, const Type *> loadPath(const AccessPath &P,
                                            SourceLoc Loc) {
    switch (P.K) {
    case AccessPath::Kind::Var:
      return {Operand::var(P.Base), P.Ty};
    case AccessPath::Kind::StructField: {
      if (P.Ty->isStruct()) {
        Diags.error(Loc, "struct value used as a scalar");
        return {Operand::intConst(0), M->types().intTy()};
      }
      Var *T = F->addTemp(P.Ty);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<FieldReadRV>(P.Base, P.OffsetWords,
                                                     P.FieldName, P.Ty))
          ->setLoc(Loc);
      return {Operand::var(T), P.Ty};
    }
    case AccessPath::Kind::Indirect: {
      if (P.Ty->isStruct()) {
        Diags.error(Loc, "loading whole structs is not supported; read "
                         "fields individually");
        return {Operand::intConst(0), M->types().intTy()};
      }
      Var *T = F->addTemp(P.Ty);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<LoadRV>(P.Base, P.OffsetWords,
                                                P.FieldName, P.Ty,
                                                localityOf(P.Base)))
          ->setLoc(Loc);
      return {Operand::var(T), P.Ty};
    }
    }
    return {Operand::intConst(0), M->types().intTy()};
  }

  std::pair<Operand, const Type *> lowerBinary(const Expr &E) {
    if (E.BOp == Expr::BinOp::LAnd || E.BOp == Expr::BinOp::LOr)
      return lowerShortCircuit(E);

    auto [A, TyA] = lowerExpr(*E.Lhs);
    auto [B, TyB] = lowerExpr(*E.Rhs);

    BinaryOp Op;
    switch (E.BOp) {
    case Expr::BinOp::Add: Op = BinaryOp::Add; break;
    case Expr::BinOp::Sub: Op = BinaryOp::Sub; break;
    case Expr::BinOp::Mul: Op = BinaryOp::Mul; break;
    case Expr::BinOp::Div: Op = BinaryOp::Div; break;
    case Expr::BinOp::Rem: Op = BinaryOp::Rem; break;
    case Expr::BinOp::Lt: Op = BinaryOp::Lt; break;
    case Expr::BinOp::Le: Op = BinaryOp::Le; break;
    case Expr::BinOp::Gt: Op = BinaryOp::Gt; break;
    case Expr::BinOp::Ge: Op = BinaryOp::Ge; break;
    case Expr::BinOp::Eq: Op = BinaryOp::Eq; break;
    case Expr::BinOp::Ne: Op = BinaryOp::Ne; break;
    default:
      Op = BinaryOp::Add;
      break;
    }

    const Type *IntTy = M->types().intTy();
    const Type *DblTy = M->types().doubleTy();

    // Pointer comparisons (against pointers or NULL).
    bool PtrInvolved = (TyA && TyA->isPointer()) || (TyB && TyB->isPointer());
    if (PtrInvolved) {
      if (!isComparison(Op) ||
          (Op != BinaryOp::Eq && Op != BinaryOp::Ne)) {
        Diags.error(E.Loc, "only ==/!= comparisons are defined on pointers");
      }
      Var *T = F->addTemp(IntTy);
      emit<AssignStmt>(LValue::makeVar(T),
                       std::make_unique<BinaryRV>(Op, A, B))
          ->setLoc(E.Loc);
      return {Operand::var(T), IntTy};
    }

    // Arithmetic promotion int -> double.
    const Type *OpTy = IntTy;
    if ((TyA && TyA->isDouble()) || (TyB && TyB->isDouble()))
      OpTy = DblTy;
    A = coerce(A, TyA, OpTy, E.Loc);
    B = coerce(B, TyB, OpTy, E.Loc);

    if (Op == BinaryOp::Rem && OpTy->isDouble())
      Diags.error(E.Loc, "'%' requires integer operands");

    const Type *ResTy = isComparison(Op) ? IntTy : OpTy;
    Var *T = F->addTemp(ResTy);
    emit<AssignStmt>(LValue::makeVar(T), std::make_unique<BinaryRV>(Op, A, B))
        ->setLoc(E.Loc);
    return {Operand::var(T), ResTy};
  }

  /// Lowers `a && b` / `a || b` with C short-circuit semantics:
  ///   t = 0; if (a) { if (b) t = 1; }            (&&)
  ///   t = 1; if (!a) { if (!b) t = 0; }          (||) — via nested ifs.
  std::pair<Operand, const Type *> lowerShortCircuit(const Expr &E) {
    const Type *IntTy = M->types().intTy();
    Var *T = F->addTemp(IntTy);
    bool IsAnd = E.BOp == Expr::BinOp::LAnd;
    emit<AssignStmt>(LValue::makeVar(T), std::make_unique<OpndRV>(
                                             Operand::intConst(IsAnd ? 0 : 1)))
        ->setLoc(E.Loc);

    auto CondA = lowerCondRV(*E.Lhs, /*Negate=*/!IsAnd);
    auto OuterIf = std::make_unique<IfStmt>(std::move(CondA),
                                            std::make_unique<SeqStmt>(),
                                            std::make_unique<SeqStmt>());
    IfStmt *Outer = OuterIf.get();
    seq().push(std::move(OuterIf));

    SeqStack.push_back(Outer->Then.get());
    auto CondB = lowerCondRV(*E.Rhs, /*Negate=*/!IsAnd);
    auto InnerIf = std::make_unique<IfStmt>(std::move(CondB),
                                            std::make_unique<SeqStmt>(),
                                            std::make_unique<SeqStmt>());
    IfStmt *Inner = InnerIf.get();
    seq().push(std::move(InnerIf));
    SeqStack.push_back(Inner->Then.get());
    emit<AssignStmt>(LValue::makeVar(T), std::make_unique<OpndRV>(
                                             Operand::intConst(IsAnd ? 1 : 0)))
        ->setLoc(E.Loc);
    SeqStack.pop_back();
    SeqStack.pop_back();
    return {Operand::var(T), IntTy};
  }

  /// Lowers a boolean condition into a SIMPLE condition RValue (operand or
  /// comparison of operands), emitting preparatory statements into the
  /// current sequence. With \p Negate, produces the negated condition.
  std::unique_ptr<RValue> lowerCondRV(const Expr &E, bool Negate = false) {
    // Direct comparison: keep it as a BinaryRV when both sides are simple.
    if (E.K == Expr::Kind::Binary) {
      switch (E.BOp) {
      case Expr::BinOp::Lt:
      case Expr::BinOp::Le:
      case Expr::BinOp::Gt:
      case Expr::BinOp::Ge:
      case Expr::BinOp::Eq:
      case Expr::BinOp::Ne: {
        auto [A, TyA] = lowerExpr(*E.Lhs);
        auto [B, TyB] = lowerExpr(*E.Rhs);
        BinaryOp Op;
        switch (E.BOp) {
        case Expr::BinOp::Lt: Op = BinaryOp::Lt; break;
        case Expr::BinOp::Le: Op = BinaryOp::Le; break;
        case Expr::BinOp::Gt: Op = BinaryOp::Gt; break;
        case Expr::BinOp::Ge: Op = BinaryOp::Ge; break;
        case Expr::BinOp::Eq: Op = BinaryOp::Eq; break;
        default: Op = BinaryOp::Ne; break;
        }
        if (Negate) {
          switch (Op) {
          case BinaryOp::Lt: Op = BinaryOp::Ge; break;
          case BinaryOp::Le: Op = BinaryOp::Gt; break;
          case BinaryOp::Gt: Op = BinaryOp::Le; break;
          case BinaryOp::Ge: Op = BinaryOp::Lt; break;
          case BinaryOp::Eq: Op = BinaryOp::Ne; break;
          case BinaryOp::Ne: Op = BinaryOp::Eq; break;
          default: break;
          }
        }
        bool PtrInvolved =
            (TyA && TyA->isPointer()) || (TyB && TyB->isPointer());
        if (!PtrInvolved) {
          const Type *OpTy = ((TyA && TyA->isDouble()) ||
                              (TyB && TyB->isDouble()))
                                 ? M->types().doubleTy()
                                 : M->types().intTy();
          A = coerce(A, TyA, OpTy, E.Loc);
          B = coerce(B, TyB, OpTy, E.Loc);
        }
        return std::make_unique<BinaryRV>(Op, A, B);
      }
      default:
        break;
      }
    }
    auto [O, Ty] = lowerExpr(E);
    (void)Ty;
    if (Negate)
      return std::make_unique<UnaryRV>(UnaryOp::Not, O);
    return std::make_unique<OpndRV>(O);
  }

  //===--------------------------------------------------------------------===
  // Calls and intrinsics.
  //===--------------------------------------------------------------------===

  static Intrinsic intrinsicByName(const std::string &Name) {
    if (Name == "pmalloc")
      return Intrinsic::PMalloc;
    if (Name == "print")
      return Intrinsic::Print;
    if (Name == "my_node")
      return Intrinsic::MyNode;
    if (Name == "num_nodes")
      return Intrinsic::NumNodes;
    if (Name == "isqrt")
      return Intrinsic::IntSqrt;
    if (Name == "sqrt")
      return Intrinsic::Sqrt;
    if (Name == "fabs")
      return Intrinsic::Fabs;
    return Intrinsic::None;
  }

  /// Lowers a call expression. \p ResultHint, when non-null, receives the
  /// result (used by `x = f(...)` to avoid an extra temp, and to type
  /// pmalloc results).
  std::pair<Operand, const Type *> lowerCall(const Expr &E, Var *ResultHint) {
    // Atomic intrinsics on shared variables.
    if (E.Name == "writeto" || E.Name == "addto" || E.Name == "valueof")
      return lowerAtomic(E, ResultHint);

    CallPlacement Placement = CallPlacement::Default;
    Operand PlaceArg;
    switch (E.Place) {
    case Expr::PlaceKind::None:
      break;
    case Expr::PlaceKind::Home:
      Placement = CallPlacement::Home;
      break;
    case Expr::PlaceKind::OwnerOf: {
      auto [O, Ty] = lowerExpr(*E.PlaceArg);
      if (!Ty || !Ty->isPointer())
        Diags.error(E.Loc, "OWNER_OF requires a pointer argument");
      Placement = CallPlacement::OwnerOf;
      PlaceArg = O;
      break;
    }
    case Expr::PlaceKind::AtNode: {
      auto [O, Ty] = lowerExpr(*E.PlaceArg);
      if (!Ty || !Ty->isInt())
        Diags.error(E.Loc, "@node requires an int argument");
      Placement = CallPlacement::AtNode;
      PlaceArg = O;
      break;
    }
    }

    Intrinsic Intrin = intrinsicByName(E.Name);
    if (Intrin != Intrinsic::None)
      return lowerIntrinsic(E, Intrin, ResultHint, Placement, PlaceArg);

    earthcc::Function *Callee = M->findFunction(E.Name);
    if (!Callee) {
      Diags.error(E.Loc, "call to undeclared function '" + E.Name + "'");
      return {Operand::intConst(0), M->types().intTy()};
    }
    if (E.Args.size() != Callee->params().size()) {
      Diags.error(E.Loc, "wrong number of arguments to '" + E.Name + "'");
      return {Operand::intConst(0), Callee->returnType()};
    }
    std::vector<Operand> Args;
    for (size_t I = 0; I != E.Args.size(); ++I) {
      auto [O, Ty] = lowerExpr(*E.Args[I]);
      Args.push_back(coerce(O, Ty, Callee->params()[I]->type(),
                            E.Args[I]->Loc));
    }
    const Type *RetTy = Callee->returnType();
    Var *Result = nullptr;
    if (!RetTy->isVoid())
      Result = ResultHint ? ResultHint : F->addTemp(RetTy);
    auto *CS = emit<CallStmt>(Result, E.Name, std::move(Args));
    CS->Callee = Callee;
    CS->Placement = Placement;
    CS->PlacementArg = PlaceArg;
    CS->setLoc(E.Loc);
    if (!Result)
      return {Operand::intConst(0), RetTy};
    return {Operand::var(Result), RetTy};
  }

  std::pair<Operand, const Type *>
  lowerIntrinsic(const Expr &E, Intrinsic Intrin, Var *ResultHint,
                 CallPlacement Placement, Operand PlaceArg) {
    const Type *IntTy = M->types().intTy();
    const Type *DblTy = M->types().doubleTy();

    auto makeCall = [&](Var *Result, std::vector<Operand> Args) -> CallStmt * {
      auto *CS = emit<CallStmt>(Result, E.Name, std::move(Args));
      CS->Intrin = Intrin;
      CS->Placement = Placement;
      CS->PlacementArg = PlaceArg;
      CS->setLoc(E.Loc);
      return CS;
    };

    switch (Intrin) {
    case Intrinsic::PMalloc: {
      if (E.Args.size() != 1) {
        Diags.error(E.Loc, "pmalloc takes one argument (size in words)");
        return {Operand::intConst(0), IntTy};
      }
      auto [O, Ty] = lowerExpr(*E.Args[0]);
      O = coerce(O, Ty, IntTy, E.Loc);
      const Type *ResTy =
          ResultHint ? ResultHint->type() : M->types().pointerTo(IntTy);
      if (!ResTy->isPointer()) {
        Diags.error(E.Loc, "pmalloc result must be assigned to a pointer");
        ResTy = M->types().pointerTo(IntTy);
      }
      Var *Result = ResultHint ? ResultHint : F->addTemp(ResTy);
      makeCall(Result, {O});
      return {Operand::var(Result), ResTy};
    }
    case Intrinsic::Print: {
      if (E.Args.size() != 1) {
        Diags.error(E.Loc, "print takes one argument");
        return {Operand::intConst(0), IntTy};
      }
      auto [O, Ty] = lowerExpr(*E.Args[0]);
      (void)Ty;
      makeCall(nullptr, {O});
      return {Operand::intConst(0), M->types().voidTy()};
    }
    case Intrinsic::MyNode:
    case Intrinsic::NumNodes: {
      Var *Result = ResultHint ? ResultHint : F->addTemp(IntTy);
      makeCall(Result, {});
      return {Operand::var(Result), IntTy};
    }
    case Intrinsic::IntSqrt: {
      auto [O, Ty] = lowerExpr(*E.Args.at(0));
      O = coerce(O, Ty, IntTy, E.Loc);
      Var *Result = ResultHint ? ResultHint : F->addTemp(IntTy);
      makeCall(Result, {O});
      return {Operand::var(Result), IntTy};
    }
    case Intrinsic::Sqrt:
    case Intrinsic::Fabs: {
      auto [O, Ty] = lowerExpr(*E.Args.at(0));
      O = coerce(O, Ty, DblTy, E.Loc);
      Var *Result = ResultHint ? ResultHint : F->addTemp(DblTy);
      makeCall(Result, {O});
      return {Operand::var(Result), DblTy};
    }
    case Intrinsic::None:
      break;
    }
    return {Operand::intConst(0), IntTy};
  }

  /// Lowers writeto(&s, v) / addto(&s, v) / valueof(&s).
  std::pair<Operand, const Type *> lowerAtomic(const Expr &E,
                                               Var *ResultHint) {
    auto sharedArg = [&](const Expr &Arg) -> Var * {
      if (Arg.K != Expr::Kind::AddrOf || Arg.Lhs->K != Expr::Kind::Ident) {
        Diags.error(Arg.Loc, "atomic intrinsics take '&sharedVar'");
        return nullptr;
      }
      Var *V = lookup(Arg.Lhs->Name, Arg.Loc);
      if (V && !V->isShared()) {
        Diags.error(Arg.Loc,
                    "'" + V->name() + "' is not a shared variable");
        return nullptr;
      }
      return V;
    };

    const Type *IntTy = M->types().intTy();
    if (E.Name == "valueof") {
      if (E.Args.size() != 1) {
        Diags.error(E.Loc, "valueof takes one argument");
        return {Operand::intConst(0), IntTy};
      }
      Var *S = sharedArg(*E.Args[0]);
      if (!S)
        return {Operand::intConst(0), IntTy};
      Var *Result = ResultHint ? ResultHint : F->addTemp(S->type());
      auto *A = emit<AtomicStmt>(AtomicOp::ValueOf, S, Operand(), Result);
      A->setLoc(E.Loc);
      return {Operand::var(Result), S->type()};
    }

    if (E.Args.size() != 2) {
      Diags.error(E.Loc, E.Name + " takes two arguments");
      return {Operand::intConst(0), IntTy};
    }
    Var *S = sharedArg(*E.Args[0]);
    auto [O, Ty] = lowerExpr(*E.Args[1]);
    if (!S)
      return {Operand::intConst(0), IntTy};
    O = coerce(O, Ty, S->type(), E.Loc);
    AtomicOp Op = E.Name == "writeto" ? AtomicOp::WriteTo : AtomicOp::AddTo;
    auto *A = emit<AtomicStmt>(Op, S, O, nullptr);
    A->setLoc(E.Loc);
    return {Operand::intConst(0), M->types().voidTy()};
  }

  //===--------------------------------------------------------------------===
  // Statement lowering.
  //===--------------------------------------------------------------------===

  void lowerStmtInto(const ast::Stmt &S) {
    switch (S.K) {
    case ast::Stmt::Kind::Block: {
      Scopes.emplace_back();
      for (const auto &Child : S.Body)
        lowerStmtInto(*Child);
      Scopes.pop_back();
      return;
    }
    case ast::Stmt::Kind::ParBlock: {
      auto Par = std::make_unique<SeqStmt>(/*Parallel=*/true);
      SeqStmt *ParRaw = Par.get();
      seq().push(std::move(Par));
      Scopes.emplace_back();
      for (const auto &Child : S.Body) {
        auto Branch = std::make_unique<SeqStmt>();
        SeqStmt *BranchRaw = Branch.get();
        ParRaw->push(std::move(Branch));
        SeqStack.push_back(BranchRaw);
        lowerStmtInto(*Child);
        SeqStack.pop_back();
      }
      Scopes.pop_back();
      return;
    }
    case ast::Stmt::Kind::Decl: {
      for (const VarDecl &VD : S.Decls)
        lowerDecl(VD);
      return;
    }
    case ast::Stmt::Kind::ExprStmt: {
      if (S.Rhs->K == Expr::Kind::Call) {
        lowerCall(*S.Rhs, nullptr);
        return;
      }
      Diags.error(S.Loc, "expression statement has no effect");
      return;
    }
    case ast::Stmt::Kind::Assign:
      lowerAssign(S);
      return;
    case ast::Stmt::Kind::If: {
      auto Cond = lowerCondRV(*S.Cond);
      auto If = std::make_unique<IfStmt>(std::move(Cond),
                                         std::make_unique<SeqStmt>(),
                                         std::make_unique<SeqStmt>());
      If->setLoc(S.Loc);
      IfStmt *IfRaw = If.get();
      seq().push(std::move(If));
      SeqStack.push_back(IfRaw->Then.get());
      Scopes.emplace_back();
      lowerStmtInto(*S.Then);
      Scopes.pop_back();
      SeqStack.pop_back();
      if (S.Else) {
        SeqStack.push_back(IfRaw->Else.get());
        Scopes.emplace_back();
        lowerStmtInto(*S.Else);
        Scopes.pop_back();
        SeqStack.pop_back();
      }
      return;
    }
    case ast::Stmt::Kind::While:
    case ast::Stmt::Kind::DoWhile:
      lowerLoop(S, /*InitS=*/nullptr, /*StepS=*/nullptr,
                S.K == ast::Stmt::Kind::DoWhile);
      return;
    case ast::Stmt::Kind::For:
      lowerLoop(S, S.Init.get(), S.Step.get(), /*IsDoWhile=*/false);
      return;
    case ast::Stmt::Kind::Forall:
      lowerForall(S);
      return;
    case ast::Stmt::Kind::Switch:
      lowerSwitch(S);
      return;
    case ast::Stmt::Kind::Return: {
      if (!S.Lhs) {
        if (!F->returnType()->isVoid())
          Diags.error(S.Loc, "non-void function must return a value");
        emit<ReturnStmt>()->setLoc(S.Loc);
        return;
      }
      auto [O, Ty] = lowerExpr(*S.Lhs);
      O = coerce(O, Ty, F->returnType(), S.Loc);
      emit<ReturnStmt>(std::optional<Operand>(O))->setLoc(S.Loc);
      return;
    }
    }
  }

  void lowerDecl(const VarDecl &VD) {
    const Type *Ty = resolveType(VD.Type, VD.Loc);
    if (!Ty)
      return;
    if (Ty->isVoid()) {
      Diags.error(VD.Loc, "variables cannot have void type");
      return;
    }
    if (Scopes.back().count(VD.Name)) {
      Diags.error(VD.Loc, "redefinition of '" + VD.Name + "'");
      return;
    }
    VarKind Kind = VD.Type.SharedQual ? VarKind::Shared : VarKind::Local;
    Var *V = F->addLocal(VD.Name, Ty, Kind);
    Scopes.back()[VD.Name] = V;
    if (VD.Init) {
      if (Kind == VarKind::Shared) {
        Diags.error(VD.Loc, "initialize shared variables with writeto()");
        return;
      }
      lowerAssignTo(V, *VD.Init, VD.Loc);
    }
  }

  /// Lowers `V = <E>` for a plain variable target.
  void lowerAssignTo(Var *V, const Expr &E, SourceLoc Loc) {
    // Call results can go straight into V when the types line up.
    if (E.K == Expr::Kind::Call) {
      Intrinsic In = intrinsicByName(E.Name);
      earthcc::Function *Callee = M->findFunction(E.Name);
      const Type *RetTy = nullptr;
      if (In == Intrinsic::PMalloc)
        RetTy = V->type();
      else if (In == Intrinsic::MyNode || In == Intrinsic::NumNodes ||
               In == Intrinsic::IntSqrt)
        RetTy = M->types().intTy();
      else if (In == Intrinsic::Sqrt || In == Intrinsic::Fabs)
        RetTy = M->types().doubleTy();
      else if (In == Intrinsic::None && E.Name == "valueof")
        RetTy = nullptr; // Handled below via generic path.
      else if (Callee)
        RetTy = Callee->returnType();
      if (RetTy && RetTy == V->type()) {
        lowerCall(E, V);
        return;
      }
    }
    // Loads and field reads can target V directly when types line up,
    // producing the paper-style `ax = p->x` form without an extra temp.
    if (E.K == Expr::Kind::Member || E.K == Expr::Kind::Deref) {
      auto P = resolvePath(E);
      if (!P)
        return;
      if (!P->Ty->isStruct() && P->Ty == V->type()) {
        if (P->K == AccessPath::Kind::Indirect) {
          emit<AssignStmt>(LValue::makeVar(V),
                           std::make_unique<LoadRV>(P->Base, P->OffsetWords,
                                                    P->FieldName, P->Ty,
                                                    localityOf(P->Base)))
              ->setLoc(Loc);
          return;
        }
        if (P->K == AccessPath::Kind::StructField) {
          emit<AssignStmt>(LValue::makeVar(V),
                           std::make_unique<FieldReadRV>(
                               P->Base, P->OffsetWords, P->FieldName, P->Ty))
              ->setLoc(Loc);
          return;
        }
      }
      // Type mismatch or other shapes: fall through via loadPath + coerce.
      auto [O, Ty] = loadPath(*P, E.Loc);
      O = coerce(O, Ty, V->type(), Loc);
      if (O.isVar() && O.getVar() == V)
        return;
      emit<AssignStmt>(LValue::makeVar(V), std::make_unique<OpndRV>(O))
          ->setLoc(Loc);
      return;
    }

    // Binary arithmetic/comparison can also land in V directly.
    if (E.K == Expr::Kind::Binary && E.BOp != Expr::BinOp::LAnd &&
        E.BOp != Expr::BinOp::LOr) {
      auto [A, TyA] = lowerExpr(*E.Lhs);
      auto [B, TyB] = lowerExpr(*E.Rhs);
      BinaryOp Op;
      bool Known = true;
      switch (E.BOp) {
      case Expr::BinOp::Add: Op = BinaryOp::Add; break;
      case Expr::BinOp::Sub: Op = BinaryOp::Sub; break;
      case Expr::BinOp::Mul: Op = BinaryOp::Mul; break;
      case Expr::BinOp::Div: Op = BinaryOp::Div; break;
      case Expr::BinOp::Rem: Op = BinaryOp::Rem; break;
      case Expr::BinOp::Lt: Op = BinaryOp::Lt; break;
      case Expr::BinOp::Le: Op = BinaryOp::Le; break;
      case Expr::BinOp::Gt: Op = BinaryOp::Gt; break;
      case Expr::BinOp::Ge: Op = BinaryOp::Ge; break;
      case Expr::BinOp::Eq: Op = BinaryOp::Eq; break;
      case Expr::BinOp::Ne: Op = BinaryOp::Ne; break;
      default:
        Op = BinaryOp::Add;
        Known = false;
        break;
      }
      bool PtrInvolved =
          (TyA && TyA->isPointer()) || (TyB && TyB->isPointer());
      const Type *OpTy = M->types().intTy();
      if (!PtrInvolved) {
        if ((TyA && TyA->isDouble()) || (TyB && TyB->isDouble()))
          OpTy = M->types().doubleTy();
        A = coerce(A, TyA, OpTy, E.Loc);
        B = coerce(B, TyB, OpTy, E.Loc);
      }
      const Type *ResTy = isComparison(Op) ? M->types().intTy() : OpTy;
      if (Known && ResTy == V->type() &&
          (!PtrInvolved || (Op == BinaryOp::Eq || Op == BinaryOp::Ne))) {
        emit<AssignStmt>(LValue::makeVar(V),
                         std::make_unique<BinaryRV>(Op, A, B))
            ->setLoc(Loc);
        return;
      }
      // Fall through: re-lower generically (rare: mismatched result type).
      Var *T = F->addTemp(ResTy);
      emit<AssignStmt>(LValue::makeVar(T), std::make_unique<BinaryRV>(Op, A, B))
          ->setLoc(Loc);
      Operand O = coerce(Operand::var(T), ResTy, V->type(), Loc);
      emit<AssignStmt>(LValue::makeVar(V), std::make_unique<OpndRV>(O))
          ->setLoc(Loc);
      return;
    }

    // General path: compute into an operand, then copy/convert.
    auto [O, Ty] = lowerExpr(E);
    O = coerce(O, Ty, V->type(), Loc);
    // Avoid a self-copy when the expression already landed in V.
    if (O.isVar() && O.getVar() == V)
      return;
    emit<AssignStmt>(LValue::makeVar(V), std::make_unique<OpndRV>(O))
        ->setLoc(Loc);
  }

  void lowerAssign(const ast::Stmt &S) {
    auto P = resolvePath(*S.Lhs);
    if (!P)
      return;
    switch (P->K) {
    case AccessPath::Kind::Var:
      lowerAssignTo(const_cast<Var *>(P->Base), *S.Rhs, S.Loc);
      return;
    case AccessPath::Kind::StructField: {
      if (P->Ty->isStruct()) {
        Diags.error(S.Loc, "whole-struct assignment is not supported");
        return;
      }
      auto [O, Ty] = lowerExpr(*S.Rhs);
      O = coerce(O, Ty, P->Ty, S.Loc);
      emit<AssignStmt>(
          LValue::makeFieldWrite(P->Base, P->OffsetWords, P->FieldName),
          std::make_unique<OpndRV>(O))
          ->setLoc(S.Loc);
      return;
    }
    case AccessPath::Kind::Indirect: {
      if (P->Ty->isStruct()) {
        Diags.error(S.Loc, "whole-struct stores are not supported");
        return;
      }
      auto [O, Ty] = lowerExpr(*S.Rhs);
      O = coerce(O, Ty, P->Ty, S.Loc);
      emit<AssignStmt>(LValue::makeStore(P->Base, P->OffsetWords,
                                         P->FieldName, localityOf(P->Base)),
                       std::make_unique<OpndRV>(O))
          ->setLoc(S.Loc);
      return;
    }
    }
  }

  /// Lowers while/do-while/for loops. Conditions with side statements are
  /// computed into a temp before the loop and recomputed at the body end:
  ///   tc = <cond>; while (tc) { body; step; tc = <cond>; }
  void lowerLoop(const ast::Stmt &S, const ast::Stmt *InitS,
                 const ast::Stmt *StepS, bool IsDoWhile) {
    Scopes.emplace_back();
    if (InitS)
      lowerStmtInto(*InitS);

    // Trial-lower the condition into a scratch sequence to see whether it
    // needs side statements.
    auto Scratch = std::make_unique<SeqStmt>();
    SeqStack.push_back(Scratch.get());
    auto TrialCond = lowerCondRV(*S.Cond);
    SeqStack.pop_back();
    bool SimpleCond = Scratch->empty();

    if (SimpleCond) {
      auto While = std::make_unique<WhileStmt>(
          std::move(TrialCond), std::make_unique<SeqStmt>(), IsDoWhile);
      While->setLoc(S.Loc);
      WhileStmt *W = While.get();
      seq().push(std::move(While));
      SeqStack.push_back(W->Body.get());
      lowerStmtInto(*S.LoopBody);
      if (StepS)
        lowerStmtInto(*StepS);
      SeqStack.pop_back();
      Scopes.pop_back();
      return;
    }

    // Complex condition: evaluate into a temp.
    Var *CondVar = F->addTemp(M->types().intTy());
    auto emitCondInto = [&](SeqStmt *Target) {
      SeqStack.push_back(Target);
      auto CondRV = lowerCondRV(*S.Cond);
      emit<AssignStmt>(LValue::makeVar(CondVar), std::move(CondRV))
          ->setLoc(S.Cond->Loc);
      SeqStack.pop_back();
    };
    if (!IsDoWhile)
      emitCondInto(&seq());
    auto While = std::make_unique<WhileStmt>(
        std::make_unique<OpndRV>(Operand::var(CondVar)),
        std::make_unique<SeqStmt>(), IsDoWhile);
    While->setLoc(S.Loc);
    WhileStmt *W = While.get();
    seq().push(std::move(While));
    SeqStack.push_back(W->Body.get());
    lowerStmtInto(*S.LoopBody);
    if (StepS)
      lowerStmtInto(*StepS);
    SeqStack.pop_back();
    emitCondInto(W->Body.get());
    Scopes.pop_back();
  }

  void lowerForall(const ast::Stmt &S) {
    Scopes.emplace_back();
    auto Init = std::make_unique<SeqStmt>();
    auto Step = std::make_unique<SeqStmt>();
    auto Body = std::make_unique<SeqStmt>();

    SeqStack.push_back(Init.get());
    if (S.Init)
      lowerStmtInto(*S.Init);
    std::unique_ptr<RValue> Cond;
    {
      auto Scratch = std::make_unique<SeqStmt>();
      SeqStack.push_back(Scratch.get());
      Cond = lowerCondRV(*S.Cond);
      SeqStack.pop_back();
      if (!Scratch->empty()) {
        Diags.error(S.Loc, "forall conditions must be simple (no memory "
                           "accesses or calls)");
      }
    }
    SeqStack.pop_back();

    SeqStack.push_back(Step.get());
    if (S.Step)
      lowerStmtInto(*S.Step);
    SeqStack.pop_back();

    SeqStack.push_back(Body.get());
    lowerStmtInto(*S.LoopBody);
    SeqStack.pop_back();

    auto Forall = std::make_unique<ForallStmt>(std::move(Init),
                                               std::move(Cond),
                                               std::move(Step),
                                               std::move(Body));
    Forall->setLoc(S.Loc);
    seq().push(std::move(Forall));
    Scopes.pop_back();
  }

  void lowerSwitch(const ast::Stmt &S) {
    auto [O, Ty] = lowerExpr(*S.Cond);
    O = coerce(O, Ty, M->types().intTy(), S.Loc);
    auto Switch = std::make_unique<SwitchStmt>(O);
    Switch->setLoc(S.Loc);
    Switch->Default = std::make_unique<SeqStmt>();
    SwitchStmt *Sw = Switch.get();
    seq().push(std::move(Switch));
    for (const auto &C : S.Cases) {
      auto Body = std::make_unique<SeqStmt>();
      SeqStack.push_back(Body.get());
      Scopes.emplace_back();
      for (const auto &Inner : C.Body)
        lowerStmtInto(*Inner);
      Scopes.pop_back();
      SeqStack.pop_back();
      if (C.IsDefault)
        Sw->Default = std::move(Body);
      else
        Sw->Cases.push_back({C.Value, std::move(Body)});
    }
  }

  const TranslationUnit &Unit;
  DiagnosticsEngine &Diags;
  std::unique_ptr<earthcc::Module> M;
  earthcc::Function *F = nullptr;
  std::vector<std::map<std::string, Var *>> Scopes;
  std::vector<SeqStmt *> SeqStack;
  std::map<std::string, bool> FunctionHasBody;
};

} // namespace

std::unique_ptr<Module> earthcc::lowerToSimple(const TranslationUnit &Unit,
                                               DiagnosticsEngine &Diags) {
  return Lowering(Unit, Diags).run();
}

std::unique_ptr<Module> earthcc::compileToSimple(const std::string &Source,
                                                 DiagnosticsEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit Unit = P.parseUnit();
  if (Diags.hasErrors())
    return std::make_unique<Module>();
  return lowerToSimple(Unit, Diags);
}
