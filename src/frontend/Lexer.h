//===- Lexer.h - EARTH-C lexer ----------------------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_FRONTEND_LEXER_H
#define EARTHCC_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace earthcc {

/// Turns an EARTH-C source buffer into a token stream. Handles `//` and
/// `/* */` comments and the two-character parallel-sequence brackets
/// `{^` / `^}`.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticsEngine &Diags);

  /// Lexes the whole buffer. The returned vector always ends with an Eof
  /// token; on a lexical error, diagnostics are recorded and the offending
  /// character skipped.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc here() const { return SourceLoc(Line, Col); }

  Token makeToken(TokKind Kind, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);

  std::string Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace earthcc

#endif // EARTHCC_FRONTEND_LEXER_H
