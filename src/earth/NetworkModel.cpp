//===- NetworkModel.cpp - Pluggable interconnect model for earthsim -------===//
//
// Part of the earthcc project.
//
// Topology implementations. The routed models (bus, mesh2d, torus2d,
// fattree) share one store-and-forward core: a transfer occupies each link
// of its route in order, each link is a FIFO server in simulated time
// (`FreeAt` clock), and occupancy is HopNs + Words * WordNs per link. The
// per-link `Busy` deque tracks departures that have not yet drained so peak
// queue depth is observable; `PairWords` records every injected transfer
// for the conservation tests (per-link words summed over routes must equal
// the re-routed pair matrix).
//
//===----------------------------------------------------------------------===//

#include "earth/NetworkModel.h"

#include <cassert>
#include <cmath>
#include <deque>
#include <string>

namespace earthcc {

NetworkModel::~NetworkModel() = default;

const char *topologyName(Topology T) {
  switch (T) {
  case Topology::Ideal:
    return "ideal";
  case Topology::Bus:
    return "bus";
  case Topology::Mesh2D:
    return "mesh2d";
  case Topology::Torus2D:
    return "torus2d";
  case Topology::FatTree:
    return "fattree";
  }
  return "?";
}

const char *topologyChoices() { return "ideal|bus|mesh2d|torus2d|fattree"; }

bool parseTopology(std::string_view V, Topology &Out) {
  if (V == "ideal")
    Out = Topology::Ideal;
  else if (V == "bus")
    Out = Topology::Bus;
  else if (V == "mesh2d")
    Out = Topology::Mesh2D;
  else if (V == "torus2d")
    Out = Topology::Torus2D;
  else if (V == "fattree")
    Out = Topology::FatTree;
  else
    return false;
  return true;
}

const char *distributionName(Distribution D) {
  switch (D) {
  case Distribution::Cyclic:
    return "cyclic";
  case Distribution::Block:
    return "block";
  }
  return "?";
}

const char *distributionChoices() { return "cyclic|block"; }

bool parseDistribution(std::string_view V, Distribution &Out) {
  if (V == "cyclic")
    Out = Distribution::Cyclic;
  else if (V == "block")
    Out = Distribution::Block;
  else
    return false;
  return true;
}

namespace {

/// The paper's EARTH-MANNA abstraction: every crossing costs exactly
/// NetDelay, independent of load. transaction() then reproduces the
/// historical inline arithmetic bit for bit:
///   Arrival = IssueEnd + NetDelay
///   SuEnd   = max(SUClock[To], Arrival) + Service + PerWord * Extra
///   DoneAt  = SuEnd + NetDelay
class IdealNetwork final : public NetworkModel {
public:
  IdealNetwork(unsigned NumNodes, const CostModel &C)
      : NetworkModel(Topology::Ideal, NumNodes, C) {}

  double transferDone(unsigned, unsigned, uint64_t, double IssueTime) override {
    return IssueTime + Costs.NetDelay;
  }
};

/// Shared store-and-forward core for every topology with real links.
class RoutedNetwork : public NetworkModel {
public:
  RoutedNetwork(Topology Topo, unsigned NumNodes, const CostModel &C)
      : NetworkModel(Topo, NumNodes, C),
        PairWords(size_t(NumNodes) * NumNodes, 0) {}

  double transferDone(unsigned From, unsigned To, uint64_t Words,
                      double IssueTime) override {
    if (From == To) // local delivery never touches the network
      return IssueTime;
    PairWords[size_t(From) * numNodes() + To] += Words;
    double T = IssueTime;
    for (unsigned Idx : route(From, To)) {
      Link &L = Links[Idx];
      // Drain transfers that have already left the link by time T, then
      // queue behind whatever is still occupying it (FIFO in simulated
      // time — this is where contention serializes).
      while (!L.Busy.empty() && L.Busy.front() <= T)
        L.Busy.pop_front();
      double Depart = std::max(T, L.FreeAt);
      double Hold = L.HopNs + L.WordNs * static_cast<double>(Words);
      L.FreeAt = Depart + Hold;
      L.Busy.push_back(L.FreeAt);
      L.MaxDepth = std::max(L.MaxDepth, static_cast<unsigned>(L.Busy.size()));
      ++L.Msgs;
      L.Words += Words;
      L.BusyNs += Hold;
      T = Depart + Hold;
    }
    return T;
  }

  std::vector<NetLinkStats> linkStats() const override {
    std::vector<NetLinkStats> Out;
    Out.reserve(Links.size());
    for (const Link &L : Links)
      Out.push_back({L.Name, L.Msgs, L.Words, L.BusyNs, L.MaxDepth});
    return Out;
  }

  const std::vector<uint64_t> *transferWords() const override {
    return &PairWords;
  }

protected:
  struct Link {
    std::string Name;
    double HopNs = 0.0;
    double WordNs = 0.0;
    double FreeAt = 0.0;
    uint64_t Msgs = 0;
    uint64_t Words = 0;
    double BusyNs = 0.0;
    unsigned MaxDepth = 0;
    std::deque<double> Busy; ///< Departure times not yet in the past.
  };

  unsigned addLink(std::string Name, double HopNs, double WordNs) {
    Link L;
    L.Name = std::move(Name);
    L.HopNs = HopNs;
    L.WordNs = WordNs;
    Links.push_back(std::move(L));
    return static_cast<unsigned>(Links.size() - 1);
  }

  std::vector<Link> Links;
  std::vector<uint64_t> PairWords;
};

/// One shared medium: every remote transfer serializes through the same
/// link. HopNs is the full NetDelay (one "hop" spans the machine), so an
/// uncontended bus behaves exactly like the ideal network plus bandwidth.
class BusNetwork final : public RoutedNetwork {
public:
  BusNetwork(unsigned NumNodes, const CostModel &C, double WordNs)
      : RoutedNetwork(Topology::Bus, NumNodes, C) {
    addLink("bus", C.NetDelay, WordNs);
  }

  std::vector<unsigned> route(unsigned From, unsigned To) const override {
    if (From == To)
      return {};
    return {0};
  }
};

/// 2-D grid (mesh) or rings (torus) over a Side x Rows arrangement where
/// Side = ceil(sqrt(N)) and the last row may be partial. Node n sits at
/// (x, y) = (n % Side, n / Side). Dimension-ordered routing; the order is
/// X-then-Y when y1 <= y2 and Y-then-X otherwise, which provably keeps
/// every intermediate node inside the (possibly partial) grid.
class GridNetwork final : public RoutedNetwork {
public:
  GridNetwork(Topology Topo, unsigned NumNodes, const CostModel &C,
              double HopNs, double WordNs)
      : RoutedNetwork(Topo, NumNodes, C), Wrap(Topo == Topology::Torus2D),
        Side(gridSide(NumNodes)), Rows((NumNodes + Side - 1) / Side) {
    // Directed link n -> m for every neighboring pair; the torus adds the
    // wraparound edges of each full-length ring (a 2-ring's wrap edge would
    // duplicate the direct one, so it is skipped).
    auto Key = [this](unsigned A, unsigned B) {
      return size_t(A) * numNodes() + B;
    };
    LinkAt.assign(size_t(numNodes()) * numNodes(), -1);
    auto Connect = [&](unsigned A, unsigned B) {
      if (LinkAt[Key(A, B)] >= 0)
        return;
      LinkAt[Key(A, B)] = static_cast<int>(
          addLink("n" + std::to_string(A) + "->" + std::to_string(B), HopNs,
                  WordNs));
    };
    for (unsigned N = 0; N != numNodes(); ++N) {
      unsigned X = N % Side, Y = N / Side;
      unsigned RowLen = rowLen(Y), ColLen = colLen(X);
      if (X + 1 < RowLen) {
        Connect(N, N + 1);
        Connect(N + 1, N);
      }
      if (Y + 1 < ColLen) {
        Connect(N, N + Side);
        Connect(N + Side, N);
      }
      if (Wrap && X == 0 && RowLen > 2) {
        Connect(N, N + RowLen - 1);
        Connect(N + RowLen - 1, N);
      }
      if (Wrap && Y == 0 && ColLen > 2) {
        Connect(N, N + (ColLen - 1) * Side);
        Connect(N + (ColLen - 1) * Side, N);
      }
    }
  }

  std::vector<unsigned> route(unsigned From, unsigned To) const override {
    std::vector<unsigned> Out;
    if (From == To)
      return Out;
    unsigned Y1 = From / Side;
    unsigned X2 = To % Side, Y2 = To / Side;
    unsigned Cur = From;
    auto Step = [&](unsigned Next) {
      int L = LinkAt[size_t(Cur) * numNodes() + Next];
      assert(L >= 0 && "route stepped over a missing link");
      Out.push_back(static_cast<unsigned>(L));
      Cur = Next;
    };
    auto WalkX = [&](unsigned TargetX) {
      unsigned Y = Cur / Side;
      unsigned L = rowLen(Y);
      while (Cur % Side != TargetX)
        Step(Y * Side + ringStep(Cur % Side, TargetX, L));
    };
    auto WalkY = [&](unsigned TargetY) {
      unsigned X = Cur % Side;
      unsigned L = colLen(X);
      while (Cur / Side != TargetY)
        Step(ringStep(Cur / Side, TargetY, L) * Side + X);
    };
    // The corner (X2, Y1) exists whenever Y1 <= Y2 (its id is bounded by
    // To's), and (X1, Y2) exists otherwise — pick the order accordingly.
    if (Y1 <= Y2) {
      WalkX(X2);
      WalkY(Y2);
    } else {
      WalkY(Y2);
      WalkX(X2);
    }
    return Out;
  }

private:
  static unsigned gridSide(unsigned N) {
    unsigned S = static_cast<unsigned>(std::ceil(std::sqrt(double(N))));
    return std::max(1u, S);
  }
  /// Length of row \p Y (the last row may be partial).
  unsigned rowLen(unsigned Y) const {
    return std::min(Side, numNodes() - Y * Side);
  }
  /// Height of column \p X (short by one when the last row stops before X).
  unsigned colLen(unsigned X) const {
    return Rows - (X >= rowLen(Rows - 1) ? 1 : 0);
  }
  /// Next coordinate from \p Cur toward \p Target on a line (mesh) or ring
  /// (torus) of length \p Len; the torus takes the shorter way around,
  /// breaking ties toward increasing coordinates.
  unsigned ringStep(unsigned Cur, unsigned Target, unsigned Len) const {
    if (!Wrap || Len <= 2)
      return Target > Cur ? Cur + 1 : Cur - 1;
    unsigned Fwd = (Target + Len - Cur) % Len;
    unsigned Bwd = (Cur + Len - Target) % Len;
    if (Fwd <= Bwd)
      return (Cur + 1) % Len;
    return (Cur + Len - 1) % Len;
  }

  bool Wrap;
  unsigned Side;
  unsigned Rows;
  std::vector<int> LinkAt; ///< Directed neighbor link index, -1 if absent.
};

/// Arity-4 fat tree: leaves are the nodes; the switch above leaf n at
/// level l is n / 4^l. A transfer climbs up-links to the lowest common
/// ancestor, then descends down-links. Each level's links halve WordNs
/// (double the bandwidth) relative to the one below — the "fat" part.
class FatTreeNetwork final : public RoutedNetwork {
public:
  FatTreeNetwork(unsigned NumNodes, const CostModel &C, double HopNs,
                 double WordNs)
      : RoutedNetwork(Topology::FatTree, NumNodes, C) {
    unsigned Entities = NumNodes; // entities at the level below the switches
    for (unsigned Level = 1; Entities > 1; ++Level) {
      double LevelWordNs = WordNs / double(1u << (Level - 1));
      UpBase.push_back(static_cast<unsigned>(Links.size()));
      for (unsigned Child = 0; Child != Entities; ++Child)
        addLink("up" + std::to_string(Level) + "." + std::to_string(Child),
                HopNs, LevelWordNs);
      DownBase.push_back(static_cast<unsigned>(Links.size()));
      for (unsigned Child = 0; Child != Entities; ++Child)
        addLink("dn" + std::to_string(Level) + "." + std::to_string(Child),
                HopNs, LevelWordNs);
      Entities = (Entities + 3) / 4;
    }
  }

  std::vector<unsigned> route(unsigned From, unsigned To) const override {
    std::vector<unsigned> Out;
    if (From == To)
      return Out;
    // Lowest common ancestor level: smallest l with From/4^l == To/4^l.
    unsigned Lca = 0;
    for (unsigned A = From, B = To; A != B; A >>= 2, B >>= 2)
      ++Lca;
    for (unsigned L = 1; L <= Lca; ++L)
      Out.push_back(UpBase[L - 1] + (From >> (2 * (L - 1))));
    for (unsigned L = Lca; L >= 1; --L)
      Out.push_back(DownBase[L - 1] + (To >> (2 * (L - 1))));
    return Out;
  }

private:
  std::vector<unsigned> UpBase;   ///< First up-link index per level.
  std::vector<unsigned> DownBase; ///< First down-link index per level.
};

} // namespace

std::unique_ptr<NetworkModel> createNetworkModel(Topology Topo,
                                                 unsigned NumNodes,
                                                 const CostModel &Costs,
                                                 double HopNs,
                                                 double LinkWordNs) {
  switch (Topo) {
  case Topology::Ideal:
    return std::make_unique<IdealNetwork>(NumNodes, Costs);
  case Topology::Bus:
    return std::make_unique<BusNetwork>(NumNodes, Costs, LinkWordNs);
  case Topology::Mesh2D:
  case Topology::Torus2D:
    return std::make_unique<GridNetwork>(Topo, NumNodes, Costs, HopNs,
                                         LinkWordNs);
  case Topology::FatTree:
    return std::make_unique<FatTreeNetwork>(NumNodes, Costs, HopNs,
                                            LinkWordNs);
  }
  return std::make_unique<IdealNetwork>(NumNodes, Costs);
}

} // namespace earthcc
