//===- Runtime.h - Simulated EARTH machine state ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional state of the simulated EARTH-MANNA machine: a global
/// address space over per-node local memories, runtime values, dynamic
/// operation counters, and machine configuration. Timing (EU/SU clocks,
/// the event queue) lives in the interpreter; this file is pure state.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_EARTH_RUNTIME_H
#define EARTHCC_EARTH_RUNTIME_H

#include "earth/CostModel.h"
#include "earth/NetworkModel.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace earthcc {

class TraceSink;
class CommProfiler;

/// A word address in the global address space: (node, word offset).
struct GlobalAddr {
  int32_t Node = -1;
  uint32_t Offset = 0;

  bool isNull() const { return Node < 0; }
  friend bool operator==(GlobalAddr A, GlobalAddr B) {
    return A.Node == B.Node && A.Offset == B.Offset;
  }
  std::string str() const {
    if (isNull())
      return "null";
    return "n" + std::to_string(Node) + ":" + std::to_string(Offset);
  }
};

/// A dynamically-typed runtime value (one machine word).
struct RtValue {
  enum class Kind { Undef, Int, Dbl, Ptr } K = Kind::Undef;
  int64_t I = 0;
  double D = 0.0;
  GlobalAddr P;

  static RtValue undef() { return RtValue(); }
  static RtValue makeInt(int64_t V) {
    RtValue R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static RtValue makeDbl(double V) {
    RtValue R;
    R.K = Kind::Dbl;
    R.D = V;
    return R;
  }
  static RtValue makePtr(GlobalAddr A) {
    RtValue R;
    R.K = Kind::Ptr;
    R.P = A;
    return R;
  }

  bool isUndef() const { return K == Kind::Undef; }

  /// Truthiness for conditions: nonzero / non-null.
  bool truthy() const {
    switch (K) {
    case Kind::Undef:
      return false;
    case Kind::Int:
      return I != 0;
    case Kind::Dbl:
      return D != 0.0;
    case Kind::Ptr:
      return !P.isNull();
    }
    return false;
  }

  std::string str() const {
    switch (K) {
    case Kind::Undef:
      return "<undef>";
    case Kind::Int:
      return std::to_string(I);
    case Kind::Dbl: {
      std::string S = std::to_string(D);
      return S;
    }
    case Kind::Ptr:
      return P.str();
    }
    return "<bad>";
  }
};

/// Dynamic counts of EARTH runtime operations, as the paper's Figure 10
/// reports them: read-data, write-data and blkmov operations.
struct OpCounters {
  uint64_t ReadData = 0;
  uint64_t WriteData = 0;
  uint64_t BlkMov = 0;
  uint64_t Atomic = 0;
  uint64_t WordsMoved = 0;   ///< Total words crossing the network.
  uint64_t LocalFallbacks = 0; ///< Remote primitives that hit local memory.
  uint64_t Spawns = 0;
  uint64_t CtxSwitches = 0;

  uint64_t total() const { return ReadData + WriteData + BlkMov; }
};

/// Which execution engine runs the simulation. Both produce bit-identical
/// simulated results (time, counters, traces, errors); they differ only in
/// host-side speed. Bytecode lowers each function once to a flat register
/// bytecode (see interp/Bytecode.h) and is the default; AST walks the
/// statement tree directly and remains as the reference implementation.
enum class ExecEngine { AST, Bytecode };

/// How the bytecode engine's inner loop dispatches opcodes. Purely a host
/// performance choice — both loops are generated from the same handler
/// bodies (interp/BytecodeExecLoop.inc) and produce bit-identical simulated
/// results, which the engine-equivalence sweep pins across the axis.
///
///  - ComputedGoto: direct-threaded dispatch via a label-address handler
///    table (GCC/Clang `&&label` extension). The default where available.
///  - Switch: the portable `switch` loop. The only loop compiled in when
///    the build forces portability (-DEARTHCC_PORTABLE_DISPATCH, see the
///    CMake option of the same name); requesting ComputedGoto in such a
///    build silently falls back to Switch.
enum class BcDispatch { ComputedGoto, Switch };

/// Whether this build carries the computed-goto loop at all (GCC/Clang and
/// not forced portable). When false, BcDispatch::ComputedGoto degrades to
/// the switch loop at run time.
inline constexpr bool computedGotoAvailable() {
#if !defined(EARTHCC_PORTABLE_DISPATCH) &&                                     \
    (defined(__GNUC__) || defined(__clang__))
  return true;
#else
  return false;
#endif
}

/// Process-wide default for MachineConfig::Dispatch: computed goto where the
/// build has it, unless the environment sets EARTHCC_DISPATCH=switch. The CI
/// legs use the variable to sweep whole test-suite runs over one loop
/// without touching every harness (same pattern as EARTHCC_FUSE).
inline BcDispatch defaultDispatch() {
  static const BcDispatch D = [] {
    const char *E = std::getenv("EARTHCC_DISPATCH");
    if (E && std::string_view(E) == "switch")
      return BcDispatch::Switch;
    return computedGotoAvailable() ? BcDispatch::ComputedGoto
                                   : BcDispatch::Switch;
  }();
  return D;
}

/// Process-wide default for MachineConfig::Fuse: on, unless the environment
/// sets EARTHCC_FUSE=off|0. The CI sanitizer leg uses the variable to sweep
/// the whole test suite over the unfused stream without touching every
/// harness.
inline bool defaultFuseEnabled() {
  static const bool On = [] {
    const char *E = std::getenv("EARTHCC_FUSE");
    return !(E && (std::string_view(E) == "off" || std::string_view(E) == "0"));
  }();
  return On;
}

/// Machine configuration.
struct MachineConfig {
  unsigned NumNodes = 1;
  CostModel Costs;
  /// Interconnect topology (see earth/NetworkModel.h). Ideal is the paper's
  /// constant-latency EARTH-MANNA network and the default (EARTHCC_TOPOLOGY
  /// overrides, same pattern as EARTHCC_FUSE/EARTHCC_DISPATCH). Unlike the
  /// Engine/Fuse/Dispatch knobs this CHANGES simulated results, so it is
  /// request-key material in driver/Request.cpp.
  Topology Topo = defaultTopology();
  /// Logical-index -> node mapping for `@node expr` placement (cyclic is
  /// the historical `index % nodes`). Changes simulated results; keyed.
  Distribution Dist = Distribution::Cyclic;
  /// Per-hop link latency of the routed topologies, in simulated ns
  /// (mesh2d/torus2d/fattree; the bus charges a full NetDelay per crossing).
  double NetHopNs = 450.0;
  /// Per-word link occupancy (bandwidth term) of non-ideal links, in
  /// simulated ns per payload word.
  double NetLinkWordNs = 160.0;
  /// Indices per block for Distribution::Block.
  unsigned DistBlockSize = 8;
  /// Execution engine selection (see ExecEngine). Purely a host-performance
  /// choice; simulated results do not depend on it.
  ExecEngine Engine = ExecEngine::Bytecode;
  /// Superinstruction fusion (bytecode engine only). When on, the engine
  /// dispatches the fused stream, whose superinstructions execute several
  /// walker steps per dispatch while accounting each one exactly — simulated
  /// time, counters, step counts and traces are bit-identical either way.
  /// Off forces the unfused one-instruction-per-step stream (differential
  /// testing). Host-performance choice only.
  bool Fuse = defaultFuseEnabled();
  /// Bytecode inner-loop dispatch strategy (see BcDispatch). Host
  /// performance choice only; simulated results are bit-identical across
  /// both loops.
  BcDispatch Dispatch = defaultDispatch();
  /// Sequential mode: every access is a plain local access (no EARTH
  /// primitives at all) — the paper's "Sequential C" baseline.
  bool SequentialMode = false;
  /// Permit split-phase reads of the null address (returning zero) so that
  /// speculatively hoisted reads do not fault.
  bool AllowNullReads = false;
  uint64_t MaxSteps = 500'000'000; ///< Interpreter fuel.
  /// EU scheduling quantum in interpreter steps. EARTH threads are fine
  /// grained (split at every remote operation), so a coarse fiber must not
  /// monopolize its node's EU; after this many steps a fiber re-enters the
  /// ready queue behind same-time peers. 0 disables preemption.
  unsigned EUQuantum = 64;
  /// Observability: when set, the interpreter emits a structured event for
  /// every split-phase read/write, blkmov, SU service slice, EU fiber
  /// slice, and sync-slot signal (node- and cycle-attributed). Non-owning;
  /// null means tracing off and costs nothing on the hot path.
  TraceSink *Trace = nullptr;
  /// Per-site communication profiling: when set, both engines accumulate
  /// message counts, words moved, latency histograms and a per-node traffic
  /// matrix keyed by CommSites ids (simulated clock, so the profile is
  /// engine- and fusion-invariant). Non-owning; null means profiling off
  /// and costs one branch per comm operation.
  CommProfiler *Profiler = nullptr;
};

/// Per-node memory plus allocation; the aggregate is the global address
/// space.
class EarthMemory {
public:
  explicit EarthMemory(unsigned NumNodes) : Heaps(NumNodes) {
    // Offset 0 is reserved so that a valid address is never (n, 0) — it
    // keeps "null" distinguishable in diagnostics.
    for (auto &H : Heaps)
      H.resize(1);
  }

  unsigned numNodes() const { return static_cast<unsigned>(Heaps.size()); }

  GlobalAddr allocate(unsigned Node, unsigned Words) {
    assert(Node < Heaps.size() && "allocation on nonexistent node");
    assert(Words > 0 && "zero-sized allocation");
    GlobalAddr A;
    A.Node = static_cast<int32_t>(Node);
    A.Offset = static_cast<uint32_t>(Heaps[Node].size());
    Heaps[Node].resize(Heaps[Node].size() + Words);
    return A;
  }

  bool valid(GlobalAddr A, unsigned Words = 1) const {
    return !A.isNull() && static_cast<size_t>(A.Node) < Heaps.size() &&
           A.Offset + Words <= Heaps[A.Node].size();
  }

  RtValue &word(GlobalAddr A) {
    assert(valid(A) && "bad address");
    return Heaps[A.Node][A.Offset];
  }
  const RtValue &word(GlobalAddr A) const {
    assert(valid(A) && "bad address");
    return Heaps[A.Node][A.Offset];
  }

  /// Total words allocated on \p Node (for distribution diagnostics).
  size_t allocatedWords(unsigned Node) const { return Heaps[Node].size(); }

private:
  std::vector<std::vector<RtValue>> Heaps;
};

} // namespace earthcc

#endif // EARTHCC_EARTH_RUNTIME_H
