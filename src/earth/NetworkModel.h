//===- NetworkModel.h - Pluggable interconnect model for earthsim ---------===//
//
// Part of the earthcc project.
//
// The machine model's network layer. Every latency an engine charges for
// crossing the interconnect — remote reads/writes/blkmovs, atomics, fiber
// migration — flows through one interface, transferDone(), so the AST
// walker and the bytecode engine share a single source of truth for the
// arithmetic and the topology is a pluggable run-time choice:
//
//   ideal    — the paper's EARTH-MANNA abstraction: a constant NetDelay per
//              crossing, no contention. Bit-identical to the historical
//              inline arithmetic; the engine-equivalence sweep pins it.
//   bus      — one shared medium serializing every transfer (FIFO occupancy
//              in simulated time).
//   mesh2d   — 2-D grid, dimension-ordered routing, hop latency plus
//              per-link FIFO bandwidth queues.
//   torus2d  — mesh2d with wraparound rings (shortest direction).
//   fattree  — arity-4 tree whose uplinks double in bandwidth per level.
//
// Unlike the engine/fuse/dispatch knobs, topology and distribution CHANGE
// simulated results, so both are request-key material (driver/Request.cpp).
//
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_EARTH_NETWORKMODEL_H
#define EARTHCC_EARTH_NETWORKMODEL_H

#include "earth/CostModel.h"
#include "support/CommProfiler.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

namespace earthcc {

/// Interconnect shape of the simulated machine.
enum class Topology { Ideal, Bus, Mesh2D, Torus2D, FatTree };

/// How logical placement indices (`@node expr`, pmalloc@node) map onto
/// physical nodes. Cyclic is the historical `index % nodes` mapping.
enum class Distribution { Cyclic, Block };

/// Hard ceiling on --nodes: keeps per-pair matrices and link tables at a
/// sane size (1024 nodes = 8 MiB of pair counters) and turns typo-sized
/// requests into a diagnostic instead of an allocation storm.
inline constexpr unsigned MaxSimNodes = 1024;

const char *topologyName(Topology T);
const char *topologyChoices(); // "ideal|bus|mesh2d|torus2d|fattree"
bool parseTopology(std::string_view V, Topology &Out);

const char *distributionName(Distribution D);
const char *distributionChoices(); // "cyclic|block"
bool parseDistribution(std::string_view V, Distribution &Out);

/// Process-default topology: EARTHCC_TOPOLOGY if set to a valid name
/// (same pattern as EARTHCC_FUSE / EARTHCC_DISPATCH), else ideal.
inline Topology defaultTopology() {
  static const Topology T = [] {
    Topology Out = Topology::Ideal;
    if (const char *E = std::getenv("EARTHCC_TOPOLOGY"))
      parseTopology(E, Out);
    return Out;
  }();
  return T;
}

/// Maps a logical placement index onto a physical node under \p D. Both
/// engines' `@node` handling routes through this (the single place the
/// distribution knob is interpreted).
inline unsigned placeIndex(uint64_t Idx, unsigned NumNodes, Distribution D,
                           unsigned BlockSize) {
  if (D == Distribution::Block)
    return static_cast<unsigned>((Idx / std::max(1u, BlockSize)) % NumNodes);
  return static_cast<unsigned>(Idx % NumNodes);
}

/// Timing of one split-phase SU transaction as computed by
/// NetworkModel::transaction().
struct NetTransaction {
  double SuStart; ///< Remote SU begins servicing the request.
  double SuEnd;   ///< Remote SU done (its FIFO clock advances to here).
  double DoneAt;  ///< Reply back at the requesting node.
};

/// Abstract interconnect. Owns the per-node SU FIFO clocks (previously a
/// member of each engine) plus whatever per-link state the topology needs.
/// All state advances in *simulated* time only; models are deterministic.
class NetworkModel {
public:
  virtual ~NetworkModel();

  Topology topology() const { return Topo; }
  unsigned numNodes() const { return static_cast<unsigned>(SUClock.size()); }

  /// When a message of \p Words payload words injected at \p From at
  /// simulated time \p IssueTime is fully delivered at \p To. Mutates link
  /// occupancy state, so calls must be made in the engine's event order.
  virtual double transferDone(unsigned From, unsigned To, uint64_t Words,
                              double IssueTime) = 0;

  /// One full split-phase remote transaction: request travels From -> To
  /// (\p FwdWords payload), the target SU services it FIFO (\p Service plus
  /// PerWord * \p ExtraWords), and the reply travels back (\p BackWords).
  /// THE single source of truth for the latency arithmetic both engines
  /// used to duplicate inline.
  NetTransaction transaction(double IssueEnd, unsigned From, unsigned To,
                             double Service, double ExtraWords,
                             uint64_t FwdWords, uint64_t BackWords) {
    double Arrival = transferDone(From, To, FwdWords, IssueEnd);
    double SuStart = std::max(SUClock[To], Arrival);
    double SuEnd = SuStart + Service + Costs.PerWord * ExtraWords;
    SUClock[To] = SuEnd;
    double DoneAt = transferDone(To, From, BackWords, SuEnd);
    return {SuStart, SuEnd, DoneAt};
  }

  /// Per-link occupancy statistics (empty for the ideal network, which has
  /// no links to contend for).
  virtual std::vector<NetLinkStats> linkStats() const { return {}; }

  /// The directed link indices a transfer From -> To traverses, in order
  /// (empty for the ideal network). Pure — exposed so conservation tests
  /// can re-route the pair matrix over a fresh identical model.
  virtual std::vector<unsigned> route(unsigned /*From*/,
                                      unsigned /*To*/) const {
    return {};
  }

  /// NumNodes x NumNodes matrix (row = source) of payload words injected,
  /// or nullptr for the ideal network.
  virtual const std::vector<uint64_t> *transferWords() const {
    return nullptr;
  }

protected:
  NetworkModel(Topology Topo, unsigned NumNodes, const CostModel &Costs)
      : Topo(Topo), Costs(Costs), SUClock(NumNodes, 0.0) {}

  Topology Topo;
  CostModel Costs;
  std::vector<double> SUClock; ///< Per-node SU FIFO clock (simulated ns).
};

/// Builds the model for \p Topo over \p NumNodes nodes. \p HopNs is the
/// per-hop link latency of the routed topologies (bus uses NetDelay for its
/// single hop so a 1-node-to-1-node bus degenerates sensibly); \p LinkWordNs
/// is the per-word link occupancy (bandwidth term) of every non-ideal link.
std::unique_ptr<NetworkModel> createNetworkModel(Topology Topo,
                                                 unsigned NumNodes,
                                                 const CostModel &Costs,
                                                 double HopNs,
                                                 double LinkWordNs);

} // namespace earthcc

#endif // EARTHCC_EARTH_NETWORKMODEL_H
