//===- CostModel.h - EARTH-MANNA timing parameters --------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing parameters of the simulated EARTH-MANNA machine, calibrated so
/// the simulator reproduces the paper's Table I exactly:
///
///   Operation   | Sequential | Pipelined
///   ------------|------------|----------
///   Read word   |   7109 ns  |  1908 ns
///   Write word  |   6458 ns  |  1749 ns
///   Blkmov word |   9700 ns  |  2602 ns
///
/// "Pipelined" is the EU issue cost of the split-phase operation; the
/// remainder of the sequential figure is network transit plus SU service.
/// The MANNA network moves 50 MB/s per direction, i.e. 160 ns per 8-byte
/// word, which sets the per-word cost of larger block moves.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_EARTH_COSTMODEL_H
#define EARTHCC_EARTH_COSTMODEL_H

namespace earthcc {

/// All times in nanoseconds.
struct CostModel {
  // EU issue costs of split-phase operations (Table I, pipelined column).
  double ReadIssue = 1908.0;
  double WriteIssue = 1749.0;
  double BlkIssue = 2602.0;

  // One-way network transit (link + interface).
  double NetDelay = 1800.0;

  // SU service per request at the remote node; calibrated so that
  // issue + 2*NetDelay + service equals the sequential column of Table I.
  double SUReadService = 1601.0;   // 1908 + 3600 + 1601 = 7109.
  double SUWriteService = 1109.0;  // 1749 + 3600 + 1109 = 6458.
  double SUBlkService = 3338.0;    // 2602 + 3600 + 3338 + 160*1 = 9700.
  double SUAtomicService = 1601.0;

  // Extra network/memory cost per word of a block transfer (50 MB/s).
  double PerWord = 160.0;

  // A "remote" primitive that happens to hit node-local memory: no network
  // or SU involvement, but still a runtime call.
  double LocalFallback = 250.0;
  // Per-word cost of a node-local block move (streaming memcpy).
  double LocalBlkPerWord = 4.0;

  // EU execution costs (50 MHz i860: 20 ns per cycle).
  double StmtCost = 40.0;        ///< One SIMPLE basic statement.
  double CopyCost = 10.0;        ///< Plain register-to-register copy.
  double LocalAccess = 20.0;     ///< Extra for a local load/store.
  double CallCost = 200.0;       ///< Local function invocation.
  double ReturnCost = 100.0;
  double SpawnCost = 600.0;      ///< Creating a fiber / remote invocation.
  double CtxSwitch = 400.0;      ///< EU picks a different fiber.

  /// End-to-end latency of one remote read (no contention).
  double sequentialRead() const {
    return ReadIssue + 2 * NetDelay + SUReadService;
  }
  double sequentialWrite() const {
    return WriteIssue + 2 * NetDelay + SUWriteService;
  }
  double sequentialBlk(unsigned Words) const {
    return BlkIssue + 2 * NetDelay + SUBlkService + PerWord * Words;
  }
};

} // namespace earthcc

#endif // EARTHCC_EARTH_COSTMODEL_H
