//===- Interp.h - Execute SIMPLE programs on simulated EARTH ----*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A discrete-event interpreter that runs SIMPLE programs on the simulated
/// EARTH-MANNA machine. Key modeling decisions (see DESIGN.md):
///
///  - *Split-phase remote operations with dataflow synchronization.* A
///    remote read charges its issue cost to the EU and marks the target
///    variable's slot available at the transaction's completion time
///    (issue + network + SU service + network). The fiber only blocks when
///    a statement *uses* a value that is not yet available — so programs
///    whose reads are hoisted overlap communication with computation, and
///    unoptimized programs pay the full sequential latency. This is
///    exactly the mechanism the paper's optimization exploits.
///
///  - *Fibers and non-preemptive EUs.* Parallel sequences and forall loops
///    spawn fibers; each node's EU runs one fiber until it blocks (EARTH
///    runs threads to completion), then switches (with a context-switch
///    cost) to the next ready fiber. Placed calls (@OWNER_OF, @node, @HOME)
///    migrate the calling fiber to the target node for the callee's
///    duration.
///
///  - *SU contention.* Each node's synchronization unit is a FIFO server;
///    its queue time is folded into each transaction's completion time.
///
///  - *Write synchronization.* Remote writes are fire-and-forget; their
///    completion times accumulate into the enclosing activation and a fiber
///    only settles (signals its parent) once its outstanding writes are
///    done, mirroring EARTH sync slots.
///
/// Memory effects are applied immediately (EARTH-C's non-interference rule
/// makes values independent of timing), so results are deterministic and
/// identical across node counts and optimization levels — which the test
/// suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_INTERP_H
#define EARTHCC_INTERP_INTERP_H

#include "earth/Runtime.h"
#include "simple/Function.h"

#include <string>
#include <vector>

namespace earthcc {

/// Outcome of one simulated program run.
struct RunResult {
  bool OK = false;
  std::string Error;            ///< Set when OK is false.
  double TimeNs = 0.0;          ///< Completion time of the entry fiber.
  RtValue ExitValue;            ///< Entry function's return value.
  OpCounters Counters;
  std::vector<std::string> Output; ///< print() lines, in emission order.
  uint64_t StepsExecuted = 0;
  std::vector<size_t> WordsPerNode; ///< Heap words allocated per node.

  /// Host-side dispatch metrics (NOT part of the simulated result, so the
  /// engine-equivalence sweep does not compare them): number of fused
  /// superinstruction dispatches that executed more than one step, and the
  /// total steps those dispatches covered. Zero for the AST engine and for
  /// bytecode runs with MachineConfig::Fuse off.
  uint64_t FusedDispatches = 0;
  uint64_t FusedSteps = 0;
};

/// Runs \p Entry (default "main") of \p M on a simulated machine described
/// by \p Config. \p Args supplies the entry function's parameters.
RunResult runProgram(const Module &M, const MachineConfig &Config,
                     const std::string &Entry = "main",
                     const std::vector<RtValue> &Args = {});

} // namespace earthcc

#endif // EARTHCC_INTERP_INTERP_H
