//===- Bytecode.cpp - Bytecode execution engine ----------------------------===//
//
// Part of the earthcc project.
//
// The register-bytecode twin of the AST walker in Interp.cpp. Every timing
// decision, counter increment, trace emission and error message mirrors the
// walker exactly — the engine-equivalence tests assert bit-identical
// results. What changes is purely the mechanics: dispatch over a flat
// instruction stream instead of a statement tree, and frame storage as one
// contiguous word image indexed by precomputed slots instead of a
// per-variable std::map of heap vectors.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"

#include "interp/EngineCommon.h"
#include "interp/Interp.h"
#include "support/CommProfiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>

// Preprocessor mirror of computedGotoAvailable() (earth/Runtime.h): whether
// this translation unit compiles the direct-threaded loop at all.
#if !defined(EARTHCC_PORTABLE_DISPATCH) &&                                     \
    (defined(__GNUC__) || defined(__clang__))
#define EARTHCC_HAVE_COMPUTED_GOTO 1
#else
#define EARTHCC_HAVE_COMPUTED_GOTO 0
#endif

using namespace earthcc;
using namespace earthcc::interp;

namespace {

//===----------------------------------------------------------------------===//
// Fiber state.
//===----------------------------------------------------------------------===//

/// The flat activation image: one word vector for every slot's storage plus
/// one availability time per slot. Parallel-sequence branches share the
/// image (shared_ptr); forall iterations copy it — exactly the sharing the
/// AST walker gets from its per-variable map.
struct BcLocals {
  std::vector<RtValue> Words;
  std::vector<double> Avail;
};

struct Fiber;

/// Join counter for one parallel-construct instance.
struct JoinCtx {
  int Outstanding = 0;
  Fiber *Waiter = nullptr;
  double LatestEnd = 0.0;
};

/// One function activation. PC indexes BF->Code; Joins holds the join
/// contexts of the parallel constructs currently open in this frame
/// (properly nested, so a stack suffices).
struct BcFrame {
  const BytecodeFunction *BF = nullptr;
  unsigned Node = 0;
  int32_t PC = 0;
  std::shared_ptr<BcLocals> Locals;
  const Var *ResultV = nullptr; ///< Result variable in the caller frame.
  int32_t ResultSlot = -1;      ///< Its slot there (-1: none/no storage).
  double WriteSync = 0.0;       ///< Completion of outstanding writes.
  bool Migrated = false;        ///< Entered via a placed call.
  std::vector<std::shared_ptr<JoinCtx>> Joins;
};

struct Fiber {
  uint64_t Id = 0;
  std::vector<BcFrame> Stack;
  std::shared_ptr<JoinCtx> ParentJoin;
  bool Done = false;
};

struct Event {
  double T = 0.0;
  uint64_t Seq = 0;
  Fiber *F = nullptr;
  friend bool operator>(const Event &A, const Event &B) {
    if (A.T != B.T)
      return A.T > B.T;
    return A.Seq > B.Seq;
  }
};

/// Same meaning as the AST walker's StepStatus; see Interp.cpp.
enum class StepStatus { Continue, BlockRetry, YieldAt, WaitJoin, FiberDone };

//===----------------------------------------------------------------------===//
// Engine.
//===----------------------------------------------------------------------===//

class BcInterp {
public:
  BcInterp(const BytecodeModule &BM, const MachineConfig &Cfg)
      : BM(BM), Cfg(Cfg), Fuse(Cfg.Fuse),
        Threaded(computedGotoAvailable() &&
                 Cfg.Dispatch == BcDispatch::ComputedGoto),
        Trc(Cfg.Trace), Prof(Cfg.Profiler),
        Mem(std::max(1u, Cfg.NumNodes)),
        Net(createNetworkModel(Cfg.Topo, Mem.numNodes(), Cfg.Costs,
                               Cfg.NetHopNs, Cfg.NetLinkWordNs)),
        EUClock(Mem.numNodes(), 0.0), LastFiber(Mem.numNodes(), nullptr) {}

  RunResult run(const std::string &Entry, const std::vector<RtValue> &Args);

private:
  const CostModel &cost() const { return Cfg.Costs; }

  //===--------------------------------------------------------------------===
  // Tracing (identical emission sites and payloads to the AST walker).
  //===--------------------------------------------------------------------===

  void traceSpan(const char *Name, const char *Cat, double Ts, double Dur,
                 unsigned Pid, uint32_t Tid,
                 std::vector<TraceEvent::Arg> Args = {}) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.Ph = 'X';
    E.TsNs = Ts;
    E.DurNs = Dur;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args = std::move(Args);
    Trc->event(E);
  }

  void traceInstant(const char *Name, const char *Cat, double Ts,
                    unsigned Pid, uint32_t Tid,
                    std::vector<TraceEvent::Arg> Args = {}) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.Ph = 'i';
    E.TsNs = Ts;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args = std::move(Args);
    Trc->event(E);
  }

  void traceClock(const char *Name, double Ts, unsigned Pid, uint32_t Tid,
                  double Value) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = "clock";
    E.Ph = 'C';
    E.TsNs = Ts;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args.emplace_back("ns", static_cast<uint64_t>(Value));
    Trc->event(E);
  }

  //===--------------------------------------------------------------------===
  // Slots and values.
  //===--------------------------------------------------------------------===

  [[noreturn]] void noStorage(const BcFrame &Fr, const Var *V) {
    fail("variable '" + V->name() + "' has no storage in '" +
         Fr.BF->Fn->name() + "'");
  }

  RtValue &word(BcFrame &Fr, int32_t Slot, uint32_t Extra = 0) {
    return Fr.Locals->Words[Fr.BF->Slots[Slot].WordOff + Extra];
  }

  double availOf(BcFrame &Fr, const BcOperand &O) {
    if (O.Kind != BcOperand::K::Slot)
      return 0.0;
    if (O.Slot < 0)
      noStorage(Fr, O.V);
    return Fr.Locals->Avail[O.Slot];
  }

  RtValue valueOf(BcFrame &Fr, const BcOperand &O) {
    if (O.Kind != BcOperand::K::Slot)
      return O.Const;
    if (O.Slot < 0)
      noStorage(Fr, O.V);
    const RtValue &V = word(Fr, O.Slot);
    if (V.isUndef())
      fail("read of undefined variable '" + O.V->name() + "' in '" +
           Fr.BF->Fn->name() + "'");
    return V;
  }

  /// \p Slot must be valid; \p V is its variable (for diagnostics).
  GlobalAddr pointerValue(BcFrame &Fr, int32_t Slot, const Var *V) {
    const RtValue &Val = word(Fr, Slot);
    if (Val.isUndef())
      fail("dereference of undefined pointer '" + V->name() + "'");
    if (Val.K == RtValue::Kind::Int && Val.I == 0)
      return GlobalAddr(); // NULL stored into a pointer.
    if (Val.K != RtValue::Kind::Ptr)
      fail("dereference of non-pointer value in '" + V->name() + "'");
    return Val.P;
  }

  /// Hands out a pooled activation image wrapped in a shared_ptr whose
  /// deleter parks it on the free list instead of freeing: activations are
  /// created at extreme rates (one per call, one per forall iteration), and
  /// recycling keeps the slot/avail vector capacity, so a steady-state
  /// activation allocates only the control block.
  std::shared_ptr<BcLocals> acquireLocals() {
    BcLocals *L;
    if (LocalsFree.empty()) {
      LocalsArena.emplace_back();
      L = &LocalsArena.back();
    } else {
      L = LocalsFree.back();
      LocalsFree.pop_back();
    }
    return std::shared_ptr<BcLocals>(
        L, [this](BcLocals *P) { LocalsFree.push_back(P); });
  }

  /// Pooled copy of an activation image (forall iterations capture the
  /// driver frame by value).
  std::shared_ptr<BcLocals> copyLocals(const BcLocals &Src) {
    auto L = acquireLocals();
    *L = Src;
    return L;
  }

  /// Builds the flat activation image of \p BF on \p Node, allocating
  /// memory cells for function-scope shared variables in slot order (the
  /// same order the AST walker's makeLocals allocates them).
  std::shared_ptr<BcLocals> makeLocals(const BytecodeFunction *BF,
                                       unsigned Node) {
    auto L = acquireLocals();
    L->Words.assign(BF->FrameWords, RtValue());
    L->Avail.assign(BF->Slots.size(), 0.0);
    // SharedCellOffs lists the shared-variable cells in slot order — the
    // same allocation order the per-slot scan (and the AST walker's
    // makeLocals) produced.
    for (uint32_t Off : BF->SharedCellOffs)
      L->Words[Off] = RtValue::makePtr(Mem.allocate(Node, 1));
    return L;
  }

  GlobalAddr sharedAddress(BcFrame &Fr, const BcInsn &I) {
    if (I.A >= 0) {
      const RtValue &Cell = word(Fr, I.A);
      assert(Cell.K == RtValue::Kind::Ptr && "shared var has no cell");
      return Cell.P;
    }
    if (I.B >= 0)
      return GlobalSharedAddrs[I.B];
    noStorage(Fr, castStmt<AtomicStmt>(*I.Src).SharedVar);
  }

  //===--------------------------------------------------------------------===
  // Remote transaction timing (SU is a FIFO server per node).
  //===--------------------------------------------------------------------===

  /// \p SuLabel is a pre-interned "su:<op>" literal (EngineCommon.h), so
  /// tracing builds no strings here.
  ///
  /// The latency arithmetic lives in NetworkModel::transaction()
  /// (earth/NetworkModel.h) — the single source of truth shared with the
  /// AST walker's identically-named wrapper in Interp.cpp, so the two
  /// engines cannot drift.
  double transactionComplete(double IssueEnd, unsigned From, unsigned To,
                             double Service, double ExtraWords,
                             uint64_t FwdWords, uint64_t BackWords,
                             const char *SuLabel) {
    NetTransaction Tx = Net->transaction(IssueEnd, From, To, Service,
                                         ExtraWords, FwdWords, BackWords);
    if (Trc) {
      traceSpan(SuLabel, "su", Tx.SuStart, Tx.SuEnd - Tx.SuStart, To,
                TraceTidSU);
      traceClock("su-clock", Tx.SuEnd, To, TraceTidSU, Tx.SuEnd);
    }
    return Tx.DoneAt;
  }

  //===--------------------------------------------------------------------===
  // Conditions (Br / LoopCond / ForallCond encode the pure RValue inline).
  //===--------------------------------------------------------------------===

  double condAvail(BcFrame &Fr, const BcInsn &I) {
    switch (static_cast<RValueKind>(I.RK)) {
    case RValueKind::Opnd:
    case RValueKind::Unary:
      return availOf(Fr, I.X);
    case RValueKind::Binary:
      return std::max(availOf(Fr, I.X), availOf(Fr, I.Y));
    default:
      fail("condition with memory access");
    }
  }

  RtValue condValue(BcFrame &Fr, const BcInsn &I) {
    switch (static_cast<RValueKind>(I.RK)) {
    case RValueKind::Opnd:
      return valueOf(Fr, I.X);
    case RValueKind::Unary:
      return evalUnary(static_cast<UnaryOp>(I.Sub), valueOf(Fr, I.X));
    case RValueKind::Binary:
      return evalBinary(static_cast<BinaryOp>(I.Sub), valueOf(Fr, I.X),
                        valueOf(Fr, I.Y));
    default:
      fail("condition with memory access");
    }
  }

  //===--------------------------------------------------------------------===
  // Scheduling.
  //===--------------------------------------------------------------------===

  void schedule(Fiber *F, double T) { Q.push({T, ++EventSeq, F}); }

  /// Step budget for a fused dispatch: how many consecutive steps could run
  /// before the quantum check would preempt (StepsThisRun + k <= EUQuantum)
  /// or the fuel check would fire (Steps + k - 1 <= MaxSteps; the step that
  /// reached the fused opcode is already billed). A superinstruction that
  /// cannot fit executes only the steps that do, so preemption and fuel
  /// exhaustion land on exactly the same step as unfused stepping. Only the
  /// fused handlers consult this, so it is computed there, not per step.
  unsigned fusedBudget(unsigned StepsThisRun) const {
    uint64_t FuelLeft = Cfg.MaxSteps - Steps + 1;
    uint64_t QuantumLeft =
        Cfg.EUQuantum ? Cfg.EUQuantum - StepsThisRun : FuelLeft;
    return static_cast<unsigned>(
        std::min<uint64_t>(std::min(FuelLeft, QuantumLeft), 0xffffffffu));
  }

  Fiber *newFiber() {
    Fibers.push_back(std::make_unique<Fiber>());
    Fibers.back()->Id = Fibers.size();
    // Growing the frame stack move-constructs every frame below (two
    // refcount bumps per frame for the Locals image); one up-front reserve
    // covers the call depths the workloads actually reach.
    Fibers.back()->Stack.reserve(8);
    return Fibers.back().get();
  }

  void finishFiber(Fiber *F, double End, unsigned Node) {
    F->Done = true;
    if (F == MainFiber)
      EndTime = End;
    if (auto Join = F->ParentJoin) {
      --Join->Outstanding;
      Join->LatestEnd = std::max(Join->LatestEnd, End);
      if (Trc)
        traceInstant("sync-signal", "sync", End, Node, TraceTidEU,
                     {{"fiber", F->Id}, {"outstanding", Join->Outstanding}});
      if (Join->Outstanding == 0 && Join->Waiter) {
        Fiber *W = Join->Waiter;
        Join->Waiter = nullptr;
        schedule(W, Join->LatestEnd);
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Cold-path diagnostics: recover variable names from the source
  // statement when an encoded slot is -1 (variable without frame storage).
  //===--------------------------------------------------------------------===

  [[noreturn]] void noStorageAssignBase(BcFrame &Fr, const BcInsn &I) {
    const auto &A = castStmt<AssignStmt>(*I.Src);
    switch (A.R->kind()) {
    case RValueKind::Load:
      noStorage(Fr, static_cast<const LoadRV &>(*A.R).Base);
    case RValueKind::FieldRead:
      noStorage(Fr, static_cast<const FieldReadRV &>(*A.R).StructVar);
    case RValueKind::AddrOfField:
      noStorage(Fr, static_cast<const AddrOfFieldRV &>(*A.R).Base);
    default:
      fail("assignment base variable has no storage");
    }
  }

  [[noreturn]] void noStorageAssignTarget(BcFrame &Fr, const BcInsn &I) {
    noStorage(Fr, castStmt<AssignStmt>(*I.Src).L.V);
  }

  //===--------------------------------------------------------------------===
  // Basic-instruction execution. Each mirrors its exec* twin in Interp.cpp
  // line for line; PC handling lives in step().
  //===--------------------------------------------------------------------===

  StepStatus execAssign(BcFrame &Fr, const BcInsn &I, double &Now,
                        double &BlockTime) {
    const auto RK = static_cast<RValueKind>(I.RK);
    const auto LK = static_cast<LValueKind>(I.LK);
    double Need = 0.0;
    switch (RK) {
    case RValueKind::Opnd:
    case RValueKind::Unary:
      Need = availOf(Fr, I.X);
      break;
    case RValueKind::Binary:
      Need = std::max(availOf(Fr, I.X), availOf(Fr, I.Y));
      break;
    case RValueKind::Load:
    case RValueKind::FieldRead:
    case RValueKind::AddrOfField:
      if (I.A < 0)
        noStorageAssignBase(Fr, I);
      Need = Fr.Locals->Avail[I.A];
      break;
    }
    if (LK == LValueKind::Store) {
      if (I.Dst < 0)
        noStorageAssignTarget(Fr, I);
      Need = std::max(Need, Fr.Locals->Avail[I.Dst]);
    }
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    // Loads: the one possibly split-phase read form.
    if (RK == RValueKind::Load) {
      assert(LK == LValueKind::Var && "load must target a variable");
      if (I.Dst < 0)
        noStorageAssignTarget(Fr, I);
      const Var *BaseV = Fr.BF->Slots[I.A].V;
      GlobalAddr Addr = pointerValue(Fr, I.A, BaseV);
      if (Addr.isNull()) {
        if (!Cfg.AllowNullReads)
          fail("null pointer read via '" + BaseV->name() + "' in '" +
               Fr.BF->Fn->name() + "'");
        Now += cost().ReadIssue;
        word(Fr, I.Dst) = RtValue::makeInt(0);
        Fr.Locals->Avail[I.Dst] = Now;
        return StepStatus::Continue;
      }
      Addr.Offset += I.Off;
      if (!Mem.valid(Addr))
        fail("out-of-bounds read at " + Addr.str());

      const auto Loc = static_cast<Locality>(I.Loc);
      if (Cfg.SequentialMode || Loc == Locality::Local) {
        if (!Cfg.SequentialMode && Loc == Locality::Local &&
            Addr.Node != static_cast<int32_t>(Fr.Node))
          fail("'local' access to remote address " + Addr.str() +
               " from node " + std::to_string(Fr.Node));
        Now += cost().StmtCost + cost().LocalAccess;
        word(Fr, I.Dst) = Mem.word(Addr);
        Fr.Locals->Avail[I.Dst] = Now;
        return StepStatus::Continue;
      }

      ++Ctr.ReadData;
      if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
        ++Ctr.LocalFallbacks;
        if (Trc)
          traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                       {{"op", "read-data"}});
        if (Prof)
          Prof->recordLocal(I.Site, CommOpKind::Read, Fr.Node, 1);
        Now += cost().LocalFallback;
        word(Fr, I.Dst) = Mem.word(Addr);
        Fr.Locals->Avail[I.Dst] = Now;
        return StepStatus::Continue;
      }
      double IssueStart = Now;
      Now += cost().ReadIssue;
      ++Ctr.WordsMoved;
      double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                          cost().SUReadService, 0.0,
                                          /*FwdWords=*/0, /*BackWords=*/1,
                                          SuReadDataLabel);
      if (Trc)
        traceSpan("read-data", "comm", IssueStart, DoneAt - IssueStart,
                  Fr.Node, TraceTidComm,
                  {{"to", Addr.Node}, {"addr", Addr.str()}});
      if (Prof)
        Prof->record(I.Site, CommOpKind::Read, Fr.Node, Addr.Node, 1,
                     IssueStart, DoneAt);
      word(Fr, I.Dst) = Mem.word(Addr);
      Fr.Locals->Avail[I.Dst] = DoneAt;
      return StepStatus::Continue;
    }

    // Pure value computation.
    RtValue Val;
    switch (RK) {
    case RValueKind::FieldRead: {
      const RtValue &W = word(Fr, I.A, I.Off);
      if (W.isUndef()) {
        const auto &FR =
            static_cast<const FieldReadRV &>(*castStmt<AssignStmt>(*I.Src).R);
        fail("read of undefined field '" + FR.FieldName + "' of '" +
             FR.StructVar->name() + "'");
      }
      Val = W;
      break;
    }
    case RValueKind::AddrOfField: {
      GlobalAddr Addr = pointerValue(Fr, I.A, Fr.BF->Slots[I.A].V);
      if (Addr.isNull()) {
        const auto &AF =
            static_cast<const AddrOfFieldRV &>(*castStmt<AssignStmt>(*I.Src).R);
        fail("&(null->" + AF.FieldName + ")");
      }
      Addr.Offset += I.Off;
      Val = RtValue::makePtr(Addr);
      break;
    }
    case RValueKind::Opnd:
      Val = valueOf(Fr, I.X);
      break;
    case RValueKind::Unary:
      Val = evalUnary(static_cast<UnaryOp>(I.Sub), valueOf(Fr, I.X));
      break;
    default:
      Val = evalBinary(static_cast<BinaryOp>(I.Sub), valueOf(Fr, I.X),
                       valueOf(Fr, I.Y));
      break;
    }

    switch (LK) {
    case LValueKind::Var: {
      // Plain copies are register moves; real computation costs a cycle+.
      Now += RK == RValueKind::Opnd ? cost().CopyCost : cost().StmtCost;
      if (I.Dst < 0)
        noStorageAssignTarget(Fr, I);
      word(Fr, I.Dst) = Val;
      Fr.Locals->Avail[I.Dst] = Now;
      return StepStatus::Continue;
    }
    case LValueKind::FieldWrite: {
      Now += cost().StmtCost + cost().LocalAccess;
      if (I.Dst < 0)
        noStorageAssignTarget(Fr, I);
      // AvailAt is left untouched: a still-pending blkmov gates readers.
      word(Fr, I.Dst, static_cast<uint32_t>(I.B)) = Val;
      return StepStatus::Continue;
    }
    case LValueKind::Store: {
      const Var *PtrV = Fr.BF->Slots[I.Dst].V;
      GlobalAddr Addr = pointerValue(Fr, I.Dst, PtrV);
      if (Addr.isNull())
        fail("null pointer write via '" + PtrV->name() + "'");
      Addr.Offset += static_cast<uint32_t>(I.B);
      if (!Mem.valid(Addr))
        fail("out-of-bounds write at " + Addr.str());

      const auto Loc = static_cast<Locality>(I.Loc);
      if (Cfg.SequentialMode || Loc == Locality::Local) {
        if (!Cfg.SequentialMode && Loc == Locality::Local &&
            Addr.Node != static_cast<int32_t>(Fr.Node))
          fail("'local' store to remote address " + Addr.str());
        Now += cost().StmtCost + cost().LocalAccess;
        Mem.word(Addr) = Val;
        return StepStatus::Continue;
      }

      ++Ctr.WriteData;
      if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
        ++Ctr.LocalFallbacks;
        if (Trc)
          traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                       {{"op", "write-data"}});
        if (Prof)
          Prof->recordLocal(I.Site, CommOpKind::Write, Fr.Node, 1);
        Now += cost().LocalFallback;
        Mem.word(Addr) = Val;
        return StepStatus::Continue;
      }
      double IssueStart = Now;
      Now += cost().WriteIssue;
      ++Ctr.WordsMoved;
      double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                          cost().SUWriteService, 0.0,
                                          /*FwdWords=*/1, /*BackWords=*/0,
                                          SuWriteDataLabel);
      if (Trc)
        traceSpan("write-data", "comm", IssueStart, DoneAt - IssueStart,
                  Fr.Node, TraceTidComm,
                  {{"to", Addr.Node}, {"addr", Addr.str()}});
      if (Prof)
        Prof->record(I.Site, CommOpKind::Write, Fr.Node, Addr.Node, 1,
                     IssueStart, DoneAt);
      Mem.word(Addr) = Val;
      Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
      return StepStatus::Continue;
    }
    }
    return StepStatus::Continue;
  }

  StepStatus execBlkMov(BcFrame &Fr, const BcInsn &I, double &Now,
                        double &BlockTime) {
    const auto &B = castStmt<BlkMovStmt>(*I.Src);
    if (I.B < 0)
      noStorage(Fr, B.LocalStruct);
    if (I.A < 0)
      noStorage(Fr, B.Ptr);
    const auto Dir = static_cast<BlkMovDir>(I.Sub);
    double Need = Fr.Locals->Avail[I.A];
    if (Dir == BlkMovDir::WriteFromLocal)
      Need = std::max(Need, Fr.Locals->Avail[I.B]);
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    GlobalAddr Addr = pointerValue(Fr, I.A, B.Ptr);
    if (Addr.isNull())
      fail("blkmov through null pointer '" + B.Ptr->name() + "'");
    if (!Mem.valid(Addr, I.Words))
      fail("blkmov out of bounds at " + Addr.str());

    RtValue *Local = &word(Fr, I.B);
    auto copyWords = [&] {
      for (unsigned W = 0; W != I.Words; ++W) {
        GlobalAddr WA = Addr;
        WA.Offset += W;
        if (Dir == BlkMovDir::ReadToLocal)
          Local[W] = Mem.word(WA);
        else
          Mem.word(WA) = Local[W];
      }
    };

    if (Cfg.SequentialMode) {
      Now += cost().StmtCost + cost().LocalAccess * I.Words;
      copyWords();
      if (Dir == BlkMovDir::ReadToLocal)
        Fr.Locals->Avail[I.B] = Now;
      return StepStatus::Continue;
    }

    ++Ctr.BlkMov;
    if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
      ++Ctr.LocalFallbacks;
      if (Trc)
        traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                     {{"op", "blkmov"}, {"words", I.Words}});
      if (Prof)
        Prof->recordLocal(I.Site, CommOpKind::BlkMov, Fr.Node, I.Words);
      Now += cost().LocalFallback + cost().LocalBlkPerWord * I.Words;
      copyWords();
      if (Dir == BlkMovDir::ReadToLocal)
        Fr.Locals->Avail[I.B] = Now;
      return StepStatus::Continue;
    }

    double IssueStart = Now;
    Now += cost().BlkIssue;
    Ctr.WordsMoved += I.Words;
    bool BlkRead = Dir == BlkMovDir::ReadToLocal;
    double DoneAt = transactionComplete(
        Now, Fr.Node, Addr.Node, cost().SUBlkService, I.Words,
        /*FwdWords=*/BlkRead ? 0 : I.Words,
        /*BackWords=*/BlkRead ? I.Words : 0, SuBlkMovLabel);
    if (Trc)
      traceSpan("blkmov", "comm", IssueStart, DoneAt - IssueStart, Fr.Node,
                TraceTidComm,
                {{"to", Addr.Node},
                 {"addr", Addr.str()},
                 {"words", I.Words},
                 {"dir", Dir == BlkMovDir::ReadToLocal ? "read" : "write"}});
    if (Prof)
      Prof->record(I.Site, CommOpKind::BlkMov, Fr.Node, Addr.Node, I.Words,
                   IssueStart, DoneAt);
    copyWords();
    if (Dir == BlkMovDir::ReadToLocal)
      Fr.Locals->Avail[I.B] = DoneAt;
    else
      Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
    return StepStatus::Continue;
  }

  StepStatus execAtomic(BcFrame &Fr, const BcInsn &I, double &Now,
                        double &BlockTime) {
    const auto Op = static_cast<AtomicOp>(I.Sub);
    double Need = Op == AtomicOp::ValueOf ? 0.0 : availOf(Fr, I.X);
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    GlobalAddr Addr = sharedAddress(Fr, I);
    if (!Cfg.SequentialMode)
      ++Ctr.Atomic; // A plain variable access in the sequential program.
    bool LocalHit =
        Cfg.SequentialMode || Addr.Node == static_cast<int32_t>(Fr.Node);
    double LocalCost =
        Cfg.SequentialMode ? cost().StmtCost : cost().LocalFallback;
    RtValue &Cell = Mem.word(Addr);
    auto sharedName = [&] {
      return I.A >= 0 ? Fr.BF->Slots[I.A].V->name()
                      : BM.SharedGlobals[I.B]->name();
    };

    switch (Op) {
    case AtomicOp::WriteTo:
    case AtomicOp::AddTo: {
      RtValue V = valueOf(Fr, I.X);
      if (Op == AtomicOp::AddTo) {
        if (Cell.isUndef())
          fail("addto() on uninitialized shared variable '" + sharedName() +
               "'");
        Cell = evalBinary(BinaryOp::Add, Cell, V);
      } else {
        Cell = V;
      }
      if (LocalHit) {
        if (Prof && !Cfg.SequentialMode)
          Prof->recordLocal(I.Site, CommOpKind::Atomic, Fr.Node, 0);
        Now += LocalCost;
      } else {
        double IssueStart = Now;
        Now += cost().WriteIssue;
        double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                            cost().SUAtomicService, 0.0,
                                            /*FwdWords=*/0, /*BackWords=*/0,
                                            SuAtomicLabel);
        if (Trc)
          traceSpan("atomic", "comm", IssueStart, DoneAt - IssueStart,
                    Fr.Node, TraceTidComm,
                    {{"to", Addr.Node}, {"var", sharedName()}});
        if (Prof)
          Prof->record(I.Site, CommOpKind::Atomic, Fr.Node, Addr.Node, 0,
                       IssueStart, DoneAt);
        Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
      }
      return StepStatus::Continue;
    }
    case AtomicOp::ValueOf: {
      if (Cell.isUndef())
        fail("valueof() on uninitialized shared variable '" + sharedName() +
             "'");
      if (I.Dst < 0)
        noStorage(Fr, castStmt<AtomicStmt>(*I.Src).Result);
      word(Fr, I.Dst) = Cell;
      if (LocalHit) {
        if (Prof && !Cfg.SequentialMode)
          Prof->recordLocal(I.Site, CommOpKind::Atomic, Fr.Node, 0);
        Now += LocalCost;
        Fr.Locals->Avail[I.Dst] = Now;
      } else {
        double IssueStart = Now;
        Now += cost().ReadIssue;
        double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                            cost().SUAtomicService, 0.0,
                                            /*FwdWords=*/0, /*BackWords=*/0,
                                            SuAtomicLabel);
        Fr.Locals->Avail[I.Dst] = DoneAt;
        if (Trc)
          traceSpan("atomic", "comm", IssueStart, DoneAt - IssueStart,
                    Fr.Node, TraceTidComm,
                    {{"to", Addr.Node}, {"var", sharedName()}});
        if (Prof)
          Prof->record(I.Site, CommOpKind::Atomic, Fr.Node, Addr.Node, 0,
                       IssueStart, DoneAt);
      }
      return StepStatus::Continue;
    }
    }
    return StepStatus::Continue;
  }

  /// Advances Fr.PC itself (before any frame push can invalidate Fr).
  StepStatus execCall(Fiber *F, BcFrame &Fr, const BcInsn &I, double &Now,
                      double &BlockTime) {
    const BcOperand *Args = Fr.BF->ArgPool.data() + I.A;
    const auto Place = static_cast<CallPlacement>(I.Place);
    double Need = 0.0;
    for (uint32_t J = 0; J != I.Words; ++J)
      Need = std::max(Need, availOf(Fr, Args[J]));
    if (Place == CallPlacement::OwnerOf || Place == CallPlacement::AtNode)
      Need = std::max(Need, availOf(Fr, I.Y));
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }
    ++Fr.PC;

    auto targetNode = [&]() -> unsigned {
      if (Cfg.SequentialMode)
        return Fr.Node;
      switch (Place) {
      case CallPlacement::Default:
        return Fr.Node;
      case CallPlacement::Home:
        return 0;
      case CallPlacement::AtNode: {
        int64_t N = valueOf(Fr, I.Y).I;
        if (N < 0)
          fail("@node with negative index");
        // Logical index -> node through the pluggable distribution
        // (earth/NetworkModel.h placeIndex; cyclic is the historical
        // `index % nodes`).
        return placeIndex(static_cast<uint64_t>(N), Mem.numNodes(), Cfg.Dist,
                          Cfg.DistBlockSize);
      }
      case CallPlacement::OwnerOf: {
        RtValue V = valueOf(Fr, I.Y);
        if (V.K != RtValue::Kind::Ptr || V.P.isNull())
          fail("OWNER_OF of null/non-pointer");
        return static_cast<unsigned>(V.P.Node);
      }
      }
      return Fr.Node;
    };

    auto dstSlot = [&]() -> int32_t {
      if (I.Dst < 0)
        noStorage(Fr, castStmt<CallStmt>(*I.Src).Result);
      return I.Dst;
    };

    switch (static_cast<Intrinsic>(I.Sub)) {
    case Intrinsic::None:
      break;
    case Intrinsic::Print: {
      Output.push_back(valueOf(Fr, Args[0]).str());
      Now += cost().StmtCost;
      return StepStatus::Continue;
    }
    case Intrinsic::MyNode:
    case Intrinsic::NumNodes: {
      int32_t D = dstSlot();
      word(Fr, D) = RtValue::makeInt(static_cast<Intrinsic>(I.Sub) ==
                                             Intrinsic::MyNode
                                         ? Fr.Node
                                         : Mem.numNodes());
      Now += cost().StmtCost;
      Fr.Locals->Avail[D] = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::IntSqrt: {
      RtValue V = valueOf(Fr, Args[0]);
      if (V.I < 0)
        fail("isqrt of negative value");
      int32_t D = dstSlot();
      word(Fr, D) = RtValue::makeInt(
          static_cast<int64_t>(std::sqrt(static_cast<double>(V.I))));
      Now += cost().StmtCost * 4;
      Fr.Locals->Avail[D] = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::Sqrt:
    case Intrinsic::Fabs: {
      const bool IsSqrt = static_cast<Intrinsic>(I.Sub) == Intrinsic::Sqrt;
      RtValue V = valueOf(Fr, Args[0]);
      double X = V.K == RtValue::Kind::Dbl ? V.D : static_cast<double>(V.I);
      if (IsSqrt && X < 0)
        fail("sqrt of negative value");
      int32_t D = dstSlot();
      word(Fr, D) = RtValue::makeDbl(IsSqrt ? std::sqrt(X) : std::fabs(X));
      Now += cost().StmtCost * (IsSqrt ? 4 : 2);
      Fr.Locals->Avail[D] = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::PMalloc: {
      RtValue WordsV = valueOf(Fr, Args[0]);
      if (WordsV.I <= 0)
        fail("pmalloc of non-positive size");
      unsigned Node = targetNode();
      GlobalAddr Addr = Mem.allocate(Node, static_cast<unsigned>(WordsV.I));
      int32_t D = dstSlot();
      word(Fr, D) = RtValue::makePtr(Addr);
      Now += cost().StmtCost * 2;
      if (!Cfg.SequentialMode && Node != Fr.Node)
        Now += cost().SpawnCost; // Remote allocation request.
      Fr.Locals->Avail[D] = Now;
      return StepStatus::Continue;
    }
    }

    assert(I.Callee && "unresolved call survived Sema");
    unsigned Target = targetNode();
    bool Migrates = Target != Fr.Node;

    BcFrame NewFr;
    NewFr.BF = I.Callee;
    NewFr.Node = Target;
    NewFr.Locals = makeLocals(I.Callee, Target);
    NewFr.ResultV = castStmt<CallStmt>(*I.Src).Result;
    NewFr.ResultSlot = I.Dst;
    NewFr.Migrated = Migrates;
    Now += cost().CallCost;
    // ParamWordOffs is the callee's lowering-time param-offset cache: one
    // indexed load per argument instead of ParamSlots -> Slots -> WordOff.
    for (uint32_t J = 0; J != I.Words; ++J)
      NewFr.Locals->Words[I.Callee->ParamWordOffs[J]] = valueOf(Fr, Args[J]);

    if (!Migrates) {
      F->Stack.push_back(std::move(NewFr));
      return StepStatus::Continue;
    }
    ++Ctr.Spawns;
    Now += cost().SpawnCost;
    if (Trc)
      traceInstant("migrate", "fiber", Now, Fr.Node, TraceTidEU,
                   {{"fiber", F->Id}, {"to", Target}});
    // Capture the origin before push_back: growing the frame stack may
    // reallocate it and dangle Fr.
    const unsigned FromNode = Fr.Node;
    F->Stack.push_back(std::move(NewFr));
    // Travel to the remote node (ideal: one NetDelay).
    BlockTime = Net->transferDone(FromNode, Target, 0, Now);
    return StepStatus::YieldAt;
  }

  /// Pops the top frame, delivering \p Result (may be null) to the caller.
  StepStatus popFrame(Fiber *F, double &Now, const RtValue *Result,
                      double &BlockTime) {
    BcFrame Done = std::move(F->Stack.back());
    F->Stack.pop_back();
    Now += cost().ReturnCost;

    if (F->Stack.empty()) {
      if (F == MainFiber && Result)
        ExitVal = *Result;
      double End = std::max(Now, Done.WriteSync);
      if (Done.Migrated) // Defensive: base frames are never placed calls.
        End = Net->transferDone(Done.Node, 0, 0, End);
      finishFiber(F, End, Done.Node);
      return StepStatus::FiberDone;
    }

    BcFrame &Parent = F->Stack.back();
    Parent.WriteSync = std::max(Parent.WriteSync, Done.WriteSync);
    double Arrive =
        Done.Migrated ? Net->transferDone(Done.Node, Parent.Node, 0, Now) : Now;
    if (Done.ResultV && Result) {
      if (Done.ResultSlot < 0)
        noStorage(Parent, Done.ResultV);
      word(Parent, Done.ResultSlot) = *Result;
      Parent.Locals->Avail[Done.ResultSlot] = Arrive;
    }
    if (Done.Migrated) {
      BlockTime = Arrive;
      return StepStatus::YieldAt;
    }
    return StepStatus::Continue;
  }

  StepStatus execReturn(Fiber *F, BcFrame &Fr, const BcInsn &I, double &Now,
                        double &BlockTime) {
    if (I.X.Kind != BcOperand::K::None) {
      double Need = availOf(Fr, I.X);
      if (Need > Now) {
        BlockTime = Need;
        return StepStatus::BlockRetry;
      }
      RtValue Result = valueOf(Fr, I.X);
      return popFrame(F, Now, &Result, BlockTime);
    }
    return popFrame(F, Now, nullptr, BlockTime);
  }

  //===--------------------------------------------------------------------===
  // Superinstruction bodies. A fused dispatch executes up to \p Budget
  // walker steps; every step it actually takes updates Now/state exactly as
  // the plain opcode would, and the caller accounts the step count against
  // the quantum and the fuel. When a later step of the pattern cannot run
  // (not yet available, or out of budget), the dispatch stops with PC on
  // the plain instruction that step corresponds to — the pattern tail is
  // still in the stream — and ordinary stepping takes over.
  //===--------------------------------------------------------------------===

  /// One step of a FusedAssignRun (the isSimpleAssign shape: pure
  /// slot-to-slot Opnd/Unary/Binary into a slot). Returns false without
  /// touching any state when the operands are not available before \p Now,
  /// with \p Need set to the availability time — the plain Assign's
  /// BlockRetry condition.
  bool execSimpleAssignStep(BcFrame &Fr, const BcInsn &A, double &Now,
                            double &Need) {
    const auto RK = static_cast<RValueKind>(A.RK);
    Need = availOf(Fr, A.X);
    if (RK == RValueKind::Binary)
      Need = std::max(Need, availOf(Fr, A.Y));
    if (Need > Now)
      return false;
    RtValue Val;
    switch (RK) {
    case RValueKind::Opnd:
      Val = valueOf(Fr, A.X);
      break;
    case RValueKind::Unary:
      Val = evalUnary(static_cast<UnaryOp>(A.Sub), valueOf(Fr, A.X));
      break;
    default:
      Val = evalBinary(static_cast<BinaryOp>(A.Sub), valueOf(Fr, A.X),
                       valueOf(Fr, A.Y));
      break;
    }
    Now += RK == RValueKind::Opnd ? cost().CopyCost : cost().StmtCost;
    word(Fr, A.Dst) = Val;
    Fr.Locals->Avail[A.Dst] = Now;
    return true;
  }

  //===--------------------------------------------------------------------===
  // Fiber run loop (BytecodeExecLoop.inc). The loop body — step accounting
  // plus one handler per opcode, one instruction == one AST-walker step,
  // fused superinstructions taking up to Budget steps per dispatch — is
  // written once in the .inc and expanded below the class as two methods:
  // the portable switch loop and, where the build carries it, the
  // direct-threaded computed-goto loop. Selection is per-run (Cfg.Dispatch);
  // both loops produce bit-identical simulated results.
  //===--------------------------------------------------------------------===

  void runFiberSwitch(Fiber *F, double T);
#if EARTHCC_HAVE_COMPUTED_GOTO
  void runFiberThreaded(Fiber *F, double T);
#endif

  void runFiber(Fiber *F, double T) {
#if EARTHCC_HAVE_COMPUTED_GOTO
    if (Threaded) {
      runFiberThreaded(F, T);
      return;
    }
#endif
    runFiberSwitch(F, T);
  }

  //===--------------------------------------------------------------------===
  // State.
  //===--------------------------------------------------------------------===

  const BytecodeModule &BM;
  MachineConfig Cfg;
  const bool Fuse; ///< Dispatch FusedCode instead of Code (Cfg.Fuse).
  /// Run the computed-goto loop (Cfg.Dispatch, degraded to the switch loop
  /// when the build lacks it).
  const bool Threaded;
  TraceSink *Trc = nullptr;
  CommProfiler *Prof = nullptr;
  EarthMemory Mem;
  /// The interconnect: owns the per-node SU clocks and all link state (see
  /// earth/NetworkModel.h).
  std::unique_ptr<NetworkModel> Net;
  OpCounters Ctr;
  std::vector<double> EUClock;
  std::vector<Fiber *> LastFiber;
  /// BcLocals recycling pool (see acquireLocals). The deque owns every
  /// image ever handed out (stable addresses); the free list holds the
  /// currently unreferenced ones. Declared ahead of Q/Fibers so the pool
  /// outlives every frame whose release can still park into it.
  std::deque<BcLocals> LocalsArena;
  std::vector<BcLocals *> LocalsFree;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> Q;
  uint64_t EventSeq = 0;
  std::deque<std::unique_ptr<Fiber>> Fibers;
  std::vector<GlobalAddr> GlobalSharedAddrs; ///< By SharedGlobalIndex.
  std::vector<std::string> Output;
  uint64_t Steps = 0;
  uint64_t FusedDispatches = 0; ///< Multi-step fused dispatches (host metric).
  uint64_t FusedSteps = 0;      ///< Steps covered by those dispatches.

  Fiber *MainFiber = nullptr;
  double EndTime = 0.0;
  RtValue ExitVal;
};

// Expand the shared loop body as the portable switch loop, and — where the
// build carries computed goto — again as the direct-threaded loop.
#define EARTHCC_RUNFIBER_NAME runFiberSwitch
#define EARTHCC_DISPATCH_THREADED 0
#include "interp/BytecodeExecLoop.inc"
#undef EARTHCC_RUNFIBER_NAME
#undef EARTHCC_DISPATCH_THREADED

#if EARTHCC_HAVE_COMPUTED_GOTO
#define EARTHCC_RUNFIBER_NAME runFiberThreaded
#define EARTHCC_DISPATCH_THREADED 1
#include "interp/BytecodeExecLoop.inc"
#undef EARTHCC_RUNFIBER_NAME
#undef EARTHCC_DISPATCH_THREADED
#endif

RunResult BcInterp::run(const std::string &Entry,
                        const std::vector<RtValue> &Args) {
  RunResult R;
  const Function *EntryFn = BM.M->findFunction(Entry);
  if (!EntryFn) {
    R.Error = "entry function '" + Entry + "' not found";
    return R;
  }
  if (EntryFn->params().size() != Args.size()) {
    R.Error = "entry function expects " +
              std::to_string(EntryFn->params().size()) + " arguments, got " +
              std::to_string(Args.size());
    return R;
  }
  const BytecodeFunction *EntryBF = BM.function(EntryFn);
  assert(EntryBF && "module lowered without its entry function");

  if (Prof)
    Prof->beginRun(BM.NumSites, Mem.numNodes());

  try {
    GlobalSharedAddrs.reserve(BM.SharedGlobals.size());
    for (size_t I = 0; I != BM.SharedGlobals.size(); ++I)
      GlobalSharedAddrs.push_back(Mem.allocate(0, 1));

    MainFiber = newFiber();
    BcFrame Fr;
    Fr.BF = EntryBF;
    Fr.Node = 0;
    Fr.Locals = makeLocals(EntryBF, 0);
    for (size_t I = 0; I != Args.size(); ++I)
      Fr.Locals->Words[EntryBF->Slots[EntryBF->ParamSlots[I]].WordOff] =
          Args[I];
    MainFiber->Stack.push_back(std::move(Fr));
    schedule(MainFiber, 0.0);

    while (!Q.empty()) {
      Event E = Q.top();
      Q.pop();
      runFiber(E.F, E.T);
    }

    if (!MainFiber->Done) {
      R.Error = "deadlock: entry function never completed";
      return R;
    }
  } catch (RuntimeFailure &Failure) {
    R.Error = Failure.Message;
    return R;
  }

  if (Prof) {
    const std::vector<uint64_t> *PW = Net->transferWords();
    Prof->setNetwork(topologyName(Net->topology()), Net->linkStats(),
                     PW ? *PW : std::vector<uint64_t>{}, EndTime);
  }

  R.OK = true;
  R.TimeNs = EndTime;
  R.ExitValue = ExitVal;
  R.Counters = Ctr;
  R.Output = std::move(Output);
  R.StepsExecuted = Steps;
  R.FusedDispatches = FusedDispatches;
  R.FusedSteps = FusedSteps;
  for (unsigned N = 0; N != Mem.numNodes(); ++N)
    R.WordsPerNode.push_back(Mem.allocatedWords(N));
  return R;
}

} // namespace

RunResult earthcc::runProgramBytecode(const BytecodeModule &BM,
                                      const MachineConfig &Config,
                                      const std::string &Entry,
                                      const std::vector<RtValue> &Args) {
  return BcInterp(BM, Config).run(Entry, Args);
}
