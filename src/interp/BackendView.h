//===- BackendView.h - Backend-visible view of lowered bytecode -*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared lowering layer between the execution engines and the code
/// generators. Lower.cpp produces the executable facts (frame-slot layout,
/// flat instruction stream, pool tables); this view derives the facts a
/// *backend* additionally needs, so every consumer of the bytecode agrees on
/// them by construction instead of re-deriving them from the statement tree:
///
///  - **Sync-slot allocation.** Every split-phase instruction (remote load,
///    BlkMov, placed Call, atomic valueof, parallel/forall join) is assigned
///    a sync-slot number in *emission order* — the order a structured
///    backend walks the stream, with fiber-entry regions spliced in at their
///    spawn sites. Threaded-C's `SLOT(n)` numbers come from here.
///
///  - **Dead-label elimination.** A program point is a live label only if
///    some instruction actually jumps to it (a non-fallthrough EndSeq, a
///    branch/loop/switch target, or a fiber-region entry). Fallthrough
///    EndSeq targets and interior points need no label.
///
///  - **Presentation strings.** Field names and source-shaped text for
///    diagnostics-grade output (impure conditions, storage-less variables).
///    They are extracted from BcInsn::Src once, here, at view-build time —
///    the backend itself never touches the statement tree.
///
/// The view is a pure function of the lowered BytecodeFunction: building it
/// never mutates the module or the memoized bytecode cache.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_BACKENDVIEW_H
#define EARTHCC_INTERP_BACKENDVIEW_H

#include "interp/Bytecode.h"

#include <string>
#include <vector>

namespace earthcc {

/// Backend-facing annotations over one lowered function's plain (unfused)
/// instruction stream. Indexed by pc throughout.
struct BcBackendView {
  const BytecodeFunction *BF = nullptr;

  /// The frame-pop instruction terminating the main region. Every region's
  /// final EndSeq targets this pc (fiber regions re-use it as their exit).
  int32_t RetPC = -1;

  /// Sync slot assigned to the instruction at each pc, -1 when it needs
  /// none. Numbering is dense and in emission order (see file comment);
  /// ParSpawn and ForallInit carry their construct's join slot.
  std::vector<int32_t> SyncSlotAt;

  /// Total sync slots allocated.
  uint32_t SyncSlotCount = 0;

  /// 1 when the pc is a live jump target after dead-label elimination.
  std::vector<uint8_t> LiveLabel;

  /// Presentation facts a textual backend cannot reconstruct from the
  /// instruction fields alone, resolved from Src once at view-build time
  /// (the same diagnostics channel BcOperand::V serves for the engines).
  /// The Var pointers equal BcSlot::V whenever the corresponding slot has
  /// frame storage, and additionally cover storage-less variables (module
  /// globals) whose slot is -1.
  struct InsnNotes {
    const Var *AV = nullptr;   ///< RValue base (Load/FieldRead/AddrOfField),
                               ///< BlkMov pointer, or atomic shared variable.
    const Var *BV = nullptr;   ///< BlkMov local struct.
    const Var *DstV = nullptr; ///< LValue variable / call or atomic result.
    uint8_t RLoc = 0;  ///< Locality of a Load RValue. BcInsn::Loc carries the
                       ///< *store* locality when the LValue is indirect, so
                       ///< the load side is preserved here.
    std::string RField;     ///< Field name of a Load/FieldRead/AddrOfField.
    std::string LField;     ///< Field name of a Store/FieldWrite.
    std::string CondText;   ///< Printed condition when RK == BcBadCondRK
                            ///< (impure conditions carry no operands).
    std::string CalleeName; ///< Source-level callee name of a Call.
  };
  std::vector<InsnNotes> Notes;
};

/// Builds the backend view of \p BF (a function of \p BM's plain streams).
BcBackendView buildBackendView(const BytecodeModule &BM,
                               const BytecodeFunction &BF);

/// Structure-decode helper: the pc of the EndSeq that terminates the
/// sequence level starting at \p PC, skipping nested constructs. \p PC must
/// be the first instruction of a sequence level (e.g. the instruction after
/// an Enter).
int32_t bcSeqEnd(const BytecodeFunction &BF, int32_t PC);

/// Structure-decode helper: the first pc after the construct whose Enter
/// instruction is at \p EnterPC.
int32_t bcConstructEnd(const BytecodeFunction &BF, int32_t EnterPC);

} // namespace earthcc

#endif // EARTHCC_INTERP_BACKENDVIEW_H
