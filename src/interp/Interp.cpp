//===- Interp.cpp - Discrete-event SIMPLE interpreter ----------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/EngineCommon.h"
#include "interp/Lower.h"
#include "simple/CommSites.h"
#include "support/CommProfiler.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <queue>

using namespace earthcc;
using earthcc::interp::RuntimeFailure;

namespace {

//===----------------------------------------------------------------------===//
// Fiber state.
//===----------------------------------------------------------------------===//

/// Storage for one variable: scalars hold one word; struct-typed block
/// temporaries hold their full word image. AvailAt is the simulated time at
/// which the most recent split-phase producer completes.
struct VarSlot {
  std::vector<RtValue> Words;
  double AvailAt = 0.0;
};

using LocalsMap = std::map<const Var *, VarSlot>;

struct Fiber;

/// Join counter for one parallel-construct instance.
struct JoinCtx {
  int Outstanding = 0;
  Fiber *Waiter = nullptr;
  double LatestEnd = 0.0;
};

/// One position in the structured control of a frame.
struct ControlEntry {
  const Stmt *S = nullptr;
  int Phase = 0;
  std::shared_ptr<JoinCtx> Join;
};

/// One function activation.
struct Frame {
  const Function *Fn = nullptr;
  unsigned Node = 0;
  std::shared_ptr<LocalsMap> Locals;
  std::vector<ControlEntry> Control;
  const Var *ResultVar = nullptr; ///< Slot in the caller frame.
  double WriteSync = 0.0;         ///< Completion of outstanding writes.
  bool Migrated = false;          ///< Entered via a placed call.
};

struct Fiber {
  uint64_t Id = 0;
  std::vector<Frame> Stack;
  std::shared_ptr<JoinCtx> ParentJoin;
  bool Done = false;
};

struct Event {
  double T = 0.0;
  uint64_t Seq = 0;
  Fiber *F = nullptr;
  friend bool operator>(const Event &A, const Event &B) {
    if (A.T != B.T)
      return A.T > B.T;
    return A.Seq > B.Seq;
  }
};

/// Result of one dispatch step inside a fiber run.
///
/// BlockRetry means the current statement could not start (an operand is
/// not yet available): nothing was executed; retry the same control point
/// at the given time. YieldAt means the step completed but the fiber must
/// re-enter the scheduler (fiber migrated to another node); do not retry.
enum class StepStatus { Continue, BlockRetry, YieldAt, WaitJoin, FiberDone };

//===----------------------------------------------------------------------===//
// Interpreter.
//===----------------------------------------------------------------------===//

class Interp {
public:
  Interp(const Module &M, const MachineConfig &Cfg)
      : M(M), Cfg(Cfg), Trc(Cfg.Trace), Prof(Cfg.Profiler),
        Mem(std::max(1u, Cfg.NumNodes)),
        Net(createNetworkModel(Cfg.Topo, Mem.numNodes(), Cfg.Costs,
                               Cfg.NetHopNs, Cfg.NetLinkWordNs)),
        EUClock(Mem.numNodes(), 0.0), LastFiber(Mem.numNodes(), nullptr) {}

  RunResult run(const std::string &Entry, const std::vector<RtValue> &Args);

private:
  const CostModel &cost() const { return Cfg.Costs; }

  [[noreturn]] void runtimeError(const std::string &Message) const {
    throw RuntimeFailure{Message};
  }

  //===--------------------------------------------------------------------===
  // Tracing. Every emitter is guarded by `if (Trc)` at the call site, so a
  // null sink costs one branch and builds no event objects.
  //===--------------------------------------------------------------------===

  /// A completed span: a transaction in flight, an SU service slice, an EU
  /// fiber slice.
  void traceSpan(const char *Name, const char *Cat, double Ts, double Dur,
                 unsigned Pid, uint32_t Tid,
                 std::vector<TraceEvent::Arg> Args = {}) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.Ph = 'X';
    E.TsNs = Ts;
    E.DurNs = Dur;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args = std::move(Args);
    Trc->event(E);
  }

  /// A point event (sync-slot signal, spawn, context switch, fallback).
  void traceInstant(const char *Name, const char *Cat, double Ts,
                    unsigned Pid, uint32_t Tid,
                    std::vector<TraceEvent::Arg> Args = {}) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.Ph = 'i';
    E.TsNs = Ts;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args = std::move(Args);
    Trc->event(E);
  }

  /// A sampled clock value (EU/SU clock advance) for counter tracks.
  void traceClock(const char *Name, double Ts, unsigned Pid, uint32_t Tid,
                  double Value) {
    TraceEvent E;
    E.Name = Name;
    E.Cat = "clock";
    E.Ph = 'C';
    E.TsNs = Ts;
    E.Pid = Pid;
    E.Tid = Tid;
    E.Args.emplace_back("ns", static_cast<uint64_t>(Value));
    Trc->event(E);
  }

  //===--------------------------------------------------------------------===
  // Slots and values.
  //===--------------------------------------------------------------------===

  VarSlot &slot(Frame &Fr, const Var *V) {
    auto It = Fr.Locals->find(V);
    if (It == Fr.Locals->end())
      runtimeError("variable '" + V->name() + "' has no storage in '" +
                   Fr.Fn->name() + "'");
    return It->second;
  }

  double operandAvail(Frame &Fr, const Operand &O) {
    return O.isVar() ? slot(Fr, O.getVar()).AvailAt : 0.0;
  }

  RtValue operandValue(Frame &Fr, const Operand &O) {
    if (O.isConst()) {
      const ConstantValue &C = O.getConst();
      return C.isInt() ? RtValue::makeInt(C.I) : RtValue::makeDbl(C.D);
    }
    const RtValue &V = slot(Fr, O.getVar()).Words[0];
    if (V.isUndef())
      runtimeError("read of undefined variable '" + O.getVar()->name() +
                   "' in '" + Fr.Fn->name() + "'");
    return V;
  }

  GlobalAddr pointerValue(Frame &Fr, const Var *V) {
    const RtValue &Val = slot(Fr, V).Words[0];
    if (Val.isUndef())
      runtimeError("dereference of undefined pointer '" + V->name() + "'");
    if (Val.K == RtValue::Kind::Int && Val.I == 0)
      return GlobalAddr(); // NULL stored into a pointer.
    if (Val.K != RtValue::Kind::Ptr)
      runtimeError("dereference of non-pointer value in '" + V->name() + "'");
    return Val.P;
  }

  /// Builds the locals map for an activation of \p Fn on \p Node,
  /// allocating memory cells for function-scope shared variables.
  std::shared_ptr<LocalsMap> makeLocals(const Function *Fn, unsigned Node) {
    auto Locals = std::make_shared<LocalsMap>();
    for (const auto &V : Fn->vars()) {
      VarSlot S;
      S.Words.resize(std::max(1u, V->type()->sizeInWords()));
      if (V->kind() == VarKind::Shared)
        S.Words[0] = RtValue::makePtr(Mem.allocate(Node, 1));
      (*Locals)[V.get()] = std::move(S);
    }
    return Locals;
  }

  GlobalAddr sharedAddress(Frame &Fr, const Var *V) {
    if (auto It = GlobalShared.find(V); It != GlobalShared.end())
      return It->second;
    const RtValue &Cell = slot(Fr, V).Words[0];
    assert(Cell.K == RtValue::Kind::Ptr && "shared var has no cell");
    return Cell.P;
  }

  //===--------------------------------------------------------------------===
  // Remote transaction timing (SU is a FIFO server per node).
  //===--------------------------------------------------------------------===

  /// \p SuLabel names the request kind for the target node's SU trace
  /// track. It is one of the pre-interned "su:<op>" literals from
  /// EngineCommon.h (prefixed so CounterTraceSink keeps SU service slices
  /// distinct from the issuing node's in-flight span for the same
  /// operation) — callers pass the constant, so the trace path never
  /// builds a string per transaction.
  ///
  /// The latency arithmetic itself lives in NetworkModel::transaction()
  /// (earth/NetworkModel.h) — the single source of truth shared with the
  /// bytecode engine's identically-named wrapper in Bytecode.cpp, so the
  /// two engines cannot drift. \p FwdWords / \p BackWords are the payload
  /// words on the request and reply legs (they matter only to bandwidth-
  /// modeling topologies; the ideal network ignores them).
  double transactionComplete(double IssueEnd, unsigned From, unsigned To,
                             double Service, double ExtraWords,
                             uint64_t FwdWords, uint64_t BackWords,
                             const char *SuLabel) {
    NetTransaction Tx = Net->transaction(IssueEnd, From, To, Service,
                                         ExtraWords, FwdWords, BackWords);
    if (Trc) {
      traceSpan(SuLabel, "su", Tx.SuStart, Tx.SuEnd - Tx.SuStart, To,
                TraceTidSU);
      traceClock("su-clock", Tx.SuEnd, To, TraceTidSU, Tx.SuEnd);
    }
    return Tx.DoneAt;
  }

  //===--------------------------------------------------------------------===
  // Pure value computation (shared with the bytecode engine so the two can
  // never drift — see EngineCommon.h).
  //===--------------------------------------------------------------------===

  RtValue evalBinary(BinaryOp Op, const RtValue &A, const RtValue &B) {
    return interp::evalBinary(Op, A, B);
  }

  RtValue evalUnary(UnaryOp Op, const RtValue &A) {
    return interp::evalUnary(Op, A);
  }

  /// Availability of everything a pure (condition-style) RValue reads.
  double pureAvail(Frame &Fr, const RValue &R) {
    switch (R.kind()) {
    case RValueKind::Opnd:
      return operandAvail(Fr, static_cast<const OpndRV &>(R).Val);
    case RValueKind::Unary:
      return operandAvail(Fr, static_cast<const UnaryRV &>(R).Val);
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      return std::max(operandAvail(Fr, B.A), operandAvail(Fr, B.B));
    }
    default:
      runtimeError("condition with memory access");
    }
  }

  RtValue pureValue(Frame &Fr, const RValue &R) {
    switch (R.kind()) {
    case RValueKind::Opnd:
      return operandValue(Fr, static_cast<const OpndRV &>(R).Val);
    case RValueKind::Unary: {
      const auto &U = static_cast<const UnaryRV &>(R);
      return evalUnary(U.Op, operandValue(Fr, U.Val));
    }
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      return evalBinary(B.Op, operandValue(Fr, B.A), operandValue(Fr, B.B));
    }
    default:
      runtimeError("condition with memory access");
    }
  }

  //===--------------------------------------------------------------------===
  // Scheduling.
  //===--------------------------------------------------------------------===

  void schedule(Fiber *F, double T) { Q.push({T, ++EventSeq, F}); }

  Fiber *newFiber() {
    Fibers.push_back(std::make_unique<Fiber>());
    Fibers.back()->Id = Fibers.size();
    return Fibers.back().get();
  }

  void finishFiber(Fiber *F, double End, unsigned Node) {
    F->Done = true;
    if (F == MainFiber)
      EndTime = End;
    if (auto Join = F->ParentJoin) {
      --Join->Outstanding;
      Join->LatestEnd = std::max(Join->LatestEnd, End);
      // The EARTH sync-slot signal: the settling fiber decrements its
      // parent's join counter (outstanding writes already folded into End).
      if (Trc)
        traceInstant("sync-signal", "sync", End, Node, TraceTidEU,
                     {{"fiber", F->Id}, {"outstanding", Join->Outstanding}});
      if (Join->Outstanding == 0 && Join->Waiter) {
        Fiber *W = Join->Waiter;
        Join->Waiter = nullptr;
        schedule(W, Join->LatestEnd);
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Basic-statement execution.
  //===--------------------------------------------------------------------===

  StepStatus execAssign(Frame &Fr, const AssignStmt &A, double &Now,
                        double &BlockTime) {
    double Need = 0.0;
    switch (A.R->kind()) {
    case RValueKind::Opnd:
    case RValueKind::Unary:
    case RValueKind::Binary:
      Need = pureAvail(Fr, *A.R);
      break;
    case RValueKind::Load:
      Need = slot(Fr, static_cast<const LoadRV &>(*A.R).Base).AvailAt;
      break;
    case RValueKind::FieldRead:
      Need =
          slot(Fr, static_cast<const FieldReadRV &>(*A.R).StructVar).AvailAt;
      break;
    case RValueKind::AddrOfField:
      Need = slot(Fr, static_cast<const AddrOfFieldRV &>(*A.R).Base).AvailAt;
      break;
    }
    if (A.L.Kind == LValueKind::Store)
      Need = std::max(Need, slot(Fr, A.L.V).AvailAt);
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    // Loads: the one possibly split-phase read form.
    if (const auto *L = dynCast<LoadRV>(A.R.get())) {
      assert(A.L.Kind == LValueKind::Var && "load must target a variable");
      VarSlot &Dst = slot(Fr, A.L.V);
      GlobalAddr Addr = pointerValue(Fr, L->Base);
      if (Addr.isNull()) {
        if (!Cfg.AllowNullReads)
          runtimeError("null pointer read via '" + L->Base->name() + "' in '" +
                       Fr.Fn->name() + "'");
        Now += cost().ReadIssue;
        Dst.Words[0] = RtValue::makeInt(0);
        Dst.AvailAt = Now;
        return StepStatus::Continue;
      }
      Addr.Offset += L->OffsetWords;
      if (!Mem.valid(Addr))
        runtimeError("out-of-bounds read at " + Addr.str());

      if (Cfg.SequentialMode || !L->isRemote()) {
        if (!Cfg.SequentialMode && L->Loc == Locality::Local &&
            Addr.Node != static_cast<int32_t>(Fr.Node))
          runtimeError("'local' access to remote address " + Addr.str() +
                       " from node " + std::to_string(Fr.Node));
        Now += cost().StmtCost + cost().LocalAccess;
        Dst.Words[0] = Mem.word(Addr);
        Dst.AvailAt = Now;
        return StepStatus::Continue;
      }

      ++Ctr.ReadData;
      if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
        ++Ctr.LocalFallbacks;
        if (Trc)
          traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                       {{"op", "read-data"}});
        if (Prof)
          Prof->recordLocal(SiteTable.idOf(&A), CommOpKind::Read, Fr.Node, 1);
        Now += cost().LocalFallback;
        Dst.Words[0] = Mem.word(Addr);
        Dst.AvailAt = Now;
        return StepStatus::Continue;
      }
      double IssueStart = Now;
      Now += cost().ReadIssue;
      ++Ctr.WordsMoved;
      double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                          cost().SUReadService, 0.0,
                                          /*FwdWords=*/0, /*BackWords=*/1,
                                          interp::SuReadDataLabel);
      if (Trc)
        traceSpan("read-data", "comm", IssueStart, DoneAt - IssueStart,
                  Fr.Node, TraceTidComm,
                  {{"to", Addr.Node}, {"addr", Addr.str()}});
      if (Prof)
        Prof->record(SiteTable.idOf(&A), CommOpKind::Read, Fr.Node, Addr.Node,
                     1, IssueStart, DoneAt);
      Dst.Words[0] = Mem.word(Addr);
      Dst.AvailAt = DoneAt;
      return StepStatus::Continue;
    }

    // Pure value computation.
    RtValue Val;
    switch (A.R->kind()) {
    case RValueKind::FieldRead: {
      const auto &FR = static_cast<const FieldReadRV &>(*A.R);
      const RtValue &W = slot(Fr, FR.StructVar).Words[FR.OffsetWords];
      if (W.isUndef())
        runtimeError("read of undefined field '" + FR.FieldName + "' of '" +
                     FR.StructVar->name() + "'");
      Val = W;
      break;
    }
    case RValueKind::AddrOfField: {
      const auto &AF = static_cast<const AddrOfFieldRV &>(*A.R);
      GlobalAddr Addr = pointerValue(Fr, AF.Base);
      if (Addr.isNull())
        runtimeError("&(null->" + AF.FieldName + ")");
      Addr.Offset += AF.OffsetWords;
      Val = RtValue::makePtr(Addr);
      break;
    }
    default:
      Val = pureValue(Fr, *A.R);
      break;
    }

    switch (A.L.Kind) {
    case LValueKind::Var: {
      // Plain copies are register moves; real computation costs a cycle+.
      Now += A.R->kind() == RValueKind::Opnd ? cost().CopyCost
                                             : cost().StmtCost;
      VarSlot &Dst = slot(Fr, A.L.V);
      Dst.Words[0] = Val;
      Dst.AvailAt = Now;
      return StepStatus::Continue;
    }
    case LValueKind::FieldWrite: {
      Now += cost().StmtCost + cost().LocalAccess;
      // AvailAt is left untouched: a still-pending blkmov gates readers.
      slot(Fr, A.L.V).Words[A.L.OffsetWords] = Val;
      return StepStatus::Continue;
    }
    case LValueKind::Store: {
      GlobalAddr Addr = pointerValue(Fr, A.L.V);
      if (Addr.isNull())
        runtimeError("null pointer write via '" + A.L.V->name() + "'");
      Addr.Offset += A.L.OffsetWords;
      if (!Mem.valid(Addr))
        runtimeError("out-of-bounds write at " + Addr.str());

      if (Cfg.SequentialMode || !A.L.isRemoteStore()) {
        if (!Cfg.SequentialMode && A.L.Loc == Locality::Local &&
            Addr.Node != static_cast<int32_t>(Fr.Node))
          runtimeError("'local' store to remote address " + Addr.str());
        Now += cost().StmtCost + cost().LocalAccess;
        Mem.word(Addr) = Val;
        return StepStatus::Continue;
      }

      ++Ctr.WriteData;
      if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
        ++Ctr.LocalFallbacks;
        if (Trc)
          traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                       {{"op", "write-data"}});
        if (Prof)
          Prof->recordLocal(SiteTable.idOf(&A), CommOpKind::Write, Fr.Node, 1);
        Now += cost().LocalFallback;
        Mem.word(Addr) = Val;
        return StepStatus::Continue;
      }
      double IssueStart = Now;
      Now += cost().WriteIssue;
      ++Ctr.WordsMoved;
      double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                          cost().SUWriteService, 0.0,
                                          /*FwdWords=*/1, /*BackWords=*/0,
                                          interp::SuWriteDataLabel);
      if (Trc)
        traceSpan("write-data", "comm", IssueStart, DoneAt - IssueStart,
                  Fr.Node, TraceTidComm,
                  {{"to", Addr.Node}, {"addr", Addr.str()}});
      if (Prof)
        Prof->record(SiteTable.idOf(&A), CommOpKind::Write, Fr.Node, Addr.Node,
                     1, IssueStart, DoneAt);
      Mem.word(Addr) = Val;
      Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
      return StepStatus::Continue;
    }
    }
    return StepStatus::Continue;
  }

  StepStatus execBlkMov(Frame &Fr, const BlkMovStmt &B, double &Now,
                        double &BlockTime) {
    VarSlot &Local = slot(Fr, B.LocalStruct);
    double Need = slot(Fr, B.Ptr).AvailAt;
    if (B.Dir == BlkMovDir::WriteFromLocal)
      Need = std::max(Need, Local.AvailAt);
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    GlobalAddr Addr = pointerValue(Fr, B.Ptr);
    if (Addr.isNull())
      runtimeError("blkmov through null pointer '" + B.Ptr->name() + "'");
    if (!Mem.valid(Addr, B.Words))
      runtimeError("blkmov out of bounds at " + Addr.str());

    auto copyWords = [&] {
      for (unsigned W = 0; W != B.Words; ++W) {
        GlobalAddr WA = Addr;
        WA.Offset += W;
        if (B.Dir == BlkMovDir::ReadToLocal)
          Local.Words[W] = Mem.word(WA);
        else
          Mem.word(WA) = Local.Words[W];
      }
    };

    if (Cfg.SequentialMode) {
      Now += cost().StmtCost + cost().LocalAccess * B.Words;
      copyWords();
      if (B.Dir == BlkMovDir::ReadToLocal)
        Local.AvailAt = Now;
      return StepStatus::Continue;
    }

    ++Ctr.BlkMov;
    if (Addr.Node == static_cast<int32_t>(Fr.Node)) {
      ++Ctr.LocalFallbacks;
      if (Trc)
        traceInstant("local-fallback", "comm", Now, Fr.Node, TraceTidEU,
                     {{"op", "blkmov"}, {"words", B.Words}});
      if (Prof)
        Prof->recordLocal(SiteTable.idOf(&B), CommOpKind::BlkMov, Fr.Node,
                          B.Words);
      Now += cost().LocalFallback + cost().LocalBlkPerWord * B.Words;
      copyWords();
      if (B.Dir == BlkMovDir::ReadToLocal)
        Local.AvailAt = Now;
      return StepStatus::Continue;
    }

    double IssueStart = Now;
    Now += cost().BlkIssue;
    Ctr.WordsMoved += B.Words;
    bool BlkRead = B.Dir == BlkMovDir::ReadToLocal;
    double DoneAt = transactionComplete(
        Now, Fr.Node, Addr.Node, cost().SUBlkService, B.Words,
        /*FwdWords=*/BlkRead ? 0 : B.Words,
        /*BackWords=*/BlkRead ? B.Words : 0, interp::SuBlkMovLabel);
    if (Trc)
      traceSpan("blkmov", "comm", IssueStart, DoneAt - IssueStart, Fr.Node,
                TraceTidComm,
                {{"to", Addr.Node},
                 {"addr", Addr.str()},
                 {"words", B.Words},
                 {"dir", B.Dir == BlkMovDir::ReadToLocal ? "read" : "write"}});
    if (Prof)
      Prof->record(SiteTable.idOf(&B), CommOpKind::BlkMov, Fr.Node, Addr.Node,
                   B.Words, IssueStart, DoneAt);
    copyWords();
    if (B.Dir == BlkMovDir::ReadToLocal)
      Local.AvailAt = DoneAt;
    else
      Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
    return StepStatus::Continue;
  }

  StepStatus execAtomic(Frame &Fr, const AtomicStmt &A, double &Now,
                        double &BlockTime) {
    double Need = A.Op == AtomicOp::ValueOf ? 0.0 : operandAvail(Fr, A.Val);
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    GlobalAddr Addr = sharedAddress(Fr, A.SharedVar);
    if (!Cfg.SequentialMode)
      ++Ctr.Atomic; // A plain variable access in the sequential program.
    bool LocalHit =
        Cfg.SequentialMode || Addr.Node == static_cast<int32_t>(Fr.Node);
    double LocalCost =
        Cfg.SequentialMode ? cost().StmtCost : cost().LocalFallback;
    RtValue &Cell = Mem.word(Addr);

    switch (A.Op) {
    case AtomicOp::WriteTo:
    case AtomicOp::AddTo: {
      RtValue V = operandValue(Fr, A.Val);
      if (A.Op == AtomicOp::AddTo) {
        if (Cell.isUndef())
          runtimeError("addto() on uninitialized shared variable '" +
                       A.SharedVar->name() + "'");
        Cell = evalBinary(BinaryOp::Add, Cell, V);
      } else {
        Cell = V;
      }
      if (LocalHit) {
        if (Prof && !Cfg.SequentialMode)
          Prof->recordLocal(SiteTable.idOf(&A), CommOpKind::Atomic, Fr.Node,
                            0);
        Now += LocalCost;
      } else {
        double IssueStart = Now;
        Now += cost().WriteIssue;
        double DoneAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                            cost().SUAtomicService, 0.0,
                                            /*FwdWords=*/0, /*BackWords=*/0,
                                            interp::SuAtomicLabel);
        if (Trc)
          traceSpan("atomic", "comm", IssueStart, DoneAt - IssueStart,
                    Fr.Node, TraceTidComm,
                    {{"to", Addr.Node}, {"var", A.SharedVar->name()}});
        if (Prof)
          Prof->record(SiteTable.idOf(&A), CommOpKind::Atomic, Fr.Node,
                       Addr.Node, 0, IssueStart, DoneAt);
        Fr.WriteSync = std::max(Fr.WriteSync, DoneAt);
      }
      return StepStatus::Continue;
    }
    case AtomicOp::ValueOf: {
      if (Cell.isUndef())
        runtimeError("valueof() on uninitialized shared variable '" +
                     A.SharedVar->name() + "'");
      VarSlot &Dst = slot(Fr, A.Result);
      Dst.Words[0] = Cell;
      if (LocalHit) {
        if (Prof && !Cfg.SequentialMode)
          Prof->recordLocal(SiteTable.idOf(&A), CommOpKind::Atomic, Fr.Node,
                            0);
        Now += LocalCost;
        Dst.AvailAt = Now;
      } else {
        double IssueStart = Now;
        Now += cost().ReadIssue;
        Dst.AvailAt = transactionComplete(Now, Fr.Node, Addr.Node,
                                          cost().SUAtomicService, 0.0,
                                          /*FwdWords=*/0, /*BackWords=*/0,
                                          interp::SuAtomicLabel);
        if (Trc)
          traceSpan("atomic", "comm", IssueStart, Dst.AvailAt - IssueStart,
                    Fr.Node, TraceTidComm,
                    {{"to", Addr.Node}, {"var", A.SharedVar->name()}});
        if (Prof)
          Prof->record(SiteTable.idOf(&A), CommOpKind::Atomic, Fr.Node,
                       Addr.Node, 0, IssueStart, Dst.AvailAt);
      }
      return StepStatus::Continue;
    }
    }
    return StepStatus::Continue;
  }

  StepStatus execCall(Fiber *F, Frame &Fr, const CallStmt &C, double &Now,
                      double &BlockTime) {
    double Need = 0.0;
    for (const Operand &O : C.Args)
      Need = std::max(Need, operandAvail(Fr, O));
    if (C.Placement == CallPlacement::OwnerOf ||
        C.Placement == CallPlacement::AtNode)
      Need = std::max(Need, operandAvail(Fr, C.PlacementArg));
    if (Need > Now) {
      BlockTime = Need;
      return StepStatus::BlockRetry;
    }

    auto targetNode = [&]() -> unsigned {
      if (Cfg.SequentialMode)
        return Fr.Node;
      switch (C.Placement) {
      case CallPlacement::Default:
        return Fr.Node;
      case CallPlacement::Home:
        return 0;
      case CallPlacement::AtNode: {
        int64_t N = operandValue(Fr, C.PlacementArg).I;
        if (N < 0)
          runtimeError("@node with negative index");
        // Logical index -> node through the pluggable distribution
        // (earth/NetworkModel.h placeIndex; cyclic is the historical
        // `index % nodes`).
        return placeIndex(static_cast<uint64_t>(N), Mem.numNodes(), Cfg.Dist,
                          Cfg.DistBlockSize);
      }
      case CallPlacement::OwnerOf: {
        RtValue V = operandValue(Fr, C.PlacementArg);
        if (V.K != RtValue::Kind::Ptr || V.P.isNull())
          runtimeError("OWNER_OF of null/non-pointer");
        return static_cast<unsigned>(V.P.Node);
      }
      }
      return Fr.Node;
    };

    switch (C.Intrin) {
    case Intrinsic::None:
      break;
    case Intrinsic::Print: {
      Output.push_back(operandValue(Fr, C.Args[0]).str());
      Now += cost().StmtCost;
      return StepStatus::Continue;
    }
    case Intrinsic::MyNode:
    case Intrinsic::NumNodes: {
      VarSlot &Dst = slot(Fr, C.Result);
      Dst.Words[0] = RtValue::makeInt(
          C.Intrin == Intrinsic::MyNode ? Fr.Node : Mem.numNodes());
      Now += cost().StmtCost;
      Dst.AvailAt = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::IntSqrt: {
      RtValue V = operandValue(Fr, C.Args[0]);
      if (V.I < 0)
        runtimeError("isqrt of negative value");
      VarSlot &Dst = slot(Fr, C.Result);
      Dst.Words[0] = RtValue::makeInt(
          static_cast<int64_t>(std::sqrt(static_cast<double>(V.I))));
      Now += cost().StmtCost * 4;
      Dst.AvailAt = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::Sqrt:
    case Intrinsic::Fabs: {
      RtValue V = operandValue(Fr, C.Args[0]);
      double X = V.K == RtValue::Kind::Dbl ? V.D : static_cast<double>(V.I);
      if (C.Intrin == Intrinsic::Sqrt && X < 0)
        runtimeError("sqrt of negative value");
      VarSlot &Dst = slot(Fr, C.Result);
      Dst.Words[0] = RtValue::makeDbl(C.Intrin == Intrinsic::Sqrt
                                          ? std::sqrt(X)
                                          : std::fabs(X));
      Now += cost().StmtCost * (C.Intrin == Intrinsic::Sqrt ? 4 : 2);
      Dst.AvailAt = Now;
      return StepStatus::Continue;
    }
    case Intrinsic::PMalloc: {
      RtValue WordsV = operandValue(Fr, C.Args[0]);
      if (WordsV.I <= 0)
        runtimeError("pmalloc of non-positive size");
      unsigned Node = targetNode();
      GlobalAddr Addr = Mem.allocate(Node, static_cast<unsigned>(WordsV.I));
      VarSlot &Dst = slot(Fr, C.Result);
      Dst.Words[0] = RtValue::makePtr(Addr);
      Now += cost().StmtCost * 2;
      if (!Cfg.SequentialMode && Node != Fr.Node)
        Now += cost().SpawnCost; // Remote allocation request.
      Dst.AvailAt = Now;
      return StepStatus::Continue;
    }
    }

    assert(C.Callee && "unresolved call survived Sema");
    unsigned Target = targetNode();
    bool Migrates = Target != Fr.Node;

    Frame NewFr;
    NewFr.Fn = C.Callee;
    NewFr.Node = Target;
    NewFr.Locals = makeLocals(C.Callee, Target);
    NewFr.ResultVar = C.Result;
    NewFr.Migrated = Migrates;
    NewFr.Control.push_back({&C.Callee->body(), 0, nullptr});
    Now += cost().CallCost;
    for (size_t I = 0; I != C.Args.size(); ++I)
      (*NewFr.Locals)[C.Callee->params()[I]].Words[0] =
          operandValue(Fr, C.Args[I]);

    if (!Migrates) {
      F->Stack.push_back(std::move(NewFr));
      return StepStatus::Continue;
    }
    ++Ctr.Spawns;
    Now += cost().SpawnCost;
    if (Trc)
      traceInstant("migrate", "fiber", Now, Fr.Node, TraceTidEU,
                   {{"fiber", F->Id}, {"to", Target}});
    // Capture the origin before push_back: growing the frame stack may
    // reallocate it and dangle Fr.
    const unsigned FromNode = Fr.Node;
    F->Stack.push_back(std::move(NewFr));
    // Travel to the remote node (ideal: one NetDelay).
    BlockTime = Net->transferDone(FromNode, Target, 0, Now);
    return StepStatus::YieldAt;
  }

  /// Pops the top frame, delivering \p Result (may be null) to the caller.
  /// Sets \p BlockTime and returns YieldAt when a migrated frame returns
  /// home; FiberDone when the fiber's base frame finished.
  StepStatus popFrame(Fiber *F, double &Now, const RtValue *Result,
                      double &BlockTime) {
    Frame Done = std::move(F->Stack.back());
    F->Stack.pop_back();
    Now += cost().ReturnCost;

    if (F->Stack.empty()) {
      if (F == MainFiber && Result)
        ExitVal = *Result;
      double End = std::max(Now, Done.WriteSync);
      if (Done.Migrated) // Defensive: base frames are never placed calls.
        End = Net->transferDone(Done.Node, 0, 0, End);
      finishFiber(F, End, Done.Node);
      return StepStatus::FiberDone;
    }

    Frame &Parent = F->Stack.back();
    Parent.WriteSync = std::max(Parent.WriteSync, Done.WriteSync);
    double Arrive =
        Done.Migrated ? Net->transferDone(Done.Node, Parent.Node, 0, Now) : Now;
    if (Done.ResultVar && Result) {
      VarSlot &Dst = slot(Parent, Done.ResultVar);
      Dst.Words[0] = *Result;
      Dst.AvailAt = Arrive;
    }
    if (Done.Migrated) {
      BlockTime = Arrive;
      return StepStatus::YieldAt;
    }
    return StepStatus::Continue;
  }

  StepStatus execReturn(Fiber *F, const ReturnStmt &R, double &Now,
                        double &BlockTime) {
    Frame &Fr = F->Stack.back();
    if (R.Val) {
      double Need = operandAvail(Fr, *R.Val);
      if (Need > Now) {
        BlockTime = Need;
        return StepStatus::BlockRetry;
      }
      RtValue Result = operandValue(Fr, *R.Val);
      return popFrame(F, Now, &Result, BlockTime);
    }
    return popFrame(F, Now, nullptr, BlockTime);
  }

  StepStatus execBasic(Fiber *F, Frame &Fr, const Stmt &S, double &Now,
                       double &BlockTime) {
    switch (S.kind()) {
    case StmtKind::Assign:
      return execAssign(Fr, castStmt<AssignStmt>(S), Now, BlockTime);
    case StmtKind::Call:
      return execCall(F, Fr, castStmt<CallStmt>(S), Now, BlockTime);
    case StmtKind::Return:
      return execReturn(F, castStmt<ReturnStmt>(S), Now, BlockTime);
    case StmtKind::BlkMov:
      return execBlkMov(Fr, castStmt<BlkMovStmt>(S), Now, BlockTime);
    case StmtKind::Atomic:
      return execAtomic(Fr, castStmt<AtomicStmt>(S), Now, BlockTime);
    default:
      runtimeError("non-basic statement in execBasic");
    }
  }

  //===--------------------------------------------------------------------===
  // Control dispatch: advances the fiber by one decision or statement.
  //===--------------------------------------------------------------------===

  StepStatus step(Fiber *F, double &Now, double &BlockTime) {
    if (F->Stack.empty()) {
      finishFiber(F, Now, 0);
      return StepStatus::FiberDone;
    }
    Frame &Fr = F->Stack.back();
    if (Fr.Control.empty())
      return popFrame(F, Now, nullptr, BlockTime); // Implicit void return.

    ControlEntry &CE = Fr.Control.back();
    switch (CE.S->kind()) {
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(*CE.S);
      if (Seq.Parallel) {
        if (CE.Phase == 0) {
          auto Join = std::make_shared<JoinCtx>();
          Join->Outstanding = static_cast<int>(Seq.Stmts.size());
          CE.Join = Join;
          CE.Phase = 1;
          for (const auto &Branch : Seq.Stmts) {
            Fiber *Child = newFiber();
            Child->ParentJoin = Join;
            Frame BF;
            BF.Fn = Fr.Fn;
            BF.Node = Fr.Node;
            BF.Locals = Fr.Locals; // Branches share the activation locals.
            BF.Control.push_back({Branch.get(), 0, nullptr});
            Child->Stack.push_back(std::move(BF));
            if (!Cfg.SequentialMode) {
              Now += cost().SpawnCost;
              ++Ctr.Spawns;
              if (Trc)
                traceInstant("spawn", "fiber", Now, Fr.Node, TraceTidEU,
                             {{"child", Child->Id}});
            }
            schedule(Child, Now);
          }
          return StepStatus::Continue;
        }
        if (CE.Join->Outstanding == 0) {
          Now = std::max(Now, CE.Join->LatestEnd);
          Fr.Control.pop_back();
          return StepStatus::Continue;
        }
        CE.Join->Waiter = F;
        return StepStatus::WaitJoin;
      }
      if (CE.Phase >= static_cast<int>(Seq.Stmts.size())) {
        Fr.Control.pop_back();
        return StepStatus::Continue;
      }
      const Stmt *Child = Seq.Stmts[CE.Phase].get();
      if (!Child->isBasic()) {
        ++CE.Phase;
        Fr.Control.push_back({Child, 0, nullptr});
        return StepStatus::Continue;
      }
      // Optimistically advance; a BlockRetry rolls back so the statement
      // re-executes once its inputs are available. All other outcomes
      // (including frame pushes/pops, after which CE may be dead) keep the
      // advanced position.
      ++CE.Phase;
      StepStatus St = execBasic(F, Fr, *Child, Now, BlockTime);
      if (St == StepStatus::BlockRetry)
        --CE.Phase;
      return St;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(*CE.S);
      if (CE.Phase == 0) {
        double Need = pureAvail(Fr, *If.Cond);
        if (Need > Now) {
          BlockTime = Need;
          return StepStatus::BlockRetry;
        }
        Now += cost().StmtCost;
        bool Taken = pureValue(Fr, *If.Cond).truthy();
        CE.Phase = 1;
        Fr.Control.push_back(
            {Taken ? If.Then.get() : If.Else.get(), 0, nullptr});
        return StepStatus::Continue;
      }
      Fr.Control.pop_back();
      return StepStatus::Continue;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(*CE.S);
      if (CE.Phase == 0) {
        double Need = operandAvail(Fr, Sw.Val);
        if (Need > Now) {
          BlockTime = Need;
          return StepStatus::BlockRetry;
        }
        Now += cost().StmtCost;
        int64_t V = operandValue(Fr, Sw.Val).I;
        const SeqStmt *Body = Sw.Default.get();
        for (const auto &C : Sw.Cases)
          if (C.Value == V) {
            Body = C.Body.get();
            break;
          }
        CE.Phase = 1;
        Fr.Control.push_back({Body, 0, nullptr});
        return StepStatus::Continue;
      }
      Fr.Control.pop_back();
      return StepStatus::Continue;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(*CE.S);
      if (W.IsDoWhile && CE.Phase == 0) {
        CE.Phase = 1;
        Fr.Control.push_back({W.Body.get(), 0, nullptr});
        return StepStatus::Continue;
      }
      double Need = pureAvail(Fr, *W.Cond);
      if (Need > Now) {
        BlockTime = Need;
        return StepStatus::BlockRetry;
      }
      Now += cost().StmtCost;
      if (pureValue(Fr, *W.Cond).truthy()) {
        Fr.Control.push_back({W.Body.get(), 0, nullptr});
        return StepStatus::Continue;
      }
      Fr.Control.pop_back();
      return StepStatus::Continue;
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(*CE.S);
      switch (CE.Phase) {
      case 0: // Run Init once.
        CE.Phase = 1;
        CE.Join = std::make_shared<JoinCtx>();
        Fr.Control.push_back({Fa.Init.get(), 0, nullptr});
        return StepStatus::Continue;
      case 1: { // Evaluate cond; spawn an iteration; run Step; repeat.
        double Need = pureAvail(Fr, *Fa.Cond);
        if (Need > Now) {
          BlockTime = Need;
          return StepStatus::BlockRetry;
        }
        Now += cost().StmtCost;
        if (!pureValue(Fr, *Fa.Cond).truthy()) {
          CE.Phase = 2;
          return StepStatus::Continue;
        }
        Fiber *Child = newFiber();
        Child->ParentJoin = CE.Join;
        ++CE.Join->Outstanding;
        Frame BF;
        BF.Fn = Fr.Fn;
        BF.Node = Fr.Node;
        // Each iteration captures the driver's variables by value.
        BF.Locals = std::make_shared<LocalsMap>(*Fr.Locals);
        BF.Control.push_back({Fa.Body.get(), 0, nullptr});
        Child->Stack.push_back(std::move(BF));
        if (!Cfg.SequentialMode) {
          Now += cost().SpawnCost;
          ++Ctr.Spawns;
          if (Trc)
            traceInstant("spawn", "fiber", Now, Fr.Node, TraceTidEU,
                         {{"child", Child->Id}});
        }
        schedule(Child, Now);
        Fr.Control.push_back({Fa.Step.get(), 0, nullptr});
        return StepStatus::Continue;
      }
      default: // Join.
        if (CE.Join->Outstanding == 0) {
          Now = std::max(Now, CE.Join->LatestEnd);
          Fr.Control.pop_back();
          return StepStatus::Continue;
        }
        CE.Join->Waiter = F;
        return StepStatus::WaitJoin;
      }
    }
    default:
      runtimeError("unexpected statement kind in control stack");
    }
  }

  //===--------------------------------------------------------------------===
  // Fiber run loop + event loop.
  //===--------------------------------------------------------------------===

  void runFiber(Fiber *F, double T) {
    if (F->Done)
      return;
    unsigned Node = F->Stack.empty() ? 0 : F->Stack.back().Node;
    double Now = std::max(T, EUClock[Node]);
    if (LastFiber[Node] != F && LastFiber[Node] != nullptr &&
        !Cfg.SequentialMode) {
      if (Trc)
        traceInstant("ctx-switch", "eu", Now, Node, TraceTidEU,
                     {{"fiber", F->Id}});
      Now += cost().CtxSwitch;
      ++Ctr.CtxSwitches;
    }
    LastFiber[Node] = F;
    // A fiber's node is stable within one run: migrations and remote
    // returns exit through YieldAt, so one EU slice spans the whole run.
    const double SliceStart = Now;
    auto endSlice = [&](double End) {
      if (Trc && End > SliceStart) {
        traceSpan("eu-run", "eu", SliceStart, End - SliceStart, Node,
                  TraceTidEU, {{"fiber", F->Id}});
        traceClock("eu-clock", End, Node, TraceTidEU, EUClock[Node]);
      }
    };

    for (unsigned StepsThisRun = 0;; ++StepsThisRun) {
      if (++Steps > Cfg.MaxSteps)
        runtimeError("step limit exceeded (infinite loop?)");
      unsigned NodeBefore = F->Stack.empty() ? Node : F->Stack.back().Node;
      if (Cfg.EUQuantum && StepsThisRun >= Cfg.EUQuantum) {
        // Quantum expired: let same-time peers (e.g. freshly spawned
        // sibling branches) dispatch. LastFiber stays set so an immediate
        // re-entry costs no context switch.
        endSlice(Now);
        schedule(F, Now);
        return;
      }
      double BlockTime = 0.0;
      StepStatus St = step(F, Now, BlockTime);
      EUClock[NodeBefore] = std::max(EUClock[NodeBefore], Now);
      switch (St) {
      case StepStatus::Continue:
        continue;
      case StepStatus::BlockRetry:
      case StepStatus::YieldAt:
        endSlice(Now);
        LastFiber[NodeBefore] = nullptr;
        schedule(F, std::max(BlockTime, Now));
        return;
      case StepStatus::WaitJoin:
      case StepStatus::FiberDone:
        endSlice(Now);
        LastFiber[NodeBefore] = nullptr;
        return;
      }
    }
  }

  //===--------------------------------------------------------------------===
  // State.
  //===--------------------------------------------------------------------===

  const Module &M;
  MachineConfig Cfg;
  TraceSink *Trc = nullptr;
  CommProfiler *Prof = nullptr;
  /// Built lazily at run start, only when profiling: the same pure function
  /// of the module that lowering uses to stamp BcInsn::Site, so the two
  /// engines agree on every site id without sharing state.
  CommSiteTable SiteTable;
  EarthMemory Mem;
  /// The interconnect: owns the per-node SU clocks and all link state (see
  /// earth/NetworkModel.h).
  std::unique_ptr<NetworkModel> Net;
  OpCounters Ctr;
  std::vector<double> EUClock;
  std::vector<Fiber *> LastFiber;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> Q;
  uint64_t EventSeq = 0;
  std::deque<std::unique_ptr<Fiber>> Fibers;
  std::map<const Var *, GlobalAddr> GlobalShared;
  std::vector<std::string> Output;
  uint64_t Steps = 0;

  Fiber *MainFiber = nullptr;
  double EndTime = 0.0;
  RtValue ExitVal;
};

RunResult Interp::run(const std::string &Entry,
                      const std::vector<RtValue> &Args) {
  RunResult R;
  const Function *EntryFn = M.findFunction(Entry);
  if (!EntryFn) {
    R.Error = "entry function '" + Entry + "' not found";
    return R;
  }
  if (EntryFn->params().size() != Args.size()) {
    R.Error = "entry function expects " +
              std::to_string(EntryFn->params().size()) + " arguments, got " +
              std::to_string(Args.size());
    return R;
  }

  if (Prof) {
    SiteTable = buildCommSiteTable(M);
    Prof->beginRun(static_cast<unsigned>(SiteTable.size()), Mem.numNodes());
  }

  try {
    for (const auto &G : M.globals())
      if (G->kind() == VarKind::Shared)
        GlobalShared[G.get()] = Mem.allocate(0, 1);

    MainFiber = newFiber();
    Frame Fr;
    Fr.Fn = EntryFn;
    Fr.Node = 0;
    Fr.Locals = makeLocals(EntryFn, 0);
    Fr.Control.push_back({&EntryFn->body(), 0, nullptr});
    for (size_t I = 0; I != Args.size(); ++I)
      (*Fr.Locals)[EntryFn->params()[I]].Words[0] = Args[I];
    MainFiber->Stack.push_back(std::move(Fr));
    schedule(MainFiber, 0.0);

    while (!Q.empty()) {
      Event E = Q.top();
      Q.pop();
      runFiber(E.F, E.T);
    }

    if (!MainFiber->Done) {
      R.Error = "deadlock: entry function never completed";
      return R;
    }
  } catch (RuntimeFailure &Failure) {
    R.Error = Failure.Message;
    return R;
  }

  if (Prof) {
    const std::vector<uint64_t> *PW = Net->transferWords();
    Prof->setNetwork(topologyName(Net->topology()), Net->linkStats(),
                     PW ? *PW : std::vector<uint64_t>{}, EndTime);
  }

  R.OK = true;
  R.TimeNs = EndTime;
  R.ExitValue = ExitVal;
  R.Counters = Ctr;
  R.Output = std::move(Output);
  R.StepsExecuted = Steps;
  for (unsigned N = 0; N != Mem.numNodes(); ++N)
    R.WordsPerNode.push_back(Mem.allocatedWords(N));
  return R;
}

} // namespace

RunResult earthcc::runProgram(const Module &M, const MachineConfig &Config,
                              const std::string &Entry,
                              const std::vector<RtValue> &Args) {
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = Config.Engine == ExecEngine::Bytecode
                    ? runProgramBytecode(getOrLowerBytecode(M), Config, Entry,
                                         Args)
                    : Interp(M, Config).run(Entry, Args);
  auto T1 = std::chrono::steady_clock::now();

  // Host-side dispatch metrics into the process registry. Strictly
  // observational: RunResult, simulated time and profiles are computed
  // before any of this runs, so results stay bit-identical with metrics on.
  const char *EngineName =
      Config.Engine == ExecEngine::Bytecode ? "bytecode" : "ast";
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.counter("engine.runs", {{"engine", EngineName}}).inc();
  Reg.counter("engine.steps", {{"engine", EngineName}}).inc(R.StepsExecuted);
  if (R.FusedDispatches) {
    Reg.counter("engine.fused_dispatches", {{"engine", EngineName}})
        .inc(R.FusedDispatches);
    Reg.counter("engine.fused_steps", {{"engine", EngineName}})
        .inc(R.FusedSteps);
  }
  auto WallNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count();
  Reg.histogram("engine.run_wall_ns", {{"engine", EngineName}})
      .observe(WallNs <= 0 ? 0 : static_cast<uint64_t>(WallNs));
  return R;
}
