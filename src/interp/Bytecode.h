//===- Bytecode.h - Register bytecode for the EARTH simulator ---*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat executable form of a SIMPLE module. A one-time lowering pass
/// (Lower.cpp) numbers each function's variables into dense frame slots and
/// flattens its structured body into a linear instruction stream; the
/// bytecode engine (Bytecode.cpp) then dispatches over that stream with
/// computed indices — no statement-tree walking and no map lookups per
/// variable access.
///
/// **The lowering invariant: one instruction per interpreter step.** The
/// AST engine advances a fiber by "steps" (one control decision or one
/// basic statement per step), and the EARTH fiber model is expressed in
/// those steps — the EU preemption quantum (MachineConfig::EUQuantum) and
/// the interpreter fuel (MaxSteps) both count them. The lowering therefore
/// emits exactly one instruction for every step the AST walker would take,
/// including the pure control transitions (entering a nested construct,
/// popping a finished sequence, the join check of a parallel construct).
/// This is what makes the two engines produce bit-identical simulated
/// time, operation counters, step counts, and traces — which the
/// engine-equivalence test suite asserts over every workload.
///
/// Step-to-opcode map (AST walker step -> instruction):
///   basic statement                -> Assign / Call / Return / BlkMov / Atomic
///   Seq pushes a non-basic child   -> Enter
///   Seq end pops its entry         -> EndSeq (jump)
///   If evaluates its condition     -> Br
///   If pops after the branch       -> EndCompound
///   Switch selects a case          -> Switch
///   Switch pops after the case     -> EndCompound
///   While/do-while condition       -> LoopCond
///   do-while enters its body       -> Enter
///   parallel Seq spawns branches   -> ParSpawn
///   parallel Seq / forall join     -> Join
///   forall runs Init               -> ForallInit
///   forall cond + iteration spawn  -> ForallCond
///   implicit void return           -> ImplicitRet
///
/// Fiber-entry regions (parallel-sequence branches, forall bodies) are laid
/// out after the main stream of their function and terminate through
/// EndSeq -> ImplicitRet, mirroring the walker's "sequence pops, control
/// stack empties, frame pops" step pair.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_BYTECODE_H
#define EARTHCC_INTERP_BYTECODE_H

#include "earth/Runtime.h"
#include "interp/Interp.h"
#include "simple/Function.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace earthcc {

struct BytecodeFunction;

/// Opcodes of the register bytecode. See the file comment for the
/// one-instruction-per-step map.
enum class BcOp : uint8_t {
  Assign,      ///< One SIMPLE assignment (any LValue/RValue shape).
  Call,        ///< Call statement (intrinsic or user function).
  Return,      ///< Explicit return, optionally with a value.
  BlkMov,      ///< Block transfer between a pointer and a local struct.
  Atomic,      ///< writeto/addto/valueof on a shared variable.
  Enter,       ///< Enter a nested compound construct (one step, falls through).
  Br,          ///< If condition: fallthrough = then, A = else target.
  LoopCond,    ///< Loop condition: true -> A, false -> B.
  Switch,      ///< Switch dispatch via the case pool; A = default target.
  EndSeq,      ///< Sequence pop: jump to A.
  EndCompound, ///< If/Switch pop: fall through.
  ParSpawn,    ///< Spawn parallel-sequence branches (branch pool), then Join.
  Join,        ///< Join check of the innermost parallel construct.
  ForallInit,  ///< Create the forall's join, fall through into Init code.
  ForallCond,  ///< Forall condition: spawn body fiber at A / exit to B.
  ImplicitRet, ///< Implicit void return (frame termination).

  // Superinstructions (present only in BytecodeFunction::FusedCode; the
  // unfused Code stream never contains them, so --fuse=off cannot reach
  // them). Each executes the exact step sequence of its unfused expansion,
  // accounting every step against the EU quantum and the interpreter fuel;
  // when the remaining step budget or an operand's availability would make
  // the grouped execution diverge from stepping, the superinstruction
  // executes only the steps that fit and falls back to the plain opcodes
  // that still follow it in the stream (fusion rewrites only the head
  // instruction of a pattern, so stream length and every jump target are
  // unchanged).
  FusedEndLoop,   ///< EndSeq whose target (A) is the LoopCond of a loop:
                  ///< sequence pop + compare-and-branch in one dispatch
                  ///< (2 steps).
  FusedAssignRun, ///< Head of Words (2..3) consecutive slot-to-slot pure
                  ///< Assigns (load-operand / Binary arithmetic / store
                  ///< back to a slot): one dispatch, Words steps. Carries
                  ///< the head Assign's own payload; the tail insns are
                  ///< read from the unfused positions that follow.
  FusedEnterRun,  ///< Head of Words (>= 2) consecutive Enter instructions
                  ///< (nested construct entries, do-while body entries):
                  ///< one dispatch advancing PC by min(Words, budget)
                  ///< steps. Enter never blocks, costs no simulated time
                  ///< and touches no state beyond PC, so the run is pure
                  ///< control-step batching.
};

/// Condition-shape marker for conditions that are not pure (Opnd / Unary /
/// Binary). The engines raise the AST walker's "condition with memory
/// access" diagnostic when they dispatch one; fusion and backends skip it.
constexpr uint8_t BcBadCondRK = 0xff;

/// How a Switch instruction locates its target at execution time. Lowering
/// annotates every Switch (BcInsn::Sub) after the case targets are patched;
/// all three strategies compute the same target as the AST walker's
/// first-match linear scan over the source-ordered cases, which stays the
/// observable contract (duplicate case values: first wins).
///
/// The execution structures (JumpPool / JumpTables / SortedCasePool) are
/// strictly additive: CasePool keeps the cases in source order with the
/// original A/B/Words encoding, because the backends (BackendView,
/// codegen/ThreadedC) decode the construct from it and their emitted text
/// must not depend on how the engine dispatches.
enum class BcSwitchMode : uint8_t {
  Linear = 0, ///< Scan CasePool[B .. B+Words) in source order (also the
              ///< default-only Words == 0 case, where the scan is empty).
  Dense,      ///< Bounds-check against JumpTables[Dst], then one indexed
              ///< load from JumpPool (-1 entries mean the default target).
  Sorted,     ///< Binary search SortedCasePool[Dst .. Dst+Off) by value.
};

/// One dense-range jump table: case values [Lo, Lo + Size) map to
/// JumpPool[Begin .. Begin + Size), holes holding -1 (default target).
struct BcJumpTable {
  int64_t Lo = 0;     ///< Smallest case value in the table.
  uint32_t Begin = 0; ///< First entry in BytecodeFunction::JumpPool.
  uint32_t Size = 0;  ///< Dense span (largest - smallest + 1).

  bool operator==(const BcJumpTable &) const = default;
};

/// Construct tag carried by every BcOp::Enter instruction: which structured
/// construct the entered region belongs to. The execution engines ignore it
/// (Enter is a pure fall-through step either way); backends use it to decode
/// the flat stream — e.g. to tell a nested sequence whose first child is a
/// compound (Enter, Enter, ...) from a do-while body entry (also Enter,
/// Enter, ...) — without consulting the statement tree.
enum class BcCtor : uint8_t {
  None = 0,    ///< Not an Enter (default on every other opcode).
  Seq,         ///< Nested sequential sequence.
  If,          ///< If: the next instruction is the Br.
  While,       ///< While loop: the next instruction is the LoopCond.
  DoWhile,     ///< Do-while: the next instruction is the body-entry Enter.
  Switch,      ///< Switch: the next instruction is the dispatch.
  Forall,      ///< Forall: the next instruction is the ForallInit.
  Par,         ///< Parallel sequence: the next instruction is the ParSpawn.
  DoWhileBody, ///< The do-while's own body-entry step (second Enter).
};

/// A leaf operand resolved to a frame slot or a pre-built constant value.
struct BcOperand {
  enum class K : uint8_t { None, Slot, Const } Kind = K::None;
  int32_t Slot = -1;      ///< Frame slot index when Kind == Slot.
  RtValue Const;          ///< Pre-built value when Kind == Const.
  const Var *V = nullptr; ///< Source variable, for diagnostics only.
};

/// One bytecode instruction. The union of fields every opcode needs; the
/// per-opcode meaning of A/B/Off/Words is documented in Lower.cpp next to
/// the code that emits it. `Src` points at the originating statement and is
/// touched only on error paths (diagnostic text must match the AST engine).
struct BcInsn {
  BcOp Op = BcOp::ImplicitRet;
  uint8_t RK = 0;    ///< RValueKind of an Assign / condition shape.
  uint8_t LK = 0;    ///< LValueKind of an Assign.
  uint8_t Sub = 0;   ///< UnaryOp/BinaryOp/AtomicOp/BlkMovDir/Intrinsic.
  uint8_t Loc = 0;   ///< Locality of a Load/Store (cast of Locality).
  uint8_t Place = 0; ///< CallPlacement of a Call.
  uint8_t Ctor = 0;  ///< BcCtor construct tag of an Enter (backends only).
  int32_t A = -1;    ///< Slot or jump target (opcode-specific).
  int32_t B = -1;    ///< Slot, jump target or pool index (opcode-specific).
  uint32_t Off = 0;  ///< Word offset of a field access.
  uint32_t Words = 0; ///< BlkMov word count / pool element count.
  int32_t Dst = -1;  ///< Destination slot (-1 when none).
  BcOperand X, Y;    ///< Value operands (cond/assign/atomic/return/placement).
  /// CommSites id of the originating statement (-1 for non-comm opcodes).
  /// Stamped from the table buildCommSiteTable builds over the module being
  /// lowered, so profiles keyed by it match the AST walker's row for row.
  int32_t Site = -1;
  const BytecodeFunction *Callee = nullptr; ///< Resolved callee of a Call.
  const Stmt *Src = nullptr; ///< Originating statement (diagnostics only).
};

/// Frame-layout record of one variable: its word extent within the flat
/// frame image plus whether activation must allocate a shared-variable cell.
struct BcSlot {
  uint32_t WordOff = 0; ///< First word within the frame image.
  uint32_t Words = 1;   ///< Word extent (>= 1).
  bool SharedCell = false; ///< Function-scope `shared`: allocate a cell.
  const Var *V = nullptr;  ///< Source variable (names in diagnostics).
};

/// One lowered function: dense frame layout plus linear code.
struct BytecodeFunction {
  const Function *Fn = nullptr;
  std::vector<BcSlot> Slots;    ///< Indexed by slot = Var::id().
  uint32_t FrameWords = 0;      ///< Total words of the flat frame image.
  std::vector<int32_t> ParamSlots;
  std::vector<BcInsn> Code;
  std::vector<BcOperand> ArgPool; ///< Call argument lists.
  std::vector<std::pair<int64_t, int32_t>> CasePool; ///< Switch cases.
  std::vector<int32_t> BranchPool; ///< Parallel-sequence branch entries.

  /// Switch dispatch acceleration (see BcSwitchMode). Built per function by
  /// lowerModule after case targets are patched; CasePool above stays the
  /// backends' source-ordered ground truth.
  std::vector<BcJumpTable> JumpTables; ///< Dense switches, by BcInsn::Dst.
  std::vector<int32_t> JumpPool;       ///< Dense targets; -1 = default.
  /// Sparse switches: (value, target) deduplicated first-wins and sorted by
  /// value; a Sorted switch's run is [Dst, Dst + Off).
  std::vector<std::pair<int64_t, int32_t>> SortedCasePool;

  /// The superinstruction stream: Code with fusable pattern heads rewritten
  /// to Fused* opcodes (same length, same jump targets; non-head members of
  /// a pattern stay plain, so jumps into a pattern and fallback paths hit
  /// ordinary opcodes). The engine dispatches this stream when
  /// MachineConfig::Fuse is on and Code otherwise. Built by lowerModule
  /// alongside Code, and dropped with it on Module::invalidateExecCache().
  std::vector<BcInsn> FusedCode;

  /// Inline caches resolved at lowering time (dropped with the whole
  /// BytecodeModule on Module::invalidateExecCache(), so post-lowering IR
  /// mutation can never execute against stale layouts):
  /// Word offset of each parameter within this function's own frame image —
  /// the Call opcode copies arguments through the callee's cache instead of
  /// chasing ParamSlots -> Slots -> WordOff per argument.
  std::vector<uint32_t> ParamWordOffs;
  /// Word offsets of the frame's function-scope shared-variable cells, in
  /// slot order; activation allocates cells from this list instead of
  /// scanning every slot.
  std::vector<uint32_t> SharedCellOffs;
};

/// A whole lowered module. Built once by lowerModule() and shared across
/// runs (Pipeline caches it on the Module, so compile-once/run-many sweeps
/// pay lowering exactly once).
struct BytecodeModule {
  const Module *M = nullptr;
  std::vector<std::unique_ptr<BytecodeFunction>> Funcs;
  std::unordered_map<const Function *, const BytecodeFunction *> ByFn;
  /// Module-level shared variables in their allocation order (the engine
  /// allocates their node-0 cells in exactly this order at run start).
  std::vector<const Var *> SharedGlobals;
  std::unordered_map<const Var *, int32_t> SharedGlobalIndex;
  /// Number of comm sites in the module's CommSites table at lowering time
  /// (the BcInsn::Site id space). The engine sizes the profiler with it.
  uint32_t NumSites = 0;

  const BytecodeFunction *function(const Function *Fn) const {
    auto It = ByFn.find(Fn);
    return It == ByFn.end() ? nullptr : It->second;
  }
};

/// Executes \p Entry of the lowered module \p BM on a simulated machine.
/// Semantics, timing, counters and trace output are bit-identical to the
/// AST engine's (asserted by the engine-equivalence tests).
RunResult runProgramBytecode(const BytecodeModule &BM,
                             const MachineConfig &Config,
                             const std::string &Entry,
                             const std::vector<RtValue> &Args);

} // namespace earthcc

#endif // EARTHCC_INTERP_BYTECODE_H
